// SkyServer session: replays the paper's real-world workload pattern — a
// public astronomy portal where most requests repeat the same cone search
// (fGetNearbyObjEq) with identical parameters.
//
//   $ ./build/examples/skyserver_session
#include <cstdio>

#include "recycler/recycler.h"
#include "skyserver/skyserver.h"

using namespace recycledb;

int main() {
  Catalog catalog;
  skyserver::Setup(/*num_objects=*/100000, &catalog);

  RecyclerConfig config;
  config.mode = RecyclerMode::kSpeculation;
  Recycler engine(&catalog, config);

  Rng rng(1);
  auto workload = skyserver::GenerateWorkload(40, &rng);

  std::printf("--- 40-query SkyServer session ---\n");
  double cold_ms = 0, warm_ms = 0;
  int warm_queries = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    QueryTrace trace;
    ExecResult r = engine.Execute(workload[i].plan, &trace);
    if (i == 0) {
      cold_ms = r.total_ms;
    } else {
      warm_ms += r.total_ms;
      ++warm_queries;
    }
    if (i < 8 || trace.num_reuses == 0) {
      std::printf("q%02zu %-9s %8.2f ms  rows=%-3lld %s\n", i + 1,
                  workload[i].dominant ? "dominant" : "variant", r.total_ms,
                  (long long)r.table->num_rows(),
                  trace.num_reuses > 0 ? "[reused]" : "[computed]");
    }
  }
  std::printf("...\n");
  std::printf("first (cold) query: %.2f ms; avg of the remaining %d: %.2f ms "
              "(%.0fx faster)\n",
              cold_ms, warm_queries, warm_ms / warm_queries,
              cold_ms / (warm_ms / warm_queries));
  std::printf("cache footprint: %.1f KB for %lld results (the paper: a few "
              "hundred KB fit the whole workload)\n",
              engine.graph().Stats().cached_bytes / 1024.0,
              (long long)engine.graph().Stats().num_cached);

  // Simulate an update to the sky catalog: dependents are invalidated.
  engine.InvalidateTable("photoprimary");
  QueryTrace trace;
  ExecResult r = engine.Execute(workload[0].plan, &trace);
  std::printf("after update/invalidation: %.2f ms (recomputed, reused=%d)\n",
              r.total_ms, trace.num_reuses);
  return 0;
}
