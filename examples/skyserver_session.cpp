// SkyServer session: replays the paper's real-world workload pattern — a
// public astronomy portal where most requests repeat the same cone search
// (fGetNearbyObjEq) with identical parameters. The portal is modeled the
// way a real frontend would embed the engine: one Database, a prepared
// cone-search template, and per-request Bind/Execute.
//
//   $ ./build/example_skyserver_session
#include <cstdio>

#include "recycledb/recycledb.h"

using namespace recycledb;

int main() {
  auto db = Database::OpenOrDie([] {
    DatabaseOptions o;
    o.recycler.mode = RecyclerMode::kSpeculation;
    return o;
  }());
  skyserver::Setup(/*num_objects=*/100000, &db->catalog());

  auto session = db->Connect({});

  // The portal's request handler: one prepared template, rebound per hit.
  Status st;
  auto cone = session->Prepare(skyserver::ConeSearchTemplate(), &st);
  if (cone == nullptr) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", cone->Explain().c_str());

  // 40 requests: ~70% repeat the dominant cone (195, 2.5, 0.5); the rest
  // probe nearby variants.
  Rng rng(1);
  std::printf("--- 40-request SkyServer session ---\n");
  double cold_ms = 0, warm_ms = 0;
  int warm_queries = 0, dominant_hits = 0;
  for (int i = 0; i < 40; ++i) {
    bool dominant = rng.NextDouble() < 0.7;
    double ra = dominant ? 195.0 : 180.0 + 5.0 * (double)rng.Uniform(0, 5);
    Result r = cone->Execute(
        {{"ra", ra}, {"dec", 2.5}, {"radius", 0.5}});
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    if (i == 0) {
      cold_ms = r.total_ms();
    } else {
      warm_ms += r.total_ms();
      ++warm_queries;
    }
    dominant_hits += dominant && r.recycled() ? 1 : 0;
    if (i < 8 || !r.recycled()) {
      std::printf("q%02d %-9s %8.2f ms  rows=%-3lld %s\n", i + 1,
                  dominant ? "dominant" : "variant", r.total_ms(),
                  (long long)r.num_rows(),
                  r.recycled() ? "[reused]" : "[computed]");
    }
  }
  std::printf("...\n");
  std::printf("first (cold) query: %.2f ms; avg of the remaining %d: %.2f ms "
              "(%.0fx faster)\n",
              cold_ms, warm_queries, warm_ms / warm_queries,
              cold_ms / (warm_ms / warm_queries));
  TemplateStats ts = cone->stats();
  std::printf("cone template: %lld executions, %lld reuses; cache "
              "footprint %.1f KB for %lld results\n",
              (long long)ts.executions, (long long)ts.reuses,
              db->graph_stats().cached_bytes / 1024.0,
              (long long)db->graph_stats().num_cached);

  // Simulate an update to the sky catalog: dependents are invalidated,
  // the next dominant request recomputes.
  db->InvalidateTable("photoprimary");
  Result r = cone->Execute({{"ra", 195.0}, {"dec", 2.5}, {"radius", 0.5}});
  std::printf("after update/invalidation: %.2f ms (%s)\n", r.total_ms(),
              r.recycled() ? "reused" : "recomputed");
  return 0;
}
