// Quickstart: build a table, run a query through the recycler twice, and
// watch the second run get answered from the recycler cache.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "recycler/recycler.h"

using namespace recycledb;

int main() {
  // 1. Register a base table with the catalog.
  Catalog catalog;
  Schema schema({{"city", TypeId::kString},
                 {"year", TypeId::kInt32},
                 {"sales", TypeId::kDouble}});
  TablePtr sales = MakeTable(schema);
  const char* cities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
  Rng rng(7);
  for (int i = 0; i < 300000; ++i) {
    sales->AppendRow({std::string(cities[rng.Uniform(0, 2)]),
                      static_cast<int32_t>(rng.Uniform(2005, 2012)),
                      static_cast<double>(rng.Uniform(10, 5000))});
  }
  if (!catalog.RegisterTable("sales", sales).ok()) return 1;

  // 2. Create a recycler-enabled engine (speculation mode: never-seen
  //    expensive/small results are materialized on their first run).
  RecyclerConfig config;
  config.mode = RecyclerMode::kSpeculation;
  config.cache_bytes = 64 << 20;
  Recycler engine(&catalog, config);

  // 3. Build a query plan: total sales per city since 2008.
  auto make_plan = [] {
    return PlanNode::OrderBy(
        PlanNode::Aggregate(
            PlanNode::Select(PlanNode::Scan("sales", {"city", "year", "sales"}),
                             Expr::Ge(Expr::Column("year"),
                                      Expr::Literal(int64_t{2008}))),
            {"city"},
            {{AggFunc::kSum, Expr::Column("sales"), "total"},
             {AggFunc::kCount, Expr::Literal(int64_t{1}), "orders"}}),
        {{"total", false}});
  };

  // 4. Execute twice; the second invocation reuses the cached result.
  for (int run = 1; run <= 2; ++run) {
    QueryTrace trace;
    ExecResult result = engine.Execute(make_plan(), &trace);
    std::printf("run %d: %.2f ms, reused=%d materialized=%d\n", run,
                result.total_ms, trace.num_reuses, trace.num_materialized);
    std::printf("%s\n", result.table->ToString().c_str());
  }

  // 5. Inspect the recycler.
  GraphStats stats = engine.graph().Stats();
  std::printf("recycler graph: %lld nodes, %lld cached results (%.1f KB)\n",
              (long long)stats.num_nodes, (long long)stats.num_cached,
              stats.cached_bytes / 1024.0);
  return 0;
}
