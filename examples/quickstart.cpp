// Quickstart: open an embedded Database, run SQL with the one-call API,
// prepare a parameterized SQL template, and watch rebinding the same
// template hit the recycler cache.
//
//   $ ./build/example_quickstart
#include <cstdio>

#include "recycledb/recycledb.h"

using namespace recycledb;

int main() {
  std::printf("%s\n", RecycleDBVersion());

  // 1. Open an engine (speculation mode: never-seen expensive/small
  //    results are materialized on their first run).
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = 64 << 20;
  std::unique_ptr<Database> db;
  Status st = Database::Open(options, &db);
  if (!st.ok()) {
    std::fprintf(stderr, "open failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 2. Register a base table.
  Schema schema({{"city", TypeId::kString},
                 {"year", TypeId::kInt32},
                 {"sales", TypeId::kDouble}});
  TablePtr sales = MakeTable(schema);
  const char* cities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
  Rng rng(7);
  for (int i = 0; i < 300000; ++i) {
    sales->AppendRow({std::string(cities[rng.Uniform(0, 2)]),
                      static_cast<int32_t>(rng.Uniform(2005, 2012)),
                      static_cast<double>(rng.Uniform(10, 5000))});
  }
  if (!db->CreateTable("sales", sales).ok()) return 1;

  // 3. One call, text in, rows out. Parse/bind failures come back as a
  //    Status with line/column and a caret snippet — never an abort.
  Result peek = db->Sql(
      "SELECT city, COUNT(*) AS n FROM sales WHERE year >= 2010 "
      "GROUP BY city ORDER BY n DESC");
  if (!peek.ok()) {
    std::fprintf(stderr, "%s\n", peek.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%s\n", peek.ToString().c_str());

  // 4. Prepare a SQL template once, rebind per request: total sales per
  //    city since :since — the cutoff year is a named parameter.
  //    Repeating a binding is answered from the recycler cache (the
  //    Result stats show the reuse). The canonicalizing rewrite pass
  //    makes every equivalent spelling of this statement share the same
  //    cache entries.
  auto session = db->Connect({});
  auto stmt = session->Prepare(
      "SELECT city, SUM(sales) AS total, COUNT(*) AS orders FROM sales "
      "WHERE year >= :since GROUP BY city ORDER BY total DESC",
      &st);
  if (stmt == nullptr) {
    std::fprintf(stderr, "prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("%s", stmt->Explain().c_str());
  for (int64_t since : {2008, 2010, 2008, 2010}) {
    Result r = stmt->Bind("since", since).Execute();
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("since=%lld: %.2f ms, rows=%lld %s\n", (long long)since,
                r.total_ms(), (long long)r.num_rows(),
                r.recycled() ? "[cache hit]" : "[computed]");
  }
  std::printf("%s\n", stmt->Execute({{"since", int64_t{2008}}})
                          .ToString()
                          .c_str());

  // 5. Batch-iterate a result (zero-copy views of the cached table).
  Result r = stmt->Execute();
  int64_t batches = 0;
  for (Batch batch : r.Batches()) batches += batch.num_rows > 0 ? 1 : 0;
  std::printf("result arrives in %lld batch(es)\n", (long long)batches);

  // 6. Template-level accounting + engine state.
  TemplateStats ts = stmt->stats();
  GraphStats gs = db->graph_stats();
  std::printf("template: %lld executions, %lld reuses, %lld materialized\n",
              (long long)ts.executions, (long long)ts.reuses,
              (long long)ts.materializations);
  std::printf("recycler graph: %lld nodes, %lld cached results (%.1f KB)\n",
              (long long)gs.num_nodes, (long long)gs.num_cached,
              gs.cached_bytes / 1024.0);
  return ts.reuses > 0 ? 0 : 2;  // smoke-test gate: rebinding must reuse
}
