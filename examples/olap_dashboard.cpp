// OLAP dashboard session: the paper's motivating scenario — an interactive
// tool issuing refinements of the same query pattern (roll-ups, drill-
// downs, filter tweaks, paging). Subsumption and proactive cube caching
// turn the session's tail queries into cache hits. Everything goes
// through the public Database/Session/Query facade; the region filter is
// a prepared-statement parameter.
//
//   $ ./build/example_olap_dashboard
#include <cstdio>

#include "recycledb/recycledb.h"

using namespace recycledb;

namespace {

Query SalesCube(Database& db, std::vector<std::string> dims, ExprPtr filter) {
  Query q = db.Scan("orders",
                    {"region", "product", "month_d", "quantity", "amount"});
  if (filter != nullptr) q = q.Filter(std::move(filter));
  return q.Aggregate(std::move(dims),
                     {{AggFunc::kSum, Expr::Column("amount"), "revenue"},
                      {AggFunc::kCount, Expr::Literal(int64_t{1}),
                       "num_orders"},
                      {AggFunc::kAvg, Expr::Column("amount"), "avg_order"}});
}

void Show(const char* what, const Result& r) {
  std::printf("%-46s %8.2f ms  rows=%-5lld %s%s%s\n", what, r.total_ms(),
              (long long)r.num_rows(), r.recycled() ? "[reused] " : "",
              r.subsumption_reuses() > 0 ? "[subsumption] " : "",
              r.trace().used_proactive ? "[proactive]" : "");
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kProactive;  // all techniques on
  std::unique_ptr<Database> db;
  if (!Database::Open(options, &db).ok()) return 1;

  Schema schema({{"region", TypeId::kString},
                 {"product", TypeId::kString},
                 {"month_d", TypeId::kDate},
                 {"quantity", TypeId::kInt32},
                 {"amount", TypeId::kDouble}});
  TablePtr orders = MakeTable(schema);
  const char* regions[] = {"EMEA", "APAC", "AMER"};
  Rng rng(42);
  for (int i = 0; i < 500000; ++i) {
    int y = static_cast<int>(rng.Uniform(2009, 2012));
    int m = static_cast<int>(rng.Uniform(1, 12));
    orders->AppendRow({std::string(regions[rng.Uniform(0, 2)]),
                       "SKU-" + std::to_string(rng.Uniform(1, 40)),
                       MakeDate(y, m, 1),
                       static_cast<int32_t>(rng.Uniform(1, 20)),
                       static_cast<double>(rng.Uniform(5, 900))});
  }
  if (!db->CreateTable("orders", orders).ok()) return 1;

  auto session = db->Connect({});

  std::printf("--- interactive dashboard session ---\n");
  // The analyst opens the dashboard: full cube by (region, product).
  Show("cube by region x product",
       session->Execute(SalesCube(*db, {"region", "product"}, nullptr)));
  // Roll-up to region: derivable from the cached finer cube (subsumption).
  Show("roll-up to region",
       session->Execute(SalesCube(*db, {"region"}, nullptr)));
  Show("roll-up to product",
       session->Execute(SalesCube(*db, {"product"}, nullptr)));

  // Filter refinements on region, prepared once with a $region parameter:
  // cube caching with selections kicks in after it has seen the pattern.
  Status st;
  auto by_region = session->Prepare(
      SalesCube(*db, {"product"},
                Expr::Eq(Expr::Column("region"), Expr::Param("region"))),
      &st);
  if (by_region == nullptr) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  for (const char* r : {"EMEA", "APAC", "AMER", "EMEA"}) {
    Show(("revenue by product where region=" + std::string(r)).c_str(),
         by_region->Execute({{"region", std::string(r)}}));
  }

  // Paging through a ranked product list: top-N caching (the proactive
  // rewrite computes top-10000 once; pages are its prefixes).
  Query ranked = SalesCube(*db, {"product"}, nullptr);
  for (int64_t n : {10, 25, 100}) {
    Show(("top " + std::to_string(n) + " products").c_str(),
         session->Execute(ranked.TopN({{"revenue", false}}, n)));
  }

  SessionStats stats = session->stats();
  std::printf("\nsession totals: %lld queries, reuses=%lld (via "
              "subsumption=%lld), materializations=%lld\n",
              (long long)stats.queries, (long long)stats.reuses,
              (long long)stats.subsumption_reuses,
              (long long)stats.materializations);
  std::printf("region template: %lld executions, %lld reuses\n",
              (long long)by_region->stats().executions,
              (long long)by_region->stats().reuses);
  return 0;
}
