// OLAP dashboard session: the paper's motivating scenario — an interactive
// tool issuing refinements of the same query pattern (roll-ups, drill-
// downs, filter tweaks, paging). Subsumption and proactive cube caching
// turn the session's tail queries into cache hits.
//
//   $ ./build/examples/olap_dashboard
#include <cstdio>

#include "common/rng.h"
#include "recycler/recycler.h"

using namespace recycledb;

namespace {

PlanPtr SalesCube(std::vector<std::string> dims, ExprPtr filter) {
  PlanPtr scan = PlanNode::Scan(
      "orders", {"region", "product", "month_d", "quantity", "amount"});
  PlanPtr input = filter ? PlanNode::Select(scan, filter) : scan;
  return PlanNode::Aggregate(
      input, std::move(dims),
      {{AggFunc::kSum, Expr::Column("amount"), "revenue"},
       {AggFunc::kCount, Expr::Literal(int64_t{1}), "num_orders"},
       {AggFunc::kAvg, Expr::Column("amount"), "avg_order"}});
}

PlanPtr TopProducts(int64_t n) {
  return PlanNode::TopN(
      SalesCube({"product"}, nullptr),
      {{"revenue", false}}, n);
}

void Show(const char* what, Recycler& engine, PlanPtr plan) {
  QueryTrace trace;
  ExecResult r = engine.Execute(plan, &trace);
  std::printf("%-46s %8.2f ms  rows=%-5lld %s%s%s\n", what, r.total_ms,
              (long long)r.table->num_rows(),
              trace.num_reuses > 0 ? "[reused] " : "",
              trace.num_subsumption_reuses > 0 ? "[subsumption] " : "",
              trace.used_proactive ? "[proactive]" : "");
}

}  // namespace

int main() {
  Catalog catalog;
  Schema schema({{"region", TypeId::kString},
                 {"product", TypeId::kString},
                 {"month_d", TypeId::kDate},
                 {"quantity", TypeId::kInt32},
                 {"amount", TypeId::kDouble}});
  TablePtr orders = MakeTable(schema);
  const char* regions[] = {"EMEA", "APAC", "AMER"};
  Rng rng(42);
  for (int i = 0; i < 500000; ++i) {
    int y = static_cast<int>(rng.Uniform(2009, 2012));
    int m = static_cast<int>(rng.Uniform(1, 12));
    orders->AppendRow({std::string(regions[rng.Uniform(0, 2)]),
                       "SKU-" + std::to_string(rng.Uniform(1, 40)),
                       MakeDate(y, m, 1),
                       static_cast<int32_t>(rng.Uniform(1, 20)),
                       static_cast<double>(rng.Uniform(5, 900))});
  }
  if (!catalog.RegisterTable("orders", orders).ok()) return 1;

  RecyclerConfig config;
  config.mode = RecyclerMode::kProactive;  // all techniques on
  Recycler engine(&catalog, config);

  std::printf("--- interactive dashboard session ---\n");
  // The analyst opens the dashboard: full cube by (region, product).
  Show("cube by region x product", engine,
       SalesCube({"region", "product"}, nullptr));
  // Roll-up to region: derivable from the cached finer cube (subsumption).
  Show("roll-up to region", engine, SalesCube({"region"}, nullptr));
  // Roll-up to product.
  Show("roll-up to product", engine, SalesCube({"product"}, nullptr));
  // Filter refinements on region: cube caching with selections kicks in
  // after it has seen the pattern (pull the selection above the cube).
  for (const char* r : {"EMEA", "APAC", "AMER", "EMEA"}) {
    Show(("revenue by product where region=" + std::string(r)).c_str(),
         engine,
         SalesCube({"product"},
                   Expr::Eq(Expr::Column("region"),
                            Expr::Literal(std::string(r)))));
  }
  // Paging through a ranked product list: top-N caching (the proactive
  // rewrite computes top-10000 once; pages are its prefixes).
  Show("top 10 products", engine, TopProducts(10));
  Show("top 25 products", engine, TopProducts(25));
  Show("top 100 products", engine, TopProducts(100));

  std::printf("\nsession totals: reuses=%lld (via subsumption=%lld), "
              "materializations=%lld, proactive rewrites=%lld\n",
              (long long)engine.counters().reuses.load(),
              (long long)engine.counters().subsumption_reuses.load(),
              (long long)engine.counters().materializations.load(),
              (long long)engine.counters().proactive_rewrites.load());
  return 0;
}
