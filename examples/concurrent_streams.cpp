// Concurrent TPC-H streams: the paper's throughput-test setting in
// miniature. Multiple client streams share one recycler; identical
// intermediate results are materialized once (concurrent requesters stall
// briefly) and reused by everyone else.
//
//   $ ./build/examples/concurrent_streams
#include <cstdio>

#include "recycler/recycler.h"
#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "workload/driver.h"

using namespace recycledb;

int main() {
  double sf = tpch::ScaleFromEnv(0.01);
  Catalog catalog;
  tpch::Generate(sf, &catalog);
  std::printf("TPC-H SF=%.3f generated (%lld lineitems)\n", sf,
              (long long)catalog.GetTable("lineitem")->num_rows());

  const int kStreams = 8;
  auto build_streams = [&] {
    std::vector<workload::StreamSpec> streams;
    for (int s = 0; s < kStreams; ++s) {
      Rng rng(31 + s * 1000003);
      workload::StreamSpec spec;
      for (const auto& q : tpch::GenerateStream(s, &rng, sf)) {
        spec.labels.push_back("Q" + std::to_string(q.query));
        spec.plans.push_back(tpch::BuildQuery(q.query, q.params, sf));
      }
      streams.push_back(std::move(spec));
    }
    return streams;
  };

  // Baseline: recycling off.
  RecyclerConfig off_cfg;
  off_cfg.mode = RecyclerMode::kOff;
  Recycler off(&catalog, off_cfg);
  workload::RunReport off_report =
      workload::RunStreams(&off, build_streams(), 12);

  // Recycling on (speculation).
  RecyclerConfig on_cfg;
  on_cfg.mode = RecyclerMode::kSpeculation;
  Recycler on(&catalog, on_cfg);
  workload::RunReport on_report =
      workload::RunStreams(&on, build_streams(), 12);

  std::printf("\n%d streams x 22 queries, concurrency cap 12\n", kStreams);
  std::printf("  recycling OFF: wall %.0f ms, avg stream %.0f ms\n",
              off_report.wall_ms, off_report.AvgStreamMs());
  std::printf("  recycling ON : wall %.0f ms, avg stream %.0f ms "
              "(%.0f%% faster)\n",
              on_report.wall_ms, on_report.AvgStreamMs(),
              100.0 * (1.0 - on_report.AvgStreamMs() /
                                 off_report.AvgStreamMs()));
  std::printf("  reuses=%lld materializations=%lld stalls=%lld\n",
              (long long)on.counters().reuses.load(),
              (long long)on.counters().materializations.load(),
              (long long)on.counters().stalls.load());

  std::printf("\nper-pattern average (ms), ON vs OFF:\n");
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    std::string label = "Q" + std::to_string(q);
    double a = off_report.by_label.at(label).AvgMs();
    double b = on_report.by_label.at(label).AvgMs();
    std::printf("  %-4s %8.1f -> %8.1f  (%.2fx)\n", label.c_str(), a, b,
                b > 0 ? a / b : 0.0);
  }
  return 0;
}
