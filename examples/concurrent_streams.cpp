// Concurrent TPC-H streams: the paper's throughput-test setting in
// miniature, through the public facade. Multiple client streams share one
// Database; identical intermediate results are materialized once
// (concurrent requesters stall briefly) and reused by everyone else.
// Also demonstrates async submission through the admission gate.
//
//   $ ./build/example_concurrent_streams
#include <cstdio>

#include "recycledb/recycledb.h"

using namespace recycledb;

int main() {
  double sf = tpch::ScaleFromEnv(0.01);

  auto open_db = [&](RecyclerMode mode) {
    DatabaseOptions options;
    options.recycler.mode = mode;
    return Database::OpenOrDie(options);
  };

  const int kStreams = 8;

  // Baseline: recycling off.
  auto off = open_db(RecyclerMode::kOff);
  tpch::Generate(sf, &off->catalog());
  std::printf("TPC-H SF=%.3f generated (%lld lineitems)\n", sf,
              (long long)off->catalog().GetTable("lineitem")->num_rows());
  workload::RunReport off_report =
      workload::RunStreams(off.get(), tpch::MakeStreams(kStreams, sf), 12);

  // Recycling on (speculation), over the same tables (TablePtrs shared).
  auto on = open_db(RecyclerMode::kSpeculation);
  for (const auto& name : off->catalog().TableNames()) {
    if (!on->CreateTable(name, off->catalog().GetTable(name)).ok()) return 1;
  }
  workload::RunReport on_report =
      workload::RunStreams(on.get(), tpch::MakeStreams(kStreams, sf), 12);

  std::printf("\n%d streams x 22 queries, concurrency cap 12\n", kStreams);
  std::printf("  recycling OFF: wall %.0f ms, avg stream %.0f ms\n",
              off_report.wall_ms, off_report.AvgStreamMs());
  std::printf("  recycling ON : wall %.0f ms, avg stream %.0f ms "
              "(%.0f%% faster)\n",
              on_report.wall_ms, on_report.AvgStreamMs(),
              100.0 * (1.0 - on_report.AvgStreamMs() /
                                 off_report.AvgStreamMs()));
  std::printf("  reuses=%lld materializations=%lld stalls=%lld\n",
              (long long)on->counters().reuses.load(),
              (long long)on->counters().materializations.load(),
              (long long)on->counters().stalls.load());

  std::printf("\nper-pattern average (ms), ON vs OFF:\n");
  for (int q = 1; q <= tpch::kNumQueries; ++q) {
    std::string label = "Q" + std::to_string(q);
    double a = off_report.by_label.at(label).AvgMs();
    double b = on_report.by_label.at(label).AvgMs();
    std::printf("  %-4s %8.1f -> %8.1f  (%.2fx)\n", label.c_str(), a, b,
                b > 0 ? a / b : 0.0);
  }

  // Async clients: sessions submit Q6 with colliding parameters through
  // the database's admission gate; futures deliver the results.
  auto session = on->Connect({});
  Rng rng(99);
  std::vector<std::future<Result>> futures;
  for (int i = 0; i < 6; ++i) {
    tpch::QueryParams p = tpch::GenerateParams(6, &rng, sf);
    futures.push_back(
        session->Submit(Query::FromPlan(tpch::BuildQuery(6, p, sf))));
  }
  int async_reused = 0;
  for (auto& f : futures) {
    Result r = f.get();
    if (!r.ok()) return 1;
    async_reused += r.recycled() ? 1 : 0;
  }
  std::printf("\nasync: 6 submitted Q6 instances, %d answered from cache\n",
              async_reused);
  return 0;
}
