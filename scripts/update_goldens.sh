#!/usr/bin/env bash
# Regenerates the golden snapshots under tests/golden/ (and the
# skyserver_sweep.trace replay fixture) from the current build.
#
# Run after an intentional behaviour change, then review the snapshot
# diff in the PR alongside the code change. See docs/testing.md.
#
# Usage: scripts/update_goldens.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j --target test_golden

RECYCLEDB_UPDATE_GOLDENS=1 "$build_dir/test_golden"

# Verify the fresh snapshots immediately round-trip in check mode.
"$build_dir/test_golden"

echo "goldens updated:"
git -C "$repo_root" status --short tests/golden/ || true
