#!/usr/bin/env python3
"""Checks that relative markdown links point at files that exist.

Usage: check_markdown_links.py FILE.md [FILE.md ...]

Scans inline links/images `[text](target)` in each file and fails (exit
1) when a relative target — after stripping any #fragment — does not
exist relative to the file's directory. External (http/https/mailto)
links and pure-fragment links are skipped; checking their reachability
is not this script's job. CI runs this over README.md, DESIGN.md,
ROADMAP.md and docs/.
"""
import os
import re
import sys

# Inline markdown links/images. Deliberately simple: no nested parens in
# targets (we do not use any), no reference-style links.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(path: str) -> list:
    errors = []
    text = open(path, encoding="utf-8").read()
    # Ignore fenced code blocks: they hold ASCII diagrams and examples.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    base = os.path.dirname(path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
        if resolved.startswith(".."):
            # Escapes the repository: a GitHub-site-relative URL (e.g. the
            # CI badge's ../../actions/... path), not a file link.
            continue
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link '{target}' -> {resolved}")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors.extend(check_file(path))
    for e in errors:
        print(e, file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv) - 1} files, no broken relative links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
