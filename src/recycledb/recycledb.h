// recycledb: public umbrella header for the embeddable engine.
//
// This is the ONLY header examples, benchmarks and embedders include.
// It exposes:
//   - Database / Session / Query / PreparedStatement / Result (api/)
//   - Expr & plan building blocks the fluent builder composes
//   - the multi-stream workload driver (workload/)
//   - the bundled workload generators (tpch/, skyserver/) and the
//     keep-all comparison baseline (baseline/)
//   - the trace recorder/replayer (trace/) for golden tests and
//     reproducible bug reports
//
// The header must always compile standalone under -Wall -Werror; the
// build compiles src/recycledb/recycledb.cc (exactly this include) as
// part of the library to enforce that.
#pragma once

#include "api/database.h"
#include "api/query.h"
#include "api/result.h"
#include "api/session.h"
#include "api/statement.h"
#include "api/validate.h"
#include "baseline/keepall.h"
#include "common/rng.h"
#include "fleet/standby.h"
#include "skyserver/skyserver.h"
#include "tpch/dbgen.h"
#include "tpch/qgen.h"
#include "trace/recorder.h"
#include "trace/replayer.h"
#include "trace/trace_format.h"
#include "workload/driver.h"

/// recycledb: an embeddable vector-at-a-time query engine whose
/// recycler caches intermediate and final results and rewrites incoming
/// plans to reuse them (ICDE 2013 reproduction).
namespace recycledb {

/// Library version string (PR-granular; examples print it).
const char* RecycleDBVersion();

}  // namespace recycledb
