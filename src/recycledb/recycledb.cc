// Compiling this TU (just the umbrella include) as part of the library
// guarantees the public header builds standalone under -Wall (-Werror in
// CI) with no missing transitive includes.
#include "recycledb/recycledb.h"

namespace recycledb {

const char* RecycleDBVersion() {
  return "recycledb 0.4 (PR 7: SQL front-end + canonicalization)";
}

}  // namespace recycledb
