// Table-valued function registry (used by FunctionScan plan nodes).
//
// The SkyServer workload's fGetNearbyObjEq is registered here; the plan
// binder resolves output schemas through this registry and the executor
// calls eval_fn to produce the rows.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "storage/table.h"

namespace recycledb {

/// A named table-valued function.
struct TableFunction {
  std::string name;
  /// Output schema for a given argument vector.
  std::function<Schema(const std::vector<Datum>&)> schema_fn;
  /// Produces the full result (blocking). Receives the catalog so it can
  /// read base tables.
  std::function<TablePtr(const Catalog&, const std::vector<Datum>&)> eval_fn;
  /// Base tables it reads (for recycler invalidation on updates).
  std::vector<std::string> base_tables;
  /// Declared argument types. When non-empty, the public API's
  /// ValidatePlan enforces arity and types before eval_fn can see
  /// user-bound arguments (eval_fn aborts on bad input otherwise).
  std::vector<TypeId> arg_types;
};

/// Process-wide registry of table functions. Thread-safe.
class TableFunctionRegistry {
 public:
  static TableFunctionRegistry& Global();

  /// Registers or replaces a function.
  void Register(TableFunction fn);

  /// Looks up a function; nullptr if absent. The pointer stays valid for
  /// the process lifetime (functions are never erased).
  const TableFunction* Get(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TableFunction>> fns_;
};

}  // namespace recycledb
