#include "plan/plan.h"

#include <sstream>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "expr/range.h"
#include "plan/table_function.h"

namespace recycledb {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kScan: return "Scan";
    case OpType::kFunctionScan: return "FunctionScan";
    case OpType::kSelect: return "Select";
    case OpType::kProject: return "Project";
    case OpType::kAggregate: return "Aggregate";
    case OpType::kHashJoin: return "HashJoin";
    case OpType::kOrderBy: return "OrderBy";
    case OpType::kTopN: return "TopN";
    case OpType::kLimit: return "Limit";
    case OpType::kUnionAll: return "UnionAll";
    case OpType::kCachedScan: return "CachedScan";
  }
  return "?";
}

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner: return "inner";
    case JoinKind::kLeftOuter: return "leftouter";
    case JoinKind::kSemi: return "semi";
    case JoinKind::kAnti: return "anti";
    case JoinKind::kSingle: return "single";
  }
  return "?";
}

PlanPtr PlanNode::Scan(std::string table, std::vector<std::string> columns) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kScan;
  p->table_ = std::move(table);
  p->columns_ = std::move(columns);
  return p;
}

PlanPtr PlanNode::ScanRange(std::string table,
                            std::vector<std::string> columns, int64_t begin,
                            int64_t end) {
  RDB_CHECK_MSG(begin >= 0 && (end < 0 || end >= begin),
                "invalid scan row range");
  PlanPtr p = Scan(std::move(table), std::move(columns));
  p->scan_begin_ = begin;
  p->scan_end_ = end;
  return p;
}

PlanPtr PlanNode::FunctionScan(std::string function, std::vector<Datum> args) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kFunctionScan;
  p->table_ = std::move(function);
  p->args_ = std::move(args);
  return p;
}

PlanPtr PlanNode::FunctionScanTemplate(std::string function,
                                       std::vector<ExprPtr> args) {
  bool all_literal = true;
  for (const auto& a : args) {
    RDB_CHECK_MSG(a != nullptr && (a->kind() == ExprKind::kLiteral ||
                                   a->kind() == ExprKind::kParam),
                  "FunctionScanTemplate args must be literals or params");
    all_literal = all_literal && a->kind() == ExprKind::kLiteral;
  }
  if (all_literal) {
    std::vector<Datum> datums;
    datums.reserve(args.size());
    for (const auto& a : args) datums.push_back(a->literal());
    return FunctionScan(std::move(function), std::move(datums));
  }
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kFunctionScan;
  p->table_ = std::move(function);
  p->arg_exprs_ = std::move(args);
  return p;
}

PlanPtr PlanNode::Select(PlanPtr child, ExprPtr predicate) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kSelect;
  p->children_ = {std::move(child)};
  p->predicate_ = std::move(predicate);
  return p;
}

PlanPtr PlanNode::Project(PlanPtr child, std::vector<ProjItem> items) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kProject;
  p->children_ = {std::move(child)};
  p->projections_ = std::move(items);
  return p;
}

PlanPtr PlanNode::Aggregate(PlanPtr child, std::vector<std::string> group_by,
                            std::vector<AggItem> aggregates) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kAggregate;
  p->children_ = {std::move(child)};
  p->group_by_ = std::move(group_by);
  p->aggregates_ = std::move(aggregates);
  return p;
}

PlanPtr PlanNode::HashJoin(PlanPtr left, PlanPtr right, JoinKind kind,
                           std::vector<std::string> left_keys,
                           std::vector<std::string> right_keys) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kHashJoin;
  p->children_ = {std::move(left), std::move(right)};
  p->join_kind_ = kind;
  p->left_keys_ = std::move(left_keys);
  p->right_keys_ = std::move(right_keys);
  return p;
}

PlanPtr PlanNode::OrderBy(PlanPtr child, std::vector<SortKey> keys) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kOrderBy;
  p->children_ = {std::move(child)};
  p->sort_keys_ = std::move(keys);
  return p;
}

PlanPtr PlanNode::TopN(PlanPtr child, std::vector<SortKey> keys, int64_t n) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kTopN;
  p->children_ = {std::move(child)};
  p->sort_keys_ = std::move(keys);
  p->limit_ = n;
  return p;
}

PlanPtr PlanNode::Limit(PlanPtr child, int64_t n) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kLimit;
  p->children_ = {std::move(child)};
  p->limit_ = n;
  return p;
}

PlanPtr PlanNode::UnionAll(std::vector<PlanPtr> children) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kUnionAll;
  p->children_ = std::move(children);
  return p;
}

PlanPtr PlanNode::CachedScan(TablePtr result,
                             std::vector<std::string> column_names) {
  PlanPtr p(new PlanNode());
  p->type_ = OpType::kCachedScan;
  p->cached_ = std::move(result);
  p->columns_ = std::move(column_names);
  return p;
}

const Schema& PlanNode::output_schema() const {
  RDB_CHECK_MSG(bound_, "plan node not bound");
  return output_schema_;
}

void PlanNode::Bind(const Catalog& catalog) {
  if (bound_) return;
  for (auto& c : children_) c->Bind(catalog);
  base_tables_.clear();
  for (const auto& c : children_) {
    base_tables_.insert(c->base_tables_.begin(), c->base_tables_.end());
  }
  switch (type_) {
    case OpType::kScan: {
      TablePtr t = catalog.GetTable(table_);
      RDB_CHECK_MSG(t != nullptr, ("unknown table: " + table_).c_str());
      std::vector<Field> fields;
      for (const auto& col : columns_) {
        int idx = t->schema().IndexOfChecked(col);
        fields.push_back(t->schema().field(idx));
      }
      output_schema_ = Schema(std::move(fields));
      base_tables_.insert(table_);
      break;
    }
    case OpType::kFunctionScan: {
      RDB_CHECK_MSG(arg_exprs_.empty(),
                    "FunctionScan template has unresolved parameters; "
                    "SubstituteParams must run before Bind");
      const TableFunction* fn = TableFunctionRegistry::Global().Get(table_);
      RDB_CHECK_MSG(fn != nullptr, ("unknown function: " + table_).c_str());
      output_schema_ = fn->schema_fn(args_);
      base_tables_.insert(fn->base_tables.begin(), fn->base_tables.end());
      break;
    }
    case OpType::kSelect: {
      TypeId t = predicate_->DeduceType(children_[0]->output_schema());
      RDB_CHECK_MSG(t == TypeId::kBool, "selection predicate must be bool");
      output_schema_ = children_[0]->output_schema();
      break;
    }
    case OpType::kProject: {
      const Schema& in = children_[0]->output_schema();
      std::vector<Field> fields;
      for (const auto& item : projections_) {
        fields.push_back({item.out_name, item.expr->DeduceType(in)});
      }
      output_schema_ = Schema(std::move(fields));
      break;
    }
    case OpType::kAggregate: {
      const Schema& in = children_[0]->output_schema();
      std::vector<Field> fields;
      for (const auto& g : group_by_) {
        fields.push_back(in.field(in.IndexOfChecked(g)));
      }
      for (const auto& a : aggregates_) {
        TypeId arg_type = a.arg->DeduceType(in);
        fields.push_back({a.out_name, AggResultType(a.fn, arg_type)});
      }
      output_schema_ = Schema(std::move(fields));
      break;
    }
    case OpType::kHashJoin: {
      const Schema& l = children_[0]->output_schema();
      const Schema& r = children_[1]->output_schema();
      RDB_CHECK(left_keys_.size() == right_keys_.size() &&
                !left_keys_.empty());
      for (size_t i = 0; i < left_keys_.size(); ++i) {
        l.IndexOfChecked(left_keys_[i]);
        r.IndexOfChecked(right_keys_[i]);
      }
      std::vector<Field> fields = l.fields();
      if (join_kind_ == JoinKind::kInner ||
          join_kind_ == JoinKind::kLeftOuter ||
          join_kind_ == JoinKind::kSingle) {
        for (const auto& f : r.fields()) {
          RDB_CHECK_MSG(!l.Has(f.name),
                        ("duplicate join output column: " + f.name).c_str());
          fields.push_back(f);
        }
      }
      output_schema_ = Schema(std::move(fields));
      break;
    }
    case OpType::kOrderBy:
    case OpType::kTopN: {
      const Schema& in = children_[0]->output_schema();
      for (const auto& k : sort_keys_) in.IndexOfChecked(k.column);
      output_schema_ = in;
      break;
    }
    case OpType::kLimit:
      output_schema_ = children_[0]->output_schema();
      break;
    case OpType::kUnionAll: {
      RDB_CHECK(!children_.empty());
      const Schema& first = children_[0]->output_schema();
      for (const auto& c : children_) {
        const Schema& s = c->output_schema();
        RDB_CHECK_MSG(s.num_fields() == first.num_fields(),
                      "union children arity mismatch");
        for (int i = 0; i < s.num_fields(); ++i) {
          RDB_CHECK_MSG(s.field(i).type == first.field(i).type,
                        "union children type mismatch");
        }
      }
      output_schema_ = first;
      break;
    }
    case OpType::kCachedScan: {
      RDB_CHECK(cached_ != nullptr);
      RDB_CHECK(static_cast<int>(columns_.size()) ==
                cached_->schema().num_fields());
      std::vector<Field> fields;
      for (int i = 0; i < cached_->schema().num_fields(); ++i) {
        fields.push_back({columns_[i], cached_->schema().field(i).type});
      }
      output_schema_ = Schema(std::move(fields));
      break;
    }
  }
  bound_ = true;
}

namespace {
std::string MapName(const std::string& name, const NameMap* mapping) {
  if (mapping != nullptr) {
    auto it = mapping->find(name);
    if (it != mapping->end()) return it->second;
  }
  return name;
}
}  // namespace

std::string PlanNode::ParamFingerprint(const NameMap* mapping) const {
  switch (type_) {
    case OpType::kScan: {
      std::string out = "scan:" + table_ + ":[" + Join(columns_, ",") + "]";
      if (has_scan_range()) {
        out += StrFormat(":rows[%lld,%lld)", (long long)scan_begin_,
                         (long long)scan_end_);
      }
      return out;
    }
    case OpType::kFunctionScan: {
      std::string out = "fscan:" + table_ + "(";
      if (!arg_exprs_.empty()) {
        for (size_t i = 0; i < arg_exprs_.size(); ++i) {
          if (i > 0) out += ",";
          out += arg_exprs_[i]->Fingerprint(mapping);
        }
      } else {
        for (size_t i = 0; i < args_.size(); ++i) {
          if (i > 0) out += ",";
          out += DatumToString(args_[i]);
        }
      }
      return out + ")";
    }
    case OpType::kSelect:
      return "select:" + predicate_->Fingerprint(mapping);
    case OpType::kProject: {
      std::string out = "project:[";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i > 0) out += ",";
        out += projections_[i].expr->Fingerprint(mapping);
      }
      return out + "]";
    }
    case OpType::kAggregate: {
      std::string out = "agg:[";
      for (size_t i = 0; i < group_by_.size(); ++i) {
        if (i > 0) out += ",";
        out += MapName(group_by_[i], mapping);
      }
      out += "]:[";
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) out += ",";
        out += aggregates_[i].Fingerprint(mapping);
      }
      return out + "]";
    }
    case OpType::kHashJoin: {
      std::string out = "join:";
      out += JoinKindName(join_kind_);
      out += ":[";
      for (size_t i = 0; i < left_keys_.size(); ++i) {
        if (i > 0) out += ",";
        out += MapName(left_keys_[i], mapping);
      }
      out += "]=[";
      for (size_t i = 0; i < right_keys_.size(); ++i) {
        if (i > 0) out += ",";
        out += MapName(right_keys_[i], mapping);
      }
      return out + "]";
    }
    case OpType::kOrderBy:
    case OpType::kTopN: {
      std::string out = type_ == OpType::kTopN
                            ? StrFormat("topn:%lld:[", (long long)limit_)
                            : "sort:[";
      for (size_t i = 0; i < sort_keys_.size(); ++i) {
        if (i > 0) out += ",";
        out += MapName(sort_keys_[i].column, mapping);
        out += sort_keys_[i].ascending ? "+" : "-";
      }
      return out + "]";
    }
    case OpType::kLimit:
      return StrFormat("limit:%lld", (long long)limit_);
    case OpType::kUnionAll:
      return "union";
    case OpType::kCachedScan:
      return "cachedscan";
  }
  RDB_UNREACHABLE("bad op type");
}

uint64_t PlanNode::HashKey() const {
  uint64_t h = HashMix(static_cast<uint64_t>(type_) + 1);
  switch (type_) {
    case OpType::kScan:
      h = HashCombine(h, HashString(table_));
      if (has_scan_range()) {
        h = HashCombine(h, HashMix(static_cast<uint64_t>(scan_begin_) * 131 +
                                   static_cast<uint64_t>(scan_end_ + 1)));
      }
      break;
    case OpType::kFunctionScan: {
      h = HashCombine(h, HashString(table_));
      for (const auto& a : args_) {
        h = HashCombine(h, HashString(DatumToString(a)));
      }
      break;
    }
    case OpType::kSelect:
      // Shape + literals, column names anonymized (they live in different
      // name spaces on the query vs graph side).
      h = HashCombine(h, HashString(predicate_->Fingerprint(nullptr, true)));
      break;
    case OpType::kProject:
      h = HashCombine(h, HashMix(projections_.size()));
      break;
    case OpType::kAggregate: {
      h = HashCombine(h, HashMix(group_by_.size()));
      for (const auto& a : aggregates_) {
        h = HashCombine(h, HashString(AggFuncName(a.fn)));
      }
      break;
    }
    case OpType::kHashJoin:
      h = HashCombine(h, HashMix(static_cast<uint64_t>(join_kind_) * 31 +
                                 left_keys_.size()));
      break;
    case OpType::kOrderBy:
    case OpType::kTopN:
      h = HashCombine(h, HashMix(sort_keys_.size() * 131 +
                                 static_cast<uint64_t>(limit_)));
      break;
    case OpType::kLimit:
      h = HashCombine(h, HashMix(static_cast<uint64_t>(limit_)));
      break;
    case OpType::kUnionAll:
    case OpType::kCachedScan:
      break;
  }
  return h;
}

std::set<std::string> PlanNode::ParamInputColumns() const {
  std::set<std::string> cols;
  switch (type_) {
    case OpType::kScan:
    case OpType::kCachedScan:
      cols.insert(columns_.begin(), columns_.end());
      break;
    case OpType::kFunctionScan:
      break;
    case OpType::kSelect:
      predicate_->CollectColumns(&cols);
      break;
    case OpType::kProject:
      for (const auto& p : projections_) p.expr->CollectColumns(&cols);
      break;
    case OpType::kAggregate:
      cols.insert(group_by_.begin(), group_by_.end());
      for (const auto& a : aggregates_) a.arg->CollectColumns(&cols);
      break;
    case OpType::kHashJoin:
      cols.insert(left_keys_.begin(), left_keys_.end());
      cols.insert(right_keys_.begin(), right_keys_.end());
      break;
    case OpType::kOrderBy:
    case OpType::kTopN:
      for (const auto& k : sort_keys_) cols.insert(k.column);
      break;
    case OpType::kLimit:
    case OpType::kUnionAll:
      break;
  }
  return cols;
}

uint64_t PlanNode::Signature() const {
  uint64_t sig = 0;
  for (const auto& c : ParamInputColumns()) sig |= ColumnSignatureBit(c);
  return sig;
}

std::vector<std::string> PlanNode::NewNames() const {
  std::vector<std::string> names;
  switch (type_) {
    case OpType::kProject:
      for (const auto& p : projections_) names.push_back(p.out_name);
      break;
    case OpType::kAggregate:
      for (const auto& a : aggregates_) names.push_back(a.out_name);
      break;
    case OpType::kFunctionScan:
      RDB_CHECK_MSG(bound_, "FunctionScan::NewNames requires bound plan");
      for (const auto& f : output_schema_.fields()) names.push_back(f.name);
      break;
    default:
      break;
  }
  return names;
}

bool PlanNode::HasParams() const {
  if (!arg_exprs_.empty()) return true;
  if (predicate_ != nullptr && predicate_->HasParams()) return true;
  for (const auto& item : projections_) {
    if (item.expr->HasParams()) return true;
  }
  for (const auto& a : aggregates_) {
    if (a.arg->HasParams()) return true;
  }
  for (const auto& c : children_) {
    if (c->HasParams()) return true;
  }
  return false;
}

void PlanNode::CollectParams(std::set<std::string>* out) const {
  for (const auto& e : arg_exprs_) e->CollectParams(out);
  if (predicate_ != nullptr) predicate_->CollectParams(out);
  for (const auto& item : projections_) item.expr->CollectParams(out);
  for (const auto& a : aggregates_) a.arg->CollectParams(out);
  for (const auto& c : children_) c->CollectParams(out);
}

PlanPtr PlanNode::SubstituteParams(const ParamMap& params,
                                   std::vector<std::string>* missing) {
  if (!HasParams()) return shared_from_this();
  PlanPtr p = CloneShallow();
  if (p->predicate_ != nullptr) {
    p->predicate_ = p->predicate_->SubstituteParams(params, missing);
  }
  for (auto& item : p->projections_) {
    item.expr = item.expr->SubstituteParams(params, missing);
  }
  for (auto& a : p->aggregates_) {
    a.arg = a.arg->SubstituteParams(params, missing);
  }
  if (!p->arg_exprs_.empty()) {
    std::vector<Datum> datums;
    bool all_literal = true;
    for (auto& e : p->arg_exprs_) {
      e = e->SubstituteParams(params, missing);
      if (e->kind() == ExprKind::kLiteral) {
        datums.push_back(e->literal());
      } else {
        all_literal = false;
      }
    }
    if (all_literal) {
      p->args_ = std::move(datums);
      p->arg_exprs_.clear();
    }
  }
  for (auto& c : p->children_) c = c->SubstituteParams(params, missing);
  return p;
}

std::string PlanNode::TreeFingerprint() const {
  std::string out = ParamFingerprint(nullptr);
  if (!children_.empty()) {
    out += "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += ";";
      out += children_[i]->TreeFingerprint();
    }
    out += ")";
  }
  return out;
}

PlanPtr PlanNode::CloneShallow() const {
  PlanPtr p(new PlanNode(*this));
  p->bound_ = false;
  return p;
}

PlanPtr PlanNode::CloneDeep() const {
  PlanPtr p = CloneShallow();
  for (auto& c : p->children_) c = c->CloneDeep();
  return p;
}

PlanPtr PlanNode::WithChildren(std::vector<PlanPtr> new_children) const {
  PlanPtr p = CloneShallow();
  p->children_ = std::move(new_children);
  return p;
}

PlanPtr PlanNode::WithPredicate(ExprPtr predicate) const {
  RDB_CHECK_MSG(type_ == OpType::kSelect, "WithPredicate on non-select");
  PlanPtr p = CloneShallow();
  p->predicate_ = std::move(predicate);
  return p;
}

PlanPtr PlanNode::WithProjections(std::vector<ProjItem> items) const {
  RDB_CHECK_MSG(type_ == OpType::kProject, "WithProjections on non-project");
  PlanPtr p = CloneShallow();
  p->projections_ = std::move(items);
  return p;
}

PlanPtr PlanNode::WithLimit(int64_t n) const {
  RDB_CHECK_MSG(type_ == OpType::kLimit || type_ == OpType::kTopN,
                "WithLimit on non-limit");
  PlanPtr p = CloneShallow();
  p->limit_ = n;
  return p;
}

PlanPtr PlanNode::CloneParamsRenamed(const NameMap& mapping) const {
  PlanPtr p = CloneShallow();
  p->children_.clear();
  auto map_name = [&mapping](std::string* name) {
    auto it = mapping.find(*name);
    if (it != mapping.end()) *name = it->second;
  };
  if (p->predicate_ != nullptr) p->predicate_ = p->predicate_->Rename(mapping);
  for (auto& item : p->projections_) item.expr = item.expr->Rename(mapping);
  for (auto& g : p->group_by_) map_name(&g);
  for (auto& a : p->aggregates_) a.arg = a.arg->Rename(mapping);
  for (auto& k : p->left_keys_) map_name(&k);
  for (auto& k : p->right_keys_) map_name(&k);
  for (auto& k : p->sort_keys_) map_name(&k.column);
  return p;
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  os << std::string(indent * 2, ' ') << OpTypeName(type_) << " "
     << ParamFingerprint(nullptr);
  if (bound_) os << " => " << output_schema_.ToString();
  os << "\n";
  for (const auto& c : children_) os << c->ToString(indent + 1);
  return os.str();
}

namespace {
std::string ExprDisplay(const ExprPtr& e) { return e->DisplayString(); }
}  // namespace

std::string PlanNode::Explain(int indent) const {
  std::string line;
  switch (type_) {
    case OpType::kScan:
      line = StrFormat("Scan %s [%s]", table_.c_str(),
                       Join(columns_, ", ").c_str());
      if (has_scan_range()) {
        // The delta window of a delta-maintenance rewrite: base rows
        // appended after the stitched cached result's as-of mark.
        line += scan_end_ < 0
                    ? StrFormat(" rows=[%lld, end)", (long long)scan_begin_)
                    : StrFormat(" rows=[%lld, %lld)", (long long)scan_begin_,
                                (long long)scan_end_);
      }
      break;
    case OpType::kFunctionScan: {
      line = "FunctionScan " + table_ + "(";
      if (!arg_exprs_.empty()) {
        for (size_t i = 0; i < arg_exprs_.size(); ++i) {
          if (i > 0) line += ", ";
          line += ExprDisplay(arg_exprs_[i]);
        }
      } else {
        for (size_t i = 0; i < args_.size(); ++i) {
          if (i > 0) line += ", ";
          line += DatumToString(args_[i]);
        }
      }
      line += ")";
      break;
    }
    case OpType::kSelect: {
      line = "Filter " + ExprDisplay(predicate_);
      // A Filter directly over a (cached) scan pushes its range conjuncts
      // down as zone-map prune hints at build time; surface the prunable
      // intervals here. Runtime pruned/scanned block counts land in
      // QueryTrace (Explain renders before execution).
      if (!children_.empty() &&
          (children_[0]->type() == OpType::kScan ||
           children_[0]->type() == OpType::kCachedScan)) {
        std::string pruned;
        for (const RangeSpec& spec : ExtractRangeSpecs(predicate_, nullptr)) {
          if (!pruned.empty()) pruned += ", ";
          pruned += spec.column + " in " + IntervalToString(spec.range);
        }
        if (!pruned.empty()) line += " prune[" + pruned + "]";
      }
      break;
    }
    case OpType::kProject: {
      line = "Project ";
      for (size_t i = 0; i < projections_.size(); ++i) {
        if (i > 0) line += ", ";
        line += projections_[i].out_name + " := " +
                ExprDisplay(projections_[i].expr);
      }
      break;
    }
    case OpType::kAggregate: {
      line = StrFormat("Aggregate group=[%s] ", Join(group_by_, ", ").c_str());
      for (size_t i = 0; i < aggregates_.size(); ++i) {
        if (i > 0) line += ", ";
        line += StrFormat("%s(%s) AS %s", AggFuncName(aggregates_[i].fn),
                          ExprDisplay(aggregates_[i].arg).c_str(),
                          aggregates_[i].out_name.c_str());
      }
      break;
    }
    case OpType::kHashJoin:
      line = StrFormat("HashJoin %s [%s] = [%s]", JoinKindName(join_kind_),
                       Join(left_keys_, ", ").c_str(),
                       Join(right_keys_, ", ").c_str());
      break;
    case OpType::kOrderBy:
    case OpType::kTopN: {
      line = type_ == OpType::kTopN
                 ? StrFormat("TopN n=%lld by ", (long long)limit_)
                 : "OrderBy ";
      for (size_t i = 0; i < sort_keys_.size(); ++i) {
        if (i > 0) line += ", ";
        line += sort_keys_[i].column + (sort_keys_[i].ascending ? " asc"
                                                                : " desc");
      }
      break;
    }
    case OpType::kLimit:
      line = StrFormat("Limit %lld", (long long)limit_);
      break;
    case OpType::kUnionAll:
      line = "UnionAll";
      break;
    case OpType::kCachedScan:
      line = StrFormat("CachedScan rows=%lld [%s]",
                       cached_ != nullptr ? (long long)cached_->num_rows() : 0,
                       Join(columns_, ", ").c_str());
      if (as_of_rows_ >= 0) {
        line += StrFormat(" as-of=%lld", (long long)as_of_rows_);
      }
      if (!cache_key_.empty()) line += StrFormat(" key=%s", cache_key_.c_str());
      break;
  }
  std::string out = std::string(indent * 2, ' ') + line + "\n";
  for (const auto& c : children_) out += c->Explain(indent + 1);
  return out;
}

}  // namespace recycledb
