#include "plan/canonicalize.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/interval.h"
#include "common/macros.h"

namespace recycledb {

namespace {

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

bool IsLiteral(const ExprPtr& e) { return e->kind() == ExprKind::kLiteral; }

bool IsBoolLiteral(const ExprPtr& e, bool value) {
  return IsLiteral(e) && std::holds_alternative<bool>(e->literal()) &&
         std::get<bool>(e->literal()) == value;
}

ExprPtr BoolLiteral(bool value) { return Expr::Literal(value); }

/// Literal usable as an interval bound / foldable operand: int32, int64,
/// double or string (not NULL, not bool).
bool OrderableDatum(const Datum& d) { return d.index() >= 2; }

CompareOp MirrorOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and != are symmetric
  }
}

CompareOp NegateOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kNe;
    case CompareOp::kNe:
      return CompareOp::kEq;
    case CompareOp::kLt:
      return CompareOp::kGe;
    case CompareOp::kLe:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLe;
    case CompareOp::kGe:
      return CompareOp::kLt;
  }
  RDB_UNREACHABLE("bad compare op");
}

/// Constant-folds a comparison of two literals, mirroring Eval exactly:
/// strings compare lexicographically, everything else through double
/// (bool as 0/1). Returns nullptr when the operands are not comparable
/// (NULL involved, or string vs non-string — validation rejects those).
ExprPtr FoldCompare(CompareOp op, const Datum& a, const Datum& b) {
  if (a.index() == 0 || b.index() == 0) return nullptr;
  bool sa = a.index() == 5, sb = b.index() == 5;
  if (sa != sb) return nullptr;
  int c;
  if (sa) {
    c = DatumCompare(a, b);
  } else {
    double da = DatumAsDouble(a), db = DatumAsDouble(b);
    c = da < db ? -1 : (da > db ? 1 : 0);
  }
  bool v = false;
  switch (op) {
    case CompareOp::kEq:
      v = c == 0;
      break;
    case CompareOp::kNe:
      v = c != 0;
      break;
    case CompareOp::kLt:
      v = c < 0;
      break;
    case CompareOp::kLe:
      v = c <= 0;
      break;
    case CompareOp::kGt:
      v = c > 0;
      break;
    case CompareOp::kGe:
      v = c >= 0;
      break;
  }
  return BoolLiteral(v);
}

/// Constant-folds an arithmetic node over two literals with Eval's exact
/// type promotion (double > int64 > int32) and division-by-zero-yields-0
/// rule. Returns nullptr for non-numeric operands.
ExprPtr FoldArith(ArithOp op, const Datum& a, const Datum& b) {
  TypeId lt = DatumType(a), rt = DatumType(b);
  if (!IsNumeric(lt) || !IsNumeric(rt)) return nullptr;
  if (lt == TypeId::kDouble || rt == TypeId::kDouble) {
    double x = DatumAsDouble(a), y = DatumAsDouble(b), r = 0;
    switch (op) {
      case ArithOp::kAdd:
        r = x + y;
        break;
      case ArithOp::kSub:
        r = x - y;
        break;
      case ArithOp::kMul:
        r = x * y;
        break;
      case ArithOp::kDiv:
        r = y == 0 ? 0 : x / y;
        break;
    }
    return Expr::Literal(r);
  }
  if (lt == TypeId::kInt64 || rt == TypeId::kInt64) {
    int64_t x = DatumAsInt64(a), y = DatumAsInt64(b), r = 0;
    switch (op) {
      case ArithOp::kAdd:
        r = static_cast<int64_t>(static_cast<uint64_t>(x) +
                                 static_cast<uint64_t>(y));
        break;
      case ArithOp::kSub:
        r = static_cast<int64_t>(static_cast<uint64_t>(x) -
                                 static_cast<uint64_t>(y));
        break;
      case ArithOp::kMul:
        r = static_cast<int64_t>(static_cast<uint64_t>(x) *
                                 static_cast<uint64_t>(y));
        break;
      case ArithOp::kDiv:
        // INT64_MIN / -1 wraps to INT64_MIN on the hardware Eval runs on.
        r = y == 0 ? 0
                   : (x == INT64_MIN && y == -1 ? INT64_MIN : x / y);
        break;
    }
    return Expr::Literal(r);
  }
  // int32: Eval truncates operands to int32 and operates in int32; fold
  // through int64 so overflow wraps deterministically instead of being UB
  // in our own code.
  int32_t x = static_cast<int32_t>(DatumAsInt64(a));
  int32_t y = static_cast<int32_t>(DatumAsInt64(b));
  int64_t wide = 0;
  switch (op) {
    case ArithOp::kAdd:
      wide = static_cast<int64_t>(x) + y;
      break;
    case ArithOp::kSub:
      wide = static_cast<int64_t>(x) - y;
      break;
    case ArithOp::kMul:
      wide = static_cast<int64_t>(x) * y;
      break;
    case ArithOp::kDiv:
      wide = y == 0 ? 0 : static_cast<int64_t>(x) / y;
      break;
  }
  return Expr::Literal(static_cast<int32_t>(wide));
}

/// Flattens a same-operator AND/OR subtree into its operand list.
void FlattenLogical(LogicalOp op, const ExprPtr& e,
                    std::vector<ExprPtr>* out) {
  if (e->kind() == ExprKind::kLogical && e->logical_op() == op) {
    for (const ExprPtr& c : e->children()) FlattenLogical(op, c, out);
    return;
  }
  out->push_back(e);
}

/// True for a range conjunct `col <op> literal` usable in interval
/// merging (op is not !=, literal is orderable).
bool IsRangeConjunct(const ExprPtr& e, std::string* col, CompareOp* op,
                     Datum* lit) {
  if (e->kind() != ExprKind::kCompare) return false;
  if (e->compare_op() == CompareOp::kNe) return false;
  const ExprPtr& l = e->children()[0];
  const ExprPtr& r = e->children()[1];
  if (l->kind() != ExprKind::kColumnRef || !IsLiteral(r)) return false;
  if (!OrderableDatum(r->literal())) return false;
  *col = l->column_name();
  *op = e->compare_op();
  *lit = r->literal();
  return true;
}

ExprPtr RangeConjunct(const std::string& col, CompareOp op, Datum value) {
  return Expr::Compare(op, Expr::Column(col), Expr::Literal(std::move(value)));
}

ExprPtr BuildLogicalChain(LogicalOp op, const std::vector<ExprPtr>& parts) {
  ExprPtr acc = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) {
    acc = op == LogicalOp::kAnd ? Expr::And(acc, parts[i])
                                : Expr::Or(acc, parts[i]);
  }
  return acc;
}

ExprPtr CanonicalizeLogicalChain(LogicalOp op, const ExprPtr& e);

ExprPtr CanonicalizeExprImpl(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kColumnRef:
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return e;
    case ExprKind::kCompare: {
      ExprPtr l = CanonicalizeExpr(e->children()[0]);
      ExprPtr r = CanonicalizeExpr(e->children()[1]);
      CompareOp op = e->compare_op();
      if (IsLiteral(l) && IsLiteral(r)) {
        ExprPtr folded = FoldCompare(op, l->literal(), r->literal());
        if (folded != nullptr) return folded;
      }
      if (IsLiteral(l) && !IsLiteral(r)) {
        // `5 < x` normalizes to `x > 5`.
        return Expr::Compare(MirrorOp(op), r, l);
      }
      if (l == e->children()[0] && r == e->children()[1]) return e;
      return Expr::Compare(op, std::move(l), std::move(r));
    }
    case ExprKind::kLogical: {
      if (e->logical_op() == LogicalOp::kNot) {
        ExprPtr c = CanonicalizeExpr(e->children()[0]);
        if (IsLiteral(c) && std::holds_alternative<bool>(c->literal())) {
          return BoolLiteral(!std::get<bool>(c->literal()));
        }
        if (c->kind() == ExprKind::kCompare) {
          // NULL-free engine: NOT(a < b) is exactly a >= b.
          return CanonicalizeExpr(Expr::Compare(NegateOp(c->compare_op()),
                                                c->children()[0],
                                                c->children()[1]));
        }
        if (c->kind() == ExprKind::kLogical &&
            c->logical_op() == LogicalOp::kNot) {
          return c->children()[0];
        }
        if (c->kind() == ExprKind::kLike) {
          if (c->like_kind() == LikeKind::kContains) {
            return Expr::Like(LikeKind::kNotContains, c->children()[0],
                              c->like_pattern());
          }
          if (c->like_kind() == LikeKind::kNotContains) {
            return Expr::Like(LikeKind::kContains, c->children()[0],
                              c->like_pattern());
          }
        }
        if (c == e->children()[0]) return e;
        return Expr::Not(std::move(c));
      }
      return CanonicalizeLogicalChain(e->logical_op(), e);
    }
    case ExprKind::kArith: {
      ExprPtr l = CanonicalizeExpr(e->children()[0]);
      ExprPtr r = CanonicalizeExpr(e->children()[1]);
      if (IsLiteral(l) && IsLiteral(r)) {
        ExprPtr folded = FoldArith(e->arith_op(), l->literal(), r->literal());
        if (folded != nullptr) return folded;
      }
      if (l == e->children()[0] && r == e->children()[1]) return e;
      return Expr::Arith(e->arith_op(), std::move(l), std::move(r));
    }
    case ExprKind::kFunc: {
      std::vector<ExprPtr> kids;
      bool changed = false;
      for (const ExprPtr& c : e->children()) {
        kids.push_back(CanonicalizeExpr(c));
        changed = changed || kids.back() != c;
      }
      if (!changed) return e;
      return Expr::Func(e->func_name(), std::move(kids));
    }
    case ExprKind::kCase: {
      // Branch types promote jointly (int32 THEN with int64 ELSE yields
      // int64), so folding a constant condition down to one branch could
      // change the output column type; only the children canonicalize.
      ExprPtr c0 = CanonicalizeExpr(e->children()[0]);
      ExprPtr c1 = CanonicalizeExpr(e->children()[1]);
      ExprPtr c2 = CanonicalizeExpr(e->children()[2]);
      if (c0 == e->children()[0] && c1 == e->children()[1] &&
          c2 == e->children()[2]) {
        return e;
      }
      return Expr::Case(std::move(c0), std::move(c1), std::move(c2));
    }
    case ExprKind::kInList: {
      ExprPtr c = CanonicalizeExpr(e->children()[0]);
      // Membership is order-independent: sort and deduplicate the list.
      std::vector<Datum> values = e->in_values();
      std::stable_sort(values.begin(), values.end(),
                       [](const Datum& a, const Datum& b) {
                         bool sa = a.index() == 5, sb = b.index() == 5;
                         if (sa != sb) return !sa;  // mixed types: validation
                                                    // rejects; order stably
                         if (a.index() == 0 || b.index() == 0) return false;
                         return DatumCompare(a, b) < 0;
                       });
      values.erase(std::unique(values.begin(), values.end(),
                               [](const Datum& a, const Datum& b) {
                                 if ((a.index() == 5) != (b.index() == 5)) {
                                   return false;
                                 }
                                 if (a.index() == 0 || b.index() == 0) {
                                   return a.index() == b.index();
                                 }
                                 return DatumCompare(a, b) == 0;
                               }),
                   values.end());
      bool same = c == e->children()[0] && values.size() == e->in_values().size();
      for (size_t i = 0; same && i < values.size(); ++i) {
        same = values[i].index() == e->in_values()[i].index() &&
               DatumToString(values[i]) == DatumToString(e->in_values()[i]);
      }
      if (same) return e;
      return Expr::In(std::move(c), std::move(values));
    }
    case ExprKind::kLike: {
      ExprPtr c = CanonicalizeExpr(e->children()[0]);
      if (c == e->children()[0]) return e;
      return Expr::Like(e->like_kind(), std::move(c), e->like_pattern());
    }
  }
  RDB_UNREACHABLE("bad expr kind");
}

ExprPtr CanonicalizeLogicalChain(LogicalOp op, const ExprPtr& e) {
  const bool is_and = op == LogicalOp::kAnd;
  std::vector<ExprPtr> parts;
  for (const ExprPtr& c : e->children()) {
    FlattenLogical(op, CanonicalizeExpr(c), &parts);
  }
  std::vector<ExprPtr> kept;
  for (const ExprPtr& p : parts) {
    if (IsBoolLiteral(p, is_and)) continue;      // identity element
    if (IsBoolLiteral(p, !is_and)) {
      return BoolLiteral(!is_and);               // absorbing element
    }
    kept.push_back(p);
  }
  if (is_and) {
    // Merge per-column range conjuncts into one canonical interval:
    // `x > 1 AND x > 2` -> `x > 2`; `x >= 5 AND x <= 5` -> `x = 5`;
    // a contradictory interval collapses the conjunction to FALSE.
    struct Group {
      ColumnInterval iv;
      bool is_string = false;
      bool mixed = false;
      std::vector<ExprPtr> originals;
    };
    std::map<std::string, Group> groups;
    std::vector<ExprPtr> rest;
    for (const ExprPtr& p : kept) {
      std::string col;
      CompareOp cop;
      Datum lit;
      if (!IsRangeConjunct(p, &col, &cop, &lit)) {
        rest.push_back(p);
        continue;
      }
      Group& g = groups[col];
      bool lit_string = lit.index() == 5;
      if (g.originals.empty()) {
        g.is_string = lit_string;
      } else if (g.is_string != lit_string) {
        g.mixed = true;  // string vs numeric: leave for validation
      }
      g.originals.push_back(p);
      if (g.mixed) continue;
      RangeBound lo, hi;
      switch (cop) {
        case CompareOp::kEq:
          lo = {false, lit, true};
          hi = {false, lit, true};
          break;
        case CompareOp::kLt:
          hi = {false, lit, false};
          break;
        case CompareOp::kLe:
          hi = {false, lit, true};
          break;
        case CompareOp::kGt:
          lo = {false, lit, false};
          break;
        case CompareOp::kGe:
          lo = {false, lit, true};
          break;
        case CompareOp::kNe:
          break;  // excluded by IsRangeConjunct
      }
      if (!lo.unbounded) g.iv.lo = TighterLo(g.iv.lo, lo);
      if (!hi.unbounded) g.iv.hi = TighterHi(g.iv.hi, hi);
    }
    for (auto& [col, g] : groups) {
      if (g.mixed) {
        rest.insert(rest.end(), g.originals.begin(), g.originals.end());
        continue;
      }
      if (IntervalEmpty(g.iv)) return BoolLiteral(false);
      bool point = !g.iv.lo.unbounded && !g.iv.hi.unbounded &&
                   g.iv.lo.inclusive && g.iv.hi.inclusive &&
                   DatumCompare(g.iv.lo.value, g.iv.hi.value) == 0;
      if (point) {
        rest.push_back(RangeConjunct(col, CompareOp::kEq, g.iv.lo.value));
        continue;
      }
      if (!g.iv.lo.unbounded) {
        rest.push_back(RangeConjunct(
            col, g.iv.lo.inclusive ? CompareOp::kGe : CompareOp::kGt,
            g.iv.lo.value));
      }
      if (!g.iv.hi.unbounded) {
        rest.push_back(RangeConjunct(
            col, g.iv.hi.inclusive ? CompareOp::kLe : CompareOp::kLt,
            g.iv.hi.value));
      }
    }
    kept = std::move(rest);
  }
  // Deduplicate, then order deterministically by structural fingerprint.
  std::vector<std::pair<std::string, ExprPtr>> keyed;
  for (const ExprPtr& p : kept) {
    std::string fp = p->Fingerprint(nullptr);
    bool dup = false;
    for (const auto& [k, q] : keyed) dup = dup || k == fp;
    if (!dup) keyed.emplace_back(std::move(fp), p);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  if (keyed.empty()) return BoolLiteral(is_and);
  if (keyed.size() == 1) return keyed[0].second;
  std::vector<ExprPtr> ordered;
  for (auto& [k, p] : keyed) ordered.push_back(std::move(p));
  ExprPtr rebuilt = BuildLogicalChain(op, ordered);
  // Pointer stability: an already-canonical chain (same operands, same
  // order, left-deep) rebuilds to an identical fingerprint — return the
  // original so callers can detect "unchanged" by pointer.
  if (rebuilt->Fingerprint(nullptr) == e->Fingerprint(nullptr)) return e;
  return rebuilt;
}

// ---------------------------------------------------------------------------
// Plan helpers
// ---------------------------------------------------------------------------

/// Output column names of a canonical subtree, when they are statically
/// derivable without a catalog (function scans and joins return nullopt).
std::optional<std::vector<std::string>> OutputNames(const PlanNode& n) {
  switch (n.type()) {
    case OpType::kScan:
    case OpType::kCachedScan:
      return n.scan_columns();
    case OpType::kProject: {
      std::vector<std::string> names;
      for (const ProjItem& it : n.projections()) names.push_back(it.out_name);
      return names;
    }
    case OpType::kAggregate: {
      std::vector<std::string> names = n.group_by();
      for (const AggItem& a : n.aggregates()) names.push_back(a.out_name);
      return names;
    }
    case OpType::kSelect:
    case OpType::kOrderBy:
    case OpType::kTopN:
    case OpType::kLimit:
      return OutputNames(*n.children()[0]);
    default:
      return std::nullopt;
  }
}

bool AllColumnRefs(const std::vector<ProjItem>& items) {
  for (const ProjItem& it : items) {
    if (it.expr->kind() != ExprKind::kColumnRef) return false;
  }
  return true;
}

/// Builds the canonical form of Select(`base`, `pred`) where `base` is
/// already canonical and `pred` is already canonical. `reuse` (optional)
/// is the original node, returned unchanged when the rewrite is a no-op
/// so callers preserve sharing (and the template hash riding on it).
PlanPtr CanonicalSelect(PlanPtr base, ExprPtr pred, const PlanPtr& reuse) {
  // Merge a chain of Selects into one conjunction.
  std::vector<ExprPtr> preds{pred};
  while (base->type() == OpType::kSelect) {
    preds.push_back(base->predicate());
    base = base->children()[0];
  }
  ExprPtr combined =
      preds.size() == 1 ? pred : CanonicalizeExpr(AndAll(preds));
  if (IsBoolLiteral(combined, true)) return base;

  if (!IsBoolLiteral(combined, false)) {
    // Push below a stable full sort: filtering preserves the relative
    // order of surviving rows, so sort-then-filter and filter-then-sort
    // are bit-identical (the sort tie-breaks by input row index).
    if (base->type() == OpType::kOrderBy) {
      return base->WithChildren(
          {CanonicalSelect(base->children()[0], combined, nullptr)});
    }
    // Push below a projection when every referenced column is a plain
    // pass-through (rename) of an input column.
    if (base->type() == OpType::kProject) {
      NameMap rename;
      bool ok = true;
      std::set<std::string> cols;
      combined->CollectColumns(&cols);
      for (const std::string& c : cols) {
        bool found = false;
        for (const ProjItem& it : base->projections()) {
          if (it.out_name != c) continue;
          found = true;
          if (it.expr->kind() == ExprKind::kColumnRef) {
            rename[c] = it.expr->column_name();
          } else {
            ok = false;
          }
          break;
        }
        ok = ok && found;
      }
      if (ok) {
        ExprPtr pushed = CanonicalizeExpr(combined->Rename(rename));
        return base->WithChildren(
            {CanonicalSelect(base->children()[0], pushed, nullptr)});
      }
    }
  }

  if (reuse != nullptr && reuse->children()[0] == base &&
      reuse->predicate() == combined) {
    return reuse;
  }
  if (reuse != nullptr) {
    return reuse->WithPredicate(combined)->WithChildren({std::move(base)});
  }
  return PlanNode::Select(std::move(base), std::move(combined));
}

PlanPtr CanonicalizeNode(PlanPtr node) {
  switch (node->type()) {
    case OpType::kSelect:
      return CanonicalSelect(node->children()[0],
                             CanonicalizeExpr(node->predicate()), node);
    case OpType::kProject: {
      std::vector<ProjItem> items = node->projections();
      bool changed = false;
      for (ProjItem& it : items) {
        ExprPtr e = CanonicalizeExpr(it.expr);
        changed = changed || e != it.expr;
        it.expr = std::move(e);
      }
      PlanPtr cur = changed ? node->WithProjections(items) : node;
      // Compose rename chains: Project over a columns-only Project
      // collapses into one projection over the grandchild.
      while (cur->children()[0]->type() == OpType::kProject &&
             AllColumnRefs(cur->children()[0]->projections())) {
        const PlanPtr& inner = cur->children()[0];
        NameMap rename;
        for (const ProjItem& it : inner->projections()) {
          rename[it.out_name] = it.expr->column_name();
        }
        std::vector<ProjItem> composed;
        for (const ProjItem& it : cur->projections()) {
          composed.push_back(
              {CanonicalizeExpr(it.expr->Rename(rename)), it.out_name});
        }
        cur = cur->WithProjections(composed)
                  ->WithChildren({inner->children()[0]});
      }
      // Identity projection: same names, same order, plain columns.
      std::optional<std::vector<std::string>> names =
          OutputNames(*cur->children()[0]);
      if (names.has_value() && AllColumnRefs(cur->projections()) &&
          cur->projections().size() == names->size()) {
        bool identity = true;
        for (size_t i = 0; identity && i < names->size(); ++i) {
          const ProjItem& it = cur->projections()[i];
          identity = it.out_name == (*names)[i] &&
                     it.expr->column_name() == (*names)[i];
        }
        if (identity) return cur->children()[0];
      }
      return cur;
    }
    case OpType::kLimit: {
      // Limit(Limit(x, n), m) -> Limit(x, min(n, m)).
      if (node->children()[0]->type() == OpType::kLimit) {
        const PlanPtr& inner = node->children()[0];
        return node->WithLimit(std::min(node->limit(), inner->limit()))
            ->WithChildren({inner->children()[0]});
      }
      return node;
    }
    default:
      return node;
  }
}

}  // namespace

ExprPtr CanonicalizeExpr(const ExprPtr& expr) {
  return CanonicalizeExprImpl(expr);
}

PlanPtr CanonicalizePlan(const PlanPtr& plan) {
  std::vector<PlanPtr> kids;
  bool changed = false;
  for (const PlanPtr& c : plan->children()) {
    kids.push_back(CanonicalizePlan(c));
    changed = changed || kids.back() != c;
  }
  PlanPtr node = changed ? plan->WithChildren(std::move(kids)) : plan;
  return CanonicalizeNode(std::move(node));
}

}  // namespace recycledb
