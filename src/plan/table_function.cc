#include "plan/table_function.h"

namespace recycledb {

TableFunctionRegistry& TableFunctionRegistry::Global() {
  static TableFunctionRegistry* registry = new TableFunctionRegistry();
  return *registry;
}

void TableFunctionRegistry::Register(TableFunction fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = fns_[fn.name];
  if (slot == nullptr) {
    slot = std::make_unique<TableFunction>(std::move(fn));
  } else {
    *slot = std::move(fn);
  }
}

const TableFunction* TableFunctionRegistry::Get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fns_.find(name);
  return it == fns_.end() ? nullptr : it->second.get();
}

}  // namespace recycledb
