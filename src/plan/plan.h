// Logical plan IR: the optimized operator trees the recycler graph indexes.
//
// A PlanNode is a relational operator plus its parameters (the paper's
// "node representing a relational algebraic operator and its parameters").
// Plans are built by the workload generators (we play the role of the
// optimizer: plans are already decorrelated and pushed down), bound against
// a Catalog, then handed to Recycler::Prepare which matches them against
// the recycler graph and rewrites them for reuse / materialization.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "expr/aggregate.h"
#include "expr/expression.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace recycledb {

/// Relational operator types.
enum class OpType : uint8_t {
  kScan,          // base-table scan with column pruning
  kFunctionScan,  // table-valued function (SkyServer fGetNearbyObjEq)
  kSelect,        // filter by predicate
  kProject,       // compute expressions, assign output names
  kAggregate,     // hash group-by + aggregates (global agg if no groups)
  kHashJoin,      // equi-join; right child is the build side
  kOrderBy,       // full sort
  kTopN,          // heap-based top-N, output sorted
  kLimit,         // first N rows
  kUnionAll,      // bag union of union-compatible children
  kCachedScan,    // physical-only: scan of a recycler-cache result
};

const char* OpTypeName(OpType type);

/// Join flavors. For kSemi/kAnti only left columns are produced.
/// kSingle is an inner join that RDB_CHECKs the build side has at most one
/// match per probe row (decorrelated scalar subqueries).
enum class JoinKind : uint8_t { kInner, kLeftOuter, kSemi, kAnti, kSingle };

const char* JoinKindName(JoinKind kind);

/// Sort specification for kOrderBy/kTopN.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// One computed output column of a kProject.
struct ProjItem {
  ExprPtr expr;
  std::string out_name;
};

class PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// A logical plan operator.
///
/// Only the fields relevant to `type` are meaningful. Nodes are mutable
/// while a plan is being constructed/rewritten and must be treated as
/// immutable once handed to the recycler (rewrites clone).
class PlanNode : public std::enable_shared_from_this<PlanNode> {
 public:
  // ---- factories ------------------------------------------------------
  static PlanPtr Scan(std::string table, std::vector<std::string> columns);
  /// Bounded scan over base-table rows [begin, end): the delta window of
  /// the delta-maintenance rewrite (rows appended after a cached result's
  /// as-of mark). `end` of -1 means "to the end of the table". Zone-map
  /// pruning still applies inside the window.
  static PlanPtr ScanRange(std::string table, std::vector<std::string> columns,
                           int64_t begin, int64_t end);
  static PlanPtr FunctionScan(std::string function, std::vector<Datum> args);
  /// FunctionScan whose arguments may contain Expr::Param placeholders.
  /// Every arg must be a kLiteral or kParam expression. The node cannot be
  /// bound until SubstituteParams resolves all args to literals; with
  /// literal-only args this returns a plain FunctionScan immediately.
  static PlanPtr FunctionScanTemplate(std::string function,
                                      std::vector<ExprPtr> args);
  static PlanPtr Select(PlanPtr child, ExprPtr predicate);
  static PlanPtr Project(PlanPtr child, std::vector<ProjItem> items);
  static PlanPtr Aggregate(PlanPtr child, std::vector<std::string> group_by,
                           std::vector<AggItem> aggregates);
  static PlanPtr HashJoin(PlanPtr left, PlanPtr right, JoinKind kind,
                          std::vector<std::string> left_keys,
                          std::vector<std::string> right_keys);
  static PlanPtr OrderBy(PlanPtr child, std::vector<SortKey> keys);
  static PlanPtr TopN(PlanPtr child, std::vector<SortKey> keys, int64_t n);
  static PlanPtr Limit(PlanPtr child, int64_t n);
  static PlanPtr UnionAll(std::vector<PlanPtr> children);
  /// A scan over an already-materialized result. `column_names` renames the
  /// result's columns into the names this plan position expects.
  static PlanPtr CachedScan(TablePtr result,
                            std::vector<std::string> column_names);

  // ---- accessors --------------------------------------------------------
  OpType type() const { return type_; }
  const std::vector<PlanPtr>& children() const { return children_; }
  PlanPtr child(int i = 0) const { return children_[i]; }
  int num_children() const { return static_cast<int>(children_.size()); }

  const std::string& table_name() const { return table_; }
  const std::vector<std::string>& scan_columns() const { return columns_; }
  /// First base-table row a kScan reads (0 for a full scan).
  int64_t scan_begin() const { return scan_begin_; }
  /// One past the last base-table row a kScan reads; -1 = to the end.
  int64_t scan_end() const { return scan_end_; }
  /// True when this kScan carries an explicit row window.
  bool has_scan_range() const { return scan_begin_ > 0 || scan_end_ >= 0; }
  const std::string& function_name() const { return table_; }
  const std::vector<Datum>& function_args() const { return args_; }
  /// Unresolved function args of a template FunctionScan (empty once
  /// SubstituteParams has resolved them into function_args()).
  const std::vector<ExprPtr>& function_arg_exprs() const { return arg_exprs_; }
  const ExprPtr& predicate() const { return predicate_; }
  const std::vector<ProjItem>& projections() const { return projections_; }
  const std::vector<std::string>& group_by() const { return group_by_; }
  const std::vector<AggItem>& aggregates() const { return aggregates_; }
  JoinKind join_kind() const { return join_kind_; }
  const std::vector<std::string>& left_keys() const { return left_keys_; }
  const std::vector<std::string>& right_keys() const { return right_keys_; }
  const std::vector<SortKey>& sort_keys() const { return sort_keys_; }
  int64_t limit() const { return limit_; }
  const TablePtr& cached_result() const { return cached_; }

  /// Recycler-cache identity of a kCachedScan: the canonical subtree key
  /// of the graph node whose result this scan reads (also the cold-tier
  /// spill key). Display-only — excluded from fingerprints — and printed
  /// by Explain so reuse decisions are attributable to cache entries.
  const std::string& cache_key() const { return cache_key_; }
  void set_cache_key(std::string key) { cache_key_ = std::move(key); }

  /// Append high-water mark the result behind a kCachedScan was computed
  /// at (result-as-of-row-N, delta maintenance). Display-only — excluded
  /// from fingerprints — and printed by Explain; -1 means unstamped.
  int64_t as_of_rows() const { return as_of_rows_; }
  void set_as_of_rows(int64_t rows) { as_of_rows_ = rows; }

  bool bound() const { return bound_; }
  const Schema& output_schema() const;

  /// Base tables this subtree reads (set at Bind; used for invalidation).
  const std::set<std::string>& base_tables() const { return base_tables_; }

  // ---- binding ----------------------------------------------------------
  /// Resolves output schemas bottom-up and validates column references.
  /// Idempotent. RDB_CHECK-fails on invalid plans (programmer error: plans
  /// are produced by our own generators). Embedders building plans through
  /// the public API get recoverable Status errors from ValidatePlan
  /// (api/validate.h) before this runs.
  void Bind(const Catalog& catalog);

  // ---- parameterized templates ------------------------------------------
  /// True if any expression in this subtree contains a parameter
  /// placeholder (or a template FunctionScan with unresolved args).
  bool HasParams() const;

  /// Adds every parameter placeholder name in the subtree to `out`.
  void CollectParams(std::set<std::string>* out) const;

  /// Returns this plan with parameters replaced by the literals bound in
  /// `params`. Parameter-free subtrees are shared (not cloned), so
  /// repeated rebinding of the same template only re-creates the
  /// parameterized spine. Unbound names are appended to `missing`.
  PlanPtr SubstituteParams(const ParamMap& params,
                           std::vector<std::string>* missing);

  /// Canonical fingerprint of a (possibly parameterized) template:
  /// parameters render as $name, so every binding of one template yields
  /// the same fingerprint. PreparedStatement hashes this once at Prepare;
  /// the hash rides on bound plans (template_hash) and lets the recycler
  /// attribute reuse to the template cheaply.
  std::string TemplateFingerprint() const { return TreeFingerprint(); }

  /// Template identity tag (0 = none). Set on bound plans produced from a
  /// PreparedStatement; propagated by CloneShallow/WithChildren, read by
  /// Recycler::Prepare into QueryTrace::template_hash.
  uint64_t template_hash() const { return template_hash_; }
  void set_template_hash(uint64_t h) { template_hash_ = h; }

  // ---- recycler support ---------------------------------------------------
  /// Fingerprint of this node's *parameters only* (not children), with
  /// column names translated through `mapping` (query -> graph space).
  /// Two nodes with equal op type, equal parameter fingerprints and
  /// exactly-matching children are bisimilar (the paper's exact match).
  std::string ParamFingerprint(const NameMap* mapping) const;

  /// Hash key for candidate lookup: cheap characteristics that must match
  /// exactly (op type + shallow parameters). Collisions are resolved by
  /// ParamFingerprint comparison.
  uint64_t HashKey() const;

  /// Column names referenced by this node's parameters (predicate columns,
  /// join keys, group-by columns, ...). These are the names the matcher
  /// translates through name mappings; signatures are derived from them.
  std::set<std::string> ParamInputColumns() const;

  /// Column-bitmask signature over ParamInputColumns() (unmapped names).
  uint64_t Signature() const;

  /// Output column names (query space) that this node newly assigns
  /// (project/aggregate outputs). Pass-through names are not included.
  std::vector<std::string> NewNames() const;

  /// Full-subtree structural fingerprint (no name mapping); used by tests
  /// and by the keep-all baseline's direct result matching.
  std::string TreeFingerprint() const;

  /// Shallow copy (children shared). Clears binding on the copy.
  PlanPtr CloneShallow() const;

  /// Deep copy of the whole tree (expressions still shared — they are
  /// immutable). Used by the async facade so concurrent submissions of
  /// one Query never race on Bind's schema writes.
  PlanPtr CloneDeep() const;

  /// Shallow copy with `children` substituted (used by rewrites).
  PlanPtr WithChildren(std::vector<PlanPtr> new_children) const;

  /// Shallow copy with a replacement predicate (kSelect; used by the
  /// canonicalizer so rewrites keep the template hash of the original).
  PlanPtr WithPredicate(ExprPtr predicate) const;

  /// Shallow copy with replacement projection items (kProject).
  PlanPtr WithProjections(std::vector<ProjItem> items) const;

  /// Shallow copy with a replacement row limit (kLimit/kTopN).
  PlanPtr WithLimit(int64_t n) const;

  /// Childless copy with every column reference in the parameters renamed
  /// through `mapping` (query space -> graph space). Stored inside
  /// recycler-graph nodes so subsumption/proactive logic can inspect
  /// parameters in graph name space.
  PlanPtr CloneParamsRenamed(const NameMap& mapping) const;

  /// Pretty multi-line plan rendering.
  std::string ToString(int indent = 0) const;

  /// Human-readable indented operator tree with parameters ($name for
  /// unbound placeholders). Used by Query::Explain / Statement::Explain
  /// and by API error messages.
  std::string Explain(int indent = 0) const;

 private:
  PlanNode() = default;

  OpType type_ = OpType::kScan;
  std::vector<PlanPtr> children_;

  std::string table_;                  // scan table / function name
  std::vector<std::string> columns_;   // scan column list / cached col names
  int64_t scan_begin_ = 0;             // kScan row window [begin, end)
  int64_t scan_end_ = -1;              // -1 = unbounded (to end of table)
  int64_t as_of_rows_ = -1;            // kCachedScan as-of mark (display)
  std::vector<Datum> args_;            // function args
  std::vector<ExprPtr> arg_exprs_;     // template function args (unresolved)
  uint64_t template_hash_ = 0;         // prepared-statement template tag
  ExprPtr predicate_;                  // select
  std::vector<ProjItem> projections_;  // project
  std::vector<std::string> group_by_;  // aggregate
  std::vector<AggItem> aggregates_;    // aggregate
  JoinKind join_kind_ = JoinKind::kInner;
  std::vector<std::string> left_keys_, right_keys_;
  std::vector<SortKey> sort_keys_;
  int64_t limit_ = 0;
  TablePtr cached_;
  std::string cache_key_;  // kCachedScan provenance (display-only)

  bool bound_ = false;
  Schema output_schema_;
  std::set<std::string> base_tables_;
};

}  // namespace recycledb
