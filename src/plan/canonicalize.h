// Canonicalizing rewrite pass: syntactically different, semantically
// equal plans normalize to one structural form so their fingerprints —
// and therefore their recycler-graph nodes, cache entries and cold-tier
// subtree keys — coincide.
//
// Rules (documented with examples in DESIGN.md "SQL front-end &
// normalization"):
//   - constant folding matching Eval semantics exactly (type promotion,
//     division-by-zero-yields-0, numeric comparison through double)
//   - comparison normalization: `5 < x` becomes `x > 5`
//   - AND/OR flattening, conjunct deduplication and deterministic
//     (fingerprint-sorted) ordering, TRUE/FALSE simplification
//   - per-column range-conjunct merging: `x > 1 AND x > 2` -> `x > 2`,
//     `x >= 5 AND x <= 5` -> `x = 5`, contradictions -> FALSE
//   - NOT elimination over comparisons (NULL-free engine)
//   - Select merging and pushdown below Project (pass-through columns)
//     and below OrderBy (stable sort: bit-identical results)
//   - identity-Project elimination and rename-chain composition
//   - Limit(Limit) collapsing
//
// Every rewrite is result-preserving bit-for-bit (row order included);
// the pass is pure (input trees are never mutated, unchanged subtrees
// are shared) and idempotent. Parameter placeholders are left alone, so
// prepared-statement templates canonicalize the same way as their
// substituted instances.
#pragma once

#include "expr/expression.h"
#include "plan/plan.h"

namespace recycledb {

/// Canonicalizes a scalar expression (see the file comment for the rule
/// set). Returns the input pointer when nothing changed.
ExprPtr CanonicalizeExpr(const ExprPtr& expr);

/// Canonicalizes a plan tree bottom-up. Pure: `plan` is unchanged and
/// untouched subtrees are shared with the result. Returns the input
/// pointer when nothing changed.
PlanPtr CanonicalizePlan(const PlanPtr& plan);

}  // namespace recycledb
