#include "skyserver/skyserver.h"

#include <cmath>
#include <cstdlib>

#include "common/macros.h"
#include "common/string_util.h"
#include "plan/table_function.h"

namespace recycledb {
namespace skyserver {

namespace {

Schema PhotoPrimarySchema() {
  return Schema({{"objID", TypeId::kInt64},
                 {"run", TypeId::kInt32},
                 {"rerun", TypeId::kInt32},
                 {"camcol", TypeId::kInt32},
                 {"field", TypeId::kInt32},
                 {"obj", TypeId::kInt32},
                 {"type", TypeId::kInt32},
                 {"ra", TypeId::kDouble},
                 {"dec", TypeId::kDouble},
                 {"u_mag", TypeId::kDouble},
                 {"g_mag", TypeId::kDouble},
                 {"r_mag", TypeId::kDouble}});
}

Schema NearbySchema() {
  return Schema({{"nearby_objID", TypeId::kInt64},
                 {"distance", TypeId::kDouble}});
}

constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

/// Angular distance in degrees between two (ra, dec) points; the
/// deliberately-heavy spherical trigonometry makes the function call the
/// workload's expensive common subexpression, like the real SkyServer UDF.
double AngularDistanceDeg(double ra1, double dec1, double ra2, double dec2) {
  double x1 = std::cos(dec1 * kDegToRad) * std::cos(ra1 * kDegToRad);
  double y1 = std::cos(dec1 * kDegToRad) * std::sin(ra1 * kDegToRad);
  double z1 = std::sin(dec1 * kDegToRad);
  double x2 = std::cos(dec2 * kDegToRad) * std::cos(ra2 * kDegToRad);
  double y2 = std::cos(dec2 * kDegToRad) * std::sin(ra2 * kDegToRad);
  double z2 = std::sin(dec2 * kDegToRad);
  double dot = x1 * x2 + y1 * y2 + z1 * z2;
  dot = std::max(-1.0, std::min(1.0, dot));
  return std::acos(dot) / kDegToRad;
}

TablePtr EvalNearby(const Catalog& catalog, const std::vector<Datum>& args) {
  RDB_CHECK_MSG(args.size() == 3, "fGetNearbyObjEq(ra, dec, r)");
  double ra = DatumAsDouble(args[0]);
  double dec = DatumAsDouble(args[1]);
  double radius = DatumAsDouble(args[2]);
  TablePtr photo = catalog.GetTable("photoprimary");
  RDB_CHECK_MSG(photo != nullptr, "photoprimary not registered");
  const int64_t* ids = photo->ColumnByName("objID")->Raw<int64_t>();
  const double* ras = photo->ColumnByName("ra")->Raw<double>();
  const double* decs = photo->ColumnByName("dec")->Raw<double>();
  TablePtr result = MakeTable(NearbySchema());
  for (int64_t i = 0; i < photo->num_rows(); ++i) {
    double d = AngularDistanceDeg(ra, dec, ras[i], decs[i]);
    if (d <= radius) {
      result->AppendRow({ids[i], d});
    }
  }
  return result;
}

}  // namespace

int64_t ObjectsFromEnv(int64_t fallback) {
  const char* env = std::getenv("RECYCLEDB_SKY_OBJECTS");
  if (env == nullptr || env[0] == '\0') return fallback;
  int64_t n = std::atoll(env);
  return n > 0 ? n : fallback;
}

void Setup(int64_t num_objects, Catalog* catalog, uint64_t seed) {
  Rng rng(seed);
  TablePtr photo = MakeTable(PhotoPrimarySchema());
  for (int64_t i = 1; i <= num_objects; ++i) {
    // Cluster ~5% of the sky near the canonical (195, 2.5) cone so the
    // dominant query returns a handful of rows, like the paper's LIMIT 10
    // queries over fGetNearbyObjEq(195, 2.5, 0.5).
    double ra, dec;
    if (rng.Uniform(0, 19) == 0) {
      ra = 195.0 + (rng.NextDouble() - 0.5) * 20.0;
      dec = 2.5 + (rng.NextDouble() - 0.5) * 10.0;
    } else {
      ra = rng.NextDouble() * 360.0;
      dec = (rng.NextDouble() - 0.5) * 180.0;
    }
    photo->AppendRow({i,
                      static_cast<int32_t>(rng.Uniform(94, 8162)),
                      static_cast<int32_t>(rng.Uniform(0, 301)),
                      static_cast<int32_t>(rng.Uniform(1, 6)),
                      static_cast<int32_t>(rng.Uniform(11, 1000)),
                      static_cast<int32_t>(rng.Uniform(0, 1000)),
                      static_cast<int32_t>(rng.Uniform(0, 9)),
                      ra, dec,
                      10.0 + rng.NextDouble() * 15.0,
                      10.0 + rng.NextDouble() * 15.0,
                      10.0 + rng.NextDouble() * 15.0});
  }
  RDB_CHECK(catalog->RegisterTable("photoprimary", photo).ok());

  TableFunction fn;
  fn.name = "fGetNearbyObjEq";
  fn.schema_fn = [](const std::vector<Datum>&) { return NearbySchema(); };
  fn.eval_fn = EvalNearby;
  fn.base_tables = {"photoprimary"};
  fn.arg_types = {TypeId::kDouble, TypeId::kDouble, TypeId::kDouble};
  TableFunctionRegistry::Global().Register(fn);
}

namespace {

/// The dominant pattern (the paper's most frequent log query):
/// SELECT p.<cols> FROM fGetNearbyObjEq(ra,dec,r) n, PhotoPrimary p
/// WHERE n.objID = p.objID LIMIT k;
PlanPtr NearbyJoinQuery(double ra, double dec, double r,
                        std::vector<std::string> cols, int64_t limit) {
  PlanPtr nearby = PlanNode::FunctionScan("fGetNearbyObjEq", {ra, dec, r});
  PlanPtr photo = PlanNode::Scan("photoprimary", std::move(cols));
  PlanPtr join = PlanNode::HashJoin(nearby, photo, JoinKind::kInner,
                                    {"nearby_objID"}, {"objID"});
  return PlanNode::Limit(join, limit);
}

}  // namespace

std::vector<SkyQuery> GenerateWorkload(int num_queries, Rng* rng,
                                       double dominant_fraction) {
  // Column-set / limit variants sharing the dominant function call.
  const std::vector<std::vector<std::string>> col_variants = {
      {"objID", "run", "rerun", "camcol", "field", "obj", "type"},
      {"objID", "ra", "dec", "type"},
      {"objID", "u_mag", "g_mag", "r_mag"},
      {"objID", "run", "field", "ra", "dec"},
      {"objID", "type", "r_mag"},
  };
  std::vector<SkyQuery> workload;
  workload.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    bool dominant = rng->NextDouble() < dominant_fraction;
    SkyQuery q;
    q.dominant = dominant;
    if (dominant) {
      q.plan = NearbyJoinQuery(195.0, 2.5, 0.5, col_variants[0], 10);
    } else {
      int v = static_cast<int>(rng->Uniform(1, 4));
      int64_t limit = 5 * rng->Uniform(1, 4);
      q.plan = NearbyJoinQuery(195.0, 2.5, 0.5, col_variants[v], limit);
    }
    workload.push_back(std::move(q));
  }
  return workload;
}

std::vector<SkyQuery> GenerateRegionSweep(int num_queries, Rng* rng,
                                          double window_deg,
                                          double step_deg) {
  // Fixed declination band around the clustered region; the RA window
  // drifts by step_deg per query with small jitter, so neighbours
  // overlap by ~(window - step) / window of their width.
  const double dec_lo = -2.5, dec_hi = 7.5;
  std::vector<SkyQuery> workload;
  workload.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    double lo = 185.0 + step_deg * i + rng->NextDouble() * 0.25 * step_deg;
    double hi = lo + window_deg;
    ExprPtr band =
        Expr::And(Expr::Ge(Expr::Column("dec"), Expr::Literal(dec_lo)),
                  Expr::Lt(Expr::Column("dec"), Expr::Literal(dec_hi)));
    ExprPtr window =
        Expr::And(Expr::Ge(Expr::Column("ra"), Expr::Literal(lo)),
                  Expr::Lt(Expr::Column("ra"), Expr::Literal(hi)));
    SkyQuery q;
    q.dominant = false;
    q.plan = PlanNode::Select(
        PlanNode::Scan("photoprimary", {"objID", "ra", "dec", "type"}),
        Expr::And(band, window));
    workload.push_back(std::move(q));
  }
  return workload;
}

std::vector<std::string> GenerateRegionSweepSql(int num_queries, Rng* rng,
                                                double window_deg,
                                                double step_deg) {
  // Same band/drift/jitter formulas as GenerateRegionSweep, rendered as
  // SQL. %.6f keeps the jittered bounds well above double-rounding noise
  // while the text stays stable for trace fingerprints and goldens.
  // SELECT * (not a column list) so lowering emits no Project and the
  // plan root stays the range Select — the shape partial stitching keys
  // on, matching the plan-built sweep.
  std::vector<std::string> sql;
  sql.reserve(num_queries);
  for (int i = 0; i < num_queries; ++i) {
    double lo = 185.0 + step_deg * i + rng->NextDouble() * 0.25 * step_deg;
    double hi = lo + window_deg;
    sql.push_back(StrFormat(
        "SELECT * FROM photoprimary"
        " WHERE dec >= -2.5 AND dec < 7.5 AND ra >= %.6f AND ra < %.6f",
        lo, hi));
  }
  return sql;
}

Query ConeSearchTemplate(std::vector<std::string> columns, int64_t limit) {
  Query nearby = Query::FunctionScan(
      "fGetNearbyObjEq",
      {Expr::Param("ra"), Expr::Param("dec"), Expr::Param("radius")});
  Query photo = Query::Scan("photoprimary", std::move(columns));
  return nearby
      .Join(photo, JoinKind::kInner, {"nearby_objID"}, {"objID"})
      .Limit(limit);
}

std::vector<workload::StreamSpec> MakeStreams(int num_streams,
                                              int queries_per_stream,
                                              uint64_t seed) {
  std::vector<workload::StreamSpec> streams;
  streams.reserve(num_streams);
  for (int s = 0; s < num_streams; ++s) {
    Rng rng(seed + static_cast<uint64_t>(s) * 7919ULL);
    workload::StreamSpec spec;
    for (auto& q : GenerateWorkload(queries_per_stream, &rng)) {
      spec.labels.push_back(q.dominant ? "sky-dom" : "sky-var");
      spec.plans.push_back(std::move(q.plan));
    }
    streams.push_back(std::move(spec));
  }
  return streams;
}

std::vector<workload::StreamSpec> MakeStreams(
    int num_streams, int queries_per_stream,
    const workload::DriverOptions& options) {
  return MakeStreams(num_streams, queries_per_stream,
                     workload::ResolveSeed(options, 42));
}

}  // namespace skyserver
}  // namespace recycledb
