// Synthetic SkyServer workload (§V Fig. 6).
//
// Substitution (see DESIGN.md): the 100GB SDSS DR7 subset is replaced by a
// synthetic PhotoPrimary-like sky catalog, and fGetNearbyObjEq(ra, dec, r)
// is implemented as an expensive cone-search table function over it. The
// 100-query log reproduces the structural property the paper's workload
// has: one dominant query pattern whose instances share the computation
// of fGetNearbyObjEq(195, 2.5, 0.5) and mostly also the tiny final result.
#pragma once

#include <cstdint>
#include <vector>

#include "api/query.h"
#include "common/rng.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "workload/driver.h"

namespace recycledb {
namespace skyserver {

/// Generates the photoprimary table (`num_objects` rows) into `catalog`
/// and registers the fGetNearbyObjEq table function. Deterministic.
void Setup(int64_t num_objects, Catalog* catalog, uint64_t seed = 20130408);

/// Default object count used by benches (env RECYCLEDB_SKY_OBJECTS).
int64_t ObjectsFromEnv(int64_t fallback = 300000);

/// One query of the log.
struct SkyQuery {
  PlanPtr plan;
  bool dominant;  // instance of the dominant pattern (exact repeat)
};

/// Generates the 100-query workload: `dominant_fraction` of the queries
/// are exact repeats of the dominant pattern; the rest share the same
/// fGetNearbyObjEq(195, 2.5, 0.5) call but differ in projected columns
/// and LIMIT (per §V: "queries are either identical ... or share the
/// computation of fGetNearbyObjEq(195, 2.5, 0.5)").
std::vector<SkyQuery> GenerateWorkload(int num_queries, Rng* rng,
                                       double dominant_fraction = 0.7);

/// Overlapping sky-region sweep: `num_queries` box selections over the
/// photoprimary catalog inside a fixed declination band, with the RA
/// window drifting by a fraction of its width per query. Consecutive
/// regions overlap heavily but none is contained in an earlier one —
/// exact matching and single-superset subsumption both miss, while the
/// recycler's partial-reuse stitching serves each window from the cached
/// neighbours plus a delta scan. Deterministic given `rng`.
std::vector<SkyQuery> GenerateRegionSweep(int num_queries, Rng* rng,
                                          double window_deg = 8.0,
                                          double step_deg = 1.0);

/// The dominant pattern as a parameterized facade template:
///   SELECT p.<columns> FROM fGetNearbyObjEq($ra, $dec, $radius) n,
///          photoprimary p WHERE n.objID = p.objID LIMIT limit
/// Prepare it once, rebind the cone per request — exactly the shape the
/// portal's query log has (§V: most requests repeat identical constants).
Query ConeSearchTemplate(std::vector<std::string> columns = {
                             "objID", "run", "rerun", "camcol", "field",
                             "obj", "type"},
                         int64_t limit = 10);

/// Driver-ready SkyServer streams drawn from the synthetic log generator
/// (dominant exact repeats + variants sharing the cone search).
std::vector<workload::StreamSpec> MakeStreams(int num_streams,
                                              int queries_per_stream,
                                              uint64_t seed = 42);

/// Driver-options overload: uses `options.seed` when non-zero, else the
/// historical default (42), so a recorded run names one seed that
/// regenerates the identical streams.
std::vector<workload::StreamSpec> MakeStreams(
    int num_streams, int queries_per_stream,
    const workload::DriverOptions& options);

/// SQL texts of the overlapping region sweep (same formulas and RNG
/// consumption as GenerateRegionSweep, rendered as replayable SQL over
/// photoprimary). The trace/golden corpora use this form so every query
/// has a recordable statement text.
std::vector<std::string> GenerateRegionSweepSql(int num_queries, Rng* rng,
                                                double window_deg = 8.0,
                                                double step_deg = 1.0);

}  // namespace skyserver
}  // namespace recycledb
