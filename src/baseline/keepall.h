// MonetDB-style baseline (§V Fig. 6 comparison): an operator-at-a-time
// engine whose keep-all recycler caches every intermediate result and
// matches incoming plans directly on cached results.
//
// Reproduces the two properties the paper's Fig. 6 depends on:
//  (1) materialization is a free by-product of the execution paradigm, so
//      a result can be reused from its very first computation, and
//  (2) every intermediate in a result's subtree is kept, so the cache
//      footprint is much larger than the pipelined recycler's and a
//      bounded cache thrashes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/executor.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace recycledb {

/// Counters reported by the Fig. 6 bench.
struct KeepAllStats {
  int64_t queries = 0;
  int64_t node_hits = 0;       // operator results answered from cache
  int64_t node_misses = 0;     // operator results computed
  int64_t evictions = 0;
  int64_t cached_bytes = 0;
  int64_t cached_entries = 0;
  int64_t peak_cached_bytes = 0;
};

/// Operator-at-a-time executor with a keep-all recycler.
class KeepAllEngine {
 public:
  struct Config {
    /// Cache budget in bytes; < 0 means unlimited.
    int64_t cache_bytes = -1;
    /// Set false for the naive (no recycling) baseline.
    bool recycling = true;
  };

  KeepAllEngine(const Catalog* catalog, Config config);

  /// Executes a plan operator-at-a-time, materializing every intermediate.
  /// Thread-safe via a big lock (MonetDB executes a query at a time per
  /// session; concurrency is not what Fig. 6 measures).
  TablePtr Execute(const PlanPtr& plan, double* elapsed_ms = nullptr);

  /// Drops all cached intermediates (simulated update/refresh).
  void FlushCache();

  KeepAllStats stats() const;

 private:
  struct Entry {
    TablePtr table;
    double cost_ms = 0;   // measured cost of computing this intermediate
    int64_t refs = 1;     // reference count (benefit numerator)
    int64_t bytes = 0;
    int64_t stamp = 0;    // insertion order (tie-break)
  };

  /// Computes (or recalls) the full result of `plan`, recursively
  /// materializing children first (operator-at-a-time). `*hit` reports
  /// whether the result came from the cache; reuse requires every child
  /// to have hit as well (MonetDB argument-identity matching).
  TablePtr ExecNode(const PlanPtr& plan, bool* hit);

  /// Admits an intermediate, evicting lowest-benefit entries if bounded.
  void AdmitLocked(const std::string& key, Entry entry);

  const Catalog* catalog_;
  Config config_;
  Executor executor_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> cache_;
  KeepAllStats stats_;
  int64_t used_bytes_ = 0;
  int64_t stamp_ = 0;
};

}  // namespace recycledb
