#include "baseline/keepall.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"

namespace recycledb {

KeepAllEngine::KeepAllEngine(const Catalog* catalog, Config config)
    : catalog_(catalog), config_(config), executor_(catalog) {
  RDB_CHECK(catalog != nullptr);
}

TablePtr KeepAllEngine::Execute(const PlanPtr& plan, double* elapsed_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Stopwatch sw;
  plan->Bind(*catalog_);
  bool hit = false;
  TablePtr result = ExecNode(plan, &hit);
  if (elapsed_ms != nullptr) *elapsed_ms = sw.ElapsedMs();
  ++stats_.queries;
  return result;
}

TablePtr KeepAllEngine::ExecNode(const PlanPtr& plan, bool* hit) {
  // MonetDB's recycler matches on *argument identity*: an instruction is
  // answered from the cache only when its input BATs are the very cached
  // BATs of its children. So reuse cascades bottom-up — evicting any
  // intermediate in a result's subtree breaks reuse of everything above
  // it (§V: "it needs to keep all intermediates that lead to a result").
  bool children_hit = true;
  std::vector<PlanPtr> cached_children;
  std::vector<TablePtr> child_results;
  for (const auto& c : plan->children()) {
    bool child_hit = false;
    TablePtr child_result = ExecNode(c, &child_hit);
    children_hit = children_hit && child_hit;
    child_results.push_back(child_result);
    cached_children.push_back(PlanNode::CachedScan(
        child_result, c->output_schema().Names()));
  }

  const std::string key = plan->TreeFingerprint();
  if (config_.recycling && children_hit) {
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_.node_hits;
      ++it->second.refs;
      *hit = true;
      return it->second.table;
    }
  }
  *hit = false;
  ++stats_.node_misses;
  Stopwatch sw;
  PlanPtr single;
  if (cached_children.empty()) {
    single = plan->CloneShallow();
  } else {
    single = plan->WithChildren(std::move(cached_children));
  }
  single->Bind(*catalog_);
  ExecResult r = executor_.Run(single);
  double cost_ms = sw.ElapsedMs();

  if (config_.recycling) {
    Entry entry;
    entry.table = r.table;
    entry.cost_ms = cost_ms;
    entry.bytes = std::max<int64_t>(1, r.table->ByteSize());
    entry.stamp = ++stamp_;
    AdmitLocked(key, std::move(entry));
  }
  return r.table;
}

void KeepAllEngine::AdmitLocked(const std::string& key, Entry entry) {
  // MonetDB's recycler admits every intermediate (materialization is
  // free); when bounded, evict by benefit = cost * refs / size.
  if (config_.cache_bytes >= 0) {
    if (entry.bytes > config_.cache_bytes) return;  // cannot ever fit
    while (used_bytes_ + entry.bytes > config_.cache_bytes &&
           !cache_.empty()) {
      auto benefit = [](const Entry& e) {
        return e.cost_ms * static_cast<double>(e.refs) /
               static_cast<double>(e.bytes);
      };
      auto victim = cache_.begin();
      double victim_benefit = benefit(victim->second);
      for (auto it = std::next(cache_.begin()); it != cache_.end(); ++it) {
        double b = benefit(it->second);
        if (b < victim_benefit ||
            (b == victim_benefit && it->second.stamp < victim->second.stamp)) {
          victim = it;
          victim_benefit = b;
        }
      }
      used_bytes_ -= victim->second.bytes;
      cache_.erase(victim);
      ++stats_.evictions;
    }
  }
  used_bytes_ += entry.bytes;
  cache_[key] = std::move(entry);
  stats_.peak_cached_bytes = std::max(stats_.peak_cached_bytes, used_bytes_);
}

void KeepAllEngine::FlushCache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  used_bytes_ = 0;
}

KeepAllStats KeepAllEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  KeepAllStats s = stats_;
  s.cached_bytes = used_bytes_;
  s.cached_entries = static_cast<int64_t>(cache_.size());
  return s;
}

}  // namespace recycledb
