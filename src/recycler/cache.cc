#include "recycler/cache.h"

#include <algorithm>

#include "common/macros.h"

namespace recycledb {

RecyclerCache::RecyclerCache(int64_t capacity_bytes,
                             std::function<double(const RGNode*)> benefit_fn,
                             CachePolicy policy)
    : capacity_bytes_(capacity_bytes),
      benefit_fn_(std::move(benefit_fn)),
      policy_(policy) {
  RDB_CHECK(benefit_fn_ != nullptr);
}

int RecyclerCache::SizeGroup(int64_t size_bytes) {
  int g = 0;
  int64_t s = std::max<int64_t>(size_bytes, 1);
  while (s > 1) {
    s >>= 1;
    ++g;
  }
  return g;
}

int64_t RecyclerCache::num_entries() const {
  int64_t n = 0;
  for (const auto& [g, entries] : groups_) {
    n += static_cast<int64_t>(entries.size());
  }
  return n;
}

std::vector<RGNode*> RecyclerCache::Entries() const {
  std::vector<RGNode*> out;
  for (const auto& [g, entries] : groups_) {
    for (const auto& e : entries) out.push_back(e.node);
  }
  return out;
}

bool RecyclerCache::PlanEviction(double benefit, int64_t size_bytes,
                                 std::vector<RGNode*>* victims) const {
  int64_t free_bytes = unlimited()
                           ? size_bytes  // always enough
                           : capacity_bytes_ - used_bytes_;
  if (free_bytes >= size_bytes) return true;  // fits without eviction
  if (!unlimited() && size_bytes > capacity_bytes_) return false;

  if (policy_ == CachePolicy::kLru) {
    // Ablation: evict globally in LRU order until the result fits.
    std::vector<Entry> all;
    for (const auto& [g, entries] : groups_) {
      all.insert(all.end(), entries.begin(), entries.end());
    }
    std::sort(all.begin(), all.end(),
              [](const Entry& a, const Entry& b) {
                return a.lru_stamp < b.lru_stamp;
              });
    int64_t freed = 0;
    for (const auto& e : all) {
      if (free_bytes + freed >= size_bytes) break;
      victims->push_back(e.node);
      freed += e.node->cached_bytes.load();
    }
    return free_bytes + freed >= size_bytes;
  }

  if (policy_ == CachePolicy::kAdmitAll) {
    // Ablation: evict smallest-benefit entries globally, unconditionally.
    std::vector<Entry> all;
    for (const auto& [g, entries] : groups_) {
      all.insert(all.end(), entries.begin(), entries.end());
    }
    std::sort(all.begin(), all.end(), [this](const Entry& a, const Entry& b) {
      return benefit_fn_(a.node) < benefit_fn_(b.node);
    });
    int64_t freed = 0;
    for (const auto& e : all) {
      if (free_bytes + freed >= size_bytes) break;
      victims->push_back(e.node);
      freed += e.node->cached_bytes.load();
    }
    return free_bytes + freed >= size_bytes;
  }

  // The paper's policy: only consider victims in the candidate's own
  // log2-size group, scanned in increasing benefit order, stopping when
  // the victims' average benefit exceeds the candidate's.
  auto git = groups_.find(SizeGroup(size_bytes));
  if (git == groups_.end()) return false;
  std::vector<Entry> sorted = git->second;
  std::sort(sorted.begin(), sorted.end(),
            [this](const Entry& a, const Entry& b) {
              return benefit_fn_(a.node) < benefit_fn_(b.node);
            });
  int64_t freed = 0;
  double benefit_sum = 0;
  int count = 0;
  for (const auto& e : sorted) {
    double b = benefit_fn_(e.node);
    // (a) average benefit of the victim set must stay below the
    // candidate's benefit.
    if (count > 0 && (benefit_sum + b) / (count + 1) >= benefit) break;
    if (count == 0 && b >= benefit) break;
    victims->push_back(e.node);
    benefit_sum += b;
    ++count;
    freed += e.node->cached_bytes.load();
    // (b) victims together large enough.
    if (free_bytes + freed >= size_bytes) return true;
  }
  return false;
}

bool RecyclerCache::WouldAdmit(double benefit, int64_t size_bytes) const {
  std::vector<RGNode*> victims;
  return PlanEviction(benefit, size_bytes, &victims);
}

bool RecyclerCache::Admit(RGNode* node, double benefit,
                          std::vector<RGNode*>* evicted) {
  const int64_t size = node->cached_bytes.load();
  RDB_CHECK(size > 0);
  std::vector<RGNode*> victims;
  if (!PlanEviction(benefit, size, &victims)) return false;
  for (RGNode* v : victims) {
    EvictOne(v);
    evicted->push_back(v);
  }
  groups_[SizeGroup(size)].push_back({node, ++lru_counter_});
  used_bytes_ += size;
  return true;
}

void RecyclerCache::EvictOne(RGNode* node) {
  const int64_t size = node->cached_bytes.load();
  auto git = groups_.find(SizeGroup(size));
  RDB_CHECK(git != groups_.end());
  auto& entries = git->second;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->node == node) {
      used_bytes_ -= size;
      entries.erase(it);
      return;
    }
  }
  RDB_UNREACHABLE("evicting node not present in its size group");
}

void RecyclerCache::Remove(RGNode* node) {
  const int64_t size = node->cached_bytes.load();
  auto git = groups_.find(SizeGroup(size));
  if (git == groups_.end()) return;
  auto& entries = git->second;
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->node == node) {
      used_bytes_ -= size;
      entries.erase(it);
      return;
    }
  }
}

void RecyclerCache::Flush(std::vector<RGNode*>* evicted) {
  for (auto& [g, entries] : groups_) {
    for (const auto& e : entries) evicted->push_back(e.node);
  }
  groups_.clear();
  used_bytes_ = 0;
}

void RecyclerCache::TouchForLru(RGNode* node) {
  for (auto& [g, entries] : groups_) {
    for (auto& e : entries) {
      if (e.node == node) {
        e.lru_stamp = ++lru_counter_;
        return;
      }
    }
  }
}

}  // namespace recycledb
