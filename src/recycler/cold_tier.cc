#include "recycler/cold_tier.h"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace fs = std::filesystem;

namespace recycledb {

Status ColdTier::ValidateSpillDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s cannot be created: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s is not a directory", dir.c_str()));
  }
  const std::string probe = dir + "/.rdb-probe";
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s is not writable", dir.c_str()));
  }
  std::fclose(f);
  std::remove(probe.c_str());
  return Status::OK();
}

Status ColdTier::Open(const std::string& dir, int64_t capacity_bytes) {
  if (dir.empty()) return Status::OK();
  RDB_RETURN_NOT_OK(ValidateSpillDir(dir));
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = dir;
  capacity_bytes_ = capacity_bytes;

  // Scan: drop torn writes, keep readable spill files as orphans. A
  // duplicate canonical key keeps the later-scanned file (both images
  // are equivalent; results are immutable).
  std::error_code ec;
  std::vector<fs::path> to_delete;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() == ".tmp") {
      to_delete.push_back(p);
      continue;
    }
    if (p.extension() != ".spill") continue;
    SpillFileMeta meta;
    if (!ReadSpillMeta(p.string(), &meta).ok()) {
      to_delete.push_back(p);  // unreadable header: never adoptable
      continue;
    }
    std::error_code size_ec;
    int64_t bytes = static_cast<int64_t>(fs::file_size(p, size_ec));
    if (size_ec) {
      to_delete.push_back(p);
      continue;
    }
    auto dup = by_key_.find(meta.canon_key);
    if (dup != by_key_.end()) {
      to_delete.push_back(dup->second->path);
      used_bytes_ -= dup->second->bytes;
      clock_.erase(dup->second);
      by_key_.erase(dup);
      num_orphans_.fetch_sub(1, std::memory_order_relaxed);
    }
    Rec rec;
    rec.path = p.string();
    rec.canon_key = meta.canon_key;
    rec.bytes = bytes;
    rec.second_chance = true;  // restart entries get one grace round
    rec.meta = std::move(meta);
    clock_.push_back(std::move(rec));
    by_key_[clock_.back().canon_key] = std::prev(clock_.end());
    used_bytes_ += bytes;
    num_orphans_.fetch_add(1, std::memory_order_relaxed);
    // File counter must clear existing names so a fresh spill never
    // collides with (and silently overwrites) a recovered file.
    ++next_file_id_;
  }
  for (const fs::path& p : to_delete) fs::remove(p, ec);

  // An over-cap directory (cap lowered across restarts) is trimmed
  // immediately, oldest-scanned first.
  std::vector<const RGNode*> dropped;
  SweepToFit(0, &dropped);
  RDB_CHECK(dropped.empty());  // nothing is live yet

  enabled_ = true;
  return Status::OK();
}

std::string ColdTier::FilePath(uint64_t name_hash) const {
  return StrFormat("%s/r%016llx-%llu.spill", dir_.c_str(),
                   static_cast<unsigned long long>(name_hash),
                   static_cast<unsigned long long>(next_file_id_));
}

bool ColdTier::Has(const RGNode* node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.count(node) > 0;
}

bool ColdTier::EntrySizes(const RGNode* node, int64_t* stored_bytes,
                          int64_t* raw_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) return false;
  *stored_bytes = it->second->bytes;
  // v1 files predate the raw_bytes header field; stored == raw there.
  *raw_bytes = it->second->meta.raw_bytes > 0 ? it->second->meta.raw_bytes
                                              : it->second->bytes;
  return true;
}

void ColdTier::EvictRec(ClockIt it, std::vector<const RGNode*>* dropped_nodes) {
  if (it->node != nullptr) {
    live_.erase(it->node);
    if (dropped_nodes != nullptr) dropped_nodes->push_back(it->node);
  } else {
    num_orphans_.fetch_sub(1, std::memory_order_relaxed);
  }
  by_key_.erase(it->canon_key);
  used_bytes_ -= it->bytes;
  std::remove(it->path.c_str());
  clock_.erase(it);
}

bool ColdTier::SweepToFit(int64_t need_bytes,
                          std::vector<const RGNode*>* dropped_nodes) {
  // Second chance: referenced entries get their bit cleared and one more
  // round at the back; each entry is re-queued at most once per sweep,
  // so the loop terminates.
  size_t requeues_left = clock_.size();
  while (used_bytes_ + need_bytes > capacity_bytes_ && !clock_.empty()) {
    ClockIt front = clock_.begin();
    if (front->second_chance && requeues_left > 0) {
      front->second_chance = false;
      --requeues_left;
      clock_.splice(clock_.end(), clock_, front);  // iterators stay valid
      continue;
    }
    EvictRec(front, dropped_nodes);
  }
  return used_bytes_ + need_bytes <= capacity_bytes_;
}

bool ColdTier::Spill(const RGNode* node, const std::string& canon_key,
                     const Table& table, const SpillFileMeta& meta,
                     std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return false;
  if (live_.count(node) > 0) return true;  // image already on disk

  // Write the fresh image BEFORE superseding any leftover entry under
  // the same key (an unadopted orphan from a prior incarnation of this
  // result): a failed write — disk full is the likely case — must not
  // destroy a still-valid image.
  const std::string path = FilePath(HashString(canon_key));
  ++next_file_id_;
  SpillWriteOptions wopts;
  wopts.compress = compress_;
  SpillFileMeta stored = meta;
  if (!WriteSpillFile(path, table, stored, wopts).ok()) return false;
  // Re-read the stamped header so the in-memory copy carries the
  // writer-computed raw_bytes (compression-ratio accounting).
  if (!ReadSpillMeta(path, &stored).ok()) stored = meta;
  std::error_code ec;
  int64_t bytes = static_cast<int64_t>(fs::file_size(path, ec));
  if (ec) bytes = table.ByteSize();
  if (bytes > capacity_bytes_) {
    std::remove(path.c_str());
    return false;
  }
  auto dup = by_key_.find(canon_key);
  if (dup != by_key_.end()) EvictRec(dup->second, dropped_nodes);
  if (!SweepToFit(bytes, dropped_nodes)) {
    std::remove(path.c_str());
    return false;
  }
  Rec rec;
  rec.path = path;
  rec.canon_key = canon_key;
  rec.bytes = bytes;
  rec.second_chance = false;  // earns its bit on first cold hit
  rec.node = node;
  rec.meta = std::move(stored);
  clock_.push_back(std::move(rec));
  ClockIt it = std::prev(clock_.end());
  live_[node] = it;
  by_key_[it->canon_key] = it;
  used_bytes_ += bytes;
  return true;
}

Status ColdTier::Load(const RGNode* node, TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) {
    return Status::NotFound("no live cold-tier entry for node");
  }
  SpillFileMeta meta;
  Status st = ReadSpillTable(it->second->path, &meta, out);
  if (st.ok()) it->second->second_chance = true;
  return st;
}

Status ColdTier::LoadSlice(const RGNode* node, int filter_column,
                           const ColumnInterval& range, TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) {
    return Status::NotFound("no live cold-tier entry for node");
  }
  SpillFileMeta meta;
  Status st =
      ReadSpillTableFiltered(it->second->path, &meta, filter_column, range, out);
  if (st.ok()) it->second->second_chance = true;
  return st;
}

bool ColdTier::AdoptOrphan(const std::string& canon_key, const RGNode* node,
                           SpillFileMeta* meta, int64_t* bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(canon_key);
  if (it == by_key_.end() || it->second->node != nullptr) return false;
  it->second->node = node;
  live_[node] = it->second;
  num_orphans_.fetch_sub(1, std::memory_order_relaxed);
  *meta = it->second->meta;
  *bytes = it->second->bytes;
  return true;
}

void ColdTier::Remove(const RGNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) return;
  EvictRec(it->second, /*dropped_nodes=*/nullptr);
}

void ColdTier::PurgeTable(const std::string& table,
                          std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = clock_.begin(); it != clock_.end();) {
    ClockIt cur = it++;
    bool hit = false;
    for (const std::string& t : cur->meta.base_tables) hit |= (t == table);
    if (hit) EvictRec(cur, dropped_nodes);
  }
}

void ColdTier::PurgeUnversionedOrphans(
    const std::string& table, std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = clock_.begin(); it != clock_.end();) {
    ClockIt cur = it++;
    if (cur->node != nullptr) continue;  // live: the recycler judges it
    if (!cur->meta.table_versions.empty()) continue;  // stamped: adoptable
    bool hit = false;
    for (const std::string& t : cur->meta.base_tables) hit |= (t == table);
    if (hit) EvictRec(cur, dropped_nodes);
  }
}

ColdTierStats ColdTier::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ColdTierStats s;
  s.entries = static_cast<int64_t>(clock_.size());
  s.orphans = num_orphans_.load(std::memory_order_relaxed);
  s.used_bytes = used_bytes_;
  s.capacity_bytes = capacity_bytes_;
  for (const Rec& r : clock_) {
    // v1 files predate the raw_bytes header field; stored == raw there.
    s.raw_bytes += r.meta.raw_bytes > 0 ? r.meta.raw_bytes : r.bytes;
  }
  return s;
}

}  // namespace recycledb
