#include "recycler/cold_tier.h"

#include <cstdio>
#include <filesystem>
#include <iterator>
#include <limits>
#include <system_error>
#include <unordered_set>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "fleet/lock_file.h"

namespace fs = std::filesystem;

namespace recycledb {

namespace {

/// File name relative to the spill directory (manifest entries must be
/// path-independent: the directory may be mounted differently per
/// process).
std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

Status ColdTier::ValidateSpillDir(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s cannot be created: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s is not a directory", dir.c_str()));
  }
  const std::string probe = dir + "/.rdb-probe";
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s is not writable", dir.c_str()));
  }
  std::fclose(f);
  std::remove(probe.c_str());
  return Status::OK();
}

Status ColdTier::ValidateSpillDirReadable(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s does not exist or is not a directory "
                  "(read-only adoption mode never creates it)",
                  dir.c_str()));
  }
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::InvalidArgument(
        StrFormat("spill_dir %s is not readable: %s", dir.c_str(),
                  ec.message().c_str()));
  }
  return Status::OK();
}

ColdTier::~ColdTier() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_worker_ = true;
    work_cv_.notify_all();
  }
  if (worker_.joinable()) worker_.join();
  if (enabled_ && shared_ && !read_only_) {
    // Graceful shutdown: publish our entries one last time and drop our
    // owner record. A missing owner record reads as an expired lease,
    // so the next opener (any instance id) can reclaim the files.
    std::lock_guard<std::mutex> lock(mu_);
    SyncManifestLocked();
    fleet::DirLock dlock;
    if (fleet::DirLock::Acquire(fleet::ManifestLockPath(dir_), &dlock).ok()) {
      fleet::Manifest m;
      if (fleet::ReadManifestFile(fleet::ManifestPath(dir_), &m).ok()) {
        for (auto it = m.owners.begin(); it != m.owners.end();) {
          it = it->id == instance_ ? m.owners.erase(it) : std::next(it);
        }
        ++m.seq;
        fleet::WriteManifestFile(fleet::ManifestPath(dir_), m).ok();
      }
    }
  }
}

Status ColdTier::Open(const std::string& dir, int64_t capacity_bytes) {
  ColdTierOptions options;
  options.dir = dir;
  options.capacity_bytes = capacity_bytes;
  return Open(options);
}

Status ColdTier::Open(const ColdTierOptions& options) {
  if (options.dir.empty()) return Status::OK();
  if (options.read_only) {
    RDB_RETURN_NOT_OK(ValidateSpillDirReadable(options.dir));
  } else {
    RDB_RETURN_NOT_OK(ValidateSpillDir(options.dir));
  }
  std::lock_guard<std::mutex> lock(mu_);
  dir_ = options.dir;
  capacity_bytes_ = options.capacity_bytes;
  shared_ = options.shared;
  read_only_ = options.read_only;
  instance_ = options.instance_id;
  lease_ms_ = options.lease_ms;
  async_ = options.async_spill && !options.read_only;
  if (shared_ && !read_only_ && instance_.empty()) {
    return Status::InvalidArgument(
        "shared cold tier requires a non-empty instance id");
  }

  // Shared mode: the manifest decides which scanned files are claimable
  // versus peer-owned. A corrupt / truncated / version-skewed manifest
  // degrades to the empty manifest — every file is then claimable from
  // the directory re-scan, and the next sync rewrites a fresh manifest.
  fleet::Manifest manifest;
  bool have_manifest = false;
  if (shared_) {
    have_manifest =
        fleet::ReadManifestFile(fleet::ManifestPath(dir_), &manifest).ok();
  }
  const int64_t now_ms = fleet::UnixMillisNow();
  std::unordered_map<std::string, const fleet::ManifestEntry*> by_file;
  for (const fleet::ManifestEntry& e : manifest.entries) {
    by_file[e.file] = &e;
  }

  // Scan: drop torn writes, keep readable spill files as orphans. A
  // duplicate canonical key keeps the later-scanned file when both are
  // ours (both images are equivalent; results are immutable) and the
  // owned file when ownership differs.
  std::error_code ec;
  std::vector<fs::path> to_delete;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() == ".tmp") {
      if (!read_only_) to_delete.push_back(p);
      continue;
    }
    if (p.extension() != ".spill") continue;
    SpillFileMeta meta;
    if (!ReadSpillMeta(p.string(), &meta).ok()) {
      if (!read_only_) to_delete.push_back(p);  // unreadable: never adoptable
      continue;
    }
    std::error_code size_ec;
    int64_t bytes = static_cast<int64_t>(fs::file_size(p, size_ec));
    if (size_ec) {
      if (!read_only_) to_delete.push_back(p);
      continue;
    }
    // Ownership: private tiers own everything they scan. In shared mode
    // a file listed under a live peer lease is that peer's; everything
    // else (unlisted, unowned, ours from a prior incarnation, or a dead
    // owner's) is claimed — except in read-only mode, where every file
    // is a peer's.
    bool owned = true;
    int64_t admit_seq = manifest.seq;
    if (shared_) {
      auto mit = by_file.find(Basename(p.string()));
      if (mit != by_file.end()) {
        admit_seq = mit->second->admit_seq;
        owned = mit->second->owner == instance_ ||
                !manifest.OwnerLive(mit->second->owner, now_ms);
      }
      if (read_only_) owned = false;
    }
    auto dup = by_key_.find(meta.canon_key);
    if (dup != by_key_.end()) {
      // Duplicate canonical key. A peer copy never displaces what we
      // already track; an owned copy displaces anything (newest-wins
      // among our own files — the images are equivalent — and a local
      // image beats a peer's). Displaced peer copies are only untracked;
      // their file is not ours to delete.
      if (!owned) continue;
      if (dup->second->owned) {
        to_delete.push_back(dup->second->path);
        used_bytes_ -= dup->second->bytes;
        clock_.erase(dup->second);
      } else {
        peers_.erase(dup->second);
      }
      by_key_.erase(dup);
      num_orphans_.fetch_sub(1, std::memory_order_relaxed);
    }
    AddOrphanLocked(p.string(), bytes, std::move(meta), owned, admit_seq);
    // File counter must clear existing names so a fresh spill never
    // collides with (and silently overwrites) a recovered file.
    ++next_file_id_;
  }
  if (!read_only_) {
    for (const fs::path& p : to_delete) fs::remove(p, ec);
  }

  // Purge records published before this open retire files whose owner
  // crashed between invalidating and deleting them.
  if (have_manifest) {
    std::vector<const RGNode*> dropped;
    for (const fleet::ManifestPurge& p : manifest.purges) {
      ApplyPurgeLocked(p, &dropped);
      last_applied_purge_seq_ = std::max(last_applied_purge_seq_, p.seq);
    }
    RDB_CHECK(dropped.empty());  // nothing is live yet
    last_seen_seq_ = manifest.seq;
  }

  // An over-cap directory (cap lowered across restarts) is trimmed
  // immediately, oldest-scanned first.
  std::vector<const RGNode*> dropped;
  SweepToFit(0, &dropped);
  RDB_CHECK(dropped.empty());  // nothing is live yet

  enabled_ = true;
  if (shared_ && !read_only_) SyncManifestLocked();
  if (async_) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
  return Status::OK();
}

ColdTier::ClockIt ColdTier::AddOrphanLocked(const std::string& path,
                                            int64_t bytes, SpillFileMeta meta,
                                            bool owned, int64_t admit_seq) {
  Rec rec;
  rec.path = path;
  rec.canon_key = meta.canon_key;
  rec.bytes = bytes;
  rec.second_chance = true;  // recovered entries get one grace round
  rec.owned = owned;
  rec.admit_seq = admit_seq;
  rec.meta = std::move(meta);
  std::list<Rec>& list = owned ? clock_ : peers_;
  list.push_back(std::move(rec));
  ClockIt it = std::prev(list.end());
  by_key_[it->canon_key] = it;
  if (owned) used_bytes_ += bytes;
  num_orphans_.fetch_add(1, std::memory_order_relaxed);
  return it;
}

std::string ColdTier::FilePath(uint64_t name_hash) {
  const uint64_t id = next_file_id_++;
  if (shared_) {
    // The writer's instance id keeps concurrent processes from ever
    // racing on one file name.
    return StrFormat("%s/r%016llx-%s-%llu.spill", dir_.c_str(),
                     static_cast<unsigned long long>(name_hash),
                     instance_.c_str(), static_cast<unsigned long long>(id));
  }
  return StrFormat("%s/r%016llx-%llu.spill", dir_.c_str(),
                   static_cast<unsigned long long>(name_hash),
                   static_cast<unsigned long long>(id));
}

bool ColdTier::Has(const RGNode* node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.count(node) > 0 || pending_by_node_.count(node) > 0;
}

bool ColdTier::EntrySizes(const RGNode* node, int64_t* stored_bytes,
                          int64_t* raw_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) return false;
  *stored_bytes = it->second->bytes;
  // v1 files predate the raw_bytes header field; stored == raw there.
  *raw_bytes = it->second->meta.raw_bytes > 0 ? it->second->meta.raw_bytes
                                              : it->second->bytes;
  return true;
}

void ColdTier::EvictRec(ClockIt it, std::vector<const RGNode*>* dropped_nodes) {
  if (it->node != nullptr) {
    live_.erase(it->node);
    if (dropped_nodes != nullptr) dropped_nodes->push_back(it->node);
  } else {
    num_orphans_.fetch_sub(1, std::memory_order_relaxed);
  }
  auto key_it = by_key_.find(it->canon_key);
  if (key_it != by_key_.end() && key_it->second == it) by_key_.erase(key_it);
  if (it->owned) {
    used_bytes_ -= it->bytes;
    std::remove(it->path.c_str());
    manifest_dirty_ = shared_;
    clock_.erase(it);
  } else {
    // A peer's entry: forget it locally, the owner keeps the file.
    peers_.erase(it);
  }
}

bool ColdTier::SweepToFit(int64_t need_bytes,
                          std::vector<const RGNode*>* dropped_nodes) {
  // Second chance over owned entries only (peer files neither count
  // against the cap nor may be deleted here): referenced entries get
  // their bit cleared and one more round at the back; each entry is
  // re-queued at most once per sweep, so the loop terminates.
  size_t requeues_left = clock_.size();
  while (used_bytes_ + need_bytes > capacity_bytes_ && !clock_.empty()) {
    ClockIt front = clock_.begin();
    if (front->second_chance && requeues_left > 0) {
      front->second_chance = false;
      --requeues_left;
      clock_.splice(clock_.end(), clock_, front);  // iterators stay valid
      continue;
    }
    EvictRec(front, dropped_nodes);
  }
  return used_bytes_ + need_bytes <= capacity_bytes_;
}

bool ColdTier::CommitSpillLocked(const RGNode* node,
                                 const std::string& canon_key,
                                 const std::string& path, int64_t bytes,
                                 SpillFileMeta stored,
                                 std::vector<const RGNode*>* dropped_nodes) {
  if (bytes > capacity_bytes_) {
    std::remove(path.c_str());
    return false;
  }
  auto dup = by_key_.find(canon_key);
  if (dup != by_key_.end()) EvictRec(dup->second, dropped_nodes);
  if (!SweepToFit(bytes, dropped_nodes)) {
    std::remove(path.c_str());
    return false;
  }
  Rec rec;
  rec.path = path;
  rec.canon_key = canon_key;
  rec.bytes = bytes;
  rec.second_chance = false;  // earns its bit on first cold hit
  rec.owned = true;
  rec.admit_seq = 0;  // assigned at the next manifest sync
  rec.node = node;
  rec.meta = std::move(stored);
  clock_.push_back(std::move(rec));
  ClockIt it = std::prev(clock_.end());
  live_[node] = it;
  by_key_[it->canon_key] = it;
  used_bytes_ += bytes;
  manifest_dirty_ = shared_;
  return true;
}

bool ColdTier::Spill(const RGNode* node, const std::string& canon_key,
                     const Table& table, const SpillFileMeta& meta,
                     std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || read_only_) return false;
  if (live_.count(node) > 0) return true;  // image already on disk

  // Write the fresh image BEFORE superseding any leftover entry under
  // the same key (an unadopted orphan from a prior incarnation of this
  // result): a failed write — disk full is the likely case — must not
  // destroy a still-valid image.
  const std::string path = FilePath(HashString(canon_key));
  SpillWriteOptions wopts;
  wopts.compress = compress_;
  SpillFileMeta stored = meta;
  if (!WriteSpillFile(path, table, stored, wopts).ok()) return false;
  // Re-read the stamped header so the in-memory copy carries the
  // writer-computed raw_bytes (compression-ratio accounting).
  if (!ReadSpillMeta(path, &stored).ok()) stored = meta;
  std::error_code ec;
  int64_t bytes = static_cast<int64_t>(fs::file_size(path, ec));
  if (ec) bytes = table.ByteSize();
  if (!CommitSpillLocked(node, canon_key, path, bytes, std::move(stored),
                         dropped_nodes)) {
    return false;
  }
  if (manifest_dirty_) SyncManifestLocked();
  if (spilled_cb_) {
    int64_t raw = 0, stored_bytes = 0;
    auto it = live_.find(node);
    if (it != live_.end()) {
      stored_bytes = it->second->bytes;
      raw = it->second->meta.raw_bytes > 0 ? it->second->meta.raw_bytes
                                           : it->second->bytes;
    }
    spilled_cb_(node, stored_bytes, raw);
  }
  return true;
}

bool ColdTier::SpillAsync(const RGNode* node, const std::string& canon_key,
                          TablePtr snapshot, const SpillFileMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_ || read_only_ || !async_) return false;
  if (live_.count(node) > 0 || pending_by_node_.count(node) > 0) return true;
  if (snapshot == nullptr) return false;
  if (snapshot->ByteSize() > capacity_bytes_) return false;  // can never fit
  PendingSpill ps;
  ps.node = node;
  ps.canon_key = canon_key;
  ps.snapshot = std::move(snapshot);
  ps.meta = meta;
  pending_.push_back(std::move(ps));
  pending_by_node_[node] = std::prev(pending_.end());
  work_cv_.notify_one();
  return true;
}

void ColdTier::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_worker_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_worker_) return;
      continue;
    }
    worker_busy_ = true;
    // Move the front job to a local list: it leaves the queue but its
    // iterator (held by pending_by_node_) stays valid, so loads keep
    // serving the snapshot and Remove/purge can still cancel it.
    std::list<PendingSpill> inflight;
    inflight.splice(inflight.begin(), pending_, pending_.begin());
    PendingSpill& ps = inflight.front();
    const RGNode* node = ps.node;
    const std::string path = FilePath(HashString(ps.canon_key));
    SpillWriteOptions wopts;
    wopts.compress = compress_;
    SpillFileMeta stored = ps.meta;
    TablePtr snapshot = ps.snapshot;

    lock.unlock();
    const bool wrote = WriteSpillFile(path, *snapshot, stored, wopts).ok();
    if (wrote && !ReadSpillMeta(path, &stored).ok()) stored = ps.meta;
    std::error_code ec;
    int64_t bytes = wrote ? static_cast<int64_t>(fs::file_size(path, ec)) : 0;
    if (wrote && ec) bytes = snapshot->ByteSize();
    lock.lock();

    std::vector<const RGNode*> dropped;
    bool committed = false;
    int64_t cb_stored = 0, cb_raw = 0;
    const bool canceled = ps.canceled;
    {
      auto pit = pending_by_node_.find(node);
      if (pit != pending_by_node_.end() && &*pit->second == &ps) {
        pending_by_node_.erase(pit);
      }
    }
    if (!wrote) {
      if (!canceled) dropped.push_back(node);
    } else if (canceled) {
      std::remove(path.c_str());
    } else {
      committed =
          CommitSpillLocked(node, ps.canon_key, path, bytes, stored, &dropped);
      if (committed) {
        cb_stored = bytes;
        cb_raw = stored.raw_bytes > 0 ? stored.raw_bytes : bytes;
      } else {
        dropped.push_back(node);
      }
    }
    if (manifest_dirty_) SyncManifestLocked();
    inflight.clear();

    // Callbacks run with no cold-tier lock held: the drop callback
    // takes the recycler's graph/cache locks to demote.
    lock.unlock();
    if (committed && spilled_cb_) spilled_cb_(node, cb_stored, cb_raw);
    if (!dropped.empty() && drop_cb_) drop_cb_(dropped);
    lock.lock();
    worker_busy_ = false;
    if (pending_.empty()) drain_cv_.notify_all();
  }
}

void ColdTier::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!async_) return;
  drain_cv_.wait(lock, [this] { return pending_.empty() && !worker_busy_; });
}

Status ColdTier::Load(const RGNode* node, TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) {
    auto pit = pending_by_node_.find(node);
    if (pit != pending_by_node_.end()) {
      // Spill still in flight: serve the pinned snapshot directly (the
      // write commits later; there is no miss window).
      *out = pit->second->snapshot;
      return Status::OK();
    }
    return Status::NotFound("no live cold-tier entry for node");
  }
  SpillFileMeta meta;
  Status st = ReadSpillTable(it->second->path, &meta, out);
  if (st.ok()) it->second->second_chance = true;
  return st;
}

Status ColdTier::LoadSlice(const RGNode* node, int filter_column,
                           const ColumnInterval& range, TablePtr* out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(node);
  if (it == live_.end()) {
    if (pending_by_node_.count(node) > 0) {
      // Pending async spill: no encoded image to filter yet; the caller
      // falls back to the full in-memory snapshot.
      return Status::InvalidArgument("spill pending, no encoded image");
    }
    return Status::NotFound("no live cold-tier entry for node");
  }
  SpillFileMeta meta;
  Status st =
      ReadSpillTableFiltered(it->second->path, &meta, filter_column, range, out);
  if (st.ok()) it->second->second_chance = true;
  return st;
}

bool ColdTier::AdoptOrphan(const std::string& canon_key, const RGNode* node,
                           SpillFileMeta* meta, int64_t* bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_key_.find(canon_key);
  if (it == by_key_.end() || it->second->node != nullptr) return false;
  it->second->node = node;
  live_[node] = it->second;
  num_orphans_.fetch_sub(1, std::memory_order_relaxed);
  *meta = it->second->meta;
  *bytes = it->second->bytes;
  return true;
}

void ColdTier::Remove(const RGNode* node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto pit = pending_by_node_.find(node);
  if (pit != pending_by_node_.end()) {
    // Cancel the queued/in-flight spill; the worker discards the file
    // if the write already started.
    PendingIt ps = pit->second;
    ps->canceled = true;
    pending_by_node_.erase(pit);
    for (auto qit = pending_.begin(); qit != pending_.end(); ++qit) {
      if (&*qit == &*ps) {
        pending_.erase(qit);
        if (pending_.empty()) drain_cv_.notify_all();
        break;
      }
    }
  }
  auto it = live_.find(node);
  if (it == live_.end()) return;
  EvictRec(it->second, /*dropped_nodes=*/nullptr);
  if (manifest_dirty_) SyncManifestLocked();
}

void ColdTier::ApplyPurgeLocked(const fleet::ManifestPurge& purge,
                                std::vector<const RGNode*>* dropped_nodes) {
  auto matches = [&purge](const Rec& r) {
    if (r.admit_seq > purge.seq) return false;  // postdates the purge
    if (purge.unversioned_only &&
        (r.node != nullptr || !r.meta.table_versions.empty())) {
      return false;  // live: the recycler judges it; stamped: adoptable
    }
    for (const std::string& t : r.meta.base_tables) {
      if (t == purge.table) return true;
    }
    return false;
  };
  for (std::list<Rec>* list : {&clock_, &peers_}) {
    for (auto it = list->begin(); it != list->end();) {
      ClockIt cur = it++;
      if (matches(*cur)) EvictRec(cur, dropped_nodes);
    }
  }
  // Pending async spills over the table are stale the same way; cancel
  // them so they never commit (full purges only: pending spills belong
  // to live nodes, which the unversioned-only variant spares).
  if (!purge.unversioned_only) {
    for (auto pit = pending_by_node_.begin(); pit != pending_by_node_.end();) {
      PendingSpill& ps = *pit->second;
      bool hit = false;
      for (const std::string& t : ps.meta.base_tables) {
        hit |= t == purge.table;
      }
      if (!hit) {
        ++pit;
        continue;
      }
      if (dropped_nodes != nullptr) dropped_nodes->push_back(ps.node);
      ps.canceled = true;
      for (auto qit = pending_.begin(); qit != pending_.end(); ++qit) {
        if (&*qit == &ps) {
          pending_.erase(qit);
          if (pending_.empty()) drain_cv_.notify_all();
          break;
        }
      }
      pit = pending_by_node_.erase(pit);
    }
  }
}

void ColdTier::PurgeTable(const std::string& table,
                          std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  fleet::ManifestPurge purge;
  purge.table = table;
  purge.seq = std::numeric_limits<int64_t>::max();  // everything local
  purge.unversioned_only = false;
  ApplyPurgeLocked(purge, dropped_nodes);
  if (shared_ && !read_only_) {
    pending_purges_.push_back(fleet::ManifestPurge{table, 0, false});
    SyncManifestLocked();
  }
}

void ColdTier::PurgeUnversionedOrphans(
    const std::string& table, std::vector<const RGNode*>* dropped_nodes) {
  std::lock_guard<std::mutex> lock(mu_);
  fleet::ManifestPurge purge;
  purge.table = table;
  purge.seq = std::numeric_limits<int64_t>::max();
  purge.unversioned_only = true;
  ApplyPurgeLocked(purge, dropped_nodes);
  if (shared_ && !read_only_) {
    pending_purges_.push_back(fleet::ManifestPurge{table, 0, true});
    SyncManifestLocked();
  }
}

void ColdTier::SyncManifestLocked() {
  if (!shared_ || read_only_ || dir_.empty()) return;
  fleet::DirLock dlock;
  if (!fleet::DirLock::Acquire(fleet::ManifestLockPath(dir_), &dlock).ok()) {
    return;  // degrade: retried at the next mutation/refresh
  }
  fleet::Manifest m;
  fleet::ReadManifestFile(fleet::ManifestPath(dir_), &m).ok();
  m.seq = std::max(m.seq, last_seen_seq_) + 1;
  const int64_t now_ms = fleet::UnixMillisNow();

  // Renew our lease.
  fleet::ManifestOwner* self = m.FindOwner(instance_);
  if (self == nullptr) {
    m.owners.push_back(fleet::ManifestOwner{instance_, 0});
    self = &m.owners.back();
  }
  self->lease_expiry_ms = now_ms + lease_ms_;

  // Republish the owned entry set; keep peers' records. A record naming
  // one of OUR files under a different live owner means we lost a claim
  // race (or our lease expired and the file was taken over): forfeit it
  // locally rather than fight over deletion rights.
  std::unordered_map<std::string, ClockIt> ours;
  for (auto it = clock_.begin(); it != clock_.end(); ++it) {
    ours[Basename(it->path)] = it;
  }
  std::vector<ClockIt> forfeited;
  std::vector<fleet::ManifestEntry> entries;
  std::error_code ec;
  for (fleet::ManifestEntry& e : m.entries) {
    if (e.owner == instance_) continue;  // rebuilt below
    auto oit = ours.find(e.file);
    if (oit != ours.end()) {
      if (m.OwnerLive(e.owner, now_ms)) {
        forfeited.push_back(oit->second);
        ours.erase(oit);
        entries.push_back(std::move(e));
      }
      continue;  // dead owner's record for a file we claimed
    }
    // Prune garbage: a dead owner's record whose file is gone.
    if (!m.OwnerLive(e.owner, now_ms) &&
        !fs::exists(dir_ + "/" + e.file, ec)) {
      continue;
    }
    entries.push_back(std::move(e));
  }
  for (auto& [file, it] : ours) {
    if (it->admit_seq == 0) it->admit_seq = m.seq;
    entries.push_back(
        fleet::ManifestEntry{it->canon_key, file, instance_, it->admit_seq});
  }
  m.entries = std::move(entries);
  for (fleet::ManifestPurge& p : pending_purges_) {
    m.AddPurge(p.table, p.unversioned_only);
  }
  pending_purges_.clear();

  if (fleet::WriteManifestFile(fleet::ManifestPath(dir_), m).ok()) {
    manifest_dirty_ = false;
    last_seen_seq_ = m.seq;
    last_applied_purge_seq_ = std::max(last_applied_purge_seq_, m.seq);
    lease_expiry_ms_ = self->lease_expiry_ms;
  }

  for (ClockIt it : forfeited) {
    used_bytes_ -= it->bytes;
    it->owned = false;
    it->second_chance = true;
    peers_.splice(peers_.end(), clock_, it);
  }
}

Status ColdTier::RefreshPeers(std::vector<const RGNode*>* dropped_nodes,
                              int64_t* new_peer_entries,
                              int64_t* lease_takeovers) {
  if (new_peer_entries != nullptr) *new_peer_entries = 0;
  if (lease_takeovers != nullptr) *lease_takeovers = 0;
  std::string manifest_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_ || !shared_) return Status::OK();
    manifest_path = fleet::ManifestPath(dir_);
  }
  // Lock-free read: rename atomicity + the checksum make a concurrent
  // writer harmless (we see the old or the new manifest, never a torn
  // one; a torn read fails parse and is retried next refresh).
  fleet::Manifest m;
  Status read_st = fleet::ReadManifestFile(manifest_path, &m);

  std::lock_guard<std::mutex> lock(mu_);
  if (!read_st.ok()) {
    // Missing or torn manifest: nothing to apply. A writable instance
    // rewrites it from its own state, which is also the corruption
    // recovery path (peers republish theirs on their next sync).
    if (!read_only_ && read_st.code() != StatusCode::kNotFound) {
      SyncManifestLocked();
    }
    return Status::OK();
  }
  const int64_t now_ms = fleet::UnixMillisNow();

  if (m.seq != last_seen_seq_) {
    // (a) Purges published since the last refresh.
    for (const fleet::ManifestPurge& p : m.purges) {
      if (p.seq <= last_applied_purge_seq_) continue;
      ApplyPurgeLocked(p, dropped_nodes);
      last_applied_purge_seq_ = std::max(last_applied_purge_seq_, p.seq);
    }

    std::unordered_set<std::string> manifest_files;
    for (const fleet::ManifestEntry& e : m.entries) {
      manifest_files.insert(e.file);
    }

    // (b)/(d) New entries: live peers' spills become adoptable peer
    // orphans; a dead owner's entries are claimed (stale-lease
    // takeover) unless we are read-only.
    for (const fleet::ManifestEntry& e : m.entries) {
      if (e.owner == instance_) continue;
      auto known = by_key_.find(e.canon_key);
      if (known != by_key_.end()) {
        // Already tracked as a peer entry, but the owner's lease has
        // since lapsed: claim the file in place. Deletion rights pass
        // to us, and the entry starts counting against our budget.
        ClockIt rec = known->second;
        if (!rec->owned && !read_only_ && !m.OwnerLive(e.owner, now_ms)) {
          used_bytes_ += rec->bytes;
          rec->owned = true;
          clock_.splice(clock_.end(), peers_, rec);
          manifest_dirty_ = true;
          if (lease_takeovers != nullptr) ++(*lease_takeovers);
        }
        continue;
      }
      const std::string path = dir_ + "/" + e.file;
      SpillFileMeta meta;
      if (!ReadSpillMeta(path, &meta).ok()) continue;  // torn/deleted: skip
      std::error_code size_ec;
      int64_t bytes = static_cast<int64_t>(fs::file_size(path, size_ec));
      if (size_ec) continue;
      const bool peer_live = m.OwnerLive(e.owner, now_ms);
      if (peer_live || read_only_) {
        AddOrphanLocked(path, bytes, std::move(meta), /*owned=*/false,
                        e.admit_seq);
        if (new_peer_entries != nullptr) ++(*new_peer_entries);
      } else {
        AddOrphanLocked(path, bytes, std::move(meta), /*owned=*/true,
                        e.admit_seq);
        manifest_dirty_ = true;
        if (lease_takeovers != nullptr) ++(*lease_takeovers);
      }
    }

    // (c) Peer entries their owner retired (evicted/purged): drop our
    // tracking before a load trips over the missing file. Our own
    // un-synced spills are not in the manifest yet — only judge peers.
    for (auto it = peers_.begin(); it != peers_.end();) {
      ClockIt cur = it++;
      if (manifest_files.count(Basename(cur->path)) == 0) {
        EvictRec(cur, dropped_nodes);
      }
    }

    // Forfeit owned entries a live peer took over after our lease
    // lapsed (deletion rights must never be shared; see
    // SyncManifestLocked for the write-side handling).
    for (const fleet::ManifestEntry& e : m.entries) {
      if (e.owner == instance_ || !m.OwnerLive(e.owner, now_ms)) continue;
      for (auto it = clock_.begin(); it != clock_.end(); ++it) {
        if (Basename(it->path) != e.file) continue;
        used_bytes_ -= it->bytes;
        it->owned = false;
        peers_.splice(peers_.end(), clock_, it);
        break;
      }
    }
    last_seen_seq_ = m.seq;
  }

  if (!read_only_ &&
      (manifest_dirty_ || now_ms + lease_ms_ / 2 > lease_expiry_ms_)) {
    SyncManifestLocked();
  }
  return Status::OK();
}

ColdTierStats ColdTier::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ColdTierStats s;
  s.entries = static_cast<int64_t>(clock_.size() + peers_.size());
  s.orphans = num_orphans_.load(std::memory_order_relaxed);
  s.used_bytes = used_bytes_;
  s.capacity_bytes = capacity_bytes_;
  s.peer_entries = static_cast<int64_t>(peers_.size());
  s.pending_spills = static_cast<int64_t>(pending_.size());
  for (const std::list<Rec>* list : {&clock_, &peers_}) {
    for (const Rec& r : *list) {
      // v1 files predate the raw_bytes header field; stored == raw there.
      s.raw_bytes += r.meta.raw_bytes > 0 ? r.meta.raw_bytes : r.bytes;
    }
  }
  return s;
}

}  // namespace recycledb
