// Subsumption-based reuse (§IV-A): deriving a query node's result from a
// cached result that subsumes it.
//
// Supported derivations:
//   - column subsumption: the cached Project/Aggregate computes a superset
//     of the requested output columns -> project them out.
//   - tuple subsumption (Select): the cached selection's conjuncts are a
//     subset of the requested ones -> apply the residual conjuncts.
//   - tuple subsumption (Aggregate): the cached GROUP BY is finer (its
//     grouping columns are a superset) and every requested aggregate can
//     be re-aggregated from cached partials -> re-aggregate.
//   - tuple subsumption (TopN): the cached top-M with the same sort keys
//     and M >= N answers top-N via a Limit (the proactive top-N strategy
//     relies on this).
#pragma once

#include "recycler/graph.h"

namespace recycledb {

/// Result of a successful subsumption derivation.
struct SubsumptionPlan {
  /// Derived plan (query name space) whose output schema equals the query
  /// node's output schema.
  PlanPtr plan;
  /// The CachedScan node inside `plan` (for cost annotation).
  PlanPtr cached_scan;
};

/// Attempts to derive `query_node`'s result from the cached result of
/// `cand`. `child_mapping` maps the query child's column names to graph
/// space (the two nodes share the child subtree). `cached` is the
/// candidate's materialized result (caller snapshots it under lock).
/// Returns an empty plan when no supported derivation applies.
///
/// Thread-safety: reads only immutable RGNode fields (param_node,
/// output_names) plus the passed-in `cached` snapshot.
SubsumptionPlan TrySubsumption(const PlanNode& query_node,
                               const NameMap& child_mapping,
                               const RGNode& cand, TablePtr cached);

/// True if `sub`'s parameters are subsumed by `super`'s (both param_nodes
/// in graph space, same child). Used to maintain most-specific
/// subsumption edges in the graph.
bool ParamsSubsume(const PlanNode& super, const PlanNode& sub);

}  // namespace recycledb
