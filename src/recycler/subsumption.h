// Subsumption-based reuse (§IV-A): deriving a query node's result from a
// cached result that subsumes it.
//
// Supported derivations:
//   - column subsumption: the cached Project/Aggregate computes a superset
//     of the requested output columns -> project them out.
//   - tuple subsumption (Select): the cached selection's conjuncts are a
//     subset of the requested ones -> apply the residual conjuncts.
//   - tuple subsumption (Aggregate): the cached GROUP BY is finer (its
//     grouping columns are a superset) and every requested aggregate can
//     be re-aggregated from cached partials -> re-aggregate.
//   - tuple subsumption (TopN): the cached top-M with the same sort keys
//     and M >= N answers top-N via a Limit (the proactive top-N strategy
//     relies on this).
//   - partial reuse (range stitching): overlapping cached range slices
//     over the same child are unioned (with compensation filters) and the
//     uncovered remainder is answered by compensated delta scans — see
//     TryPartialStitch and interval_index.h.
#pragma once

#include "recycler/graph.h"
#include "recycler/interval_index.h"

namespace recycledb {

/// Result of a successful subsumption derivation.
struct SubsumptionPlan {
  /// Derived plan (query name space) whose output schema equals the query
  /// node's output schema.
  PlanPtr plan;
  /// The CachedScan node inside `plan` (for cost annotation).
  PlanPtr cached_scan;
};

/// Attempts to derive `query_node`'s result from the cached result of
/// `cand`. `child_mapping` maps the query child's column names to graph
/// space (the two nodes share the child subtree). `cached` is the
/// candidate's materialized result (caller snapshots it under lock).
/// Returns an empty plan when no supported derivation applies.
///
/// Thread-safety: reads only immutable RGNode fields (param_node,
/// output_names) plus the passed-in `cached` snapshot.
SubsumptionPlan TrySubsumption(const PlanNode& query_node,
                               const NameMap& child_mapping,
                               const RGNode& cand, TablePtr cached);

/// True if `sub`'s parameters are subsumed by `super`'s (both param_nodes
/// in graph space, same child). Used to maintain most-specific
/// subsumption edges in the graph.
bool ParamsSubsume(const PlanNode& super, const PlanNode& sub);

// ---------------------------------------------------------------------------
// Partial reuse (range stitching)
// ---------------------------------------------------------------------------

/// One cached slice the stitcher may draw from: the cached node, a
/// pinned snapshot of its result, its interval on the stitch column, and
/// the fingerprints of its remaining conjuncts (all graph space). The
/// caller (Recycler) collects these from the interval index under lock.
struct IntervalCandidate {
  const RGNode* node = nullptr;
  TablePtr cached;
  ColumnInterval range;
  std::set<std::string> other_fps;
};

/// One branch of a stitched plan that reads a cached slice.
struct PartialPiece {
  /// The branch subtree (CachedScan, possibly under a compensation
  /// Select clamping the branch to its assigned sub-interval).
  PlanPtr piece;
  /// The CachedScan inside `piece` (for Eq. 2 cost bookkeeping).
  PlanPtr cached_scan;
  /// The contributing cached node.
  const RGNode* source = nullptr;
  /// Share of the query interval this branch covers (proportional
  /// benefit credit; equal split when the interval is unmeasurable).
  double fraction = 0;
};

/// Result of a successful partial-reuse stitching.
struct PartialPlan {
  /// Stitched plan: a single piece, or a UnionAll over cached-slice
  /// pieces and delta scans. Branches cover pairwise-disjoint
  /// sub-intervals of the query range, so the bag union is exact.
  PlanPtr plan;
  std::vector<PartialPiece> reuse_pieces;
  /// Number of delta branches: 0 when the cached slices fully cover the
  /// query range (the child never executes), else 1 — every uncovered
  /// gap merges into one compensated delta scan so the child subtree
  /// executes at most once per stitched plan.
  int num_delta_pieces = 0;
  /// Total share of the query interval served from the cache.
  double covered_fraction = 0;
};

/// Attempts to answer range selection `query_node` (whose predicate
/// decomposed into `spec`) from the union of overlapping cached slices
/// plus compensated delta scans over `child_plan` for the uncovered
/// remainder. `child_mapping` maps the shared child's column names to
/// graph space. Candidates whose remaining conjuncts are not a subset of
/// the query's are skipped (the residual conjuncts become compensation
/// filters on their piece). Adjacent pieces meet with complementary
/// open/closed boundaries, so shared boundary values are emitted exactly
/// once. Returns an empty plan when no candidate contributes.
///
/// The stitched union is a BAG equal to the selection's result as a
/// multiset, but branch order differs from cold execution (cached slices
/// stream before delta scans) — an order-sensitive parent without a sort
/// (Limit without OrderBy) may surface different, equally valid, rows.
///
/// Thread-safety: pure — reads only immutable RGNode identity fields and
/// the pinned snapshots inside `candidates`.
PartialPlan TryPartialStitch(const PlanNode& query_node,
                             const NameMap& child_mapping,
                             const PlanPtr& child_plan, const RangeSpec& spec,
                             const std::vector<IntervalCandidate>& candidates);

}  // namespace recycledb
