#include "recycler/delta.h"

#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace recycledb {

namespace {

/// Index of the aggregate `fn(arg_fp)` in `items` (-1 if absent).
/// Fingerprints are taken without a mapping: both sides live in the same
/// name space (the query plan's, or a param_node's graph space).
int FindAgg(const std::vector<AggItem>& items, AggFunc fn,
            const std::string& arg_fp) {
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].fn == fn && items[i].arg->Fingerprint(nullptr) == arg_fp) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Decomposability of one aggregate list (see DeltaEligiblePlan).
bool AggListEligible(const std::vector<std::string>& group_by,
                     const std::vector<AggItem>& items) {
  for (const AggItem& item : items) {
    switch (item.fn) {
      case AggFunc::kSum:
      case AggFunc::kCount:
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        // A global MIN/MAX over an empty delta group would merge the
        // operator's pad row into the result; grouped aggregates emit no
        // row for an empty delta, so only the global form is excluded.
        if (group_by.empty()) return false;
        break;
      case AggFunc::kAvg: {
        std::string fp = item.arg->Fingerprint(nullptr);
        if (FindAgg(items, AggFunc::kSum, fp) < 0 ||
            FindAgg(items, AggFunc::kCount, fp) < 0) {
          return false;
        }
        break;
      }
    }
  }
  return true;
}

/// Re-aggregation function merging partials of `fn` (kAvg never reaches
/// here: its columns are excluded from the outer aggregation).
AggFunc ReaggOf(AggFunc fn) {
  return fn == AggFunc::kCount ? AggFunc::kSum : fn;
}

/// Clones the chain with the leaf scan replaced by the delta window
/// [window.from_rows, window.to_rows).
PlanPtr CloneWithWindow(const PlanNode& n, const StaleWindow& window) {
  if (n.type() == OpType::kScan) {
    return PlanNode::ScanRange(n.table_name(), n.scan_columns(),
                               window.from_rows, window.to_rows);
  }
  std::vector<PlanPtr> kids;
  for (const PlanPtr& c : n.children()) {
    kids.push_back(CloneWithWindow(*c, window));
  }
  return n.WithChildren(std::move(kids));
}

}  // namespace

Freshness CheckFreshness(const std::map<std::string, TableStamp>& stamps,
                         const std::set<std::string>& base_tables,
                         const std::map<std::string, TableSnapshot>& snapshots,
                         StaleWindow* window) {
  if (window != nullptr) *window = StaleWindow{};
  // Unstamped legacy entry: fresh by the append-invalidation contract.
  if (stamps.empty()) return Freshness::kFresh;
  int stale_tables = 0;
  bool ahead = false;
  for (const std::string& table : base_tables) {
    auto st = stamps.find(table);
    auto sn = snapshots.find(table);
    // A dependency without a stamp (or without a pinned snapshot to
    // compare against) makes the entry unjudgeable: treat as replaced.
    if (st == stamps.end() || sn == snapshots.end()) {
      return Freshness::kIncompatible;
    }
    if (st->second.epoch != sn->second.epoch) {
      return Freshness::kIncompatible;
    }
    // Same epoch but the entry is stamped past this query's snapshot: a
    // concurrent append + refresh won the race. The entry is fresh for
    // later queries — the caller must miss WITHOUT evicting.
    if (st->second.rows > sn->second.rows) {
      ahead = true;
      continue;
    }
    if (st->second.rows < sn->second.rows) {
      if (++stale_tables == 1 && window != nullptr) {
        window->table = table;
        window->from_rows = st->second.rows;
        window->to_rows = sn->second.rows;
      } else if (window != nullptr) {
        *window = StaleWindow{};  // multi-table growth: no single window
      }
    }
  }
  if (ahead) return Freshness::kAhead;
  return stale_tables == 0 ? Freshness::kFresh : Freshness::kAppendStale;
}

bool DeltaEligiblePlan(const PlanNode& plan, const std::string& table) {
  RDB_CHECK_MSG(plan.bound(), "DeltaEligiblePlan needs a bound plan");
  if (plan.base_tables().size() != 1 ||
      plan.base_tables().count(table) == 0) {
    return false;
  }
  const PlanNode* cur = &plan;
  if (cur->type() == OpType::kAggregate) {
    if (!AggListEligible(cur->group_by(), cur->aggregates())) return false;
    cur = cur->child().get();
  }
  while (cur->type() == OpType::kSelect || cur->type() == OpType::kProject) {
    cur = cur->child().get();
  }
  return cur->type() == OpType::kScan && cur->table_name() == table &&
         !cur->has_scan_range();
}

bool DeltaEligibleNode(const RGNode& node, const std::string& table) {
  if (node.base_tables.size() != 1 || node.base_tables.count(table) == 0) {
    return false;
  }
  const RGNode* cur = &node;
  if (cur->type == OpType::kAggregate) {
    if (cur->children.size() != 1 || cur->param_node == nullptr ||
        !AggListEligible(cur->param_node->group_by(),
                         cur->param_node->aggregates())) {
      return false;
    }
    cur = cur->children[0];
  }
  while (cur->type == OpType::kSelect || cur->type == OpType::kProject) {
    if (cur->children.size() != 1) return false;
    cur = cur->children[0];
  }
  return cur->type == OpType::kScan && cur->param_node != nullptr &&
         cur->param_node->table_name() == table &&
         !cur->param_node->has_scan_range();
}

PlanPtr BuildDeltaStitch(const PlanNode& plan, TablePtr cached,
                         const StaleWindow& window, PlanPtr* cached_scan_out) {
  PlanPtr cached_scan =
      PlanNode::CachedScan(std::move(cached), plan.output_schema().Names());
  cached_scan->set_as_of_rows(window.from_rows);
  if (cached_scan_out != nullptr) *cached_scan_out = cached_scan;
  PlanPtr delta = CloneWithWindow(plan, window);
  return PlanNode::UnionAll({cached_scan, delta});
}

PlanPtr BuildAggMerge(const PlanNode& plan, TablePtr cached,
                      const StaleWindow& window, PlanPtr* cached_scan_out) {
  RDB_CHECK(plan.type() == OpType::kAggregate);
  const std::vector<std::string>& groups = plan.group_by();
  const std::vector<AggItem>& items = plan.aggregates();

  PlanPtr cached_scan =
      PlanNode::CachedScan(std::move(cached), plan.output_schema().Names());
  cached_scan->set_as_of_rows(window.from_rows);
  if (cached_scan_out != nullptr) *cached_scan_out = cached_scan;

  // Aggregate only the delta window with the original functions, then
  // union with the cached aggregate state (positionally compatible: both
  // sides carry [groups..., aggregates...] in the query's output names).
  PlanPtr delta_agg = CloneWithWindow(plan, window);
  PlanPtr merged = PlanNode::UnionAll({cached_scan, delta_agg});

  // Re-aggregate partials per group. AVG columns are carried by the
  // union but not re-aggregated: the final value is recomputed from the
  // merged SUM/COUNT of the same argument (decomposition rules).
  std::vector<AggItem> outer;
  std::vector<std::string> temp(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].fn == AggFunc::kAvg) continue;
    temp[i] = "dm" + std::to_string(i);
    outer.push_back(
        {ReaggOf(items[i].fn), Expr::Column(items[i].out_name), temp[i]});
  }
  PlanPtr reagg = PlanNode::Aggregate(merged, groups, std::move(outer));

  // Restore the original output layout and names.
  std::vector<ProjItem> proj;
  for (const std::string& g : groups) {
    proj.push_back({Expr::Column(g), g});
  }
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].fn != AggFunc::kAvg) {
      proj.push_back({Expr::Column(temp[i]), items[i].out_name});
      continue;
    }
    std::string fp = items[i].arg->Fingerprint(nullptr);
    int js = FindAgg(items, AggFunc::kSum, fp);
    int jc = FindAgg(items, AggFunc::kCount, fp);
    RDB_CHECK_MSG(js >= 0 && jc >= 0, "avg without sum/count partials");
    proj.push_back(
        {Expr::Arith(ArithOp::kDiv,
                     Expr::Arith(ArithOp::kMul, Expr::Column(temp[js]),
                                 Expr::Literal(1.0)),
                     Expr::Column(temp[jc])),
         items[i].out_name});
  }
  return PlanNode::Project(reagg, std::move(proj));
}

}  // namespace recycledb
