// The recycler cache: a finite in-memory result cache with benefit-based
// admission and replacement (§III-E).
//
// Cache management follows the paper's Danzig-style greedy knapsack:
// cached results are classified into groups by log2(size); the replacement
// policy scans the candidate's own size group in increasing-benefit order,
// accumulating victims until either the victims' average benefit exceeds
// the candidate's (reject) or enough space is freed (admit).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "recycler/graph.h"

namespace recycledb {

/// Replacement-policy flavors. kBenefit is the paper's policy; kLru and
/// kAdmitAll exist for the ablation benchmarks.
enum class CachePolicy : uint8_t { kBenefit, kLru, kAdmitAll };

/// The recycler cache. NOT thread-safe by itself: the owning Recycler
/// serializes access under its dedicated cache mutex (decoupled from the
/// graph lock; see DESIGN.md "Concurrency model" for the lock order).
class RecyclerCache {
 public:
  /// `capacity_bytes` < 0 means unlimited.
  /// `benefit_fn` recomputes the current benefit of a cached node (the
  /// paper recomputes benefits as results are added/evicted/reused).
  RecyclerCache(int64_t capacity_bytes,
                std::function<double(const RGNode*)> benefit_fn,
                CachePolicy policy = CachePolicy::kBenefit);

  /// Checks whether a result of `size_bytes` with benefit `benefit` would
  /// be admitted right now (used for store decisions before execution).
  /// Does not modify the cache.
  bool WouldAdmit(double benefit, int64_t size_bytes) const;

  /// Admits `node` (whose node->cached/cached_bytes the caller has set),
  /// evicting per the replacement policy. Returns false (and leaves the
  /// cache unchanged) when the result does not qualify. On success the
  /// evicted nodes are appended to `evicted` so the caller can run the
  /// h-update of Eq. 4 on them.
  bool Admit(RGNode* node, double benefit, std::vector<RGNode*>* evicted);

  /// Removes `node` from the cache if present (invalidation / flush).
  /// Does not touch node->mat_state; the caller owns state transitions.
  void Remove(RGNode* node);

  /// Removes every entry, appending them to `evicted`.
  void Flush(std::vector<RGNode*>* evicted);

  /// Marks `node` as referenced (LRU bookkeeping for the ablation policy).
  void TouchForLru(RGNode* node);

  int64_t used_bytes() const { return used_bytes_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  bool unlimited() const { return capacity_bytes_ < 0; }
  int64_t num_entries() const;

  /// All cached nodes (diagnostics).
  std::vector<RGNode*> Entries() const;

 private:
  struct Entry {
    RGNode* node;
    int64_t lru_stamp;
  };

  static int SizeGroup(int64_t size_bytes);
  /// Selects victims for a candidate of (benefit, size); returns true if
  /// admission is possible. Victims are appended to `victims`.
  bool PlanEviction(double benefit, int64_t size_bytes,
                    std::vector<RGNode*>* victims) const;
  void EvictOne(RGNode* node);

  int64_t capacity_bytes_;
  std::function<double(const RGNode*)> benefit_fn_;
  CachePolicy policy_;
  /// log2-size group -> entries (unordered within; benefit is recomputed
  /// on every policy evaluation, so no stored order can go stale).
  std::map<int, std::vector<Entry>> groups_;
  int64_t used_bytes_ = 0;
  int64_t lru_counter_ = 0;
};

}  // namespace recycledb
