// Interval index for partial-reuse subsumption (range stitching).
//
// Cached selection slices whose predicates carry a single-column range
// (e.g. `10 < x AND x < 50` plus arbitrary non-range conjuncts) are
// indexed per (child graph-node, column). An incoming range selection
// over the same child then finds every overlapping cached slice with an
// interval query instead of a linear scan over the child's parents, and
// the stitching rewriter (TryPartialStitch, subsumption.h) answers the
// query from the union of the overlapping slices plus compensated delta
// scans over the uncovered remainder.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "expr/expression.h"

namespace recycledb {

struct RGNode;

/// One end of a (possibly half-open or unbounded) column interval.
struct RangeBound {
  /// True when the bound is absent (-inf for a lower, +inf for an upper).
  bool unbounded = true;
  /// Bound value; meaningful only when !unbounded.
  Datum value{};
  /// True for >= / <= bounds, false for > / <.
  bool inclusive = false;
};

/// A one-column interval `lo .. hi` with independent open/closed ends.
struct ColumnInterval {
  RangeBound lo;
  RangeBound hi;
};

/// True if `a` is the strictly tighter LOWER bound (starts later than
/// `b`; an exclusive bound at the same value is tighter than an
/// inclusive one).
bool LoTighter(const RangeBound& a, const RangeBound& b);

/// True if `a` is the strictly tighter UPPER bound (ends earlier).
bool HiTighter(const RangeBound& a, const RangeBound& b);

/// The tighter of two lower / upper bounds.
RangeBound TighterLo(const RangeBound& a, const RangeBound& b);
RangeBound TighterHi(const RangeBound& a, const RangeBound& b);

/// True when the interval contains no value (lo past hi, or equal with
/// either end open). Unbounded ends never make an interval empty.
bool IntervalEmpty(const ColumnInterval& i);

/// True when the two intervals share at least one value (a shared closed
/// boundary point counts).
bool Overlaps(const ColumnInterval& a, const ColumnInterval& b);

/// Intersection (may be empty; check IntervalEmpty).
ColumnInterval Intersect(const ColumnInterval& a, const ColumnInterval& b);

/// The upper bound ending immediately before lower bound `lo`
/// (value-equal, complementary inclusiveness). `lo` must be bounded.
RangeBound ComplementHi(const RangeBound& lo);

/// The lower bound starting immediately after upper bound `hi`
/// (value-equal, complementary inclusiveness). `hi` must be bounded.
RangeBound ComplementLo(const RangeBound& hi);

/// A selection predicate decomposed around one ranged column: the
/// column's interval plus every remaining conjunct ("others", matched by
/// fingerprint between cached slice and query).
struct RangeSpec {
  /// Ranged column name in the predicate's own name space.
  std::string column;
  /// `column` translated through the extraction mapping (equal to
  /// `column` when no mapping was given). Graph-space index key.
  std::string mapped_column;
  /// The conjunction of all range conjuncts on `column`.
  ColumnInterval range;
  /// Non-range conjuncts, original expressions (predicate name space).
  std::vector<ExprPtr> others;
  /// Fingerprints of `others` under the extraction mapping.
  std::set<std::string> other_fps;
};

/// Decomposes a selection predicate into one RangeSpec per column that
/// carries at least one range conjunct (`col < lit`, `lit <= col`, ...).
/// Every conjunct not contributing to a spec's column lands in that
/// spec's `others` — including range conjuncts on *different* columns,
/// which then must match by fingerprint like any other conjunct. Specs
/// whose interval is empty (contradictory predicate) are dropped.
/// `mapping` (optional) translates column names for `mapped_column` and
/// `other_fps` (query space -> graph space).
std::vector<RangeSpec> ExtractRangeSpecs(const ExprPtr& pred,
                                         const NameMap* mapping);

/// The interval index: cached range-selection slices keyed by
/// (child graph-node id, graph-space column name), each bucket sorted by
/// lower bound so overlap lookups stop early.
///
/// NOT thread-safe by itself: the owning Recycler guards it with its
/// cache mutex (the index tracks cache residency, so it changes exactly
/// when admission/eviction decisions do; lock order graph mutex ->
/// cache mutex -> mat shard mutex is unchanged).
class IntervalIndex {
 public:
  /// One indexed slice: the cached node, its interval on the bucket's
  /// column, and the fingerprints of its remaining conjuncts.
  struct Entry {
    RGNode* node = nullptr;
    ColumnInterval range;
    std::set<std::string> other_fps;
  };

  /// Registers `entry` under (child_id, column). Inserting the same node
  /// twice for one key is a no-op.
  void Insert(int64_t child_id, const std::string& column, Entry entry);

  /// Unregisters every entry of `node` (all keys). No-op when absent.
  void Remove(const RGNode* node);

  /// Every entry under (child_id, column) whose interval overlaps
  /// `query`, in ascending lower-bound order.
  std::vector<Entry> Overlapping(int64_t child_id, const std::string& column,
                                 const ColumnInterval& query) const;

  /// Total registered (node, key) pairs.
  int64_t num_entries() const { return num_entries_; }

 private:
  using Key = std::pair<int64_t, std::string>;

  /// Buckets sorted ascending by entry lower bound.
  std::map<Key, std::vector<Entry>> buckets_;
  /// node -> keys it is registered under (for Remove).
  std::unordered_map<const RGNode*, std::vector<Key>> registered_;
  int64_t num_entries_ = 0;
};

}  // namespace recycledb
