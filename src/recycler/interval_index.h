// Interval index for partial-reuse subsumption (range stitching).
//
// Cached selection slices whose predicates carry a single-column range
// (e.g. `10 < x AND x < 50` plus arbitrary non-range conjuncts) are
// indexed per (child graph-node, column). An incoming range selection
// over the same child then finds every overlapping cached slice with an
// interval query instead of a linear scan over the child's parents, and
// the stitching rewriter (TryPartialStitch, subsumption.h) answers the
// query from the union of the overlapping slices plus compensated delta
// scans over the uncovered remainder.
//
// The interval arithmetic lives in common/interval.h and the predicate
// decomposition in expr/range.h (both included here for their historical
// call sites); this header adds only the index itself.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "expr/range.h"

namespace recycledb {

struct RGNode;

/// The interval index: cached range-selection slices keyed by
/// (child graph-node id, graph-space column name), each bucket sorted by
/// lower bound so overlap lookups stop early.
///
/// NOT thread-safe by itself: the owning Recycler guards it with its
/// cache mutex (the index tracks cache residency, so it changes exactly
/// when admission/eviction decisions do; lock order graph mutex ->
/// cache mutex -> mat shard mutex is unchanged).
class IntervalIndex {
 public:
  /// One indexed slice: the cached node, its interval on the bucket's
  /// column, and the fingerprints of its remaining conjuncts.
  struct Entry {
    RGNode* node = nullptr;
    ColumnInterval range;
    std::set<std::string> other_fps;
  };

  /// Registers `entry` under (child_id, column). Inserting the same node
  /// twice for one key is a no-op.
  void Insert(int64_t child_id, const std::string& column, Entry entry);

  /// Unregisters every entry of `node` (all keys). No-op when absent.
  void Remove(const RGNode* node);

  /// Every entry under (child_id, column) whose interval overlaps
  /// `query`, in ascending lower-bound order.
  std::vector<Entry> Overlapping(int64_t child_id, const std::string& column,
                                 const ColumnInterval& query) const;

  /// Total registered (node, key) pairs.
  int64_t num_entries() const { return num_entries_; }

 private:
  using Key = std::pair<int64_t, std::string>;

  /// Buckets sorted ascending by entry lower bound.
  std::map<Key, std::vector<Entry>> buckets_;
  /// node -> keys it is registered under (for Remove).
  std::unordered_map<const RGNode*, std::vector<Key>> registered_;
  int64_t num_entries_ = 0;
};

}  // namespace recycledb
