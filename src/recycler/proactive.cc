#include "recycler/proactive.h"

#include <set>

#include "common/macros.h"
#include "common/string_util.h"
#include "expr/aggregate.h"

namespace recycledb {

PlanPtr RewriteTopNProactive(const PlanPtr& plan, int64_t proactive_limit) {
  // Rewrite children first.
  std::vector<PlanPtr> new_children;
  bool changed = false;
  for (const auto& c : plan->children()) {
    PlanPtr nc = RewriteTopNProactive(c, proactive_limit);
    changed = changed || nc != c;
    new_children.push_back(std::move(nc));
  }
  PlanPtr base = changed ? plan->WithChildren(new_children) : plan;
  if (plan->type() == OpType::kTopN && plan->limit() < proactive_limit) {
    PlanPtr big = PlanNode::TopN(base->child(0), base->sort_keys(),
                                 proactive_limit);
    return PlanNode::Limit(big, plan->limit());
  }
  return base;
}

namespace {

/// Finds distinct-count statistics for `column` in any base table under
/// `tables` (our schemas use globally unique column names).
const ColumnStats* FindColumnStats(const Catalog& catalog,
                                   const std::set<std::string>& tables,
                                   const std::string& column) {
  for (const auto& t : tables) {
    const ColumnStats* s = catalog.GetColumnStats(t, column);
    if (s != nullptr) return s;
  }
  return nullptr;
}

struct DecomposedAggs {
  std::vector<ProjItem> arg_items;   // aa<i> = <agg arg expr> (over X cols)
  std::vector<AggItem> partials;     // α' over aa<i>
  std::vector<AggItem> reaggs;       // α'' over partial names
  std::vector<ProjItem> finals;      // original out names over reagg names
};

/// Decomposes every aggregate of `node` for two-level evaluation:
/// inner Aggregate computes partials over projected argument columns,
/// outer Aggregate re-aggregates, final Project restores names/semantics.
DecomposedAggs DecomposeAll(const PlanNode& node) {
  DecomposedAggs out;
  int serial = 0;
  for (const auto& a : node.aggregates()) {
    std::string arg_name = StrFormat("aa%d", serial);
    out.arg_items.push_back({a.arg, arg_name});
    AggItem rebased{a.fn, Expr::Column(arg_name), a.out_name};
    AggDecomposition d =
        DecomposeAggregate(rebased, StrFormat("pa%d", serial));
    ++serial;
    NameMap partial_to_reagg;
    for (size_t i = 0; i < d.partials.size(); ++i) {
      out.partials.push_back(d.partials[i]);
      std::string reagg_name = "rr_" + d.partials[i].out_name;
      out.reaggs.push_back({d.reaggs[i],
                            Expr::Column(d.partials[i].out_name), reagg_name});
      partial_to_reagg[d.partials[i].out_name] = reagg_name;
    }
    if (d.final_expr == nullptr) {
      out.finals.push_back(
          {Expr::Column(partial_to_reagg.begin()->second), a.out_name});
    } else {
      out.finals.push_back({d.final_expr->Rename(partial_to_reagg),
                            a.out_name});
    }
  }
  return out;
}

/// Shared tail of both cube strategies: given the two union parts emitting
/// (γ..., partials...), build UnionAll -> re-aggregate -> final Project.
PlanPtr FinishCube(const PlanNode& agg_node, const DecomposedAggs& d,
                   std::vector<PlanPtr> parts) {
  PlanPtr merged = parts.size() == 1 ? parts[0]
                                     : PlanNode::UnionAll(std::move(parts));
  PlanPtr outer = PlanNode::Aggregate(merged, agg_node.group_by(), d.reaggs);
  std::vector<ProjItem> final_items;
  for (const auto& g : agg_node.group_by()) {
    final_items.push_back({Expr::Column(g), g});
  }
  for (const auto& f : d.finals) final_items.push_back(f);
  return PlanNode::Project(outer, std::move(final_items));
}

/// Pattern probe: is `plan` Aggregate(γ, α) over Select(p, X)?
bool IsAggOverSelect(const PlanNode& plan) {
  return plan.type() == OpType::kAggregate && plan.num_children() == 1 &&
         plan.child(0)->type() == OpType::kSelect &&
         !plan.aggregates().empty();
}

/// Cube caching with binning (§IV-B, Fig. 5 right).
std::optional<CubeRewrite> TryBinning(const PlanPtr& plan) {
  const PlanNode& agg = *plan;
  const PlanPtr sel = agg.child(0);
  const PlanPtr x = sel->child(0);

  // Single upper-bounded range conjunct on a DATE column.
  std::vector<ExprPtr> conjuncts = SplitConjuncts(sel->predicate());
  if (conjuncts.size() != 1) return std::nullopt;
  const ExprPtr& pred = conjuncts[0];
  if (pred->kind() != ExprKind::kCompare) return std::nullopt;
  if (pred->compare_op() != CompareOp::kLe &&
      pred->compare_op() != CompareOp::kLt) {
    return std::nullopt;
  }
  const ExprPtr& lhs = pred->children()[0];
  const ExprPtr& rhs = pred->children()[1];
  if (lhs->kind() != ExprKind::kColumnRef ||
      rhs->kind() != ExprKind::kLiteral) {
    return std::nullopt;
  }
  const Schema& xs = x->output_schema();
  int cidx = xs.IndexOf(lhs->column_name());
  if (cidx < 0 || xs.field(cidx).type != TypeId::kDate) return std::nullopt;
  if (!std::holds_alternative<int32_t>(rhs->literal())) return std::nullopt;
  const std::string c = lhs->column_name();
  const int32_t d_date = std::get<int32_t>(rhs->literal());
  const int year_d = DateYear(d_date);

  DecomposedAggs d = DecomposeAll(agg);

  // --- binned part: year-cube over X, filtered to full years < year(D).
  std::vector<ProjItem> p1_items;
  for (const auto& g : agg.group_by()) p1_items.push_back({Expr::Column(g), g});
  std::string bin_col = c + "_year";
  p1_items.push_back({Expr::Func("year", {Expr::Column(c)}), bin_col});
  for (const auto& it : d.arg_items) p1_items.push_back(it);
  PlanPtr p1 = PlanNode::Project(x, p1_items);

  std::vector<std::string> bin_groups = agg.group_by();
  bin_groups.push_back(bin_col);
  PlanPtr binned = PlanNode::Aggregate(p1, bin_groups, d.partials);

  PlanPtr sel_bin = PlanNode::Select(
      binned, Expr::Lt(Expr::Column(bin_col),
                       Expr::Literal(static_cast<int32_t>(year_d))));
  std::vector<ProjItem> drop_bin_items;
  for (const auto& g : agg.group_by()) {
    drop_bin_items.push_back({Expr::Column(g), g});
  }
  for (const auto& p : d.partials) {
    drop_bin_items.push_back({Expr::Column(p.out_name), p.out_name});
  }
  PlanPtr part_a = PlanNode::Project(sel_bin, drop_bin_items);

  // --- residual part: recompute [Jan 1 of year(D) .. D] from X.
  ExprPtr residual = Expr::And(
      Expr::Ge(Expr::Column(c), Expr::Literal(MakeDate(year_d, 1, 1))),
      Expr::Compare(pred->compare_op(), Expr::Column(c),
                    Expr::Literal(d_date)));
  PlanPtr sel_res = PlanNode::Select(x, residual);
  std::vector<ProjItem> p2_items;
  for (const auto& g : agg.group_by()) p2_items.push_back({Expr::Column(g), g});
  for (const auto& it : d.arg_items) p2_items.push_back(it);
  PlanPtr p2 = PlanNode::Project(sel_res, p2_items);
  PlanPtr part_b = PlanNode::Aggregate(p2, agg.group_by(), d.partials);

  CubeRewrite out;
  out.gate = binned;
  out.plan = FinishCube(agg, d, {part_a, part_b});
  return out;
}

/// Cube caching with selections (§IV-B, Fig. 5 left).
std::optional<CubeRewrite> TrySelections(const PlanPtr& plan,
                                         const Catalog& catalog,
                                         int64_t distinct_threshold) {
  const PlanNode& agg = *plan;
  const PlanPtr sel = agg.child(0);
  const PlanPtr x = sel->child(0);

  std::set<std::string> pred_cols;
  sel->predicate()->CollectColumns(&pred_cols);
  if (pred_cols.empty()) return std::nullopt;
  // Result-size heuristic: the combined distinct count of the selection
  // columns added to the GROUP BY must be small.
  int64_t combined = 1;
  for (const auto& c : pred_cols) {
    const ColumnStats* s = FindColumnStats(catalog, x->base_tables(), c);
    if (s == nullptr || s->distinct_count <= 0) return std::nullopt;
    combined *= s->distinct_count;
    if (combined > distinct_threshold) return std::nullopt;
  }
  std::set<std::string> groups(agg.group_by().begin(), agg.group_by().end());
  bool all_grouped = true;
  for (const auto& c : pred_cols) {
    if (groups.count(c) == 0) all_grouped = false;
  }
  if (all_grouped) {
    // Best case: every selection column is already a grouping column, so
    // the selection commutes with the aggregation — pull it above without
    // re-aggregation. The unfiltered aggregate becomes the shared cube.
    PlanPtr cube = PlanNode::Aggregate(x, agg.group_by(), agg.aggregates());
    CubeRewrite out;
    out.gate = cube;
    out.plan = PlanNode::Select(cube, sel->predicate());
    return out;
  }

  DecomposedAggs d = DecomposeAll(agg);

  std::vector<ProjItem> p1_items;
  for (const auto& g : agg.group_by()) p1_items.push_back({Expr::Column(g), g});
  for (const auto& c : pred_cols) {
    if (groups.count(c) == 0) p1_items.push_back({Expr::Column(c), c});
  }
  for (const auto& it : d.arg_items) p1_items.push_back(it);
  PlanPtr p1 = PlanNode::Project(x, p1_items);

  std::vector<std::string> cube_groups = agg.group_by();
  for (const auto& c : pred_cols) {
    if (groups.count(c) == 0) cube_groups.push_back(c);
  }
  PlanPtr inner = PlanNode::Aggregate(p1, cube_groups, d.partials);
  PlanPtr filtered = PlanNode::Select(inner, sel->predicate());
  std::vector<ProjItem> drop_items;
  for (const auto& g : agg.group_by()) {
    drop_items.push_back({Expr::Column(g), g});
  }
  for (const auto& p : d.partials) {
    drop_items.push_back({Expr::Column(p.out_name), p.out_name});
  }
  PlanPtr dropped = PlanNode::Project(filtered, drop_items);

  CubeRewrite out;
  out.gate = inner;
  out.plan = FinishCube(agg, d, {dropped});
  return out;
}

}  // namespace

std::optional<CubeRewrite> TryCubeRewrite(const PlanPtr& plan,
                                          const Catalog& catalog,
                                          int64_t distinct_threshold) {
  RDB_CHECK_MSG(plan->bound(), "TryCubeRewrite requires a bound plan");
  if (IsAggOverSelect(*plan)) {
    // Binning handles range predicates; plain selections the rest.
    if (auto r = TryBinning(plan)) return r;
    if (auto r = TrySelections(plan, catalog, distinct_threshold)) return r;
  }
  // Recurse: rewrite the first applicable descendant and splice it in.
  for (int i = 0; i < plan->num_children(); ++i) {
    if (auto r = TryCubeRewrite(plan->child(i), catalog, distinct_threshold)) {
      std::vector<PlanPtr> children = plan->children();
      children[static_cast<size_t>(i)] = r->plan;
      CubeRewrite spliced;
      spliced.gate = r->gate;
      spliced.plan = plan->WithChildren(std::move(children));
      return spliced;
    }
  }
  return std::nullopt;
}

}  // namespace recycledb
