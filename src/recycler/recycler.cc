#include "recycler/recycler.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <unordered_set>

#include "common/hash.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/cost_model.h"
#include "recycler/proactive.h"
#include "recycler/subsumption.h"

namespace recycledb {

const char* RecyclerModeName(RecyclerMode mode) {
  switch (mode) {
    case RecyclerMode::kOff:
      return "OFF";
    case RecyclerMode::kHistory:
      return "HIST";
    case RecyclerMode::kSpeculation:
      return "SPEC";
    case RecyclerMode::kProactive:
      return "PA";
  }
  return "?";
}

const char* ReuseModeName(ReuseMode mode) {
  switch (mode) {
    case ReuseMode::kNone:
      return "none";
    case ReuseMode::kExact:
      return "exact";
    case ReuseMode::kColdReadmit:
      return "cold-readmit";
    case ReuseMode::kSubsumption:
      return "subsumption";
    case ReuseMode::kPartialStitch:
      return "partial-stitch";
    case ReuseMode::kDelta:
      return "delta";
    case ReuseMode::kAggMerge:
      return "agg-merge";
  }
  return "?";
}

bool ParseReuseMode(const std::string& name, ReuseMode* mode) {
  for (ReuseMode m :
       {ReuseMode::kNone, ReuseMode::kExact, ReuseMode::kColdReadmit,
        ReuseMode::kSubsumption, ReuseMode::kPartialStitch, ReuseMode::kDelta,
        ReuseMode::kAggMerge}) {
    if (name == ReuseModeName(m)) {
      *mode = m;
      return true;
    }
  }
  return false;
}

ReuseMode ReuseModeFromCounters(const QueryTrace& trace) {
  if (trace.num_agg_merges > 0) return ReuseMode::kAggMerge;
  if (trace.num_delta_reuses > 0) return ReuseMode::kDelta;
  if (trace.num_partial_reuses > 0) return ReuseMode::kPartialStitch;
  if (trace.num_subsumption_reuses > 0) return ReuseMode::kSubsumption;
  if (trace.num_reuses > 0) {
    return trace.num_cold_hits > 0 ? ReuseMode::kColdReadmit
                                   : ReuseMode::kExact;
  }
  return ReuseMode::kNone;
}

/// Matched-tree node: pairs each query plan node with its recycler-graph
/// node and the accumulated query->graph name mapping.
struct PreparedQuery::MNode {
  const PlanNode* plan = nullptr;
  PlanPtr plan_ref;
  RGNode* gnode = nullptr;
  bool inserted = false;   // inserted into the graph by this invocation
  bool replaced = false;   // subtree replaced by a cached result
  /// Subtree replaced by a stitched partial-reuse plan: the node's result
  /// is still produced in full (union of cached slices + delta scans), so
  /// unlike `replaced` it remains a store candidate — but its children
  /// are not walked for stores (delta branches may share plan nodes).
  bool stitched = false;
  NameMap mapping;         // query -> graph names, valid at this output
  /// Plan node actually present in the executed (rewritten) plan; null for
  /// nodes inside replaced subtrees.
  const PlanNode* exec_plan = nullptr;
  std::vector<std::unique_ptr<MNode>> children;
};

PreparedQuery::PreparedQuery() = default;
PreparedQuery::~PreparedQuery() = default;

namespace {

/// Estimated row width in bytes for size estimation (§III-C: measured
/// cardinality x tuple width; strings estimated at 16 bytes).
double EstRowWidth(const std::vector<TypeId>& types) {
  double w = 0;
  for (TypeId t : types) {
    switch (t) {
      case TypeId::kBool:
        w += 1;
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        w += 4;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        w += 8;
        break;
      case TypeId::kString:
        w += 16;
        break;
    }
  }
  return w;
}

uint64_t MappedSignature(const PlanNode& node, const NameMap& mapping) {
  uint64_t sig = 0;
  for (const auto& c : node.ParamInputColumns()) {
    auto it = mapping.find(c);
    sig |= ColumnSignatureBit(it == mapping.end() ? c : it->second);
  }
  return sig;
}

/// Types whose results are worth caching. Base-table scans are excluded:
/// their data already lives in the buffer pool and the copy would be pure
/// overhead (the paper only materializes computed results).
bool CacheableType(OpType type) {
  return type != OpType::kScan && type != OpType::kCachedScan;
}

/// Operators the speculation rule targets: expected expensive with small
/// results (§III-D: "final result of a query, or the result of an
/// aggregation"). Table functions are included: the SkyServer workload's
/// fGetNearbyObjEq is exactly the expensive-small case the paper's
/// recycler materializes.
bool SpeculationTargetType(OpType type) {
  return type == OpType::kAggregate || type == OpType::kTopN ||
         type == OpType::kOrderBy || type == OpType::kFunctionScan;
}

}  // namespace

Recycler::Recycler(const Catalog* catalog, RecyclerConfig config)
    : catalog_(catalog),
      config_(config),
      graph_(config.aging_alpha),
      cache_(config.cache_bytes,
             [this](const RGNode* n) { return BenefitOf(n); },
             config.cache_policy),
      executor_(catalog) {
  RDB_CHECK(catalog != nullptr);
  executor_.set_zone_map_pruning(config_.enable_zone_map_pruning);
  // Calibrate the shared cost model now so the micro-probe never lands
  // inside a query's timing.
  if (config_.use_cost_model) CostModel::Global();
  cold_tier_.set_compress(config_.compress_spill);
  // Nodes dropped off the recycler's synchronous paths (async spill
  // failures, commit-time sweeps, fleet purges applied by RefreshFleet)
  // arrive here with no cold-tier lock held; demotion takes the normal
  // graph/cache locks.
  cold_tier_.set_drop_callback([this](const std::vector<const RGNode*>& ns) {
    std::shared_lock<std::shared_mutex> glock(graph_.mutex());
    std::lock_guard<std::mutex> clock(cache_mu_);
    for (const RGNode* n : ns) OnColdEntryDropped(const_cast<RGNode*>(n));
  });
  // Spill accounting runs at commit time so async and sync spills count
  // identically (atomics only: the sync path fires under the tier mutex).
  cold_tier_.set_spilled_callback(
      [this](const RGNode*, int64_t stored, int64_t raw) {
        counters_.cold_spills.fetch_add(1);
        counters_.cold_spill_stored_bytes.fetch_add(stored);
        counters_.cold_spill_raw_bytes.fetch_add(raw);
      });
  // Database::Open pre-validates the directory and returns an actionable
  // Status; direct constructions with an unusable spill_dir degrade to
  // memory-only behavior rather than aborting.
  if (!config_.spill_dir.empty()) {
    ColdTierOptions copts;
    copts.dir = config_.spill_dir;
    copts.capacity_bytes = config_.cold_tier_capacity_bytes;
    copts.shared = config_.shared_spill_dir;
    copts.read_only = config_.spill_read_only;
    copts.lease_ms = config_.fleet_lease_ms;
    copts.async_spill = config_.async_spill;
    if (config_.shared_spill_dir && !config_.spill_read_only) {
      copts.instance_id = config_.fleet_instance.empty()
                              ? StrFormat("pid%d", static_cast<int>(getpid()))
                              : config_.fleet_instance;
    }
    cold_tier_.Open(copts).ok();
  }
}

Recycler::~Recycler() {
  CheckpointColdTier();  // drains the async queue before returning
}

// ---------------------------------------------------------------------------
// Cold tier (the persistent second-tier result cache)
// ---------------------------------------------------------------------------

namespace {

/// Rewrites every "#<digits>" node-id suffix in `s` through `canon_ids`
/// (graph node id -> subtree pre-order index). Ids outside the map are
/// kept verbatim (base-table column names never carry a suffix; the only
/// way to hit this is a user column literally named like a suffix, which
/// at worst costs a cold miss because the key never matches again).
std::string CanonicalizeIdSuffixes(
    const std::string& s, const std::map<int64_t, int>& canon_ids) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size();) {
    if (s[i] != '#') {
      out.push_back(s[i++]);
      continue;
    }
    size_t j = i + 1;
    while (j < s.size() && s[j] >= '0' && s[j] <= '9') ++j;
    if (j == i + 1) {
      out.push_back(s[i++]);
      continue;
    }
    int64_t id = std::atoll(s.substr(i + 1, j - i - 1).c_str());
    auto it = canon_ids.find(id);
    if (it == canon_ids.end()) {
      out.append(s, i, j - i);
    } else {
      out += "#@" + std::to_string(it->second);
    }
    i = j;
  }
  return out;
}

}  // namespace

std::string Recycler::CanonicalSubtreeKey(const RGNode* node) const {
  // Pre-order id numbering makes the rewritten suffixes independent of
  // graph insertion order (and therefore stable across restarts).
  std::map<int64_t, int> canon_ids;
  struct Numberer {
    std::map<int64_t, int>* ids;
    void Walk(const RGNode* n) {
      if (ids->emplace(n->id, static_cast<int>(ids->size())).second) {
        for (const RGNode* c : n->children) Walk(c);
      }
    }
  };
  Numberer{&canon_ids}.Walk(node);

  struct Printer {
    const std::map<int64_t, int>* ids;
    std::string Walk(const RGNode* n) {
      std::string out = std::to_string(static_cast<int>(n->type)) + "{" +
                        CanonicalizeIdSuffixes(n->param_fp, *ids) + "}";
      if (!n->children.empty()) {
        out += "(";
        for (size_t i = 0; i < n->children.size(); ++i) {
          if (i > 0) out += ";";
          out += Walk(n->children[i]);
        }
        out += ")";
      }
      return out;
    }
  };
  return Printer{&canon_ids}.Walk(node);
}

bool Recycler::MaybeSpill(RGNode* node) {
  if (!cold_tier_.enabled()) return false;
  if (cold_tier_.Has(node)) return true;  // demotion fast path
  double benefit = BenefitOf(node);
  if (benefit < config_.spill_min_benefit) return false;
  TablePtr snapshot;
  std::map<std::string, TableStamp> stamps;
  {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    snapshot = node->cached;
    stamps = node->stamps;
  }
  if (snapshot == nullptr) return false;

  SpillFileMeta meta;
  meta.canon_key = CanonicalSubtreeKey(node);
  meta.column_names = node->output_names;
  meta.column_types = node->output_types;
  meta.num_rows = snapshot->num_rows();
  meta.bcost_ms = node->bcost_ms.load();
  graph_.FoldAging(node);
  meta.h = node->h.load();
  meta.benefit = benefit;
  meta.base_tables.assign(node->base_tables.begin(), node->base_tables.end());
  for (const auto& [t, stamp] : stamps) {
    meta.table_versions.emplace_back(t, stamp.rows);
  }

  if (config_.async_spill) {
    // The file write happens on the tier's worker, off the cache mutex
    // the caller holds; the pinned snapshot serves loads until the
    // commit. Failures and commit-time sweep victims come back through
    // the drop callback. Spill accounting fires in the spilled callback
    // at commit on both paths.
    return cold_tier_.SpillAsync(node, meta.canon_key, snapshot, meta);
  }
  std::vector<const RGNode*> dropped;
  bool ok = cold_tier_.Spill(node, meta.canon_key, *snapshot, meta, &dropped);
  for (const RGNode* d : dropped) {
    OnColdEntryDropped(const_cast<RGNode*>(d));
  }
  return ok;
}

void Recycler::OnColdEntryDropped(RGNode* node) {
  // All kCold transitions are serialized by cache_mu_ (held here), so
  // the state cannot flip between the check and the store.
  counters_.cold_evictions.fetch_add(1);
  if (node->mat_state.load() != MatState::kCold) return;  // hot copy stays
  interval_index_.Remove(node);
  SetMatState(node, MatState::kNone, /*clear_cached=*/true);
}

void Recycler::HandleHotEviction(RGNode* victim) {
  UpdateHrOnEvict(victim);
  counters_.evictions.fetch_add(1);
  if (MaybeSpill(victim)) {
    // The result survives below the hot tier: keep the interval-index
    // registrations (cold slices still serve stitch lookups) and flip
    // to kCold. The cached TablePtr itself is released.
    SetMatState(victim, MatState::kCold, /*clear_cached=*/true);
  } else {
    interval_index_.Remove(victim);
    SetMatState(victim, MatState::kNone, /*clear_cached=*/true);
  }
}

TablePtr Recycler::SnapshotOrReadmit(RGNode* node, PreparedQuery* prepared,
                                     bool* from_cold) {
  *from_cold = prepared->cold_loaded_.count(node) > 0;
  {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    MatState ms = node->mat_state.load();
    if (ms == MatState::kCached) return node->cached;
    if (ms != MatState::kCold) return nullptr;
  }
  TablePtr loaded = ReadmitCold(node);
  if (loaded != nullptr) {
    prepared->cold_loaded_.insert(node);
    *from_cold = true;
  }
  return loaded;
}

TablePtr Recycler::ReadmitCold(RGNode* node) {
  TablePtr loaded;
  Status st = cold_tier_.Load(node, &loaded);
  if (st.code() == StatusCode::kNotFound) {
    // Swept away between the state check and the load: a plain miss.
    return nullptr;
  }
  if (!st.ok()) {
    // Corrupt/truncated file: recoverable — drop the dead entry so no
    // later query retries it, and re-execute this one.
    counters_.cold_load_errors.fetch_add(1);
    std::shared_lock<std::shared_mutex> glock(graph_.mutex());
    std::lock_guard<std::mutex> clock(cache_mu_);
    cold_tier_.Remove(node);
    if (node->mat_state.load() == MatState::kCold) {
      interval_index_.Remove(node);
      SetMatState(node, MatState::kNone, /*clear_cached=*/true);
    }
    return nullptr;
  }
  TablePtr named = loaded->RenameColumns(node->output_names);

  // Promote to the hot tier when admission allows; a rejected promotion
  // still serves the loaded snapshot (one-shot) and leaves the entry
  // cold for the next hit.
  std::shared_lock<std::shared_mutex> glock(graph_.mutex());
  graph_.FoldAging(node);
  bool admitted = false;
  {
    std::lock_guard<std::mutex> clock(cache_mu_);
    MatState ms = node->mat_state.load();
    if (ms == MatState::kCached) {
      // Another stream promoted it while we were loading.
      RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
      std::lock_guard<std::mutex> slock(shard.mu);
      return node->cached != nullptr ? node->cached : named;
    }
    if (ms != MatState::kCold) return named;  // purged meanwhile
    const int64_t bytes = std::max<int64_t>(1, named->ByteSize());
    node->cached_bytes.store(bytes);
    node->size_bytes.store(static_cast<double>(bytes));
    node->has_size.store(true);
    std::vector<RGNode*> evicted;
    admitted = cache_.Admit(node, BenefitOf(node), &evicted);
    for (RGNode* v : evicted) HandleHotEviction(v);
    if (admitted) {
      RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
      {
        std::lock_guard<std::mutex> slock(shard.mu);
        node->cached = named;
        node->mat_state.store(MatState::kCached);
      }
      shard.cv.notify_all();
      RegisterIntervals(node);  // idempotent for retained registrations
    }
  }
  if (admitted) {
    UpdateHrOnMaterialize(node);
    counters_.cold_readmissions.fetch_add(1);
  }
  return named;
}

TablePtr Recycler::SnapshotOrLoadSlice(RGNode* node, const RangeSpec* spec,
                                       PreparedQuery* prepared,
                                       bool* from_cold) {
  {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    if (node->mat_state.load() == MatState::kCached) {
      *from_cold = prepared->cold_loaded_.count(node) > 0;
      return node->cached;
    }
  }
  if (spec != nullptr && node->mat_state.load() == MatState::kCold) {
    // Filtered slice: run the selection on the encoded spill image and
    // materialize only in-range rows. The spec's mapped_column is in
    // graph space, as are the node's output names; a candidate that
    // renames or computes the column falls through to a full load.
    int idx = -1;
    for (size_t i = 0; i < node->output_names.size(); ++i) {
      if (node->output_names[i] == spec->mapped_column) {
        idx = static_cast<int>(i);
        break;
      }
    }
    if (idx >= 0) {
      TablePtr sliced;
      if (cold_tier_.LoadSlice(node, idx, spec->range, &sliced).ok()) {
        prepared->cold_loaded_.insert(node);
        *from_cold = true;
        counters_.cold_slice_loads.fetch_add(1);
        return sliced->RenameColumns(node->output_names);
      }
    }
  }
  return SnapshotOrReadmit(node, prepared, from_cold);
}

bool Recycler::TryAdoptOrphan(RGNode* node) {
  // Caller holds the exclusive graph lock, which excludes every spill /
  // sweep path (those hold it shared), so the adopted entry cannot be
  // evicted mid-adoption.
  if (!cold_tier_.has_orphans() || !CacheableType(node->type)) return false;
  if (node->mat_state.load() != MatState::kNone) return false;
  SpillFileMeta meta;
  int64_t bytes = 0;
  if (!cold_tier_.AdoptOrphan(CanonicalSubtreeKey(node), node, &meta,
                              &bytes)) {
    return false;
  }
  if (meta.column_types != node->output_types) {
    // Schema drift (same structure, different types): never serve it.
    cold_tier_.Remove(node);
    return false;
  }
  // Re-anchor v3 row stamps against the live catalog: replace-epochs are
  // process-local, so an image is adoptable iff every row mark still fits
  // inside the current table (appends since the spill leave it usable as
  // an as-of prefix; a shrunk or missing base does not). v1/v2 images
  // have no stamps and adopt unstamped (same-base-data contract).
  std::map<std::string, TableStamp> stamps;
  for (const auto& [tname, rows] : meta.table_versions) {
    TableSnapshot snap = catalog_->Snapshot(tname);
    if (snap.table == nullptr || rows > snap.rows) {
      cold_tier_.Remove(node);
      return false;
    }
    stamps[tname] = TableStamp{snap.epoch, rows};
  }
  node->bcost_ms.store(meta.bcost_ms);
  node->has_bcost.store(true);
  node->rows.store(meta.num_rows);
  node->size_bytes.store(static_cast<double>(std::max<int64_t>(1, bytes)));
  node->has_size.store(true);
  node->h.store(meta.h);
  node->h_epoch.store(graph_.epoch());
  if (!stamps.empty()) {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    node->stamps = std::move(stamps);
  }
  SetMatState(node, MatState::kCold);
  {
    std::lock_guard<std::mutex> clock(cache_mu_);
    RegisterIntervals(node);
  }
  counters_.cold_adoptions.fetch_add(1);
  return true;
}

int64_t Recycler::CheckpointColdTier() {
  if (!cold_tier_.enabled()) return 0;
  int64_t written = 0;
  {
    std::shared_lock<std::shared_mutex> glock(graph_.mutex());
    std::lock_guard<std::mutex> clock(cache_mu_);
    for (RGNode* node : cache_.Entries()) {
      if (cold_tier_.Has(node)) continue;
      if (BenefitOf(node) < config_.spill_min_benefit) continue;
      if (MaybeSpill(node)) ++written;
    }
  }
  // The drain barrier runs OUTSIDE the graph/cache locks: the worker's
  // drop callback acquires them to demote sweep victims, so draining
  // under them would deadlock. After this returns every checkpointed
  // entry is on disk and in the manifest.
  cold_tier_.Drain();
  return written;
}

Status Recycler::RefreshFleet(int64_t* new_peer_entries) {
  if (new_peer_entries != nullptr) *new_peer_entries = 0;
  if (!cold_tier_.enabled()) return Status::OK();
  std::vector<const RGNode*> dropped;
  int64_t peers = 0, takeovers = 0;
  Status st = cold_tier_.RefreshPeers(&dropped, &peers, &takeovers);
  if (!dropped.empty()) {
    // Fleet purges retired entries of live nodes: demote them exactly
    // like a sweep drop.
    std::shared_lock<std::shared_mutex> glock(graph_.mutex());
    std::lock_guard<std::mutex> clock(cache_mu_);
    for (const RGNode* d : dropped) OnColdEntryDropped(const_cast<RGNode*>(d));
  }
  counters_.fleet_refreshes.fetch_add(1);
  counters_.fleet_peer_entries.fetch_add(peers);
  counters_.fleet_lease_takeovers.fetch_add(takeovers);
  if (new_peer_entries != nullptr) *new_peer_entries = peers;
  return st;
}

// ---------------------------------------------------------------------------
// Benefit metric (Eq. 1 and 2)
// ---------------------------------------------------------------------------

double Recycler::TrueCost(const RGNode* node) const {
  // DFS to the direct materialized descendants; their base cost is
  // subtracted because the recycler would reuse them (Eq. 2).
  double dmd_cost = 0;
  std::unordered_set<const RGNode*> visited;
  std::vector<const RGNode*> stack(node->children.begin(),
                                   node->children.end());
  while (!stack.empty()) {
    const RGNode* n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    if (n->mat_state.load() == MatState::kCached) {
      dmd_cost += n->bcost_ms.load();
      continue;  // stop at the first materialized node on each path
    }
    for (const RGNode* c : n->children) stack.push_back(c);
  }
  return std::max(0.0, node->bcost_ms.load() - dmd_cost);
}

double Recycler::EstimatedSize(const RGNode* node) const {
  if (node->has_size.load()) return node->size_bytes.load();
  int64_t rows = node->rows.load();
  if (rows >= 0) {
    return std::max(1.0, static_cast<double>(rows) *
                             EstRowWidth(node->output_types));
  }
  return 1 << 20;  // unknown: assume 1MB
}

double Recycler::BenefitOf(const RGNode* node) const {
  double h = graph_.AgedH(node);
  if (h <= 0) h = config_.speculation_h;
  double size = std::max(1.0, EstimatedSize(node));
  return TrueCost(node) * h / size;
}

// ---------------------------------------------------------------------------
// Matching and insertion (§III-A, §III-B)
// ---------------------------------------------------------------------------

std::string Recycler::LeafKey(const PlanNode& node) {
  if (node.type() == OpType::kScan) return "t:" + node.table_name();
  if (node.type() == OpType::kFunctionScan) {
    return "f:" + node.ParamFingerprint(nullptr);
  }
  return "";
}

RGNode* Recycler::MatchOne(const PlanNode& node,
                           const std::vector<RGNode*>& child_g,
                           const NameMap& mapping) const {
  if (child_g.empty()) {
    // Leaf: probe the global leaf hash table (Algorithm 1 lines 1-5).
    for (RGNode* cand : graph_.LeafCandidates(LeafKey(node), node.HashKey())) {
      if (cand->type == node.type() &&
          cand->param_fp == node.ParamFingerprint(nullptr)) {
        return cand;
      }
    }
    return nullptr;
  }
  // Non-leaf: candidates are the parents of the first matched child
  // (Algorithm 1 lines 8-13), pre-filtered by hash key and signature.
  uint64_t sig = MappedSignature(node, mapping);
  auto range = child_g[0]->parents.equal_range(node.HashKey());
  for (auto it = range.first; it != range.second; ++it) {
    RGNode* cand = it->second;
    if (cand->type != node.type()) continue;
    if (cand->signature != sig) continue;
    if (cand->children.size() != child_g.size()) continue;
    bool same_children = true;
    for (size_t i = 0; i < child_g.size(); ++i) {
      if (cand->children[i] != child_g[i]) {
        same_children = false;
        break;
      }
    }
    if (!same_children) continue;
    if (cand->param_fp != node.ParamFingerprint(&mapping)) continue;
    return cand;
  }
  return nullptr;
}

RGNode* Recycler::InsertOne(const PlanNode& node,
                            const std::vector<RGNode*>& child_g,
                            NameMap* mapping, int64_t query_id) {
  auto gnode = std::make_unique<RGNode>();
  gnode->id = graph_.NextId();
  gnode->type = node.type();
  gnode->hash_key = node.HashKey();
  gnode->signature = MappedSignature(node, *mapping);
  gnode->param_fp = node.ParamFingerprint(mapping);
  gnode->param_node = node.CloneParamsRenamed(*mapping);
  gnode->children = child_g;
  gnode->base_tables = node.base_tables();
  gnode->inserted_by = query_id;
  gnode->h_epoch = graph_.epoch();

  // Output names: new names get the "#<id>" suffix (the paper appends a
  // query-unique identifier); pass-through names keep their graph name.
  std::vector<std::string> new_names = node.NewNames();
  std::unordered_set<std::string> new_set(new_names.begin(), new_names.end());
  const Schema& schema = node.output_schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    const std::string& q = schema.field(i).name;
    std::string graph_name;
    if (new_set.count(q) > 0) {
      graph_name = q + "#" + std::to_string(gnode->id);
      (*mapping)[q] = graph_name;
    } else {
      auto it = mapping->find(q);
      graph_name = it == mapping->end() ? q : it->second;
      (*mapping)[q] = graph_name;
    }
    gnode->output_names.push_back(graph_name);
    gnode->output_types.push_back(schema.field(i).type);
  }
  return graph_.AddNode(std::move(gnode), LeafKey(node));
}

std::unique_ptr<Recycler::MNode> Recycler::MatchTree(const PlanPtr& plan) {
  // Phase 1: optimistic matching under the shared lock.
  struct Walker {
    const Recycler* self;
    std::unique_ptr<MNode> Walk(const PlanPtr& p) {
      auto m = std::make_unique<MNode>();
      m->plan = p.get();
      m->plan_ref = p;
      bool all_matched = true;
      std::vector<RGNode*> child_g;
      for (const auto& c : p->children()) {
        auto cm = Walk(c);
        if (cm->gnode == nullptr) {
          all_matched = false;
        } else {
          child_g.push_back(cm->gnode);
        }
        m->children.push_back(std::move(cm));
      }
      if (!all_matched) return m;
      // Merge child mappings.
      for (const auto& cm : m->children) {
        m->mapping.insert(cm->mapping.begin(), cm->mapping.end());
      }
      RGNode* g = self->MatchOne(*p, child_g, m->mapping);
      if (g != nullptr) {
        m->gnode = g;
        // Extend the mapping across this node's outputs (positional).
        const Schema& schema = p->output_schema();
        for (int i = 0; i < schema.num_fields(); ++i) {
          m->mapping[schema.field(i).name] = g->output_names[i];
        }
      }
      return m;
    }
  };
  std::shared_lock<std::shared_mutex> lock(graph_.mutex());
  Walker w{this};
  return w.Walk(plan);
}

void Recycler::InsertMissing(MNode* m, PreparedQuery* prepared) {
  // Phase 2 (caller holds the exclusive lock): re-validate unmatched nodes
  // (a concurrent query may have inserted them since phase 1 — the
  // backwards-validation step of the paper's OCC scheme) and insert the
  // rest.
  if (m->gnode != nullptr) return;
  std::vector<RGNode*> child_g;
  for (auto& cm : m->children) {
    InsertMissing(cm.get(), prepared);
    child_g.push_back(cm->gnode);
  }
  m->mapping.clear();
  for (const auto& cm : m->children) {
    m->mapping.insert(cm->mapping.begin(), cm->mapping.end());
  }
  RGNode* g = MatchOne(*m->plan, child_g, m->mapping);
  if (g != nullptr) {
    m->gnode = g;
    m->inserted = false;
    const Schema& schema = m->plan->output_schema();
    for (int i = 0; i < schema.num_fields(); ++i) {
      m->mapping[schema.field(i).name] = g->output_names[i];
    }
    return;
  }
  m->gnode = InsertOne(*m->plan, child_g, &m->mapping, prepared->query_id_);
  m->inserted = true;
  // Warm-up: a node inserted for the first time in this process may have
  // a spilled image from a previous one — or from a fleet peer — so
  // adopt it and the reuse rewriter below serves this very query from
  // disk.
  if (TryAdoptOrphan(m->gnode)) ++prepared->trace_.num_adoptions;
}

// ---------------------------------------------------------------------------
// Importance factor maintenance (§III-C)
// ---------------------------------------------------------------------------

void Recycler::BumpImportance(MNode* m, bool has_materialized_ancestor) {
  // Runs under at least the shared graph lock: all statistic fields are
  // atomic, so concurrent fully-matched queries bump h without ever
  // taking the exclusive lock.
  RGNode* g = m->gnode;
  g->last_access_epoch.store(graph_.epoch());
  if (!m->inserted && !has_materialized_ancestor) {
    graph_.FoldAging(g);
    AtomicAddClamped(g->h, 1.0, 0.0);
    g->match_count.fetch_add(1);
  }
  bool flag =
      has_materialized_ancestor || g->mat_state.load() == MatState::kCached;
  for (auto& c : m->children) BumpImportance(c.get(), flag);
}

void Recycler::UpdateHrChildren(RGNode* node, double delta) {
  // Algorithm 2: adjust h of all descendants down to (and including) the
  // first materialized node on each path.
  std::unordered_set<RGNode*> visited;
  std::vector<RGNode*> stack(node->children.begin(), node->children.end());
  while (!stack.empty()) {
    RGNode* n = stack.back();
    stack.pop_back();
    if (!visited.insert(n).second) continue;
    graph_.FoldAging(n);
    AtomicAddClamped(n->h, delta, 0.0);
    if (n->mat_state.load() == MatState::kCached) continue;
    for (RGNode* c : n->children) stack.push_back(c);
  }
}

void Recycler::UpdateHrOnMaterialize(RGNode* node) {
  graph_.FoldAging(node);
  UpdateHrChildren(node, -node->h.load());  // Eq. 3
}

void Recycler::UpdateHrOnEvict(RGNode* node) {
  graph_.FoldAging(node);
  UpdateHrChildren(node, +node->h.load());  // Eq. 4
}

// ---------------------------------------------------------------------------
// Reuse rewriting (+ stalls and subsumption)
// ---------------------------------------------------------------------------

Freshness Recycler::NodeFreshness(RGNode* node, const PreparedQuery* prepared,
                                  StaleWindow* window) {
  std::map<std::string, TableStamp> stamps;
  {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    stamps = node->stamps;
  }
  return CheckFreshness(stamps, node->base_tables, prepared->snapshots_,
                        window);
}

void Recycler::DropSupersededEntry(RGNode* g) {
  std::shared_lock<std::shared_mutex> glock(graph_.mutex());
  std::lock_guard<std::mutex> clock(cache_mu_);
  MatState ms = g->mat_state.load();
  if (ms != MatState::kCached && ms != MatState::kCold) return;
  // Unlike EvictNode, no Eq. 4 h-giveback and no eviction counter: the
  // entry's data lives on inside the delta rewrite that replaces it, and
  // the refreshed result is about to be re-admitted. A concurrent stream
  // re-admitting the same node in this window loses its entry — benign,
  // the next hit re-materializes.
  cache_.Remove(g);
  interval_index_.Remove(g);
  cold_tier_.Remove(g);
  SetMatState(g, MatState::kNone, /*clear_cached=*/true);
}

PlanPtr Recycler::TryDeltaRewrite(MNode* m, const PlanPtr& plan, RGNode* g,
                                  TablePtr snapshot, const StaleWindow& window,
                                  PreparedQuery* prepared) {
  if (!DeltaEligiblePlan(*plan, window.table)) return nullptr;
  const bool agg_merge = plan->type() == OpType::kAggregate;
  PlanPtr cached_scan;
  PlanPtr delta_plan =
      agg_merge
          ? BuildAggMerge(*plan, std::move(snapshot), window, &cached_scan)
          : BuildDeltaStitch(*plan, std::move(snapshot), window, &cached_scan);
  {
    std::shared_lock<std::shared_mutex> glock(graph_.mutex());
    cached_scan->set_cache_key(CanonicalSubtreeKey(g));
    // Eq. 2 credit: the cached prefix replaced the share of the node's
    // from-base-tables work proportional to the rows it covers. No extra
    // h bump — the exact match already bumped in BumpImportance.
    double frac = window.to_rows > 0
                      ? static_cast<double>(window.from_rows) /
                            static_cast<double>(window.to_rows)
                      : 1.0;
    prepared->replaced_cost_[cached_scan.get()] = g->bcost_ms.load() * frac;
  }
  // The rewrite supersedes the stale entry; dropping it to kNone lets
  // InjectStores' stitched branch claim the node, so the refreshed full
  // result re-admits at the new high-water mark (OfferResult stamps it
  // with this query's snapshots).
  DropSupersededEntry(g);
  m->stitched = true;
  m->exec_plan = delta_plan.get();
  prepared->exec_to_gnode_[delta_plan.get()] = g;
  ++prepared->trace_.num_reuses;
  ++prepared->trace_.num_delta_reuses;
  counters_.reuses.fetch_add(1);
  counters_.delta_hits.fetch_add(1);
  if (agg_merge) {
    ++prepared->trace_.num_agg_merges;
    counters_.agg_merges.fetch_add(1);
  }
  if (prepared->cold_loaded_.count(g) > 0) {
    ++prepared->trace_.num_cold_hits;
    counters_.cold_hits.fetch_add(1);
  }
  return delta_plan;
}

void Recycler::MaybeAdoptOrphanParents(RGNode* child_gnode,
                                       PreparedQuery* prepared) {
  if (!cold_tier_.has_orphans()) return;
  // Derived reuse probes this child's parents for cached results; restart
  // and fleet-peer orphans among them are invisible until some query
  // re-inserts the exact node. Adopt them here by canonical key so a
  // subsumption/stitch lookup can serve them directly.
  std::unique_lock<std::shared_mutex> glock(graph_.mutex());
  std::unordered_set<RGNode*> seen;
  for (const auto& [hk, parent] : child_gnode->parents) {
    if (seen.insert(parent).second && TryAdoptOrphan(parent)) {
      ++prepared->trace_.num_adoptions;
    }
  }
}

PlanPtr Recycler::RewriteForReuse(MNode* m, const PlanPtr& plan,
                                  PreparedQuery* prepared) {
  RGNode* g = m->gnode;

  if (CacheableType(plan->type())) {
    // Exact reuse, stalling on an in-flight materialization first. The
    // snapshot TablePtr taken under the node's mat shard mutex pins the
    // result for this query: scans emit zero-copy views of its columns,
    // and shared ownership (plan -> TablePtr -> ColumnPtr -> batch views)
    // keeps the data alive even if the recycler evicts the entry mid-scan
    // (see DESIGN.md, "Zero-copy views and result lifetime").
    //
    // The wait is race-free: every transition out of kInFlight happens
    // under the same shard mutex before the condvar is signalled, so the
    // predicate cannot flip between its evaluation and the wait.
    TablePtr snapshot;
    {
      RecyclerGraph::MatShard& shard = graph_.mat_shard(g);
      std::unique_lock<std::mutex> lock(shard.mu);
      if (g->mat_state.load() == MatState::kInFlight) {
        ++prepared->trace_.num_stalls;
        counters_.stalls.fetch_add(1);
        Stopwatch sw;
        shard.cv.wait_for(
            lock, std::chrono::milliseconds(config_.stall_timeout_ms),
            [g] { return g->mat_state.load() != MatState::kInFlight; });
        prepared->trace_.stall_ms += sw.ElapsedMs();
      }
      if (g->mat_state.load() == MatState::kCached) {
        snapshot = g->cached;
      }
    }
    bool exact_from_cold = false;
    if (snapshot == nullptr) {
      // Cold tier: a spilled result answers an exact match by lazy
      // re-admission (load from disk, promote when admittable, serve).
      snapshot = SnapshotOrReadmit(g, prepared, &exact_from_cold);
    }
    if (snapshot != nullptr) {
      // Delta maintenance: a snapshot stamped behind this query's pinned
      // base tables is not served as-is. Append-only staleness rewrites
      // into cached-prefix + delta-window (or an aggregate merge);
      // anything else drops the superseded entry and falls through to a
      // miss. kAhead (a concurrent refresh already re-admitted at a
      // newer mark than this query's older snapshot) is a miss WITHOUT
      // eviction: the entry is perfectly fresh for later queries.
      StaleWindow window;
      Freshness fresh = NodeFreshness(g, prepared, &window);
      if (fresh != Freshness::kFresh) {
        if (fresh == Freshness::kAppendStale &&
            config_.enable_delta_maintenance && !window.table.empty()) {
          PlanPtr delta = TryDeltaRewrite(m, plan, g, std::move(snapshot),
                                          window, prepared);
          if (delta != nullptr) return delta;
        }
        if (fresh != Freshness::kAhead) {
          DropSupersededEntry(g);
          counters_.invalidations.fetch_add(1);
        }
        snapshot = nullptr;
        exact_from_cold = false;
      }
    }
    if (snapshot != nullptr) {
      PlanPtr cs =
          PlanNode::CachedScan(snapshot, plan->output_schema().Names());
      {
        // The canonical subtree key walks graph structure (children).
        std::shared_lock<std::shared_mutex> glock(graph_.mutex());
        cs->set_cache_key(CanonicalSubtreeKey(g));
      }
      prepared->replaced_cost_[cs.get()] = g->bcost_ms.load();
      m->replaced = true;
      ++prepared->trace_.num_reuses;
      counters_.reuses.fetch_add(1);
      if (exact_from_cold) {
        ++prepared->trace_.num_cold_hits;
        counters_.cold_hits.fetch_add(1);
      }
      if (config_.cache_policy == CachePolicy::kLru) {
        std::lock_guard<std::mutex> clock(cache_mu_);
        cache_.TouchForLru(g);
      }
      return cs;
    }

    // Derived reuse: only consulted when exact matching failed to
    // produce a cached result. Both paths need the single shared child's
    // graph node; each is gated by its own config flag.
    if ((config_.enable_subsumption || config_.enable_partial_reuse) &&
        m->children.size() == 1 && m->children[0]->gnode != nullptr) {
      RGNode* child_gnode = m->children[0]->gnode;
      // Restart orphans among this child's parents become directly
      // servable subsumption/stitch candidates (adoption by canonical
      // key), instead of waiting for an exact re-insertion.
      MaybeAdoptOrphanParents(child_gnode, prepared);

      // Single-superset subsumption (§IV-A). Candidate parents are
      // collected under the shared lock; their snapshots are taken
      // outside it because a kCold candidate re-admits from disk, and
      // promotion itself acquires the graph lock. The raw pointers stay
      // valid: truncation requires a quiescent point, and this query is
      // inside its Prepare window.
      if (config_.enable_subsumption) {
        std::vector<RGNode*> hot_cands;
        std::vector<RGNode*> cold_cands;
        {
          std::shared_lock<std::shared_mutex> glock(graph_.mutex());
          std::unordered_set<RGNode*> seen;
          for (const auto& [hk, parent] : child_gnode->parents) {
            if (parent == g || !seen.insert(parent).second) continue;
            MatState ms = parent->mat_state.load();
            if (ms == MatState::kCached) hot_cands.push_back(parent);
            if (ms == MatState::kCold) cold_cands.push_back(parent);
          }
        }
        // Hot candidates first: cold ones cost a disk load just to probe
        // (TrySubsumption needs the table), so they are only consulted
        // when no in-memory candidate derives. A failed cold probe still
        // leaves the loaded result promoted for future queries.
        hot_cands.insert(hot_cands.end(), cold_cands.begin(),
                         cold_cands.end());
        // When the query is a range selection, a cold candidate loads as
        // a filtered slice: the selection runs on the encoded image and
        // only in-range rows materialize. Sound because the subsumption
        // compensation either already implies the range (shared
        // conjunct) or re-applies it (residual).
        std::vector<RangeSpec> sub_specs;
        if (plan->type() == OpType::kSelect) {
          sub_specs =
              ExtractRangeSpecs(plan->predicate(), &m->children[0]->mapping);
        }
        const RangeSpec* sub_spec =
            sub_specs.empty() ? nullptr : &sub_specs[0];
        SubsumptionPlan derived;
        RGNode* subsumer = nullptr;
        bool subsumer_from_cold = false;
        for (RGNode* parent : hot_cands) {
          // A stale candidate never derives: its result may lack
          // appended rows the query's pinned snapshot contains.
          if (NodeFreshness(parent, prepared, nullptr) != Freshness::kFresh) {
            continue;
          }
          bool from_cold = false;
          TablePtr cached =
              SnapshotOrLoadSlice(parent, sub_spec, prepared, &from_cold);
          if (cached == nullptr) continue;
          derived = TrySubsumption(*m->plan, m->children[0]->mapping,
                                   *parent, cached);
          if (derived.plan != nullptr) {
            subsumer = parent;
            subsumer_from_cold = from_cold;
            break;
          }
        }
        if (derived.plan != nullptr) {
          {
            // Exclusive: the subsumption edge list is graph structure.
            std::unique_lock<std::shared_mutex> glock(graph_.mutex());
            graph_.FoldAging(subsumer);
            AtomicAddClamped(subsumer->h, 1.0, 0.0);  // subsumption reference
            bool have_edge = false;
            for (RGNode* s : subsumer->subsumes) have_edge |= (s == g);
            if (!have_edge) subsumer->subsumes.push_back(g);
            derived.cached_scan->set_cache_key(CanonicalSubtreeKey(subsumer));
            prepared->replaced_cost_[derived.cached_scan.get()] =
                subsumer->bcost_ms.load();
          }
          m->replaced = true;
          ++prepared->trace_.num_reuses;
          ++prepared->trace_.num_subsumption_reuses;
          counters_.reuses.fetch_add(1);
          counters_.subsumption_reuses.fetch_add(1);
          if (subsumer_from_cold) {
            ++prepared->trace_.num_cold_hits;
            counters_.cold_hits.fetch_add(1);
          }
          return derived.plan;
        }
      }

      // Partial reuse (range stitching): no single cached result covers
      // the query, but overlapping cached range slices over the same
      // child may cover parts of it. Answer from their union plus
      // compensated delta scans for the remainder; credit contributors
      // proportionally to the share of the interval they serve.
      //
      // Candidate slices come from the interval index (which retains
      // cold entries: a spilled slice still stitches); their snapshots
      // are taken without the graph lock because kCold candidates
      // re-admit from disk and promotion acquires it. Pointers stay
      // valid for the Prepare window (truncation needs quiescence).
      if (config_.enable_partial_reuse && plan->type() == OpType::kSelect) {
        const NameMap& mapping = m->children[0]->mapping;
        std::vector<RangeSpec> specs =
            ExtractRangeSpecs(plan->predicate(), &mapping);
        std::vector<std::vector<IntervalIndex::Entry>> entries_per_spec(
            specs.size());
        bool any_entries = false;
        if (!specs.empty()) {
          std::lock_guard<std::mutex> clock(cache_mu_);
          for (size_t si = 0; si < specs.size(); ++si) {
            entries_per_spec[si] = interval_index_.Overlapping(
                child_gnode->id, specs[si].mapped_column, specs[si].range);
            any_entries = any_entries || !entries_per_spec[si].empty();
          }
        }
        if (any_entries) {
          // Delta scans prefer the child's own result — from either
          // tier — over re-executing the child subtree (stitching must
          // not preempt a reuse the plain miss path would have gotten).
          PlanPtr delta_child = plan->children()[0];
          bool delta_child_cached = false;
          bool delta_child_from_cold = false;
          if (NodeFreshness(child_gnode, prepared, nullptr) ==
              Freshness::kFresh) {
            TablePtr child_snap =
                SnapshotOrReadmit(child_gnode, prepared, &delta_child_from_cold);
            if (child_snap != nullptr) {
              delta_child = PlanNode::CachedScan(
                  std::move(child_snap),
                  plan->children()[0]->output_schema().Names());
              delta_child_cached = true;
            }
          }
          PartialPlan stitched;
          for (size_t si = 0; si < specs.size(); ++si) {
            std::vector<IntervalCandidate> cands;
            for (IntervalIndex::Entry& e : entries_per_spec[si]) {
              if (e.node == g) continue;  // exact reuse handled above
              // Stale slices never stitch (appended rows missing); cold
              // slices load filtered through the query's own interval
              // (rows outside it are clipped out by the stitch anyway).
              if (NodeFreshness(e.node, prepared, nullptr) !=
                  Freshness::kFresh) {
                continue;
              }
              bool from_cold = false;
              TablePtr cached =
                  SnapshotOrLoadSlice(e.node, &specs[si], prepared, &from_cold);
              if (cached == nullptr) continue;
              cands.push_back({e.node, std::move(cached), e.range,
                               std::move(e.other_fps)});
            }
            if (cands.empty()) continue;
            PartialPlan attempt = TryPartialStitch(*plan, mapping,
                                                   delta_child, specs[si],
                                                   cands);
            if (attempt.plan != nullptr &&
                attempt.covered_fraction > stitched.covered_fraction) {
              stitched = std::move(attempt);
            }
          }
          int stitch_cold_hits = 0;
          if (stitched.plan != nullptr &&
              stitched.covered_fraction >= config_.partial_min_cover) {
            std::shared_lock<std::shared_mutex> glock(graph_.mutex());
            for (const PartialPiece& piece : stitched.reuse_pieces) {
              RGNode* src = const_cast<RGNode*>(piece.source);
              graph_.FoldAging(src);
              AtomicAddClamped(src->h, piece.fraction, 0.0);
              piece.cached_scan->set_cache_key(CanonicalSubtreeKey(src));
              // Eq. 2 bookkeeping: the slice replaced `fraction` of the
              // contributor's from-base-tables work.
              prepared->replaced_cost_[piece.cached_scan.get()] =
                  src->bcost_ms.load() * piece.fraction;
              if (prepared->cold_loaded_.count(piece.source) > 0) {
                ++stitch_cold_hits;
              }
            }
            if (delta_child_cached && stitched.num_delta_pieces > 0) {
              // The single delta branch replaced the child's base cost
              // exactly once (Eq. 2).
              graph_.FoldAging(child_gnode);
              AtomicAddClamped(child_gnode->h, 1.0, 0.0);
              delta_child->set_cache_key(CanonicalSubtreeKey(child_gnode));
              prepared->replaced_cost_[delta_child.get()] =
                  child_gnode->bcost_ms.load();
              if (delta_child_from_cold) ++stitch_cold_hits;
            }
          } else {
            stitched = PartialPlan{};
          }
          if (stitched.plan != nullptr) {
            m->stitched = true;
            m->exec_plan = stitched.plan.get();
            prepared->exec_to_gnode_[stitched.plan.get()] = g;
            ++prepared->trace_.num_reuses;
            ++prepared->trace_.num_partial_reuses;
            counters_.reuses.fetch_add(1);
            counters_.partial_reuses.fetch_add(1);
            if (delta_child_cached && stitched.num_delta_pieces > 0) {
              ++prepared->trace_.num_reuses;  // the child reuse in the deltas
              counters_.reuses.fetch_add(1);
            }
            if (stitch_cold_hits > 0) {
              prepared->trace_.num_cold_hits += stitch_cold_hits;
              counters_.cold_hits.fetch_add(stitch_cold_hits);
            }
            return stitched.plan;
          }
        }
      }
    }
  }

  // No reuse here: recurse into children.
  bool changed = false;
  std::vector<PlanPtr> new_children;
  for (size_t i = 0; i < m->children.size(); ++i) {
    PlanPtr nc =
        RewriteForReuse(m->children[i].get(), plan->children()[i], prepared);
    changed = changed || nc != plan->children()[i];
    new_children.push_back(std::move(nc));
  }
  PlanPtr out = changed ? plan->WithChildren(std::move(new_children)) : plan;
  m->exec_plan = out.get();
  prepared->exec_to_gnode_[out.get()] = g;
  return out;
}

// ---------------------------------------------------------------------------
// Store injection (admission decisions before execution)
// ---------------------------------------------------------------------------

StoreRequest Recycler::MakeStoreRequest(RGNode* gnode, StoreMode mode,
                                        PreparedQuery* prepared) {
  StoreRequest req;
  req.mode = mode;
  req.token = gnode;
  req.buffer_cap_bytes = config_.speculation_buffer_cap;
  req.keep_going = [this](void* token, const SpeculationEstimate& est) {
    return SpeculationKeepGoing(static_cast<RGNode*>(token), est);
  };
  req.on_complete = [this, prepared](void* token, TablePtr result,
                                     double subtree_ms) {
    RGNode* node = static_cast<RGNode*>(token);
    if (result != nullptr) {
      OfferResult(node, std::move(result), subtree_ms, prepared);
    } else {
      ++prepared->trace_.num_spec_aborted;
      counters_.spec_aborts.fetch_add(1);
      SetMatState(node, MatState::kNone);
    }
  };
  return req;
}

bool Recycler::MaybeInjectStore(RGNode* g, const PlanNode* exec_plan,
                                bool history_ok, bool speculative_ok,
                                PreparedQuery* prepared) {
  if (exec_plan == nullptr || g->mat_state.load() != MatState::kNone ||
      prepared->stores_.count(exec_plan) > 0) {
    return false;
  }
  if (g->has_bcost.load()) {
    // History-based decision (§V HIST): the result has been computed
    // before, so cost and size are known; materialize when the benefit
    // metric admits it.
    if (!history_ok || graph_.AgedH(g) < 1.0) return false;
    double benefit = BenefitOf(g);
    int64_t size = static_cast<int64_t>(EstimatedSize(g));
    bool would_admit;
    {
      std::lock_guard<std::mutex> clock(cache_mu_);
      would_admit = cache_.WouldAdmit(benefit, size);
    }
    if (would_admit && TryClaimInFlight(g)) {
      prepared->stores_[exec_plan] =
          MakeStoreRequest(g, StoreMode::kMaterialize, prepared);
      return true;
    }
    return false;
  }
  // Speculation (§III-D): never executed before; buffer and decide at
  // run time.
  if (speculative_ok && TryClaimInFlight(g)) {
    prepared->stores_[exec_plan] =
        MakeStoreRequest(g, StoreMode::kSpeculative, prepared);
    return true;
  }
  return false;
}

void Recycler::InjectStores(MNode* m, PreparedQuery* prepared,
                            bool in_store_chain) {
  // Caller holds the *shared* graph lock: the decision reads structure
  // and atomic stats, consults the cache under cache_mu_, and claims the
  // node by CAS — concurrent streams injecting stores for disjoint nodes
  // proceed in parallel, and two streams racing for the same node are
  // arbitrated by TryClaimInFlight (the loser executes without storing).
  if (m->replaced) return;  // subtree not executed
  RGNode* g = m->gnode;
  const bool spec_mode = config_.mode == RecyclerMode::kSpeculation ||
                         config_.mode == RecyclerMode::kProactive;
  bool stored_here = false;

  if (m->stitched) {
    // Stitched-admission policy: the union of cached slices + delta scans
    // produces the node's FULL result, so it is a store candidate — caching
    // it widens the indexed coverage and turns future overlapping queries
    // into full covers. Every stitched node is a speculation target (its
    // overlap history is exactly what predicts the next overlapping
    // query). Children are not walked: delta branches may share plan
    // nodes, and a shared store target would double-offer its result.
    MaybeInjectStore(g, m->exec_plan, /*history_ok=*/!in_store_chain,
                     /*speculative_ok=*/spec_mode, prepared);
    return;
  }

  if (CacheableType(m->plan->type())) {
    // Within a chain only the most beneficial node is stored
    // (in_store_chain gates history stores below a chosen store);
    // speculation targets expected expensive/small operators and the
    // final result.
    const bool is_root = m == prepared->matched_.get();
    stored_here = MaybeInjectStore(
        g, m->exec_plan, /*history_ok=*/!in_store_chain,
        /*speculative_ok=*/
        spec_mode && (SpeculationTargetType(m->plan->type()) || is_root),
        prepared);
  }

  for (auto& c : m->children) {
    // History stores below an existing history store are suppressed
    // ("the result with the highest benefit of every subtree"); stores are
    // injected top-down so the ancestor wins. Speculative stores do not
    // suppress descendants (the paper materializes intermediates and the
    // final result of the same query).
    bool chain = in_store_chain ||
                 (stored_here && prepared->stores_[m->exec_plan].mode ==
                                     StoreMode::kMaterialize);
    InjectStores(c.get(), prepared, chain);
  }
}

// ---------------------------------------------------------------------------
// Store callbacks
// ---------------------------------------------------------------------------

void Recycler::SetMatState(RGNode* node, MatState state, bool clear_cached) {
  RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (clear_cached) {
      node->cached = nullptr;
      // The stamps describe the materialized result, which outlives the
      // hot TablePtr across the cold tier: only the final drop to kNone
      // clears them (a kCold demotion keeps its as-of identity).
      if (state == MatState::kNone) node->stamps.clear();
    }
    node->mat_state.store(state);
  }
  shard.cv.notify_all();
}

bool Recycler::TryClaimInFlight(RGNode* node) {
  MatState expected = MatState::kNone;
  return node->mat_state.compare_exchange_strong(expected,
                                                 MatState::kInFlight);
}

bool Recycler::SpeculationKeepGoing(RGNode* node,
                                    const SpeculationEstimate& est) {
  double h;
  {
    std::shared_lock<std::shared_mutex> lock(graph_.mutex());
    h = graph_.AgedH(node);
  }
  if (h <= 0) h = config_.speculation_h;
  double size = std::max(1.0, est.est_size_bytes);
  double benefit = est.est_cost_ms * h / size;
  std::lock_guard<std::mutex> clock(cache_mu_);
  return cache_.WouldAdmit(benefit, static_cast<int64_t>(size));
}

void Recycler::OfferResult(RGNode* node, TablePtr result, double subtree_ms,
                           PreparedQuery* prepared) {
  // The shared graph lock pins the structure (TrueCost/UpdateHr walk
  // children); all statistic writes are atomic, the cached TablePtr is
  // published under the node's mat shard mutex, and admission runs under
  // cache_mu_. Concurrent offers from other streams only serialize on the
  // admission decision itself, never on matching.
  std::shared_lock<std::shared_mutex> lock(graph_.mutex());
  graph_.FoldAging(node);
  node->rows.store(result->num_rows());
  if (!node->has_bcost.load()) {
    node->bcost_ms.store(subtree_ms);
    node->has_bcost.store(true);
  }
  // Store the result under graph-space column names.
  TablePtr graph_table = result->RenameColumns(node->output_names);
  const int64_t bytes = std::max<int64_t>(1, graph_table->ByteSize());
  {
    RecyclerGraph::MatShard& shard = graph_.mat_shard(node);
    std::lock_guard<std::mutex> slock(shard.mu);
    node->cached = std::move(graph_table);
    // Stamp the result with the as-of versions it was computed from
    // (delta maintenance). A dependency without a pinned snapshot leaves
    // the entry unstamped; appends then hard-invalidate it.
    node->stamps.clear();
    for (const std::string& t : node->base_tables) {
      auto it = prepared->snapshots_.find(t);
      if (it == prepared->snapshots_.end()) {
        node->stamps.clear();
        break;
      }
      node->stamps[t] = TableStamp{it->second.epoch, it->second.rows};
    }
  }
  node->cached_bytes.store(bytes);
  node->size_bytes.store(static_cast<double>(bytes));
  node->has_size.store(true);

  double benefit = BenefitOf(node);
  std::vector<RGNode*> evicted;
  bool admitted;
  {
    // One cache_mu_ critical section covers the admission decision, the
    // victims' transitions, and this node's kCached publication: a
    // concurrent Admit can therefore never evict this node between its
    // admission and its state flip, and every node a replacement decision
    // sees is in a settled state.
    std::lock_guard<std::mutex> clock(cache_mu_);
    admitted = cache_.Admit(node, benefit, &evicted);
    for (RGNode* v : evicted) HandleHotEviction(v);
    if (admitted) {
      SetMatState(node, MatState::kCached);
      RegisterIntervals(node);
    } else {
      SetMatState(node, MatState::kNone, /*clear_cached=*/true);
    }
  }
  if (admitted) {
    UpdateHrOnMaterialize(node);
    counters_.materializations.fetch_add(1);
    ++prepared->trace_.num_materialized;
  }
}

// ---------------------------------------------------------------------------
// Eviction / invalidation
// ---------------------------------------------------------------------------

void Recycler::EvictNode(RGNode* node, bool update_h) {
  // Caller holds at least the shared graph lock and cache_mu_. Dropping
  // node->cached (inside SetMatState's shard critical section) only
  // releases the graph's reference: concurrent streams that already took
  // a snapshot keep the table (and any column views into it) alive until
  // their scans drain. This is the invalidation path, so the node's
  // spill file (if any) is deleted too — stale cold results must never
  // be re-admitted.
  cache_.Remove(node);
  interval_index_.Remove(node);
  cold_tier_.Remove(node);
  if (update_h) UpdateHrOnEvict(node);
  SetMatState(node, MatState::kNone, /*clear_cached=*/true);
  counters_.evictions.fetch_add(1);
}

void Recycler::RegisterIntervals(RGNode* node) {
  if (node->type != OpType::kSelect || node->children.size() != 1 ||
      node->param_node == nullptr) {
    return;
  }
  // param_node lives in graph name space, so the specs index directly.
  for (RangeSpec& spec :
       ExtractRangeSpecs(node->param_node->predicate(), nullptr)) {
    interval_index_.Insert(node->children[0]->id, spec.mapped_column,
                           {node, spec.range, std::move(spec.other_fps)});
  }
}

int64_t Recycler::interval_index_entries() const {
  std::lock_guard<std::mutex> clock(cache_mu_);
  return interval_index_.num_entries();
}

void Recycler::InvalidateTable(const std::string& table) {
  // Shared lock: the node list is only iterated, never changed; evictions
  // happen under cache_mu_ + the shard mutexes, so concurrent streams can
  // keep matching (and draining snapshots they already hold) while an
  // update commit sweeps the cache.
  std::shared_lock<std::shared_mutex> lock(graph_.mutex());
  std::lock_guard<std::mutex> clock(cache_mu_);
  for (const auto& n : graph_.nodes()) {
    MatState ms = n->mat_state.load();
    if ((ms == MatState::kCached || ms == MatState::kCold) &&
        n->base_tables.count(table) > 0) {
      EvictNode(n.get(), /*update_h=*/ms == MatState::kCached);
      counters_.invalidations.fetch_add(1);
    }
  }
  // Orphan spill files from a previous process also derive from the
  // table; purge them so a later adoption cannot resurrect stale data.
  std::vector<const RGNode*> dropped;
  cold_tier_.PurgeTable(table, &dropped);
  for (const RGNode* d : dropped) {
    // Live entries over the table were already evicted above; anything
    // the purge still reports is demoted defensively.
    OnColdEntryDropped(const_cast<RGNode*>(d));
  }
}

void Recycler::OnTableAppended(const std::string& table) {
  // Same locking shape as InvalidateTable, but append-only growth is
  // survivable: a materialized entry is KEPT when delta maintenance can
  // refresh it — stamped at the current epoch with a mark not past the
  // table, and of a delta-eligible shape (single-table chain with an
  // optionally decomposable aggregate root). Everything else — unstamped
  // legacy entries, joins, non-decomposable roots — hard-invalidates.
  TableSnapshot snap = catalog_->Snapshot(table);
  std::shared_lock<std::shared_mutex> lock(graph_.mutex());
  std::lock_guard<std::mutex> clock(cache_mu_);
  for (const auto& n : graph_.nodes()) {
    MatState ms = n->mat_state.load();
    if ((ms != MatState::kCached && ms != MatState::kCold) ||
        n->base_tables.count(table) == 0) {
      continue;
    }
    bool keep = false;
    if (config_.enable_delta_maintenance && snap.table != nullptr &&
        DeltaEligibleNode(*n, table)) {
      RecyclerGraph::MatShard& shard = graph_.mat_shard(n.get());
      std::lock_guard<std::mutex> slock(shard.mu);
      auto it = n->stamps.find(table);
      keep = it != n->stamps.end() && it->second.epoch == snap.epoch &&
             it->second.rows <= snap.rows;
    }
    if (!keep) {
      EvictNode(n.get(), /*update_h=*/ms == MatState::kCached);
      counters_.invalidations.fetch_add(1);
    }
  }
  // Orphan images from a previous process: v3 files carry row marks and
  // re-anchor on adoption (TryAdoptOrphan drops any whose mark exceeds
  // the live table), so they survive appends. Unversioned (v1/v2) files
  // are indistinguishable from stale — purge those.
  std::vector<const RGNode*> dropped;
  cold_tier_.PurgeUnversionedOrphans(table, &dropped);
  for (const RGNode* d : dropped) {
    OnColdEntryDropped(const_cast<RGNode*>(d));
  }
}

int64_t Recycler::TruncateGraph(int64_t idle_epochs) {
  std::unique_lock<std::shared_mutex> lock(graph_.mutex());
  return graph_.Truncate(idle_epochs);
}

void Recycler::FlushCache() {
  // A flush is memory-pressure relief, not invalidation: with the cold
  // tier enabled, still-beneficial results are demoted to disk instead
  // of discarded (use InvalidateTable/ReplaceTable to drop stale data).
  {
    std::shared_lock<std::shared_mutex> lock(graph_.mutex());
    std::lock_guard<std::mutex> clock(cache_mu_);
    std::vector<RGNode*> evicted;
    cache_.Flush(&evicted);
    for (RGNode* n : evicted) HandleHotEviction(n);
  }
  // Flush promises the demotions are durable on return; the drain
  // barrier runs outside the graph/cache locks (the async worker's drop
  // callback acquires them).
  cold_tier_.Drain();
}

// ---------------------------------------------------------------------------
// Prepare / OnComplete / Execute
// ---------------------------------------------------------------------------

std::unique_ptr<PreparedQuery> Recycler::Prepare(PlanPtr plan) {
  auto prepared = std::make_unique<PreparedQuery>();
  prepared->query_id_ = next_query_id_.fetch_add(1);
  prepared->trace_.query_id = prepared->query_id_;
  prepared->trace_.template_hash = plan->template_hash();
  if (prepared->trace_.template_hash != 0) {
    std::lock_guard<std::mutex> lock(template_mu_);
    prepared->trace_.template_prior_runs =
        template_stats_[prepared->trace_.template_hash].executions;
  }
  plan->Bind(*catalog_);
  // Identity of the statement as submitted (post-canonicalization,
  // pre-rewrite): trace/golden tooling keys replay diffs on this.
  prepared->trace_.plan_fingerprint = HashString(plan->TreeFingerprint());

  // Pin one consistent as-of snapshot of every base table for this
  // query (pinned in every mode: scans must not see rows appended
  // mid-query even with the recycler off). Freshness checks compare
  // cached-entry stamps against these, and Execute scans through pins_.
  for (const std::string& t : plan->base_tables()) {
    TableSnapshot snap = catalog_->Snapshot(t);
    if (snap.table != nullptr) {
      prepared->pins_[t] = snap.table;
      prepared->snapshots_[t] = std::move(snap);
    }
  }

  if (config_.mode == RecyclerMode::kOff) {
    prepared->plan_ = std::move(plan);
    FinalizeTrace(prepared.get());
    return prepared;
  }

  Stopwatch match_sw;
  graph_.AdvanceEpoch();

  // --- proactive rewriting (PA mode, §IV-B) ---------------------------
  std::unique_ptr<MNode> matched;
  if (config_.mode == RecyclerMode::kProactive) {
    PlanPtr topn = RewriteTopNProactive(plan, config_.proactive_topn_limit);
    if (topn != plan) {
      plan = std::move(topn);
      plan->Bind(*catalog_);
      prepared->trace_.used_proactive = true;
      counters_.proactive_rewrites.fetch_add(1);
    }
    auto cube =
        TryCubeRewrite(plan, *catalog_, config_.cube_distinct_threshold);
    if (cube.has_value()) {
      // Match + insert the proactive variant WITHOUT committing to execute
      // it; its shared parts accumulate benefit each time the strategy
      // triggers. Execute it only when the gate aggregate was recycled or
      // has enough history for a store decision.
      cube->plan->Bind(*catalog_);
      auto pm = MatchTree(cube->plan);
      bool gate_go = false;
      {
        std::unique_lock<std::shared_mutex> lock(graph_.mutex());
        InsertMissing(pm.get(), prepared.get());
        BumpImportance(pm.get(), false);
        // Find the gate node's MNode.
        std::vector<MNode*> stack{pm.get()};
        RGNode* gate_gnode = nullptr;
        while (!stack.empty()) {
          MNode* m = stack.back();
          stack.pop_back();
          if (m->plan == cube->gate.get()) {
            gate_gnode = m->gnode;
            break;
          }
          for (auto& c : m->children) stack.push_back(c.get());
        }
        if (gate_gnode != nullptr) {
          gate_go = gate_gnode->mat_state.load() == MatState::kCached ||
                    graph_.AgedH(gate_gnode) >= 1.0;
        }
      }
      if (gate_go) {
        plan = cube->plan;
        matched = std::move(pm);
        prepared->trace_.used_proactive = true;
        counters_.proactive_rewrites.fetch_add(1);
      }
    }
  }

  // --- matching + insertion (§III-A/B) --------------------------------
  if (matched == nullptr) {
    matched = MatchTree(plan);  // phase 1, shared lock
    if (matched->gnode != nullptr) {
      // Fully matched (a node only matches once all its children have):
      // the hot steady-state path. Statistics are atomic, so the h bumps
      // run under the shared lock and concurrent streams never serialize
      // on the exclusive lock.
      std::shared_lock<std::shared_mutex> lock(graph_.mutex());
      BumpImportance(matched.get(), false);  // §III-C
    } else {
      std::unique_lock<std::shared_mutex> lock(graph_.mutex());
      InsertMissing(matched.get(), prepared.get());  // phase 2 + OCC
      BumpImportance(matched.get(), false);               // §III-C
    }
  }
  prepared->trace_.match_ms = match_sw.ElapsedMs();
  prepared->trace_.graph_nodes_at_match = graph_.Stats().num_nodes;
  prepared->matched_ = std::move(matched);

  // --- reuse rewriting (may stall on in-flight results) ----------------
  PlanPtr rewritten =
      RewriteForReuse(prepared->matched_.get(), plan, prepared.get());
  rewritten->Bind(*catalog_);

  // --- store injection --------------------------------------------------
  {
    std::shared_lock<std::shared_mutex> lock(graph_.mutex());
    InjectStores(prepared->matched_.get(), prepared.get(), false);
  }

  prepared->plan_ = std::move(rewritten);
  FinalizeTrace(prepared.get());
  return prepared;
}

void Recycler::FinalizeTrace(PreparedQuery* prepared) {
  prepared->trace_.reuse_mode = ReuseModeFromCounters(prepared->trace_);
  if (config_.capture_plan_explain) {
    prepared->trace_.plan_explain = prepared->plan_->Explain();
  }
}

void Recycler::OnComplete(PreparedQuery* prepared, const ExecResult& result) {
  counters_.queries.fetch_add(1);
  // Zone-map accounting applies in every mode (pruning also serves the
  // kOff baseline), so it lands before the early return below.
  prepared->trace_.blocks_scanned = result.blocks_scanned;
  prepared->trace_.blocks_pruned = result.blocks_pruned;
  counters_.blocks_scanned.fetch_add(result.blocks_scanned);
  counters_.blocks_pruned.fetch_add(result.blocks_pruned);
  if (prepared->trace_.template_hash != 0) {
    std::lock_guard<std::mutex> lock(template_mu_);
    TemplateStats& ts = template_stats_[prepared->trace_.template_hash];
    ++ts.executions;
    ts.reuses += prepared->trace_.num_reuses;
    ts.subsumption_reuses += prepared->trace_.num_subsumption_reuses;
    ts.partial_reuses += prepared->trace_.num_partial_reuses;
    ts.materializations += prepared->trace_.num_materialized;
    ts.total_ms += result.total_ms;
  }
  if (config_.mode == RecyclerMode::kOff) return;

  // Annotation writes are atomic per-field; the shared lock only pins the
  // nodes so completion never serializes behind other streams' matching.
  std::shared_lock<std::shared_mutex> lock(graph_.mutex());

  // bcost must always reflect cost-from-base-tables (Eq. 2): add back the
  // base cost of every subtree a CachedScan replaced.
  struct CostWalker {
    const PreparedQuery* q;
    const ExecResult* r;
    // Returns the replaced base cost under `node` (inclusive).
    double ReplacedBelow(const PlanNode* node) const {
      double total = 0;
      auto it = q->replaced_cost_.find(node);
      if (it != q->replaced_cost_.end()) total += it->second;
      for (const auto& c : node->children()) total += ReplacedBelow(c.get());
      return total;
    }
  };
  CostWalker walker{prepared, &result};

  for (const auto& [node, gnode] : prepared->exec_to_gnode_) {
    auto it = result.node_runtime.find(node);
    if (it == result.node_runtime.end()) continue;
    const NodeRuntime& rt = it->second;
    // Subtree cost: the calibrated model (deterministic in plan shape and
    // observed cardinalities, so identical workloads produce identical
    // benefit rankings) or the measured wall clock, by configuration.
    const double subtree_ms =
        config_.use_cost_model
            ? CostModel::Global().SubtreeMs(*node, result.node_runtime)
            : rt.inclusive_ms;
    double bcost = subtree_ms + walker.ReplacedBelow(node);
    gnode->bcost_ms.store(bcost);  // refresh (wall-clock mode: with load)
    gnode->has_bcost.store(true);
    gnode->rows.store(rt.rows_out);
    if (!gnode->has_size.load()) {
      gnode->size_bytes.store(std::max(
          1.0, static_cast<double>(rt.rows_out) *
                   EstRowWidth(gnode->output_types)));
    }
  }
}

TemplateStats Recycler::TemplateStatsFor(uint64_t template_hash) const {
  std::lock_guard<std::mutex> lock(template_mu_);
  auto it = template_stats_.find(template_hash);
  return it == template_stats_.end() ? TemplateStats{} : it->second;
}

std::map<uint64_t, TemplateStats> Recycler::TemplateStatsSnapshot() const {
  std::lock_guard<std::mutex> lock(template_mu_);
  return template_stats_;
}

ExecResult Recycler::Execute(const PlanPtr& query_plan, QueryTrace* trace_out) {
  std::unique_ptr<PreparedQuery> prepared = Prepare(query_plan);
  ExecResult result =
      executor_.Run(prepared->plan(), &prepared->stores(), &prepared->pins_);
  OnComplete(prepared.get(), result);
  if (trace_out != nullptr) *trace_out = prepared->trace();
  return result;
}

}  // namespace recycledb
