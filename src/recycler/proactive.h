// Proactive recycling strategies (§IV-B): rewriting a query into a more
// expensive variant whose intermediates have higher reuse potential.
#pragma once

#include <optional>

#include "plan/plan.h"
#include "storage/catalog.h"

namespace recycledb {

/// Result of a cube-caching rewrite.
struct CubeRewrite {
  /// The full rewritten query plan (unbound).
  PlanPtr plan;
  /// The inner extended aggregate inside `plan` whose recycling potential
  /// gates whether the proactive plan is executed (§IV-B: "If a recycled
  /// result for the aggregate was found during matching, or a
  /// non-speculative store decision was made for it, we execute the
  /// proactive plan").
  PlanPtr gate;
};

/// Top-N caching: rewrites every TopN(keys, N) with N < `proactive_limit`
/// into Limit(N) over TopN(keys, proactive_limit). The enlarged top-N is
/// practically as cheap (heap of 10000 still fits the cache) and its
/// result subsumes all smaller top-Ns over the same input.
/// Returns the rewritten plan, or `plan` itself when nothing applied.
PlanPtr RewriteTopNProactive(const PlanPtr& plan, int64_t proactive_limit);

/// Cube caching with selections: rewrites
///     Aggregate(γ, α, Select(p(c), X))
/// into
///     Project(Aggregate(γ, α'', Select(p(c), Aggregate(γ∪c, α', X))))
/// when the selection columns c have a small combined distinct count
/// (looked up in the catalog; the paper's result-size heuristic).
///
/// Cube caching with binning: when p is a single upper-bounded range
/// predicate on a DATE column (c <= D or c < D), rewrites into the union
/// of a year-binned cube part and a residual recomputation part
/// (Fig. 5 right).
///
/// Tries binning first (range predicates), then plain selections. Applies
/// at the topmost matching Aggregate-over-Select. Returns nullopt when no
/// pattern applies.
std::optional<CubeRewrite> TryCubeRewrite(const PlanPtr& plan,
                                          const Catalog& catalog,
                                          int64_t distinct_threshold);

}  // namespace recycledb
