#include "recycler/graph.h"

#include <algorithm>
#include <cmath>

namespace recycledb {

double RecyclerGraph::AgedH(const RGNode* node) const {
  double h = node->h.load(std::memory_order_relaxed);
  if (aging_alpha_ >= 1.0) return h;
  int64_t delta =
      epoch_.load() - node->h_epoch.load(std::memory_order_relaxed);
  if (delta <= 0) return h;
  return h * std::pow(aging_alpha_, static_cast<double>(delta));
}

void RecyclerGraph::FoldAging(RGNode* node) {
  if (aging_alpha_ >= 1.0) return;
  int64_t now = epoch_.load();
  int64_t stamp = node->h_epoch.load(std::memory_order_relaxed);
  // Elect one folder per epoch advance via CAS on the stamp; losers see
  // the refreshed stamp and stop.
  while (stamp < now) {
    if (node->h_epoch.compare_exchange_weak(stamp, now,
                                            std::memory_order_relaxed)) {
      AtomicScale(node->h,
                  std::pow(aging_alpha_, static_cast<double>(now - stamp)));
      return;
    }
  }
}

std::vector<RGNode*> RecyclerGraph::LeafCandidates(const std::string& leaf_key,
                                                   uint64_t hash_key) const {
  std::vector<RGNode*> out;
  auto range = leaf_index_.equal_range(leaf_key);
  for (auto it = range.first; it != range.second; ++it) {
    if (it->second->hash_key == hash_key) out.push_back(it->second);
  }
  return out;
}

RGNode* RecyclerGraph::AddNode(std::unique_ptr<RGNode> node,
                               const std::string& leaf_key) {
  RGNode* raw = node.get();
  raw->leaf_key = leaf_key;
  raw->last_access_epoch = epoch_.load();
  nodes_.push_back(std::move(node));
  if (raw->children.empty()) {
    leaf_index_.emplace(leaf_key, raw);
  } else {
    for (RGNode* child : raw->children) {
      child->parents.emplace(raw->hash_key, raw);
    }
  }
  return raw;
}

int64_t RecyclerGraph::Truncate(int64_t idle_epochs) {
  const int64_t cutoff = epoch_.load() - idle_epochs;
  int64_t removed_total = 0;
  // Iterate to a fixpoint: removing a stale parent may expose a stale
  // child (subtrees disappear top-down; shared prefixes that still have
  // fresh parents survive).
  for (;;) {
    std::vector<RGNode*> victims;
    for (const auto& n : nodes_) {
      if (n->last_access_epoch.load() > cutoff) continue;
      if (n->mat_state.load() != MatState::kNone) continue;
      if (!n->parents.empty()) continue;
      victims.push_back(n.get());
    }
    if (victims.empty()) break;
    for (RGNode* v : victims) {
      // Unlink from children's parent indexes.
      for (RGNode* child : v->children) {
        auto range = child->parents.equal_range(v->hash_key);
        for (auto it = range.first; it != range.second;) {
          it = it->second == v ? child->parents.erase(it) : std::next(it);
        }
      }
      // Drop dangling subsumption edges pointing at the victim.
      for (const auto& n : nodes_) {
        auto& subs = n->subsumes;
        subs.erase(std::remove(subs.begin(), subs.end(), v), subs.end());
      }
      // Unregister from the leaf index.
      if (v->children.empty()) {
        auto range = leaf_index_.equal_range(v->leaf_key);
        for (auto it = range.first; it != range.second;) {
          it = it->second == v ? leaf_index_.erase(it) : std::next(it);
        }
      }
      // Free the node itself.
      for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
        if (it->get() == v) {
          nodes_.erase(it);
          break;
        }
      }
      ++removed_total;
    }
  }
  return removed_total;
}

GraphStats RecyclerGraph::Stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  GraphStats s;
  s.num_nodes = static_cast<int64_t>(nodes_.size());
  for (const auto& n : nodes_) {
    if (n->children.empty()) ++s.num_leaves;
    MatState ms = n->mat_state.load();
    if (ms == MatState::kCached) {
      ++s.num_cached;
      s.cached_bytes += n->cached_bytes.load();
    } else if (ms == MatState::kCold) {
      ++s.num_cold;
    }
  }
  return s;
}

}  // namespace recycledb
