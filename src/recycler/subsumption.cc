#include "recycler/subsumption.h"

#include <algorithm>
#include <optional>
#include <set>

#include "common/macros.h"
#include "common/string_util.h"

namespace recycledb {

namespace {

std::set<std::string> ConjunctFps(const ExprPtr& pred, const NameMap* mapping) {
  std::set<std::string> out;
  for (const auto& c : SplitConjuncts(pred)) {
    out.insert(c->Fingerprint(mapping));
  }
  return out;
}

bool SameSortKeys(const std::vector<SortKey>& query_keys,
                  const NameMap& mapping,
                  const std::vector<SortKey>& cand_keys) {
  if (query_keys.size() != cand_keys.size()) return false;
  for (size_t i = 0; i < query_keys.size(); ++i) {
    auto it = mapping.find(query_keys[i].column);
    const std::string& mapped =
        it == mapping.end() ? query_keys[i].column : it->second;
    if (mapped != cand_keys[i].column) return false;
    if (query_keys[i].ascending != cand_keys[i].ascending) return false;
  }
  return true;
}

/// Index of the cand aggregate with function `fn` and argument fingerprint
/// `arg_fp`, or -1.
int FindCandAgg(const PlanNode& cand, AggFunc fn, const std::string& arg_fp) {
  const auto& aggs = cand.aggregates();
  for (size_t j = 0; j < aggs.size(); ++j) {
    if (aggs[j].fn == fn && aggs[j].arg->Fingerprint(nullptr) == arg_fp) {
      return static_cast<int>(j);
    }
  }
  return -1;
}

/// Builds the CachedScan with synthetic column names s0..s<k>.
SubsumptionPlan MakeSyntheticScan(TablePtr cached) {
  SubsumptionPlan out;
  std::vector<std::string> names;
  names.reserve(cached->schema().num_fields());
  for (int i = 0; i < cached->schema().num_fields(); ++i) {
    names.push_back(StrFormat("s%d", i));
  }
  out.cached_scan = PlanNode::CachedScan(std::move(cached), std::move(names));
  return out;
}

SubsumptionPlan TrySelect(const PlanNode& query_node,
                          const NameMap& child_mapping, const RGNode& cand,
                          TablePtr cached) {
  const PlanNode& cp = *cand.param_node;
  std::set<std::string> cand_fps = ConjunctFps(cp.predicate(), nullptr);
  std::vector<ExprPtr> residual;
  std::set<std::string> covered;
  for (const auto& c : SplitConjuncts(query_node.predicate())) {
    std::string fp = c->Fingerprint(&child_mapping);
    if (cand_fps.count(fp) > 0) {
      covered.insert(fp);
    } else {
      residual.push_back(c);
    }
  }
  // Every cached conjunct must be implied by the query's (conjunct subset):
  // otherwise the cached result dropped rows the query needs.
  if (covered.size() != cand_fps.size()) return {};

  SubsumptionPlan out;
  // The select's output schema equals its child's; the cached columns are
  // positionally the child's columns.
  out.cached_scan = PlanNode::CachedScan(
      std::move(cached), query_node.output_schema().Names());
  out.plan = residual.empty()
                 ? out.cached_scan
                 : PlanNode::Select(out.cached_scan, AndAll(residual));
  return out;
}

SubsumptionPlan TryTopN(const PlanNode& query_node, const NameMap& child_mapping,
                        const RGNode& cand, TablePtr cached) {
  const PlanNode& cp = *cand.param_node;
  if (cp.limit() < query_node.limit()) return {};
  if (!SameSortKeys(query_node.sort_keys(), child_mapping, cp.sort_keys())) {
    return {};
  }
  SubsumptionPlan out;
  out.cached_scan = PlanNode::CachedScan(
      std::move(cached), query_node.output_schema().Names());
  // The cached top-M is emitted in sort order, so top-N is its prefix.
  out.plan = PlanNode::Limit(out.cached_scan, query_node.limit());
  return out;
}

SubsumptionPlan TryProject(const PlanNode& query_node,
                           const NameMap& child_mapping, const RGNode& cand,
                           TablePtr cached) {
  const PlanNode& cp = *cand.param_node;
  std::vector<int> positions;
  for (const auto& item : query_node.projections()) {
    std::string fp = item.expr->Fingerprint(&child_mapping);
    int pos = -1;
    for (size_t j = 0; j < cp.projections().size(); ++j) {
      if (cp.projections()[j].expr->Fingerprint(nullptr) == fp) {
        pos = static_cast<int>(j);
        break;
      }
    }
    if (pos < 0) return {};  // column subsumption requires a superset
    positions.push_back(pos);
  }
  SubsumptionPlan out = MakeSyntheticScan(std::move(cached));
  std::vector<ProjItem> items;
  for (size_t i = 0; i < positions.size(); ++i) {
    items.push_back({Expr::Column(StrFormat("s%d", positions[i])),
                     query_node.projections()[i].out_name});
  }
  out.plan = PlanNode::Project(out.cached_scan, std::move(items));
  return out;
}

SubsumptionPlan TryAggregate(const PlanNode& query_node,
                             const NameMap& child_mapping, const RGNode& cand,
                             TablePtr cached) {
  const PlanNode& cp = *cand.param_node;
  const int cand_groups = static_cast<int>(cp.group_by().size());

  // Map each query group column to its position in the cached result.
  std::vector<int> group_pos;
  for (const auto& q : query_node.group_by()) {
    auto it = child_mapping.find(q);
    const std::string& gq = it == child_mapping.end() ? q : it->second;
    int pos = -1;
    for (int j = 0; j < cand_groups; ++j) {
      if (cp.group_by()[j] == gq) {
        pos = j;
        break;
      }
    }
    if (pos < 0) return {};  // query grouping must be coarser or equal
    group_pos.push_back(pos);
  }

  const bool same_grouping =
      static_cast<int>(query_node.group_by().size()) == cand_groups;

  if (same_grouping) {
    // Column subsumption: same grouping; every requested aggregate must be
    // present verbatim -> project out the needed columns.
    std::vector<int> agg_pos;
    for (const auto& a : query_node.aggregates()) {
      int j = FindCandAgg(cp, a.fn, a.arg->Fingerprint(&child_mapping));
      if (j < 0) return {};
      agg_pos.push_back(cand_groups + j);
    }
    SubsumptionPlan out = MakeSyntheticScan(std::move(cached));
    std::vector<ProjItem> items;
    for (size_t i = 0; i < group_pos.size(); ++i) {
      items.push_back({Expr::Column(StrFormat("s%d", group_pos[i])),
                       query_node.group_by()[i]});
    }
    for (size_t i = 0; i < agg_pos.size(); ++i) {
      items.push_back({Expr::Column(StrFormat("s%d", agg_pos[i])),
                       query_node.aggregates()[i].out_name});
    }
    out.plan = PlanNode::Project(out.cached_scan, std::move(items));
    return out;
  }

  // Tuple subsumption: the cached grouping is strictly finer. Re-aggregate
  // the cached partials with the decomposition rules.
  std::vector<AggItem> reaggs;      // over synthetic columns
  std::vector<ProjItem> final_items;
  for (size_t i = 0; i < group_pos.size(); ++i) {
    final_items.push_back({Expr::Column(query_node.group_by()[i]),
                           query_node.group_by()[i]});
  }
  int temp_serial = 0;
  for (const auto& a : query_node.aggregates()) {
    std::string arg_fp = a.arg->Fingerprint(&child_mapping);
    switch (a.fn) {
      case AggFunc::kSum:
      case AggFunc::kMin:
      case AggFunc::kMax: {
        int j = FindCandAgg(cp, a.fn, arg_fp);
        if (j < 0) return {};
        std::string tmp = StrFormat("r%d", temp_serial++);
        AggFunc refn = a.fn == AggFunc::kSum ? AggFunc::kSum : a.fn;
        reaggs.push_back(
            {refn, Expr::Column(StrFormat("s%d", cand_groups + j)), tmp});
        final_items.push_back({Expr::Column(tmp), a.out_name});
        break;
      }
      case AggFunc::kCount: {
        int j = FindCandAgg(cp, AggFunc::kCount, arg_fp);
        if (j < 0) return {};
        std::string tmp = StrFormat("r%d", temp_serial++);
        reaggs.push_back(
            {AggFunc::kSum, Expr::Column(StrFormat("s%d", cand_groups + j)),
             tmp});
        final_items.push_back({Expr::Column(tmp), a.out_name});
        break;
      }
      case AggFunc::kAvg: {
        int js = FindCandAgg(cp, AggFunc::kSum, arg_fp);
        int jc = FindCandAgg(cp, AggFunc::kCount, arg_fp);
        if (js < 0 || jc < 0) return {};
        std::string ts = StrFormat("r%d", temp_serial++);
        std::string tc = StrFormat("r%d", temp_serial++);
        reaggs.push_back(
            {AggFunc::kSum, Expr::Column(StrFormat("s%d", cand_groups + js)),
             ts});
        reaggs.push_back(
            {AggFunc::kSum, Expr::Column(StrFormat("s%d", cand_groups + jc)),
             tc});
        final_items.push_back(
            {Expr::Arith(ArithOp::kDiv,
                         Expr::Arith(ArithOp::kMul, Expr::Column(ts),
                                     Expr::Literal(1.0)),
                         Expr::Column(tc)),
             a.out_name});
        break;
      }
    }
  }

  SubsumptionPlan out = MakeSyntheticScan(std::move(cached));
  // Rename the query's group columns in the synthetic scan so the
  // re-aggregation's group outputs carry the final names directly.
  std::vector<std::string> scan_names = out.cached_scan->scan_columns();
  for (size_t i = 0; i < group_pos.size(); ++i) {
    scan_names[group_pos[i]] = query_node.group_by()[i];
  }
  out.cached_scan =
      PlanNode::CachedScan(out.cached_scan->cached_result(), scan_names);
  PlanPtr reagg = PlanNode::Aggregate(out.cached_scan,
                                      query_node.group_by(), reaggs);
  out.plan = PlanNode::Project(reagg, std::move(final_items));
  return out;
}

}  // namespace

SubsumptionPlan TrySubsumption(const PlanNode& query_node,
                               const NameMap& child_mapping,
                               const RGNode& cand, TablePtr cached) {
  if (cand.param_node == nullptr || cached == nullptr) return {};
  if (cand.type != query_node.type()) return {};
  switch (query_node.type()) {
    case OpType::kSelect:
      return TrySelect(query_node, child_mapping, cand, std::move(cached));
    case OpType::kTopN:
      return TryTopN(query_node, child_mapping, cand, std::move(cached));
    case OpType::kProject:
      return TryProject(query_node, child_mapping, cand, std::move(cached));
    case OpType::kAggregate:
      return TryAggregate(query_node, child_mapping, cand, std::move(cached));
    default:
      return {};
  }
}

namespace {

/// `column <op> literal` for one end of an interval.
ExprPtr BoundExpr(const std::string& column, const RangeBound& b,
                  bool is_lower) {
  CompareOp op = is_lower ? (b.inclusive ? CompareOp::kGe : CompareOp::kGt)
                          : (b.inclusive ? CompareOp::kLe : CompareOp::kLt);
  return Expr::Compare(op, Expr::Column(column), Expr::Literal(b.value));
}

bool NumericDatum(const Datum& d) {
  return !std::holds_alternative<std::monostate>(d) &&
         IsNumeric(DatumType(d));
}

}  // namespace

PartialPlan TryPartialStitch(const PlanNode& query_node,
                             const NameMap& child_mapping,
                             const PlanPtr& child_plan, const RangeSpec& spec,
                             const std::vector<IntervalCandidate>& candidates) {
  PartialPlan out;
  const ColumnInterval& q = spec.range;

  // A candidate is usable when its remaining conjuncts are a subset of
  // the query's (the cached slice then only lacks the residual filters,
  // applied as compensation below) and its interval overlaps the query's.
  std::vector<const IntervalCandidate*> eligible;
  for (const IntervalCandidate& c : candidates) {
    if (c.cached == nullptr) continue;
    if (!std::includes(spec.other_fps.begin(), spec.other_fps.end(),
                       c.other_fps.begin(), c.other_fps.end())) {
      continue;
    }
    if (!Overlaps(c.range, q)) continue;
    eligible.push_back(&c);
  }
  if (eligible.empty()) return out;
  // Fully deterministic candidate order — ascending by lo, equal-lo ties
  // broken by the wider hi (it absorbs the sweep; a narrower twin clips
  // to empty and drops out), then by graph insertion id. Without the tie
  // breaks the order inherits the interval-index bucket order, which
  // depends on admission/eviction history, and the stitched plan shape
  // (hence Explain text and goldens) would differ across engines that
  // executed the same workload.
  std::sort(eligible.begin(), eligible.end(),
            [](const IntervalCandidate* a, const IntervalCandidate* b) {
              if (LoTighter(b->range.lo, a->range.lo)) return true;
              if (LoTighter(a->range.lo, b->range.lo)) return false;
              if (HiTighter(b->range.hi, a->range.hi)) return true;
              if (HiTighter(a->range.hi, b->range.hi)) return false;
              return a->node->id < b->node->id;
            });

  // Proportional credit needs a measurable query interval; otherwise the
  // pieces split the credit evenly (fixed up once the count is known).
  const bool measurable = !q.lo.unbounded && !q.hi.unbounded &&
                          NumericDatum(q.lo.value) && NumericDatum(q.hi.value);
  const double qlen =
      measurable ? DatumAsDouble(q.hi.value) - DatumAsDouble(q.lo.value) : 0;
  auto fraction_of = [&](const ColumnInterval& clip) -> double {
    if (!measurable || qlen <= 0) return -1;
    double len =
        DatumAsDouble(clip.hi.value) - DatumAsDouble(clip.lo.value);
    return std::max(0.0, std::min(1.0, len / qlen));
  };

  const std::vector<std::string> child_names =
      query_node.output_schema().Names();
  std::vector<PlanPtr> branches;
  // Uncovered gaps are collected and merged into ONE delta scan below,
  // so the child subtree executes at most once per stitched plan.
  std::vector<ColumnInterval> gaps;

  // Gap filter: besides plainly empty intervals, drop zero-width gaps on
  // integer columns — e.g. slices [.,100] and [101,.) stitched for a query
  // spanning both leave the "gap" (100, 101), which no integer can ever
  // satisfy. Without this the stitch builds (and executes) a delta branch
  // guaranteed to return nothing. Only genuinely integer domains qualify:
  // a double column with integer literal bounds has values between them.
  const int range_col = query_node.output_schema().IndexOf(spec.column);
  const TypeId range_type = range_col >= 0
                                ? query_node.output_schema().field(range_col).type
                                : TypeId::kDouble;
  const bool integer_domain = range_type == TypeId::kInt32 ||
                              range_type == TypeId::kInt64 ||
                              range_type == TypeId::kDate;
  auto gap_empty = [&](const ColumnInterval& gap) {
    if (IntervalEmpty(gap)) return true;
    return integer_domain && IntervalEmptyOnIntegerDomain(gap);
  };

  // Sweep the query interval left to right, assigning each position to
  // the first cached slice that covers it. Adjacent pieces meet with
  // complementary open/closed boundaries (ComplementLo/Hi), so boundary
  // values land in exactly one branch of the union.
  RangeBound cursor = q.lo;
  bool exhausted = false;
  for (const IntervalCandidate* c : eligible) {
    ColumnInterval rem{cursor, q.hi};
    if (IntervalEmpty(rem)) {
      exhausted = true;
      break;
    }
    ColumnInterval clip = Intersect(c->range, rem);
    if (IntervalEmpty(clip)) continue;  // already covered by earlier slices
    if (LoTighter(clip.lo, cursor)) {
      ColumnInterval gap{cursor, ComplementHi(clip.lo)};
      if (!gap_empty(gap)) gaps.push_back(gap);
    }
    // Compensation: residual conjuncts the slice did not apply, plus the
    // clip bounds that are tighter than the slice's own (a clip bound
    // equal to the slice bound is already enforced by the cached data).
    std::vector<ExprPtr> comp;
    for (const ExprPtr& o : spec.others) {
      if (c->other_fps.count(o->Fingerprint(&child_mapping)) == 0) {
        comp.push_back(o);
      }
    }
    if (LoTighter(clip.lo, c->range.lo)) {
      comp.push_back(BoundExpr(spec.column, clip.lo, /*is_lower=*/true));
    }
    if (HiTighter(clip.hi, c->range.hi)) {
      comp.push_back(BoundExpr(spec.column, clip.hi, /*is_lower=*/false));
    }
    PlanPtr scan = PlanNode::CachedScan(c->cached, child_names);
    PlanPtr piece =
        comp.empty() ? scan : PlanNode::Select(scan, AndAll(comp));
    branches.push_back(piece);
    out.reuse_pieces.push_back({piece, scan, c->node, fraction_of(clip)});
    if (clip.hi.unbounded) {  // covered through +inf (q.hi is unbounded)
      exhausted = true;
      break;
    }
    cursor = ComplementLo(clip.hi);
  }
  if (!exhausted) {
    ColumnInterval rem{cursor, q.hi};
    if (!gap_empty(rem)) gaps.push_back(rem);
  }
  if (out.reuse_pieces.empty()) return {};

  if (!gaps.empty()) {
    // One compensated delta scan for every gap: the query's non-range
    // conjuncts AND the disjunction of the gap ranges. Every gap has at
    // least one bound (it is contained in the query interval, which has
    // one), so each disjunct is non-trivial.
    std::vector<ExprPtr> gap_preds;
    for (const ColumnInterval& gap : gaps) {
      std::vector<ExprPtr> conj;
      if (!gap.lo.unbounded) {
        conj.push_back(BoundExpr(spec.column, gap.lo, /*is_lower=*/true));
      }
      if (!gap.hi.unbounded) {
        conj.push_back(BoundExpr(spec.column, gap.hi, /*is_lower=*/false));
      }
      ExprPtr gap_pred = AndAll(conj);
      if (gap_pred != nullptr) gap_preds.push_back(std::move(gap_pred));
    }
    if (gap_preds.empty()) return {};  // cannot express the remainder
    ExprPtr ranges = gap_preds[0];
    for (size_t i = 1; i < gap_preds.size(); ++i) {
      ranges = Expr::Or(ranges, gap_preds[i]);
    }
    std::vector<ExprPtr> conj = spec.others;
    conj.push_back(ranges);
    branches.push_back(PlanNode::Select(child_plan, AndAll(conj)));
    out.num_delta_pieces = 1;
  }

  // Unmeasurable interval: split the credit evenly across all branches.
  for (PartialPiece& p : out.reuse_pieces) {
    if (p.fraction < 0) p.fraction = 1.0 / branches.size();
    out.covered_fraction += p.fraction;
  }
  out.covered_fraction = std::min(1.0, out.covered_fraction);

  out.plan = branches.size() == 1 ? branches[0]
                                  : PlanNode::UnionAll(std::move(branches));
  return out;
}

bool ParamsSubsume(const PlanNode& super, const PlanNode& sub) {
  if (super.type() != sub.type()) return false;
  switch (super.type()) {
    case OpType::kSelect: {
      // super's conjuncts must be a subset of sub's.
      auto super_fps = ConjunctFps(super.predicate(), nullptr);
      auto sub_fps = ConjunctFps(sub.predicate(), nullptr);
      for (const auto& fp : super_fps) {
        if (sub_fps.count(fp) == 0) return false;
      }
      return true;
    }
    case OpType::kTopN:
      return super.limit() >= sub.limit() &&
             SameSortKeys(sub.sort_keys(), {}, super.sort_keys());
    case OpType::kProject: {
      for (const auto& item : sub.projections()) {
        bool found = false;
        for (const auto& sitem : super.projections()) {
          if (sitem.expr->Fingerprint(nullptr) ==
              item.expr->Fingerprint(nullptr)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      return true;
    }
    case OpType::kAggregate: {
      // super groups must be a superset of sub groups.
      std::set<std::string> super_groups(super.group_by().begin(),
                                         super.group_by().end());
      for (const auto& g : sub.group_by()) {
        if (super_groups.count(g) == 0) return false;
      }
      for (const auto& a : sub.aggregates()) {
        std::string arg_fp = a.arg->Fingerprint(nullptr);
        if (a.fn == AggFunc::kAvg) {
          if (FindCandAgg(super, AggFunc::kSum, arg_fp) < 0 ||
              FindCandAgg(super, AggFunc::kCount, arg_fp) < 0) {
            return false;
          }
        } else if (FindCandAgg(super, a.fn, arg_fp) < 0) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

}  // namespace recycledb
