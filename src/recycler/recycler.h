// The recycler: matching, benefit-based result selection, speculation,
// subsumption and proactive rewriting for a pipelined query engine.
// This is the paper's primary contribution (Sections II-IV).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "exec/executor.h"
#include "recycler/cache.h"
#include "recycler/cold_tier.h"
#include "recycler/delta.h"
#include "recycler/graph.h"
#include "recycler/interval_index.h"

namespace recycledb {

/// Execution modes evaluated in the paper (§V):
///  kOff        - no recycling (the "naive"/OFF baseline).
///  kHistory    - HIST: materialize only results seen in previous queries,
///                decided at rewrite time from recorded statistics.
///  kSpeculation- SPEC: HIST + speculative stores with run-time estimates
///                on never-seen expensive/small results.
///  kProactive  - PA: SPEC + proactive query rewriting (top-N caching,
///                cube caching with selections / with binning).
enum class RecyclerMode : uint8_t { kOff, kHistory, kSpeculation, kProactive };

const char* RecyclerModeName(RecyclerMode mode);

/// Tunables for the recycler.
struct RecyclerConfig {
  RecyclerMode mode = RecyclerMode::kSpeculation;
  /// Recycler cache budget in bytes; < 0 means unlimited.
  int64_t cache_bytes = 256ll << 20;
  /// Aging factor alpha (Eq. 5); 1.0 disables aging.
  double aging_alpha = 1.0;
  /// Constant h used for speculative benefit estimates (§III-D).
  double speculation_h = 0.001;
  /// Hard cap for speculative buffering per store operator.
  int64_t speculation_buffer_cap = 64ll << 20;
  /// Enables subsumption-based reuse (§IV-A).
  bool enable_subsumption = true;
  /// Enables partial reuse of range selections (stitching overlapping
  /// cached slices with a compensated delta scan). Independent of
  /// enable_subsumption: disabling single-superset subsumption alone
  /// does not turn stitching off.
  bool enable_partial_reuse = true;
  /// Minimum share of the query interval the cached slices must cover
  /// for a stitched rewrite to be used (0 = any overlap, 1 = full cover
  /// only). Stitched plans with a delta scan still execute the child for
  /// the remainder, so raising this trades stitching opportunities for
  /// less union overhead. Caveat: for open-ended or non-numeric query
  /// intervals the covered fraction is unmeasurable and falls back to an
  /// even split across the stitched branches, so thresholds near 1 also
  /// suppress open-ended stitches with several branches.
  double partial_min_cover = 0.0;
  /// Proactive top-N limit L (§IV-B: topN(Q, 10000) subsumes topN(Q, N)).
  int64_t proactive_topn_limit = 10000;
  /// Cube caching threshold on the number of distinct values the pulled-up
  /// selection columns add to the GROUP BY (§IV-B heuristic).
  int64_t cube_distinct_threshold = 64;
  /// Upper bound on stalling for a concurrent materialization.
  int64_t stall_timeout_ms = 30000;
  /// Replacement policy (kBenefit = paper; others for ablations).
  CachePolicy cache_policy = CachePolicy::kBenefit;
  /// Cold-tier spill directory; empty disables the tier. When set, hot
  /// evictions spill still-beneficial results to disk, a shutdown
  /// checkpoint persists the hot cache, and Database::Open over the same
  /// directory warms the recycler up from the previous process's
  /// coverage. The directory must be private to one engine instance and
  /// must stay paired with the same base data (ReplaceTable purges).
  std::string spill_dir;
  /// Byte cap on the spill directory (second-chance replacement).
  /// Must be positive when spill_dir is set.
  int64_t cold_tier_capacity_bytes = 1ll << 30;
  /// Minimum benefit (Eq. 1) an evicted result must retain to be worth
  /// spilling; 0 spills every evicted result.
  double spill_min_benefit = 0.0;
  /// Refresh node build costs (bcost, Eq. 2) from the calibrated
  /// per-operator cost model instead of wall-clock timings. The model is
  /// deterministic for a given plan shape and cardinality, so benefit
  /// rankings — and therefore admission/eviction/spill decisions — stop
  /// depending on scheduler noise. When false, measured milliseconds are
  /// used as before.
  bool use_cost_model = true;
  /// Compress cold-tier spill payloads (format v2 per-column codecs).
  /// Stored results are bit-identical either way; compression only
  /// changes how many entries fit under cold_tier_capacity_bytes.
  bool compress_spill = true;
  // --- fleet tier (shared cold directory) ------------------------------
  /// Coordinate with other engine processes sharing spill_dir through
  /// the fleet ownership manifest (fleet/manifest.h). Off = the classic
  /// private tier (the directory must then belong to one instance).
  bool shared_spill_dir = false;
  /// This process's identity in the fleet manifest. Must be non-empty
  /// and filename-safe ([A-Za-z0-9_-]) when shared_spill_dir is set and
  /// the tier is writable; auto-derived from the pid when left empty.
  std::string fleet_instance;
  /// Adopt-only fleet member: discover and serve peers' spills but never
  /// create, delete or lock anything in the directory (standby on a
  /// read-only mount). Implies no spills and no checkpoint.
  bool spill_read_only = false;
  /// Fleet liveness lease; an instance that has not renewed within this
  /// window is presumed dead and its entries become claimable
  /// (stale-lease takeover). Must be positive when shared_spill_dir.
  int64_t fleet_lease_ms = 30000;
  /// Run spill file writes on a background worker instead of under the
  /// cache mutex (Drain barriers at checkpoint/shutdown keep
  /// persistence semantics). Off = the historical synchronous spill.
  bool async_spill = true;
  /// Consult base-table zone maps to skip scan blocks that cannot match
  /// a query's range predicate. Pruning is conservative (never skips a
  /// possibly-matching block), so results are identical either way.
  bool enable_zone_map_pruning = true;
  /// Delta maintenance of cached results under append-only growth
  /// (recycler/delta.h): cached entries stale only by appended rows are
  /// served as UnionAll(cached as-of N, delta scan over [N, now)) — or an
  /// aggregate merge for decomposable Aggregate roots — and re-admitted
  /// at the new high-water mark. When off, an append hard-invalidates
  /// every dependent entry (the pre-delta behavior). Results are
  /// bit-identical either way.
  bool enable_delta_maintenance = true;
  /// Capture the post-rewrite plan's Explain text into
  /// QueryTrace::plan_explain for every query. Off by default: the text
  /// is only needed by trace recording / golden tests and rendering it
  /// per query is not free.
  bool capture_plan_explain = false;
};

/// The reuse decision the recycler made for one query, derived uniformly
/// from the QueryTrace counters (precedence: an aggregate merge outranks
/// the generic delta flag it also sets, delta outranks stitch, and so on
/// down to the plain exact hit). One value per query even when a plan
/// consumes several cached results: the most specialized mechanism wins,
/// which is also the one whose regression a golden diff should name.
enum class ReuseMode : uint8_t {
  kNone = 0,        ///< no cached result consumed (miss / cold start)
  kExact = 1,       ///< exact hot-cache hit
  kColdReadmit = 2, ///< exact hit served by re-admitting a cold-tier entry
  kSubsumption = 3, ///< single-superset subsumption rewrite
  kPartialStitch = 4, ///< stitched UnionAll of cached slices (+ delta scan)
  kDelta = 5,       ///< append-stale entry served as cached-prefix + delta
  kAggMerge = 6,    ///< delta served as an aggregate merge (no rescan)
};

/// Stable lower-case name for `mode` ("none", "exact", "cold-readmit",
/// "subsumption", "partial-stitch", "delta", "agg-merge"). Used verbatim
/// in trace files and golden snapshots — do not reword existing names.
const char* ReuseModeName(ReuseMode mode);

/// Inverse of ReuseModeName. Returns false when `name` is not a known
/// mode name (trace files from a newer engine may carry unknown modes).
bool ParseReuseMode(const std::string& name, ReuseMode* mode);

/// Derives the uniform reuse mode from a trace's counters (see ReuseMode
/// for the precedence). Exposed so replay tooling can classify traces
/// recorded before the reuse_mode field existed.
ReuseMode ReuseModeFromCounters(const struct QueryTrace& trace);

/// Per-query observability record (drives Fig. 9 traces and Fig. 10).
struct QueryTrace {
  int64_t query_id = 0;
  /// Identity of the prepared-statement template this query was bound
  /// from (0 = ad-hoc query). Copied from PlanNode::template_hash.
  uint64_t template_hash = 0;
  /// Prior executions of the same template (before this query).
  int64_t template_prior_runs = 0;
  int num_reuses = 0;              // cached results consumed
  int num_subsumption_reuses = 0;  // of which via subsumption
  int num_partial_reuses = 0;      // of which via partial-range stitching
  int num_delta_reuses = 0;        // of which via delta maintenance
  int num_agg_merges = 0;          // of which aggregate merges (no rescan)
  int num_cold_hits = 0;           // of which loaded from the cold tier
  int num_adoptions = 0;           // cold orphans adopted during Prepare
                                   // (restart images or fleet peers)
  int num_materialized = 0;        // results added to the cache
  int num_spec_aborted = 0;        // speculative stores that backed off
  int num_stalls = 0;              // waits on concurrent materializations
  bool used_proactive = false;     // a proactive rewrite was executed
  double match_ms = 0;             // matching + insertion cost (Fig. 10)
  double stall_ms = 0;
  int64_t graph_nodes_at_match = 0;
  /// Zone-map accounting for this query's scans: 1024-row blocks read
  /// vs. skipped (pruned + scanned = blocks the scans would touch
  /// without zone maps).
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  /// The chosen reuse mode, set uniformly by Recycler::Execute from the
  /// counters above (bypass-recycler traces stay kNone).
  ReuseMode reuse_mode = ReuseMode::kNone;
  /// Fingerprint of the plan as executed (post-canonicalization,
  /// PRE-rewrite): restart-stable identity of "the same statement".
  uint64_t plan_fingerprint = 0;
  /// Explain text of the POST-rewrite plan (CachedScans, stitched
  /// unions, delta windows visible). Only filled when
  /// RecyclerConfig::capture_plan_explain is on.
  std::string plan_explain;
};

/// Reuse accounting aggregated per prepared-statement template: the unit
/// the paper's workloads share at (§V — queries differing only in
/// constants). Keyed by PlanNode::template_hash.
struct TemplateStats {
  int64_t executions = 0;
  int64_t reuses = 0;
  int64_t subsumption_reuses = 0;
  int64_t partial_reuses = 0;
  int64_t materializations = 0;
  double total_ms = 0;
};

/// Aggregate counters across all queries (reported by benches).
struct RecyclerCounters {
  std::atomic<int64_t> queries{0};
  std::atomic<int64_t> reuses{0};
  std::atomic<int64_t> subsumption_reuses{0};
  std::atomic<int64_t> partial_reuses{0};
  std::atomic<int64_t> materializations{0};
  std::atomic<int64_t> spec_aborts{0};
  std::atomic<int64_t> stalls{0};
  std::atomic<int64_t> evictions{0};
  std::atomic<int64_t> invalidations{0};
  std::atomic<int64_t> proactive_rewrites{0};
  // --- delta maintenance ----------------------------------------------
  /// Append-stale entries served by a delta rewrite instead of eviction.
  std::atomic<int64_t> delta_hits{0};
  /// Of which aggregate merges (cached aggregate state + delta-window
  /// aggregation; zero base rows before the mark rescanned).
  std::atomic<int64_t> agg_merges{0};
  // --- cold tier -------------------------------------------------------
  /// Reuses served by loading a result from the cold tier.
  std::atomic<int64_t> cold_hits{0};
  /// Spill files written (evictions + shutdown checkpoint).
  std::atomic<int64_t> cold_spills{0};
  /// Cold entries promoted back into the hot cache.
  std::atomic<int64_t> cold_readmissions{0};
  /// Cold entries dropped by the tier's second-chance sweep.
  std::atomic<int64_t> cold_evictions{0};
  /// Corrupt/unreadable spill files dropped on access.
  std::atomic<int64_t> cold_load_errors{0};
  /// Restart orphans adopted by newly inserted graph nodes.
  std::atomic<int64_t> cold_adoptions{0};
  /// Cold entries consumed as a filtered slice (the selection ran on the
  /// encoded image; only in-range rows were materialized).
  std::atomic<int64_t> cold_slice_loads{0};
  /// Uncompressed vs. on-disk bytes of spill files written (ratio =
  /// column-compression win; raw == stored when compress_spill is off).
  std::atomic<int64_t> cold_spill_raw_bytes{0};
  std::atomic<int64_t> cold_spill_stored_bytes{0};
  // --- fleet tier ------------------------------------------------------
  /// RefreshFleet rounds completed.
  std::atomic<int64_t> fleet_refreshes{0};
  /// Peer spill files discovered and tracked as adoptable orphans.
  std::atomic<int64_t> fleet_peer_entries{0};
  /// Dead-owner entries claimed via stale-lease takeover.
  std::atomic<int64_t> fleet_lease_takeovers{0};
  // --- zone maps -------------------------------------------------------
  /// Scan blocks read vs. skipped via zone-map pruning, across all
  /// queries (base-table and cached-result scans alike).
  std::atomic<int64_t> blocks_scanned{0};
  std::atomic<int64_t> blocks_pruned{0};
};

class Recycler;

/// A query prepared for execution: the (possibly rewritten) plan plus the
/// store-operator configuration, and the bookkeeping needed to annotate
/// the recycler graph after execution.
class PreparedQuery {
 public:
  PreparedQuery();
  ~PreparedQuery();  // out-of-line: MNode is defined in recycler.cc

  const PlanPtr& plan() const { return plan_; }
  const std::map<const PlanNode*, StoreRequest>& stores() const {
    return stores_;
  }
  const QueryTrace& trace() const { return trace_; }

 private:
  friend class Recycler;
  struct MNode;  // matched-tree node (internal)

  PlanPtr plan_;
  std::map<const PlanNode*, StoreRequest> stores_;
  QueryTrace trace_;
  std::unique_ptr<MNode> matched_;  // matched tree over the ORIGINAL plan
  /// Executed plan node -> graph node (for post-run annotation).
  std::map<const PlanNode*, RGNode*> exec_to_gnode_;
  /// CachedScan plan node -> bcost of the subtree it replaced (Eq. 2
  /// bookkeeping: bcost must stay cost-from-base-tables).
  std::map<const PlanNode*, double> replaced_cost_;
  /// Nodes whose result this query loaded from the cold tier (a load may
  /// promote the node to hot before the reuse that consumes it is
  /// chosen, so cold-hit accounting goes through this set rather than
  /// the node's state at consumption time).
  std::unordered_set<const RGNode*> cold_loaded_;
  /// As-of snapshots of every base table the query reads, captured once
  /// at Prepare. Freshness checks compare cached-entry stamps against
  /// these, and execution pins scans to them (pins_), so one query sees
  /// one consistent version of each table even while appends land.
  std::map<std::string, TableSnapshot> snapshots_;
  Executor::TablePins pins_;
  int64_t query_id_ = 0;
};

/// The recycler facade.
///
/// Thread-safe: Prepare/OnComplete/Execute may be called from concurrent
/// query streams. Lock order (never acquired in reverse): graph mutex
/// (shared for matching/stats, exclusive for structure changes) ->
/// cache mutex -> mat shard mutex. A query whose plan fully matches the
/// graph never takes the exclusive lock. See graph.h and DESIGN.md
/// ("Concurrency model") for the full discipline.
class Recycler {
 public:
  Recycler(const Catalog* catalog, RecyclerConfig config);

  /// Checkpoints the hot cache into the cold tier (see
  /// CheckpointColdTier); sessions/streams must already be quiescent.
  ~Recycler();

  /// Full pipeline for one query: Prepare -> Execute -> OnComplete.
  /// `trace_out` (optional) receives the query's trace record.
  ExecResult Execute(const PlanPtr& query_plan, QueryTrace* trace_out = nullptr);

  /// Matches `query_plan` against the recycler graph, inserts unseen
  /// nodes, rewrites for reuse, and injects store operators.
  /// The input plan is not modified. Binds both input and output plans.
  std::unique_ptr<PreparedQuery> Prepare(PlanPtr query_plan);

  /// Post-execution hook: annotates graph nodes with measured statistics.
  void OnComplete(PreparedQuery* prepared, const ExecResult& result);

  /// Evicts every cached result that depends on `table` (update commit).
  void InvalidateTable(const std::string& table);

  /// Append hook (Database::AppendTable, after Catalog::AppendRows):
  /// walks every materialized entry depending on `table` and keeps the
  /// ones delta maintenance can refresh (stamped, same epoch, delta-
  /// eligible shape); everything else — unstamped legacy entries, nodes
  /// with joins or non-decomposable roots — is evicted as a hard
  /// invalidation. With enable_delta_maintenance off, behaves like
  /// InvalidateTable.
  void OnTableAppended(const std::string& table);

  /// Evicts everything from the cache (simulated refresh, Fig. 6).
  void FlushCache();

  /// Removes recycler-graph subtrees not accessed for `idle_epochs` query
  /// invocations (the paper's periodic truncation for production
  /// deployments, §II). Cached / in-flight nodes and shared prefixes that
  /// fresher plans still reference are kept. Returns nodes removed.
  /// Must be called at a quiescent point (no queries between Prepare and
  /// OnComplete): prepared queries hold raw graph-node references.
  int64_t TruncateGraph(int64_t idle_epochs);

  /// Benefit of a node per Eq. 1/2 with lazily-aged h. Caller must hold
  /// at least a shared lock on graph().mutex(); exposed for tests/benches.
  double BenefitOf(const RGNode* node) const;

  /// True cost (Eq. 2): bcost minus the bcost of direct materialized
  /// descendants. Caller holds a lock on graph().mutex().
  double TrueCost(const RGNode* node) const;

  /// Per-template reuse stats for `template_hash` (zeroes if unseen).
  TemplateStats TemplateStatsFor(uint64_t template_hash) const;

  /// Number of (cached slice, column) registrations in the partial-reuse
  /// interval index (diagnostics / tests).
  int64_t interval_index_entries() const;

  /// Writes a spill file for every hot-cache entry whose benefit clears
  /// the spill threshold and that has no live file yet (results already
  /// demoted once keep their file, so this skips them). Called by the
  /// destructor so a graceful shutdown persists accumulated coverage;
  /// exposed for tests/benches. Returns the number of files written.
  /// With async spill on, drains the spill queue before returning, so
  /// every checkpointed entry is on disk when this returns.
  int64_t CheckpointColdTier();

  /// Fleet tier: one manifest refresh round — discovers peers' new
  /// spills as adoptable orphans, applies fleet-wide purge records,
  /// performs stale-lease takeover, renews this instance's lease, and
  /// demotes nodes whose entries a purge retired. `new_peer_entries`
  /// (optional) receives the number of newly discovered peer entries.
  /// No-op OK on a private tier. Called periodically by the standby
  /// tailer (fleet/standby.h) and on demand by tests/benches. Must not
  /// be called while holding engine locks.
  Status RefreshFleet(int64_t* new_peer_entries = nullptr);

  /// Canonical, restart-stable fingerprint of the graph subtree rooted
  /// at `node`: node-id suffixes inside parameter fingerprints are
  /// rewritten to subtree-relative positions, so the same logical
  /// subtree produces the same key in every process. Cold-tier identity.
  /// Caller holds at least the shared lock on graph().mutex().
  std::string CanonicalSubtreeKey(const RGNode* node) const;

  /// Snapshot of all template-level stats (hash -> aggregate).
  std::map<uint64_t, TemplateStats> TemplateStatsSnapshot() const;

  RecyclerGraph& graph() { return graph_; }
  RecyclerCache& cache() { return cache_; }
  const ColdTier& cold_tier() const { return cold_tier_; }
  ColdTier& cold_tier() { return cold_tier_; }
  const RecyclerConfig& config() const { return config_; }
  const RecyclerCounters& counters() const { return counters_; }
  const Catalog* catalog() const { return catalog_; }

 private:
  using MNode = PreparedQuery::MNode;

  // --- matching & insertion (§III-A/B) --------------------------------
  std::unique_ptr<MNode> MatchTree(const PlanPtr& plan);
  void InsertMissing(MNode* m, PreparedQuery* prepared);
  RGNode* MatchOne(const PlanNode& node, const std::vector<RGNode*>& child_g,
                   const NameMap& mapping) const;
  RGNode* InsertOne(const PlanNode& node, const std::vector<RGNode*>& child_g,
                    NameMap* mapping, int64_t query_id);
  static std::string LeafKey(const PlanNode& node);

  // --- h maintenance (§III-C) ------------------------------------------
  void BumpImportance(MNode* m, bool has_materialized_ancestor);
  void UpdateHrOnMaterialize(RGNode* node);          // Eq. 3 / Algorithm 2
  void UpdateHrOnEvict(RGNode* node);                // Eq. 4
  void UpdateHrChildren(RGNode* node, double delta); // shared walker

  // --- rewriting --------------------------------------------------------
  PlanPtr RewriteForReuse(MNode* m, const PlanPtr& plan,
                          PreparedQuery* prepared);
  /// Append-stale exact match: builds the delta rewrite (stitch or
  /// aggregate merge) over `snapshot`, drops the superseded cache entry,
  /// and marks `m` stitched so InjectStores re-admits the refreshed
  /// result at the new high-water mark. Returns null when the entry is
  /// not delta-eligible (caller evicts and falls through to a miss).
  /// Caller must not hold the graph lock.
  PlanPtr TryDeltaRewrite(MNode* m, const PlanPtr& plan, RGNode* g,
                          TablePtr snapshot, const StaleWindow& window,
                          PreparedQuery* prepared);
  /// Drops a superseded (append-stale) entry from both tiers without
  /// eviction-side h/counter noise: its data lives on in the delta
  /// rewrite that replaces it. Caller must not hold the graph lock.
  void DropSupersededEntry(RGNode* g);
  /// Freshness of `node`'s materialized result against the query's
  /// pinned snapshots (stamps are read under the node's mat shard
  /// mutex). Caller may hold the shared graph lock but not cache_mu_.
  Freshness NodeFreshness(RGNode* node, const PreparedQuery* prepared,
                          StaleWindow* window);
  /// Satellite of cold-tier restart recovery: before a derived-reuse
  /// (subsumption/stitch) candidate scan over `child_gnode`'s parents,
  /// adopt any restart orphans those parents still have on disk so they
  /// are servable without an exact re-insertion. Caller must not hold
  /// the graph lock; takes it exclusive briefly when orphans exist.
  /// Adoptions are counted into `prepared`'s trace.
  void MaybeAdoptOrphanParents(RGNode* child_gnode, PreparedQuery* prepared);
  void InjectStores(MNode* m, PreparedQuery* prepared, bool in_store_chain);
  /// Shared admission decision for one store candidate: history-based
  /// materialization when measured (benefit admit at h >= 1, gated by
  /// `history_ok`), else a speculative store when `speculative_ok`.
  /// Returns true if a store was injected. Caller holds the shared
  /// graph lock.
  bool MaybeInjectStore(RGNode* g, const PlanNode* exec_plan, bool history_ok,
                        bool speculative_ok, PreparedQuery* prepared);
  StoreRequest MakeStoreRequest(RGNode* gnode, StoreMode mode,
                                PreparedQuery* prepared);
  /// Prepare tail (both mode paths): derives the uniform reuse_mode from
  /// the counters and captures the post-rewrite Explain when configured.
  void FinalizeTrace(PreparedQuery* prepared);

  // --- store callbacks --------------------------------------------------
  void OfferResult(RGNode* node, TablePtr result, double subtree_ms,
                   PreparedQuery* prepared);
  bool SpeculationKeepGoing(RGNode* node, const SpeculationEstimate& est);
  /// Publishes a MatState transition under the node's mat shard mutex and
  /// wakes stalled queries. `clear_cached` also drops the node's cached
  /// TablePtr inside the same critical section (eviction).
  void SetMatState(RGNode* node, MatState state, bool clear_cached = false);
  /// Claims the kNone -> kInFlight transition by CAS; the loser of a race
  /// simply skips its store. No wakeup needed: queries only stall on the
  /// transitions *out* of kInFlight, which SetMatState publishes.
  static bool TryClaimInFlight(RGNode* node);

  /// Estimated result size in bytes (measured when available, else
  /// cardinality x estimated row width; §III-C "size(R)").
  double EstimatedSize(const RGNode* node) const;

  /// Caller holds at least the shared graph lock AND cache_mu_.
  void EvictNode(RGNode* node, bool update_h);

  // --- cold tier --------------------------------------------------------
  /// Handles one hot-cache eviction: Eq. 4 h-update, then spill-or-drop —
  /// a spilled victim flips to kCold and keeps its interval-index
  /// registrations (cold slices still stitch); a dropped one goes to
  /// kNone. Caller holds at least the shared graph lock AND cache_mu_.
  void HandleHotEviction(RGNode* victim);

  /// Writes `node`'s result to the cold tier when the tier is enabled
  /// and the benefit clears the spill threshold (no-op true when a live
  /// file already exists). Caller holds at least the shared graph lock
  /// AND cache_mu_.
  bool MaybeSpill(RGNode* node);

  /// Demotes a node whose cold entry the tier's sweep dropped: a kCold
  /// node loses its registrations and becomes kNone; a node that is
  /// (also) hot keeps its hot state. Caller holds the shared graph lock
  /// AND cache_mu_.
  void OnColdEntryDropped(RGNode* node);

  /// Pinned snapshot of `node`'s result from either tier: the hot table
  /// when kCached, else a lazy re-admission from the cold tier (load ->
  /// promote-if-admittable -> serve). nullptr when the node has no
  /// result in either tier. A load is recorded in `prepared`'s
  /// cold-loaded set; `*from_cold` reports whether THIS query pulled the
  /// node from disk (now or earlier in its rewrite), so call sites count
  /// cold hits only for reuses actually consumed. Caller must NOT hold
  /// the graph lock (promotion acquires it shared).
  TablePtr SnapshotOrReadmit(RGNode* node, PreparedQuery* prepared,
                             bool* from_cold);

  /// The cold half of SnapshotOrReadmit.
  TablePtr ReadmitCold(RGNode* node);

  /// SnapshotOrReadmit variant for subsumption/stitch candidates: a hot
  /// candidate returns its snapshot as usual, but a kCold candidate with
  /// a usable range spec (`spec` non-null and its mapped_column among the
  /// node's outputs) is loaded as a *filtered slice* — the selection runs
  /// on the encoded spill image and only in-range rows materialize. The
  /// slice is NOT promoted to the hot tier (it is a partial result) and
  /// the entry stays kCold. Sound for derived reuse only: rows the filter
  /// removes are rows the rewrite's clip/residual compensation would
  /// remove anyway. Falls back to SnapshotOrReadmit when slicing is
  /// impossible. Caller must NOT hold the graph lock.
  TablePtr SnapshotOrLoadSlice(RGNode* node, const RangeSpec* spec,
                               PreparedQuery* prepared, bool* from_cold);

  /// Probes the cold tier's orphan map for a restart or fleet-peer image
  /// of the just-inserted `node` and adopts it (re-seed stats, kCold
  /// state, interval registration). Returns true on adoption. Caller
  /// holds the exclusive graph lock.
  bool TryAdoptOrphan(RGNode* node);

  /// Registers `node`'s range slices in the interval index right after
  /// cache admission. Caller holds at least the shared graph lock AND
  /// cache_mu_ (the index tracks cache residency).
  void RegisterIntervals(RGNode* node);

  const Catalog* catalog_;
  RecyclerConfig config_;
  RecyclerGraph graph_;
  /// Guards cache_ (admission, eviction planning, LRU touches) and makes
  /// admit-then-publish atomic with respect to concurrent evictions.
  /// Decoupled from the graph mutex so reuse lookups and stat updates on
  /// other streams never serialize behind replacement decisions.
  /// Lock order: graph mutex -> cache_mu_ -> mat shard mutex.
  mutable std::mutex cache_mu_;
  RecyclerCache cache_;
  /// Partial-reuse interval index over cached range-selection slices.
  /// Guarded by cache_mu_: it changes exactly when cache residency does
  /// (cold entries count as resident: their slices still stitch).
  IntervalIndex interval_index_;
  /// On-disk cold tier below the hot cache. Internally synchronized
  /// (leaf mutex); ordered after graph/cache, see DESIGN.md "Cold tier".
  ColdTier cold_tier_;
  /// Guards template_stats_ (independent of the graph/cache locks; taken
  /// last and never while holding them longer than the map update).
  mutable std::mutex template_mu_;
  std::map<uint64_t, TemplateStats> template_stats_;
  Executor executor_;
  RecyclerCounters counters_;
  std::atomic<int64_t> next_query_id_{1};
};

}  // namespace recycledb
