// The cold tier: a size-bounded on-disk spill directory below the
// in-memory benefit cache.
//
// When the hot cache evicts a result whose benefit still exceeds the
// configured spill threshold, the recycler serializes it into a spill
// file (storage/spill_file.h) and flips the node to MatState::kCold; the
// node stays registered in the graph and the interval index, so exact,
// subsumption and partial-stitch lookups keep finding it and lazily
// re-admit it (load from disk -> promote to hot -> serve) instead of
// re-executing the subtree. On process start the tier scans its
// directory and keeps every readable entry as an *orphan* keyed by the
// canonical subtree key; newly inserted graph nodes probe that map and
// adopt matching orphans, which is how a restart warms up from disk.
//
// Replacement is second-chance at a byte cap: entries sit on a clock
// list, loads set their reference bit, and an over-cap spill sweeps the
// clock — referenced entries get one more round, unreferenced ones are
// deleted. Files survive promotion back to the hot tier (results are
// immutable, so the image never goes stale), which makes later
// demotions free and lets a shutdown checkpoint skip already-spilled
// entries; invalidation is the only path that must delete files.
//
// Thread-safety: internally synchronized by one leaf mutex, acquired
// after the recycler's graph/cache locks and never held across calls
// back into them (lock order: graph mutex -> cache mutex -> cold-tier
// mutex, with the mat shard mutex independent below the cache mutex;
// see DESIGN.md "Cold tier"). Spill and load perform file I/O under the
// mutex: both are slow paths by definition (an eviction or a miss that
// would otherwise re-execute a subtree).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/spill_file.h"

namespace recycledb {

struct RGNode;

/// Point-in-time snapshot of the tier (diagnostics, tests, benches).
struct ColdTierStats {
  int64_t entries = 0;        // live + orphan
  int64_t orphans = 0;        // entries not yet adopted by a graph node
  int64_t used_bytes = 0;
  int64_t capacity_bytes = 0;
  /// Uncompressed size of the stored entries (what used_bytes would be
  /// without column compression; equals used_bytes for v1 files).
  int64_t raw_bytes = 0;
};

class ColdTier {
 public:
  ColdTier() = default;

  // Non-copyable (owns file-backed state).
  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  /// Validates that `dir` can be created and written (probe file). Used
  /// by Database::Open so an unusable spill_dir surfaces as a
  /// recoverable, actionable Status before the engine is constructed.
  static Status ValidateSpillDir(const std::string& dir);

  /// Opens the tier over `dir` with a byte cap: creates the directory,
  /// deletes stale .tmp files, and scans *.spill into the orphan map
  /// (unreadable or duplicate-key files are deleted, newest key wins).
  /// An empty `dir` leaves the tier disabled and returns OK.
  Status Open(const std::string& dir, int64_t capacity_bytes);

  bool enabled() const { return enabled_; }

  /// Whether Spill compresses columns (format v2 codec selection). Set
  /// once at engine construction, before any Spill call.
  void set_compress(bool v) { compress_ = v; }
  bool compress() const { return compress_; }

  /// Cheap pre-check for the adoption probe on graph insertion.
  bool has_orphans() const {
    return num_orphans_.load(std::memory_order_relaxed) > 0;
  }

  /// True when `node` has a live spill file.
  bool Has(const RGNode* node) const;

  /// On-disk and uncompressed sizes of `node`'s live entry; false when
  /// it has none (spill-byte accounting in the recycler's counters).
  bool EntrySizes(const RGNode* node, int64_t* stored_bytes,
                  int64_t* raw_bytes) const;

  /// Writes `table` as `node`'s spill file (no-op true if one is already
  /// live). Runs the second-chance sweep to fit the byte cap first;
  /// evicted entries that belong to live nodes are appended to
  /// `dropped_nodes` so the caller can demote their graph state. Returns
  /// false when the result cannot fit (larger than the cap, or the sweep
  /// could not free enough) or the write fails — the caller degrades to
  /// memory-only behavior.
  bool Spill(const RGNode* node, const std::string& canon_key,
             const Table& table, const SpillFileMeta& meta,
             std::vector<const RGNode*>* dropped_nodes);

  /// Loads `node`'s spilled result and sets its second-chance bit.
  /// NotFound when the node has no live entry (e.g. it was swept between
  /// the state check and the load); other errors mean a corrupt file —
  /// the caller should Remove(node) and treat it as a miss.
  Status Load(const RGNode* node, TablePtr* out);

  /// Like Load, but materializes only the rows whose value in column
  /// `filter_column` falls in `range` (ReadSpillTableFiltered: the
  /// selection runs on the encoded image before any decode). Sets the
  /// second-chance bit on success. The slice is a partial result and
  /// must never be promoted to the hot tier or re-spilled by the caller.
  /// Fails recoverably for v1 files (no encoded image to filter).
  Status LoadSlice(const RGNode* node, int filter_column,
                   const ColumnInterval& range, TablePtr* out);

  /// Claims the orphan under `canon_key` for `node` (making it live) and
  /// returns its metadata. False when no orphan has that key.
  bool AdoptOrphan(const std::string& canon_key, const RGNode* node,
                   SpillFileMeta* meta, int64_t* bytes);

  /// Deletes `node`'s entry and file (invalidation, corrupt file).
  void Remove(const RGNode* node);

  /// Deletes every entry (live or orphan) whose subtree reads `table`
  /// (update invalidation: stale cold results must never be re-admitted).
  /// Live nodes whose entries were purged are appended to
  /// `dropped_nodes` for graph-state demotion by the caller.
  void PurgeTable(const std::string& table,
                  std::vector<const RGNode*>* dropped_nodes);

  /// Append-time variant of PurgeTable: deletes only entries over
  /// `table` WITHOUT row stamps (v1/v2 images — indistinguishable from
  /// stale under appends). Stamped (v3) entries survive: orphans
  /// re-anchor their marks on adoption, and live entries are judged by
  /// the recycler against their in-memory stamps.
  void PurgeUnversionedOrphans(const std::string& table,
                               std::vector<const RGNode*>* dropped_nodes);

  ColdTierStats Stats() const;

 private:
  struct Rec {
    std::string path;
    std::string canon_key;
    int64_t bytes = 0;
    bool second_chance = false;
    /// Owning graph node; nullptr for orphans awaiting adoption.
    const RGNode* node = nullptr;
    SpillFileMeta meta;  // header copy (adoption re-seeds node stats)
  };
  using ClockIt = std::list<Rec>::iterator;

  /// Erases `it` from every map, deletes its file, adjusts accounting.
  /// Caller holds mu_.
  void EvictRec(ClockIt it, std::vector<const RGNode*>* dropped_nodes);

  /// Second-chance sweep until `need_bytes` fit under the cap. Caller
  /// holds mu_. Returns false when the clock ran dry without fitting.
  bool SweepToFit(int64_t need_bytes,
                  std::vector<const RGNode*>* dropped_nodes);

  std::string FilePath(uint64_t name_hash) const;

  mutable std::mutex mu_;
  bool enabled_ = false;
  bool compress_ = true;
  std::string dir_;
  int64_t capacity_bytes_ = 0;
  int64_t used_bytes_ = 0;
  uint64_t next_file_id_ = 0;
  /// Clock order (front = next sweep victim).
  std::list<Rec> clock_;
  std::unordered_map<const RGNode*, ClockIt> live_;
  std::unordered_map<std::string, ClockIt> by_key_;
  std::atomic<int64_t> num_orphans_{0};
};

}  // namespace recycledb
