// The cold tier: a size-bounded on-disk spill directory below the
// in-memory benefit cache.
//
// When the hot cache evicts a result whose benefit still exceeds the
// configured spill threshold, the recycler serializes it into a spill
// file (storage/spill_file.h) and flips the node to MatState::kCold; the
// node stays registered in the graph and the interval index, so exact,
// subsumption and partial-stitch lookups keep finding it and lazily
// re-admit it (load from disk -> promote to hot -> serve) instead of
// re-executing the subtree. On process start the tier scans its
// directory and keeps every readable entry as an *orphan* keyed by the
// canonical subtree key; newly inserted graph nodes probe that map and
// adopt matching orphans, which is how a restart warms up from disk.
//
// Replacement is second-chance at a byte cap: entries sit on a clock
// list, loads set their reference bit, and an over-cap spill sweeps the
// clock — referenced entries get one more round, unreferenced ones are
// deleted. Files survive promotion back to the hot tier (results are
// immutable, so the image never goes stale), which makes later
// demotions free and lets a shutdown checkpoint skip already-spilled
// entries; invalidation is the only path that must delete files.
//
// Fleet (shared) mode lets several engine processes share one
// directory. An ownership manifest (fleet/manifest.h) records which
// instance owns each file plus liveness leases; writers serialize
// manifest read-modify-write cycles under a flock (fleet/lock_file.h)
// while readers stay lock-free on the immutable-file + checksum
// discipline. Peer entries are tracked as *peer orphans*: adoptable by
// canonical key exactly like restart orphans, but never deleted, never
// swept, and never counted against this instance's byte cap — eviction
// rights stay with the owner. RefreshPeers() tails the manifest for new
// peer spills, fleet-wide purge records, and stale-lease takeover of a
// crashed owner's files. Read-only mode (a standby on a read-only
// mount) opens adopt-only: every file is a peer orphan and nothing is
// ever written.
//
// Spill I/O runs on a background worker when async mode is on
// (ColdTierOptions::async_spill): SpillAsync enqueues the pinned result
// snapshot and returns immediately, Load serves still-pending entries
// straight from that snapshot (no miss window), and Drain() is the
// barrier checkpoints and shutdown use. A failed or swept-while-pending
// spill reports the node through the drop callback, which runs with no
// cold-tier lock held so the recycler can take its graph/cache locks to
// demote.
//
// Thread-safety: internally synchronized by one leaf mutex, acquired
// after the recycler's graph/cache locks and never held across calls
// back into them (lock order: graph mutex -> cache mutex -> cold-tier
// mutex, with the mat shard mutex independent below the cache mutex;
// see DESIGN.md "Cold tier"). Synchronous spill and load perform file
// I/O under the mutex: both are slow paths by definition (an eviction
// or a miss that would otherwise re-execute a subtree).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "fleet/manifest.h"
#include "storage/spill_file.h"

namespace recycledb {

struct RGNode;

/// Point-in-time snapshot of the tier (diagnostics, tests, benches).
struct ColdTierStats {
  int64_t entries = 0;        // live + orphan, owned + peer
  int64_t orphans = 0;        // entries not yet adopted by a graph node
  int64_t used_bytes = 0;     // owned bytes only (peer files are the
                              // owner's budget)
  int64_t capacity_bytes = 0;
  /// Uncompressed size of the stored entries (what used_bytes would be
  /// without column compression; equals used_bytes for v1 files).
  int64_t raw_bytes = 0;
  /// Fleet mode: entries owned by other instances (tracked, adoptable,
  /// never swept locally).
  int64_t peer_entries = 0;
  /// Async spills accepted but not yet committed to disk.
  int64_t pending_spills = 0;
};

/// How a ColdTier opens its directory (built by the recycler from
/// RecyclerConfig; defaults preserve the private single-process tier).
struct ColdTierOptions {
  std::string dir;
  int64_t capacity_bytes = 0;
  /// Fleet mode: coordinate with other processes through the ownership
  /// manifest + flock.
  bool shared = false;
  /// Adopt-only: never create, delete or lock anything in the directory
  /// (standby on a read-only mount). Implies no spills.
  bool read_only = false;
  /// This process's identity in the manifest. Required non-empty when
  /// shared and writable.
  std::string instance_id;
  /// Liveness lease duration; an instance whose lease expires forfeits
  /// its entries to stale-lease takeover.
  int64_t lease_ms = 30000;
  /// Run spill file writes on a background worker (SpillAsync).
  bool async_spill = false;
};

class ColdTier {
 public:
  ColdTier() = default;
  ~ColdTier();

  // Non-copyable (owns file-backed state).
  ColdTier(const ColdTier&) = delete;
  ColdTier& operator=(const ColdTier&) = delete;

  /// Validates that `dir` can be created and written (probe file). Used
  /// by Database::Open so an unusable spill_dir surfaces as a
  /// recoverable, actionable Status before the engine is constructed.
  static Status ValidateSpillDir(const std::string& dir);

  /// Read-only variant: validates that `dir` exists and is a readable
  /// directory WITHOUT creating or writing anything (adopt-only opens
  /// on a read-only mount must probe without side effects).
  static Status ValidateSpillDirReadable(const std::string& dir);

  /// Opens the tier over `options.dir` with a byte cap: creates the
  /// directory, deletes stale .tmp files, and scans *.spill into the
  /// orphan map (unreadable or duplicate-key files are deleted, newest
  /// key wins). In shared mode the manifest decides which scanned files
  /// are claimable (unlisted, unowned, ours, or a dead owner's) versus
  /// peer-owned; claims and this instance's lease are written back. An
  /// empty dir leaves the tier disabled and returns OK.
  Status Open(const ColdTierOptions& options);

  /// Back-compat convenience: private single-process tier.
  Status Open(const std::string& dir, int64_t capacity_bytes);

  bool enabled() const { return enabled_; }
  bool read_only() const { return read_only_; }
  const std::string& instance_id() const { return instance_; }

  /// Whether Spill compresses columns (format v2 codec selection). Set
  /// once at engine construction, before any Spill call.
  void set_compress(bool v) { compress_ = v; }
  bool compress() const { return compress_; }

  /// Callback for entries dropped off the recycler's sync paths (async
  /// spill failures and async-commit sweeps): invoked with NO cold-tier
  /// lock held, so it may take the graph/cache locks to demote the
  /// nodes. Set once at engine construction.
  void set_drop_callback(
      std::function<void(const std::vector<const RGNode*>&)> cb) {
    drop_cb_ = std::move(cb);
  }

  /// Callback invoked once per committed spill file with its on-disk
  /// and uncompressed sizes (counter accounting; must only touch
  /// atomics — it can run under the tier mutex on the sync path).
  void set_spilled_callback(
      std::function<void(const RGNode*, int64_t, int64_t)> cb) {
    spilled_cb_ = std::move(cb);
  }

  /// Cheap pre-check for the adoption probe on graph insertion.
  bool has_orphans() const {
    return num_orphans_.load(std::memory_order_relaxed) > 0;
  }

  /// True when `node` has a live spill file or a pending async spill.
  bool Has(const RGNode* node) const;

  /// On-disk and uncompressed sizes of `node`'s committed entry; false
  /// when it has none (spill-byte accounting in the recycler's
  /// counters). Pending async spills report false.
  bool EntrySizes(const RGNode* node, int64_t* stored_bytes,
                  int64_t* raw_bytes) const;

  /// Writes `table` as `node`'s spill file (no-op true if one is already
  /// live). Runs the second-chance sweep to fit the byte cap first;
  /// evicted entries that belong to live nodes are appended to
  /// `dropped_nodes` so the caller can demote their graph state. Returns
  /// false when the result cannot fit (larger than the cap, or the sweep
  /// could not free enough) or the write fails — the caller degrades to
  /// memory-only behavior.
  bool Spill(const RGNode* node, const std::string& canon_key,
             const Table& table, const SpillFileMeta& meta,
             std::vector<const RGNode*>* dropped_nodes);

  /// Async variant: enqueues the pinned `snapshot` for the background
  /// worker and returns immediately (true = accepted; the entry serves
  /// loads from the snapshot until the file commits). Failures and
  /// commit-time sweep victims are reported through the drop callback.
  bool SpillAsync(const RGNode* node, const std::string& canon_key,
                  TablePtr snapshot, const SpillFileMeta& meta);

  /// Blocks until the async spill queue is empty and the worker idle
  /// (checkpoint/shutdown barrier; also used by deterministic tests).
  /// Callers must NOT hold the recycler's cache mutex: the worker's
  /// drop callback acquires it. No-op when async mode is off.
  void Drain();

  /// Loads `node`'s spilled result and sets its second-chance bit; a
  /// pending async spill is served directly from its in-memory
  /// snapshot. NotFound when the node has no live entry (e.g. it was
  /// swept between the state check and the load); other errors mean a
  /// corrupt file — the caller should Remove(node) and treat it as a
  /// miss.
  Status Load(const RGNode* node, TablePtr* out);

  /// Like Load, but materializes only the rows whose value in column
  /// `filter_column` falls in `range` (ReadSpillTableFiltered: the
  /// selection runs on the encoded image before any decode). Sets the
  /// second-chance bit on success. The slice is a partial result and
  /// must never be promoted to the hot tier or re-spilled by the caller.
  /// Fails recoverably for v1 files (no encoded image to filter) and
  /// for pending async spills (the caller falls back to the full
  /// in-memory snapshot).
  Status LoadSlice(const RGNode* node, int filter_column,
                   const ColumnInterval& range, TablePtr* out);

  /// Claims the orphan under `canon_key` for `node` (making it live) and
  /// returns its metadata. False when no orphan has that key. Adopting
  /// a peer orphan never takes ownership of the file: the entry serves
  /// reads here while eviction rights stay with the owning instance.
  bool AdoptOrphan(const std::string& canon_key, const RGNode* node,
                   SpillFileMeta* meta, int64_t* bytes);

  /// Deletes `node`'s entry and file (invalidation, corrupt file); a
  /// pending async spill is canceled. Peer entries are only forgotten
  /// locally — the owner keeps the file.
  void Remove(const RGNode* node);

  /// Deletes every entry (live or orphan) whose subtree reads `table`
  /// (update invalidation: stale cold results must never be re-admitted).
  /// Live nodes whose entries were purged are appended to
  /// `dropped_nodes` for graph-state demotion by the caller. In shared
  /// mode a purge record is published so peers retire their copies at
  /// their next refresh.
  void PurgeTable(const std::string& table,
                  std::vector<const RGNode*>* dropped_nodes);

  /// Append-time variant of PurgeTable: deletes only entries over
  /// `table` WITHOUT row stamps (v1/v2 images — indistinguishable from
  /// stale under appends). Stamped (v3) entries survive: orphans
  /// re-anchor their marks on adoption, and live entries are judged by
  /// the recycler against their in-memory stamps.
  void PurgeUnversionedOrphans(const std::string& table,
                               std::vector<const RGNode*>* dropped_nodes);

  /// Fleet refresh: lock-free manifest read, then (a) applies purge
  /// records published since the last refresh, (b) tracks new peer
  /// entries as adoptable peer orphans, (c) drops peer entries their
  /// owner retired, (d) claims entries whose owner's lease expired
  /// (stale-lease takeover; skipped in read-only mode), and (e) renews
  /// this instance's lease. Live nodes dropped by (a)/(c) are appended
  /// to `dropped_nodes`. Returns the number of newly discovered peer
  /// entries via `new_peer_entries` (optional). No-op OK when the tier
  /// is private.
  Status RefreshPeers(std::vector<const RGNode*>* dropped_nodes,
                      int64_t* new_peer_entries = nullptr,
                      int64_t* lease_takeovers = nullptr);

  ColdTierStats Stats() const;

 private:
  struct Rec {
    std::string path;
    std::string canon_key;
    int64_t bytes = 0;
    bool second_chance = false;
    /// This instance owns the file (may delete/sweep it and lists it in
    /// the manifest). Peer entries are read-only here.
    bool owned = true;
    /// Manifest sequence at admission (vs. purge records); 0 until the
    /// first manifest sync in shared mode.
    int64_t admit_seq = 0;
    /// Owning graph node; nullptr for orphans awaiting adoption.
    const RGNode* node = nullptr;
    SpillFileMeta meta;  // header copy (adoption re-seeds node stats)
  };
  using ClockIt = std::list<Rec>::iterator;

  /// A spill accepted by SpillAsync but not yet committed. The snapshot
  /// pins the result so loads can serve it while the write is in
  /// flight.
  struct PendingSpill {
    const RGNode* node = nullptr;
    std::string canon_key;
    TablePtr snapshot;
    SpillFileMeta meta;
    bool canceled = false;  // Remove/purge raced the worker
  };
  using PendingIt = std::list<PendingSpill>::iterator;

  /// Erases `it` from every map, deletes its file (owned entries only),
  /// adjusts accounting. Caller holds mu_.
  void EvictRec(ClockIt it, std::vector<const RGNode*>* dropped_nodes);

  /// Second-chance sweep over OWNED entries until `need_bytes` fit under
  /// the cap. Caller holds mu_. Returns false when the clock ran dry
  /// without fitting.
  bool SweepToFit(int64_t need_bytes,
                  std::vector<const RGNode*>* dropped_nodes);

  /// Commits one written spill file into the maps (dedupe, sweep, link).
  /// Shared tail of Spill and the async worker. Caller holds mu_.
  bool CommitSpillLocked(const RGNode* node, const std::string& canon_key,
                         const std::string& path, int64_t bytes,
                         SpillFileMeta stored,
                         std::vector<const RGNode*>* dropped_nodes);

  /// Shared-mode manifest read-modify-write under the flock: renews this
  /// instance's lease, republishes the owned entry set, appends pending
  /// purge records, and prunes dead-owner entries whose file is gone.
  /// Caller holds mu_; no-op outside writable shared mode.
  void SyncManifestLocked();

  /// Inserts a scanned/discovered file as an orphan Rec. Caller holds
  /// mu_.
  ClockIt AddOrphanLocked(const std::string& path, int64_t bytes,
                          SpillFileMeta meta, bool owned, int64_t admit_seq);

  /// Applies one manifest purge record to local state. Caller holds mu_.
  void ApplyPurgeLocked(const fleet::ManifestPurge& purge,
                        std::vector<const RGNode*>* dropped_nodes);

  void WorkerLoop();

  std::string FilePath(uint64_t name_hash);

  mutable std::mutex mu_;
  bool enabled_ = false;
  bool compress_ = true;
  bool shared_ = false;
  bool read_only_ = false;
  std::string instance_;
  int64_t lease_ms_ = 30000;
  std::string dir_;
  int64_t capacity_bytes_ = 0;
  int64_t used_bytes_ = 0;
  uint64_t next_file_id_ = 0;
  /// Clock order over OWNED entries (front = next sweep victim).
  std::list<Rec> clock_;
  /// Peer-owned entries (fleet mode): adoptable, never swept or deleted.
  std::list<Rec> peers_;
  std::unordered_map<const RGNode*, ClockIt> live_;
  std::unordered_map<std::string, ClockIt> by_key_;
  std::atomic<int64_t> num_orphans_{0};

  // --- fleet state (guarded by mu_) ------------------------------------
  /// Manifest seq/purge high-water marks already applied locally.
  int64_t last_seen_seq_ = 0;
  int64_t last_applied_purge_seq_ = 0;
  /// Our lease expiry as of the last manifest write (renew-ahead check).
  int64_t lease_expiry_ms_ = 0;
  /// Owned-entry set changed since the last manifest sync.
  bool manifest_dirty_ = false;
  /// Purges issued locally, to publish at the next manifest sync.
  std::vector<fleet::ManifestPurge> pending_purges_;

  // --- async spill queue (guarded by mu_) ------------------------------
  bool async_ = false;
  bool stop_worker_ = false;
  bool worker_busy_ = false;
  std::list<PendingSpill> pending_;
  std::unordered_map<const RGNode*, PendingIt> pending_by_node_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::thread worker_;

  std::function<void(const std::vector<const RGNode*>&)> drop_cb_;
  std::function<void(const RGNode*, int64_t, int64_t)> spilled_cb_;
};

}  // namespace recycledb
