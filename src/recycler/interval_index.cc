#include "recycler/interval_index.h"

#include <algorithm>

#include "common/macros.h"

namespace recycledb {

void IntervalIndex::Insert(int64_t child_id, const std::string& column,
                           Entry entry) {
  Key key{child_id, column};
  std::vector<Entry>& bucket = buckets_[key];
  for (const Entry& e : bucket) {
    if (e.node == entry.node) return;  // already registered under this key
  }
  auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const Entry& a, const Entry& b) {
        return LoTighter(b.range.lo, a.range.lo);  // ascending by lo
      });
  registered_[entry.node].push_back(key);
  bucket.insert(pos, std::move(entry));
  ++num_entries_;
}

void IntervalIndex::Remove(const RGNode* node) {
  auto it = registered_.find(node);
  if (it == registered_.end()) return;
  for (const Key& key : it->second) {
    auto bit = buckets_.find(key);
    if (bit == buckets_.end()) continue;
    std::vector<Entry>& bucket = bit->second;
    for (auto e = bucket.begin(); e != bucket.end(); ++e) {
      if (e->node == node) {
        bucket.erase(e);
        --num_entries_;
        break;
      }
    }
    if (bucket.empty()) buckets_.erase(bit);
  }
  registered_.erase(it);
}

std::vector<IntervalIndex::Entry> IntervalIndex::Overlapping(
    int64_t child_id, const std::string& column,
    const ColumnInterval& query) const {
  std::vector<Entry> out;
  auto it = buckets_.find(Key{child_id, column});
  if (it == buckets_.end()) return out;
  for (const Entry& e : it->second) {
    // Bucket is sorted ascending by lo: once an entry starts past the
    // query's upper end, every later entry does too.
    if (!query.hi.unbounded &&
        IntervalEmpty({e.range.lo, query.hi})) {
      break;
    }
    if (Overlaps(e.range, query)) out.push_back(e);
  }
  return out;
}

}  // namespace recycledb
