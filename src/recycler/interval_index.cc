#include "recycler/interval_index.h"

#include <algorithm>

#include "common/macros.h"

namespace recycledb {

bool LoTighter(const RangeBound& a, const RangeBound& b) {
  if (a.unbounded) return false;
  if (b.unbounded) return true;
  int cmp = DatumCompare(a.value, b.value);
  if (cmp != 0) return cmp > 0;
  return !a.inclusive && b.inclusive;
}

bool HiTighter(const RangeBound& a, const RangeBound& b) {
  if (a.unbounded) return false;
  if (b.unbounded) return true;
  int cmp = DatumCompare(a.value, b.value);
  if (cmp != 0) return cmp < 0;
  return !a.inclusive && b.inclusive;
}

RangeBound TighterLo(const RangeBound& a, const RangeBound& b) {
  return LoTighter(a, b) ? a : b;
}

RangeBound TighterHi(const RangeBound& a, const RangeBound& b) {
  return HiTighter(a, b) ? a : b;
}

bool IntervalEmpty(const ColumnInterval& i) {
  if (i.lo.unbounded || i.hi.unbounded) return false;
  int cmp = DatumCompare(i.lo.value, i.hi.value);
  if (cmp != 0) return cmp > 0;
  return !(i.lo.inclusive && i.hi.inclusive);
}

bool Overlaps(const ColumnInterval& a, const ColumnInterval& b) {
  return !IntervalEmpty(Intersect(a, b));
}

ColumnInterval Intersect(const ColumnInterval& a, const ColumnInterval& b) {
  return {TighterLo(a.lo, b.lo), TighterHi(a.hi, b.hi)};
}

RangeBound ComplementHi(const RangeBound& lo) {
  RDB_CHECK(!lo.unbounded);
  return {false, lo.value, !lo.inclusive};
}

RangeBound ComplementLo(const RangeBound& hi) {
  RDB_CHECK(!hi.unbounded);
  return {false, hi.value, !hi.inclusive};
}

namespace {

/// Classifies `conjunct` as a range comparison between one column and one
/// literal. Normalizes `lit op col` to the column-first form.
bool AsRangeConjunct(const ExprPtr& conjunct, std::string* column,
                     bool* is_lower, RangeBound* bound) {
  if (conjunct->kind() != ExprKind::kCompare) return false;
  CompareOp op = conjunct->compare_op();
  if (op == CompareOp::kEq || op == CompareOp::kNe) return false;
  const ExprPtr& l = conjunct->children()[0];
  const ExprPtr& r = conjunct->children()[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    col = l.get();
    lit = r.get();
  } else if (l->kind() == ExprKind::kLiteral &&
             r->kind() == ExprKind::kColumnRef) {
    col = r.get();
    lit = l.get();
    flipped = true;  // `lit op col` reads as `col op' lit` with op mirrored
  } else {
    return false;
  }
  if (std::holds_alternative<std::monostate>(lit->literal()) ||
      std::holds_alternative<bool>(lit->literal())) {
    return false;  // no ordering worth stitching on
  }
  if (flipped) {
    switch (op) {
      case CompareOp::kLt: op = CompareOp::kGt; break;
      case CompareOp::kLe: op = CompareOp::kGe; break;
      case CompareOp::kGt: op = CompareOp::kLt; break;
      case CompareOp::kGe: op = CompareOp::kLe; break;
      default: return false;
    }
  }
  *column = col->column_name();
  bound->unbounded = false;
  bound->value = lit->literal();
  bound->inclusive = op == CompareOp::kLe || op == CompareOp::kGe;
  *is_lower = op == CompareOp::kGt || op == CompareOp::kGe;
  return true;
}

}  // namespace

std::vector<RangeSpec> ExtractRangeSpecs(const ExprPtr& pred,
                                         const NameMap* mapping) {
  std::vector<RangeSpec> out;
  if (pred == nullptr) return out;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(pred);

  // Pass 1: fold each column's range conjuncts into one interval and
  // remember which conjunct positions contributed to which column.
  struct PerColumn {
    ColumnInterval range;
    std::vector<size_t> positions;
  };
  std::map<std::string, PerColumn> ranged;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    std::string column;
    bool is_lower = false;
    RangeBound bound;
    if (!AsRangeConjunct(conjuncts[i], &column, &is_lower, &bound)) continue;
    PerColumn& pc = ranged[column];
    if (is_lower) {
      pc.range.lo = TighterLo(pc.range.lo, bound);
    } else {
      pc.range.hi = TighterHi(pc.range.hi, bound);
    }
    pc.positions.push_back(i);
  }

  // Pass 2: one spec per ranged column; everything else is "others".
  for (auto& [column, pc] : ranged) {
    if (IntervalEmpty(pc.range)) continue;  // contradictory predicate
    RangeSpec spec;
    spec.column = column;
    if (mapping != nullptr) {
      auto it = mapping->find(column);
      spec.mapped_column = it == mapping->end() ? column : it->second;
    } else {
      spec.mapped_column = column;
    }
    spec.range = pc.range;
    std::set<size_t> mine(pc.positions.begin(), pc.positions.end());
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (mine.count(i) > 0) continue;
      spec.others.push_back(conjuncts[i]);
      spec.other_fps.insert(conjuncts[i]->Fingerprint(mapping));
    }
    out.push_back(std::move(spec));
  }
  return out;
}

void IntervalIndex::Insert(int64_t child_id, const std::string& column,
                           Entry entry) {
  Key key{child_id, column};
  std::vector<Entry>& bucket = buckets_[key];
  for (const Entry& e : bucket) {
    if (e.node == entry.node) return;  // already registered under this key
  }
  auto pos = std::upper_bound(
      bucket.begin(), bucket.end(), entry,
      [](const Entry& a, const Entry& b) {
        return LoTighter(b.range.lo, a.range.lo);  // ascending by lo
      });
  registered_[entry.node].push_back(key);
  bucket.insert(pos, std::move(entry));
  ++num_entries_;
}

void IntervalIndex::Remove(const RGNode* node) {
  auto it = registered_.find(node);
  if (it == registered_.end()) return;
  for (const Key& key : it->second) {
    auto bit = buckets_.find(key);
    if (bit == buckets_.end()) continue;
    std::vector<Entry>& bucket = bit->second;
    for (auto e = bucket.begin(); e != bucket.end(); ++e) {
      if (e->node == node) {
        bucket.erase(e);
        --num_entries_;
        break;
      }
    }
    if (bucket.empty()) buckets_.erase(bit);
  }
  registered_.erase(it);
}

std::vector<IntervalIndex::Entry> IntervalIndex::Overlapping(
    int64_t child_id, const std::string& column,
    const ColumnInterval& query) const {
  std::vector<Entry> out;
  auto it = buckets_.find(Key{child_id, column});
  if (it == buckets_.end()) return out;
  for (const Entry& e : it->second) {
    // Bucket is sorted ascending by lo: once an entry starts past the
    // query's upper end, every later entry does too.
    if (!query.hi.unbounded &&
        IntervalEmpty({e.range.lo, query.hi})) {
      break;
    }
    if (Overlaps(e.range, query)) out.push_back(e);
  }
  return out;
}

}  // namespace recycledb
