// The recycler graph: an AND-DAG of relational operators unifying all past
// optimized query plans (§II, §III-A/B of the paper).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "storage/table.h"

namespace recycledb {

/// Materialization state of a recycler-graph node's result.
enum class MatState : uint8_t {
  kNone,      // not materialized
  kInFlight,  // some query is currently computing + materializing it
  kCached,    // result available in the recycler cache
};

/// A node of the recycler graph: one relational operator with parameters,
/// annotated with reference statistics and its cached result (if any).
///
/// Column names inside the node (its parameter fingerprint, its
/// output_names) live in the *graph name space*: names newly assigned by
/// the operator are suffixed "#<node id>" so different queries assigning
/// the same alias never collide (the paper appends a query identifier).
struct RGNode {
  int64_t id = 0;
  OpType type = OpType::kScan;

  /// Parameter fingerprint in graph name space (exact-match identity
  /// together with `type` and `children`).
  std::string param_fp;
  uint64_t hash_key = 0;
  uint64_t signature = 0;

  std::vector<RGNode*> children;
  /// Parent hash index (the paper's "small hash-indexes attached to each
  /// node"): hash_key -> parent node.
  std::unordered_multimap<uint64_t, RGNode*> parents;

  /// A childless copy of the defining plan node with all column references
  /// renamed to graph space. Keeps the parameters (predicates, group-by
  /// lists, aggregate items...) inspectable for subsumption and rewrites.
  PlanPtr param_node;

  /// Output column names in graph space, positionally matching the
  /// defining plan node's output schema.
  std::vector<std::string> output_names;
  /// Output column types (positional).
  std::vector<TypeId> output_types;

  /// Base tables under this subtree (for update invalidation).
  std::set<std::string> base_tables;

  /// Subsumption edges: nodes whose result this node's result can derive
  /// (most-specific only; transitive relationships follow the edges).
  std::vector<RGNode*> subsumes;

  // --- statistics (guarded by the graph lock) -------------------------
  /// Measured cost to compute this result from base tables (Eq. 2 input).
  double bcost_ms = 0;
  bool has_bcost = false;
  /// Measured output cardinality (last run).
  int64_t rows = -1;
  /// Estimated / measured result footprint in bytes.
  double size_bytes = 0;
  bool has_size = false;
  /// Importance factor h_R (Eq. 3/4), stored unaged; age with h_epoch.
  double h = 0;
  int64_t h_epoch = 0;
  /// Query id that inserted this node (to exclude self-references when
  /// bumping h, §III-C).
  int64_t inserted_by = -1;
  /// Total times a query exactly-matched this node (diagnostics).
  int64_t match_count = 0;
  /// Epoch of the last match/insert touching this node (drives
  /// truncation: §II "removing subtrees that have not been accessed for
  /// some time").
  int64_t last_access_epoch = 0;
  /// Leaf-index key (empty for non-leaves); needed to unregister on
  /// truncation.
  std::string leaf_key;

  // --- materialization state ------------------------------------------
  /// Atomic because the speculation-abort path flips it to kNone without
  /// the graph lock; transitions signal the graph's mat condvar.
  std::atomic<MatState> mat_state{MatState::kNone};
  TablePtr cached;  // column names are graph-space output_names
  int64_t cached_bytes = 0;
};

/// Statistics snapshot of the graph (diagnostics & Fig. 10 bench).
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;
  int64_t num_cached = 0;
  int64_t cached_bytes = 0;
};

/// The recycler graph container.
///
/// Concurrency: matching runs under a shared lock; insertions take the
/// exclusive lock and *re-validate* the match candidates before inserting
/// (the paper's backwards validation at node granularity, collapsed into
/// revalidate-under-exclusive-lock: if an exactly matching node appeared
/// since the shared-lock match, the insert aborts and adopts it).
/// Materialization state transitions use a separate mutex + condvar so
/// queries can stall on in-flight results without holding the graph lock.
class RecyclerGraph {
 public:
  explicit RecyclerGraph(double aging_alpha = 1.0)
      : aging_alpha_(aging_alpha) {}

  // Non-copyable.
  RecyclerGraph(const RecyclerGraph&) = delete;
  RecyclerGraph& operator=(const RecyclerGraph&) = delete;

  /// Shared lock guarding structure + statistics.
  std::shared_mutex& mutex() { return mu_; }
  /// Mutex + condvar guarding MatState transitions.
  std::mutex& mat_mutex() { return mat_mu_; }
  std::condition_variable& mat_cv() { return mat_cv_; }

  /// Advances the aging epoch (call once per query invocation) and
  /// returns the new epoch.
  int64_t AdvanceEpoch() { return ++epoch_; }
  int64_t epoch() const { return epoch_.load(); }
  double aging_alpha() const { return aging_alpha_; }

  /// h of `node` aged to the current epoch (Eq. 5, lazy). Caller holds a
  /// lock on mutex().
  double AgedH(const RGNode* node) const;

  /// Folds pending aging into node->h and stamps the epoch. Caller holds
  /// the exclusive lock.
  void FoldAging(RGNode* node);

  /// Leaf candidates for a scan/function-scan keyed by fingerprintable
  /// identity (table name / function+args). Caller holds a lock.
  std::vector<RGNode*> LeafCandidates(const std::string& leaf_key,
                                      uint64_t hash_key) const;

  /// Allocates a node (exclusive lock held by caller) and registers it in
  /// the leaf index when it has no children.
  RGNode* AddNode(std::unique_ptr<RGNode> node, const std::string& leaf_key);

  /// Next node id (exclusive lock held by caller).
  int64_t NextId() { return next_id_++; }

  /// All nodes (shared lock held by caller); for diagnostics and tests.
  const std::vector<std::unique_ptr<RGNode>>& nodes() const { return nodes_; }

  /// Removes every node that (a) has not been accessed for at least
  /// `idle_epochs` epochs, (b) is not cached or in flight, and (c) has no
  /// surviving parents (subtrees are removed top-down so shared prefixes
  /// still referenced by fresh parents are kept). Returns the number of
  /// nodes removed. Caller holds the exclusive lock.
  int64_t Truncate(int64_t idle_epochs);

  GraphStats Stats() const;

 private:
  mutable std::shared_mutex mu_;
  std::mutex mat_mu_;
  std::condition_variable mat_cv_;

  std::vector<std::unique_ptr<RGNode>> nodes_;
  /// Global leaf hash table (the paper's "global hash table for
  /// efficiently matching table scans"): leaf key -> nodes.
  std::unordered_multimap<std::string, RGNode*> leaf_index_;

  std::atomic<int64_t> epoch_{0};
  int64_t next_id_ = 1;
  double aging_alpha_;
};

}  // namespace recycledb
