// The recycler graph: an AND-DAG of relational operators unifying all past
// optimized query plans (§II, §III-A/B of the paper).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "storage/table.h"

namespace recycledb {

/// Materialization state of a recycler-graph node's result.
enum class MatState : uint8_t {
  kNone,      // not materialized
  kInFlight,  // some query is currently computing + materializing it
  kCached,    // result available in the recycler cache (hot tier)
  kCold,      // result spilled to the on-disk cold tier; reuse lookups
              // lazily re-admit it (load -> promote -> serve)
};

/// Adds `delta` to an atomic double (C++17 has no fetch_add for doubles),
/// clamping the result at `floor`.
inline void AtomicAddClamped(std::atomic<double>& a, double delta,
                             double floor) {
  double old = a.load(std::memory_order_relaxed);
  double next = std::max(floor, old + delta);
  while (!a.compare_exchange_weak(old, next, std::memory_order_relaxed)) {
    next = std::max(floor, old + delta);
  }
}

/// Multiplies an atomic double by `factor`.
inline void AtomicScale(std::atomic<double>& a, double factor) {
  double old = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(old, old * factor,
                                  std::memory_order_relaxed)) {
  }
}

/// As-of version of one base table at the time a cached result was
/// computed: the catalog entry's replace-epoch plus its row high-water
/// mark. A cached result stamped {epoch, rows} was computed from exactly
/// rows [0, rows) of that table version (see DESIGN.md "Delta
/// maintenance").
struct TableStamp {
  uint64_t epoch = 0;
  int64_t rows = 0;
};

/// A node of the recycler graph: one relational operator with parameters,
/// annotated with reference statistics and its cached result (if any).
///
/// Column names inside the node (its parameter fingerprint, its
/// output_names) live in the *graph name space*: names newly assigned by
/// the operator are suffixed "#<node id>" so different queries assigning
/// the same alias never collide (the paper appends a query identifier).
///
/// Field guards (see the class comment below for the full discipline):
///  - identity fields (id..base_tables, leaf_key) are immutable once the
///    node is published under the exclusive graph lock; shared-lock
///    readers may touch them freely.
///  - `parents` and `subsumes` are structure: mutated only under the
///    exclusive graph lock, read under at least the shared lock.
///  - the statistics block is atomic: no lock is needed for individual
///    reads/writes. Node *lifetime* is what callers must respect: a
///    node pointer stays valid while holding the graph lock (any mode),
///    or between Prepare and OnComplete of the query that matched it —
///    TruncateGraph, the only node-freeing operation, requires that no
///    query be in that window (see Recycler::TruncateGraph). Concurrent
///    updates interleave per-field rather than per-record; the stats are
///    heuristic inputs, so per-record atomicity is deliberately not
///    provided.
///  - `mat_state` transitions kNone->kInFlight by lone CAS (claiming a
///    store); every other transition happens under the node's mat shard
///    mutex and signals the shard condvar.
///  - `cached` (the TablePtr itself) is read and written only under the
///    node's mat shard mutex; `cached_bytes` is atomic so Stats() and the
///    cache can read it without that mutex.
struct RGNode {
  int64_t id = 0;
  OpType type = OpType::kScan;

  /// Parameter fingerprint in graph name space (exact-match identity
  /// together with `type` and `children`).
  std::string param_fp;
  uint64_t hash_key = 0;
  uint64_t signature = 0;

  std::vector<RGNode*> children;
  /// Parent hash index (the paper's "small hash-indexes attached to each
  /// node"): hash_key -> parent node.
  std::unordered_multimap<uint64_t, RGNode*> parents;

  /// A childless copy of the defining plan node with all column references
  /// renamed to graph space. Keeps the parameters (predicates, group-by
  /// lists, aggregate items...) inspectable for subsumption and rewrites.
  PlanPtr param_node;

  /// Output column names in graph space, positionally matching the
  /// defining plan node's output schema.
  std::vector<std::string> output_names;
  /// Output column types (positional).
  std::vector<TypeId> output_types;

  /// Base tables under this subtree (for update invalidation).
  std::set<std::string> base_tables;

  /// Subsumption edges: nodes whose result this node's result can derive
  /// (most-specific only; transitive relationships follow the edges).
  std::vector<RGNode*> subsumes;

  // --- statistics (atomic; shared graph lock suffices) ----------------
  /// Measured cost to compute this result from base tables (Eq. 2 input).
  std::atomic<double> bcost_ms{0};
  std::atomic<bool> has_bcost{false};
  /// Measured output cardinality (last run).
  std::atomic<int64_t> rows{-1};
  /// Estimated / measured result footprint in bytes.
  std::atomic<double> size_bytes{0};
  std::atomic<bool> has_size{false};
  /// Importance factor h_R (Eq. 3/4), stored unaged; age with h_epoch.
  std::atomic<double> h{0};
  std::atomic<int64_t> h_epoch{0};
  /// Query id that inserted this node (to exclude self-references when
  /// bumping h, §III-C).
  int64_t inserted_by = -1;
  /// Total times a query exactly-matched this node (diagnostics).
  std::atomic<int64_t> match_count{0};
  /// Epoch of the last match/insert touching this node (drives
  /// truncation: §II "removing subtrees that have not been accessed for
  /// some time").
  std::atomic<int64_t> last_access_epoch{0};
  /// Leaf-index key (empty for non-leaves); needed to unregister on
  /// truncation.
  std::string leaf_key;

  // --- materialization state ------------------------------------------
  /// kNone->kInFlight is claimed by bare CAS (losers skip their store);
  /// all other transitions happen under the mat shard mutex and signal
  /// the shard condvar so stalled queries wake.
  std::atomic<MatState> mat_state{MatState::kNone};
  /// Guarded by the node's mat shard mutex.
  TablePtr cached;  // column names are graph-space output_names
  std::atomic<int64_t> cached_bytes{0};
  /// Per-base-table as-of versions of the materialized result (one entry
  /// per name in `base_tables`), written when the result is admitted and
  /// cleared when the entry drops back to kNone. Guarded by the node's
  /// mat shard mutex, like `cached`; meaningful only while mat_state is
  /// kCached/kCold (the stamp outlives `cached` across the spill tier).
  /// An empty map on a materialized entry means "stamped before delta
  /// maintenance existed" — lookups treat it as fresh and appends must
  /// hard-invalidate it.
  std::map<std::string, TableStamp> stamps;
};

/// Statistics snapshot of the graph (diagnostics & Fig. 10 bench).
struct GraphStats {
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;
  int64_t num_cached = 0;
  int64_t cached_bytes = 0;
  /// Nodes whose result currently lives only in the cold tier.
  int64_t num_cold = 0;
};

/// The recycler graph container.
///
/// Locking discipline (lock order: graph mutex -> Recycler cache mutex ->
/// mat shard mutex; see DESIGN.md "Concurrency model"):
///
///  - `mutex()` (shared_mutex) guards the graph *structure*: the node
///    list, leaf index, parent indexes, subsumption edges. Matching runs
///    under the shared lock; insertion and truncation take the exclusive
///    lock and *re-validate* the match candidates before inserting (the
///    paper's backwards validation at node granularity, collapsed into
///    revalidate-under-exclusive-lock: if an exactly matching node
///    appeared since the shared-lock match, the insert aborts and adopts
///    it). Per-node statistics are atomics, so statistic updates — h
///    bumps, cost/size annotations — only need the shared lock; fully
///    matched queries never serialize on the exclusive lock.
///
///  - Materialization state transitions use an array of shard mutexes +
///    condvars (sharded by node id) so queries can stall on in-flight
///    results without holding the graph lock and without funnelling every
///    stall/wake through one global mutex.
class RecyclerGraph {
 public:
  explicit RecyclerGraph(double aging_alpha = 1.0)
      : aging_alpha_(aging_alpha) {}

  // Non-copyable.
  RecyclerGraph(const RecyclerGraph&) = delete;
  RecyclerGraph& operator=(const RecyclerGraph&) = delete;

  /// Shared lock guarding graph structure (see class comment).
  std::shared_mutex& mutex() { return mu_; }

  /// Mutex + condvar shard guarding MatState transitions and `cached` of
  /// the given node. Sharded by node id to spread contention.
  struct MatShard {
    std::mutex mu;
    std::condition_variable cv;
  };
  MatShard& mat_shard(const RGNode* node) {
    return mat_shards_[static_cast<uint64_t>(node->id) % kNumMatShards];
  }

  /// Advances the aging epoch (call once per query invocation) and
  /// returns the new epoch.
  int64_t AdvanceEpoch() { return ++epoch_; }
  int64_t epoch() const { return epoch_.load(); }
  double aging_alpha() const { return aging_alpha_; }

  /// h of `node` aged to the current epoch (Eq. 5, lazy). Caller holds at
  /// least the shared lock on mutex().
  double AgedH(const RGNode* node) const;

  /// Folds pending aging into node->h and stamps the epoch. Caller holds
  /// at least the shared lock; concurrent folds race benignly (the CAS on
  /// h_epoch elects one folder per epoch advance; an h bump landing
  /// between the election and the scale is scaled once too often — an
  /// acceptable imprecision in a decay heuristic).
  void FoldAging(RGNode* node);

  /// Leaf candidates for a scan/function-scan keyed by fingerprintable
  /// identity (table name / function+args). Caller holds a lock.
  std::vector<RGNode*> LeafCandidates(const std::string& leaf_key,
                                      uint64_t hash_key) const;

  /// Allocates a node (exclusive lock held by caller) and registers it in
  /// the leaf index when it has no children.
  RGNode* AddNode(std::unique_ptr<RGNode> node, const std::string& leaf_key);

  /// Next node id (exclusive lock held by caller).
  int64_t NextId() { return next_id_++; }

  /// All nodes (shared lock held by caller); for diagnostics and tests.
  const std::vector<std::unique_ptr<RGNode>>& nodes() const { return nodes_; }

  /// Removes every node that (a) has not been accessed for at least
  /// `idle_epochs` epochs, (b) is not cached or in flight, and (c) has no
  /// surviving parents (subtrees are removed top-down so shared prefixes
  /// still referenced by fresh parents are kept). Returns the number of
  /// nodes removed. Caller holds the exclusive lock.
  int64_t Truncate(int64_t idle_epochs);

  GraphStats Stats() const;

 private:
  static constexpr uint64_t kNumMatShards = 16;

  mutable std::shared_mutex mu_;
  MatShard mat_shards_[kNumMatShards];

  std::vector<std::unique_ptr<RGNode>> nodes_;
  /// Global leaf hash table (the paper's "global hash table for
  /// efficiently matching table scans"): leaf key -> nodes.
  std::unordered_multimap<std::string, RGNode*> leaf_index_;

  std::atomic<int64_t> epoch_{0};
  int64_t next_id_ = 1;
  double aging_alpha_;
};

}  // namespace recycledb
