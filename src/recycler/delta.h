// Delta maintenance: incremental refresh of cached results under
// append-only base-table growth (DESIGN.md "Delta maintenance").
//
// Every admitted recycler entry is stamped with the as-of version of each
// base table it was computed from ({replace-epoch, row high-water mark},
// see TableStamp in graph.h). When a lookup finds an entry whose only
// staleness is appended rows, the plan is rewritten instead of discarded:
//
//   UnionAll(CachedScan(result as-of row N), <chain over rows [N, M)>)
//
// reusing the cached prefix and scanning only the delta window. For
// Aggregate roots with decomposable functions the delta rows are
// aggregated and merged with the cached aggregate state, so no base rows
// before N are ever rescanned. The stitched result is re-admitted at the
// new high-water mark by the regular store machinery.
#pragma once

#include <map>
#include <set>
#include <string>

#include "plan/plan.h"
#include "recycler/graph.h"
#include "storage/catalog.h"

namespace recycledb {

/// Relationship between a cached entry's stamps and the base-table
/// snapshots a query was prepared against.
enum class Freshness : uint8_t {
  kFresh,        // every stamped table matches the snapshot exactly
  kAppendStale,  // same epochs, but at least one table has grown
  kAhead,        // same epochs, entry stamped PAST this query's snapshot
  kIncompatible, // epoch changed or stamps unusable
};

/// The append window of a single-table kAppendStale entry: the cached
/// result covers base rows [0, from_rows); rows [from_rows, to_rows) of
/// `table` (at the pinned snapshot) are the delta.
struct StaleWindow {
  std::string table;
  int64_t from_rows = 0;
  int64_t to_rows = 0;
};

/// Classifies a cached entry (its `stamps`, read under the mat shard
/// mutex, and the `base_tables` it depends on) against the per-query
/// pinned snapshots. An empty stamp map is kFresh: unstamped entries are
/// hard-invalidated on every append (Recycler::OnTableAppended), so a
/// surviving one cannot be stale. `window` (may be null) receives the
/// delta window when the result is kAppendStale with exactly one grown
/// table; multi-table growth leaves window->table empty (such entries
/// never pass DeltaEligible* and get evicted by the caller).
///
/// kAhead arises when a concurrent append + refresh re-admitted the
/// entry at a higher row mark than this query's older pinned snapshot:
/// the entry is perfectly good for *later* queries, so callers must
/// treat kAhead as miss-without-evict. kIncompatible beats kAhead beats
/// kAppendStale.
Freshness CheckFreshness(const std::map<std::string, TableStamp>& stamps,
                         const std::set<std::string>& base_tables,
                         const std::map<std::string, TableSnapshot>& snapshots,
                         StaleWindow* window);

/// True when a query plan rooted at `plan` supports delta maintenance
/// over appends to `table`: an optional kAggregate root whose functions
/// are all decomposable (SUM/COUNT/MIN/MAX; AVG only when SUM and COUNT
/// of the same argument are also present; global MIN/MAX — no group-by —
/// is excluded because an all-filtered-out delta would contribute a pad
/// row), over a chain of single-child kSelect/kProject nodes, over one
/// full (unwindowed) kScan of `table`, with no other base table in the
/// subtree.
bool DeltaEligiblePlan(const PlanNode& plan, const std::string& table);

/// Graph-side mirror of DeltaEligiblePlan, used by OnTableAppended to
/// decide which stale entries are worth keeping for delta rewrite.
/// Caller holds at least the shared graph lock.
bool DeltaEligibleNode(const RGNode& node, const std::string& table);

/// Builds the delta-stitch rewrite for a non-aggregate chain:
/// UnionAll(CachedScan(cached as-of from_rows), chain over rows
/// [from_rows, to_rows)). `plan` must be bound, DeltaEligiblePlan, and
/// structurally the query whose result `cached` holds. Row order equals
/// a cold re-execution's (cached prefix first, delta rows after), so the
/// result is bit-identical. `cached_scan_out` receives the CachedScan
/// node for cost crediting / as-of display.
PlanPtr BuildDeltaStitch(const PlanNode& plan, TablePtr cached,
                         const StaleWindow& window, PlanPtr* cached_scan_out);

/// Builds the aggregate-merge rewrite for a kAggregate root: the delta
/// window is aggregated with the original functions, unioned with the
/// cached aggregate state, re-aggregated with the decomposition rules
/// (SUM->SUM, COUNT->SUM, MIN->MIN, MAX->MAX), and a final Project
/// restores output names and recomputes AVG as merged SUM / merged
/// COUNT. No base rows before the window are rescanned. Group emission
/// order matches a cold re-execution (first-seen order is preserved
/// through the union), so the result is bit-identical.
PlanPtr BuildAggMerge(const PlanNode& plan, TablePtr cached,
                      const StaleWindow& window, PlanPtr* cached_scan_out);

}  // namespace recycledb
