#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace recycledb {
namespace sql {

namespace {

/// Non-aborting "YYYY-MM-DD" validation + conversion (ParseDate in
/// common/types.h RDB_CHECK-aborts on bad input, which the text
/// front-end must never do).
bool ParseDateLiteral(const std::string& s, int32_t* out) {
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  for (int i : {0, 1, 2, 3, 5, 6, 8, 9}) {
    if (s[i] < '0' || s[i] > '9') return false;
  }
  int y = std::atoi(s.substr(0, 4).c_str());
  int m = std::atoi(s.substr(5, 2).c_str());
  int d = std::atoi(s.substr(8, 2).c_str());
  if (y < 1 || y > 9999 || m < 1 || m > 12 || d < 1) return false;
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int days = kDays[m - 1];
  bool leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
  if (m == 2 && leap) days = 29;
  if (d > days) return false;
  *out = MakeDate(y, m, d);
  return true;
}

class Parser {
 public:
  Parser(std::string_view sql, std::vector<Token> toks)
      : sql_(sql), toks_(std::move(toks)) {}

  Status ParseStatement(SelectStmt* out);

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  bool AtKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kKeyword && t.text == kw;
  }
  bool AtSymbol(const char* sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == sym;
  }
  bool AcceptKeyword(const char* kw) {
    if (!AtKeyword(kw)) return false;
    Next();
    return true;
  }
  bool AcceptSymbol(const char* sym) {
    if (!AtSymbol(sym)) return false;
    Next();
    return true;
  }
  Status Error(const Token& tok, const std::string& what) const {
    return Status::InvalidArgument(
        CaretSnippet(sql_, tok.line, tok.column, what));
  }
  std::string Describe(const Token& tok) const {
    switch (tok.kind) {
      case TokenKind::kEnd:
        return "end of input";
      case TokenKind::kString:
        return "'" + tok.text + "'";
      case TokenKind::kParam:
        return ":" + tok.text;
      default:
        return "'" + tok.text + "'";
    }
  }
  Status Unexpected(const std::string& wanted) const {
    return Error(Peek(),
                 "expected " + wanted + ", found " + Describe(Peek()));
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) return Unexpected(kw);
    return Status::OK();
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Unexpected(std::string("'") + sym + "'");
    }
    return Status::OK();
  }
  Status ExpectIdent(std::string* out, Pos* pos = nullptr) {
    if (Peek().kind != TokenKind::kIdent) return Unexpected("identifier");
    const Token& t = Next();
    *out = t.text;
    if (pos != nullptr) *pos = {t.line, t.column};
    return Status::OK();
  }

  static AstExprPtr MakeNode(AstExprKind kind, const Token& at) {
    auto e = std::make_unique<AstExpr>();
    e->kind = kind;
    e->pos = {at.line, at.column};
    return e;
  }

  Status ParseSelectList(SelectStmt* out);
  Status ParseSelectItem(SelectItem* out);
  Status ParseFrom(FromClause* out);
  Status ParseScalar(AstExprPtr* out);
  Status ParseIntLiteral(int64_t* out);

  Status ParseExpr(AstExprPtr* out) { return ParseOr(out); }
  Status ParseOr(AstExprPtr* out);
  Status ParseAnd(AstExprPtr* out);
  Status ParseNot(AstExprPtr* out);
  Status ParsePredicate(AstExprPtr* out);
  Status ParseAdditive(AstExprPtr* out);
  Status ParseMultiplicative(AstExprPtr* out);
  Status ParseUnary(AstExprPtr* out);
  Status ParsePrimary(AstExprPtr* out);
  Status ParseLiteralDatum(Datum* out, Pos* pos);

  std::string_view sql_;
  std::vector<Token> toks_;
  size_t pos_ = 0;
};

Status Parser::ParseStatement(SelectStmt* out) {
  *out = SelectStmt{};
  out->pos = {Peek().line, Peek().column};
  RDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
  RDB_RETURN_NOT_OK(ParseSelectList(out));
  RDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
  RDB_RETURN_NOT_OK(ParseFrom(&out->from));
  if (AcceptKeyword("WHERE")) {
    RDB_RETURN_NOT_OK(ParseExpr(&out->where));
  }
  if (AtKeyword("GROUP")) {
    Next();
    RDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      std::string col;
      Pos pos;
      RDB_RETURN_NOT_OK(ExpectIdent(&col, &pos));
      out->group_by.push_back(std::move(col));
      out->group_by_pos.push_back(pos);
    } while (AcceptSymbol(","));
  }
  if (AtKeyword("ORDER")) {
    Next();
    RDB_RETURN_NOT_OK(ExpectKeyword("BY"));
    do {
      OrderItem item;
      RDB_RETURN_NOT_OK(ExpectIdent(&item.column, &item.pos));
      if (AcceptKeyword("DESC")) {
        item.ascending = false;
      } else {
        AcceptKeyword("ASC");
      }
      out->order_by.push_back(std::move(item));
    } while (AcceptSymbol(","));
  }
  if (AcceptKeyword("LIMIT")) {
    RDB_RETURN_NOT_OK(ParseIntLiteral(&out->limit));
    if (out->limit < 0) {
      return Error(Peek(), "LIMIT requires a non-negative integer");
    }
    out->has_limit = true;
  }
  AcceptSymbol(";");
  if (Peek().kind != TokenKind::kEnd) {
    return Unexpected("end of statement");
  }
  return Status::OK();
}

Status Parser::ParseSelectList(SelectStmt* out) {
  if (AtSymbol("*")) {
    Next();
    out->select_star = true;
    return Status::OK();
  }
  do {
    SelectItem item;
    RDB_RETURN_NOT_OK(ParseSelectItem(&item));
    out->items.push_back(std::move(item));
  } while (AcceptSymbol(","));
  return Status::OK();
}

Status Parser::ParseSelectItem(SelectItem* out) {
  const Token& first = Peek();
  out->pos = {first.line, first.column};
  static const char* const kAggs[] = {"SUM", "COUNT", "MIN", "MAX", "AVG"};
  bool is_agg = false;
  if (first.kind == TokenKind::kKeyword && AtSymbol("(", 1)) {
    for (const char* a : kAggs) is_agg = is_agg || first.text == a;
  }
  if (is_agg) {
    out->agg_func = Next().text;  // the aggregate keyword
    Next();                       // '('
    if (out->agg_func == "COUNT" && AtSymbol("*")) {
      Next();
      out->count_star = true;
    } else {
      RDB_RETURN_NOT_OK(ParseExpr(&out->expr));
    }
    RDB_RETURN_NOT_OK(ExpectSymbol(")"));
  } else {
    RDB_RETURN_NOT_OK(ParseExpr(&out->expr));
  }
  if (AcceptKeyword("AS")) {
    RDB_RETURN_NOT_OK(ExpectIdent(&out->alias));
  } else if (Peek().kind == TokenKind::kIdent) {
    // Bare alias: SELECT city c FROM ...
    out->alias = Next().text;
  }
  return Status::OK();
}

Status Parser::ParseFrom(FromClause* out) {
  RDB_RETURN_NOT_OK(ExpectIdent(&out->name, &out->pos));
  if (!AcceptSymbol("(")) return Status::OK();
  out->is_function = true;
  if (AcceptSymbol(")")) return Status::OK();
  do {
    AstExprPtr arg;
    RDB_RETURN_NOT_OK(ParseScalar(&arg));
    out->args.push_back(std::move(arg));
  } while (AcceptSymbol(","));
  return ExpectSymbol(")");
}

Status Parser::ParseScalar(AstExprPtr* out) {
  if (Peek().kind == TokenKind::kParam) {
    const Token& t = Next();
    *out = MakeNode(AstExprKind::kParam, t);
    (*out)->name = t.text;
    return Status::OK();
  }
  Datum value;
  Pos pos;
  RDB_RETURN_NOT_OK(ParseLiteralDatum(&value, &pos));
  auto e = std::make_unique<AstExpr>();
  e->kind = AstExprKind::kLiteral;
  e->pos = pos;
  e->literal = std::move(value);
  *out = std::move(e);
  return Status::OK();
}

Status Parser::ParseIntLiteral(int64_t* out) {
  bool negative = AcceptSymbol("-");
  if (Peek().kind != TokenKind::kInt) return Unexpected("integer");
  const Token& t = Next();
  errno = 0;
  long long v = std::strtoll(t.text.c_str(), nullptr, 10);
  if (errno == ERANGE) return Error(t, "integer literal out of range");
  *out = negative ? -static_cast<int64_t>(v) : static_cast<int64_t>(v);
  return Status::OK();
}

/// Parses a literal token sequence into a Datum: numbers (int32 when the
/// value fits, else int64), floats, strings, TRUE/FALSE, and
/// DATE 'YYYY-MM-DD' (days-since-epoch int32, matching column storage).
Status Parser::ParseLiteralDatum(Datum* out, Pos* pos) {
  const Token& t = Peek();
  *pos = {t.line, t.column};
  bool negative = false;
  if (AtSymbol("-") &&
      (Peek(1).kind == TokenKind::kInt || Peek(1).kind == TokenKind::kFloat)) {
    negative = true;
    Next();
  }
  const Token& lit = Peek();
  switch (lit.kind) {
    case TokenKind::kInt: {
      Next();
      errno = 0;
      long long v = std::strtoll(lit.text.c_str(), nullptr, 10);
      if (errno == ERANGE) return Error(lit, "integer literal out of range");
      int64_t value = negative ? -static_cast<int64_t>(v)
                               : static_cast<int64_t>(v);
      if (value >= INT32_MIN && value <= INT32_MAX) {
        *out = static_cast<int32_t>(value);
      } else {
        *out = value;
      }
      return Status::OK();
    }
    case TokenKind::kFloat: {
      Next();
      double v = std::strtod(lit.text.c_str(), nullptr);
      *out = negative ? -v : v;
      return Status::OK();
    }
    case TokenKind::kString:
      Next();
      *out = lit.text;
      return Status::OK();
    case TokenKind::kKeyword:
      if (lit.text == "TRUE" || lit.text == "FALSE") {
        Next();
        *out = (lit.text == "TRUE");
        return Status::OK();
      }
      if (lit.text == "DATE") {
        Next();
        if (Peek().kind != TokenKind::kString) {
          return Unexpected("date string after DATE");
        }
        const Token& ds = Next();
        int32_t days = 0;
        if (!ParseDateLiteral(ds.text, &days)) {
          return Error(ds, "malformed date (expected 'YYYY-MM-DD')");
        }
        *out = days;
        return Status::OK();
      }
      break;
    default:
      break;
  }
  return Unexpected("literal");
}

Status Parser::ParseOr(AstExprPtr* out) {
  RDB_RETURN_NOT_OK(ParseAnd(out));
  while (AtKeyword("OR")) {
    const Token& op = Next();
    AstExprPtr rhs;
    RDB_RETURN_NOT_OK(ParseAnd(&rhs));
    AstExprPtr node = MakeNode(AstExprKind::kOr, op);
    node->children.push_back(std::move(*out));
    node->children.push_back(std::move(rhs));
    *out = std::move(node);
  }
  return Status::OK();
}

Status Parser::ParseAnd(AstExprPtr* out) {
  RDB_RETURN_NOT_OK(ParseNot(out));
  while (AtKeyword("AND")) {
    const Token& op = Next();
    AstExprPtr rhs;
    RDB_RETURN_NOT_OK(ParseNot(&rhs));
    AstExprPtr node = MakeNode(AstExprKind::kAnd, op);
    node->children.push_back(std::move(*out));
    node->children.push_back(std::move(rhs));
    *out = std::move(node);
  }
  return Status::OK();
}

Status Parser::ParseNot(AstExprPtr* out) {
  if (AtKeyword("NOT")) {
    const Token& op = Next();
    AstExprPtr inner;
    RDB_RETURN_NOT_OK(ParseNot(&inner));
    AstExprPtr node = MakeNode(AstExprKind::kNot, op);
    node->children.push_back(std::move(inner));
    *out = std::move(node);
    return Status::OK();
  }
  return ParsePredicate(out);
}

Status Parser::ParsePredicate(AstExprPtr* out) {
  RDB_RETURN_NOT_OK(ParseAdditive(out));
  bool negated = false;
  if (AtKeyword("NOT") &&
      (AtKeyword("BETWEEN", 1) || AtKeyword("IN", 1) || AtKeyword("LIKE", 1))) {
    negated = true;
    Next();
  }
  if (AtKeyword("BETWEEN")) {
    const Token& op = Next();
    AstExprPtr lo, hi;
    RDB_RETURN_NOT_OK(ParseAdditive(&lo));
    RDB_RETURN_NOT_OK(ExpectKeyword("AND"));
    RDB_RETURN_NOT_OK(ParseAdditive(&hi));
    AstExprPtr node = MakeNode(AstExprKind::kBetween, op);
    node->negated = negated;
    node->children.push_back(std::move(*out));
    node->children.push_back(std::move(lo));
    node->children.push_back(std::move(hi));
    *out = std::move(node);
    return Status::OK();
  }
  if (AtKeyword("IN")) {
    const Token& op = Next();
    RDB_RETURN_NOT_OK(ExpectSymbol("("));
    AstExprPtr node = MakeNode(AstExprKind::kInList, op);
    node->negated = negated;
    node->children.push_back(std::move(*out));
    do {
      Datum v;
      Pos pos;
      RDB_RETURN_NOT_OK(ParseLiteralDatum(&v, &pos));
      node->in_list.push_back(std::move(v));
    } while (AcceptSymbol(","));
    RDB_RETURN_NOT_OK(ExpectSymbol(")"));
    *out = std::move(node);
    return Status::OK();
  }
  if (AtKeyword("LIKE")) {
    const Token& op = Next();
    if (Peek().kind != TokenKind::kString) {
      return Unexpected("pattern string after LIKE");
    }
    const Token& pat = Next();
    AstExprPtr node = MakeNode(AstExprKind::kLike, op);
    node->negated = negated;
    node->name = pat.text;
    node->children.push_back(std::move(*out));
    *out = std::move(node);
    return Status::OK();
  }
  if (negated) return Unexpected("BETWEEN, IN or LIKE after NOT");
  static const char* const kCmps[] = {"=", "!=", "<", "<=", ">", ">="};
  for (const char* cmp : kCmps) {
    if (AtSymbol(cmp)) {
      const Token& op = Next();
      AstExprPtr rhs;
      RDB_RETURN_NOT_OK(ParseAdditive(&rhs));
      AstExprPtr node = MakeNode(AstExprKind::kCompare, op);
      node->name = cmp;
      node->children.push_back(std::move(*out));
      node->children.push_back(std::move(rhs));
      *out = std::move(node);
      return Status::OK();
    }
  }
  return Status::OK();
}

Status Parser::ParseAdditive(AstExprPtr* out) {
  RDB_RETURN_NOT_OK(ParseMultiplicative(out));
  while (AtSymbol("+") || AtSymbol("-")) {
    const Token& op = Next();
    AstExprPtr rhs;
    RDB_RETURN_NOT_OK(ParseMultiplicative(&rhs));
    AstExprPtr node = MakeNode(AstExprKind::kArith, op);
    node->name = op.text;
    node->children.push_back(std::move(*out));
    node->children.push_back(std::move(rhs));
    *out = std::move(node);
  }
  return Status::OK();
}

Status Parser::ParseMultiplicative(AstExprPtr* out) {
  RDB_RETURN_NOT_OK(ParseUnary(out));
  while (AtSymbol("*") || AtSymbol("/")) {
    const Token& op = Next();
    AstExprPtr rhs;
    RDB_RETURN_NOT_OK(ParseUnary(&rhs));
    AstExprPtr node = MakeNode(AstExprKind::kArith, op);
    node->name = op.text;
    node->children.push_back(std::move(*out));
    node->children.push_back(std::move(rhs));
    *out = std::move(node);
  }
  return Status::OK();
}

Status Parser::ParseUnary(AstExprPtr* out) {
  if (AtSymbol("-")) {
    // Fold the sign into a numeric literal; otherwise emit 0 - expr.
    if (Peek(1).kind == TokenKind::kInt || Peek(1).kind == TokenKind::kFloat) {
      Datum v;
      Pos pos;
      RDB_RETURN_NOT_OK(ParseLiteralDatum(&v, &pos));
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kLiteral;
      e->pos = pos;
      e->literal = std::move(v);
      *out = std::move(e);
      return Status::OK();
    }
    const Token& op = Next();
    AstExprPtr inner;
    RDB_RETURN_NOT_OK(ParseUnary(&inner));
    AstExprPtr zero = MakeNode(AstExprKind::kLiteral, op);
    zero->literal = static_cast<int32_t>(0);
    AstExprPtr node = MakeNode(AstExprKind::kArith, op);
    node->name = "-";
    node->children.push_back(std::move(zero));
    node->children.push_back(std::move(inner));
    *out = std::move(node);
    return Status::OK();
  }
  return ParsePrimary(out);
}

Status Parser::ParsePrimary(AstExprPtr* out) {
  const Token& t = Peek();
  switch (t.kind) {
    case TokenKind::kInt:
    case TokenKind::kFloat:
    case TokenKind::kString: {
      Datum v;
      Pos pos;
      RDB_RETURN_NOT_OK(ParseLiteralDatum(&v, &pos));
      auto e = std::make_unique<AstExpr>();
      e->kind = AstExprKind::kLiteral;
      e->pos = pos;
      e->literal = std::move(v);
      *out = std::move(e);
      return Status::OK();
    }
    case TokenKind::kParam: {
      Next();
      *out = MakeNode(AstExprKind::kParam, t);
      (*out)->name = t.text;
      return Status::OK();
    }
    case TokenKind::kIdent: {
      Next();
      if (AcceptSymbol("(")) {
        // Scalar function call: year(d), month(d), bin(v, w).
        AstExprPtr node = MakeNode(AstExprKind::kFuncCall, t);
        node->name = t.text;
        if (!AcceptSymbol(")")) {
          do {
            AstExprPtr arg;
            RDB_RETURN_NOT_OK(ParseExpr(&arg));
            node->children.push_back(std::move(arg));
          } while (AcceptSymbol(","));
          RDB_RETURN_NOT_OK(ExpectSymbol(")"));
        }
        *out = std::move(node);
        return Status::OK();
      }
      *out = MakeNode(AstExprKind::kColumn, t);
      (*out)->name = t.text;
      return Status::OK();
    }
    case TokenKind::kKeyword: {
      if (t.text == "TRUE" || t.text == "FALSE" || t.text == "DATE") {
        Datum v;
        Pos pos;
        RDB_RETURN_NOT_OK(ParseLiteralDatum(&v, &pos));
        auto e = std::make_unique<AstExpr>();
        e->kind = AstExprKind::kLiteral;
        e->pos = pos;
        e->literal = std::move(v);
        *out = std::move(e);
        return Status::OK();
      }
      if (t.text == "CASE") {
        Next();
        RDB_RETURN_NOT_OK(ExpectKeyword("WHEN"));
        AstExprPtr cond, then_e, else_e;
        RDB_RETURN_NOT_OK(ParseExpr(&cond));
        RDB_RETURN_NOT_OK(ExpectKeyword("THEN"));
        RDB_RETURN_NOT_OK(ParseExpr(&then_e));
        RDB_RETURN_NOT_OK(ExpectKeyword("ELSE"));
        RDB_RETURN_NOT_OK(ParseExpr(&else_e));
        RDB_RETURN_NOT_OK(ExpectKeyword("END"));
        AstExprPtr node = MakeNode(AstExprKind::kCase, t);
        node->children.push_back(std::move(cond));
        node->children.push_back(std::move(then_e));
        node->children.push_back(std::move(else_e));
        *out = std::move(node);
        return Status::OK();
      }
      if (t.text == "NULL") {
        return Error(t, "NULL literals are not supported (NULL-free engine)");
      }
      break;
    }
    case TokenKind::kSymbol:
      if (t.text == "(") {
        Next();
        RDB_RETURN_NOT_OK(ParseExpr(out));
        return ExpectSymbol(")");
      }
      break;
    case TokenKind::kEnd:
      break;
  }
  return Unexpected("expression");
}

}  // namespace

Status Parse(std::string_view sql, SelectStmt* out) {
  std::vector<Token> toks;
  RDB_RETURN_NOT_OK(Lex(sql, &toks));
  Parser parser(sql, std::move(toks));
  return parser.ParseStatement(out);
}

}  // namespace sql
}  // namespace recycledb
