// SQL lexer: hand-written tokenizer for the recycledb SQL subset.
//
// Produces a flat token stream with line/column positions so the parser
// can report recoverable errors with a caret snippet (the api/validate
// contract: malformed text yields Status, never an abort). Keywords are
// case-insensitive; identifiers keep their original spelling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace recycledb {
namespace sql {

/// Token kinds produced by the lexer.
enum class TokenKind : uint8_t {
  kIdent,    // bare identifier (column / table / function name)
  kKeyword,  // recognized SQL keyword, upper-cased in `text`
  kInt,      // integer literal
  kFloat,    // floating-point literal
  kString,   // 'quoted' string literal (text holds the unquoted value)
  kParam,    // :name placeholder (text holds the name without ':')
  kSymbol,   // operator / punctuation: ( ) , * + - / = != <> < <= > >= .
  kEnd,      // end of input
};

/// One lexed token with its source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // keyword (upper-cased) / identifier / literal text
  int line = 1;
  int column = 1;
};

/// Tokenizes `sql`. On failure (unterminated string, stray character)
/// returns InvalidArgument with a line/column caret snippet; `*out` then
/// holds the tokens lexed so far. The token list always ends with kEnd.
Status Lex(std::string_view sql, std::vector<Token>* out);

/// Formats "line L, column C" plus the offending source line and a caret
/// under `column` — shared by lexer and parser diagnostics:
///
///   line 1, column 23: unexpected token ','
///     SELECT city FROM sales, shops
///                           ^
std::string CaretSnippet(std::string_view sql, int line, int column,
                         const std::string& what);

}  // namespace sql
}  // namespace recycledb
