// SQL abstract syntax tree for the recycledb SQL subset.
//
// The parser produces this tree; sql/lower.cc resolves it against a
// Catalog into the existing PlanNode IR. Every node keeps the line/column
// of its introducing token so lowering can report name-resolution errors
// with the same caret snippets as parse errors.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace recycledb {
namespace sql {

/// Source position of an AST node (1-based line/column of its first
/// token).
struct Pos {
  int line = 1;
  int column = 1;
};

/// Scalar expression AST node kinds. Comparisons, BETWEEN and IN are
/// normalized during lowering (BETWEEN becomes two range conjuncts).
enum class AstExprKind : uint8_t {
  kColumn,    // bare identifier
  kLiteral,   // number / string / TRUE / FALSE / DATE 'YYYY-MM-DD'
  kParam,     // :name placeholder
  kCompare,   // = != < <= > >=
  kAnd,       // conjunction (two children)
  kOr,        // disjunction (two children)
  kNot,       // negation (one child)
  kArith,     // + - * /
  kFuncCall,  // scalar function call: year(d), month(d), bin(v, w)
  kBetween,   // child0 BETWEEN child1 AND child2 (negated for NOT BETWEEN)
  kInList,    // child0 IN (literal, ...) (negated for NOT IN)
  kLike,      // child0 LIKE 'pattern' (negated for NOT LIKE)
  kCase,      // CASE WHEN child0 THEN child1 ELSE child2 END
};

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

/// One scalar expression AST node.
struct AstExpr {
  AstExprKind kind = AstExprKind::kLiteral;
  Pos pos;
  std::string name;             // column / param / function name, or the
                                // comparison ("=", "<", ...) / arithmetic
                                // ("+", "-", "*", "/") operator spelling,
                                // or the LIKE pattern
  Datum literal;                // kLiteral payload
  bool negated = false;         // NOT BETWEEN / NOT IN / NOT LIKE
  std::vector<Datum> in_list;   // kInList values
  std::vector<AstExprPtr> children;
};

/// One SELECT-list item: an expression or an aggregate call, with an
/// optional alias. `*` is represented by SelectStmt::select_star.
struct SelectItem {
  Pos pos;
  /// Aggregate function name when this item is an aggregate call
  /// (upper-cased: "SUM", "COUNT", "MIN", "MAX", "AVG"); empty for a
  /// plain expression.
  std::string agg_func;
  /// True for COUNT(*).
  bool count_star = false;
  /// The item's expression, or the aggregate's argument (null for
  /// COUNT(*)).
  AstExprPtr expr;
  /// AS alias (empty = derive a deterministic default name).
  std::string alias;
};

/// One ORDER BY key.
struct OrderItem {
  Pos pos;
  std::string column;
  bool ascending = true;
};

/// FROM clause: a base table, or a table function with literal/param
/// arguments.
struct FromClause {
  Pos pos;
  std::string name;
  bool is_function = false;
  /// Function arguments: literals or :params (AstExprKind kLiteral /
  /// kParam only; the parser rejects anything else).
  std::vector<AstExprPtr> args;
};

/// A parsed SELECT statement.
struct SelectStmt {
  Pos pos;
  bool select_star = false;
  std::vector<SelectItem> items;
  FromClause from;
  AstExprPtr where;  // null when absent
  std::vector<std::string> group_by;
  std::vector<Pos> group_by_pos;
  std::vector<OrderItem> order_by;
  bool has_limit = false;
  int64_t limit = 0;
};

}  // namespace sql
}  // namespace recycledb
