// Recursive-descent parser for the recycledb SQL subset.
//
// Grammar (documented in DESIGN.md "SQL front-end & normalization"):
//
//   select_stmt := SELECT select_list FROM from_item
//                  [WHERE expr] [GROUP BY ident_list]
//                  [ORDER BY sort_list] [LIMIT int] [';']
//   select_list := '*' | select_item {',' select_item}
//   select_item := agg '(' expr ')' [[AS] ident]
//                | COUNT '(' '*' ')' [[AS] ident]
//                | expr [[AS] ident]
//   from_item   := ident | ident '(' [scalar {',' scalar}] ')'
//
// Every failure is a recoverable Status carrying a line/column caret
// snippet (never an abort): the text front-end shares the api/validate
// error contract.
#pragma once

#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace recycledb {
namespace sql {

/// Parses one SELECT statement. On failure returns InvalidArgument with a
/// caret snippet pointing at the offending token; `*out` is then in an
/// unspecified (but valid) state.
Status Parse(std::string_view sql, SelectStmt* out);

}  // namespace sql
}  // namespace recycledb
