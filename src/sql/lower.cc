#include "sql/lower.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/string_util.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace recycledb {
namespace sql {

namespace {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Lowering context: the source text (caret snippets) and, for base-table
/// scans, the table schema for name resolution. Function scans have no
/// statically known schema here; their column references are checked by
/// ValidatePlan instead.
struct LowerCtx {
  std::string_view sql;
  const Schema* schema = nullptr;  // null for function scans

  Status NameError(const Pos& pos, const std::string& what) const {
    return Status::InvalidArgument(
        CaretSnippet(sql, pos.line, pos.column, what));
  }
};

Status BuildExpr(const LowerCtx& ctx, const AstExpr& ast, ExprPtr* out);

Status BuildChildren(const LowerCtx& ctx, const AstExpr& ast,
                     std::vector<ExprPtr>* out) {
  for (const AstExprPtr& c : ast.children) {
    ExprPtr e;
    RDB_RETURN_NOT_OK(BuildExpr(ctx, *c, &e));
    out->push_back(std::move(e));
  }
  return Status::OK();
}

Status BuildExpr(const LowerCtx& ctx, const AstExpr& ast, ExprPtr* out) {
  switch (ast.kind) {
    case AstExprKind::kColumn:
      if (ctx.schema != nullptr && !ctx.schema->Has(ast.name)) {
        return ctx.NameError(ast.pos, "unknown column '" + ast.name + "'");
      }
      *out = Expr::Column(ast.name);
      return Status::OK();
    case AstExprKind::kLiteral:
      *out = Expr::Literal(ast.literal);
      return Status::OK();
    case AstExprKind::kParam:
      *out = Expr::Param(ast.name);
      return Status::OK();
    case AstExprKind::kCompare: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      CompareOp op;
      if (ast.name == "=") {
        op = CompareOp::kEq;
      } else if (ast.name == "!=") {
        op = CompareOp::kNe;
      } else if (ast.name == "<") {
        op = CompareOp::kLt;
      } else if (ast.name == "<=") {
        op = CompareOp::kLe;
      } else if (ast.name == ">") {
        op = CompareOp::kGt;
      } else {
        op = CompareOp::kGe;
      }
      *out = Expr::Compare(op, std::move(kids[0]), std::move(kids[1]));
      return Status::OK();
    }
    case AstExprKind::kAnd: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      *out = Expr::And(std::move(kids[0]), std::move(kids[1]));
      return Status::OK();
    }
    case AstExprKind::kOr: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      *out = Expr::Or(std::move(kids[0]), std::move(kids[1]));
      return Status::OK();
    }
    case AstExprKind::kNot: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      *out = Expr::Not(std::move(kids[0]));
      return Status::OK();
    }
    case AstExprKind::kArith: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      ArithOp op;
      if (ast.name == "+") {
        op = ArithOp::kAdd;
      } else if (ast.name == "-") {
        op = ArithOp::kSub;
      } else if (ast.name == "*") {
        op = ArithOp::kMul;
      } else {
        op = ArithOp::kDiv;
      }
      *out = Expr::Arith(op, std::move(kids[0]), std::move(kids[1]));
      return Status::OK();
    }
    case AstExprKind::kFuncCall: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      // Scalar function names are case-insensitive; the IR spells them
      // lowercase ("year", "month", "bin").
      *out = Expr::Func(ToLower(ast.name), std::move(kids));
      return Status::OK();
    }
    case AstExprKind::kBetween: {
      // BETWEEN normalizes to range conjuncts at lowering time, so the
      // recycler's range machinery (and the canonicalizer) see plain
      // comparisons: a BETWEEN x AND y  =>  a >= x AND a <= y.
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      const ExprPtr& value = kids[0];
      if (ast.negated) {
        *out = Expr::Or(Expr::Lt(value, kids[1]), Expr::Gt(value, kids[2]));
      } else {
        *out = Expr::And(Expr::Ge(value, kids[1]), Expr::Le(value, kids[2]));
      }
      return Status::OK();
    }
    case AstExprKind::kInList: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      ExprPtr in = Expr::In(std::move(kids[0]), ast.in_list);
      *out = ast.negated ? Expr::Not(std::move(in)) : std::move(in);
      return Status::OK();
    }
    case AstExprKind::kLike: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      const std::string& pat = ast.name;
      bool leading = !pat.empty() && pat.front() == '%';
      bool trailing = pat.size() >= 2 && pat.back() == '%';
      std::string core = pat.substr(leading ? 1 : 0,
                                    pat.size() - (leading ? 1 : 0) -
                                        (trailing ? 1 : 0));
      if (core.find('%') != std::string::npos || core.empty() ||
          (!leading && !trailing)) {
        return ctx.NameError(
            ast.pos, "unsupported LIKE pattern (use '%x%', 'x%' or '%x')");
      }
      if (leading && trailing) {
        *out = Expr::Like(ast.negated ? LikeKind::kNotContains
                                      : LikeKind::kContains,
                          std::move(kids[0]), std::move(core));
        return Status::OK();
      }
      ExprPtr like = Expr::Like(trailing ? LikeKind::kPrefix
                                         : LikeKind::kSuffix,
                                std::move(kids[0]), std::move(core));
      *out = ast.negated ? Expr::Not(std::move(like)) : std::move(like);
      return Status::OK();
    }
    case AstExprKind::kCase: {
      std::vector<ExprPtr> kids;
      RDB_RETURN_NOT_OK(BuildChildren(ctx, ast, &kids));
      *out = Expr::Case(std::move(kids[0]), std::move(kids[1]),
                        std::move(kids[2]));
      return Status::OK();
    }
  }
  return Status::Internal("unhandled AST expression kind");
}

AggFunc AggFuncFromName(const std::string& upper) {
  if (upper == "SUM") return AggFunc::kSum;
  if (upper == "COUNT") return AggFunc::kCount;
  if (upper == "MIN") return AggFunc::kMin;
  if (upper == "MAX") return AggFunc::kMax;
  return AggFunc::kAvg;
}

/// Deterministic default output name for an unaliased select item:
///   plain column     -> the column name
///   aggregate        -> fn_column ("sum_sales") or fn_expr
///   COUNT(*)         -> "count_star"
///   other expression -> the expression's display string
std::string DefaultName(const SelectItem& item) {
  if (item.count_star) return "count_star";
  if (!item.agg_func.empty()) {
    std::string fn = ToLower(item.agg_func);
    if (item.expr != nullptr && item.expr->kind == AstExprKind::kColumn) {
      return fn + "_" + item.expr->name;
    }
    return fn + "_expr";
  }
  if (item.expr->kind == AstExprKind::kColumn) return item.expr->name;
  return std::string();  // filled from the built expression's display
}

}  // namespace

Status LowerSelect(const SelectStmt& stmt, std::string_view sql,
                   const Catalog& catalog, PlanPtr* out) {
  LowerCtx ctx;
  ctx.sql = sql;

  // ---- FROM ----------------------------------------------------------
  TablePtr table;
  if (!stmt.from.is_function) {
    table = catalog.GetTable(stmt.from.name);
    if (table == nullptr) {
      return ctx.NameError(stmt.from.pos,
                           "unknown table '" + stmt.from.name + "'");
    }
    ctx.schema = &table->schema();
  }

  // ---- build expressions ---------------------------------------------
  ExprPtr where;
  if (stmt.where != nullptr) {
    RDB_RETURN_NOT_OK(BuildExpr(ctx, *stmt.where, &where));
  }
  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    has_agg = has_agg || !item.agg_func.empty() || item.count_star;
  }
  if (stmt.select_star && has_agg) {
    return ctx.NameError(stmt.pos, "SELECT * cannot be combined with "
                                   "aggregates or GROUP BY");
  }

  struct LoweredItem {
    ExprPtr expr;        // null for aggregates
    AggItem agg;         // valid when is_agg
    bool is_agg = false;
    std::string out_name;
  };
  std::vector<LoweredItem> items;
  for (const SelectItem& item : stmt.items) {
    LoweredItem li;
    li.out_name = item.alias.empty() ? DefaultName(item) : item.alias;
    if (!item.agg_func.empty() || item.count_star) {
      li.is_agg = true;
      li.agg.fn = item.count_star ? AggFunc::kCount
                                  : AggFuncFromName(item.agg_func);
      if (item.count_star) {
        li.agg.arg = Expr::Literal(1);
      } else {
        RDB_RETURN_NOT_OK(BuildExpr(ctx, *item.expr, &li.agg.arg));
      }
      li.agg.out_name = li.out_name;
    } else {
      RDB_RETURN_NOT_OK(BuildExpr(ctx, *item.expr, &li.expr));
      if (li.out_name.empty()) li.out_name = li.expr->DisplayString();
    }
    items.push_back(std::move(li));
  }
  if (has_agg) {
    // Under aggregation every non-aggregate item must be a grouping
    // column (the engine has no implicit "any value" aggregate).
    for (size_t i = 0; i < items.size(); ++i) {
      if (items[i].is_agg) continue;
      const AstExpr& ast = *stmt.items[i].expr;
      bool is_group_col =
          ast.kind == AstExprKind::kColumn &&
          std::find(stmt.group_by.begin(), stmt.group_by.end(), ast.name) !=
              stmt.group_by.end();
      if (!is_group_col) {
        return ctx.NameError(stmt.items[i].pos,
                             "non-aggregate SELECT item must be a GROUP BY "
                             "column");
      }
    }
  }
  for (size_t gi = 0; gi < stmt.group_by.size(); ++gi) {
    if (ctx.schema != nullptr && !ctx.schema->Has(stmt.group_by[gi])) {
      return ctx.NameError(stmt.group_by_pos[gi],
                           "unknown column '" + stmt.group_by[gi] + "'");
    }
  }

  // ---- base scan with column pruning ---------------------------------
  PlanPtr node;
  if (stmt.from.is_function) {
    std::vector<ExprPtr> args;
    for (const AstExprPtr& a : stmt.from.args) {
      ExprPtr e;
      RDB_RETURN_NOT_OK(BuildExpr(ctx, *a, &e));
      args.push_back(std::move(e));
    }
    node = PlanNode::FunctionScanTemplate(stmt.from.name, std::move(args));
  } else {
    std::set<std::string> referenced;
    if (where != nullptr) where->CollectColumns(&referenced);
    for (const LoweredItem& li : items) {
      if (li.is_agg) {
        li.agg.arg->CollectColumns(&referenced);
      } else {
        li.expr->CollectColumns(&referenced);
      }
    }
    for (const std::string& g : stmt.group_by) referenced.insert(g);
    if (!has_agg) {
      // ORDER BY keys that are base columns must survive the scan; keys
      // naming computed outputs resolve against the projection instead.
      for (const OrderItem& o : stmt.order_by) {
        if (ctx.schema->Has(o.column)) referenced.insert(o.column);
      }
    }
    // Scan columns in table-schema order: syntactic column order in the
    // SELECT list never changes the scan subtree's fingerprint.
    std::vector<std::string> scan_cols;
    for (const Field& f : ctx.schema->fields()) {
      if (stmt.select_star || referenced.count(f.name) > 0) {
        scan_cols.push_back(f.name);
      }
    }
    if (scan_cols.empty()) {
      // SELECT COUNT(*) FROM t with no references still needs one column.
      scan_cols.push_back(ctx.schema->field(0).name);
    }
    node = PlanNode::Scan(stmt.from.name, std::move(scan_cols));
  }
  std::vector<std::string> scan_out =
      node->type() == OpType::kScan ? node->scan_columns()
                                    : std::vector<std::string>();

  // ---- WHERE ----------------------------------------------------------
  if (where != nullptr) node = PlanNode::Select(std::move(node), where);

  // ---- aggregation / projection ---------------------------------------
  if (has_agg) {
    std::vector<AggItem> aggs;
    for (const LoweredItem& li : items) {
      if (li.is_agg) aggs.push_back(li.agg);
    }
    node = PlanNode::Aggregate(std::move(node), stmt.group_by, aggs);
    // Aggregate emits group columns then aggregates; reorder/rename via a
    // projection only when the SELECT list differs from that shape.
    std::vector<std::string> natural = stmt.group_by;
    for (const AggItem& a : aggs) natural.push_back(a.out_name);
    std::vector<std::string> wanted;
    for (const LoweredItem& li : items) wanted.push_back(li.out_name);
    bool identity = wanted.size() == natural.size();
    for (size_t i = 0; identity && i < wanted.size(); ++i) {
      identity = wanted[i] == natural[i];
      if (identity && !items[i].is_agg) {
        // A renamed group column always needs the projection.
        identity = items[i].out_name == stmt.items[i].expr->name;
      }
    }
    if (!identity) {
      std::vector<ProjItem> proj;
      for (const LoweredItem& li : items) {
        const std::string& source =
            li.is_agg ? li.agg.out_name
                      : stmt.items[&li - items.data()].expr->name;
        proj.push_back({Expr::Column(source), li.out_name});
      }
      node = PlanNode::Project(std::move(node), std::move(proj));
    }
  } else if (!stmt.select_star) {
    // Plain SELECT list: skip the projection when it is exactly the scan
    // output (all bare columns, original names, schema order).
    bool identity = node->type() != OpType::kFunctionScan &&
                    items.size() == scan_out.size();
    for (size_t i = 0; identity && i < items.size(); ++i) {
      identity = items[i].expr->kind() == ExprKind::kColumnRef &&
                 items[i].expr->column_name() == scan_out[i] &&
                 items[i].out_name == scan_out[i];
    }
    if (!identity) {
      std::vector<ProjItem> proj;
      for (const LoweredItem& li : items) {
        proj.push_back({li.expr, li.out_name});
      }
      node = PlanNode::Project(std::move(node), std::move(proj));
    }
  }

  // ---- ORDER BY / LIMIT ----------------------------------------------
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> keys;
    for (const OrderItem& o : stmt.order_by) {
      keys.push_back({o.column, o.ascending});
    }
    if (stmt.has_limit && stmt.limit > 0) {
      // ORDER BY + LIMIT lowers straight to TopN — the shape the
      // recycler's top-N subsumption rule matches.
      node = PlanNode::TopN(std::move(node), std::move(keys), stmt.limit);
    } else {
      node = PlanNode::OrderBy(std::move(node), std::move(keys));
      if (stmt.has_limit) node = PlanNode::Limit(std::move(node), stmt.limit);
    }
  } else if (stmt.has_limit) {
    node = PlanNode::Limit(std::move(node), stmt.limit);
  }

  *out = std::move(node);
  return Status::OK();
}

Status SqlToPlan(std::string_view sql, const Catalog& catalog, PlanPtr* out) {
  SelectStmt stmt;
  RDB_RETURN_NOT_OK(Parse(sql, &stmt));
  return LowerSelect(stmt, sql, catalog, out);
}

}  // namespace sql
}  // namespace recycledb
