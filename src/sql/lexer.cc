#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace recycledb {
namespace sql {

namespace {

// std::isalpha & co. require a non-negative argument; plain char may be
// signed on this platform.
inline unsigned char ToUnsigned(char c) { return static_cast<unsigned char>(c); }

// Keywords of the supported subset. Anything else alphabetic is an
// identifier. Upper-cased here; the lexer upper-cases candidate idents
// before the lookup so keywords are case-insensitive.
const char* const kKeywords[] = {
    "SELECT", "FROM",  "WHERE",   "GROUP", "BY",   "ORDER", "LIMIT",
    "AND",    "OR",    "NOT",     "AS",    "ASC",  "DESC",  "BETWEEN",
    "IN",     "LIKE",  "TRUE",    "FALSE", "CASE", "WHEN",  "THEN",
    "ELSE",   "END",   "DATE",    "SUM",   "COUNT", "MIN",  "MAX",
    "AVG",    "NULL",
};

bool IsKeyword(const std::string& upper) {
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(ToUnsigned(c)));
  return out;
}

}  // namespace

std::string CaretSnippet(std::string_view sql, int line, int column,
                         const std::string& what) {
  std::string msg =
      StrFormat("line %d, column %d: %s", line, column, what.c_str());
  // Pull out source line `line` (1-based) for the caret rendering.
  size_t start = 0;
  for (int l = 1; l < line && start < sql.size(); ++l) {
    size_t nl = sql.find('\n', start);
    if (nl == std::string_view::npos) {
      start = sql.size();
      break;
    }
    start = nl + 1;
  }
  size_t end = sql.find('\n', start);
  if (end == std::string_view::npos) end = sql.size();
  std::string src(sql.substr(start, end - start));
  // Tabs would misalign the caret; render them as single spaces.
  for (char& c : src) {
    if (c == '\t') c = ' ';
  }
  msg += "\n  " + src + "\n  ";
  for (int i = 1; i < column; ++i) msg += ' ';
  msg += '^';
  return msg;
}

Status Lex(std::string_view sql, std::vector<Token>* out) {
  out->clear();
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = sql.size();
  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count; ++k) {
      if (sql[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  auto fail = [&](const std::string& what) {
    out->push_back({TokenKind::kEnd, "", line, col});
    return Status::InvalidArgument(CaretSnippet(sql, line, col, what));
  };

  while (i < n) {
    const char c = sql[i];
    if (std::isspace(ToUnsigned(c))) {
      advance(1);
      continue;
    }
    // -- comment to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') advance(1);
      continue;
    }
    Token tok;
    tok.line = line;
    tok.column = col;
    if (std::isalpha(ToUnsigned(c)) || c == '_') {
      size_t j = i;
      while (j < n &&
             (std::isalnum(ToUnsigned(sql[j])) || sql[j] == '_')) {
        ++j;
      }
      std::string word(sql.substr(i, j - i));
      std::string upper = ToUpper(word);
      if (IsKeyword(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = std::move(upper);
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = std::move(word);
      }
      out->push_back(std::move(tok));
      advance(j - i);
      continue;
    }
    if (std::isdigit(ToUnsigned(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(ToUnsigned(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && std::isdigit(ToUnsigned(sql[j]))) ++j;
      if (j < n && sql[j] == '.') {
        is_float = true;
        ++j;
        while (j < n && std::isdigit(ToUnsigned(sql[j]))) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E')) {
        size_t k = j + 1;
        if (k < n && (sql[k] == '+' || sql[k] == '-')) ++k;
        if (k < n && std::isdigit(ToUnsigned(sql[k]))) {
          is_float = true;
          j = k;
          while (j < n && std::isdigit(ToUnsigned(sql[j]))) ++j;
        }
      }
      if (j < n &&
          (std::isalpha(ToUnsigned(sql[j])) || sql[j] == '_')) {
        return fail("malformed number");
      }
      tok.kind = is_float ? TokenKind::kFloat : TokenKind::kInt;
      tok.text = std::string(sql.substr(i, j - i));
      out->push_back(std::move(tok));
      advance(j - i);
      continue;
    }
    if (c == '\'') {
      // String literal; '' escapes a quote.
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += sql[j];
        ++j;
      }
      if (!closed) return fail("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
      out->push_back(std::move(tok));
      advance(j - i);
      continue;
    }
    if (c == ':') {
      size_t j = i + 1;
      if (j >= n || (!std::isalpha(ToUnsigned(sql[j])) && sql[j] != '_')) {
        return fail("expected parameter name after ':'");
      }
      while (j < n &&
             (std::isalnum(ToUnsigned(sql[j])) || sql[j] == '_')) {
        ++j;
      }
      tok.kind = TokenKind::kParam;
      tok.text = std::string(sql.substr(i + 1, j - i - 1));
      out->push_back(std::move(tok));
      advance(j - i);
      continue;
    }
    // Multi-character operators first.
    auto symbol = [&](const char* sym, size_t len) {
      tok.kind = TokenKind::kSymbol;
      tok.text = sym;
      out->push_back(std::move(tok));
      advance(len);
    };
    if (c == '<' && i + 1 < n && sql[i + 1] == '=') {
      symbol("<=", 2);
      continue;
    }
    if (c == '>' && i + 1 < n && sql[i + 1] == '=') {
      symbol(">=", 2);
      continue;
    }
    if (c == '<' && i + 1 < n && sql[i + 1] == '>') {
      symbol("!=", 2);  // normalize <> to !=
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      symbol("!=", 2);
      continue;
    }
    switch (c) {
      case '(':
        symbol("(", 1);
        continue;
      case ')':
        symbol(")", 1);
        continue;
      case ',':
        symbol(",", 1);
        continue;
      case '*':
        symbol("*", 1);
        continue;
      case '+':
        symbol("+", 1);
        continue;
      case '-':
        symbol("-", 1);
        continue;
      case '/':
        symbol("/", 1);
        continue;
      case '=':
        symbol("=", 1);
        continue;
      case '<':
        symbol("<", 1);
        continue;
      case '>':
        symbol(">", 1);
        continue;
      case ';':
        // A single trailing semicolon is tolerated (and ignored) by the
        // parser; emit it as a symbol so mid-statement ';' still errors.
        symbol(";", 1);
        continue;
      default:
        break;
    }
    return fail(StrFormat("unexpected character '%c'", c));
  }
  out->push_back({TokenKind::kEnd, "", line, col});
  return Status::OK();
}

}  // namespace sql
}  // namespace recycledb
