// Lowering: SQL AST -> the existing PlanNode / Expr IR.
//
// Resolves a parsed SelectStmt against a Catalog and produces the same
// plan shapes the fluent builder would: Scan (column-pruned, columns in
// table-schema order) or FunctionScan at the base, then Select,
// Aggregate, Project, OrderBy/TopN/Limit as the clauses require. Name
// resolution failures come back as Status with the parser's caret
// snippets; structural/type errors are left to ValidatePlan (the shared
// api/validate surface).
#pragma once

#include <string_view>

#include "common/status.h"
#include "plan/plan.h"
#include "sql/ast.h"

namespace recycledb {
namespace sql {

/// Lowers a parsed statement onto PlanNode factories. `sql` is the
/// original text (for caret snippets in name-resolution errors).
Status LowerSelect(const SelectStmt& stmt, std::string_view sql,
                   const Catalog& catalog, PlanPtr* out);

/// One-call front door: lex + parse + lower. The returned plan is NOT
/// canonicalized (Session applies CanonicalizePlan per DatabaseOptions)
/// and NOT validated against parameter bindings — plans with :params must
/// go through Session::Prepare.
Status SqlToPlan(std::string_view sql, const Catalog& catalog, PlanPtr* out);

}  // namespace sql
}  // namespace recycledb
