// Fatal-check macros for internal invariants.
//
// Following the Google style guide we do not use exceptions for control
// flow; violated engine invariants abort with a diagnostic. Recoverable
// errors use Status (see status.h).
#pragma once

#include <cstdio>
#include <cstdlib>

#define RDB_CHECK(cond)                                                    \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RDB_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define RDB_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "RDB_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, (msg));                      \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define RDB_UNREACHABLE(msg)                                               \
  do {                                                                     \
    std::fprintf(stderr, "RDB_UNREACHABLE at %s:%d: %s\n", __FILE__,       \
                 __LINE__, (msg));                                         \
    std::abort();                                                          \
  } while (0)

// Disallow copy & assign, per Google C++ style.
#define RDB_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete
