#include "common/thread_pool.h"

namespace recycledb {

ThreadPool::ThreadPool(int num_threads) {
  RDB_CHECK(num_threads > 0);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // Workers only exit once the queue has drained (see WorkerLoop), so
  // joining here is the drain barrier.
  for (auto& t : threads_) t.join();
  threads_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace recycledb
