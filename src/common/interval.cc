#include "common/interval.h"

#include <cstdint>
#include <limits>
#include <variant>

#include "common/macros.h"

namespace recycledb {

bool LoTighter(const RangeBound& a, const RangeBound& b) {
  if (a.unbounded) return false;
  if (b.unbounded) return true;
  int cmp = DatumCompare(a.value, b.value);
  if (cmp != 0) return cmp > 0;
  return !a.inclusive && b.inclusive;
}

bool HiTighter(const RangeBound& a, const RangeBound& b) {
  if (a.unbounded) return false;
  if (b.unbounded) return true;
  int cmp = DatumCompare(a.value, b.value);
  if (cmp != 0) return cmp < 0;
  return !a.inclusive && b.inclusive;
}

RangeBound TighterLo(const RangeBound& a, const RangeBound& b) {
  return LoTighter(a, b) ? a : b;
}

RangeBound TighterHi(const RangeBound& a, const RangeBound& b) {
  return HiTighter(a, b) ? a : b;
}

bool IntervalEmpty(const ColumnInterval& i) {
  if (i.lo.unbounded || i.hi.unbounded) return false;
  int cmp = DatumCompare(i.lo.value, i.hi.value);
  if (cmp != 0) return cmp > 0;
  return !(i.lo.inclusive && i.hi.inclusive);
}

bool Overlaps(const ColumnInterval& a, const ColumnInterval& b) {
  return !IntervalEmpty(Intersect(a, b));
}

ColumnInterval Intersect(const ColumnInterval& a, const ColumnInterval& b) {
  return {TighterLo(a.lo, b.lo), TighterHi(a.hi, b.hi)};
}

RangeBound ComplementHi(const RangeBound& lo) {
  RDB_CHECK(!lo.unbounded);
  return {false, lo.value, !lo.inclusive};
}

RangeBound ComplementLo(const RangeBound& hi) {
  RDB_CHECK(!hi.unbounded);
  return {false, hi.value, !hi.inclusive};
}

bool IntervalEmptyOnIntegerDomain(const ColumnInterval& i) {
  if (IntervalEmpty(i)) return true;
  if (i.lo.unbounded || i.hi.unbounded) return false;
  auto is_int = [](const Datum& d) {
    return std::holds_alternative<int32_t>(d) ||
           std::holds_alternative<int64_t>(d);
  };
  if (!is_int(i.lo.value) || !is_int(i.hi.value)) return false;
  // Normalize each exclusive bound to the nearest integer inside the
  // interval; empty iff the normalized bounds cross.
  int64_t lo = DatumAsInt64(i.lo.value);
  int64_t hi = DatumAsInt64(i.hi.value);
  if (!i.lo.inclusive) {
    if (lo == std::numeric_limits<int64_t>::max()) return true;
    ++lo;
  }
  if (!i.hi.inclusive) {
    if (hi == std::numeric_limits<int64_t>::min()) return true;
    --hi;
  }
  return lo > hi;
}

std::string IntervalToString(const ColumnInterval& i) {
  std::string out;
  if (i.lo.unbounded) {
    out += "(-inf";
  } else {
    out += i.lo.inclusive ? "[" : "(";
    out += DatumToString(i.lo.value);
  }
  out += ", ";
  if (i.hi.unbounded) {
    out += "+inf)";
  } else {
    out += DatumToString(i.hi.value);
    out += i.hi.inclusive ? "]" : ")";
  }
  return out;
}

}  // namespace recycledb
