// Monotonic stopwatch for operator timing and benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace recycledb {

/// Wall-clock stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in fractional milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time in nanoseconds.
  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace recycledb
