// Small string helpers (join, printf-style format) used across modules.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace recycledb {

/// Joins the elements of `parts` with `sep`.
inline std::string Join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

/// printf-style formatting into a std::string.
inline std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n, '\0');
  std::vsnprintf(out.data(), n + 1, fmt, args2);
  va_end(args2);
  return out;
}

/// True if `s` starts with `prefix`.
inline bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

/// True if `s` ends with `suffix`.
inline bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// True if `s` contains `sub`.
inline bool Contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

}  // namespace recycledb
