// Hashing utilities used for recycler-graph keys, signatures and hash joins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace recycledb {

/// 64-bit FNV-1a over a byte range. Stable across runs and platforms; used
/// for recycler-graph hash keys so fingerprints are deterministic.
inline uint64_t Fnv1a(const void* data, size_t len, uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0xcbf29ce484222325ULL) {
  return Fnv1a(s.data(), s.size(), seed);
}

/// Mixes a 64-bit value (finalizer from MurmurHash3).
inline uint64_t HashMix(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Combines two hashes (boost-style).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
}

/// Column-set signature: each column name switches on one bit of a 64-bit
/// mask (the paper's n.signature). A candidate that does not provide all
/// needed columns can be eliminated with a single AND.
inline uint64_t ColumnSignatureBit(std::string_view column_name) {
  return 1ULL << (HashString(column_name) % 64);
}

}  // namespace recycledb
