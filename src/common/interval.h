// One-column interval arithmetic over Datum bounds.
//
// Shared by three layers: the recycler's partial-reuse machinery
// (interval index + range stitching), the storage layer's zone maps
// (per-block min/max pruning), and the executor's scan-prune hints.
// Lives in common/ so storage and exec can consume intervals without
// depending on recycler headers.
#pragma once

#include "common/types.h"

namespace recycledb {

/// One end of a (possibly half-open or unbounded) column interval.
struct RangeBound {
  /// True when the bound is absent (-inf for a lower, +inf for an upper).
  bool unbounded = true;
  /// Bound value; meaningful only when !unbounded.
  Datum value{};
  /// True for >= / <= bounds, false for > / <.
  bool inclusive = false;
};

/// A one-column interval `lo .. hi` with independent open/closed ends.
struct ColumnInterval {
  RangeBound lo;
  RangeBound hi;
};

/// True if `a` is the strictly tighter LOWER bound (starts later than
/// `b`; an exclusive bound at the same value is tighter than an
/// inclusive one).
bool LoTighter(const RangeBound& a, const RangeBound& b);

/// True if `a` is the strictly tighter UPPER bound (ends earlier).
bool HiTighter(const RangeBound& a, const RangeBound& b);

/// The tighter of two lower / upper bounds.
RangeBound TighterLo(const RangeBound& a, const RangeBound& b);
RangeBound TighterHi(const RangeBound& a, const RangeBound& b);

/// True when the interval contains no value (lo past hi, or equal with
/// either end open). Unbounded ends never make an interval empty.
bool IntervalEmpty(const ColumnInterval& i);

/// True when the two intervals share at least one value (a shared closed
/// boundary point counts).
bool Overlaps(const ColumnInterval& a, const ColumnInterval& b);

/// Intersection (may be empty; check IntervalEmpty).
ColumnInterval Intersect(const ColumnInterval& a, const ColumnInterval& b);

/// The upper bound ending immediately before lower bound `lo`
/// (value-equal, complementary inclusiveness). `lo` must be bounded.
RangeBound ComplementHi(const RangeBound& lo);

/// The lower bound starting immediately after upper bound `hi`
/// (value-equal, complementary inclusiveness). `hi` must be bounded.
RangeBound ComplementLo(const RangeBound& hi);

/// IntervalEmpty refined for integer-valued columns: an interval whose
/// bounds are both integer datums (int32/int64, which also covers kDate)
/// is empty when it contains no *integer*, even if it contains reals —
/// e.g. the open-open gap (5, 6) left between two adjacent cached slices.
/// Falls back to IntervalEmpty for non-integer or unbounded ends. Used by
/// the stitching rewriter to short-circuit zero-width delta gaps.
bool IntervalEmptyOnIntegerDomain(const ColumnInterval& i);

/// Renders an interval for Explain / diagnostics, e.g. "(5, 10]",
/// "[3, +inf)".
std::string IntervalToString(const ColumnInterval& i);

}  // namespace recycledb
