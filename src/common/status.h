// Minimal Status type for recoverable errors at API boundaries.
#pragma once

#include <string>
#include <utility>

namespace recycledb {

/// Error codes for recoverable failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kInternal,
};

/// A lightweight success/error result carrying a code and message.
/// Modeled after (a small subset of) arrow::Status / absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return CodeName(code_) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static std::string CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
      case StatusCode::kInternal:
        return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

#define RDB_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::recycledb::Status _st = (expr);      \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace recycledb
