// Deterministic pseudo-random generator for data generation and workloads.
#pragma once

#include <cstdint>

#include "common/macros.h"

namespace recycledb {

/// xoshiro256** generator; deterministic given a seed, cheap, and decoupled
/// from std::mt19937 so generated datasets are stable across stdlib
/// versions (dbgen-style reproducibility).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    RDB_CHECK(hi >= lo);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace recycledb
