// Fixed-size thread pool used by the multi-stream workload driver.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace recycledb {

/// A fixed-size thread pool with a FIFO task queue.
///
/// The workload driver submits one task per query stream and bounds the
/// number of concurrently *executing* queries separately (the paper's
/// "Vectorwise was set up to execute 12 queries in parallel").
///
/// Shutdown contract: `Shutdown()` (also run by the destructor) stops
/// accepting new work, lets the workers DRAIN every task already queued,
/// then joins them — queued work is never silently dropped. `Submit`
/// after shutdown has begun is rejected (returns false). `Shutdown` is
/// idempotent and `WaitIdle` may be called before, during, or after it.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  RDB_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  /// Enqueues a task for execution. Returns false (and does not enqueue)
  /// if Shutdown() has already begun.
  bool Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing. Tasks
  /// submitted concurrently with the call may or may not be covered; to
  /// quiesce, the caller must stop its submitters first (or Shutdown()).
  void WaitIdle();

  /// Drains all queued tasks, then joins the workers. Idempotent.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace recycledb
