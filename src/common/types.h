// Core scalar type system: TypeId, Datum (boxed scalar), date helpers.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace recycledb {

/// Physical column types supported by the engine.
///
/// kDate is stored as int32 days since 1970-01-01 (proleptic Gregorian);
/// kBool is stored as uint8.
enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kDate = 5,
};

/// Human-readable type name ("INT32", "DATE", ...).
const char* TypeName(TypeId type);

/// True for kInt32/kInt64/kDouble/kDate (types with a numeric ordering
/// usable in arithmetic).
bool IsNumeric(TypeId type);

/// A boxed scalar value used for plan constants and row access.
/// The variant alternative encodes the type: bool->kBool, int32->kInt32 or
/// kDate (context-dependent), int64->kInt64, double->kDouble,
/// string->kString. std::monostate represents NULL (used sparingly; the
/// engine is NULL-free except for outer-join padding).
using Datum = std::variant<std::monostate, bool, int32_t, int64_t, double,
                           std::string>;

/// Returns the TypeId naturally associated with the datum's alternative.
/// monostate maps to kInt64 (callers must not rely on null typing).
TypeId DatumType(const Datum& d);

/// Renders a datum for fingerprints and debugging (stable across runs).
std::string DatumToString(const Datum& d);

/// Numeric coercion helpers; RDB_CHECK-fail on non-numeric alternatives.
double DatumAsDouble(const Datum& d);
int64_t DatumAsInt64(const Datum& d);

/// Three-way comparison of two datums of compatible types.
/// Numeric alternatives compare numerically (int32 vs int64 vs double OK);
/// strings compare lexicographically. Returns <0, 0, >0.
int DatumCompare(const Datum& a, const Datum& b);

bool DatumEquals(const Datum& a, const Datum& b);

// ---------------------------------------------------------------------------
// Date helpers (proleptic Gregorian calendar, days since 1970-01-01).
// ---------------------------------------------------------------------------

/// Converts a calendar date to days since epoch. Valid for years 1..9999.
int32_t MakeDate(int year, int month, int day);

/// Parses "YYYY-MM-DD" into days since epoch (RDB_CHECK on bad format).
int32_t ParseDate(const std::string& iso);

/// Extracts the year of a days-since-epoch date.
int DateYear(int32_t days);

/// Extracts the month (1..12).
int DateMonth(int32_t days);

/// Formats days-since-epoch as "YYYY-MM-DD".
std::string DateToString(int32_t days);

}  // namespace recycledb
