#include "common/types.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace recycledb {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return "BOOL";
    case TypeId::kInt32:
      return "INT32";
    case TypeId::kInt64:
      return "INT64";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kString:
      return "STRING";
    case TypeId::kDate:
      return "DATE";
  }
  return "UNKNOWN";
}

bool IsNumeric(TypeId type) {
  switch (type) {
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDouble:
    case TypeId::kDate:
      return true;
    default:
      return false;
  }
}

TypeId DatumType(const Datum& d) {
  switch (d.index()) {
    case 1:
      return TypeId::kBool;
    case 2:
      return TypeId::kInt32;
    case 3:
      return TypeId::kInt64;
    case 4:
      return TypeId::kDouble;
    case 5:
      return TypeId::kString;
    default:
      return TypeId::kInt64;
  }
}

std::string DatumToString(const Datum& d) {
  switch (d.index()) {
    case 0:
      return "NULL";
    case 1:
      return std::get<bool>(d) ? "true" : "false";
    case 2:
      return std::to_string(std::get<int32_t>(d));
    case 3:
      return std::to_string(std::get<int64_t>(d));
    case 4: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", std::get<double>(d));
      return buf;
    }
    case 5:
      return "'" + std::get<std::string>(d) + "'";
  }
  return "?";
}

double DatumAsDouble(const Datum& d) {
  switch (d.index()) {
    case 1:
      return std::get<bool>(d) ? 1.0 : 0.0;
    case 2:
      return static_cast<double>(std::get<int32_t>(d));
    case 3:
      return static_cast<double>(std::get<int64_t>(d));
    case 4:
      return std::get<double>(d);
    default:
      RDB_UNREACHABLE("DatumAsDouble on non-numeric datum");
  }
}

int64_t DatumAsInt64(const Datum& d) {
  switch (d.index()) {
    case 1:
      return std::get<bool>(d) ? 1 : 0;
    case 2:
      return std::get<int32_t>(d);
    case 3:
      return std::get<int64_t>(d);
    case 4:
      return static_cast<int64_t>(std::get<double>(d));
    default:
      RDB_UNREACHABLE("DatumAsInt64 on non-numeric datum");
  }
}

int DatumCompare(const Datum& a, const Datum& b) {
  if (a.index() == 5 || b.index() == 5) {
    RDB_CHECK_MSG(a.index() == 5 && b.index() == 5,
                  "comparing string with non-string");
    const std::string& sa = std::get<std::string>(a);
    const std::string& sb = std::get<std::string>(b);
    int c = sa.compare(sb);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  double da = DatumAsDouble(a);
  double db = DatumAsDouble(b);
  if (da < db) return -1;
  if (da > db) return 1;
  return 0;
}

bool DatumEquals(const Datum& a, const Datum& b) {
  if (a.index() == 0 || b.index() == 0) return a.index() == b.index();
  return DatumCompare(a, b) == 0;
}

namespace {
// Civil-days algorithm from Howard Hinnant's date algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}
}  // namespace

int32_t MakeDate(int year, int month, int day) {
  RDB_CHECK_MSG(year >= 1 && year <= 9999 && month >= 1 && month <= 12 &&
                    day >= 1 && day <= 31,
                "invalid calendar date");
  return static_cast<int32_t>(DaysFromCivil(year, month, day));
}

int32_t ParseDate(const std::string& iso) {
  int y = 0, m = 0, d = 0;
  int n = std::sscanf(iso.c_str(), "%d-%d-%d", &y, &m, &d);
  RDB_CHECK_MSG(n == 3, "date must be YYYY-MM-DD");
  return MakeDate(y, m, d);
}

int DateYear(int32_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

int DateMonth(int32_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int>(m);
}

std::string DateToString(int32_t days) {
  int y;
  unsigned m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", y, m, d);
  return buf;
}

}  // namespace recycledb
