// Counting semaphore bounding concurrently executing queries (C++17 has
// no std::counting_semaphore). Shared by the workload driver's per-run
// gate and the Database facade's async-submission path.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/macros.h"

namespace recycledb {

/// Bounds the number of simultaneously executing queries (the paper's
/// "Vectorwise was set up to execute 12 queries in parallel"). Acquire
/// blocks while all slots are taken.
class AdmissionGate {
 public:
  explicit AdmissionGate(int slots) : slots_(slots) { RDB_CHECK(slots > 0); }

  RDB_DISALLOW_COPY_AND_ASSIGN(AdmissionGate);

  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return slots_ > 0; });
    --slots_;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++slots_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int slots_;
};

/// RAII admission slot.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionGate* gate) : gate_(gate) {
    gate_->Acquire();
  }
  ~AdmissionSlot() { gate_->Release(); }

  RDB_DISALLOW_COPY_AND_ASSIGN(AdmissionSlot);

 private:
  AdmissionGate* gate_;
};

}  // namespace recycledb
