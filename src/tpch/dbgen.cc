#include "tpch/dbgen.h"

#include <cstdlib>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace recycledb {
namespace tpch {

const char* const kRegionNames[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

const char* const kNationNames[25] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
    "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};

const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const char* const kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                  "MACHINERY", "HOUSEHOLD"};

const char* const kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                    "4-NOT SPECIFIED", "5-LOW"};

const char* const kShipModes[7] = {"REG AIR", "AIR", "RAIL", "SHIP",
                                   "TRUCK", "MAIL", "FOB"};

const char* const kShipInstruct[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                      "NONE", "TAKE BACK RETURN"};

const char* const kContainers[40] = {
    "SM CASE",   "SM BOX",   "SM BAG",   "SM JAR",   "SM PKG",
    "SM PACK",   "SM CAN",   "SM DRUM",  "LG CASE",  "LG BOX",
    "LG BAG",    "LG JAR",   "LG PKG",   "LG PACK",  "LG CAN",
    "LG DRUM",   "MED CASE", "MED BOX",  "MED BAG",  "MED JAR",
    "MED PKG",   "MED PACK", "MED CAN",  "MED DRUM", "JUMBO CASE",
    "JUMBO BOX", "JUMBO BAG", "JUMBO JAR", "JUMBO PKG", "JUMBO PACK",
    "JUMBO CAN", "JUMBO DRUM", "WRAP CASE", "WRAP BOX", "WRAP BAG",
    "WRAP JAR",  "WRAP PKG", "WRAP PACK", "WRAP CAN", "WRAP DRUM"};

const char* const kTypes1[6] = {"STANDARD", "SMALL", "MEDIUM",
                                "LARGE", "ECONOMY", "PROMO"};
const char* const kTypes2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                "POLISHED", "BRUSHED"};
const char* const kTypes3[5] = {"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

const char* const kColors[92] = {
    "almond",    "antique",   "aquamarine", "azure",     "beige",
    "bisque",    "black",     "blanched",   "blue",      "blush",
    "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",      "dark",      "deep",       "dim",       "dodger",
    "drab",      "firebrick", "floral",     "forest",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",  "hot",       "hotpink",    "indian",    "ivory",
    "khaki",     "lace",      "lavender",   "lawn",      "lemon",
    "light",     "lime",      "linen",      "magenta",   "maroon",
    "medium",    "metallic",  "midnight",   "mint",      "misty",
    "moccasin",  "navajo",    "navy",       "olive",     "orange",
    "orchid",    "pale",      "papaya",     "peach",     "peru",
    "pink",      "plum",      "powder",     "puff",      "purple",
    "red",       "rose",      "rosy",       "royal",     "saddle",
    "salmon",    "sandy",     "seashell",   "sienna",    "sky",
    "slate",     "smoke",     "snow",       "spring",    "steel",
    "tan",       "thistle",   "tomato",     "turquoise", "violet",
    "wheat",     "white"};

namespace {

const char* const kFillerWords[24] = {
    "furiously", "quickly",  "carefully", "slyly",    "blithely", "deposits",
    "packages",  "accounts", "ideas",     "theodolites", "pinto",  "beans",
    "foxes",     "instructions", "platelets", "requests", "asymptotes",
    "courts",    "dolphins", "multipliers", "sauternes", "warthogs",
    "frets",     "dinos"};

std::string RandomWords(Rng* rng, int min_words, int max_words) {
  int n = static_cast<int>(rng->Uniform(min_words, max_words));
  std::string out;
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kFillerWords[rng->Uniform(0, 23)];
  }
  return out;
}

double Money(Rng* rng, double lo, double hi) {
  // Two-decimal money value.
  int64_t cents = rng->Uniform(static_cast<int64_t>(lo * 100),
                               static_cast<int64_t>(hi * 100));
  return static_cast<double>(cents) / 100.0;
}

Schema RegionSchema() {
  return Schema({{"r_regionkey", TypeId::kInt32},
                 {"r_name", TypeId::kString},
                 {"r_comment", TypeId::kString}});
}

Schema NationSchema() {
  return Schema({{"n_nationkey", TypeId::kInt32},
                 {"n_name", TypeId::kString},
                 {"n_regionkey", TypeId::kInt32},
                 {"n_comment", TypeId::kString}});
}

Schema SupplierSchema() {
  return Schema({{"s_suppkey", TypeId::kInt32},
                 {"s_name", TypeId::kString},
                 {"s_address", TypeId::kString},
                 {"s_nationkey", TypeId::kInt32},
                 {"s_phone", TypeId::kString},
                 {"s_acctbal", TypeId::kDouble},
                 {"s_comment", TypeId::kString}});
}

Schema CustomerSchema() {
  return Schema({{"c_custkey", TypeId::kInt32},
                 {"c_name", TypeId::kString},
                 {"c_address", TypeId::kString},
                 {"c_nationkey", TypeId::kInt32},
                 {"c_phone", TypeId::kString},
                 {"c_cntrycode", TypeId::kString},  // phone country code
                 {"c_acctbal", TypeId::kDouble},
                 {"c_mktsegment", TypeId::kString},
                 {"c_comment", TypeId::kString}});
}

Schema PartSchema() {
  return Schema({{"p_partkey", TypeId::kInt32},
                 {"p_name", TypeId::kString},
                 {"p_mfgr", TypeId::kString},
                 {"p_brand", TypeId::kString},
                 {"p_type", TypeId::kString},
                 {"p_size", TypeId::kInt32},
                 {"p_container", TypeId::kString},
                 {"p_retailprice", TypeId::kDouble},
                 {"p_comment", TypeId::kString}});
}

Schema PartsuppSchema() {
  return Schema({{"ps_partkey", TypeId::kInt32},
                 {"ps_suppkey", TypeId::kInt32},
                 {"ps_availqty", TypeId::kInt32},
                 {"ps_supplycost", TypeId::kDouble},
                 {"ps_comment", TypeId::kString}});
}

Schema OrdersSchema() {
  return Schema({{"o_orderkey", TypeId::kInt32},
                 {"o_custkey", TypeId::kInt32},
                 {"o_orderstatus", TypeId::kString},
                 {"o_totalprice", TypeId::kDouble},
                 {"o_orderdate", TypeId::kDate},
                 {"o_orderpriority", TypeId::kString},
                 {"o_clerk", TypeId::kString},
                 {"o_shippriority", TypeId::kInt32},
                 {"o_comment", TypeId::kString}});
}

Schema LineitemSchema() {
  return Schema({{"l_orderkey", TypeId::kInt32},
                 {"l_partkey", TypeId::kInt32},
                 {"l_suppkey", TypeId::kInt32},
                 {"l_linenumber", TypeId::kInt32},
                 {"l_quantity", TypeId::kDouble},
                 {"l_extendedprice", TypeId::kDouble},
                 {"l_discount", TypeId::kDouble},
                 {"l_tax", TypeId::kDouble},
                 {"l_returnflag", TypeId::kString},
                 {"l_linestatus", TypeId::kString},
                 {"l_shipdate", TypeId::kDate},
                 {"l_commitdate", TypeId::kDate},
                 {"l_receiptdate", TypeId::kDate},
                 {"l_shipinstruct", TypeId::kString},
                 {"l_shipmode", TypeId::kString},
                 {"l_comment", TypeId::kString}});
}

}  // namespace

double ScaleFromEnv(double fallback) {
  const char* env = std::getenv("RECYCLEDB_SF");
  if (env == nullptr || env[0] == '\0') return fallback;
  double sf = std::atof(env);
  return sf > 0 ? sf : fallback;
}

void Generate(double scale_factor, Catalog* catalog, uint64_t seed) {
  RDB_CHECK(scale_factor > 0);
  Rng rng(seed);

  const int64_t num_supplier =
      std::max<int64_t>(10, static_cast<int64_t>(10000 * scale_factor));
  const int64_t num_part =
      std::max<int64_t>(50, static_cast<int64_t>(200000 * scale_factor));
  const int64_t num_customer =
      std::max<int64_t>(30, static_cast<int64_t>(150000 * scale_factor));
  const int64_t num_orders =
      std::max<int64_t>(150, static_cast<int64_t>(1500000 * scale_factor));
  const int32_t kStartDate = MakeDate(1992, 1, 1);
  const int32_t kEndDate = MakeDate(1998, 8, 2);
  const int32_t kCurrentDate = MakeDate(1995, 6, 17);

  // --- region / nation --------------------------------------------------
  TablePtr region = MakeTable(RegionSchema());
  for (int r = 0; r < 5; ++r) {
    region->AppendRow({r, std::string(kRegionNames[r]), RandomWords(&rng, 3, 8)});
  }
  RDB_CHECK(catalog->RegisterTable("region", region).ok());

  TablePtr nation = MakeTable(NationSchema());
  for (int n = 0; n < 25; ++n) {
    nation->AppendRow({n, std::string(kNationNames[n]), kNationRegion[n],
                       RandomWords(&rng, 3, 8)});
  }
  RDB_CHECK(catalog->RegisterTable("nation", nation).ok());

  // --- supplier -----------------------------------------------------------
  TablePtr supplier = MakeTable(SupplierSchema());
  for (int64_t s = 1; s <= num_supplier; ++s) {
    int nk = static_cast<int>(rng.Uniform(0, 24));
    std::string comment = RandomWords(&rng, 6, 12);
    // ~1% of suppliers carry the Q16 exclusion needle.
    if (rng.Uniform(0, 99) == 0) comment += " Customer Complaints";
    supplier->AppendRow({static_cast<int32_t>(s),
                         StrFormat("Supplier#%09lld", (long long)s),
                         RandomWords(&rng, 2, 4), nk,
                         StrFormat("%02d-%03lld-%03lld-%04lld", nk + 10,
                                   (long long)rng.Uniform(100, 999),
                                   (long long)rng.Uniform(100, 999),
                                   (long long)rng.Uniform(1000, 9999)),
                         Money(&rng, -999.99, 9999.99), comment});
  }
  RDB_CHECK(catalog->RegisterTable("supplier", supplier).ok());

  // --- part ----------------------------------------------------------------
  TablePtr part = MakeTable(PartSchema());
  std::vector<double> retail_price(num_part + 1);
  for (int64_t p = 1; p <= num_part; ++p) {
    int m = static_cast<int>(rng.Uniform(1, 5));
    int n = static_cast<int>(rng.Uniform(1, 5));
    std::string type = std::string(kTypes1[rng.Uniform(0, 5)]) + " " +
                       kTypes2[rng.Uniform(0, 4)] + " " +
                       kTypes3[rng.Uniform(0, 4)];
    // p_name: 5 distinct-ish color words (Q9/Q20 probe with `contains`).
    std::string name;
    for (int w = 0; w < 5; ++w) {
      if (w > 0) name += ' ';
      name += kColors[rng.Uniform(0, 91)];
    }
    double price =
        (90000.0 + (p % 200001) / 10.0 + 100.0 * (p % 1000)) / 100.0;
    retail_price[p] = price;
    part->AppendRow({static_cast<int32_t>(p), name,
                     StrFormat("Manufacturer#%d", m),
                     StrFormat("Brand#%d%d", m, n), type,
                     static_cast<int32_t>(rng.Uniform(1, 50)),
                     std::string(kContainers[rng.Uniform(0, 39)]), price,
                     RandomWords(&rng, 2, 5)});
  }
  RDB_CHECK(catalog->RegisterTable("part", part).ok());

  // --- partsupp (4 suppliers per part) -------------------------------------
  TablePtr partsupp = MakeTable(PartsuppSchema());
  for (int64_t p = 1; p <= num_part; ++p) {
    for (int s = 0; s < 4; ++s) {
      // dbgen's supplier spread formula keeps part->supplier joins uniform.
      int64_t suppkey =
          (p + (s * ((num_supplier / 4) + (p - 1) / num_supplier))) %
              num_supplier +
          1;
      partsupp->AppendRow({static_cast<int32_t>(p),
                           static_cast<int32_t>(suppkey),
                           static_cast<int32_t>(rng.Uniform(1, 9999)),
                           Money(&rng, 1.0, 1000.0), RandomWords(&rng, 4, 10)});
    }
  }
  RDB_CHECK(catalog->RegisterTable("partsupp", partsupp).ok());

  // --- customer ---------------------------------------------------------
  TablePtr customer = MakeTable(CustomerSchema());
  for (int64_t c = 1; c <= num_customer; ++c) {
    int nk = static_cast<int>(rng.Uniform(0, 24));
    std::string code = StrFormat("%02d", nk + 10);
    customer->AppendRow({static_cast<int32_t>(c),
                         StrFormat("Customer#%09lld", (long long)c),
                         RandomWords(&rng, 2, 4), nk,
                         code + StrFormat("-%03lld-%03lld-%04lld",
                                          (long long)rng.Uniform(100, 999),
                                          (long long)rng.Uniform(100, 999),
                                          (long long)rng.Uniform(1000, 9999)),
                         code, Money(&rng, -999.99, 9999.99),
                         std::string(kSegments[rng.Uniform(0, 4)]),
                         RandomWords(&rng, 6, 12)});
  }
  RDB_CHECK(catalog->RegisterTable("customer", customer).ok());

  // --- orders + lineitem --------------------------------------------------
  TablePtr orders = MakeTable(OrdersSchema());
  TablePtr lineitem = MakeTable(LineitemSchema());
  for (int64_t o = 1; o <= num_orders; ++o) {
    int32_t custkey = static_cast<int32_t>(rng.Uniform(1, num_customer));
    int32_t orderdate = static_cast<int32_t>(
        rng.Uniform(kStartDate, kEndDate - 151));
    int nlines = static_cast<int>(rng.Uniform(1, 7));
    double totalprice = 0;
    int finished = 0;
    for (int l = 1; l <= nlines; ++l) {
      int32_t partkey = static_cast<int32_t>(rng.Uniform(1, num_part));
      // Pick one of the part's 4 suppliers, mirroring the partsupp spread.
      int s = static_cast<int>(rng.Uniform(0, 3));
      int64_t suppkey =
          (partkey +
           (s * ((num_supplier / 4) + (partkey - 1) / num_supplier))) %
              num_supplier +
          1;
      double quantity = static_cast<double>(rng.Uniform(1, 50));
      double extprice = quantity * retail_price[partkey];
      double discount = static_cast<double>(rng.Uniform(0, 10)) / 100.0;
      double tax = static_cast<double>(rng.Uniform(0, 8)) / 100.0;
      int32_t shipdate = orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
      int32_t commitdate =
          orderdate + static_cast<int32_t>(rng.Uniform(30, 90));
      int32_t receiptdate =
          shipdate + static_cast<int32_t>(rng.Uniform(1, 30));
      std::string returnflag;
      if (receiptdate <= kCurrentDate) {
        returnflag = rng.Uniform(0, 1) == 0 ? "R" : "A";
      } else {
        returnflag = "N";
      }
      std::string linestatus = shipdate > kCurrentDate ? "O" : "F";
      if (linestatus == "F") ++finished;
      totalprice += extprice * (1.0 - discount) * (1.0 + tax);
      lineitem->AppendRow({static_cast<int32_t>(o), partkey,
                           static_cast<int32_t>(suppkey),
                           static_cast<int32_t>(l), quantity, extprice,
                           discount, tax, returnflag, linestatus, shipdate,
                           commitdate, receiptdate,
                           std::string(kShipInstruct[rng.Uniform(0, 3)]),
                           std::string(kShipModes[rng.Uniform(0, 6)]),
                           RandomWords(&rng, 2, 6)});
    }
    std::string status = finished == nlines ? "F"
                         : finished == 0    ? "O"
                                            : "P";
    std::string comment = RandomWords(&rng, 5, 10);
    // ~1% of orders carry the Q13 "special ... requests" needle.
    if (rng.Uniform(0, 99) == 0) comment += " special packages requests";
    orders->AppendRow({static_cast<int32_t>(o), custkey, status, totalprice,
                       orderdate, std::string(kPriorities[rng.Uniform(0, 4)]),
                       StrFormat("Clerk#%09lld", (long long)rng.Uniform(
                                                     1, num_orders / 1000 + 1)),
                       0, comment});
  }
  RDB_CHECK(catalog->RegisterTable("orders", orders).ok());
  RDB_CHECK(catalog->RegisterTable("lineitem", lineitem).ok());
}

}  // namespace tpch
}  // namespace recycledb
