#include "tpch/qgen.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "tpch/dbgen.h"

namespace recycledb {
namespace tpch {

namespace {

std::string RandNation(Rng* rng) { return kNationNames[rng->Uniform(0, 24)]; }
std::string RandRegion(Rng* rng) { return kRegionNames[rng->Uniform(0, 4)]; }

std::string RandBrand(Rng* rng) {
  return StrFormat("Brand#%d%d", (int)rng->Uniform(1, 5),
                   (int)rng->Uniform(1, 5));
}

std::string RandType(Rng* rng) {
  return std::string(kTypes1[rng->Uniform(0, 5)]) + " " +
         kTypes2[rng->Uniform(0, 4)] + " " + kTypes3[rng->Uniform(0, 4)];
}

int32_t FirstOfMonth(Rng* rng, int ylo, int yhi, int mhi_in_last_year = 12) {
  int y = static_cast<int>(rng->Uniform(ylo, yhi));
  int mhi = y == yhi ? mhi_in_last_year : 12;
  int m = static_cast<int>(rng->Uniform(1, mhi));
  return MakeDate(y, m, 1);
}

}  // namespace

QueryParams GenerateParams(int query, Rng* rng, double scale_factor) {
  QueryParams p;
  switch (query) {
    case 1:
      // DELTA in [60, 120] days before 1998-12-01.
      p.date1 = MakeDate(1998, 12, 1) -
                static_cast<int32_t>(rng->Uniform(60, 120));
      break;
    case 2:
      p.i1 = rng->Uniform(1, 50);                // SIZE
      p.s1 = kTypes3[rng->Uniform(0, 4)];        // TYPE suffix
      p.s2 = RandRegion(rng);                    // REGION
      break;
    case 3:
      p.s1 = kSegments[rng->Uniform(0, 4)];      // SEGMENT
      p.date1 = MakeDate(1995, 3, 1) + static_cast<int32_t>(rng->Uniform(0, 30));
      break;
    case 4:
      p.date1 = FirstOfMonth(rng, 1993, 1997, 10);
      break;
    case 5:
      p.s1 = RandRegion(rng);
      p.date1 = MakeDate(static_cast<int>(rng->Uniform(1993, 1997)), 1, 1);
      break;
    case 6:
      p.date1 = MakeDate(static_cast<int>(rng->Uniform(1993, 1997)), 1, 1);
      p.d1 = static_cast<double>(rng->Uniform(2, 9)) / 100.0;  // DISCOUNT
      p.i1 = rng->Uniform(24, 25);                             // QUANTITY
      break;
    case 7: {
      int a = static_cast<int>(rng->Uniform(0, 24));
      int b = static_cast<int>(rng->Uniform(0, 23));
      if (b >= a) ++b;
      p.s1 = kNationNames[a];
      p.s2 = kNationNames[b];
      break;
    }
    case 8: {
      int n = static_cast<int>(rng->Uniform(0, 24));
      p.s1 = kNationNames[n];
      p.s2 = kRegionNames[kNationRegion[n]];
      p.s3 = RandType(rng);
      break;
    }
    case 9:
      p.s1 = kColors[rng->Uniform(0, 91)];  // ~100-value parameter
      break;
    case 10: {
      // First of month in 1993-02 .. 1995-01 (24 values).
      int k = static_cast<int>(rng->Uniform(0, 23));
      int y = 1993 + (k + 1) / 12;
      int m = (k + 1) % 12 + 1;
      p.date1 = MakeDate(y, m, 1);
      break;
    }
    case 11:
      p.s1 = RandNation(rng);
      p.d1 = 0.0001 / scale_factor;
      break;
    case 12: {
      int a = static_cast<int>(rng->Uniform(0, 6));
      int b = static_cast<int>(rng->Uniform(0, 5));
      if (b >= a) ++b;
      p.s1 = kShipModes[a];
      p.s2 = kShipModes[b];
      p.date1 = MakeDate(static_cast<int>(rng->Uniform(1993, 1997)), 1, 1);
      break;
    }
    case 13: {
      static const char* w1[4] = {"special", "pending", "unusual", "express"};
      static const char* w2[4] = {"packages", "requests", "accounts",
                                  "deposits"};
      p.s1 = w1[rng->Uniform(0, 3)];
      p.s2 = w2[rng->Uniform(0, 3)];
      break;
    }
    case 14:
      p.date1 = FirstOfMonth(rng, 1993, 1997);
      break;
    case 15:
      p.date1 = FirstOfMonth(rng, 1993, 1997, 10);
      break;
    case 16: {
      p.s1 = RandBrand(rng);
      p.s2 = std::string(kTypes1[rng->Uniform(0, 5)]) + " " +
             kTypes2[rng->Uniform(0, 4)];
      // 8 distinct sizes in [1, 50].
      std::vector<int> sizes;
      while (sizes.size() < 8) {
        int s = static_cast<int>(rng->Uniform(1, 50));
        if (std::find(sizes.begin(), sizes.end(), s) == sizes.end()) {
          sizes.push_back(s);
        }
      }
      for (int s : sizes) p.strs.push_back(std::to_string(s));
      break;
    }
    case 17:
      p.s1 = RandBrand(rng);
      p.s2 = kContainers[rng->Uniform(0, 39)];
      break;
    case 18:
      p.i1 = rng->Uniform(312, 315);
      break;
    case 19:
      p.s1 = RandBrand(rng);
      p.s2 = RandBrand(rng);
      p.s3 = RandBrand(rng);
      p.i1 = rng->Uniform(1, 10);
      p.i2 = rng->Uniform(10, 20);
      p.i3 = rng->Uniform(20, 30);
      break;
    case 20:
      p.s1 = kColors[rng->Uniform(0, 91)];
      p.date1 = MakeDate(static_cast<int>(rng->Uniform(1993, 1997)), 1, 1);
      p.s2 = RandNation(rng);
      break;
    case 21:
      p.s1 = RandNation(rng);
      break;
    case 22: {
      // 7 distinct two-digit country codes in [10, 34].
      std::vector<int> codes;
      while (codes.size() < 7) {
        int c = static_cast<int>(rng->Uniform(10, 34));
        if (std::find(codes.begin(), codes.end(), c) == codes.end()) {
          codes.push_back(c);
        }
      }
      for (int c : codes) p.strs.push_back(std::to_string(c));
      break;
    }
    default:
      RDB_UNREACHABLE("query must be 1..22");
  }
  return p;
}

std::vector<StreamQuery> GenerateStream(int stream_id, Rng* rng,
                                        double scale_factor) {
  (void)stream_id;
  std::vector<StreamQuery> stream;
  stream.reserve(kNumQueries);
  std::vector<int> order;
  for (int q = 1; q <= kNumQueries; ++q) order.push_back(q);
  // Seeded Fisher-Yates shuffle (per-stream query ordering).
  for (int i = kNumQueries - 1; i > 0; --i) {
    int j = static_cast<int>(rng->Uniform(0, i));
    std::swap(order[i], order[j]);
  }
  for (int q : order) {
    stream.push_back({q, GenerateParams(q, rng, scale_factor)});
  }
  return stream;
}

std::vector<workload::StreamSpec> MakeStreams(int num_streams,
                                              double scale_factor,
                                              uint64_t seed) {
  std::vector<workload::StreamSpec> streams;
  streams.reserve(num_streams);
  for (int s = 0; s < num_streams; ++s) {
    Rng rng(seed + static_cast<uint64_t>(s) * 1000003ULL);
    workload::StreamSpec spec;
    for (const auto& q : GenerateStream(s, &rng, scale_factor)) {
      spec.labels.push_back("Q" + std::to_string(q.query));
      spec.plans.push_back(BuildQuery(q.query, q.params, scale_factor));
    }
    streams.push_back(std::move(spec));
  }
  return streams;
}

std::vector<workload::StreamSpec> MakeStreams(
    int num_streams, double scale_factor,
    const workload::DriverOptions& options) {
  return MakeStreams(num_streams, scale_factor,
                     workload::ResolveSeed(options, 77));
}

}  // namespace tpch
}  // namespace recycledb
