// QGEN re-implementation: spec-conformant substitution-parameter domains
// for the 22 TPC-H query patterns.
//
// The TPC-H throughput test's sharing potential comes from these domains:
// each pattern has a limited number of valid parameter values, so
// concurrent streams frequently draw colliding parameters (§V).
#pragma once

#include "common/rng.h"
#include "tpch/queries.h"
#include "workload/driver.h"

namespace recycledb {
namespace tpch {

/// Draws spec-conformant parameters for query `query` (1..22).
QueryParams GenerateParams(int query, Rng* rng, double scale_factor);

/// A stream is a permutation of the 22 patterns with fresh parameters
/// (the spec's per-stream ordering is approximated by a seeded shuffle).
struct StreamQuery {
  int query;  // 1..22
  QueryParams params;
};
std::vector<StreamQuery> GenerateStream(int stream_id, Rng* rng,
                                        double scale_factor);

/// Driver-ready throughput-test streams: `num_streams` spec-conformant
/// permutation streams with fresh parameters, seeded per stream so every
/// recycler mode replays the identical workload. The facade-level entry
/// point examples and benches share.
std::vector<workload::StreamSpec> MakeStreams(int num_streams,
                                              double scale_factor,
                                              uint64_t seed = 77);

/// Driver-options overload: uses `options.seed` when non-zero, else the
/// historical default (77), so a recorded run names one seed that
/// regenerates the identical streams.
std::vector<workload::StreamSpec> MakeStreams(
    int num_streams, double scale_factor,
    const workload::DriverOptions& options);

}  // namespace tpch
}  // namespace recycledb
