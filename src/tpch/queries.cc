#include "tpch/queries.h"

#include "common/macros.h"
#include "common/types.h"

namespace recycledb {
namespace tpch {

namespace {

// Shorthand builders.
ExprPtr C(const std::string& n) { return Expr::Column(n); }
ExprPtr Li(int64_t v) { return Expr::Literal(v); }
ExprPtr Ld(double v) { return Expr::Literal(v); }
ExprPtr Ls(const char* s) { return Expr::Literal(std::string(s)); }
ExprPtr Ldate(int32_t d) { return Expr::Literal(d); }

PlanPtr Scan(const std::string& t, std::vector<std::string> cols) {
  return PlanNode::Scan(t, std::move(cols));
}

/// l_extendedprice * (1 - l_discount)
ExprPtr Revenue() {
  return Expr::Arith(ArithOp::kMul, C("l_extendedprice"),
                     Expr::Arith(ArithOp::kSub, Ld(1.0), C("l_discount")));
}

/// Adds `months` to a days-since-epoch date (first-of-month safe).
int32_t AddMonths(int32_t date, int months) {
  int y = DateYear(date);
  int m = DateMonth(date) + months;
  y += (m - 1) / 12;
  m = (m - 1) % 12 + 1;
  return MakeDate(y, m, 1);
}

ExprPtr DateBetween(const char* col, int32_t lo_incl, int32_t hi_excl) {
  return Expr::And(Expr::Ge(C(col), Ldate(lo_incl)),
                   Expr::Lt(C(col), Ldate(hi_excl)));
}

// ---------------------------------------------------------------------------
// Q1: pricing summary report. Params: date1 (shipdate upper bound).
// The Aggregate-over-Select shape is the paper's cube-with-binning target.
// ---------------------------------------------------------------------------
PlanPtr Q1(const QueryParams& p) {
  PlanPtr scan = Scan("lineitem",
                      {"l_returnflag", "l_linestatus", "l_quantity",
                       "l_extendedprice", "l_discount", "l_tax", "l_shipdate"});
  PlanPtr sel =
      PlanNode::Select(scan, Expr::Le(C("l_shipdate"), Ldate(p.date1)));
  ExprPtr disc_price = Revenue();
  ExprPtr charge = Expr::Arith(
      ArithOp::kMul, Revenue(),
      Expr::Arith(ArithOp::kAdd, Ld(1.0), C("l_tax")));
  PlanPtr agg = PlanNode::Aggregate(
      sel, {"l_returnflag", "l_linestatus"},
      {{AggFunc::kSum, C("l_quantity"), "sum_qty"},
       {AggFunc::kSum, C("l_extendedprice"), "sum_base_price"},
       {AggFunc::kSum, disc_price, "sum_disc_price"},
       {AggFunc::kSum, charge, "sum_charge"},
       {AggFunc::kAvg, C("l_quantity"), "avg_qty"},
       {AggFunc::kAvg, C("l_extendedprice"), "avg_price"},
       {AggFunc::kAvg, C("l_discount"), "avg_disc"},
       {AggFunc::kCount, Li(1), "count_order"}});
  return PlanNode::OrderBy(agg, {{"l_returnflag", true}, {"l_linestatus", true}});
}

// ---------------------------------------------------------------------------
// Q2: minimum-cost supplier. Params: i1=size, s1=type suffix, s2=region.
// The correlated MIN subquery is decorrelated into a group-by + join.
// ---------------------------------------------------------------------------
PlanPtr Q2(const QueryParams& p) {
  PlanPtr parts = PlanNode::Select(
      Scan("part", {"p_partkey", "p_mfgr", "p_type", "p_size"}),
      Expr::And(Expr::Eq(C("p_size"), Li(p.i1)),
                Expr::Like(LikeKind::kSuffix, C("p_type"), p.s1)));
  PlanPtr nr = PlanNode::HashJoin(
      Scan("nation", {"n_nationkey", "n_name", "n_regionkey"}),
      PlanNode::Select(Scan("region", {"r_regionkey", "r_name"}),
                       Expr::Eq(C("r_name"), Ls(p.s2.c_str()))),
      JoinKind::kInner, {"n_regionkey"}, {"r_regionkey"});
  PlanPtr sup = PlanNode::HashJoin(
      Scan("supplier", {"s_suppkey", "s_name", "s_address", "s_nationkey",
                        "s_phone", "s_acctbal"}),
      nr, JoinKind::kInner, {"s_nationkey"}, {"n_nationkey"});
  PlanPtr pssup = PlanNode::HashJoin(
      Scan("partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}), sup,
      JoinKind::kInner, {"ps_suppkey"}, {"s_suppkey"});
  PlanPtr target = PlanNode::HashJoin(pssup, parts, JoinKind::kInner,
                                      {"ps_partkey"}, {"p_partkey"});
  PlanPtr minagg = PlanNode::Aggregate(
      pssup, {"ps_partkey"},
      {{AggFunc::kMin, C("ps_supplycost"), "min_cost"}});
  PlanPtr minp = PlanNode::Project(
      minagg, {{C("ps_partkey"), "mc_partkey"}, {C("min_cost"), "min_cost"}});
  PlanPtr joined = PlanNode::HashJoin(target, minp, JoinKind::kInner,
                                      {"ps_partkey"}, {"mc_partkey"});
  PlanPtr filtered = PlanNode::Select(
      joined, Expr::Eq(C("ps_supplycost"), C("min_cost")));
  PlanPtr proj = PlanNode::Project(
      filtered,
      {{C("s_acctbal"), "s_acctbal"},
       {C("s_name"), "s_name"},
       {C("n_name"), "n_name"},
       {C("p_partkey"), "p_partkey"},
       {C("p_mfgr"), "p_mfgr"},
       {C("s_address"), "s_address"},
       {C("s_phone"), "s_phone"}});
  return PlanNode::TopN(proj,
                        {{"s_acctbal", false},
                         {"n_name", true},
                         {"s_name", true},
                         {"p_partkey", true}},
                        100);
}

// ---------------------------------------------------------------------------
// Q3: shipping priority. Params: s1=segment, date1.
// ---------------------------------------------------------------------------
PlanPtr Q3(const QueryParams& p) {
  PlanPtr c = PlanNode::Select(Scan("customer", {"c_custkey", "c_mktsegment"}),
                               Expr::Eq(C("c_mktsegment"), Ls(p.s1.c_str())));
  PlanPtr o = PlanNode::Select(
      Scan("orders", {"o_orderkey", "o_custkey", "o_orderdate",
                      "o_shippriority"}),
      Expr::Lt(C("o_orderdate"), Ldate(p.date1)));
  PlanPtr l = PlanNode::Select(
      Scan("lineitem",
           {"l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"}),
      Expr::Gt(C("l_shipdate"), Ldate(p.date1)));
  PlanPtr j1 = PlanNode::HashJoin(o, c, JoinKind::kInner, {"o_custkey"},
                                  {"c_custkey"});
  PlanPtr j2 = PlanNode::HashJoin(l, j1, JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  PlanPtr agg = PlanNode::Aggregate(
      j2, {"l_orderkey", "o_orderdate", "o_shippriority"},
      {{AggFunc::kSum, Revenue(), "revenue"}});
  return PlanNode::TopN(agg, {{"revenue", false}, {"o_orderdate", true}}, 10);
}

// ---------------------------------------------------------------------------
// Q4: order priority checking. Params: date1 (quarter start).
// EXISTS is a semi join against the late-lineitem selection.
// ---------------------------------------------------------------------------
PlanPtr Q4(const QueryParams& p) {
  PlanPtr o = PlanNode::Select(
      Scan("orders", {"o_orderkey", "o_orderdate", "o_orderpriority"}),
      DateBetween("o_orderdate", p.date1, AddMonths(p.date1, 3)));
  PlanPtr l = PlanNode::Select(
      Scan("lineitem", {"l_orderkey", "l_commitdate", "l_receiptdate"}),
      Expr::Lt(C("l_commitdate"), C("l_receiptdate")));
  PlanPtr semi = PlanNode::HashJoin(o, l, JoinKind::kSemi, {"o_orderkey"},
                                    {"l_orderkey"});
  PlanPtr agg = PlanNode::Aggregate(
      semi, {"o_orderpriority"}, {{AggFunc::kCount, Li(1), "order_count"}});
  return PlanNode::OrderBy(agg, {{"o_orderpriority", true}});
}

// ---------------------------------------------------------------------------
// Q5: local supplier volume. Params: s1=region, date1 (year start).
// ---------------------------------------------------------------------------
PlanPtr Q5(const QueryParams& p) {
  PlanPtr nr = PlanNode::HashJoin(
      Scan("nation", {"n_nationkey", "n_name", "n_regionkey"}),
      PlanNode::Select(Scan("region", {"r_regionkey", "r_name"}),
                       Expr::Eq(C("r_name"), Ls(p.s1.c_str()))),
      JoinKind::kInner, {"n_regionkey"}, {"r_regionkey"});
  PlanPtr sup = PlanNode::HashJoin(Scan("supplier", {"s_suppkey", "s_nationkey"}),
                                   nr, JoinKind::kInner, {"s_nationkey"},
                                   {"n_nationkey"});
  PlanPtr l = Scan("lineitem",
                   {"l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"});
  PlanPtr j1 = PlanNode::HashJoin(l, sup, JoinKind::kInner, {"l_suppkey"},
                                  {"s_suppkey"});
  PlanPtr o = PlanNode::Select(
      Scan("orders", {"o_orderkey", "o_custkey", "o_orderdate"}),
      DateBetween("o_orderdate", p.date1, AddMonths(p.date1, 12)));
  PlanPtr j2 = PlanNode::HashJoin(j1, o, JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  PlanPtr j3 = PlanNode::HashJoin(
      j2, Scan("customer", {"c_custkey", "c_nationkey"}), JoinKind::kInner,
      {"o_custkey", "s_nationkey"}, {"c_custkey", "c_nationkey"});
  PlanPtr agg = PlanNode::Aggregate(j3, {"n_name"},
                                    {{AggFunc::kSum, Revenue(), "revenue"}});
  return PlanNode::OrderBy(agg, {{"revenue", false}});
}

// ---------------------------------------------------------------------------
// Q6: forecasting revenue change. Params: date1, d1=discount, i1=quantity.
// ---------------------------------------------------------------------------
PlanPtr Q6(const QueryParams& p) {
  PlanPtr sel = PlanNode::Select(
      Scan("lineitem",
           {"l_quantity", "l_extendedprice", "l_discount", "l_shipdate"}),
      Expr::And(
          Expr::And(DateBetween("l_shipdate", p.date1, AddMonths(p.date1, 12)),
                    Expr::And(Expr::Ge(C("l_discount"), Ld(p.d1 - 0.0101)),
                              Expr::Le(C("l_discount"), Ld(p.d1 + 0.0101)))),
          Expr::Lt(C("l_quantity"), Li(p.i1))));
  return PlanNode::Aggregate(
      sel, {},
      {{AggFunc::kSum,
        Expr::Arith(ArithOp::kMul, C("l_extendedprice"), C("l_discount")),
        "revenue"}});
}

// ---------------------------------------------------------------------------
// Q7: volume shipping. Params: s1=nation1, s2=nation2.
// ---------------------------------------------------------------------------
PlanPtr Q7(const QueryParams& p) {
  PlanPtr n1 = PlanNode::Project(Scan("nation", {"n_nationkey", "n_name"}),
                                 {{C("n_nationkey"), "n1_key"},
                                  {C("n_name"), "supp_nation"}});
  PlanPtr n2 = PlanNode::Project(Scan("nation", {"n_nationkey", "n_name"}),
                                 {{C("n_nationkey"), "n2_key"},
                                  {C("n_name"), "cust_nation"}});
  PlanPtr sup = PlanNode::HashJoin(Scan("supplier", {"s_suppkey", "s_nationkey"}),
                                   n1, JoinKind::kInner, {"s_nationkey"},
                                   {"n1_key"});
  PlanPtr cus = PlanNode::HashJoin(Scan("customer", {"c_custkey", "c_nationkey"}),
                                   n2, JoinKind::kInner, {"c_nationkey"},
                                   {"n2_key"});
  PlanPtr l = PlanNode::Select(
      Scan("lineitem", {"l_orderkey", "l_suppkey", "l_shipdate",
                        "l_extendedprice", "l_discount"}),
      DateBetween("l_shipdate", MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)));
  PlanPtr j1 = PlanNode::HashJoin(l, sup, JoinKind::kInner, {"l_suppkey"},
                                  {"s_suppkey"});
  PlanPtr j2 = PlanNode::HashJoin(j1, Scan("orders", {"o_orderkey", "o_custkey"}),
                                  JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  PlanPtr j3 = PlanNode::HashJoin(j2, cus, JoinKind::kInner, {"o_custkey"},
                                  {"c_custkey"});
  PlanPtr f = PlanNode::Select(
      j3,
      Expr::Or(Expr::And(Expr::Eq(C("supp_nation"), Ls(p.s1.c_str())),
                         Expr::Eq(C("cust_nation"), Ls(p.s2.c_str()))),
               Expr::And(Expr::Eq(C("supp_nation"), Ls(p.s2.c_str())),
                         Expr::Eq(C("cust_nation"), Ls(p.s1.c_str())))));
  PlanPtr pr = PlanNode::Project(
      f, {{C("supp_nation"), "supp_nation"},
          {C("cust_nation"), "cust_nation"},
          {Expr::Func("year", {C("l_shipdate")}), "l_year"},
          {Revenue(), "volume"}});
  PlanPtr agg = PlanNode::Aggregate(pr, {"supp_nation", "cust_nation", "l_year"},
                                    {{AggFunc::kSum, C("volume"), "revenue"}});
  return PlanNode::OrderBy(
      agg, {{"supp_nation", true}, {"cust_nation", true}, {"l_year", true}});
}

// ---------------------------------------------------------------------------
// Q8: national market share. Params: s1=nation, s2=region, s3=type.
// ---------------------------------------------------------------------------
PlanPtr Q8(const QueryParams& p) {
  PlanPtr part = PlanNode::Select(Scan("part", {"p_partkey", "p_type"}),
                                  Expr::Eq(C("p_type"), Ls(p.s3.c_str())));
  PlanPtr l = Scan("lineitem", {"l_orderkey", "l_partkey", "l_suppkey",
                                "l_extendedprice", "l_discount"});
  PlanPtr j1 = PlanNode::HashJoin(l, part, JoinKind::kInner, {"l_partkey"},
                                  {"p_partkey"});
  PlanPtr o = PlanNode::Select(
      Scan("orders", {"o_orderkey", "o_custkey", "o_orderdate"}),
      DateBetween("o_orderdate", MakeDate(1995, 1, 1), MakeDate(1997, 1, 1)));
  PlanPtr j2 = PlanNode::HashJoin(j1, o, JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  PlanPtr j3 = PlanNode::HashJoin(j2, Scan("customer", {"c_custkey", "c_nationkey"}),
                                  JoinKind::kInner, {"o_custkey"},
                                  {"c_custkey"});
  // Customer nation restricted to the region.
  PlanPtr cnation = PlanNode::Project(
      PlanNode::HashJoin(
          Scan("nation", {"n_nationkey", "n_regionkey"}),
          PlanNode::Select(Scan("region", {"r_regionkey", "r_name"}),
                           Expr::Eq(C("r_name"), Ls(p.s2.c_str()))),
          JoinKind::kInner, {"n_regionkey"}, {"r_regionkey"}),
      {{C("n_nationkey"), "cn_key"}});
  PlanPtr j4 = PlanNode::HashJoin(j3, cnation, JoinKind::kInner,
                                  {"c_nationkey"}, {"cn_key"});
  // Supplier nation name (the market-share nation probe).
  PlanPtr snation = PlanNode::Project(Scan("nation", {"n_nationkey", "n_name"}),
                                      {{C("n_nationkey"), "sn_key"},
                                       {C("n_name"), "nation_name"}});
  PlanPtr sup = PlanNode::HashJoin(Scan("supplier", {"s_suppkey", "s_nationkey"}),
                                   snation, JoinKind::kInner, {"s_nationkey"},
                                   {"sn_key"});
  PlanPtr j5 = PlanNode::HashJoin(j4, sup, JoinKind::kInner, {"l_suppkey"},
                                  {"s_suppkey"});
  PlanPtr pr = PlanNode::Project(
      j5, {{Expr::Func("year", {C("o_orderdate")}), "o_year"},
           {Revenue(), "volume"},
           {C("nation_name"), "nation_name"}});
  PlanPtr agg = PlanNode::Aggregate(
      pr, {"o_year"},
      {{AggFunc::kSum,
        Expr::Case(Expr::Eq(C("nation_name"), Ls(p.s1.c_str())), C("volume"),
                   Ld(0.0)),
        "nation_volume"},
       {AggFunc::kSum, C("volume"), "total_volume"}});
  PlanPtr share = PlanNode::Project(
      agg, {{C("o_year"), "o_year"},
            {Expr::Arith(ArithOp::kDiv, C("nation_volume"), C("total_volume")),
             "mkt_share"}});
  return PlanNode::OrderBy(share, {{"o_year", true}});
}

// ---------------------------------------------------------------------------
// Q9: product type profit. Params: s1=color (the ~100-value parameter the
// paper highlights: HIST cannot help, SPEC can).
// ---------------------------------------------------------------------------
PlanPtr Q9(const QueryParams& p) {
  PlanPtr part = PlanNode::Select(
      Scan("part", {"p_partkey", "p_name"}),
      Expr::Like(LikeKind::kContains, C("p_name"), p.s1));
  PlanPtr l = Scan("lineitem", {"l_orderkey", "l_partkey", "l_suppkey",
                                "l_quantity", "l_extendedprice", "l_discount"});
  PlanPtr j1 = PlanNode::HashJoin(l, part, JoinKind::kInner, {"l_partkey"},
                                  {"p_partkey"});
  PlanPtr j2 = PlanNode::HashJoin(
      j1, Scan("partsupp", {"ps_partkey", "ps_suppkey", "ps_supplycost"}),
      JoinKind::kInner, {"l_partkey", "l_suppkey"},
      {"ps_partkey", "ps_suppkey"});
  PlanPtr sup = PlanNode::HashJoin(Scan("supplier", {"s_suppkey", "s_nationkey"}),
                                   Scan("nation", {"n_nationkey", "n_name"}),
                                   JoinKind::kInner, {"s_nationkey"},
                                   {"n_nationkey"});
  PlanPtr j3 = PlanNode::HashJoin(j2, sup, JoinKind::kInner, {"l_suppkey"},
                                  {"s_suppkey"});
  PlanPtr j4 = PlanNode::HashJoin(j3, Scan("orders", {"o_orderkey", "o_orderdate"}),
                                  JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  ExprPtr amount = Expr::Arith(
      ArithOp::kSub, Revenue(),
      Expr::Arith(ArithOp::kMul, C("ps_supplycost"), C("l_quantity")));
  PlanPtr pr = PlanNode::Project(
      j4, {{C("n_name"), "nation"},
           {Expr::Func("year", {C("o_orderdate")}), "o_year"},
           {amount, "amount"}});
  PlanPtr agg = PlanNode::Aggregate(pr, {"nation", "o_year"},
                                    {{AggFunc::kSum, C("amount"), "sum_profit"}});
  return PlanNode::OrderBy(agg, {{"nation", true}, {"o_year", false}});
}

// ---------------------------------------------------------------------------
// Q10: returned item reporting. Params: date1 (quarter start).
// ---------------------------------------------------------------------------
PlanPtr Q10(const QueryParams& p) {
  PlanPtr o = PlanNode::Select(
      Scan("orders", {"o_orderkey", "o_custkey", "o_orderdate"}),
      DateBetween("o_orderdate", p.date1, AddMonths(p.date1, 3)));
  PlanPtr l = PlanNode::Select(
      Scan("lineitem",
           {"l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"}),
      Expr::Eq(C("l_returnflag"), Ls("R")));
  PlanPtr j1 = PlanNode::HashJoin(l, o, JoinKind::kInner, {"l_orderkey"},
                                  {"o_orderkey"});
  PlanPtr j2 = PlanNode::HashJoin(
      j1,
      Scan("customer", {"c_custkey", "c_name", "c_acctbal", "c_phone",
                        "c_nationkey", "c_address"}),
      JoinKind::kInner, {"o_custkey"}, {"c_custkey"});
  PlanPtr j3 = PlanNode::HashJoin(j2, Scan("nation", {"n_nationkey", "n_name"}),
                                  JoinKind::kInner, {"c_nationkey"},
                                  {"n_nationkey"});
  PlanPtr agg = PlanNode::Aggregate(
      j3, {"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address"},
      {{AggFunc::kSum, Revenue(), "revenue"}});
  return PlanNode::TopN(agg, {{"revenue", false}}, 20);
}

// ---------------------------------------------------------------------------
// Q11: important stock identification. Params: s1=nation, d1=fraction.
// The scalar subquery becomes a single-row join on a constant key.
// ---------------------------------------------------------------------------
PlanPtr Q11(const QueryParams& p) {
  PlanPtr base = PlanNode::HashJoin(
      PlanNode::HashJoin(
          Scan("partsupp",
               {"ps_partkey", "ps_suppkey", "ps_availqty", "ps_supplycost"}),
          Scan("supplier", {"s_suppkey", "s_nationkey"}), JoinKind::kInner,
          {"ps_suppkey"}, {"s_suppkey"}),
      PlanNode::Select(Scan("nation", {"n_nationkey", "n_name"}),
                       Expr::Eq(C("n_name"), Ls(p.s1.c_str()))),
      JoinKind::kInner, {"s_nationkey"}, {"n_nationkey"});
  ExprPtr value =
      Expr::Arith(ArithOp::kMul, C("ps_supplycost"), C("ps_availqty"));
  PlanPtr grouped = PlanNode::Aggregate(
      base, {"ps_partkey"}, {{AggFunc::kSum, value, "part_value"}});
  PlanPtr total = PlanNode::Aggregate(
      base, {}, {{AggFunc::kSum, value, "total_value"}});
  PlanPtr total_p = PlanNode::Project(
      total,
      {{Expr::Arith(ArithOp::kMul, C("total_value"), Ld(p.d1)), "threshold"},
       {Li(1), "jk_t"}});
  PlanPtr grouped_p = PlanNode::Project(grouped, {{C("ps_partkey"), "ps_partkey"},
                                                  {C("part_value"), "part_value"},
                                                  {Li(1), "jk_g"}});
  PlanPtr joined = PlanNode::HashJoin(grouped_p, total_p, JoinKind::kSingle,
                                      {"jk_g"}, {"jk_t"});
  PlanPtr f = PlanNode::Select(joined, Expr::Gt(C("part_value"), C("threshold")));
  PlanPtr pr = PlanNode::Project(
      f, {{C("ps_partkey"), "ps_partkey"}, {C("part_value"), "value"}});
  return PlanNode::OrderBy(pr, {{"value", false}});
}

// ---------------------------------------------------------------------------
// Q12: shipping modes and order priority. Params: s1,s2=modes, date1=year.
// ---------------------------------------------------------------------------
PlanPtr Q12(const QueryParams& p) {
  PlanPtr l = PlanNode::Select(
      Scan("lineitem", {"l_orderkey", "l_shipmode", "l_shipdate",
                        "l_commitdate", "l_receiptdate"}),
      Expr::And(
          Expr::And(Expr::In(C("l_shipmode"),
                             {std::string(p.s1), std::string(p.s2)}),
                    Expr::And(Expr::Lt(C("l_commitdate"), C("l_receiptdate")),
                              Expr::Lt(C("l_shipdate"), C("l_commitdate")))),
          DateBetween("l_receiptdate", p.date1, AddMonths(p.date1, 12))));
  PlanPtr j = PlanNode::HashJoin(l, Scan("orders", {"o_orderkey", "o_orderpriority"}),
                                 JoinKind::kInner, {"l_orderkey"},
                                 {"o_orderkey"});
  ExprPtr is_high = Expr::In(C("o_orderpriority"),
                             {std::string("1-URGENT"), std::string("2-HIGH")});
  PlanPtr agg = PlanNode::Aggregate(
      j, {"l_shipmode"},
      {{AggFunc::kSum, Expr::Case(is_high, Li(1), Li(0)), "high_line_count"},
       {AggFunc::kSum, Expr::Case(Expr::Not(is_high), Li(1), Li(0)),
        "low_line_count"}});
  return PlanNode::OrderBy(agg, {{"l_shipmode", true}});
}

// ---------------------------------------------------------------------------
// Q13: customer distribution. Params: s1,s2=comment words.
// LIKE '%w1%w2%' is approximated by contains(w1) AND contains(w2)
// (word order is ignored; documented simplification). COUNT over the
// left-outer join excludes padded rows via a CASE on the pad value.
// ---------------------------------------------------------------------------
PlanPtr Q13(const QueryParams& p) {
  PlanPtr o = PlanNode::Project(
      PlanNode::Select(
          Scan("orders", {"o_orderkey", "o_custkey", "o_comment"}),
          Expr::Not(Expr::And(
              Expr::Like(LikeKind::kContains, C("o_comment"), p.s1),
              Expr::Like(LikeKind::kContains, C("o_comment"), p.s2)))),
      {{C("o_orderkey"), "o_orderkey"}, {C("o_custkey"), "o_custkey"}});
  PlanPtr j = PlanNode::HashJoin(Scan("customer", {"c_custkey"}), o,
                                 JoinKind::kLeftOuter, {"c_custkey"},
                                 {"o_custkey"});
  PlanPtr a1 = PlanNode::Aggregate(
      j, {"c_custkey"},
      {{AggFunc::kSum,
        Expr::Case(Expr::Gt(C("o_orderkey"), Li(0)), Li(1), Li(0)),
        "c_count"}});
  PlanPtr a2 = PlanNode::Aggregate(a1, {"c_count"},
                                   {{AggFunc::kCount, Li(1), "custdist"}});
  return PlanNode::OrderBy(a2, {{"custdist", false}, {"c_count", false}});
}

// ---------------------------------------------------------------------------
// Q14: promotion effect. Params: date1 (month).
// ---------------------------------------------------------------------------
PlanPtr Q14(const QueryParams& p) {
  PlanPtr l = PlanNode::Select(
      Scan("lineitem",
           {"l_partkey", "l_shipdate", "l_extendedprice", "l_discount"}),
      DateBetween("l_shipdate", p.date1, AddMonths(p.date1, 1)));
  PlanPtr j = PlanNode::HashJoin(l, Scan("part", {"p_partkey", "p_type"}),
                                 JoinKind::kInner, {"l_partkey"},
                                 {"p_partkey"});
  PlanPtr agg = PlanNode::Aggregate(
      j, {},
      {{AggFunc::kSum,
        Expr::Case(Expr::Like(LikeKind::kPrefix, C("p_type"), "PROMO"),
                   Revenue(), Ld(0.0)),
        "promo"},
       {AggFunc::kSum, Revenue(), "total"}});
  return PlanNode::Project(
      agg, {{Expr::Arith(ArithOp::kDiv,
                         Expr::Arith(ArithOp::kMul, Ld(100.0), C("promo")),
                         C("total")),
             "promo_revenue"}});
}

// ---------------------------------------------------------------------------
// Q15: top supplier. Params: date1 (quarter start).
// ---------------------------------------------------------------------------
PlanPtr Q15(const QueryParams& p) {
  PlanPtr rev = PlanNode::Aggregate(
      PlanNode::Select(
          Scan("lineitem",
               {"l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"}),
          DateBetween("l_shipdate", p.date1, AddMonths(p.date1, 3))),
      {"l_suppkey"}, {{AggFunc::kSum, Revenue(), "total_revenue"}});
  PlanPtr mx = PlanNode::Aggregate(
      rev, {}, {{AggFunc::kMax, C("total_revenue"), "max_rev"}});
  PlanPtr mx_p = PlanNode::Project(mx, {{C("max_rev"), "max_rev"},
                                        {Li(1), "jk_m"}});
  PlanPtr rev_p = PlanNode::Project(rev, {{C("l_suppkey"), "l_suppkey"},
                                          {C("total_revenue"), "total_revenue"},
                                          {Li(1), "jk_r"}});
  PlanPtr j = PlanNode::HashJoin(rev_p, mx_p, JoinKind::kSingle, {"jk_r"},
                                 {"jk_m"});
  PlanPtr f = PlanNode::Select(j, Expr::Eq(C("total_revenue"), C("max_rev")));
  PlanPtr j2 = PlanNode::HashJoin(
      f, Scan("supplier", {"s_suppkey", "s_name", "s_address", "s_phone"}),
      JoinKind::kInner, {"l_suppkey"}, {"s_suppkey"});
  PlanPtr pr = PlanNode::Project(j2, {{C("s_suppkey"), "s_suppkey"},
                                      {C("s_name"), "s_name"},
                                      {C("s_address"), "s_address"},
                                      {C("s_phone"), "s_phone"},
                                      {C("total_revenue"), "total_revenue"}});
  return PlanNode::OrderBy(pr, {{"s_suppkey", true}});
}

// ---------------------------------------------------------------------------
// Q16: parts/supplier relationship. Params: s1=brand, s2=type prefix,
// strs=8 sizes. COUNT(DISTINCT ps_suppkey) is a two-level aggregation;
// the variant selection sits directly under the inner aggregate, which is
// the paper's Q16 cube-with-selections target.
// ---------------------------------------------------------------------------
PlanPtr Q16(const QueryParams& p) {
  PlanPtr complaints = PlanNode::Project(
      PlanNode::Select(Scan("supplier", {"s_suppkey", "s_comment"}),
                       Expr::And(Expr::Like(LikeKind::kContains,
                                            C("s_comment"), "Customer"),
                                 Expr::Like(LikeKind::kContains,
                                            C("s_comment"), "Complaints"))),
      {{C("s_suppkey"), "bad_suppkey"}});
  PlanPtr j = PlanNode::HashJoin(
      Scan("partsupp", {"ps_partkey", "ps_suppkey"}),
      Scan("part", {"p_partkey", "p_brand", "p_type", "p_size"}),
      JoinKind::kInner, {"ps_partkey"}, {"p_partkey"});
  PlanPtr good = PlanNode::HashJoin(j, complaints, JoinKind::kAnti,
                                    {"ps_suppkey"}, {"bad_suppkey"});
  std::vector<Datum> sizes;
  for (const auto& s : p.strs) sizes.push_back(static_cast<int32_t>(std::stoi(s)));
  PlanPtr sel = PlanNode::Select(
      good,
      Expr::And(Expr::And(Expr::Ne(C("p_brand"), Ls(p.s1.c_str())),
                          Expr::Not(Expr::Like(LikeKind::kPrefix, C("p_type"),
                                               p.s2))),
                Expr::In(C("p_size"), sizes)));
  PlanPtr a1 = PlanNode::Aggregate(
      sel, {"p_brand", "p_type", "p_size", "ps_suppkey"},
      {{AggFunc::kCount, Li(1), "dup"}});
  PlanPtr a2 = PlanNode::Aggregate(a1, {"p_brand", "p_type", "p_size"},
                                   {{AggFunc::kCount, Li(1), "supplier_cnt"}});
  return PlanNode::OrderBy(a2, {{"supplier_cnt", false},
                                {"p_brand", true},
                                {"p_type", true},
                                {"p_size", true}});
}

// ---------------------------------------------------------------------------
// Q17: small-quantity-order revenue. Params: s1=brand, s2=container.
// The correlated AVG is decorrelated into a parameter-free per-part
// aggregate over lineitem — a prime recycling target.
// ---------------------------------------------------------------------------
PlanPtr Q17(const QueryParams& p) {
  PlanPtr part = PlanNode::Select(
      Scan("part", {"p_partkey", "p_brand", "p_container"}),
      Expr::And(Expr::Eq(C("p_brand"), Ls(p.s1.c_str())),
                Expr::Eq(C("p_container"), Ls(p.s2.c_str()))));
  PlanPtr j = PlanNode::HashJoin(
      Scan("lineitem", {"l_partkey", "l_quantity", "l_extendedprice"}), part,
      JoinKind::kInner, {"l_partkey"}, {"p_partkey"});
  PlanPtr avgq = PlanNode::Aggregate(
      Scan("lineitem", {"l_partkey", "l_quantity"}), {"l_partkey"},
      {{AggFunc::kAvg, C("l_quantity"), "aq"}});
  PlanPtr avgq_p = PlanNode::Project(
      avgq, {{C("l_partkey"), "aq_partkey"},
             {Expr::Arith(ArithOp::kMul, Ld(0.2), C("aq")), "qlimit"}});
  PlanPtr j2 = PlanNode::HashJoin(j, avgq_p, JoinKind::kInner, {"l_partkey"},
                                  {"aq_partkey"});
  PlanPtr f = PlanNode::Select(j2, Expr::Lt(C("l_quantity"), C("qlimit")));
  PlanPtr agg = PlanNode::Aggregate(
      f, {}, {{AggFunc::kSum, C("l_extendedprice"), "total"}});
  return PlanNode::Project(
      agg, {{Expr::Arith(ArithOp::kDiv, C("total"), Ld(7.0)), "avg_yearly"}});
}

// ---------------------------------------------------------------------------
// Q18: large volume customer. Params: i1=quantity threshold.
// The parameter-free SUM(l_quantity) GROUP BY l_orderkey is the paper's
// "large (~1GB) intermediate shared by all instances of Q18".
// ---------------------------------------------------------------------------
PlanPtr Q18(const QueryParams& p) {
  PlanPtr sums = PlanNode::Aggregate(
      Scan("lineitem", {"l_orderkey", "l_quantity"}), {"l_orderkey"},
      {{AggFunc::kSum, C("l_quantity"), "sum_qty"}});
  PlanPtr big = PlanNode::Project(
      PlanNode::Select(sums, Expr::Gt(C("sum_qty"), Li(p.i1))),
      {{C("l_orderkey"), "big_okey"}, {C("sum_qty"), "sum_qty"}});
  PlanPtr j1 = PlanNode::HashJoin(
      Scan("orders", {"o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"}),
      big, JoinKind::kInner, {"o_orderkey"}, {"big_okey"});
  PlanPtr j2 = PlanNode::HashJoin(j1, Scan("customer", {"c_custkey", "c_name"}),
                                  JoinKind::kInner, {"o_custkey"},
                                  {"c_custkey"});
  PlanPtr pr = PlanNode::Project(j2, {{C("c_name"), "c_name"},
                                      {C("c_custkey"), "c_custkey"},
                                      {C("o_orderkey"), "o_orderkey"},
                                      {C("o_orderdate"), "o_orderdate"},
                                      {C("o_totalprice"), "o_totalprice"},
                                      {C("sum_qty"), "sum_qty"}});
  return PlanNode::TopN(pr, {{"o_totalprice", false}, {"o_orderdate", true}},
                        100);
}

// ---------------------------------------------------------------------------
// Q19: discounted revenue. Params: s1..s3=brands, i1..i3=quantity bounds.
// The disjunctive variant selection over (p_brand, p_container,
// l_quantity) directly under the aggregate is the paper's Q19
// cube-with-selections target. The fixed base conjuncts (shipmode /
// shipinstruct) are pushed below the join. p_size conjuncts are omitted
// (documented simplification keeping the cube dimensionality bounded).
// ---------------------------------------------------------------------------
PlanPtr Q19(const QueryParams& p) {
  PlanPtr l = PlanNode::Select(
      Scan("lineitem", {"l_partkey", "l_quantity", "l_extendedprice",
                        "l_discount", "l_shipinstruct", "l_shipmode"}),
      Expr::And(Expr::Eq(C("l_shipinstruct"), Ls("DELIVER IN PERSON")),
                Expr::In(C("l_shipmode"),
                         {std::string("AIR"), std::string("REG AIR")})));
  PlanPtr j = PlanNode::HashJoin(
      l, Scan("part", {"p_partkey", "p_brand", "p_container"}),
      JoinKind::kInner, {"l_partkey"}, {"p_partkey"});
  auto clause = [](const std::string& brand, const char* c1, const char* c2,
                   const char* c3, const char* c4, int64_t qlo) {
    return Expr::And(
        Expr::And(Expr::Eq(C("p_brand"), Ls(brand.c_str())),
                  Expr::In(C("p_container"),
                           {std::string(c1), std::string(c2), std::string(c3),
                            std::string(c4)})),
        Expr::And(Expr::Ge(C("l_quantity"), Li(qlo)),
                  Expr::Le(C("l_quantity"), Li(qlo + 10))));
  };
  ExprPtr variant = Expr::Or(
      Expr::Or(clause(p.s1, "SM CASE", "SM BOX", "SM PACK", "SM PKG", p.i1),
               clause(p.s2, "MED BAG", "MED BOX", "MED PKG", "MED PACK", p.i2)),
      clause(p.s3, "LG CASE", "LG BOX", "LG PACK", "LG PKG", p.i3));
  PlanPtr sel = PlanNode::Select(j, variant);
  return PlanNode::Aggregate(sel, {},
                             {{AggFunc::kSum, Revenue(), "revenue"}});
}

// ---------------------------------------------------------------------------
// Q20: potential part promotion. Params: s1=color, date1=year, s2=nation.
// ---------------------------------------------------------------------------
PlanPtr Q20(const QueryParams& p) {
  PlanPtr lq = PlanNode::Aggregate(
      PlanNode::Select(
          Scan("lineitem", {"l_partkey", "l_suppkey", "l_quantity",
                            "l_shipdate"}),
          DateBetween("l_shipdate", p.date1, AddMonths(p.date1, 12))),
      {"l_partkey", "l_suppkey"}, {{AggFunc::kSum, C("l_quantity"), "sq"}});
  PlanPtr lq_p = PlanNode::Project(
      lq, {{C("l_partkey"), "lq_pk"},
           {C("l_suppkey"), "lq_sk"},
           {Expr::Arith(ArithOp::kMul, Ld(0.5), C("sq")), "half_qty"}});
  PlanPtr pcolor = PlanNode::Project(
      PlanNode::Select(Scan("part", {"p_partkey", "p_name"}),
                       Expr::Like(LikeKind::kPrefix, C("p_name"), p.s1)),
      {{C("p_partkey"), "pc_pk"}});
  PlanPtr ps = PlanNode::HashJoin(
      Scan("partsupp", {"ps_partkey", "ps_suppkey", "ps_availqty"}), pcolor,
      JoinKind::kSemi, {"ps_partkey"}, {"pc_pk"});
  PlanPtr j = PlanNode::HashJoin(ps, lq_p, JoinKind::kInner,
                                 {"ps_partkey", "ps_suppkey"},
                                 {"lq_pk", "lq_sk"});
  PlanPtr valid = PlanNode::Project(
      PlanNode::Select(j, Expr::Gt(C("ps_availqty"), C("half_qty"))),
      {{C("ps_suppkey"), "valid_sk"}});
  PlanPtr sup = PlanNode::HashJoin(
      Scan("supplier", {"s_suppkey", "s_name", "s_address", "s_nationkey"}),
      PlanNode::Select(Scan("nation", {"n_nationkey", "n_name"}),
                       Expr::Eq(C("n_name"), Ls(p.s2.c_str()))),
      JoinKind::kInner, {"s_nationkey"}, {"n_nationkey"});
  PlanPtr res = PlanNode::HashJoin(sup, valid, JoinKind::kSemi, {"s_suppkey"},
                                   {"valid_sk"});
  PlanPtr pr = PlanNode::Project(res, {{C("s_name"), "s_name"},
                                       {C("s_address"), "s_address"}});
  return PlanNode::OrderBy(pr, {{"s_name", true}});
}

// ---------------------------------------------------------------------------
// Q21: suppliers who kept orders waiting. Params: s1=nation.
// EXISTS/NOT EXISTS with supplier inequality is decorrelated into
// per-order distinct-supplier counts (nsupp >= 2: another supplier
// exists; nlate == 1: no *other* supplier was late). The late-lineitem
// selection and the two distinct-count aggregates are the paper's "three
// large intermediate results" shared by all Q21 instances.
// ---------------------------------------------------------------------------
PlanPtr Q21(const QueryParams& p) {
  PlanPtr late = PlanNode::Select(
      Scan("lineitem",
           {"l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"}),
      Expr::Gt(C("l_receiptdate"), C("l_commitdate")));
  PlanPtr supn = PlanNode::HashJoin(
      Scan("supplier", {"s_suppkey", "s_name", "s_nationkey"}),
      PlanNode::Select(Scan("nation", {"n_nationkey", "n_name"}),
                       Expr::Eq(C("n_name"), Ls(p.s1.c_str()))),
      JoinKind::kInner, {"s_nationkey"}, {"n_nationkey"});
  PlanPtr j1 = PlanNode::HashJoin(late, supn, JoinKind::kInner, {"l_suppkey"},
                                  {"s_suppkey"});
  PlanPtr j2 = PlanNode::HashJoin(
      j1,
      PlanNode::Select(Scan("orders", {"o_orderkey", "o_orderstatus"}),
                       Expr::Eq(C("o_orderstatus"), Ls("F"))),
      JoinKind::kInner, {"l_orderkey"}, {"o_orderkey"});

  // Distinct suppliers per order (all lineitems).
  PlanPtr all_pairs = PlanNode::Aggregate(
      Scan("lineitem", {"l_orderkey", "l_suppkey"}),
      {"l_orderkey", "l_suppkey"}, {{AggFunc::kCount, Li(1), "dup1"}});
  PlanPtr nsupp = PlanNode::Project(
      PlanNode::Aggregate(all_pairs, {"l_orderkey"},
                          {{AggFunc::kCount, Li(1), "nsupp"}}),
      {{C("l_orderkey"), "ns_okey"}, {C("nsupp"), "nsupp"}});

  // Distinct *late* suppliers per order.
  PlanPtr late_pairs = PlanNode::Aggregate(
      late, {"l_orderkey", "l_suppkey"}, {{AggFunc::kCount, Li(1), "dup2"}});
  PlanPtr nlate = PlanNode::Project(
      PlanNode::Aggregate(late_pairs, {"l_orderkey"},
                          {{AggFunc::kCount, Li(1), "nlate"}}),
      {{C("l_orderkey"), "nl_okey"}, {C("nlate"), "nlate"}});

  PlanPtr j3 = PlanNode::HashJoin(j2, nsupp, JoinKind::kInner, {"l_orderkey"},
                                  {"ns_okey"});
  PlanPtr j4 = PlanNode::HashJoin(j3, nlate, JoinKind::kInner, {"l_orderkey"},
                                  {"nl_okey"});
  PlanPtr f = PlanNode::Select(
      j4, Expr::And(Expr::Ge(C("nsupp"), Li(2)), Expr::Eq(C("nlate"), Li(1))));
  PlanPtr agg = PlanNode::Aggregate(f, {"s_name"},
                                    {{AggFunc::kCount, Li(1), "numwait"}});
  return PlanNode::TopN(agg, {{"numwait", false}, {"s_name", true}}, 100);
}

// ---------------------------------------------------------------------------
// Q22: global sales opportunity. Params: strs=7 country codes.
// The phone-prefix SUBSTRING is served by the generated c_cntrycode
// column (documented substitution); the scalar AVG becomes a single-row
// join on a constant key; NOT EXISTS is an anti join.
// ---------------------------------------------------------------------------
PlanPtr Q22(const QueryParams& p) {
  std::vector<Datum> codes;
  for (const auto& s : p.strs) codes.push_back(s);
  PlanPtr cust = Scan("customer", {"c_custkey", "c_cntrycode", "c_acctbal"});
  PlanPtr csel = PlanNode::Select(cust, Expr::In(C("c_cntrycode"), codes));
  PlanPtr avgb = PlanNode::Aggregate(
      PlanNode::Select(cust, Expr::And(Expr::Gt(C("c_acctbal"), Ld(0.0)),
                                       Expr::In(C("c_cntrycode"), codes))),
      {}, {{AggFunc::kAvg, C("c_acctbal"), "avg_bal"}});
  PlanPtr avgb_p = PlanNode::Project(avgb, {{C("avg_bal"), "avg_bal"},
                                            {Li(1), "jk_a"}});
  PlanPtr csel_p = PlanNode::Project(csel, {{C("c_custkey"), "c_custkey"},
                                            {C("c_cntrycode"), "c_cntrycode"},
                                            {C("c_acctbal"), "c_acctbal"},
                                            {Li(1), "jk_c"}});
  PlanPtr j = PlanNode::HashJoin(csel_p, avgb_p, JoinKind::kSingle, {"jk_c"},
                                 {"jk_a"});
  PlanPtr rich = PlanNode::Select(j, Expr::Gt(C("c_acctbal"), C("avg_bal")));
  PlanPtr noorder = PlanNode::HashJoin(
      rich,
      PlanNode::Project(Scan("orders", {"o_custkey"}),
                        {{C("o_custkey"), "ok_custkey"}}),
      JoinKind::kAnti, {"c_custkey"}, {"ok_custkey"});
  PlanPtr agg = PlanNode::Aggregate(
      noorder, {"c_cntrycode"},
      {{AggFunc::kCount, Li(1), "numcust"},
       {AggFunc::kSum, C("c_acctbal"), "totacctbal"}});
  return PlanNode::OrderBy(agg, {{"c_cntrycode", true}});
}

}  // namespace

PlanPtr BuildQuery(int query, const QueryParams& p, double scale_factor) {
  (void)scale_factor;
  switch (query) {
    case 1: return Q1(p);
    case 2: return Q2(p);
    case 3: return Q3(p);
    case 4: return Q4(p);
    case 5: return Q5(p);
    case 6: return Q6(p);
    case 7: return Q7(p);
    case 8: return Q8(p);
    case 9: return Q9(p);
    case 10: return Q10(p);
    case 11: return Q11(p);
    case 12: return Q12(p);
    case 13: return Q13(p);
    case 14: return Q14(p);
    case 15: return Q15(p);
    case 16: return Q16(p);
    case 17: return Q17(p);
    case 18: return Q18(p);
    case 19: return Q19(p);
    case 20: return Q20(p);
    case 21: return Q21(p);
    case 22: return Q22(p);
    default:
      RDB_UNREACHABLE("TPC-H query number must be 1..22");
  }
}

}  // namespace tpch
}  // namespace recycledb
