// The 22 TPC-H query patterns as optimized logical plans.
//
// Plans are hand-written in the shape a cost-based optimizer would emit
// (decorrelated subqueries, selections pushed down, build sides on the
// smaller input). This matches the paper's setting: the recycler graph
// only stores the optimizer's chosen plan per query (no OR-edges), so the
// plans below are exactly the recycler's input. Semantic simplifications
// versus SQL TPC-H are documented per builder (NULL-free engine, LIKE as
// word containment, COUNT(DISTINCT) as two-level aggregation).
#pragma once

#include <string>
#include <vector>

#include "plan/plan.h"

namespace recycledb {
namespace tpch {

/// Substitution parameters for one query invocation. Fields are generic
/// slots; each builder documents which it reads.
struct QueryParams {
  int64_t i1 = 0, i2 = 0, i3 = 0;
  double d1 = 0;
  int32_t date1 = 0, date2 = 0;
  std::string s1, s2, s3;
  std::vector<std::string> strs;
};

/// Builds the plan for TPC-H query `query` (1..22) with parameters `p`.
/// `scale_factor` parameterizes Q11's FRACTION.
PlanPtr BuildQuery(int query, const QueryParams& p, double scale_factor);

/// Number of query patterns (22).
inline constexpr int kNumQueries = 22;

}  // namespace tpch
}  // namespace recycledb
