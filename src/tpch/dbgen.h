// TPC-H data generator (dbgen re-implementation, scaled down).
//
// Generates the 8 TPC-H tables with spec-conformant cardinalities,
// key relationships, value domains and date rules. Text columns use
// reduced word pools (documented substitution: full dbgen grammar text is
// replaced by word sequences with the needles the queries probe for
// injected at controlled rates - e.g. "special ... requests" in o_comment
// for Q13, "Customer ... Complaints" in s_comment for Q16, color words in
// p_name for Q9/Q20).
#pragma once

#include <cstdint>

#include "storage/catalog.h"

namespace recycledb {
namespace tpch {

/// Generates all 8 TPC-H tables at `scale_factor` into `catalog`.
/// Deterministic for a given (scale_factor, seed).
///
/// Cardinalities (x scale_factor): supplier 10k, part 200k, partsupp 800k,
/// customer 150k, orders 1.5M, lineitem ~6M; region 5 and nation 25 fixed.
void Generate(double scale_factor, Catalog* catalog, uint64_t seed = 19920401);

/// Reads the scale factor from the RECYCLEDB_SF env var (default `fallback`).
double ScaleFromEnv(double fallback = 0.02);

/// The 25 nation names (index = nationkey) and their region keys.
extern const char* const kNationNames[25];
extern const int kNationRegion[25];
/// The 5 region names (index = regionkey).
extern const char* const kRegionNames[5];

/// Query-parameter word pools (shared with qgen).
extern const char* const kSegments[5];       // c_mktsegment
extern const char* const kPriorities[5];     // o_orderpriority
extern const char* const kShipModes[7];      // l_shipmode
extern const char* const kShipInstruct[4];   // l_shipinstruct
extern const char* const kContainers[40];    // p_container
extern const char* const kTypes1[6];         // p_type word 1
extern const char* const kTypes2[5];         // p_type word 2
extern const char* const kTypes3[5];         // p_type word 3
extern const char* const kColors[92];        // p_name colors

}  // namespace tpch
}  // namespace recycledb
