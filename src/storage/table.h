// Schema, Batch and Table: row-set containers over ColumnVectors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/types.h"
#include "storage/column.h"

namespace recycledb {

/// A named, typed column slot.
struct Field {
  std::string name;
  TypeId type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields describing a row shape.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// Index of `name`; RDB_CHECK-fails if absent.
  int IndexOfChecked(const std::string& name) const;

  bool Has(const std::string& name) const { return IndexOf(name) >= 0; }

  /// Column names in schema order.
  std::vector<std::string> Names() const;

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A batch of rows flowing between operators (vector-at-a-time unit).
/// Column order matches the producing operator's output schema.
struct Batch {
  std::vector<ColumnPtr> columns;
  int64_t num_rows = 0;

  bool empty() const { return num_rows == 0; }
  void Clear() {
    columns.clear();
    num_rows = 0;
  }
};

/// Default number of rows per batch (Vectorwise-style vector size).
inline constexpr int64_t kDefaultBatchRows = 1024;

class Table;
using TablePtr = std::shared_ptr<Table>;

/// A fully materialized row set: schema + full-length columns.
/// Used for base tables, recycler-cache entries, and query results.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ColumnPtr& column(int i) const { return columns_[i]; }
  const ColumnPtr& ColumnByName(const std::string& name) const {
    return columns_[schema_.IndexOfChecked(name)];
  }

  /// Appends a batch whose columns positionally match the schema.
  void AppendBatch(const Batch& batch);

  /// Appends one row of boxed values (slow path for tests/builders).
  void AppendRow(const std::vector<Datum>& row);

  /// Boxed cell access (slow path).
  Datum Get(int64_t row, int col) const { return columns_[col]->GetDatum(row); }

  /// Total heap footprint of all columns in bytes.
  int64_t ByteSize() const;

  /// Renders up to `max_rows` rows for debugging.
  std::string ToString(int64_t max_rows = 20) const;

  /// Builds a new table with columns renamed positionally to `names`.
  /// Shares the underlying column data (zero copy).
  TablePtr RenameColumns(const std::vector<std::string>& names) const;

  /// Builds a new table containing only `names`, in that order (zero copy).
  TablePtr SelectColumns(const std::vector<std::string>& names) const;

  /// Zone map of column `i`, kept current by AppendBatch/AppendRow (per
  /// kZoneMapBlockRows block min/max + sortedness). Shared zero-copy by
  /// RenameColumns/SelectColumns along with the column data. Never null.
  const ZoneMap& zone_map(int i) const { return *zone_maps_[i]; }

 private:
  Schema schema_;
  std::vector<ColumnPtr> columns_;
  std::vector<ZoneMapPtr> zone_maps_;
  int64_t num_rows_ = 0;
};

/// Creates an empty table with the given schema.
TablePtr MakeTable(Schema schema);

}  // namespace recycledb
