// Lightweight column compression for the cold tier (and any other
// at-rest column image).
//
// Three classic codecs over the engine's columnar vectors:
//
//   kRle  — run-length: (run_len, value) pairs; any type. Wins on sorted
//           or low-churn data (region-sweep slices, constant columns).
//   kDict — dictionary: distinct values + per-row codes at the minimal
//           byte width; wins on low-cardinality strings.
//   kFor  — frame-of-reference: int32/int64/date as unsigned deltas from
//           the column minimum at the minimal byte width; wins on dense
//           integer ranges (keys, days).
//
// EncodeColumn picks the smallest encoding (falling back to kRaw when
// nothing beats the raw image), so a spill payload is never larger than
// the uncompressed format v1 column. Decoding is bit-exact: doubles are
// compared/stored by bit pattern, never by value arithmetic.
//
// SelectRangeEncoded evaluates a range predicate directly on the encoded
// image — one comparison per RLE run / dictionary entry instead of per
// row — returning the same selection vector a decode-then-filter pass
// would produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "storage/column.h"

namespace recycledb {

/// Self-describing per-column encodings (stable on-disk ids; append
/// only).
enum class ColumnEncoding : uint8_t {
  kRaw = 0,
  kRle = 1,
  kDict = 2,
  kFor = 3,
};

const char* EncodingName(ColumnEncoding e);

/// One encoded column image: the encoding id, the logical type and row
/// count, and the codec-specific payload bytes.
struct EncodedColumn {
  ColumnEncoding encoding = ColumnEncoding::kRaw;
  TypeId type = TypeId::kInt64;
  int64_t num_rows = 0;
  std::string payload;
};

/// Encodes `col` with the smallest applicable codec (size computed
/// analytically per candidate before encoding anything).
EncodedColumn EncodeColumn(const ColumnVector& col);

/// Encodes with a specific codec; InvalidArgument for unsupported
/// type/codec combinations (kFor on strings/doubles/bools).
Status EncodeColumnAs(const ColumnVector& col, ColumnEncoding encoding,
                      EncodedColumn* out);

/// Rebuilds an owning column, bit-identical to the encoder's input.
/// Corrupt payloads yield a recoverable error Status (bounds-checked
/// before every allocation), never an abort.
Status DecodeColumn(const EncodedColumn& enc, ColumnPtr* out);

/// Evaluates `range` directly on the encoded image and appends the
/// selected row indexes (ascending) to `*sel` — bit-identical to
/// decoding and filtering, without materializing the column. One
/// comparison per run (kRle) / dictionary entry (kDict); per row
/// otherwise.
Status SelectRangeEncoded(const EncodedColumn& enc,
                          const ColumnInterval& range,
                          std::vector<int32_t>* sel);

}  // namespace recycledb
