#include "storage/column.h"

namespace recycledb {

namespace {
template <typename T>
std::vector<T> EmptyVec() {
  return {};
}
}  // namespace

ColumnVector::ColumnVector(TypeId type) : type_(type) {
  switch (type) {
    case TypeId::kBool:
      data_ = EmptyVec<uint8_t>();
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      data_ = EmptyVec<int32_t>();
      break;
    case TypeId::kInt64:
      data_ = EmptyVec<int64_t>();
      break;
    case TypeId::kDouble:
      data_ = EmptyVec<double>();
      break;
    case TypeId::kString:
      data_ = EmptyVec<std::string>();
      break;
  }
}

ColumnVector::ColumnVector(std::shared_ptr<const ColumnVector> src,
                           int64_t offset, int64_t length)
    : ColumnVector(src->type()) {
  view_src_ = std::move(src);
  view_offset_ = offset;
  view_length_ = length;
}

ColumnPtr ColumnVector::Slice(std::shared_ptr<const ColumnVector> src,
                              int64_t offset, int64_t length) {
  RDB_CHECK(src != nullptr);
  RDB_CHECK_MSG(offset >= 0 && length >= 0 && offset + length <= src->size(),
                "slice out of range");
  if (src->is_view()) {
    // Flatten: view the root source directly (it is already shared).
    return ColumnPtr(new ColumnVector(src->view_src_,
                                      src->view_offset_ + offset, length));
  }
  src->shared_.store(true, std::memory_order_relaxed);
  return ColumnPtr(new ColumnVector(std::move(src), offset, length));
}

int64_t ColumnVector::OwnedSize() const {
  return std::visit([](const auto& v) { return static_cast<int64_t>(v.size()); },
                    data_);
}

Datum ColumnVector::GetDatum(int64_t row) const {
  switch (type_) {
    case TypeId::kBool:
      return static_cast<bool>(Raw<uint8_t>()[row]);
    case TypeId::kInt32:
    case TypeId::kDate:
      return Raw<int32_t>()[row];
    case TypeId::kInt64:
      return Raw<int64_t>()[row];
    case TypeId::kDouble:
      return Raw<double>()[row];
    case TypeId::kString:
      return Raw<std::string>()[row];
  }
  RDB_UNREACHABLE("bad type");
}

void ColumnVector::Append(const Datum& value) {
  switch (type_) {
    case TypeId::kBool:
      Data<uint8_t>().push_back(std::get<bool>(value) ? 1 : 0);
      return;
    case TypeId::kInt32:
    case TypeId::kDate:
      if (std::holds_alternative<int32_t>(value)) {
        Data<int32_t>().push_back(std::get<int32_t>(value));
      } else {
        Data<int32_t>().push_back(static_cast<int32_t>(DatumAsInt64(value)));
      }
      return;
    case TypeId::kInt64:
      Data<int64_t>().push_back(DatumAsInt64(value));
      return;
    case TypeId::kDouble:
      Data<double>().push_back(DatumAsDouble(value));
      return;
    case TypeId::kString:
      Data<std::string>().push_back(std::get<std::string>(value));
      return;
  }
  RDB_UNREACHABLE("bad type");
}

void ColumnVector::AppendSelected(const ColumnVector& src,
                                  const std::vector<int32_t>& sel) {
  RDB_CHECK(src.type_ == type_);
  CheckMutable();
  const ColumnVector& sp = src.payload();
  const int64_t off = src.view_offset_;
  const int64_t n = src.size();
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& s = std::get<Vec>(sp.data_);
        dst.reserve(dst.size() + sel.size());
        for (int32_t i : sel) {
          // Selection indexes are window-relative; on a view an index past
          // the window would silently read the root column, so check.
          RDB_CHECK_MSG(i >= 0 && i < n, "selection index out of bounds");
          dst.push_back(s[off + i]);
        }
      },
      data_);
}

void ColumnVector::AppendRange(const ColumnVector& src, int64_t offset,
                               int64_t count) {
  RDB_CHECK(src.type_ == type_);
  RDB_CHECK_MSG(offset >= 0 && count >= 0 && offset + count <= src.size(),
                "append range out of bounds");
  CheckMutable();
  const ColumnVector& sp = src.payload();
  const int64_t off = src.view_offset_ + offset;
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& s = std::get<Vec>(sp.data_);
        dst.insert(dst.end(), s.begin() + off, s.begin() + off + count);
      },
      data_);
}

void ColumnVector::Reserve(int64_t n) {
  CheckMutable();
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

void ColumnVector::Clear() {
  RDB_CHECK_MSG(!shared(), "clearing a shared column source");
  view_src_.reset();
  view_offset_ = 0;
  view_length_ = 0;
  std::visit([](auto& v) { v.clear(); }, data_);
}

int64_t ColumnVector::ByteSize() const {
  const int64_t n = size();
  // Owning columns account for their allocated capacity; views account for
  // the logical size of the viewed range (they own nothing, but
  // materializing them downstream would cost this much).
  if (type_ == TypeId::kString) {
    int64_t slots = is_view()
                        ? n
                        : static_cast<int64_t>(
                              std::get<std::vector<std::string>>(data_)
                                  .capacity());
    int64_t total = slots * static_cast<int64_t>(sizeof(std::string));
    const std::string* s = Raw<std::string>();
    for (int64_t i = 0; i < n; ++i) {
      total += static_cast<int64_t>(s[i].capacity());
    }
    return total;
  }
  int64_t width = 0;
  switch (type_) {
    case TypeId::kBool:
      width = 1;
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      width = 4;
      break;
    case TypeId::kInt64:
    case TypeId::kDouble:
      width = 8;
      break;
    case TypeId::kString:
      RDB_UNREACHABLE("handled above");
  }
  if (is_view()) return n * width;
  int64_t capacity = std::visit(
      [](const auto& v) { return static_cast<int64_t>(v.capacity()); }, data_);
  return capacity * width;
}

uint64_t ColumnVector::HashRow(int64_t row, uint64_t seed) const {
  switch (type_) {
    case TypeId::kBool: {
      uint64_t v = Raw<uint8_t>()[row];
      return HashCombine(seed, HashMix(v + 1));
    }
    case TypeId::kInt32:
    case TypeId::kDate: {
      uint64_t v = static_cast<uint64_t>(
          static_cast<int64_t>(Raw<int32_t>()[row]));
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kInt64: {
      uint64_t v = static_cast<uint64_t>(Raw<int64_t>()[row]);
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kDouble: {
      double d = Raw<double>()[row];
      uint64_t v;
      static_assert(sizeof(v) == sizeof(d));
      __builtin_memcpy(&v, &d, sizeof(v));
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kString:
      return HashCombine(seed, HashString(Raw<std::string>()[row]));
  }
  RDB_UNREACHABLE("bad type");
}

bool ColumnVector::RowEquals(int64_t a, const ColumnVector& other,
                             int64_t b) const {
  RDB_CHECK(type_ == other.type_);
  switch (type_) {
    case TypeId::kBool:
      return Raw<uint8_t>()[a] == other.Raw<uint8_t>()[b];
    case TypeId::kInt32:
    case TypeId::kDate:
      return Raw<int32_t>()[a] == other.Raw<int32_t>()[b];
    case TypeId::kInt64:
      return Raw<int64_t>()[a] == other.Raw<int64_t>()[b];
    case TypeId::kDouble:
      return Raw<double>()[a] == other.Raw<double>()[b];
    case TypeId::kString:
      return Raw<std::string>()[a] == other.Raw<std::string>()[b];
  }
  RDB_UNREACHABLE("bad type");
}

ColumnPtr MakeColumn(TypeId type) { return std::make_shared<ColumnVector>(type); }

namespace {

/// Folds rows [from, to) of a typed column into block summaries. `D` is
/// the Datum alternative used for the stored min/max (bool for kBool,
/// int32_t for kInt32/kDate, ...).
template <typename D, typename T>
void FoldRows(const T* data, int64_t from, int64_t to,
              std::vector<ZoneEntry>* blocks, bool* column_sorted) {
  for (int64_t r = from; r < to; ++r) {
    const D v = static_cast<D>(data[r]);
    const int64_t b = r / kZoneMapBlockRows;
    if (b >= static_cast<int64_t>(blocks->size())) {
      blocks->push_back(ZoneEntry{Datum(v), Datum(v), true, true});
    } else {
      ZoneEntry& e = (*blocks)[b];
      if (v < std::get<D>(e.min)) e.min = v;
      if (v > std::get<D>(e.max)) e.max = v;
      if (r % kZoneMapBlockRows != 0 && e.sorted &&
          v < static_cast<D>(data[r - 1])) {
        e.sorted = false;
      }
    }
    if (r > 0 && *column_sorted && v < static_cast<D>(data[r - 1])) {
      *column_sorted = false;
    }
  }
}

}  // namespace

void ZoneMap::Update(const ColumnVector& col) {
  RDB_CHECK(col.type() == type_);
  const int64_t n = col.size();
  if (n <= rows_covered_) return;
  switch (type_) {
    case TypeId::kBool:
      FoldRows<bool>(col.Raw<uint8_t>(), rows_covered_, n, &blocks_, &sorted_);
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      FoldRows<int32_t>(col.Raw<int32_t>(), rows_covered_, n, &blocks_,
                        &sorted_);
      break;
    case TypeId::kInt64:
      FoldRows<int64_t>(col.Raw<int64_t>(), rows_covered_, n, &blocks_,
                        &sorted_);
      break;
    case TypeId::kDouble:
      FoldRows<double>(col.Raw<double>(), rows_covered_, n, &blocks_,
                       &sorted_);
      break;
    case TypeId::kString:
      FoldRows<std::string>(col.Raw<std::string>(), rows_covered_, n,
                            &blocks_, &sorted_);
      break;
  }
  rows_covered_ = n;
}

bool ZoneMap::MayOverlap(int64_t b, const ColumnInterval& query) const {
  if (b < 0 || b >= num_blocks()) return true;  // uncovered: never prune
  const ZoneEntry& e = blocks_[b];
  // The block's value set lies within [min, max] (both closed); it can
  // only match when that envelope intersects the query interval.
  ColumnInterval envelope{{false, e.min, true}, {false, e.max, true}};
  return Overlaps(envelope, query);
}

}  // namespace recycledb
