#include "storage/column.h"

namespace recycledb {

namespace {
template <typename T>
std::vector<T> EmptyVec() {
  return {};
}
}  // namespace

ColumnVector::ColumnVector(TypeId type) : type_(type) {
  switch (type) {
    case TypeId::kBool:
      data_ = EmptyVec<uint8_t>();
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      data_ = EmptyVec<int32_t>();
      break;
    case TypeId::kInt64:
      data_ = EmptyVec<int64_t>();
      break;
    case TypeId::kDouble:
      data_ = EmptyVec<double>();
      break;
    case TypeId::kString:
      data_ = EmptyVec<std::string>();
      break;
  }
}

int64_t ColumnVector::size() const {
  return std::visit([](const auto& v) { return static_cast<int64_t>(v.size()); },
                    data_);
}

Datum ColumnVector::GetDatum(int64_t row) const {
  switch (type_) {
    case TypeId::kBool:
      return static_cast<bool>(Data<uint8_t>()[row]);
    case TypeId::kInt32:
    case TypeId::kDate:
      return Data<int32_t>()[row];
    case TypeId::kInt64:
      return Data<int64_t>()[row];
    case TypeId::kDouble:
      return Data<double>()[row];
    case TypeId::kString:
      return Data<std::string>()[row];
  }
  RDB_UNREACHABLE("bad type");
}

void ColumnVector::Append(const Datum& value) {
  switch (type_) {
    case TypeId::kBool:
      Data<uint8_t>().push_back(std::get<bool>(value) ? 1 : 0);
      return;
    case TypeId::kInt32:
    case TypeId::kDate:
      if (std::holds_alternative<int32_t>(value)) {
        Data<int32_t>().push_back(std::get<int32_t>(value));
      } else {
        Data<int32_t>().push_back(static_cast<int32_t>(DatumAsInt64(value)));
      }
      return;
    case TypeId::kInt64:
      Data<int64_t>().push_back(DatumAsInt64(value));
      return;
    case TypeId::kDouble:
      Data<double>().push_back(DatumAsDouble(value));
      return;
    case TypeId::kString:
      Data<std::string>().push_back(std::get<std::string>(value));
      return;
  }
  RDB_UNREACHABLE("bad type");
}

void ColumnVector::AppendSelected(const ColumnVector& src,
                                  const std::vector<int32_t>& sel) {
  RDB_CHECK(src.type_ == type_);
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& s = std::get<Vec>(src.data_);
        dst.reserve(dst.size() + sel.size());
        for (int32_t i : sel) dst.push_back(s[i]);
      },
      data_);
}

void ColumnVector::AppendRange(const ColumnVector& src, int64_t offset,
                               int64_t count) {
  RDB_CHECK(src.type_ == type_);
  std::visit(
      [&](auto& dst) {
        using Vec = std::decay_t<decltype(dst)>;
        const Vec& s = std::get<Vec>(src.data_);
        dst.insert(dst.end(), s.begin() + offset, s.begin() + offset + count);
      },
      data_);
}

void ColumnVector::Reserve(int64_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

void ColumnVector::Clear() {
  std::visit([](auto& v) { v.clear(); }, data_);
}

int64_t ColumnVector::ByteSize() const {
  switch (type_) {
    case TypeId::kBool:
      return static_cast<int64_t>(Data<uint8_t>().capacity());
    case TypeId::kInt32:
    case TypeId::kDate:
      return static_cast<int64_t>(Data<int32_t>().capacity() * 4);
    case TypeId::kInt64:
      return static_cast<int64_t>(Data<int64_t>().capacity() * 8);
    case TypeId::kDouble:
      return static_cast<int64_t>(Data<double>().capacity() * 8);
    case TypeId::kString: {
      int64_t total = static_cast<int64_t>(Data<std::string>().capacity() *
                                           sizeof(std::string));
      for (const auto& s : Data<std::string>()) {
        total += static_cast<int64_t>(s.capacity());
      }
      return total;
    }
  }
  RDB_UNREACHABLE("bad type");
}

uint64_t ColumnVector::HashRow(int64_t row, uint64_t seed) const {
  switch (type_) {
    case TypeId::kBool: {
      uint64_t v = Data<uint8_t>()[row];
      return HashCombine(seed, HashMix(v + 1));
    }
    case TypeId::kInt32:
    case TypeId::kDate: {
      uint64_t v = static_cast<uint64_t>(
          static_cast<int64_t>(Data<int32_t>()[row]));
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kInt64: {
      uint64_t v = static_cast<uint64_t>(Data<int64_t>()[row]);
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kDouble: {
      double d = Data<double>()[row];
      uint64_t v;
      static_assert(sizeof(v) == sizeof(d));
      __builtin_memcpy(&v, &d, sizeof(v));
      return HashCombine(seed, HashMix(v));
    }
    case TypeId::kString:
      return HashCombine(seed, HashString(Data<std::string>()[row]));
  }
  RDB_UNREACHABLE("bad type");
}

bool ColumnVector::RowEquals(int64_t a, const ColumnVector& other,
                             int64_t b) const {
  RDB_CHECK(type_ == other.type_);
  switch (type_) {
    case TypeId::kBool:
      return Data<uint8_t>()[a] == other.Data<uint8_t>()[b];
    case TypeId::kInt32:
    case TypeId::kDate:
      return Data<int32_t>()[a] == other.Data<int32_t>()[b];
    case TypeId::kInt64:
      return Data<int64_t>()[a] == other.Data<int64_t>()[b];
    case TypeId::kDouble:
      return Data<double>()[a] == other.Data<double>()[b];
    case TypeId::kString:
      return Data<std::string>()[a] == other.Data<std::string>()[b];
  }
  RDB_UNREACHABLE("bad type");
}

ColumnPtr MakeColumn(TypeId type) { return std::make_shared<ColumnVector>(type); }

}  // namespace recycledb
