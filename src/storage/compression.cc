#include "storage/compression.h"

#include <cstring>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <variant>

#include "common/macros.h"
#include "common/string_util.h"
#include "storage/wire_format.h"

namespace recycledb {

using wire::Cursor;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;

const char* EncodingName(ColumnEncoding e) {
  switch (e) {
    case ColumnEncoding::kRaw: return "raw";
    case ColumnEncoding::kRle: return "rle";
    case ColumnEncoding::kDict: return "dict";
    case ColumnEncoding::kFor: return "for";
  }
  return "?";
}

namespace {

// --- typed value plumbing --------------------------------------------------

template <typename T>
size_t ValueBytes(const T&) {
  return sizeof(T);
}
size_t ValueBytes(const std::string& v) { return 4 + v.size(); }

template <typename T>
void PutValue(std::string* out, const T& v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutValue(std::string* out, const std::string& v) { PutString(out, v); }

template <typename T>
bool GetValue(Cursor* c, T* v) {
  if (c->remaining() < sizeof(T)) return false;
  std::memcpy(v, c->p + c->pos, sizeof(T));
  c->pos += sizeof(T);
  return true;
}
bool GetValue(Cursor* c, std::string* v) { return c->GetString(v); }

/// Bit-exact equality: doubles compare by bit pattern so RLE round-trips
/// NaNs and signed zeros unchanged.
template <typename T>
bool BitEq(const T& a, const T& b) {
  return a == b;
}
bool BitEq(const double& a, const double& b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

Datum ToDatum(TypeId, uint8_t v) { return static_cast<bool>(v); }
Datum ToDatum(TypeId, int32_t v) { return v; }
Datum ToDatum(TypeId, int64_t v) { return v; }
Datum ToDatum(TypeId, double v) { return v; }
Datum ToDatum(TypeId, const std::string& v) { return v; }

/// One membership test of a boxed value against the interval.
bool InRange(const Datum& v, const ColumnInterval& r) {
  if (!r.lo.unbounded) {
    int c = DatumCompare(v, r.lo.value);
    if (c < 0 || (c == 0 && !r.lo.inclusive)) return false;
  }
  if (!r.hi.unbounded) {
    int c = DatumCompare(v, r.hi.value);
    if (c > 0 || (c == 0 && !r.hi.inclusive)) return false;
  }
  return true;
}

/// Narrows `r` to a closed int64 range [*lo, *hi] when every bounded end
/// is an integer datum (the common case for prune/select ranges over
/// int columns). Returns false when a double/string bound requires the
/// boxed comparison path.
bool IntClosedRange(const ColumnInterval& r, int64_t* lo, int64_t* hi) {
  auto as_int = [](const Datum& d, int64_t* v) {
    if (std::holds_alternative<int32_t>(d)) {
      *v = std::get<int32_t>(d);
      return true;
    }
    if (std::holds_alternative<int64_t>(d)) {
      *v = std::get<int64_t>(d);
      return true;
    }
    return false;
  };
  *lo = std::numeric_limits<int64_t>::min();
  *hi = std::numeric_limits<int64_t>::max();
  if (!r.lo.unbounded) {
    if (!as_int(r.lo.value, lo)) return false;
    if (!r.lo.inclusive) {
      if (*lo == std::numeric_limits<int64_t>::max()) {
        *hi = *lo - 1;  // empty
      } else {
        ++*lo;
      }
    }
  }
  if (!r.hi.unbounded) {
    if (!as_int(r.hi.value, hi)) return false;
    if (!r.hi.inclusive) {
      if (*hi == std::numeric_limits<int64_t>::min()) {
        *lo = *hi + 1;  // empty
      } else {
        --*hi;
      }
    }
  }
  return true;
}

// --- raw -------------------------------------------------------------------

template <typename T>
void RawEncode(const T* data, int64_t n, std::string* out) {
  out->append(reinterpret_cast<const char*>(data),
              static_cast<size_t>(n) * sizeof(T));
}
void RawEncode(const std::string* data, int64_t n, std::string* out) {
  for (int64_t i = 0; i < n; ++i) PutString(out, data[i]);
}

template <typename T>
Status RawDecode(Cursor* c, int64_t n, std::vector<T>* out) {
  const size_t need = static_cast<size_t>(n) * sizeof(T);
  if (c->remaining() < need) return Status::Internal("raw payload truncated");
  out->resize(static_cast<size_t>(n));
  // An empty vector's data() may be null; memcpy requires non-null even
  // for a zero-byte copy.
  if (need > 0) std::memcpy(out->data(), c->p + c->pos, need);
  c->pos += need;
  return Status::OK();
}
Status RawDecode(Cursor* c, int64_t n, std::vector<std::string>* out) {
  out->reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::string s;
    if (!c->GetString(&s)) return Status::Internal("raw payload truncated");
    out->push_back(std::move(s));
  }
  return Status::OK();
}

// --- RLE -------------------------------------------------------------------

template <typename T>
void RleEncode(const T* data, int64_t n, std::string* out) {
  std::string body;
  uint32_t num_runs = 0;
  int64_t i = 0;
  while (i < n) {
    int64_t j = i + 1;
    while (j < n && j - i < std::numeric_limits<uint32_t>::max() &&
           BitEq(data[j], data[i])) {
      ++j;
    }
    PutU32(&body, static_cast<uint32_t>(j - i));
    PutValue(&body, data[i]);
    ++num_runs;
    i = j;
  }
  PutU32(out, num_runs);
  out->append(body);
}

template <typename T>
Status RleDecode(Cursor* c, int64_t n, std::vector<T>* out) {
  uint32_t num_runs = 0;
  if (!c->GetU32(&num_runs)) return Status::Internal("rle payload truncated");
  out->reserve(static_cast<size_t>(n));
  int64_t total = 0;
  for (uint32_t r = 0; r < num_runs; ++r) {
    uint32_t run = 0;
    T v{};
    if (!c->GetU32(&run) || !GetValue(c, &v)) {
      return Status::Internal("rle payload truncated");
    }
    total += run;
    if (run == 0 || total > n) return Status::Internal("rle run overflow");
    out->insert(out->end(), static_cast<size_t>(run), v);
  }
  if (total != n) return Status::Internal("rle row count mismatch");
  return Status::OK();
}

/// Range kernel over the runs: one comparison per run, not per row.
template <typename T>
Status RleSelectRange(Cursor* c, TypeId type, int64_t n,
                      const ColumnInterval& range, std::vector<int32_t>* sel) {
  uint32_t num_runs = 0;
  if (!c->GetU32(&num_runs)) return Status::Internal("rle payload truncated");
  int64_t row = 0;
  for (uint32_t r = 0; r < num_runs; ++r) {
    uint32_t run = 0;
    T v{};
    if (!c->GetU32(&run) || !GetValue(c, &v)) {
      return Status::Internal("rle payload truncated");
    }
    if (run == 0 || row + run > n) return Status::Internal("rle run overflow");
    if (InRange(ToDatum(type, v), range)) {
      for (uint32_t k = 0; k < run; ++k) {
        sel->push_back(static_cast<int32_t>(row + k));
      }
    }
    row += run;
  }
  if (row != n) return Status::Internal("rle row count mismatch");
  return Status::OK();
}

// --- dictionary ------------------------------------------------------------

int CodeWidth(size_t dict_size) {
  if (dict_size <= 0xff) return 1;
  if (dict_size <= 0xffff) return 2;
  return 4;
}

void PutCode(std::string* out, uint32_t code, int width) {
  for (int i = 0; i < width; ++i) {
    out->push_back(static_cast<char>(code >> (8 * i)));
  }
}

bool GetCode(Cursor* c, int width, uint32_t* code) {
  if (c->remaining() < static_cast<size_t>(width)) return false;
  *code = 0;
  for (int i = 0; i < width; ++i) {
    *code |= static_cast<uint32_t>(c->p[c->pos + i]) << (8 * i);
  }
  c->pos += width;
  return true;
}

template <typename T>
void DictEncode(const T* data, int64_t n, std::string* out) {
  std::vector<const T*> dict;
  std::unordered_map<T, uint32_t> index;
  std::string codes;
  std::vector<uint32_t> code_of(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    auto [it, inserted] =
        index.emplace(data[i], static_cast<uint32_t>(dict.size()));
    if (inserted) dict.push_back(&data[i]);
    code_of[static_cast<size_t>(i)] = it->second;
  }
  PutU32(out, static_cast<uint32_t>(dict.size()));
  for (const T* v : dict) PutValue(out, *v);
  const int width = CodeWidth(dict.size());
  out->push_back(static_cast<char>(width));
  for (int64_t i = 0; i < n; ++i) {
    PutCode(out, code_of[static_cast<size_t>(i)], width);
  }
}

template <typename T>
Status DictReadHeader(Cursor* c, int64_t n, std::vector<T>* dict, int* width) {
  uint32_t dict_size = 0;
  if (!c->GetU32(&dict_size)) return Status::Internal("dict payload truncated");
  // A dictionary never has more entries than rows.
  if (dict_size > static_cast<uint64_t>(n)) {
    return Status::Internal("dict size exceeds row count");
  }
  dict->reserve(dict_size);
  for (uint32_t i = 0; i < dict_size; ++i) {
    T v{};
    if (!GetValue(c, &v)) return Status::Internal("dict payload truncated");
    dict->push_back(std::move(v));
  }
  uint8_t w = 0;
  if (!c->GetU8(&w) || (w != 1 && w != 2 && w != 4)) {
    return Status::Internal("dict payload has bad code width");
  }
  *width = w;
  return Status::OK();
}

template <typename T>
Status DictDecode(Cursor* c, int64_t n, std::vector<T>* out) {
  std::vector<T> dict;
  int width = 0;
  RDB_RETURN_NOT_OK(DictReadHeader(c, n, &dict, &width));
  out->reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    uint32_t code = 0;
    if (!GetCode(c, width, &code) || code >= dict.size()) {
      return Status::Internal("dict payload truncated or code out of range");
    }
    out->push_back(dict[code]);
  }
  return Status::OK();
}

/// Range kernel: one comparison per dictionary entry, then a code scan.
template <typename T>
Status DictSelectRange(Cursor* c, TypeId type, int64_t n,
                       const ColumnInterval& range,
                       std::vector<int32_t>* sel) {
  std::vector<T> dict;
  int width = 0;
  RDB_RETURN_NOT_OK(DictReadHeader(c, n, &dict, &width));
  std::vector<char> in(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    in[i] = InRange(ToDatum(type, dict[i]), range) ? 1 : 0;
  }
  for (int64_t i = 0; i < n; ++i) {
    uint32_t code = 0;
    if (!GetCode(c, width, &code) || code >= dict.size()) {
      return Status::Internal("dict payload truncated or code out of range");
    }
    if (in[code]) sel->push_back(static_cast<int32_t>(i));
  }
  return Status::OK();
}

// --- frame of reference ----------------------------------------------------

int DeltaWidth(uint64_t max_delta) {
  if (max_delta <= 0xff) return 1;
  if (max_delta <= 0xffff) return 2;
  if (max_delta <= 0xffffffffULL) return 4;
  return 8;
}

template <typename T>
void ForEncode(const T* data, int64_t n, T min_v, std::string* out) {
  uint64_t max_delta = 0;
  for (int64_t i = 0; i < n; ++i) {
    uint64_t d = static_cast<uint64_t>(data[i]) - static_cast<uint64_t>(min_v);
    if (d > max_delta) max_delta = d;
  }
  PutU64(out, static_cast<uint64_t>(static_cast<int64_t>(min_v)));
  const int width = DeltaWidth(max_delta);
  out->push_back(static_cast<char>(width));
  for (int64_t i = 0; i < n; ++i) {
    uint64_t d = static_cast<uint64_t>(data[i]) - static_cast<uint64_t>(min_v);
    for (int b = 0; b < width; ++b) {
      out->push_back(static_cast<char>(d >> (8 * b)));
    }
  }
}

Status ForReadHeader(Cursor* c, int64_t* base, int* width) {
  uint64_t b = 0;
  if (!c->GetU64(&b)) return Status::Internal("for payload truncated");
  uint8_t w = 0;
  if (!c->GetU8(&w) || (w != 1 && w != 2 && w != 4 && w != 8)) {
    return Status::Internal("for payload has bad delta width");
  }
  *base = static_cast<int64_t>(b);
  *width = w;
  return Status::OK();
}

bool GetDelta(Cursor* c, int width, uint64_t* d) {
  if (c->remaining() < static_cast<size_t>(width)) return false;
  *d = 0;
  for (int i = 0; i < width; ++i) {
    *d |= static_cast<uint64_t>(c->p[c->pos + i]) << (8 * i);
  }
  c->pos += width;
  return true;
}

template <typename T>
Status ForDecode(Cursor* c, int64_t n, std::vector<T>* out) {
  int64_t base = 0;
  int width = 0;
  RDB_RETURN_NOT_OK(ForReadHeader(c, &base, &width));
  out->reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    uint64_t d = 0;
    if (!GetDelta(c, width, &d)) return Status::Internal("for payload truncated");
    out->push_back(static_cast<T>(static_cast<uint64_t>(base) + d));
  }
  return Status::OK();
}

/// Range kernel over the deltas: the bounds are rebased once, then each
/// row costs one unsigned compare — no column is materialized.
template <typename T>
Status ForSelectRange(Cursor* c, TypeId type, int64_t n,
                      const ColumnInterval& range, std::vector<int32_t>* sel) {
  int64_t base = 0;
  int width = 0;
  RDB_RETURN_NOT_OK(ForReadHeader(c, &base, &width));
  int64_t lo = 0, hi = 0;
  const bool fast = IntClosedRange(range, &lo, &hi);
  for (int64_t i = 0; i < n; ++i) {
    uint64_t d = 0;
    if (!GetDelta(c, width, &d)) return Status::Internal("for payload truncated");
    const T v = static_cast<T>(static_cast<uint64_t>(base) + d);
    const bool hit = fast ? (static_cast<int64_t>(v) >= lo &&
                             static_cast<int64_t>(v) <= hi)
                          : InRange(ToDatum(type, v), range);
    if (hit) sel->push_back(static_cast<int32_t>(i));
  }
  return Status::OK();
}

// --- per-type encoder dispatch ---------------------------------------------

/// One analysis pass: raw bytes, run count/bytes, distinct count (capped
/// at 64k, past which dictionaries cannot win a 4-byte code anyway), and
/// min/max for integer frames.
struct ColumnShape {
  int64_t raw_bytes = 0;
  int64_t runs = 0;
  int64_t run_value_bytes = 0;
  int64_t distinct = 0;        // valid while !distinct_overflow
  bool distinct_overflow = false;
  int64_t dict_value_bytes = 0;
  uint64_t max_delta = 0;      // integers only
};

template <typename T>
ColumnShape Analyze(const T* data, int64_t n) {
  ColumnShape s;
  std::unordered_set<T> distinct;
  T min_v{};
  T max_v{};
  for (int64_t i = 0; i < n; ++i) {
    s.raw_bytes += static_cast<int64_t>(ValueBytes(data[i]));
    if (i == 0 || !BitEq(data[i], data[i - 1])) {
      ++s.runs;
      s.run_value_bytes += static_cast<int64_t>(ValueBytes(data[i]));
    }
    if (!s.distinct_overflow) {
      if (distinct.insert(data[i]).second) {
        s.dict_value_bytes += static_cast<int64_t>(ValueBytes(data[i]));
        if (distinct.size() > 0xffff) s.distinct_overflow = true;
      }
    }
    if constexpr (std::is_integral_v<T> && !std::is_same_v<T, uint8_t>) {
      if (i == 0 || data[i] < min_v) min_v = data[i];
      if (i == 0 || data[i] > max_v) max_v = data[i];
    }
  }
  s.distinct = static_cast<int64_t>(distinct.size());
  if constexpr (std::is_integral_v<T> && !std::is_same_v<T, uint8_t>) {
    if (n > 0) {
      s.max_delta =
          static_cast<uint64_t>(max_v) - static_cast<uint64_t>(min_v);
    }
  }
  return s;
}

template <typename T>
T ColumnMin(const T* data, int64_t n) {
  T min_v = data[0];
  for (int64_t i = 1; i < n; ++i) {
    if (data[i] < min_v) min_v = data[i];
  }
  return min_v;
}

template <typename T>
bool SupportsDict() {
  return !std::is_same_v<T, double> && !std::is_same_v<T, uint8_t>;
}

template <typename T>
constexpr bool SupportsFor() {
  return std::is_integral_v<T> && !std::is_same_v<T, uint8_t>;
}

template <typename T>
Status EncodeTypedAs(const T* data, int64_t n, TypeId type,
                     ColumnEncoding encoding, EncodedColumn* out) {
  out->encoding = encoding;
  out->type = type;
  out->num_rows = n;
  out->payload.clear();
  switch (encoding) {
    case ColumnEncoding::kRaw:
      RawEncode(data, n, &out->payload);
      return Status::OK();
    case ColumnEncoding::kRle:
      RleEncode(data, n, &out->payload);
      return Status::OK();
    case ColumnEncoding::kDict:
      if (!SupportsDict<T>()) {
        return Status::InvalidArgument(
            StrFormat("dict encoding unsupported for %s", TypeName(type)));
      }
      if constexpr (!std::is_same_v<T, double> && !std::is_same_v<T, uint8_t>) {
        DictEncode(data, n, &out->payload);
      }
      return Status::OK();
    case ColumnEncoding::kFor:
      if constexpr (SupportsFor<T>()) {
        ForEncode(data, n, n > 0 ? ColumnMin(data, n) : T{}, &out->payload);
        return Status::OK();
      }
      return Status::InvalidArgument(
          StrFormat("for encoding unsupported for %s", TypeName(type)));
  }
  return Status::InvalidArgument("unknown encoding");
}

template <typename T>
EncodedColumn EncodeTypedBest(const T* data, int64_t n, TypeId type) {
  const ColumnShape s = Analyze(data, n);
  ColumnEncoding best = ColumnEncoding::kRaw;
  int64_t best_size = s.raw_bytes;

  const int64_t rle_size = 4 + s.runs * 4 + s.run_value_bytes;
  if (rle_size < best_size) {
    best = ColumnEncoding::kRle;
    best_size = rle_size;
  }
  if (SupportsDict<T>() && !s.distinct_overflow && n > 0) {
    const int64_t dict_size =
        4 + s.dict_value_bytes + 1 +
        n * CodeWidth(static_cast<size_t>(s.distinct));
    if (dict_size < best_size) {
      best = ColumnEncoding::kDict;
      best_size = dict_size;
    }
  }
  if constexpr (SupportsFor<T>()) {
    const int64_t for_size = 8 + 1 + n * DeltaWidth(s.max_delta);
    if (n > 0 && for_size < best_size) {
      best = ColumnEncoding::kFor;
      best_size = for_size;
    }
  }

  EncodedColumn out;
  Status st = EncodeTypedAs(data, n, type, best, &out);
  RDB_CHECK_MSG(st.ok(), st.ToString().c_str());  // best is always supported
  return out;
}

template <typename T>
Status DecodeTyped(const EncodedColumn& enc, std::vector<T>* out) {
  Cursor c{reinterpret_cast<const unsigned char*>(enc.payload.data()),
           enc.payload.size()};
  Status st;
  switch (enc.encoding) {
    case ColumnEncoding::kRaw:
      st = RawDecode(&c, enc.num_rows, out);
      break;
    case ColumnEncoding::kRle:
      st = RleDecode(&c, enc.num_rows, out);
      break;
    case ColumnEncoding::kDict:
      if constexpr (!std::is_same_v<T, double> && !std::is_same_v<T, uint8_t>) {
        st = DictDecode(&c, enc.num_rows, out);
      } else {
        st = Status::Internal("dict payload for unsupported type");
      }
      break;
    case ColumnEncoding::kFor:
      if constexpr (SupportsFor<T>()) {
        st = ForDecode(&c, enc.num_rows, out);
      } else {
        st = Status::Internal("for payload for unsupported type");
      }
      break;
  }
  RDB_RETURN_NOT_OK(st);
  if (c.remaining() != 0) {
    return Status::Internal("encoded column has trailing bytes");
  }
  return Status::OK();
}

template <typename T>
Status SelectTyped(const EncodedColumn& enc, const ColumnInterval& range,
                   std::vector<int32_t>* sel) {
  Cursor c{reinterpret_cast<const unsigned char*>(enc.payload.data()),
           enc.payload.size()};
  switch (enc.encoding) {
    case ColumnEncoding::kRle:
      return RleSelectRange<T>(&c, enc.type, enc.num_rows, range, sel);
    case ColumnEncoding::kDict:
      if constexpr (!std::is_same_v<T, double> && !std::is_same_v<T, uint8_t>) {
        return DictSelectRange<T>(&c, enc.type, enc.num_rows, range, sel);
      }
      return Status::Internal("dict payload for unsupported type");
    case ColumnEncoding::kFor:
      if constexpr (SupportsFor<T>()) {
        return ForSelectRange<T>(&c, enc.type, enc.num_rows, range, sel);
      }
      return Status::Internal("for payload for unsupported type");
    case ColumnEncoding::kRaw: {
      // Streaming decode-and-compare; still never materializes a column.
      std::vector<T> values;
      RDB_RETURN_NOT_OK(RawDecode(&c, enc.num_rows, &values));
      for (int64_t i = 0; i < enc.num_rows; ++i) {
        if (InRange(ToDatum(enc.type, values[static_cast<size_t>(i)]),
                    range)) {
          sel->push_back(static_cast<int32_t>(i));
        }
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown encoding");
}

}  // namespace

EncodedColumn EncodeColumn(const ColumnVector& col) {
  const int64_t n = col.size();
  switch (col.type()) {
    case TypeId::kBool:
      return EncodeTypedBest(col.Raw<uint8_t>(), n, col.type());
    case TypeId::kInt32:
    case TypeId::kDate:
      return EncodeTypedBest(col.Raw<int32_t>(), n, col.type());
    case TypeId::kInt64:
      return EncodeTypedBest(col.Raw<int64_t>(), n, col.type());
    case TypeId::kDouble:
      return EncodeTypedBest(col.Raw<double>(), n, col.type());
    case TypeId::kString:
      return EncodeTypedBest(col.Raw<std::string>(), n, col.type());
  }
  RDB_UNREACHABLE("bad type");
}

Status EncodeColumnAs(const ColumnVector& col, ColumnEncoding encoding,
                      EncodedColumn* out) {
  const int64_t n = col.size();
  switch (col.type()) {
    case TypeId::kBool:
      return EncodeTypedAs(col.Raw<uint8_t>(), n, col.type(), encoding, out);
    case TypeId::kInt32:
    case TypeId::kDate:
      return EncodeTypedAs(col.Raw<int32_t>(), n, col.type(), encoding, out);
    case TypeId::kInt64:
      return EncodeTypedAs(col.Raw<int64_t>(), n, col.type(), encoding, out);
    case TypeId::kDouble:
      return EncodeTypedAs(col.Raw<double>(), n, col.type(), encoding, out);
    case TypeId::kString:
      return EncodeTypedAs(col.Raw<std::string>(), n, col.type(), encoding,
                           out);
  }
  RDB_UNREACHABLE("bad type");
}

Status DecodeColumn(const EncodedColumn& enc, ColumnPtr* out) {
  if (enc.num_rows < 0) {
    return Status::Internal("encoded column has negative row count");
  }
  // Plausibility bound before any allocation: every row costs at least
  // one payload byte under every non-RLE encoding; RLE charges per run.
  ColumnPtr col = MakeColumn(enc.type);
  Status st;
  switch (enc.type) {
    case TypeId::kBool:
      st = DecodeTyped(enc, &col->Data<uint8_t>());
      break;
    case TypeId::kInt32:
    case TypeId::kDate:
      st = DecodeTyped(enc, &col->Data<int32_t>());
      break;
    case TypeId::kInt64:
      st = DecodeTyped(enc, &col->Data<int64_t>());
      break;
    case TypeId::kDouble:
      st = DecodeTyped(enc, &col->Data<double>());
      break;
    case TypeId::kString:
      st = DecodeTyped(enc, &col->Data<std::string>());
      break;
  }
  RDB_RETURN_NOT_OK(st);
  if (col->size() != enc.num_rows) {
    return Status::Internal("encoded column row count mismatch");
  }
  *out = std::move(col);
  return Status::OK();
}

Status SelectRangeEncoded(const EncodedColumn& enc,
                          const ColumnInterval& range,
                          std::vector<int32_t>* sel) {
  if (enc.num_rows < 0 ||
      enc.num_rows > std::numeric_limits<int32_t>::max()) {
    return Status::Internal("encoded column row count out of range");
  }
  switch (enc.type) {
    case TypeId::kBool:
      return SelectTyped<uint8_t>(enc, range, sel);
    case TypeId::kInt32:
    case TypeId::kDate:
      return SelectTyped<int32_t>(enc, range, sel);
    case TypeId::kInt64:
      return SelectTyped<int64_t>(enc, range, sel);
    case TypeId::kDouble:
      return SelectTyped<double>(enc, range, sel);
    case TypeId::kString:
      return SelectTyped<std::string>(enc, range, sel);
  }
  RDB_UNREACHABLE("bad type");
}

}  // namespace recycledb
