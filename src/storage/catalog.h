// Catalog: registry of base tables plus lightweight column statistics.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace recycledb {

/// Per-column statistics used by the proactive cube-caching heuristic
/// ("apply the rule only if the number of distinct values of the column is
/// smaller than a threshold") and by progress meters.
struct ColumnStats {
  int64_t distinct_count = 0;
  Datum min_value;
  Datum max_value;
};

/// Thread-safe registry of base tables.
///
/// The catalog is read-mostly: benchmarks register tables once and then
/// run concurrent query streams against them.
class Catalog {
 public:
  Catalog() = default;

  /// Registers `table` under `name`; computes column statistics eagerly.
  Status RegisterTable(const std::string& name, TablePtr table);

  /// Replaces a registered table (used by update/invalidation tests).
  Status ReplaceTable(const std::string& name, TablePtr table);

  /// Looks up a table; nullptr if absent.
  TablePtr GetTable(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Returns statistics for `table.column`; nullptr if unknown.
  const ColumnStats* GetColumnStats(const std::string& table,
                                    const std::string& column) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    TablePtr table;
    std::map<std::string, ColumnStats> column_stats;
  };

  static void ComputeStats(const Table& table,
                           std::map<std::string, ColumnStats>* out);

  mutable std::mutex mu_;
  std::map<std::string, Entry> tables_;
};

}  // namespace recycledb
