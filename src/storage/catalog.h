// Catalog: registry of base tables plus lightweight column statistics.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace recycledb {

/// Per-column statistics used by the proactive cube-caching heuristic
/// ("apply the rule only if the number of distinct values of the column is
/// smaller than a threshold") and by progress meters.
struct ColumnStats {
  int64_t distinct_count = 0;
  Datum min_value;
  Datum max_value;
};

/// A consistent view of one catalog entry at a point in time: the table
/// object, its replace-epoch, and its append high-water mark (row count).
/// Published tables are immutable, so holding the TablePtr pins the
/// snapshot's data even while concurrent appends swap in grown versions.
struct TableSnapshot {
  TablePtr table;
  /// Bumped by ReplaceTable; appends preserve it. Two snapshots of the
  /// same name are append-comparable iff their epochs match.
  uint64_t epoch = 0;
  /// table->num_rows() at snapshot time (the version under append-only
  /// mutation, see DESIGN.md "Delta maintenance").
  int64_t rows = 0;
};

/// Thread-safe registry of base tables.
///
/// The catalog is read-mostly: benchmarks register tables once and then
/// run concurrent query streams against them. Append-only growth goes
/// through AppendRows (copy-on-append + pointer swap), which keeps every
/// previously handed-out TablePtr valid as an immutable as-of snapshot.
class Catalog {
 public:
  Catalog() = default;

  /// Registers `table` under `name`; computes column statistics eagerly.
  Status RegisterTable(const std::string& name, TablePtr table);

  /// Replaces a registered table (used by update/invalidation tests).
  /// Bumps the entry's epoch: cached results stamped under the old epoch
  /// become incomparable and must be hard-invalidated.
  Status ReplaceTable(const std::string& name, TablePtr table);

  /// Appends `delta`'s rows to table `name` without invalidating readers:
  /// builds a grown copy off-lock and swaps it in (the epoch is kept, the
  /// high-water mark advances by delta.num_rows()). Concurrent appends to
  /// the same catalog serialize; a ReplaceTable racing the copy aborts
  /// the append. Schema of `delta` must match the registered table.
  Status AppendRows(const std::string& name, const Table& delta);

  /// Looks up a table; nullptr if absent.
  TablePtr GetTable(const std::string& name) const;

  /// Atomically captures {table, epoch, rows} for `name`; a default
  /// (null-table) snapshot if absent.
  TableSnapshot Snapshot(const std::string& name) const;

  bool HasTable(const std::string& name) const;

  /// Returns statistics for `table.column`; nullptr if unknown.
  const ColumnStats* GetColumnStats(const std::string& table,
                                    const std::string& column) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    TablePtr table;
    uint64_t epoch = 1;
    std::map<std::string, ColumnStats> column_stats;
  };

  static void ComputeStats(const Table& table,
                           std::map<std::string, ColumnStats>* out);

  mutable std::mutex mu_;
  /// Serializes AppendRows calls so two concurrent appends cannot both
  /// copy the same base and lose rows. Ordered before mu_ (an append
  /// takes append_mu_, then mu_ briefly at each end); no code path takes
  /// append_mu_ while holding mu_.
  std::mutex append_mu_;
  std::map<std::string, Entry> tables_;
};

}  // namespace recycledb
