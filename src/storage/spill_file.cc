#include "storage/spill_file.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"
#include "storage/compression.h"
#include "storage/wire_format.h"

namespace recycledb {

namespace {

using wire::Cursor;
using wire::PutDouble;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;

constexpr char kMagic[4] = {'R', 'D', 'B', 'S'};

// --- header (de)serialization into a flat byte buffer ---------------------

std::string SerializeHeader(const SpillFileMeta& meta, uint32_t version) {
  std::string h;
  PutString(&h, meta.canon_key);
  PutU32(&h, static_cast<uint32_t>(meta.column_names.size()));
  for (size_t i = 0; i < meta.column_names.size(); ++i) {
    PutString(&h, meta.column_names[i]);
    h.push_back(static_cast<char>(meta.column_types[i]));
  }
  PutU64(&h, static_cast<uint64_t>(meta.num_rows));
  PutDouble(&h, meta.bcost_ms);
  PutDouble(&h, meta.h);
  PutDouble(&h, meta.benefit);
  PutU32(&h, static_cast<uint32_t>(meta.base_tables.size()));
  for (const std::string& t : meta.base_tables) PutString(&h, t);
  // v2 appends the uncompressed payload size; v1 headers end here (and a
  // v1 reader never sees the field, so the prefix stays byte-compatible).
  if (version >= 2) PutU64(&h, static_cast<uint64_t>(meta.raw_bytes));
  // v3 appends the base-table row high-water marks (delta maintenance).
  if (version >= 3) {
    PutU32(&h, static_cast<uint32_t>(meta.table_versions.size()));
    for (const auto& [table, rows] : meta.table_versions) {
      PutString(&h, table);
      PutU64(&h, static_cast<uint64_t>(rows));
    }
  }
  return h;
}

Status ParseHeader(const std::string& buf, uint32_t version,
                   SpillFileMeta* meta) {
  Cursor c{reinterpret_cast<const unsigned char*>(buf.data()), buf.size()};
  uint32_t ncols = 0, ntables = 0;
  uint64_t rows = 0;
  *meta = SpillFileMeta{};
  meta->format_version = version;
  meta->raw_bytes = 0;
  if (!c.GetString(&meta->canon_key) || !c.GetU32(&ncols)) {
    return Status::Internal("spill header truncated");
  }
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    if (!c.GetString(&name) || c.pos >= c.len) {
      return Status::Internal("spill header truncated in column list");
    }
    uint8_t type = c.p[c.pos++];
    if (type > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::Internal(
          StrFormat("spill header has unknown column type %d", (int)type));
    }
    meta->column_names.push_back(std::move(name));
    meta->column_types.push_back(static_cast<TypeId>(type));
  }
  if (!c.GetU64(&rows) || !c.GetDouble(&meta->bcost_ms) ||
      !c.GetDouble(&meta->h) || !c.GetDouble(&meta->benefit) ||
      !c.GetU32(&ntables)) {
    return Status::Internal("spill header truncated");
  }
  meta->num_rows = static_cast<int64_t>(rows);
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string t;
    if (!c.GetString(&t)) {
      return Status::Internal("spill header truncated in base-table list");
    }
    meta->base_tables.push_back(std::move(t));
  }
  if (version >= 2) {
    uint64_t raw = 0;
    if (!c.GetU64(&raw)) {
      return Status::Internal("spill header truncated (raw size)");
    }
    meta->raw_bytes = static_cast<int64_t>(raw);
  }
  if (version >= 3) {
    uint32_t nversions = 0;
    if (!c.GetU32(&nversions)) {
      return Status::Internal("spill header truncated (table versions)");
    }
    for (uint32_t i = 0; i < nversions; ++i) {
      std::string t;
      uint64_t rows = 0;
      if (!c.GetString(&t) || !c.GetU64(&rows)) {
        return Status::Internal("spill header truncated in version list");
      }
      meta->table_versions.emplace_back(std::move(t),
                                        static_cast<int64_t>(rows));
    }
  }
  return Status::OK();
}

/// Size of the v1 raw column image for `table` (also the meaning of
/// SpillFileMeta::raw_bytes).
int64_t RawPayloadBytes(const Table& table) {
  const int64_t rows = table.num_rows();
  int64_t bytes = 0;
  for (int ci = 0; ci < table.num_columns(); ++ci) {
    const ColumnVector& col = *table.column(ci);
    switch (col.type()) {
      case TypeId::kBool:
        bytes += rows;
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        bytes += rows * 4;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        bytes += rows * 8;
        break;
      case TypeId::kString: {
        const std::string* data = col.Raw<std::string>();
        for (int64_t r = 0; r < rows; ++r) {
          bytes += 4 + static_cast<int64_t>(data[r].size());
        }
        break;
      }
    }
  }
  return bytes;
}

/// FILE* wrapper that streams every written byte through FNV-1a.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t len) {
    if (len == 0) return true;  // zero-row columns pass a null span
    sum_ = Fnv1a(data, len, sum_);
    return std::fwrite(data, 1, len, f_) == len;
  }
  uint64_t sum() const { return sum_; }

 private:
  std::FILE* f_;
  uint64_t sum_ = 0xcbf29ce484222325ULL;
};

/// Bulk-reads `len` bytes, folding them into `*sum`.
bool ReadChecked(std::FILE* f, void* data, size_t len, uint64_t* sum) {
  if (std::fread(data, 1, len, f) != len) return false;
  *sum = Fnv1a(data, len, *sum);
  return true;
}

// --- v1 payload (raw column images) ---------------------------------------

Status WriteColumnsV1(ChecksummedWriter* w, const Table& table) {
  const int64_t rows = table.num_rows();
  for (int ci = 0; ci < table.num_columns(); ++ci) {
    const ColumnVector& col = *table.column(ci);
    switch (col.type()) {
      case TypeId::kBool:
        if (!w->Write(col.Raw<uint8_t>(), static_cast<size_t>(rows)))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        if (!w->Write(col.Raw<int32_t>(), static_cast<size_t>(rows) * 4))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kInt64:
        if (!w->Write(col.Raw<int64_t>(), static_cast<size_t>(rows) * 8))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kDouble:
        if (!w->Write(col.Raw<double>(), static_cast<size_t>(rows) * 8))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kString: {
        const std::string* data = col.Raw<std::string>();
        for (int64_t r = 0; r < rows; ++r) {
          std::string lenbuf;
          PutU32(&lenbuf, static_cast<uint32_t>(data[r].size()));
          if (!w->Write(lenbuf.data(), lenbuf.size()) ||
              !w->Write(data[r].data(), data[r].size())) {
            return Status::Internal("spill write failed");
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status ReadColumnsV1(std::FILE* f, const SpillFileMeta& meta,
                     int64_t payload_bytes, uint64_t* sum, TablePtr* out) {
  std::vector<Field> fields;
  for (size_t i = 0; i < meta.column_names.size(); ++i) {
    fields.push_back({meta.column_names[i], meta.column_types[i]});
  }
  TablePtr table = MakeTable(Schema(std::move(fields)));
  const int64_t rows = meta.num_rows;
  if (rows < 0) return Status::Internal("spill header has negative row count");
  // Plausibility bound BEFORE any allocation: a corrupt row count must
  // yield a recoverable Status, not a std::length_error abort. Each row
  // costs at least its columns' fixed widths (a string costs its 4-byte
  // length prefix), so rows is bounded by the payload size.
  int64_t min_row_bytes = 0;
  for (TypeId type : meta.column_types) {
    switch (type) {
      case TypeId::kBool:
        min_row_bytes += 1;
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
      case TypeId::kString:
        min_row_bytes += 4;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        min_row_bytes += 8;
        break;
    }
  }
  if (rows > 0 && (min_row_bytes == 0 || payload_bytes < 0 ||
                   rows > payload_bytes / min_row_bytes)) {
    return Status::Internal("spill header row count exceeds file size");
  }

  Batch batch;
  batch.num_rows = rows;
  for (TypeId type : meta.column_types) {
    ColumnPtr col = MakeColumn(type);
    switch (type) {
      case TypeId::kBool: {
        auto& v = col->Data<uint8_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size(), sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        auto& v = col->Data<int32_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 4, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kInt64: {
        auto& v = col->Data<int64_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 8, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kDouble: {
        auto& v = col->Data<double>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 8, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kString: {
        auto& v = col->Data<std::string>();
        v.reserve(static_cast<size_t>(rows));
        for (int64_t r = 0; r < rows; ++r) {
          unsigned char lenbuf[4];
          if (!ReadChecked(f, lenbuf, 4, sum))
            return Status::Internal("spill payload truncated");
          uint32_t n = 0;
          for (int i = 0; i < 4; ++i) n |= static_cast<uint32_t>(lenbuf[i]) << (8 * i);
          // Cap per-value size so a corrupt length cannot OOM the reader
          // before the checksum check would have caught it.
          if (n > (64u << 20)) {
            return Status::Internal("spill payload has implausible string length");
          }
          std::string s(n, '\0');
          if (n > 0 && !ReadChecked(f, s.data(), n, sum))
            return Status::Internal("spill payload truncated");
          v.push_back(std::move(s));
        }
        break;
      }
    }
    batch.columns.push_back(std::move(col));
  }
  table->AppendBatch(batch);
  *out = std::move(table);
  return Status::OK();
}

// --- v2 payload (encoded column blocks) -----------------------------------

Status WriteColumnsV2(ChecksummedWriter* w, const Table& table,
                      bool compress) {
  for (int ci = 0; ci < table.num_columns(); ++ci) {
    const ColumnVector& col = *table.column(ci);
    EncodedColumn enc;
    if (compress) {
      enc = EncodeColumn(col);
    } else {
      RDB_RETURN_NOT_OK(EncodeColumnAs(col, ColumnEncoding::kRaw, &enc));
    }
    std::string frame;
    frame.push_back(static_cast<char>(enc.encoding));
    PutU64(&frame, enc.payload.size());
    if (!w->Write(frame.data(), frame.size()) ||
        !w->Write(enc.payload.data(), enc.payload.size())) {
      return Status::Internal("spill write failed");
    }
  }
  return Status::OK();
}

/// Decodes the v2 payload out of an in-memory buffer. The caller has
/// already verified the checksum over these bytes, so every decode
/// failure here means a crafted file, not bit rot; all of them are still
/// recoverable Statuses (the codecs bounds-check before allocating).
Status ReadColumnsV2(const std::string& payload, const SpillFileMeta& meta,
                     TablePtr* out) {
  if (meta.num_rows < 0) {
    return Status::Internal("spill header has negative row count");
  }
  std::vector<Field> fields;
  for (size_t i = 0; i < meta.column_names.size(); ++i) {
    fields.push_back({meta.column_names[i], meta.column_types[i]});
  }
  TablePtr table = MakeTable(Schema(std::move(fields)));
  Cursor c{reinterpret_cast<const unsigned char*>(payload.data()),
           payload.size()};
  Batch batch;
  batch.num_rows = meta.num_rows;
  for (TypeId type : meta.column_types) {
    uint8_t encoding = 0;
    uint64_t len = 0;
    if (!c.GetU8(&encoding) || !c.GetU64(&len) || len > c.remaining()) {
      return Status::Internal("spill column block truncated");
    }
    if (encoding > static_cast<uint8_t>(ColumnEncoding::kFor)) {
      return Status::Internal(
          StrFormat("spill column has unknown encoding %d", (int)encoding));
    }
    EncodedColumn enc;
    enc.encoding = static_cast<ColumnEncoding>(encoding);
    enc.type = type;
    enc.num_rows = meta.num_rows;
    enc.payload.assign(reinterpret_cast<const char*>(c.p + c.pos),
                       static_cast<size_t>(len));
    c.pos += static_cast<size_t>(len);
    ColumnPtr col;
    RDB_RETURN_NOT_OK(DecodeColumn(enc, &col));
    batch.columns.push_back(std::move(col));
  }
  if (c.remaining() != 0) {
    return Status::Internal("spill payload has trailing bytes");
  }
  table->AppendBatch(batch);
  *out = std::move(table);
  return Status::OK();
}

/// Opens `path`, validates magic/version, reads the header. On success
/// `*f_out` is positioned at the first payload byte and `*sum` holds the
/// running checksum over the header bytes.
Status OpenAndReadHeader(const std::string& path, std::FILE** f_out,
                         SpillFileMeta* meta, uint64_t* sum) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("spill file %s cannot be opened",
                                      path.c_str()));
  }
  char magic[4];
  unsigned char fixed[12];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s is not a spill file", path.c_str()));
  }
  if (std::fread(fixed, 1, 12, f) != 12) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: spill header truncated", path.c_str()));
  }
  uint32_t version = 0;
  uint64_t header_len = 0;
  for (int i = 0; i < 4; ++i) version |= static_cast<uint32_t>(fixed[i]) << (8 * i);
  for (int i = 0; i < 8; ++i)
    header_len |= static_cast<uint64_t>(fixed[4 + i]) << (8 * i);
  if (version != kSpillFormatVersionV1 && version != kSpillFormatVersionV2 &&
      version != kSpillFormatVersion) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: unsupported spill version %u",
                                      path.c_str(), version));
  }
  if (header_len > (16u << 20)) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: implausible spill header length",
                                      path.c_str()));
  }
  std::string header(header_len, '\0');
  if (header_len > 0 &&
      std::fread(header.data(), 1, header_len, f) != header_len) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: spill header truncated", path.c_str()));
  }
  Status st = ParseHeader(header, version, meta);
  if (!st.ok()) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: %s", path.c_str(),
                                      st.message().c_str()));
  }
  *sum = Fnv1a(header.data(), header.size());
  *f_out = f;
  return Status::OK();
}

/// Owning copy of the rows in `sel` (ascending, in-bounds — produced by
/// SelectRangeEncoded over the same column image).
ColumnPtr GatherRows(const ColumnVector& col, const std::vector<int32_t>& sel) {
  ColumnPtr out = MakeColumn(col.type());
  switch (col.type()) {
    case TypeId::kBool: {
      const uint8_t* src = col.Raw<uint8_t>();
      auto& v = out->Data<uint8_t>();
      v.reserve(sel.size());
      for (int32_t r : sel) v.push_back(src[r]);
      break;
    }
    case TypeId::kInt32:
    case TypeId::kDate: {
      const int32_t* src = col.Raw<int32_t>();
      auto& v = out->Data<int32_t>();
      v.reserve(sel.size());
      for (int32_t r : sel) v.push_back(src[r]);
      break;
    }
    case TypeId::kInt64: {
      const int64_t* src = col.Raw<int64_t>();
      auto& v = out->Data<int64_t>();
      v.reserve(sel.size());
      for (int32_t r : sel) v.push_back(src[r]);
      break;
    }
    case TypeId::kDouble: {
      const double* src = col.Raw<double>();
      auto& v = out->Data<double>();
      v.reserve(sel.size());
      for (int32_t r : sel) v.push_back(src[r]);
      break;
    }
    case TypeId::kString: {
      const std::string* src = col.Raw<std::string>();
      auto& v = out->Data<std::string>();
      v.reserve(sel.size());
      for (int32_t r : sel) v.push_back(src[r]);
      break;
    }
  }
  return out;
}

}  // namespace

Status WriteSpillFile(const std::string& path, const Table& table,
                      const SpillFileMeta& meta,
                      const SpillWriteOptions& options) {
  if (options.version != kSpillFormatVersionV1 &&
      options.version != kSpillFormatVersionV2 &&
      options.version != kSpillFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported spill write version %u", options.version));
  }
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrFormat("cannot create spill file %s",
                                      tmp.c_str()));
  }
  SpillFileMeta stamped = meta;
  stamped.format_version = options.version;
  stamped.raw_bytes = RawPayloadBytes(table);
  std::string header = SerializeHeader(stamped, options.version);
  std::string prefix;
  prefix.append(kMagic, 4);
  PutU32(&prefix, options.version);
  PutU64(&prefix, static_cast<uint64_t>(header.size()));

  // The prefix (magic/version/length) is outside the checksum; the
  // checksum covers header + payload, matching the read path.
  Status st = Status::OK();
  if (std::fwrite(prefix.data(), 1, prefix.size(), f) != prefix.size()) {
    st = Status::Internal("spill write failed");
  }
  ChecksummedWriter w(f);
  if (st.ok() && !w.Write(header.data(), header.size())) {
    st = Status::Internal("spill write failed");
  }
  if (st.ok()) {
    st = options.version >= 2 ? WriteColumnsV2(&w, table, options.compress)
                              : WriteColumnsV1(&w, table);
  }
  if (st.ok()) {
    std::string sumbuf;
    PutU64(&sumbuf, w.sum());
    if (std::fwrite(sumbuf.data(), 1, sumbuf.size(), f) != sumbuf.size()) {
      st = Status::Internal("spill write failed");
    }
  }
  if (std::fclose(f) != 0 && st.ok()) {
    st = Status::Internal("spill write failed on close");
  }
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal(StrFormat("cannot rename %s into place", tmp.c_str()));
  }
  if (!st.ok()) std::remove(tmp.c_str());
  return st;
}

Status ReadSpillMeta(const std::string& path, SpillFileMeta* meta) {
  std::FILE* f = nullptr;
  uint64_t sum = 0;
  RDB_RETURN_NOT_OK(OpenAndReadHeader(path, &f, meta, &sum));
  std::fclose(f);
  return Status::OK();
}

Status ReadSpillTable(const std::string& path, SpillFileMeta* meta,
                      TablePtr* out) {
  std::FILE* f = nullptr;
  uint64_t sum = 0;
  RDB_RETURN_NOT_OK(OpenAndReadHeader(path, &f, meta, &sum));
  // Payload capacity = bytes between the header and the 8-byte checksum.
  const long payload_start = std::ftell(f);
  int64_t payload_bytes = 0;
  if (payload_start < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: cannot size spill file",
                                      path.c_str()));
  }
  payload_bytes = std::ftell(f) - payload_start - 8;
  std::fseek(f, payload_start, SEEK_SET);
  TablePtr table;
  Status st = Status::OK();
  if (meta->format_version >= 2) {
    // v2 verifies the checksum BEFORE decoding: the encoded payload is at
    // most the file size (unlike its decoded form), so it is safe to buffer
    // whole, and the decoders then never see bit rot.
    if (payload_bytes < 0) {
      st = Status::Internal(StrFormat("%s: spill file truncated", path.c_str()));
    }
    std::string payload;
    if (st.ok()) {
      payload.resize(static_cast<size_t>(payload_bytes));
      if (payload_bytes > 0 &&
          !ReadChecked(f, payload.data(), payload.size(), &sum)) {
        st = Status::Internal(StrFormat("%s: spill payload truncated",
                                        path.c_str()));
      }
    }
    if (st.ok()) {
      unsigned char sumbuf[8];
      if (std::fread(sumbuf, 1, 8, f) != 8) {
        st = Status::Internal(StrFormat("%s: spill checksum missing",
                                        path.c_str()));
      } else {
        uint64_t stored = 0;
        for (int i = 0; i < 8; ++i)
          stored |= static_cast<uint64_t>(sumbuf[i]) << (8 * i);
        if (stored != sum) {
          st = Status::Internal(StrFormat("%s: spill checksum mismatch",
                                          path.c_str()));
        }
      }
    }
    if (st.ok()) {
      st = ReadColumnsV2(payload, *meta, &table);
      if (!st.ok()) {
        st = Status::Internal(StrFormat("%s: %s", path.c_str(),
                                        st.message().c_str()));
      }
    }
  } else {
    st = ReadColumnsV1(f, *meta, payload_bytes, &sum, &table);
    if (st.ok()) {
      unsigned char sumbuf[8];
      if (std::fread(sumbuf, 1, 8, f) != 8) {
        st = Status::Internal(StrFormat("%s: spill checksum missing", path.c_str()));
      } else {
        uint64_t stored = 0;
        for (int i = 0; i < 8; ++i)
          stored |= static_cast<uint64_t>(sumbuf[i]) << (8 * i);
        if (stored != sum) {
          st = Status::Internal(StrFormat("%s: spill checksum mismatch",
                                          path.c_str()));
        }
      }
    }
  }
  std::fclose(f);
  if (st.ok()) *out = std::move(table);
  return st;
}

Status ReadSpillTableFiltered(const std::string& path, SpillFileMeta* meta,
                              int filter_column, const ColumnInterval& range,
                              TablePtr* out) {
  std::FILE* f = nullptr;
  uint64_t sum = 0;
  RDB_RETURN_NOT_OK(OpenAndReadHeader(path, &f, meta, &sum));
  if (meta->format_version < 2) {
    // v1 stores raw images only; there is no encoded form to filter on.
    // Recoverable: the caller falls back to ReadSpillTable.
    std::fclose(f);
    return Status::Internal(
        StrFormat("%s: v1 spill file has no encoded image", path.c_str()));
  }
  if (filter_column < 0 ||
      filter_column >= static_cast<int>(meta->column_types.size())) {
    std::fclose(f);
    return Status::InvalidArgument(
        StrFormat("%s: filter column %d out of range", path.c_str(),
                  filter_column));
  }

  // Buffer the payload and verify the checksum before touching any codec
  // (same discipline as ReadSpillTable's v2 branch).
  const long payload_start = std::ftell(f);
  Status st = Status::OK();
  if (payload_start < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal(
        StrFormat("%s: cannot size spill file", path.c_str()));
  }
  const int64_t payload_bytes = std::ftell(f) - payload_start - 8;
  std::fseek(f, payload_start, SEEK_SET);
  if (payload_bytes < 0) {
    st = Status::Internal(StrFormat("%s: spill file truncated", path.c_str()));
  }
  std::string payload;
  if (st.ok()) {
    payload.resize(static_cast<size_t>(payload_bytes));
    if (payload_bytes > 0 &&
        !ReadChecked(f, payload.data(), payload.size(), &sum)) {
      st = Status::Internal(
          StrFormat("%s: spill payload truncated", path.c_str()));
    }
  }
  if (st.ok()) {
    unsigned char sumbuf[8];
    if (std::fread(sumbuf, 1, 8, f) != 8) {
      st = Status::Internal(
          StrFormat("%s: spill checksum missing", path.c_str()));
    } else {
      uint64_t stored = 0;
      for (int i = 0; i < 8; ++i)
        stored |= static_cast<uint64_t>(sumbuf[i]) << (8 * i);
      if (stored != sum) {
        st = Status::Internal(
            StrFormat("%s: spill checksum mismatch", path.c_str()));
      }
    }
  }
  std::fclose(f);
  RDB_RETURN_NOT_OK(st);

  // Parse the per-column frames without decoding anything yet.
  if (meta->num_rows < 0) {
    return Status::Internal("spill header has negative row count");
  }
  std::vector<EncodedColumn> encs;
  Cursor c{reinterpret_cast<const unsigned char*>(payload.data()),
           payload.size()};
  for (TypeId type : meta->column_types) {
    uint8_t encoding = 0;
    uint64_t len = 0;
    if (!c.GetU8(&encoding) || !c.GetU64(&len) || len > c.remaining()) {
      return Status::Internal(
          StrFormat("%s: spill column block truncated", path.c_str()));
    }
    if (encoding > static_cast<uint8_t>(ColumnEncoding::kFor)) {
      return Status::Internal(
          StrFormat("%s: spill column has unknown encoding %d", path.c_str(),
                    (int)encoding));
    }
    EncodedColumn enc;
    enc.encoding = static_cast<ColumnEncoding>(encoding);
    enc.type = type;
    enc.num_rows = meta->num_rows;
    enc.payload.assign(reinterpret_cast<const char*>(c.p + c.pos),
                       static_cast<size_t>(len));
    c.pos += static_cast<size_t>(len);
    encs.push_back(std::move(enc));
  }
  if (c.remaining() != 0) {
    return Status::Internal(
        StrFormat("%s: spill payload has trailing bytes", path.c_str()));
  }

  // Selection on the encoded filter column, then decode + gather the
  // rest. Ascending selection preserves row order, so the result is
  // bit-identical to a full load followed by the same range filter.
  std::vector<int32_t> sel;
  RDB_RETURN_NOT_OK(SelectRangeEncoded(encs[filter_column], range, &sel));
  std::vector<Field> fields;
  for (size_t i = 0; i < meta->column_names.size(); ++i) {
    fields.push_back({meta->column_names[i], meta->column_types[i]});
  }
  TablePtr table = MakeTable(Schema(std::move(fields)));
  Batch batch;
  batch.num_rows = static_cast<int64_t>(sel.size());
  for (const EncodedColumn& enc : encs) {
    ColumnPtr full;
    RDB_RETURN_NOT_OK(DecodeColumn(enc, &full));
    batch.columns.push_back(GatherRows(*full, sel));
  }
  table->AppendBatch(batch);
  *out = std::move(table);
  return Status::OK();
}

}  // namespace recycledb
