#include "storage/spill_file.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"

namespace recycledb {

namespace {

constexpr char kMagic[4] = {'R', 'D', 'B', 'S'};

// --- header (de)serialization into a flat byte buffer ---------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over the header buffer; every Get* returns false
/// past the end so a truncated header fails cleanly.
struct Cursor {
  const unsigned char* p;
  size_t len;
  size_t pos = 0;

  bool GetU32(uint32_t* v) {
    if (pos + 4 > len) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos + 8 > len) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (pos + n > len) return false;
    s->assign(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return true;
  }
};

std::string SerializeHeader(const SpillFileMeta& meta) {
  std::string h;
  PutString(&h, meta.canon_key);
  PutU32(&h, static_cast<uint32_t>(meta.column_names.size()));
  for (size_t i = 0; i < meta.column_names.size(); ++i) {
    PutString(&h, meta.column_names[i]);
    h.push_back(static_cast<char>(meta.column_types[i]));
  }
  PutU64(&h, static_cast<uint64_t>(meta.num_rows));
  PutDouble(&h, meta.bcost_ms);
  PutDouble(&h, meta.h);
  PutDouble(&h, meta.benefit);
  PutU32(&h, static_cast<uint32_t>(meta.base_tables.size()));
  for (const std::string& t : meta.base_tables) PutString(&h, t);
  return h;
}

Status ParseHeader(const std::string& buf, SpillFileMeta* meta) {
  Cursor c{reinterpret_cast<const unsigned char*>(buf.data()), buf.size()};
  uint32_t ncols = 0, ntables = 0;
  uint64_t rows = 0;
  *meta = SpillFileMeta{};
  if (!c.GetString(&meta->canon_key) || !c.GetU32(&ncols)) {
    return Status::Internal("spill header truncated");
  }
  for (uint32_t i = 0; i < ncols; ++i) {
    std::string name;
    if (!c.GetString(&name) || c.pos >= c.len) {
      return Status::Internal("spill header truncated in column list");
    }
    uint8_t type = c.p[c.pos++];
    if (type > static_cast<uint8_t>(TypeId::kDate)) {
      return Status::Internal(
          StrFormat("spill header has unknown column type %d", (int)type));
    }
    meta->column_names.push_back(std::move(name));
    meta->column_types.push_back(static_cast<TypeId>(type));
  }
  if (!c.GetU64(&rows) || !c.GetDouble(&meta->bcost_ms) ||
      !c.GetDouble(&meta->h) || !c.GetDouble(&meta->benefit) ||
      !c.GetU32(&ntables)) {
    return Status::Internal("spill header truncated");
  }
  meta->num_rows = static_cast<int64_t>(rows);
  for (uint32_t i = 0; i < ntables; ++i) {
    std::string t;
    if (!c.GetString(&t)) {
      return Status::Internal("spill header truncated in base-table list");
    }
    meta->base_tables.push_back(std::move(t));
  }
  return Status::OK();
}

/// FILE* wrapper that streams every written byte through FNV-1a.
class ChecksummedWriter {
 public:
  explicit ChecksummedWriter(std::FILE* f) : f_(f) {}

  bool Write(const void* data, size_t len) {
    if (len == 0) return true;  // zero-row columns pass a null span
    sum_ = Fnv1a(data, len, sum_);
    return std::fwrite(data, 1, len, f_) == len;
  }
  uint64_t sum() const { return sum_; }

 private:
  std::FILE* f_;
  uint64_t sum_ = 0xcbf29ce484222325ULL;
};

/// Bulk-reads `len` bytes, folding them into `*sum`.
bool ReadChecked(std::FILE* f, void* data, size_t len, uint64_t* sum) {
  if (std::fread(data, 1, len, f) != len) return false;
  *sum = Fnv1a(data, len, *sum);
  return true;
}

Status WriteColumns(ChecksummedWriter* w, const Table& table) {
  const int64_t rows = table.num_rows();
  for (int ci = 0; ci < table.num_columns(); ++ci) {
    const ColumnVector& col = *table.column(ci);
    switch (col.type()) {
      case TypeId::kBool:
        if (!w->Write(col.Raw<uint8_t>(), static_cast<size_t>(rows)))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        if (!w->Write(col.Raw<int32_t>(), static_cast<size_t>(rows) * 4))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kInt64:
        if (!w->Write(col.Raw<int64_t>(), static_cast<size_t>(rows) * 8))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kDouble:
        if (!w->Write(col.Raw<double>(), static_cast<size_t>(rows) * 8))
          return Status::Internal("spill write failed");
        break;
      case TypeId::kString: {
        const std::string* data = col.Raw<std::string>();
        for (int64_t r = 0; r < rows; ++r) {
          std::string lenbuf;
          PutU32(&lenbuf, static_cast<uint32_t>(data[r].size()));
          if (!w->Write(lenbuf.data(), lenbuf.size()) ||
              !w->Write(data[r].data(), data[r].size())) {
            return Status::Internal("spill write failed");
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

Status ReadColumns(std::FILE* f, const SpillFileMeta& meta,
                   int64_t payload_bytes, uint64_t* sum, TablePtr* out) {
  std::vector<Field> fields;
  for (size_t i = 0; i < meta.column_names.size(); ++i) {
    fields.push_back({meta.column_names[i], meta.column_types[i]});
  }
  TablePtr table = MakeTable(Schema(std::move(fields)));
  const int64_t rows = meta.num_rows;
  if (rows < 0) return Status::Internal("spill header has negative row count");
  // Plausibility bound BEFORE any allocation: a corrupt row count must
  // yield a recoverable Status, not a std::length_error abort. Each row
  // costs at least its columns' fixed widths (a string costs its 4-byte
  // length prefix), so rows is bounded by the payload size.
  int64_t min_row_bytes = 0;
  for (TypeId type : meta.column_types) {
    switch (type) {
      case TypeId::kBool:
        min_row_bytes += 1;
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
      case TypeId::kString:
        min_row_bytes += 4;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        min_row_bytes += 8;
        break;
    }
  }
  if (rows > 0 && (min_row_bytes == 0 || payload_bytes < 0 ||
                   rows > payload_bytes / min_row_bytes)) {
    return Status::Internal("spill header row count exceeds file size");
  }

  Batch batch;
  batch.num_rows = rows;
  for (TypeId type : meta.column_types) {
    ColumnPtr col = MakeColumn(type);
    switch (type) {
      case TypeId::kBool: {
        auto& v = col->Data<uint8_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size(), sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        auto& v = col->Data<int32_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 4, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kInt64: {
        auto& v = col->Data<int64_t>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 8, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kDouble: {
        auto& v = col->Data<double>();
        v.resize(static_cast<size_t>(rows));
        if (rows > 0 && !ReadChecked(f, v.data(), v.size() * 8, sum))
          return Status::Internal("spill payload truncated");
        break;
      }
      case TypeId::kString: {
        auto& v = col->Data<std::string>();
        v.reserve(static_cast<size_t>(rows));
        for (int64_t r = 0; r < rows; ++r) {
          unsigned char lenbuf[4];
          if (!ReadChecked(f, lenbuf, 4, sum))
            return Status::Internal("spill payload truncated");
          uint32_t n = 0;
          for (int i = 0; i < 4; ++i) n |= static_cast<uint32_t>(lenbuf[i]) << (8 * i);
          // Cap per-value size so a corrupt length cannot OOM the reader
          // before the checksum check would have caught it.
          if (n > (64u << 20)) {
            return Status::Internal("spill payload has implausible string length");
          }
          std::string s(n, '\0');
          if (n > 0 && !ReadChecked(f, s.data(), n, sum))
            return Status::Internal("spill payload truncated");
          v.push_back(std::move(s));
        }
        break;
      }
    }
    batch.columns.push_back(std::move(col));
  }
  table->AppendBatch(batch);
  *out = std::move(table);
  return Status::OK();
}

/// Opens `path`, validates magic/version, reads the header. On success
/// `*f_out` is positioned at the first payload byte and `*sum` holds the
/// running checksum over the header bytes.
Status OpenAndReadHeader(const std::string& path, std::FILE** f_out,
                         SpillFileMeta* meta, uint64_t* sum) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(StrFormat("spill file %s cannot be opened",
                                      path.c_str()));
  }
  char magic[4];
  unsigned char fixed[12];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s is not a spill file", path.c_str()));
  }
  if (std::fread(fixed, 1, 12, f) != 12) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: spill header truncated", path.c_str()));
  }
  uint32_t version = 0;
  uint64_t header_len = 0;
  for (int i = 0; i < 4; ++i) version |= static_cast<uint32_t>(fixed[i]) << (8 * i);
  for (int i = 0; i < 8; ++i)
    header_len |= static_cast<uint64_t>(fixed[4 + i]) << (8 * i);
  if (version != kSpillFormatVersion) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: unsupported spill version %u",
                                      path.c_str(), version));
  }
  if (header_len > (16u << 20)) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: implausible spill header length",
                                      path.c_str()));
  }
  std::string header(header_len, '\0');
  if (header_len > 0 &&
      std::fread(header.data(), 1, header_len, f) != header_len) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: spill header truncated", path.c_str()));
  }
  Status st = ParseHeader(header, meta);
  if (!st.ok()) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: %s", path.c_str(),
                                      st.message().c_str()));
  }
  *sum = Fnv1a(header.data(), header.size());
  *f_out = f;
  return Status::OK();
}

}  // namespace

Status WriteSpillFile(const std::string& path, const Table& table,
                      const SpillFileMeta& meta) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(StrFormat("cannot create spill file %s",
                                      tmp.c_str()));
  }
  std::string header = SerializeHeader(meta);
  std::string prefix;
  prefix.append(kMagic, 4);
  PutU32(&prefix, kSpillFormatVersion);
  PutU64(&prefix, static_cast<uint64_t>(header.size()));

  // The prefix (magic/version/length) is outside the checksum; the
  // checksum covers header + payload, matching the read path.
  Status st = Status::OK();
  if (std::fwrite(prefix.data(), 1, prefix.size(), f) != prefix.size()) {
    st = Status::Internal("spill write failed");
  }
  ChecksummedWriter w(f);
  if (st.ok() && !w.Write(header.data(), header.size())) {
    st = Status::Internal("spill write failed");
  }
  if (st.ok()) st = WriteColumns(&w, table);
  if (st.ok()) {
    std::string sumbuf;
    PutU64(&sumbuf, w.sum());
    if (std::fwrite(sumbuf.data(), 1, sumbuf.size(), f) != sumbuf.size()) {
      st = Status::Internal("spill write failed");
    }
  }
  if (std::fclose(f) != 0 && st.ok()) {
    st = Status::Internal("spill write failed on close");
  }
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::Internal(StrFormat("cannot rename %s into place", tmp.c_str()));
  }
  if (!st.ok()) std::remove(tmp.c_str());
  return st;
}

Status ReadSpillMeta(const std::string& path, SpillFileMeta* meta) {
  std::FILE* f = nullptr;
  uint64_t sum = 0;
  RDB_RETURN_NOT_OK(OpenAndReadHeader(path, &f, meta, &sum));
  std::fclose(f);
  return Status::OK();
}

Status ReadSpillTable(const std::string& path, SpillFileMeta* meta,
                      TablePtr* out) {
  std::FILE* f = nullptr;
  uint64_t sum = 0;
  RDB_RETURN_NOT_OK(OpenAndReadHeader(path, &f, meta, &sum));
  // Payload capacity = bytes between the header and the 8-byte checksum.
  const long payload_start = std::ftell(f);
  int64_t payload_bytes = 0;
  if (payload_start < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return Status::Internal(StrFormat("%s: cannot size spill file",
                                      path.c_str()));
  }
  payload_bytes = std::ftell(f) - payload_start - 8;
  std::fseek(f, payload_start, SEEK_SET);
  TablePtr table;
  Status st = ReadColumns(f, *meta, payload_bytes, &sum, &table);
  if (st.ok()) {
    unsigned char sumbuf[8];
    if (std::fread(sumbuf, 1, 8, f) != 8) {
      st = Status::Internal(StrFormat("%s: spill checksum missing", path.c_str()));
    } else {
      uint64_t stored = 0;
      for (int i = 0; i < 8; ++i)
        stored |= static_cast<uint64_t>(sumbuf[i]) << (8 * i);
      if (stored != sum) {
        st = Status::Internal(StrFormat("%s: spill checksum mismatch",
                                        path.c_str()));
      }
    }
  }
  std::fclose(f);
  if (st.ok()) *out = std::move(table);
  return st;
}

}  // namespace recycledb
