// Spill files: the cold tier's on-disk result format.
//
// A spill file holds one materialized recycler result as a simple
// columnar image: a self-describing header (canonical subtree key,
// schema, reference statistics, base tables) followed by the raw column
// payloads and a trailing checksum. Columns are written contiguously per
// column, so read-back rebuilds each ColumnVector with one bulk read and
// the reloaded table feeds the zero-copy view machinery exactly like a
// freshly materialized result (scans emit O(1) views of its columns).
//
// Layout (all integers little-endian, strings length-prefixed u32):
//
//   "RDBS" magic | u32 version | u64 header_len | header | payload | u64 fnv
//
// Format v1 stores each column as its raw in-memory image. Format v2
// stores each column as a self-describing encoded block
//
//   u8 encoding | u64 payload_len | payload
//
// using the codecs in storage/compression.h (raw / RLE / dictionary /
// frame-of-reference, chosen per column by size), and appends the
// uncompressed payload size to the header so the cold tier can report
// compression ratios. Readers accept both versions; writers emit v2
// unless asked otherwise.
//
// The checksum is FNV-1a over header + payload. Writers stream to
// "<path>.tmp" and rename into place, so a final-named file is always
// complete: a crash can lose the entry being written, never produce a
// half-readable one. Readers return recoverable Status (never abort) on
// truncation, checksum mismatch, or version/magic drift.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/interval.h"
#include "common/status.h"
#include "storage/table.h"

namespace recycledb {

/// Current spill format version; bump on any layout change. Readers
/// accept kSpillFormatVersionV1 (pre-compression) and V2 (no base-table
/// version stamps) files too, so older cold tiers survive an upgrade in
/// place; anything else is rejected with a recoverable Status. v3
/// appends the per-base-table row high-water marks the result was
/// computed at (delta maintenance; see recycler/delta.h).
inline constexpr uint32_t kSpillFormatVersionV1 = 1;
inline constexpr uint32_t kSpillFormatVersionV2 = 2;
inline constexpr uint32_t kSpillFormatVersion = 3;

/// Everything the cold tier must know about a spilled result without
/// touching its payload: the restart-stable identity plus the reference
/// statistics needed to re-seed a recycler-graph node after a restart.
struct SpillFileMeta {
  /// Canonical structural key of the producing graph subtree
  /// (Recycler::CanonicalSubtreeKey): stable across process restarts.
  std::string canon_key;
  /// Column names at spill time (graph name space of the *writing*
  /// process; readers rename positionally into their own graph space).
  std::vector<std::string> column_names;
  /// Column types (positional); verified against the adopting node.
  std::vector<TypeId> column_types;
  int64_t num_rows = 0;
  /// Reference statistics restored on orphan adoption.
  double bcost_ms = 0;
  double h = 0;
  /// Benefit at spill time (diagnostics only).
  double benefit = 0;
  /// Base tables under the producing subtree (update invalidation must
  /// purge spilled entries too).
  std::vector<std::string> base_tables;
  /// Format version the file was read with / will be written as (readers
  /// overwrite this with the on-disk value).
  uint32_t format_version = kSpillFormatVersion;
  /// Uncompressed payload size in bytes (the v1 column image this file
  /// would occupy without compression). Written by WriteSpillFile for
  /// v2+ files; 0 when reading a v1 file.
  int64_t raw_bytes = 0;
  /// Per-base-table row high-water marks at computation time (v3+): the
  /// result was computed from rows [0, rows) of each named table.
  /// Replace-epochs are process-local and deliberately NOT persisted;
  /// adoption re-anchors the stamps against the live catalog and drops
  /// images whose marks exceed the current table (shrunk/replaced base).
  /// Empty when reading a v1/v2 file (such entries stay unstamped and
  /// appends hard-invalidate them).
  std::vector<std::pair<std::string, int64_t>> table_versions;
};

/// Writer knobs; defaults produce a compressed v2 file.
struct SpillWriteOptions {
  /// kSpillFormatVersion or kSpillFormatVersionV1 (the latter kept for
  /// compatibility tests and downgrade escapes).
  uint32_t version = kSpillFormatVersion;
  /// v2 only: pick the smallest codec per column. When false every
  /// column is stored kRaw (still framed as v2 blocks).
  bool compress = true;
};

/// Writes `table` with `meta` to `path` via a "<path>.tmp" + rename
/// protocol. On any error the final path is left untouched (a stale tmp
/// file may remain; directory scans delete those). `meta.raw_bytes` is
/// computed by the writer; the caller's value is ignored.
Status WriteSpillFile(const std::string& path, const Table& table,
                      const SpillFileMeta& meta,
                      const SpillWriteOptions& options = {});

/// Reads only the header of `path` (directory-scan fast path; the
/// payload checksum is NOT verified here).
Status ReadSpillMeta(const std::string& path, SpillFileMeta* meta);

/// Reads the full file, verifies the checksum, and rebuilds the table
/// (owning columns named `meta->column_names`). Corrupt or truncated
/// files yield a recoverable error Status, never an abort.
Status ReadSpillTable(const std::string& path, SpillFileMeta* meta,
                      TablePtr* out);

/// Like ReadSpillTable, but materializes only the rows whose value in
/// column `filter_column` (index into the file's columns) falls in
/// `range`: the selection is computed on the *encoded* column image
/// (SelectRangeEncoded — one comparison per run/dictionary entry) and
/// the remaining columns are gathered through it, so a cold slice
/// consumed by a subsumption/stitch rewrite never materializes rows the
/// rewrite would filter out anyway. Row order is preserved, so the
/// result is bit-identical to a full load followed by the same range
/// filter. v1 files (no encoded image) and out-of-range column indexes
/// return a recoverable error; the caller falls back to ReadSpillTable.
Status ReadSpillTableFiltered(const std::string& path, SpillFileMeta* meta,
                              int filter_column, const ColumnInterval& range,
                              TablePtr* out);

}  // namespace recycledb
