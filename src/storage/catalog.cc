#include "storage/catalog.h"

#include <unordered_set>

namespace recycledb {

Status Catalog::RegisterTable(const std::string& name, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  Entry entry;
  entry.table = table;
  ComputeStats(*table, &entry.column_stats);
  tables_[name] = std::move(entry);
  return Status::OK();
}

Status Catalog::ReplaceTable(const std::string& name, TablePtr table) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not registered: " + name);
  }
  it->second.table = table;
  ++it->second.epoch;
  it->second.column_stats.clear();
  ComputeStats(*table, &it->second.column_stats);
  return Status::OK();
}

Status Catalog::AppendRows(const std::string& name, const Table& delta) {
  // Serialize appends; the O(n) copy and stats pass run outside mu_ so
  // concurrent readers never stall behind an append.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  TablePtr base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) {
      return Status::NotFound("table not registered: " + name);
    }
    base = it->second.table;
  }
  if (!(delta.schema() == base->schema())) {
    return Status::InvalidArgument("append schema mismatch for table " + name);
  }
  auto grown = MakeTable(base->schema());
  if (base->num_rows() > 0) {
    Batch old_rows;
    old_rows.num_rows = base->num_rows();
    for (int c = 0; c < base->num_columns(); ++c) {
      old_rows.columns.push_back(base->column(c));
    }
    grown->AppendBatch(old_rows);
  }
  if (delta.num_rows() > 0) {
    Batch delta_rows;
    delta_rows.num_rows = delta.num_rows();
    for (int c = 0; c < delta.num_columns(); ++c) {
      delta_rows.columns.push_back(delta.column(c));
    }
    grown->AppendBatch(delta_rows);
  }
  std::map<std::string, ColumnStats> stats;
  ComputeStats(*grown, &stats);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end() || it->second.table != base) {
      // The entry was dropped or ReplaceTable swapped the base out from
      // under the copy; resurrecting pre-replace rows would corrupt it.
      return Status::Internal("table replaced during append: " + name);
    }
    it->second.table = std::move(grown);
    it->second.column_stats = std::move(stats);
  }
  return Status::OK();
}

TablePtr Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.table;
}

TableSnapshot Catalog::Snapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) return TableSnapshot{};
  TableSnapshot snap;
  snap.table = it->second.table;
  snap.epoch = it->second.epoch;
  snap.rows = it->second.table->num_rows();
  return snap;
}

bool Catalog::HasTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(name) > 0;
}

const ColumnStats* Catalog::GetColumnStats(const std::string& table,
                                           const std::string& column) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return nullptr;
  auto cit = it->second.column_stats.find(column);
  return cit == it->second.column_stats.end() ? nullptr : &cit->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, entry] : tables_) names.push_back(name);
  return names;
}

void Catalog::ComputeStats(const Table& table,
                           std::map<std::string, ColumnStats>* out) {
  for (int c = 0; c < table.num_columns(); ++c) {
    const auto& field = table.schema().field(c);
    ColumnStats stats;
    std::unordered_set<uint64_t> distinct;
    const ColumnVector& col = *table.column(c);
    int64_t n = col.size();
    for (int64_t r = 0; r < n; ++r) {
      distinct.insert(col.HashRow(r, 0));
      Datum d = col.GetDatum(r);
      if (r == 0) {
        stats.min_value = d;
        stats.max_value = d;
      } else {
        if (DatumCompare(d, stats.min_value) < 0) stats.min_value = d;
        if (DatumCompare(d, stats.max_value) > 0) stats.max_value = d;
      }
    }
    stats.distinct_count = static_cast<int64_t>(distinct.size());
    (*out)[field.name] = stats;
  }
}

}  // namespace recycledb
