#include "storage/table.h"

#include <sstream>

namespace recycledb {

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::IndexOfChecked(const std::string& name) const {
  int idx = IndexOf(name);
  RDB_CHECK_MSG(idx >= 0, ("column not found: " + name).c_str());
  return idx;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(fields_.size());
  for (const auto& f : fields_) names.push_back(f.name);
  return names;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  zone_maps_.reserve(schema_.num_fields());
  for (const auto& f : schema_.fields()) {
    columns_.push_back(MakeColumn(f.type));
    zone_maps_.push_back(std::make_shared<ZoneMap>(f.type));
  }
}

void Table::AppendBatch(const Batch& batch) {
  RDB_CHECK(static_cast<int>(batch.columns.size()) == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[i]->AppendAll(*batch.columns[i]);
    zone_maps_[i]->Update(*columns_[i]);
  }
  num_rows_ += batch.num_rows;
}

void Table::AppendRow(const std::vector<Datum>& row) {
  RDB_CHECK(static_cast<int>(row.size()) == num_columns());
  for (int i = 0; i < num_columns(); ++i) {
    columns_[i]->Append(row[i]);
    zone_maps_[i]->Update(*columns_[i]);
  }
  ++num_rows_;
}

int64_t Table::ByteSize() const {
  int64_t total = 0;
  for (const auto& c : columns_) total += c->ByteSize();
  return total;
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << schema_.ToString() << " rows=" << num_rows_ << "\n";
  int64_t n = std::min(num_rows_, max_rows);
  for (int64_t r = 0; r < n; ++r) {
    os << "  ";
    for (int c = 0; c < num_columns(); ++c) {
      if (c > 0) os << " | ";
      os << DatumToString(Get(r, c));
    }
    os << "\n";
  }
  if (n < num_rows_) os << "  ... (" << (num_rows_ - n) << " more)\n";
  return os.str();
}

TablePtr Table::RenameColumns(const std::vector<std::string>& names) const {
  RDB_CHECK(static_cast<int>(names.size()) == num_columns());
  std::vector<Field> fields;
  fields.reserve(names.size());
  for (int i = 0; i < num_columns(); ++i) {
    fields.push_back({names[i], schema_.field(i).type});
  }
  auto out = std::make_shared<Table>(Schema(std::move(fields)));
  out->columns_ = columns_;
  out->zone_maps_ = zone_maps_;
  out->num_rows_ = num_rows_;
  return out;
}

TablePtr Table::SelectColumns(const std::vector<std::string>& names) const {
  std::vector<Field> fields;
  std::vector<ColumnPtr> cols;
  std::vector<ZoneMapPtr> zones;
  for (const auto& name : names) {
    int idx = schema_.IndexOfChecked(name);
    fields.push_back(schema_.field(idx));
    cols.push_back(columns_[idx]);
    zones.push_back(zone_maps_[idx]);
  }
  auto out = std::make_shared<Table>(Schema(std::move(fields)));
  out->columns_ = std::move(cols);
  out->zone_maps_ = std::move(zones);
  out->num_rows_ = num_rows_;
  return out;
}

TablePtr MakeTable(Schema schema) {
  return std::make_shared<Table>(std::move(schema));
}

}  // namespace recycledb
