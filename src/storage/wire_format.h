// Little-endian (de)serialization helpers shared by the spill-file and
// column-compression formats. Header-only; everything is trivially
// inlinable. Readers are bounds-checked: every Get* returns false past
// the end so truncated or corrupt buffers fail cleanly with a
// recoverable Status at the call site, never an abort or over-read.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace recycledb {
namespace wire {

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void PutDouble(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked cursor over a flat byte buffer.
struct Cursor {
  const unsigned char* p;
  size_t len;
  size_t pos = 0;

  size_t remaining() const { return len - pos; }

  bool GetU8(uint8_t* v) {
    if (pos + 1 > len) return false;
    *v = p[pos++];
    return true;
  }
  bool GetU32(uint32_t* v) {
    if (pos + 4 > len) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i)
      *v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
    pos += 4;
    return true;
  }
  bool GetU64(uint64_t* v) {
    if (pos + 8 > len) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i)
      *v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
    pos += 8;
    return true;
  }
  bool GetDouble(double* v) {
    uint64_t bits;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool GetString(std::string* s) {
    uint32_t n;
    if (!GetU32(&n)) return false;
    if (pos + n > len) return false;
    s->assign(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return true;
  }
};

}  // namespace wire
}  // namespace recycledb
