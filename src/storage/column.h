// Columnar vector: the unit of data flow in the vector-at-a-time engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/interval.h"
#include "common/macros.h"
#include "common/types.h"

namespace recycledb {

class ColumnVector;
using ColumnPtr = std::shared_ptr<ColumnVector>;

/// A type-erased columnar value vector.
///
/// Storage per TypeId:
///   kBool   -> std::vector<uint8_t>
///   kInt32  -> std::vector<int32_t>
///   kInt64  -> std::vector<int64_t>
///   kDouble -> std::vector<double>
///   kString -> std::vector<std::string>
///   kDate   -> std::vector<int32_t> (days since epoch)
///
/// ColumnVectors serve both as batch payloads (typically ~1024 rows) and
/// as full table columns / materialized recycler-cache results.
///
/// A column is either *owning* (holds its own storage) or a *view*: an
/// O(1) (source, offset, length) window into another, immutable column
/// created with Slice(). Scans emit views of table columns instead of
/// copies; all read paths (Raw, GetDatum, HashRow, RowEquals, Append*
/// sources) resolve views transparently.
///
/// Aliasing rule: slicing a column marks the source as shared, and shared
/// or view columns reject every mutation with RDB_CHECK (see DESIGN.md,
/// "Zero-copy views and result lifetime"). Clear() is the one exception on
/// views: it detaches the view and leaves an empty owning column, so batch
/// columns can be recycled across Next() calls.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type);

  RDB_DISALLOW_COPY_AND_ASSIGN(ColumnVector);

  /// O(1) view of rows [offset, offset+length) of `src`. Marks `src` as
  /// shared (permanently immutable). Slicing a view re-targets the root
  /// source, so chains never deepen.
  static ColumnPtr Slice(std::shared_ptr<const ColumnVector> src,
                         int64_t offset, int64_t length);

  TypeId type() const { return type_; }
  int64_t size() const {
    return is_view() ? view_length_ : OwnedSize();
  }

  bool is_view() const { return view_src_ != nullptr; }
  /// True once the column has been used as a Slice() source; shared
  /// columns are immutable for the rest of their life.
  bool shared() const { return shared_.load(std::memory_order_relaxed); }

  /// Span-style read access: pointer to this column's first row. T must
  /// match the storage type for type(); checked. Valid for size() rows.
  /// Resolves views, so callers are oblivious to view vs. owned storage.
  template <typename T>
  const T* Raw() const {
    const ColumnVector& p = payload();
    RDB_CHECK_MSG(std::holds_alternative<std::vector<T>>(p.data_),
                  "ColumnVector type mismatch");
    return std::get<std::vector<T>>(p.data_).data() + view_offset_;
  }

  /// Typed builder access to the owning storage. T must match the storage
  /// type for type(); checked. Aborts on views and on shared sources —
  /// use Raw() to read.
  template <typename T>
  std::vector<T>& Data() {
    CheckMutable();
    RDB_CHECK_MSG(std::holds_alternative<std::vector<T>>(data_),
                  "ColumnVector type mismatch");
    return std::get<std::vector<T>>(data_);
  }

  /// Boxed row access (slow path; used by tests, sorting, fingerprints).
  Datum GetDatum(int64_t row) const;

  /// Appends a boxed value (type-checked against the column type).
  void Append(const Datum& value);

  /// Appends rows of `src` selected by `sel` (vectorized gather).
  void AppendSelected(const ColumnVector& src, const std::vector<int32_t>& sel);

  /// Appends the contiguous row range [offset, offset+count) of `src`.
  void AppendRange(const ColumnVector& src, int64_t offset, int64_t count);

  /// Appends all rows of `src`.
  void AppendAll(const ColumnVector& src) { AppendRange(src, 0, src.size()); }

  void Reserve(int64_t n);

  /// Empties the column. On a view this detaches the source and reverts to
  /// an empty owning column of the same type; aborts on a shared source.
  void Clear();

  /// Approximate heap footprint in bytes (used for recycler-cache sizing).
  /// For a view: the logical byte size of the viewed range (a view owns
  /// nothing, but downstream materialization of it would cost this much).
  int64_t ByteSize() const;

  /// Hashes row `row` into `seed` (used by hash join/aggregate).
  uint64_t HashRow(int64_t row, uint64_t seed) const;

  /// True if rows a (in this) and b (in other) hold equal values.
  bool RowEquals(int64_t a, const ColumnVector& other, int64_t b) const;

 private:
  ColumnVector(std::shared_ptr<const ColumnVector> src, int64_t offset,
               int64_t length);

  const ColumnVector& payload() const {
    return is_view() ? *view_src_ : *this;
  }
  int64_t OwnedSize() const;
  void CheckMutable() const {
    RDB_CHECK_MSG(!is_view(), "mutating a view column");
    RDB_CHECK_MSG(!shared(), "mutating a shared column source");
  }

  TypeId type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>,
               std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
  /// View state: non-null view_src_ makes this a window of
  /// [view_offset_, view_offset_ + view_length_) into an owning column.
  /// The shared_ptr keeps the source alive past cache eviction.
  std::shared_ptr<const ColumnVector> view_src_;
  int64_t view_offset_ = 0;
  int64_t view_length_ = 0;
  /// Sticky: set the first time this column is sliced (atomic because
  /// concurrent query streams slice the same cached result).
  mutable std::atomic<bool> shared_{false};
};

/// Creates an empty column of the given type.
ColumnPtr MakeColumn(TypeId type);

// ---------------------------------------------------------------------------
// Zone maps (per-block min/max pruning metadata).
// ---------------------------------------------------------------------------

/// Rows per zone-map block. Equal to kDefaultBatchRows on purpose: ScanOp
/// emits batches aligned to the same 1024-row grid (pos_ only ever
/// advances by full batches), so one zone-map block maps 1:1 to one scan
/// batch and pruning can skip whole Next() emissions.
inline constexpr int64_t kZoneMapBlockRows = 1024;

/// Per-block summary. `null_free` is trivially true in this engine (the
/// value domain is NULL-free by design, see DESIGN.md) but is kept per
/// block so the format does not change if NULLs ever appear.
struct ZoneEntry {
  Datum min{};
  Datum max{};
  /// Rows within the block are non-decreasing.
  bool sorted = true;
  bool null_free = true;
};

/// Per-column block summaries, maintained incrementally by Table on
/// append (single-writer; tables are immutable once published to the
/// catalog or the recycler cache, so readers never race an update).
class ZoneMap {
 public:
  explicit ZoneMap(TypeId type) : type_(type) {}

  /// Folds rows [rows_covered(), col.size()) of `col` into the block
  /// summaries. Appends never shrink, so maintenance is strictly
  /// incremental; the last (partial) block is re-tightened in place as
  /// it fills.
  void Update(const ColumnVector& col);

  TypeId type() const { return type_; }
  int64_t rows_covered() const { return rows_covered_; }
  int64_t num_blocks() const { return static_cast<int64_t>(blocks_.size()); }
  const ZoneEntry& block(int64_t b) const { return blocks_[b]; }
  /// The whole column is non-decreasing across all covered rows.
  bool sorted() const { return sorted_; }

  /// True when block `b` may hold a value inside `query` (conservative:
  /// never prunes a block that overlaps). Blocks beyond num_blocks() are
  /// reported as possibly-overlapping so stale maps only lose pruning,
  /// never correctness.
  bool MayOverlap(int64_t b, const ColumnInterval& query) const;

 private:
  TypeId type_;
  std::vector<ZoneEntry> blocks_;
  int64_t rows_covered_ = 0;
  bool sorted_ = true;
};

using ZoneMapPtr = std::shared_ptr<ZoneMap>;

}  // namespace recycledb
