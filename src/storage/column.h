// Columnar vector: the unit of data flow in the vector-at-a-time engine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/hash.h"
#include "common/macros.h"
#include "common/types.h"

namespace recycledb {

class ColumnVector;
using ColumnPtr = std::shared_ptr<ColumnVector>;

/// A type-erased columnar value vector.
///
/// Storage per TypeId:
///   kBool   -> std::vector<uint8_t>
///   kInt32  -> std::vector<int32_t>
///   kInt64  -> std::vector<int64_t>
///   kDouble -> std::vector<double>
///   kString -> std::vector<std::string>
///   kDate   -> std::vector<int32_t> (days since epoch)
///
/// ColumnVectors serve both as batch payloads (typically ~1024 rows) and
/// as full table columns / materialized recycler-cache results.
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type);

  TypeId type() const { return type_; }
  int64_t size() const;

  /// Typed access. T must match the storage type for type(); checked.
  template <typename T>
  std::vector<T>& Data() {
    RDB_CHECK_MSG(std::holds_alternative<std::vector<T>>(data_),
                  "ColumnVector type mismatch");
    return std::get<std::vector<T>>(data_);
  }
  template <typename T>
  const std::vector<T>& Data() const {
    RDB_CHECK_MSG(std::holds_alternative<std::vector<T>>(data_),
                  "ColumnVector type mismatch");
    return std::get<std::vector<T>>(data_);
  }

  /// Boxed row access (slow path; used by tests, sorting, fingerprints).
  Datum GetDatum(int64_t row) const;

  /// Appends a boxed value (type-checked against the column type).
  void Append(const Datum& value);

  /// Appends rows of `src` selected by `sel` (vectorized gather).
  void AppendSelected(const ColumnVector& src, const std::vector<int32_t>& sel);

  /// Appends the contiguous row range [offset, offset+count) of `src`.
  void AppendRange(const ColumnVector& src, int64_t offset, int64_t count);

  /// Appends all rows of `src`.
  void AppendAll(const ColumnVector& src) { AppendRange(src, 0, src.size()); }

  void Reserve(int64_t n);
  void Clear();

  /// Approximate heap footprint in bytes (used for recycler-cache sizing).
  int64_t ByteSize() const;

  /// Hashes row `row` into `seed` (used by hash join/aggregate).
  uint64_t HashRow(int64_t row, uint64_t seed) const;

  /// True if rows a (in this) and b (in other) hold equal values.
  bool RowEquals(int64_t a, const ColumnVector& other, int64_t b) const;

 private:
  TypeId type_;
  std::variant<std::vector<uint8_t>, std::vector<int32_t>,
               std::vector<int64_t>, std::vector<double>,
               std::vector<std::string>>
      data_;
};

/// Creates an empty column of the given type.
ColumnPtr MakeColumn(TypeId type);

}  // namespace recycledb
