#include "trace/replayer.h"

#include <map>
#include <memory>
#include <utility>

#include "api/database.h"
#include "api/validate.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "plan/canonicalize.h"
#include "sql/lower.h"
#include "workload/driver.h"

namespace recycledb {
namespace trace {

namespace {

/// Collects the trace's statement events (replay order) and validates
/// that each one is replayable.
Status CollectStatements(const Trace& trace,
                         std::vector<const StatementEvent*>* out) {
  for (const TraceEvent& e : trace.events) {
    if (e.kind != TraceEvent::Kind::kStatement) continue;
    if (e.statement.sql.empty()) {
      return Status::InvalidArgument(
          "trace contains a plan-built statement without SQL text; only "
          "SQL-recorded traces are replayable");
    }
    out->push_back(&e.statement);
  }
  return Status::OK();
}

void AddDivergence(ReplayReport* report, ReplayDivergence d) {
  if (report->divergences.size() < ReplayReport::kMaxDivergences) {
    report->divergences.push_back(std::move(d));
  }
}

/// Diffs one replayed execution against its recorded statement,
/// updating the report's counters. Returns true when the replayed
/// execution consumed a cached result (for the replayed hit rate).
bool CompareExecution(const StatementEvent& recorded, int64_t index,
                      int stream, const QueryTrace& replayed_trace,
                      int64_t replayed_rows, uint64_t replayed_digest,
                      bool compare_plan, ReplayReport* report) {
  if (replayed_rows != recorded.rows) {
    ++report->digest_mismatches;
    AddDivergence(report,
                  {index, stream, "rows", std::to_string(recorded.rows),
                   std::to_string(replayed_rows), recorded.sql});
  } else if (replayed_digest != recorded.digest) {
    ++report->digest_mismatches;
    AddDivergence(report,
                  {index, stream, "digest", std::to_string(recorded.digest),
                   std::to_string(replayed_digest), recorded.sql});
  }
  if (replayed_trace.reuse_mode != recorded.reuse_mode) {
    ++report->mode_mismatches;
    AddDivergence(report, {index, stream, "reuse_mode",
                           ReuseModeName(recorded.reuse_mode),
                           ReuseModeName(replayed_trace.reuse_mode),
                           recorded.sql});
  }
  if (compare_plan && !recorded.plan_explain.empty() &&
      !replayed_trace.plan_explain.empty() &&
      replayed_trace.plan_explain != recorded.plan_explain) {
    ++report->plan_mismatches;
    AddDivergence(report, {index, stream, "plan", recorded.plan_explain,
                           replayed_trace.plan_explain, recorded.sql});
  }
  return replayed_trace.reuse_mode != ReuseMode::kNone;
}

}  // namespace

TraceReplayer::TraceReplayer(Database* db, ReplayOptions options)
    : db_(db), options_(std::move(options)) {}

Status TraceReplayer::Replay(const Trace& trace, ReplayReport* report) {
  *report = ReplayReport{};
  replayed_hits_ = 0;
  std::vector<const StatementEvent*> statements;
  RDB_RETURN_NOT_OK(CollectStatements(trace, &statements));
  const int64_t num_appends = trace.NumAppends();
  if (num_appends > 0 && options_.concurrency > 1) {
    return Status::InvalidArgument(
        "traces with append events replay single-stream only (concurrent "
        "streams would interleave appends nondeterministically)");
  }
  if (num_appends > 0 && options_.append_provider == nullptr) {
    return Status::InvalidArgument(
        "trace has append events but ReplayOptions::append_provider is "
        "not set");
  }
  Status st = options_.concurrency > 1 ? ReplayConcurrent(trace, report)
                                       : ReplaySingle(trace, report);
  Finish(trace, report);
  return st;
}

Status TraceReplayer::ReplaySingle(const Trace& trace, ReplayReport* report) {
  SessionOptions sopts;
  sopts.name = "trace-replay";
  sopts.collect_traces = false;
  std::unique_ptr<Session> session = db_->Connect(sopts);
  const bool compare_plan =
      options_.check_plan_shape && db_->config().capture_plan_explain;
  // Templates are prepared once per distinct text, as a recording client
  // would have done.
  std::map<std::string, std::unique_ptr<PreparedStatement>> prepared;

  int64_t index = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kAppend) {
      const AppendEvent& a = e.append;
      TablePtr current = db_->catalog().GetTable(a.table);
      if (current == nullptr) {
        return Status::NotFound("replay append: unknown table " + a.table);
      }
      if (current->num_rows() != a.start_row) {
        return Status::InvalidArgument(StrFormat(
            "replay append drift: table %s has %lld rows, trace recorded "
            "the append at %lld — the data generator no longer matches "
            "the recording",
            a.table.c_str(), static_cast<long long>(current->num_rows()),
            static_cast<long long>(a.start_row)));
      }
      TablePtr batch =
          options_.append_provider == nullptr ? nullptr
                                              : options_.append_provider(a);
      if (batch == nullptr) {
        return Status::InvalidArgument(
            "replay append: provider returned no batch for table " +
            a.table);
      }
      if (batch->num_rows() != a.rows) {
        return Status::InvalidArgument(StrFormat(
            "replay append drift: provider built %lld rows for table %s, "
            "trace recorded %lld",
            static_cast<long long>(batch->num_rows()), a.table.c_str(),
            static_cast<long long>(a.rows)));
      }
      RDB_RETURN_NOT_OK(db_->AppendTable(a.table, *batch));
      ++report->appends;
      continue;
    }

    const StatementEvent& s = e.statement;
    Result result;
    if (s.params.empty()) {
      result = session->Sql(s.sql);
    } else {
      auto it = prepared.find(s.sql);
      if (it == prepared.end()) {
        Status prep_status;
        std::unique_ptr<PreparedStatement> stmt =
            session->Prepare(std::string_view(s.sql), &prep_status);
        if (stmt == nullptr) return prep_status;
        it = prepared.emplace(s.sql, std::move(stmt)).first;
      }
      it->second->ClearBindings();
      result = it->second->Execute(s.params);
    }
    ++report->statements;
    if (!result.ok()) {
      ++report->errors;
      AddDivergence(report, {index, 0, "error", "ok",
                             result.status().ToString(), s.sql});
    } else if (CompareExecution(s, index, 0, result.trace(),
                                result.num_rows(),
                                result.table() == nullptr
                                    ? 0
                                    : ResultDigest(*result.table()),
                                compare_plan, report)) {
      ++replayed_hits_;
    }
    ++index;
  }
  return Status::OK();
}

Status TraceReplayer::ReplayConcurrent(const Trace& trace,
                                       ReplayReport* report) {
  std::vector<const StatementEvent*> statements;
  RDB_RETURN_NOT_OK(CollectStatements(trace, &statements));
  const bool compare_plan =
      options_.check_plan_shape && db_->config().capture_plan_explain;

  // Every stream gets its own plan instances: Bind mutates plan nodes,
  // so concurrent streams must not share trees.
  std::vector<workload::StreamSpec> streams;
  streams.reserve(options_.concurrency);
  for (int c = 0; c < options_.concurrency; ++c) {
    workload::StreamSpec spec;
    for (size_t q = 0; q < statements.size(); ++q) {
      PlanPtr plan;
      RDB_RETURN_NOT_OK(BuildStatementPlan(*statements[q], &plan));
      spec.labels.push_back(StrFormat("q%zu", q));
      spec.plans.push_back(std::move(plan));
    }
    streams.push_back(std::move(spec));
  }

  workload::DriverOptions dopts;
  dopts.max_concurrent = options_.concurrency;
  dopts.threads = options_.concurrency;
  dopts.compute_digests = true;
  workload::WorkloadDriver driver(&db_->recycler(), dopts);
  workload::RunReport run = driver.Run(std::move(streams));

  for (const workload::QueryRecord& rec : run.records) {
    const StatementEvent& s = *statements[rec.index];
    ++report->statements;
    if (CompareExecution(s, rec.index, rec.stream, rec.trace,
                         rec.result_rows, rec.digest, compare_plan,
                         report)) {
      ++replayed_hits_;
    }
  }
  return Status::OK();
}

Status TraceReplayer::BuildStatementPlan(const StatementEvent& s,
                                         PlanPtr* out) {
  PlanPtr tmpl;
  RDB_RETURN_NOT_OK(sql::SqlToPlan(s.sql, db_->catalog(), &tmpl));
  PlanPtr plan = tmpl;
  if (tmpl->HasParams() || !s.params.empty()) {
    // Reproduce the prepared-statement pipeline: canonicalize the
    // template, tag its hash, substitute the recorded bindings.
    if (db_->options().canonicalize_plans) tmpl = CanonicalizePlan(tmpl);
    uint64_t hash = HashString(tmpl->TemplateFingerprint());
    if (hash == 0) hash = 1;
    tmpl->set_template_hash(hash);
    std::vector<std::string> missing;
    plan = tmpl->SubstituteParams(s.params, &missing);
    if (!missing.empty()) {
      return Status::InvalidArgument(
          "trace statement is missing bindings for its own template: " +
          s.sql);
    }
  }
  RDB_RETURN_NOT_OK(ValidatePlan(plan, db_->catalog(), nullptr));
  // The driver path bypasses Session, so apply the canonicalizing pass
  // (with Session::RunValidatedPlan's template re-tag rule) here.
  if (db_->options().canonicalize_plans) {
    PlanPtr canon = CanonicalizePlan(plan);
    if (canon != plan && canon->template_hash() != plan->template_hash()) {
      canon = canon->WithChildren(std::vector<PlanPtr>(canon->children()));
      canon->set_template_hash(plan->template_hash());
    }
    plan = std::move(canon);
  }
  *out = std::move(plan);
  return Status::OK();
}

void TraceReplayer::Finish(const Trace& trace, ReplayReport* report) const {
  report->recorded_hit_rate = 100.0 * trace.HitRate();
  report->replayed_hit_rate =
      report->statements == 0
          ? 0
          : 100.0 * static_cast<double>(replayed_hits_) /
                static_cast<double>(report->statements);
  const bool results_ok =
      report->errors == 0 && report->digest_mismatches == 0;
  const bool modes_ok =
      options_.strict_modes
          ? report->mode_mismatches == 0 && report->plan_mismatches == 0
          : report->replayed_hit_rate + options_.hit_rate_tolerance_pts >=
                report->recorded_hit_rate;
  report->ok_ = results_ok && modes_ok;
}

std::string ReplayReport::ToString() const {
  std::string out = StrFormat(
      "replay %s: statements=%lld appends=%lld errors=%lld "
      "digest_mismatches=%lld mode_mismatches=%lld plan_mismatches=%lld "
      "recorded_hit_rate=%.1f%% replayed_hit_rate=%.1f%%\n",
      ok_ ? "OK" : "DIVERGED", static_cast<long long>(statements),
      static_cast<long long>(appends), static_cast<long long>(errors),
      static_cast<long long>(digest_mismatches),
      static_cast<long long>(mode_mismatches),
      static_cast<long long>(plan_mismatches), recorded_hit_rate,
      replayed_hit_rate);
  for (const ReplayDivergence& d : divergences) {
    out += StrFormat("  [%lld] stream=%d %s: recorded=%s replayed=%s\n",
                     static_cast<long long>(d.index), d.stream,
                     d.field.c_str(), d.recorded.c_str(),
                     d.replayed.c_str());
    out += "    " + d.sql + "\n";
  }
  return out;
}

}  // namespace trace
}  // namespace recycledb
