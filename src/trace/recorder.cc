#include "trace/recorder.h"

#include "api/result.h"

namespace recycledb {
namespace trace {

TraceRecorder::TraceRecorder(TraceHeader header) {
  header.version = kTraceFormatVersion;
  trace_.header = std::move(header);
}

void TraceRecorder::OnStatement(const std::string& sql,
                                const ParamMap& params,
                                const Result& result) {
  if (!result.ok()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kStatement;
  StatementEvent& s = e.statement;
  s.sql = sql;
  s.params = params;
  s.plan_fingerprint = result.trace().plan_fingerprint;
  s.template_hash = result.trace().template_hash;
  s.reuse_mode = result.trace().reuse_mode;
  s.rows = result.num_rows();
  if (result.table() != nullptr) s.digest = ResultDigest(*result.table());
  s.plan_explain = result.trace().plan_explain;
  s.adoptions = result.trace().num_adoptions;
  std::lock_guard<std::mutex> lock(mu_);
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::RecordAppend(const std::string& table, int64_t rows,
                                 int64_t start_row) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kAppend;
  e.append.table = table;
  e.append.rows = rows;
  e.append.start_row = start_row;
  std::lock_guard<std::mutex> lock(mu_);
  trace_.events.push_back(std::move(e));
}

Trace TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  return WriteTraceFile(path, Snapshot());
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  trace_.events.clear();
}

}  // namespace trace
}  // namespace recycledb
