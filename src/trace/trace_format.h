// Versioned JSONL trace format for recorded query workloads.
//
// A trace is a header line followed by one line per event (statement or
// append), in execution order. Every value is serialized as a JSON
// string — including integers, so 64-bit digests and fingerprints never
// pass through a lossy double representation — and the reader accepts
// exactly that grammar: one flat object per line whose values are
// strings or string->string objects. Parsing is defensive end to end:
// truncated, corrupt, garbage or version-skewed input yields a Status,
// never an abort (mirroring the cold tier's spill-file rejection).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "expr/expression.h"
#include "recycler/recycler.h"
#include "storage/table.h"

namespace recycledb {
namespace trace {

/// Current trace format version. Readers reject traces recorded by a
/// NEWER engine (forward skew); older versions are accepted as long as
/// the grammar still parses.
constexpr int64_t kTraceFormatVersion = 1;

/// Trace-wide metadata, written as the first line. The clock is
/// deterministic by construction: it is whatever the recording harness
/// set (0 by default), never wall time, so re-recording an identical
/// workload produces a byte-identical trace.
struct TraceHeader {
  int64_t version = kTraceFormatVersion;
  /// RNG seed the recorded workload was generated with.
  uint64_t seed = 0;
  /// Deterministic capture clock (harness-defined, 0 unless set).
  int64_t clock_ms = 0;
  /// Workload label ("skyserver_sweep", "rollup_append", ...).
  std::string workload;
  /// RecyclerModeName of the recording engine ("HIST", "SPEC", ...).
  std::string mode;
  /// Free-form workload parameters needed to rebuild the database a
  /// trace replays against (object counts, scale factors, ...).
  std::map<std::string, std::string> tags;
};

/// One executed statement: what ran, what the recycler chose, and what
/// came back.
struct StatementEvent {
  /// Statement text (template text for prepared statements). Empty for
  /// plan-built queries, which record digests but cannot be replayed.
  std::string sql;
  /// Bound template parameters (empty for parameter-free SQL), encoded
  /// with EncodeDatum so replay rebinds the exact typed values.
  ParamMap params;
  /// QueryTrace::plan_fingerprint of the execution.
  uint64_t plan_fingerprint = 0;
  /// Template hash (0 for ad-hoc statements).
  uint64_t template_hash = 0;
  /// The recycler's uniform reuse decision.
  ReuseMode reuse_mode = ReuseMode::kNone;
  /// Result row count.
  int64_t rows = 0;
  /// Order-insensitive FNV digest of the full result (ResultDigest).
  uint64_t digest = 0;
  /// Post-rewrite plan shape (QueryTrace::plan_explain; empty when the
  /// recording engine did not capture it).
  std::string plan_explain;
  /// Cold orphans adopted while preparing the statement
  /// (QueryTrace::num_adoptions: restart images or fleet peers' spills).
  /// Serialized only when nonzero, so traces from engines predating the
  /// field round-trip byte-identically.
  int64_t adoptions = 0;
};

/// One append event (Database::AppendTable), recorded so replay can
/// re-inject the same batches at the same points in the sequence.
struct AppendEvent {
  std::string table;
  /// Rows appended by the batch.
  int64_t rows = 0;
  /// Table row count before the append (replay cross-checks this, so a
  /// drifted data generator fails loudly instead of corrupting digests).
  int64_t start_row = 0;
};

/// A statement or append, in recorded order.
struct TraceEvent {
  enum class Kind { kStatement, kAppend };
  Kind kind = Kind::kStatement;
  StatementEvent statement;
  AppendEvent append;
};

/// A full parsed trace.
struct Trace {
  TraceHeader header;
  std::vector<TraceEvent> events;
  /// Number of statement events.
  int64_t NumStatements() const;
  /// Number of append events.
  int64_t NumAppends() const;
  /// Share of statements whose recorded reuse mode is not kNone.
  double HitRate() const;
};

// ---------------------------------------------------------------------------
// Result digests
// ---------------------------------------------------------------------------

/// FNV-1a hash of one row (datum strings in column order).
uint64_t RowDigest(const Table& t, int64_t row);

/// Order-insensitive digest of a whole table: per-row FNV hashes
/// combined with 64-bit addition, so any row order — recycled, stitched,
/// re-executed — digests identically, while any changed/missing/extra
/// row changes the value. Pairs with the row count for multiset equality.
uint64_t ResultDigest(const Table& t);

// ---------------------------------------------------------------------------
// Datum codec (typed, round-trip exact)
// ---------------------------------------------------------------------------

/// Encodes a datum with a type tag ("i32:5", "f:0x1.8p+0", "s:abc",
/// "b:1", "i64:9", "null"). Doubles use hex float so decode is bit-exact.
std::string EncodeDatum(const Datum& d);

/// Inverse of EncodeDatum. Unknown tags or malformed payloads return
/// InvalidArgument.
Status DecodeDatum(const std::string& text, Datum* out);

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Renders the trace as JSONL text (header line first).
std::string SerializeTrace(const Trace& trace);

/// Parses JSONL text produced by SerializeTrace (or hand-written to the
/// same grammar). Defensive: every malformation — bad JSON, missing
/// header, unsupported version, unknown event kind, undecodable fields —
/// comes back as InvalidArgument naming the offending line.
Status ParseTrace(const std::string& text, Trace* out);

/// Reads and parses a trace file.
Status ReadTraceFile(const std::string& path, Trace* out);

/// Serializes and writes a trace file (overwrites).
Status WriteTraceFile(const std::string& path, const Trace& trace);

}  // namespace trace
}  // namespace recycledb
