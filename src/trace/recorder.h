// TraceRecorder: captures an executed workload as a replayable trace.
//
// Attach one to a Session (Session::set_recorder); every successful
// synchronous SQL statement the session executes — Sql() calls and
// prepared-statement Execute() rounds alike — lands in the trace with
// its bound parameters, reuse decision, post-rewrite plan shape (when
// the recycler captures it) and result digest. Appends are recorded
// explicitly by the harness (RecordAppend) right after
// Database::AppendTable, so the trace interleaves them at the correct
// points. Thread-safe: several sessions may share one recorder, though
// interleaving across sessions is then scheduling-dependent — record
// single-stream when the trace feeds goldens.
#pragma once

#include <mutex>
#include <string>

#include "common/status.h"
#include "trace/trace_format.h"

namespace recycledb {

class Result;

namespace trace {

/// Records statements/appends into an in-memory Trace (see file comment
/// for attachment and threading).
class TraceRecorder {
 public:
  /// `header` seeds the trace metadata (seed, workload label, tags,
  /// deterministic clock). The version field is forced to the writer's.
  explicit TraceRecorder(TraceHeader header = {});

  /// Session callback: appends one statement event. `sql` is the
  /// statement (or template) text; `params` the bound template
  /// parameters (empty for parameter-free SQL). Failed results are
  /// skipped — a trace holds the workload that actually produced rows.
  void OnStatement(const std::string& sql, const ParamMap& params,
                   const Result& result);

  /// Harness callback: appends an append event. `start_row` is the
  /// table's row count BEFORE the batch (replay cross-checks it).
  void RecordAppend(const std::string& table, int64_t rows,
                    int64_t start_row);

  /// Copy of the trace recorded so far.
  Trace Snapshot() const;

  /// Serializes the trace to `path` (WriteTraceFile).
  Status WriteFile(const std::string& path) const;

  /// Drops every recorded event (the header stays).
  void Clear();

 private:
  mutable std::mutex mu_;
  Trace trace_;
};

}  // namespace trace
}  // namespace recycledb
