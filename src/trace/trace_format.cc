#include "trace/trace_format.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"

namespace recycledb {
namespace trace {

int64_t Trace::NumStatements() const {
  int64_t n = 0;
  for (const auto& e : events) {
    if (e.kind == TraceEvent::Kind::kStatement) ++n;
  }
  return n;
}

int64_t Trace::NumAppends() const {
  return static_cast<int64_t>(events.size()) - NumStatements();
}

double Trace::HitRate() const {
  int64_t statements = 0, hits = 0;
  for (const auto& e : events) {
    if (e.kind != TraceEvent::Kind::kStatement) continue;
    ++statements;
    if (e.statement.reuse_mode != ReuseMode::kNone) ++hits;
  }
  if (statements == 0) return 0;
  return static_cast<double>(hits) / static_cast<double>(statements);
}

// ---------------------------------------------------------------------------
// Result digests
// ---------------------------------------------------------------------------

uint64_t RowDigest(const Table& t, int64_t row) {
  uint64_t h = 0xcbf29ce484222325ULL;
  char buf[40];
  for (int c = 0; c < t.num_columns(); ++c) {
    const Datum& d = t.Get(row, c);
    std::string v;
    if (d.index() == 4) {
      // Hex floats digest doubles bit-exactly; DatumToString's rounded
      // %.6g would let real divergence hash equal.
      std::snprintf(buf, sizeof(buf), "%a", std::get<double>(d));
      v = buf;
    } else {
      v = DatumToString(d);
    }
    h = Fnv1a(v.data(), v.size(), h);
    h = Fnv1a("|", 1, h);
  }
  return h;
}

uint64_t ResultDigest(const Table& t) {
  // Sum of mixed per-row hashes: commutative (order-insensitive) but
  // multiset-sensitive — a duplicated row shifts the sum.
  uint64_t digest = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    digest += HashMix(RowDigest(t, r));
  }
  return digest;
}

// ---------------------------------------------------------------------------
// Datum codec
// ---------------------------------------------------------------------------

std::string EncodeDatum(const Datum& d) {
  struct Enc {
    std::string operator()(std::monostate) const { return "null"; }
    std::string operator()(bool v) const { return v ? "b:1" : "b:0"; }
    std::string operator()(int32_t v) const {
      return "i32:" + std::to_string(v);
    }
    std::string operator()(int64_t v) const {
      return "i64:" + std::to_string(v);
    }
    std::string operator()(double v) const {
      // Hex float: round-trips every finite double exactly.
      return StrFormat("f:%a", v);
    }
    std::string operator()(const std::string& v) const { return "s:" + v; }
  };
  return std::visit(Enc{}, d);
}

namespace {

Status BadDatum(const std::string& text) {
  return Status::InvalidArgument("undecodable datum: '" + text + "'");
}

Status ParseInt64(const std::string& body, int64_t* out) {
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(body.c_str(), &end, 10);
  if (body.empty() || end != body.c_str() + body.size() || errno == ERANGE) {
    return Status::InvalidArgument("malformed integer: '" + body + "'");
  }
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status ParseUint64(const std::string& body, uint64_t* out) {
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(body.c_str(), &end, 10);
  if (body.empty() || end != body.c_str() + body.size() || errno == ERANGE ||
      body[0] == '-') {
    return Status::InvalidArgument("malformed unsigned: '" + body + "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::OK();
}

}  // namespace

Status DecodeDatum(const std::string& text, Datum* out) {
  if (text == "null") {
    *out = std::monostate{};
    return Status::OK();
  }
  size_t colon = text.find(':');
  if (colon == std::string::npos) return BadDatum(text);
  const std::string tag = text.substr(0, colon);
  const std::string body = text.substr(colon + 1);
  if (tag == "s") {
    *out = body;
    return Status::OK();
  }
  if (tag == "b") {
    if (body != "0" && body != "1") return BadDatum(text);
    *out = body == "1";
    return Status::OK();
  }
  if (tag == "i32" || tag == "i64") {
    int64_t v = 0;
    if (!ParseInt64(body, &v).ok()) return BadDatum(text);
    if (tag == "i32") {
      if (v < INT32_MIN || v > INT32_MAX) return BadDatum(text);
      *out = static_cast<int32_t>(v);
    } else {
      *out = v;
    }
    return Status::OK();
  }
  if (tag == "f") {
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(body.c_str(), &end);
    if (body.empty() || end != body.c_str() + body.size()) {
      return BadDatum(text);
    }
    *out = v;
    return Status::OK();
  }
  return BadDatum(text);
}

// ---------------------------------------------------------------------------
// JSON writer (strings and string->string objects only)
// ---------------------------------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void AppendField(std::string* line, const char* key, const std::string& value,
                 bool* first) {
  if (!*first) *line += ",";
  *first = false;
  *line += "\"";
  *line += key;
  *line += "\":\"";
  *line += JsonEscape(value);
  *line += "\"";
}

void AppendObjectField(std::string* line, const char* key,
                       const std::map<std::string, std::string>& object,
                       bool* first) {
  if (!*first) *line += ",";
  *first = false;
  *line += "\"";
  *line += key;
  *line += "\":{";
  bool inner_first = true;
  for (const auto& [k, v] : object) {
    if (!inner_first) *line += ",";
    inner_first = false;
    *line += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
  }
  *line += "}";
}

std::string U64(uint64_t v) { return std::to_string(v); }
std::string I64(int64_t v) { return std::to_string(v); }

// ---------------------------------------------------------------------------
// JSON reader
// ---------------------------------------------------------------------------

/// Parsed value: a string scalar or a string->string object.
struct JsonValue {
  bool is_object = false;
  std::string scalar;
  std::map<std::string, std::string> object;
};

/// Cursor over one line; all methods fail soft via Status.
class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  Status Parse(std::map<std::string, JsonValue>* out) {
    SkipSpace();
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return AtEnd();
    while (true) {
      std::string key;
      RDB_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      JsonValue value;
      if (Peek() == '{') {
        value.is_object = true;
        RDB_RETURN_NOT_OK(ParseObject(&value.object));
      } else {
        RDB_RETURN_NOT_OK(ParseString(&value.scalar));
      }
      (*out)[key] = std::move(value);
      SkipSpace();
      if (Consume('}')) return AtEnd();
      if (!Consume(',')) return Fail("expected ',' or '}'");
      SkipSpace();
    }
  }

 private:
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  Status Fail(const char* what) const {
    return Status::InvalidArgument(
        StrFormat("%s at offset %zu", what, pos_));
  }
  Status AtEnd() {
    SkipSpace();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return Status::OK();
  }

  Status ParseObject(std::map<std::string, std::string>* out) {
    if (!Consume('{')) return Fail("expected '{'");
    SkipSpace();
    if (Consume('}')) return Status::OK();
    while (true) {
      std::string key, value;
      RDB_RETURN_NOT_OK(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Fail("expected ':'");
      SkipSpace();
      RDB_RETURN_NOT_OK(ParseString(&value));
      (*out)[key] = std::move(value);
      SkipSpace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Fail("expected ',' or '}'");
      SkipSpace();
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= s_.size()) return Fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= s_.size()) return Fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return Fail("truncated \\u escape");
          unsigned int code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          if (code > 0xff) return Fail("non-latin \\u escape unsupported");
          *out += static_cast<char>(code);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Field accessors over a parsed line, all failing soft.
class Fields {
 public:
  explicit Fields(std::map<std::string, JsonValue> values)
      : values_(std::move(values)) {}

  Status GetString(const char* key, std::string* out) const {
    const JsonValue* v = Find(key);
    if (v == nullptr || v->is_object) return Missing(key);
    *out = v->scalar;
    return Status::OK();
  }
  Status GetInt64(const char* key, int64_t* out) const {
    std::string s;
    RDB_RETURN_NOT_OK(GetString(key, &s));
    return ParseInt64(s, out);
  }
  Status GetUint64(const char* key, uint64_t* out) const {
    std::string s;
    RDB_RETURN_NOT_OK(GetString(key, &s));
    return ParseUint64(s, out);
  }
  Status GetObject(const char* key,
                   std::map<std::string, std::string>* out) const {
    const JsonValue* v = Find(key);
    if (v == nullptr || !v->is_object) return Missing(key);
    *out = v->object;
    return Status::OK();
  }
  bool Has(const char* key) const { return Find(key) != nullptr; }

 private:
  const JsonValue* Find(const char* key) const {
    auto it = values_.find(key);
    return it == values_.end() ? nullptr : &it->second;
  }
  static Status Missing(const char* key) {
    return Status::InvalidArgument(
        std::string("missing or mistyped field '") + key + "'");
  }
  std::map<std::string, JsonValue> values_;
};

Status LineError(size_t line_no, const Status& cause) {
  return Status::InvalidArgument(
      StrFormat("trace line %zu: %s", line_no, cause.message().c_str()));
}

}  // namespace

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  {
    std::string line = "{";
    bool first = true;
    AppendField(&line, "kind", "header", &first);
    AppendField(&line, "version", I64(trace.header.version), &first);
    AppendField(&line, "seed", U64(trace.header.seed), &first);
    AppendField(&line, "clock_ms", I64(trace.header.clock_ms), &first);
    AppendField(&line, "workload", trace.header.workload, &first);
    AppendField(&line, "mode", trace.header.mode, &first);
    AppendObjectField(&line, "tags", trace.header.tags, &first);
    line += "}\n";
    out += line;
  }
  for (const TraceEvent& e : trace.events) {
    std::string line = "{";
    bool first = true;
    if (e.kind == TraceEvent::Kind::kStatement) {
      const StatementEvent& s = e.statement;
      AppendField(&line, "kind", "statement", &first);
      AppendField(&line, "sql", s.sql, &first);
      if (!s.params.empty()) {
        std::map<std::string, std::string> params;
        for (const auto& [name, value] : s.params) {
          params[name] = EncodeDatum(value);
        }
        AppendObjectField(&line, "params", params, &first);
      }
      AppendField(&line, "plan_fp", U64(s.plan_fingerprint), &first);
      AppendField(&line, "template", U64(s.template_hash), &first);
      AppendField(&line, "mode", ReuseModeName(s.reuse_mode), &first);
      AppendField(&line, "rows", I64(s.rows), &first);
      AppendField(&line, "digest", U64(s.digest), &first);
      if (!s.plan_explain.empty()) {
        AppendField(&line, "explain", s.plan_explain, &first);
      }
      // Written only when nonzero: traces recorded before the field
      // existed round-trip byte-identically.
      if (s.adoptions != 0) {
        AppendField(&line, "adoptions", I64(s.adoptions), &first);
      }
    } else {
      AppendField(&line, "kind", "append", &first);
      AppendField(&line, "table", e.append.table, &first);
      AppendField(&line, "rows", I64(e.append.rows), &first);
      AppendField(&line, "start_row", I64(e.append.start_row), &first);
    }
    line += "}\n";
    out += line;
  }
  return out;
}

Status ParseTrace(const std::string& text, Trace* out) {
  *out = Trace{};
  bool saw_header = false;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = nl == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    // Skip blank lines; a trailing newline is not a truncated event.
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) blank = false;
    }
    if (blank) continue;

    std::map<std::string, JsonValue> values;
    Status st = LineParser(line).Parse(&values);
    if (!st.ok()) return LineError(line_no, st);
    Fields fields(std::move(values));

    std::string kind;
    st = fields.GetString("kind", &kind);
    if (!st.ok()) return LineError(line_no, st);

    if (kind == "header") {
      if (saw_header) {
        return LineError(line_no,
                         Status::InvalidArgument("duplicate header"));
      }
      TraceHeader& h = out->header;
      st = fields.GetInt64("version", &h.version);
      if (!st.ok()) return LineError(line_no, st);
      if (h.version > kTraceFormatVersion || h.version < 1) {
        return LineError(
            line_no,
            Status::InvalidArgument(StrFormat(
                "unsupported trace format version %lld (reader supports "
                "up to %lld)",
                static_cast<long long>(h.version),
                static_cast<long long>(kTraceFormatVersion))));
      }
      st = fields.GetUint64("seed", &h.seed);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetInt64("clock_ms", &h.clock_ms);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetString("workload", &h.workload);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetString("mode", &h.mode);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetObject("tags", &h.tags);
      if (!st.ok()) return LineError(line_no, st);
      saw_header = true;
      continue;
    }

    if (!saw_header) {
      return LineError(
          line_no, Status::InvalidArgument("event before header line"));
    }

    if (kind == "statement") {
      TraceEvent e;
      e.kind = TraceEvent::Kind::kStatement;
      StatementEvent& s = e.statement;
      st = fields.GetString("sql", &s.sql);
      if (!st.ok()) return LineError(line_no, st);
      if (fields.Has("params")) {
        std::map<std::string, std::string> params;
        st = fields.GetObject("params", &params);
        if (!st.ok()) return LineError(line_no, st);
        for (const auto& [name, encoded] : params) {
          Datum d;
          st = DecodeDatum(encoded, &d);
          if (!st.ok()) return LineError(line_no, st);
          s.params[name] = std::move(d);
        }
      }
      st = fields.GetUint64("plan_fp", &s.plan_fingerprint);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetUint64("template", &s.template_hash);
      if (!st.ok()) return LineError(line_no, st);
      std::string mode;
      st = fields.GetString("mode", &mode);
      if (!st.ok()) return LineError(line_no, st);
      if (!ParseReuseMode(mode, &s.reuse_mode)) {
        return LineError(line_no, Status::InvalidArgument(
                                      "unknown reuse mode '" + mode + "'"));
      }
      st = fields.GetInt64("rows", &s.rows);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetUint64("digest", &s.digest);
      if (!st.ok()) return LineError(line_no, st);
      if (fields.Has("explain")) {
        st = fields.GetString("explain", &s.plan_explain);
        if (!st.ok()) return LineError(line_no, st);
      }
      if (fields.Has("adoptions")) {
        st = fields.GetInt64("adoptions", &s.adoptions);
        if (!st.ok()) return LineError(line_no, st);
      }
      out->events.push_back(std::move(e));
      continue;
    }

    if (kind == "append") {
      TraceEvent e;
      e.kind = TraceEvent::Kind::kAppend;
      st = fields.GetString("table", &e.append.table);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetInt64("rows", &e.append.rows);
      if (!st.ok()) return LineError(line_no, st);
      st = fields.GetInt64("start_row", &e.append.start_row);
      if (!st.ok()) return LineError(line_no, st);
      out->events.push_back(std::move(e));
      continue;
    }

    return LineError(line_no, Status::InvalidArgument(
                                  "unknown event kind '" + kind + "'"));
  }
  if (!saw_header) {
    return Status::InvalidArgument("trace has no header line");
  }
  return Status::OK();
}

Status ReadTraceFile(const std::string& path, Trace* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open trace file: " + path);
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("error reading trace file: " + path);
  }
  Status st = ParseTrace(text, out);
  if (!st.ok()) {
    return Status::InvalidArgument(path + ": " + st.message());
  }
  return Status::OK();
}

Status WriteTraceFile(const std::string& path, const Trace& trace) {
  const std::string text = SerializeTrace(trace);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create trace file: " + path);
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flush_error = std::fclose(f) != 0;
  if (written != text.size() || flush_error) {
    return Status::Internal("error writing trace file: " + path);
  }
  return Status::OK();
}

}  // namespace trace
}  // namespace recycledb
