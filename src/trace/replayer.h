// TraceReplayer: re-executes a recorded trace against a fresh Database
// and diffs reuse decisions and result digests.
//
// Single-stream replay (concurrency == 1) walks the trace in recorded
// order through one Session, re-injecting recorded append batches (via
// the caller's append provider) at their recorded positions; because the
// replay reproduces the exact execution history, result digests AND
// reuse modes must match the recording bit for bit, and the report
// treats any divergence as a failure.
//
// Concurrent replay (concurrency == N > 1) runs N copies of the
// statement sequence through the WorkloadDriver against one shared
// engine. Digests stay strict — recycling must never change results —
// but per-execution reuse modes are inherently schedule-dependent (a
// statement another stream already warmed upgrades from the recorded
// miss to a hit), so mode agreement is reported per execution while
// ok() gates only the aggregate hit rate (within hit_rate_tolerance_pts
// of the recording). Traces containing appends replay single-stream
// only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace_format.h"

namespace recycledb {

class Database;

namespace trace {

/// Rebuilds one recorded append batch. Replay calls it with each
/// AppendEvent in order and appends the returned table; returning
/// nullptr fails the replay with a Status (not an abort).
using AppendProvider = std::function<TablePtr(const AppendEvent&)>;

/// Replay configuration.
struct ReplayOptions {
  /// Concurrent copies of the statement sequence (1 = faithful replay).
  int concurrency = 1;
  /// Gate per-execution reuse-mode agreement in ok(). Meaningful at
  /// concurrency == 1; concurrent replays gate hit rate instead.
  bool strict_modes = true;
  /// Aggregate gate for non-strict runs: the replayed hit rate may not
  /// fall more than this many percentage points below the recorded one.
  double hit_rate_tolerance_pts = 2.0;
  /// Rebuilds recorded append batches (required iff the trace has any).
  AppendProvider append_provider;
  /// Also diff the post-rewrite plan shape for statements that recorded
  /// one (requires the replaying engine to run with
  /// RecyclerConfig::capture_plan_explain; otherwise skipped).
  bool check_plan_shape = true;
};

/// One recorded-vs-replayed disagreement.
struct ReplayDivergence {
  /// Index of the statement among the trace's statement events.
  int64_t index = 0;
  /// Replay stream that observed it (0-based; always 0 single-stream).
  int stream = 0;
  /// What diverged: "error", "rows", "digest", "reuse_mode", "plan".
  std::string field;
  std::string recorded;
  std::string replayed;
  /// The statement text, for readable reports.
  std::string sql;
};

/// Structured outcome of a replay.
struct ReplayReport {
  int64_t statements = 0;  ///< statement executions performed
  int64_t appends = 0;     ///< append events re-injected
  int64_t errors = 0;      ///< executions that failed outright
  int64_t digest_mismatches = 0;  ///< rows/digest disagreements
  int64_t mode_mismatches = 0;    ///< reuse-mode disagreements
  int64_t plan_mismatches = 0;    ///< post-rewrite plan-shape disagreements
  /// Share of recorded statements with a reuse mode other than "none".
  double recorded_hit_rate = 0;
  /// Same share over the replayed executions.
  double replayed_hit_rate = 0;
  /// First divergences, capped at kMaxDivergences (counters above are
  /// complete).
  std::vector<ReplayDivergence> divergences;
  static constexpr size_t kMaxDivergences = 32;

  /// True when the replay reproduced the recording under the options it
  /// ran with: no errors, no result divergence, and — strict — no mode
  /// or plan divergence, or — non-strict — a hit rate within tolerance.
  bool ok() const { return ok_; }
  /// Human-readable summary plus the first divergences.
  std::string ToString() const;

  bool ok_ = false;  ///< set by TraceReplayer::Replay
};

/// Re-executes recorded traces against a Database (see file comment for
/// the single-stream vs concurrent contracts).
class TraceReplayer {
 public:
  /// Replays against `db`, which must already hold the base tables the
  /// trace's statements read (same data as the recording, or digests
  /// will diverge — that is the point). Does not own `db`.
  explicit TraceReplayer(Database* db, ReplayOptions options = {});

  /// Replays `trace`, filling `*report` (always, even on error, with
  /// whatever was diffed before the failure). Returns non-OK for
  /// non-replayable traces (plan-built statements, appends without a
  /// provider or under concurrency, provider failures, append row-count
  /// drift) — divergences are NOT errors; they land in the report.
  Status Replay(const Trace& trace, ReplayReport* report);

 private:
  Status ReplaySingle(const Trace& trace, ReplayReport* report);
  Status ReplayConcurrent(const Trace& trace, ReplayReport* report);
  /// Rebuilds one statement's executable plan for the driver path,
  /// reproducing the session pipeline (template canonicalization + hash
  /// tag, parameter substitution, validation, canonicalizing pass).
  Status BuildStatementPlan(const StatementEvent& s, PlanPtr* out);
  void Finish(const Trace& trace, ReplayReport* report) const;

  Database* db_;
  ReplayOptions options_;
  /// Replayed executions that consumed a cached result (reset per Replay).
  int64_t replayed_hits_ = 0;
};

}  // namespace trace
}  // namespace recycledb
