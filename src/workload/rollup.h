// Time-series rollup scenario (append-only sliding-window workload).
//
// The delta-maintenance showcase: a fixed set of rollup statements —
// whole-table per-sensor aggregates plus overlapping value-threshold
// windows — re-executed after every batch of appended event rows. With
// pure invalidation each append discards every cached rollup, so the
// repeated statements never hit; with delta maintenance each
// re-execution merges the cached aggregate state (or stitches the
// cached rows) with the appended window and re-admits at the new
// high-water mark, so every repeat after the first is a delta hit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace recycledb {

class Database;

namespace workload {
struct DriverOptions;
}  // namespace workload

namespace rollup {

/// Scenario shape. Event values are integer-valued doubles in
/// [0, value_range): every partial sum stays exactly representable, so
/// merged aggregates are bit-identical to a full re-execution (the gate
/// the delta bench asserts).
struct RollupOptions {
  /// Rows the events table starts with.
  int64_t initial_rows = 20000;
  /// Distinct sensor ids (the rollup group-by cardinality).
  int32_t num_sensors = 8;
  /// Exclusive upper bound on the integer-valued event values.
  int32_t value_range = 1000;
  /// Generator seed; batches continue the sequence deterministically.
  uint64_t seed = 20130413;
};

/// Creates the append-only "events" table (`ts` int64, `sensor` int32,
/// `value` double) with `options.initial_rows` rows. Deterministic.
Status Setup(Database* db, const RollupOptions& options = {});

/// Builds a batch of `rows` event rows continuing the series at
/// timestamp `start_ts` (use the current row count: timestamps are
/// dense). Deterministic given (options.seed, start_ts).
TablePtr MakeBatch(int64_t rows, int64_t start_ts,
                   const RollupOptions& options = {});

/// The fixed rollup statement set, every one delta-eligible (single
/// table, aggregate root or select chain over an unwindowed scan):
/// grouped SUM/COUNT/AVG and MIN/MAX rollups plus overlapping
/// value-threshold window scans.
std::vector<std::string> RollupSql(const RollupOptions& options = {});

/// Driver-options seed plumbing: `base` with its generator seed replaced
/// by `driver.seed` when non-zero (the historical default, 20130413,
/// otherwise), so one recorded driver seed regenerates the identical
/// event series.
RollupOptions WithDriverSeed(RollupOptions base,
                             const workload::DriverOptions& driver);

}  // namespace rollup
}  // namespace recycledb
