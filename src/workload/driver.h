// Multi-stream throughput driver (§V TPC-H evaluation harness).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "recycler/recycler.h"

namespace recycledb {
namespace workload {

/// One query stream: an ordered list of (label, plan) pairs executed
/// sequentially by a single server thread.
struct StreamSpec {
  std::vector<std::string> labels;
  std::vector<PlanPtr> plans;
};

/// Per-query record (drives the Fig. 8 breakdown and the Fig. 9 trace).
struct QueryRecord {
  int stream = 0;
  int index = 0;
  std::string label;
  double start_ms = 0;  // relative to the run start
  double end_ms = 0;
  int64_t result_rows = 0;
  QueryTrace trace;
};

/// Per-label aggregate.
struct LabelStats {
  int64_t count = 0;
  double total_ms = 0;
  double AvgMs() const { return count == 0 ? 0 : total_ms / count; }
};

/// Result of a throughput run.
struct RunReport {
  double wall_ms = 0;
  /// Per-stream time from its first query issued to its last result
  /// (the paper's stream evaluation time).
  std::vector<double> stream_ms;
  std::vector<QueryRecord> records;
  std::map<std::string, LabelStats> by_label;

  double AvgStreamMs() const;
  double TotalQueryMs() const;
};

/// Runs `streams` against `recycler` with at most `max_concurrent`
/// simultaneously executing queries (the paper caps Vectorwise at 12).
/// Streams beyond the cap queue, as in the paper's setup.
RunReport RunStreams(Recycler* recycler, std::vector<StreamSpec> streams,
                     int max_concurrent = 12);

/// Formats a Fig. 9-style trace of `report` (who materialized / reused /
/// stalled, per stream and query).
std::string FormatTrace(const RunReport& report);

}  // namespace workload
}  // namespace recycledb
