// Multi-stream workload harness (§V TPC-H / SkyServer evaluation).
//
// `WorkloadDriver` runs N query streams against one shared Recycler with
// a bound on concurrently *executing* queries (the paper's "Vectorwise
// was set up to execute 12 queries in parallel"), records one traced
// QueryRecord per query, and aggregates throughput / latency / reuse
// statistics per stream, per label, and for the whole run.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "api/statement.h"
#include "recycler/recycler.h"

namespace recycledb {

class Database;

namespace workload {

/// One query stream: an ordered list of (label, plan) pairs executed
/// sequentially by a single server thread.
struct StreamSpec {
  std::vector<std::string> labels;
  std::vector<PlanPtr> plans;
};

/// Per-query record (drives the Fig. 8 breakdown and the Fig. 9 trace).
struct QueryRecord {
  int stream = 0;
  int index = 0;
  std::string label;
  double start_ms = 0;  // relative to the run start
  double end_ms = 0;
  int64_t result_rows = 0;
  /// Order-insensitive result digest (trace::ResultDigest); 0 unless
  /// DriverOptions::compute_digests is on. Trace replay diffs this
  /// against the recorded value per execution.
  uint64_t digest = 0;
  QueryTrace trace;
};

/// Per-label aggregate.
struct LabelStats {
  int64_t count = 0;
  double total_ms = 0;
  double AvgMs() const { return count == 0 ? 0 : total_ms / count; }
};

/// Per-stream aggregate (derived from the records).
struct StreamStats {
  int64_t queries = 0;
  double total_ms = 0;  // sum of query durations
  double span_ms = 0;   // first query issued -> last result
  int64_t reuses = 0;
  int64_t subsumption_reuses = 0;
  int64_t partial_reuses = 0;
  /// Reuses served from the on-disk cold tier (subset of reuses).
  int64_t cold_hits = 0;
  /// Cold orphans adopted during preparation (restart images or fleet
  /// peers' spills; enablers of reuse, not reuses themselves).
  int64_t adoptions = 0;
  /// Reuses served by delta maintenance over append-stale entries
  /// (subset of reuses).
  int64_t delta_reuses = 0;
  /// Delta reuses merging cached aggregate state with the delta window
  /// (subset of delta_reuses).
  int64_t agg_merges = 0;
  int64_t materializations = 0;
  int64_t stalls = 0;
  /// Scan blocks read vs. skipped by zone-map pruning.
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
};

/// Result of a throughput run.
struct RunReport {
  double wall_ms = 0;
  /// Per-stream time from its first query issued to its last result
  /// (the paper's stream evaluation time).
  std::vector<double> stream_ms;
  std::vector<StreamStats> stream_stats;
  std::vector<QueryRecord> records;
  std::map<std::string, LabelStats> by_label;

  double AvgStreamMs() const;
  double TotalQueryMs() const;

  // --- aggregate throughput / latency / reuse --------------------------
  /// Completed queries per second of wall time.
  double QueriesPerSec() const;
  /// Nearest-rank latency percentile over all query durations, p in
  /// (0, 100].
  double LatencyPercentileMs(double p) const;
  int64_t TotalQueries() const { return static_cast<int64_t>(records.size()); }
  int64_t TotalReuses() const;
  int64_t TotalStalls() const;
  int64_t TotalMaterializations() const;
  /// Reuses served by cold-tier re-admission across all streams.
  int64_t TotalColdHits() const;
  /// Cold orphans adopted during preparation across all streams.
  int64_t TotalAdoptions() const;
  /// Reuses served by delta maintenance across all streams.
  int64_t TotalDeltaReuses() const;
  /// Delta reuses served by aggregate-state merges across all streams.
  int64_t TotalAggMerges() const;
  /// Scan blocks read / skipped by zone-map pruning across all streams.
  int64_t TotalBlocksScanned() const;
  int64_t TotalBlocksPruned() const;
  /// Fraction of queries that consumed at least one cached result.
  double ReuseRate() const;
};

/// Driver configuration.
struct DriverOptions {
  /// Upper bound on simultaneously executing queries. Streams beyond the
  /// bound queue, as in the paper's setup.
  int max_concurrent = 12;
  /// Server threads running stream tasks; 0 = min(max_concurrent,
  /// #streams). When larger than max_concurrent, the admission gate (not
  /// the thread count) enforces the execution bound.
  int threads = 0;
  /// Explicit RNG seed for generator-built streams: the MakeStreams /
  /// Setup overloads taking a DriverOptions (skyserver, tpch, rollup)
  /// derive their per-stream seeds from this value, so a recorded
  /// workload can be regenerated exactly. 0 keeps each generator's
  /// historical default seed (the current behavior).
  uint64_t seed = 0;
  /// Compute QueryRecord::digest for every result (order-insensitive
  /// FNV over all datums). Off by default: hashing every result row is
  /// measurable overhead benches should not pay.
  bool compute_digests = false;
};

/// Seed-resolution helper for generator overloads taking DriverOptions:
/// the explicit driver seed when set, else the generator's default.
inline uint64_t ResolveSeed(const DriverOptions& options,
                            uint64_t generator_default) {
  return options.seed != 0 ? options.seed : generator_default;
}

/// The multi-stream harness. One instance may be reused for several runs
/// (each Run builds its own thread pool so a report is always complete
/// when it returns).
class WorkloadDriver {
 public:
  WorkloadDriver(Recycler* recycler, DriverOptions options = {});

  /// Executes all streams to completion and returns the aggregated
  /// report. Safe to call repeatedly; the recycler keeps its state across
  /// runs (warm cache), so callers wanting cold numbers use a fresh
  /// Recycler.
  RunReport Run(std::vector<StreamSpec> streams);

  const DriverOptions& options() const { return options_; }

 private:
  Recycler* recycler_;
  DriverOptions options_;
};

/// Convenience wrapper: one-shot run with the given execution bound.
RunReport RunStreams(Recycler* recycler, std::vector<StreamSpec> streams,
                     int max_concurrent = 12);

/// Facade overload: runs against the Database's recycler.
RunReport RunStreams(Database* db, std::vector<StreamSpec> streams,
                     int max_concurrent = 12);

/// Builds a stream that executes `statement` once per binding set — the
/// paper's template workloads (one pattern, many constants) expressed
/// through the public API. Plans are bound and validated up front;
/// invalid bindings RDB_CHECK-fail (stream construction is builder-time).
StreamSpec MakeStatementStream(PreparedStatement* statement,
                               const std::vector<ParamMap>& bindings,
                               const std::string& label);

/// Builds a stream from SQL texts executed in order. Statements are
/// parsed, lowered, validated and canonicalized at construction (the
/// driver hands plans straight to Recycler::Execute, bypassing Session's
/// canonicalization hook, so normalization must happen here for SQL
/// variants to share cache entries). Honors the database's
/// canonicalize_plans option; bad SQL RDB_CHECK-fails (stream
/// construction is builder-time).
StreamSpec MakeSqlStream(Database* db, const std::vector<std::string>& sql,
                         const std::string& label);

/// Formats a Fig. 9-style trace of `report` (who materialized / reused /
/// stalled, per stream and query).
std::string FormatTrace(const RunReport& report);

/// Formats the aggregate section (throughput, latency percentiles, reuse
/// rates) as a human-readable summary block.
std::string FormatSummary(const RunReport& report);

}  // namespace workload
}  // namespace recycledb
