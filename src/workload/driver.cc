#include "workload/driver.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "api/database.h"
#include "api/validate.h"
#include "common/admission.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "plan/canonicalize.h"
#include "sql/lower.h"
#include "trace/trace_format.h"

namespace recycledb {
namespace workload {

double RunReport::AvgStreamMs() const {
  if (stream_ms.empty()) return 0;
  double sum = 0;
  for (double ms : stream_ms) sum += ms;
  return sum / static_cast<double>(stream_ms.size());
}

double RunReport::TotalQueryMs() const {
  double sum = 0;
  for (const auto& r : records) sum += r.end_ms - r.start_ms;
  return sum;
}

double RunReport::QueriesPerSec() const {
  if (wall_ms <= 0) return 0;
  return static_cast<double>(records.size()) * 1000.0 / wall_ms;
}

double RunReport::LatencyPercentileMs(double p) const {
  if (records.empty()) return 0;
  std::vector<double> lat;
  lat.reserve(records.size());
  for (const auto& r : records) lat.push_back(r.end_ms - r.start_ms);
  std::sort(lat.begin(), lat.end());
  p = std::min(100.0, std::max(0.0, p));
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(lat.size())));
  if (rank == 0) rank = 1;
  return lat[rank - 1];
}

int64_t RunReport::TotalReuses() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_reuses;
  return n;
}

int64_t RunReport::TotalStalls() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_stalls;
  return n;
}

int64_t RunReport::TotalMaterializations() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_materialized;
  return n;
}

int64_t RunReport::TotalColdHits() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_cold_hits;
  return n;
}

int64_t RunReport::TotalAdoptions() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_adoptions;
  return n;
}

int64_t RunReport::TotalDeltaReuses() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_delta_reuses;
  return n;
}

int64_t RunReport::TotalAggMerges() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.num_agg_merges;
  return n;
}

int64_t RunReport::TotalBlocksScanned() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.blocks_scanned;
  return n;
}

int64_t RunReport::TotalBlocksPruned() const {
  int64_t n = 0;
  for (const auto& r : records) n += r.trace.blocks_pruned;
  return n;
}

double RunReport::ReuseRate() const {
  if (records.empty()) return 0;
  int64_t reusing = 0;
  for (const auto& r : records) {
    if (r.trace.num_reuses > 0) ++reusing;
  }
  return static_cast<double>(reusing) / static_cast<double>(records.size());
}

WorkloadDriver::WorkloadDriver(Recycler* recycler, DriverOptions options)
    : recycler_(recycler), options_(options) {}

RunReport WorkloadDriver::Run(std::vector<StreamSpec> streams) {
  RunReport report;
  report.stream_ms.assign(streams.size(), 0.0);
  report.stream_stats.assign(streams.size(), StreamStats{});
  std::mutex report_mu;

  const int max_concurrent = std::max(1, options_.max_concurrent);
  int threads = options_.threads > 0
                    ? options_.threads
                    : std::min<int>(max_concurrent,
                                    static_cast<int>(streams.size()));
  threads = std::max(1, threads);
  AdmissionGate gate(max_concurrent);

  Stopwatch run_sw;
  {
    ThreadPool pool(threads);
    for (size_t s = 0; s < streams.size(); ++s) {
      pool.Submit([&, s] {
        const StreamSpec& spec = streams[s];
        double stream_start = run_sw.ElapsedMs();
        for (size_t q = 0; q < spec.plans.size(); ++q) {
          QueryRecord rec;
          rec.stream = static_cast<int>(s);
          rec.index = static_cast<int>(q);
          rec.label = spec.labels[q];
          gate.Acquire();
          rec.start_ms = run_sw.ElapsedMs();
          ExecResult result = recycler_->Execute(spec.plans[q], &rec.trace);
          rec.end_ms = run_sw.ElapsedMs();
          gate.Release();
          rec.result_rows = result.table->num_rows();
          if (options_.compute_digests) {
            rec.digest = trace::ResultDigest(*result.table);
          }
          std::lock_guard<std::mutex> lock(report_mu);
          report.records.push_back(std::move(rec));
        }
        std::lock_guard<std::mutex> lock(report_mu);
        report.stream_ms[s] = run_sw.ElapsedMs() - stream_start;
      });
    }
    pool.WaitIdle();
  }
  report.wall_ms = run_sw.ElapsedMs();

  for (const auto& r : report.records) {
    LabelStats& ls = report.by_label[r.label];
    ++ls.count;
    ls.total_ms += r.end_ms - r.start_ms;
    StreamStats& ss = report.stream_stats[r.stream];
    ++ss.queries;
    ss.total_ms += r.end_ms - r.start_ms;
    ss.reuses += r.trace.num_reuses;
    ss.subsumption_reuses += r.trace.num_subsumption_reuses;
    ss.partial_reuses += r.trace.num_partial_reuses;
    ss.cold_hits += r.trace.num_cold_hits;
    ss.adoptions += r.trace.num_adoptions;
    ss.delta_reuses += r.trace.num_delta_reuses;
    ss.agg_merges += r.trace.num_agg_merges;
    ss.materializations += r.trace.num_materialized;
    ss.stalls += r.trace.num_stalls;
    ss.blocks_scanned += r.trace.blocks_scanned;
    ss.blocks_pruned += r.trace.blocks_pruned;
  }
  for (size_t s = 0; s < streams.size(); ++s) {
    report.stream_stats[s].span_ms = report.stream_ms[s];
  }
  std::sort(report.records.begin(), report.records.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.start_ms < b.start_ms;
            });
  return report;
}

RunReport RunStreams(Recycler* recycler, std::vector<StreamSpec> streams,
                     int max_concurrent) {
  DriverOptions options;
  options.max_concurrent = max_concurrent;
  WorkloadDriver driver(recycler, options);
  return driver.Run(std::move(streams));
}

RunReport RunStreams(Database* db, std::vector<StreamSpec> streams,
                     int max_concurrent) {
  return RunStreams(&db->recycler(), std::move(streams), max_concurrent);
}

StreamSpec MakeStatementStream(PreparedStatement* statement,
                               const std::vector<ParamMap>& bindings,
                               const std::string& label) {
  StreamSpec spec;
  for (const auto& b : bindings) {
    statement->ClearBindings();
    statement->BindAll(b);
    PlanPtr plan;
    Status st = statement->ToPlan(&plan);
    RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
    spec.labels.push_back(label);
    spec.plans.push_back(std::move(plan));
  }
  return spec;
}

StreamSpec MakeSqlStream(Database* db, const std::vector<std::string>& sql,
                         const std::string& label) {
  StreamSpec spec;
  for (const std::string& text : sql) {
    PlanPtr plan;
    Status st = sql::SqlToPlan(text, db->catalog(), &plan);
    RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
    RDB_CHECK_MSG(!plan->HasParams(),
                  "SQL stream statements must be parameter-free");
    st = ValidatePlan(plan, db->catalog(), nullptr);
    RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
    if (db->options().canonicalize_plans) plan = CanonicalizePlan(plan);
    spec.labels.push_back(label);
    spec.plans.push_back(std::move(plan));
  }
  return spec;
}

std::string FormatTrace(const RunReport& report) {
  std::string out;
  out += "time(ms)  stream  query        dur(ms)  events\n";
  for (const auto& r : report.records) {
    std::string events;
    if (r.trace.num_reuses > 0) {
      events += StrFormat("reused:%d ", r.trace.num_reuses);
    }
    if (r.trace.num_subsumption_reuses > 0) {
      events += StrFormat("(subsumed:%d) ", r.trace.num_subsumption_reuses);
    }
    if (r.trace.num_partial_reuses > 0) {
      events += StrFormat("(stitched:%d) ", r.trace.num_partial_reuses);
    }
    if (r.trace.num_cold_hits > 0) {
      events += StrFormat("(cold:%d) ", r.trace.num_cold_hits);
    }
    if (r.trace.num_adoptions > 0) {
      events += StrFormat("(adopt:%d) ", r.trace.num_adoptions);
    }
    if (r.trace.num_delta_reuses > 0) {
      events += StrFormat("(delta:%d) ", r.trace.num_delta_reuses);
    }
    if (r.trace.num_agg_merges > 0) {
      events += StrFormat("(agg-merge:%d) ", r.trace.num_agg_merges);
    }
    if (r.trace.num_materialized > 0) {
      events += StrFormat("materialized:%d ", r.trace.num_materialized);
    }
    if (r.trace.num_spec_aborted > 0) {
      events += StrFormat("spec-aborted:%d ", r.trace.num_spec_aborted);
    }
    if (r.trace.num_stalls > 0) {
      events += StrFormat("stalled:%d(%.1fms) ", r.trace.num_stalls,
                          r.trace.stall_ms);
    }
    if (r.trace.blocks_pruned > 0) {
      events += StrFormat("pruned:%lld/%lld ",
                          static_cast<long long>(r.trace.blocks_pruned),
                          static_cast<long long>(r.trace.blocks_pruned +
                                                 r.trace.blocks_scanned));
    }
    if (r.trace.used_proactive) events += "proactive ";
    if (events.empty()) events = "-";
    out += StrFormat("%8.1f  S%-5d  %-11s  %7.1f  %s\n", r.start_ms,
                     r.stream + 1, r.label.c_str(), r.end_ms - r.start_ms,
                     events.c_str());
  }
  return out;
}

std::string FormatSummary(const RunReport& report) {
  std::string out;
  out += StrFormat(
      "queries=%lld wall=%.1fms qps=%.2f avg=%.2fms p50=%.2fms p95=%.2fms "
      "p99=%.2fms\n",
      static_cast<long long>(report.TotalQueries()), report.wall_ms,
      report.QueriesPerSec(),
      report.TotalQueries() == 0
          ? 0.0
          : report.TotalQueryMs() / static_cast<double>(report.TotalQueries()),
      report.LatencyPercentileMs(50), report.LatencyPercentileMs(95),
      report.LatencyPercentileMs(99));
  out += StrFormat(
      "reuse_rate=%.1f%% reuses=%lld cold_hits=%lld adoptions=%lld "
      "delta_reuses=%lld agg_merges=%lld materializations=%lld stalls=%lld\n",
      100.0 * report.ReuseRate(), static_cast<long long>(report.TotalReuses()),
      static_cast<long long>(report.TotalColdHits()),
      static_cast<long long>(report.TotalAdoptions()),
      static_cast<long long>(report.TotalDeltaReuses()),
      static_cast<long long>(report.TotalAggMerges()),
      static_cast<long long>(report.TotalMaterializations()),
      static_cast<long long>(report.TotalStalls()));
  const int64_t scanned = report.TotalBlocksScanned();
  const int64_t pruned = report.TotalBlocksPruned();
  out += StrFormat(
      "blocks_scanned=%lld blocks_pruned=%lld prune_rate=%.1f%%\n",
      static_cast<long long>(scanned), static_cast<long long>(pruned),
      scanned + pruned == 0
          ? 0.0
          : 100.0 * static_cast<double>(pruned) /
                static_cast<double>(scanned + pruned));
  return out;
}

}  // namespace workload
}  // namespace recycledb
