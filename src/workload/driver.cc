#include "workload/driver.h"

#include <algorithm>
#include <mutex>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace recycledb {
namespace workload {

double RunReport::AvgStreamMs() const {
  if (stream_ms.empty()) return 0;
  double sum = 0;
  for (double ms : stream_ms) sum += ms;
  return sum / static_cast<double>(stream_ms.size());
}

double RunReport::TotalQueryMs() const {
  double sum = 0;
  for (const auto& r : records) sum += r.end_ms - r.start_ms;
  return sum;
}

RunReport RunStreams(Recycler* recycler, std::vector<StreamSpec> streams,
                     int max_concurrent) {
  RunReport report;
  report.stream_ms.assign(streams.size(), 0.0);
  std::mutex report_mu;

  const int num_threads =
      std::max(1, std::min<int>(max_concurrent,
                                static_cast<int>(streams.size())));
  Stopwatch run_sw;
  {
    ThreadPool pool(num_threads);
    for (size_t s = 0; s < streams.size(); ++s) {
      pool.Submit([&, s] {
        const StreamSpec& spec = streams[s];
        Stopwatch stream_sw;
        double stream_start = run_sw.ElapsedMs();
        for (size_t q = 0; q < spec.plans.size(); ++q) {
          QueryRecord rec;
          rec.stream = static_cast<int>(s);
          rec.index = static_cast<int>(q);
          rec.label = spec.labels[q];
          rec.start_ms = run_sw.ElapsedMs();
          ExecResult result = recycler->Execute(spec.plans[q], &rec.trace);
          rec.end_ms = run_sw.ElapsedMs();
          rec.result_rows = result.table->num_rows();
          std::lock_guard<std::mutex> lock(report_mu);
          report.records.push_back(std::move(rec));
        }
        std::lock_guard<std::mutex> lock(report_mu);
        report.stream_ms[s] = run_sw.ElapsedMs() - stream_start;
      });
    }
    pool.WaitIdle();
  }
  report.wall_ms = run_sw.ElapsedMs();

  for (const auto& r : report.records) {
    LabelStats& ls = report.by_label[r.label];
    ++ls.count;
    ls.total_ms += r.end_ms - r.start_ms;
  }
  std::sort(report.records.begin(), report.records.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.start_ms < b.start_ms;
            });
  return report;
}

std::string FormatTrace(const RunReport& report) {
  std::string out;
  out += "time(ms)  stream  query        dur(ms)  events\n";
  for (const auto& r : report.records) {
    std::string events;
    if (r.trace.num_reuses > 0) {
      events += StrFormat("reused:%d ", r.trace.num_reuses);
    }
    if (r.trace.num_subsumption_reuses > 0) {
      events += StrFormat("(subsumed:%d) ", r.trace.num_subsumption_reuses);
    }
    if (r.trace.num_materialized > 0) {
      events += StrFormat("materialized:%d ", r.trace.num_materialized);
    }
    if (r.trace.num_spec_aborted > 0) {
      events += StrFormat("spec-aborted:%d ", r.trace.num_spec_aborted);
    }
    if (r.trace.num_stalls > 0) {
      events += StrFormat("stalled:%d(%.1fms) ", r.trace.num_stalls,
                          r.trace.stall_ms);
    }
    if (r.trace.used_proactive) events += "proactive ";
    if (events.empty()) events = "-";
    out += StrFormat("%8.1f  S%-5d  %-11s  %7.1f  %s\n", r.start_ms,
                     r.stream + 1, r.label.c_str(), r.end_ms - r.start_ms,
                     events.c_str());
  }
  return out;
}

}  // namespace workload
}  // namespace recycledb
