#include "workload/rollup.h"

#include "api/database.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "workload/driver.h"

namespace recycledb {
namespace rollup {

namespace {

Schema EventsSchema() {
  return Schema({{"ts", TypeId::kInt64},
                 {"sensor", TypeId::kInt32},
                 {"value", TypeId::kDouble}});
}

/// One deterministic event row per timestamp: the row at `ts` is the
/// same whether it was generated into the initial table or into a later
/// batch, so reruns of the scenario are reproducible.
void AppendEvent(Table* t, int64_t ts, const RollupOptions& options) {
  // Per-row hash-derived values (not a sequential Rng): batch generation
  // must not depend on how the preceding rows were split into batches.
  Rng rng(options.seed ^ static_cast<uint64_t>(ts) * 0x9e3779b97f4a7c15ull);
  t->AppendRow({ts,
                static_cast<int32_t>(rng.Uniform(0, options.num_sensors - 1)),
                static_cast<double>(rng.Uniform(0, options.value_range - 1))});
}

}  // namespace

Status Setup(Database* db, const RollupOptions& options) {
  TablePtr events = MakeTable(EventsSchema());
  for (int64_t ts = 0; ts < options.initial_rows; ++ts) {
    AppendEvent(events.get(), ts, options);
  }
  return db->CreateTable("events", std::move(events));
}

TablePtr MakeBatch(int64_t rows, int64_t start_ts,
                   const RollupOptions& options) {
  TablePtr batch = MakeTable(EventsSchema());
  for (int64_t i = 0; i < rows; ++i) {
    AppendEvent(batch.get(), start_ts + i, options);
  }
  return batch;
}

std::vector<std::string> RollupSql(const RollupOptions& options) {
  std::vector<std::string> sql;
  // Grouped rollups: aggregate-merge eligible (AVG rides on SUM+COUNT of
  // the same argument; MIN/MAX are grouped, so empty deltas emit no row).
  sql.push_back(
      "SELECT sensor, SUM(value) AS total, COUNT(value) AS n,"
      " AVG(value) AS mean FROM events GROUP BY sensor");
  sql.push_back(
      "SELECT sensor, MIN(value) AS lo, MAX(value) AS hi FROM events"
      " GROUP BY sensor");
  sql.push_back(
      "SELECT sensor, SUM(value) AS total, COUNT(value) AS n FROM events"
      " WHERE sensor < " +
      std::to_string(options.num_sensors / 2) + " GROUP BY sensor");
  // Overlapping value-threshold windows: delta-stitch eligible (select
  // chain over the unwindowed scan; the cached rows are unioned with the
  // filtered delta window).
  for (int pct : {90, 75, 50}) {
    sql.push_back(StrFormat(
        "SELECT ts, sensor, value FROM events WHERE value >= %d.0",
        options.value_range * pct / 100));
  }
  return sql;
}

RollupOptions WithDriverSeed(RollupOptions base,
                             const workload::DriverOptions& driver) {
  base.seed = workload::ResolveSeed(driver, base.seed);
  return base;
}

}  // namespace rollup
}  // namespace recycledb
