// Concrete physical operators: scans, filter, project, union, limit,
// sort/top-N, hash aggregate, hash join.
#pragma once

#include <queue>
#include <unordered_map>

#include "exec/operator.h"
#include "expr/aggregate.h"
#include "plan/table_function.h"

namespace recycledb {

/// Base-table (or materialized-table) scan with column pruning.
class ScanOp : public Operator {
 public:
  /// A zone-map prune hint: the scan may skip any 1024-row block whose
  /// zone on `output_column` (index into this scan's output schema)
  /// excludes `range`. Conservative metadata only — the parent filter
  /// still evaluates its full predicate, so results are bit-identical
  /// with or without hints.
  struct PruneHint {
    int output_column = 0;
    ColumnInterval range;
  };

  /// `table` must outlive the operator. `column_indices` selects and orders
  /// the emitted columns.
  ScanOp(Schema output_schema, TablePtr table, std::vector<int> column_indices);

  /// Installs prune hints (from the parent Select's range conjuncts).
  /// Must be called before Open().
  void SetPruneHints(std::vector<PruneHint> hints);

  /// Restricts the scan to table rows [begin, end) — the delta window of
  /// a delta-maintenance rewrite. `end` of -1 means "to the end of the
  /// table"; both bounds are clamped to the table size at Open(). Zone-map
  /// pruning still applies inside the window (edge blocks use the full
  /// block's zone, which is conservative). Must be called before Open().
  void SetRowWindow(int64_t begin, int64_t end);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override {}
  double Progress() const override;

 private:
  bool BlockPruned(int64_t block) const;

  TablePtr table_;
  std::vector<int> column_indices_;
  std::vector<PruneHint> hints_;
  int64_t begin_ = 0;    // requested window start
  int64_t end_ = -1;     // requested window end (-1 = table end)
  int64_t limit_ = 0;    // clamped window end, computed at Open
  int64_t pos_ = 0;
};

/// Table-valued function scan: evaluates the function at Open, streams.
class FunctionScanOp : public Operator {
 public:
  FunctionScanOp(Schema output_schema, const TableFunction* fn,
                 std::vector<Datum> args, const Catalog* catalog);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override {}
  double Progress() const override;

 private:
  const TableFunction* fn_;
  std::vector<Datum> args_;
  const Catalog* catalog_;
  TablePtr result_;
  std::vector<int> column_indices_;  // all of result_'s columns, in order
  int64_t pos_ = 0;
};

/// Filter: evaluates a predicate and gathers the selected rows.
class FilterOp : public Operator {
 public:
  FilterOp(Schema output_schema, OperatorPtr child, ExprPtr predicate);

  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override { return child_->Progress(); }

 private:
  OperatorPtr child_;
  ExprPtr predicate_;
};

/// Project: computes expressions into a new column layout.
class ProjectOp : public Operator {
 public:
  ProjectOp(Schema output_schema, OperatorPtr child,
            std::vector<ProjItem> items);

  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override { return child_->Progress(); }

 private:
  OperatorPtr child_;
  std::vector<ProjItem> items_;
};

/// Limit: passes through the first N rows.
class LimitOp : public Operator {
 public:
  LimitOp(Schema output_schema, OperatorPtr child, int64_t n);

  void Open() override { child_->Open(); }
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override;

 private:
  OperatorPtr child_;
  int64_t remaining_;
  int64_t n_;
};

/// Bag union: streams each child in order (positional columns).
class UnionAllOp : public Operator {
 public:
  UnionAllOp(Schema output_schema, std::vector<OperatorPtr> children);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  double Progress() const override;

 private:
  std::vector<OperatorPtr> children_;
  size_t current_ = 0;
};

/// Full sort (blocking): materializes input, sorts boxed rows, streams.
class SortOp : public Operator {
 public:
  SortOp(Schema output_schema, OperatorPtr child, std::vector<SortKey> keys);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override;

 private:
  void Consume();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  TablePtr buffer_;
  std::vector<int64_t> order_;
  int64_t pos_ = 0;
  bool consumed_ = false;
};

/// Heap-based top-N (the paper's topN operator: O(M log N), no full sort);
/// output is emitted in sort order.
class TopNOp : public Operator {
 public:
  TopNOp(Schema output_schema, OperatorPtr child, std::vector<SortKey> keys,
         int64_t n);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override;

 private:
  void Consume();

  OperatorPtr child_;
  std::vector<SortKey> keys_;
  int64_t n_;
  TablePtr candidates_;        // rows currently in the heap
  std::vector<int64_t> order_; // final sorted row order into candidates_
  int64_t pos_ = 0;
  bool consumed_ = false;
};

/// Hash aggregate (blocking). With empty group_by produces exactly one row.
class HashAggOp : public Operator {
 public:
  HashAggOp(Schema output_schema, OperatorPtr child,
            std::vector<std::string> group_by, std::vector<AggItem> aggs);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override { child_->Close(); }
  double Progress() const override;

 private:
  struct AggState {
    double dsum = 0;
    int64_t isum = 0;
    int64_t count = 0;
    Datum min_v;
    Datum max_v;
  };

  void Consume();
  int64_t FindOrCreateGroup(const Batch& batch,
                            const std::vector<ColumnPtr>& key_cols,
                            int64_t row, uint64_t hash);

  OperatorPtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggItem> aggs_;
  std::vector<int> group_idx_;              // group column indexes in child
  std::vector<TypeId> agg_arg_types_;

  TablePtr group_keys_;                     // one row per group
  std::vector<std::vector<AggState>> states_;  // [agg][group]
  std::unordered_multimap<uint64_t, int64_t> group_map_;
  int64_t num_groups_ = 0;
  int64_t pos_ = 0;
  bool consumed_ = false;
};

/// Hash equi-join; the right child is the build side.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(Schema output_schema, OperatorPtr left, OperatorPtr right,
             JoinKind kind, std::vector<std::string> left_keys,
             std::vector<std::string> right_keys);

  void Open() override;
  bool Next(Batch* out) override;
  void Close() override;
  double Progress() const override { return left_->Progress(); }

 private:
  void Build();

  OperatorPtr left_, right_;
  JoinKind kind_;
  std::vector<int> left_key_idx_, right_key_idx_;
  TablePtr build_table_;
  std::unordered_multimap<uint64_t, int64_t> build_map_;
  bool built_ = false;
};

}  // namespace recycledb
