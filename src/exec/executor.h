// Plan-to-operator builder and the query executor.
#pragma once

#include <map>
#include <memory>

#include "exec/operator.h"
#include "exec/store.h"
#include "plan/plan.h"
#include "storage/catalog.h"

namespace recycledb {

/// Per-plan-node run-time measurements, keyed by plan node pointer.
/// The recycler uses these to annotate the recycler graph after the query.
struct NodeRuntime {
  OpStats stats;
  double inclusive_ms = 0;
  int64_t rows_out = 0;
};

/// Result of executing a plan.
struct ExecResult {
  TablePtr table;
  double total_ms = 0;
  /// Zone-map pruning totals over every scan of the plan (1024-row
  /// blocks read vs. skipped).
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  /// One entry per plan node of the executed plan.
  std::map<const PlanNode*, NodeRuntime> node_runtime;
};

/// Builds physical operator trees from bound plans and runs them.
///
/// `store_requests` maps plan nodes to store configurations injected by
/// the recycler's rewrite rules; the builder wraps those nodes' operators
/// in StoreOps. Executor is stateless and thread-compatible: concurrent
/// Run() calls on the same Executor are safe (the catalog is read-only
/// during execution).
class Executor {
 public:
  explicit Executor(const Catalog* catalog) : catalog_(catalog) {}

  /// Enables/disables zone-map scan pruning (on by default). Set at
  /// engine construction, before any Run(): the flag is read during
  /// operator building, so flipping it concurrently with Run() is a race.
  void set_zone_map_pruning(bool enabled) { zone_map_pruning_ = enabled; }
  bool zone_map_pruning() const { return zone_map_pruning_; }

  /// Base tables pinned to specific as-of snapshots for one execution.
  /// Scans of a pinned name read the pinned TablePtr instead of the live
  /// catalog entry, so a delta-stitched plan's bounded windows stay
  /// consistent with the high-water marks the rewrite was computed
  /// against even while concurrent appends swap grown tables in.
  using TablePins = std::map<std::string, TablePtr>;

  /// Builds the operator tree for `plan` (bound) and drains it.
  ExecResult Run(const PlanPtr& plan,
                 const std::map<const PlanNode*, StoreRequest>*
                     store_requests = nullptr,
                 const TablePins* pins = nullptr);

  /// Builds without running (exposed for tests).
  OperatorPtr BuildOperator(
      const PlanPtr& plan,
      const std::map<const PlanNode*, StoreRequest>* store_requests,
      std::map<const PlanNode*, Operator*>* node_ops,
      const TablePins* pins = nullptr);

 private:
  const Catalog* catalog_;
  bool zone_map_pruning_ = true;
};

}  // namespace recycledb
