// The store operator: buffers, materializes, or passes through its input
// without interrupting the tuple flow (§II "Changes in Query Evaluation").
#pragma once

#include <deque>
#include <functional>

#include "exec/operator.h"

namespace recycledb {

/// How a store operator was configured by the rewriter.
enum class StoreMode {
  /// Materialize unconditionally (history-based decision already made).
  kMaterialize,
  /// Buffer the tuple flow and decide at run time from dynamic estimates
  /// (speculation, §III-D). Falls back to pass-through when rejected.
  kSpeculative,
};

/// Run-time estimates a speculative store hands to the decision callback.
struct SpeculationEstimate {
  double progress = 0;        // fraction of the input produced so far
  double est_cost_ms = 0;     // extrapolated total cost of the subtree
  double est_size_bytes = 0;  // extrapolated result size
  int64_t buffered_bytes = 0;
  int64_t buffered_rows = 0;
};

/// Configuration attached to a plan node by the recycler's rewrite rules;
/// the execution builder wraps the node's operator in a StoreOp.
///
/// Concurrency contract: the recycler claims the target graph node
/// (kNone -> kInFlight) *before* execution starts, so exactly one stream
/// runs the callbacks for a given node at a time. Other streams stall on
/// (or reuse) the node's materialization; `on_complete` — including the
/// abort path with a null result — MUST therefore always be invoked
/// exactly once, even when a parent stops pulling early (see Close()),
/// or stalled queries would wait out their full timeout.
struct StoreRequest {
  StoreMode mode = StoreMode::kMaterialize;
  /// Opaque recycler-graph node handle, passed back on callbacks.
  void* token = nullptr;
  /// Speculation decision: return true to keep buffering / materialize,
  /// false to abandon. Called repeatedly as estimates sharpen; the first
  /// false aborts buffering for good.
  std::function<bool(void* token, const SpeculationEstimate&)> keep_going;
  /// Called exactly once when the input is exhausted. `result` is the full
  /// materialized table when materialization completed, nullptr when
  /// speculation abandoned it. `subtree_ms` is the measured inclusive cost
  /// of the input subtree.
  std::function<void(void* token, TablePtr result, double subtree_ms)>
      on_complete;
  /// Hard cap on speculative buffering; exceeding it abandons.
  int64_t buffer_cap_bytes = 64 << 20;
};

/// Store operator implementation.
///
/// kMaterialize: copies every batch into the result table while passing it
/// along (no flow interruption).
///
/// kSpeculative: withholds batches while undecided (the paper's
/// "temporarily buffers the tuple flow"), extrapolating cost/size from the
/// input's progress meter; on accept it keeps materializing and releases
/// the buffer downstream, on reject it releases and reverts to
/// pass-through.
class StoreOp : public Operator {
 public:
  StoreOp(OperatorPtr child, StoreRequest request);

  void Open() override;
  bool Next(Batch* out) override;
  /// Closing an unfinished store aborts the materialization (a parent —
  /// e.g. a Limit — may stop pulling before the input is exhausted; the
  /// half-built result must not be cached and the recycler must be told
  /// so it can clear the node's in-flight state).
  void Close() override;
  double Progress() const override { return child_->Progress(); }

  /// True if this store decided (or was configured) to materialize.
  bool materializing() const { return materializing_; }

 private:
  enum class State { kUndecided, kAccepted, kRejected };

  void FinishIfNeeded();
  bool PullChild(Batch* out);
  SpeculationEstimate CurrentEstimate() const;

  OperatorPtr child_;
  StoreRequest request_;
  State state_ = State::kUndecided;
  bool materializing_ = false;
  bool finished_ = false;
  TablePtr result_;
  std::deque<Batch> buffered_;
  int64_t buffered_bytes_ = 0;
  double child_ms_ = 0;  // accumulated time inside child Next calls
};

}  // namespace recycledb
