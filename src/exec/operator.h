// Physical operator interface for the pull-based vector-at-a-time engine.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "plan/plan.h"
#include "storage/catalog.h"
#include "storage/table.h"

namespace recycledb {

/// Runtime statistics collected per operator, consumed by the recycler to
/// annotate recycler-graph nodes after the query finishes (§II "each
/// operator annotates its equivalent node in the recycler graph with
/// measured run-time parameters").
struct OpStats {
  int64_t rows_out = 0;
  int64_t batches_out = 0;
  /// Inclusive wall time spent producing this operator's output, i.e. the
  /// paper's measured base cost of the subtree rooted here (children are
  /// pulled from inside Next(), so their time is included).
  double inclusive_ms = 0;
  /// Zone-map pruning (ScanOp only): 1024-row blocks actually read vs.
  /// skipped because their zone excluded every prune-hint interval.
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
};

/// Pull-based physical operator. Lifecycle: Open() once, Next() until it
/// returns false, Close() once. Next() fills `out` with up to
/// kDefaultBatchRows rows laid out per output_schema().
class Operator {
 public:
  explicit Operator(Schema output_schema)
      : output_schema_(std::move(output_schema)) {}
  virtual ~Operator() = default;

  const Schema& output_schema() const { return output_schema_; }

  virtual void Open() = 0;
  /// Produces the next batch; returns false when exhausted (out is empty).
  virtual bool Next(Batch* out) = 0;
  virtual void Close() = 0;

  /// Fraction of this operator's output already produced, in [0,1].
  /// Scans and blocking operators know it exactly; pipelined operators
  /// report the progress of their left-deep scan/blocking descendant
  /// (the paper's progress-meter rule, after [13]).
  virtual double Progress() const = 0;

  const OpStats& stats() const { return stats_; }

  /// Timed Next wrapper: accumulates inclusive time + row counts.
  bool NextTimed(Batch* out) {
    Stopwatch sw;
    bool more = Next(out);
    stats_.inclusive_ms += sw.ElapsedMs();
    if (more) {
      stats_.rows_out += out->num_rows;
      ++stats_.batches_out;
    }
    return more;
  }

 protected:
  Schema output_schema_;
  OpStats stats_;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Prepares an output batch shaped like `schema` for an owning producer.
/// Reuses the batch's existing columns (clear, don't reconstruct) when they
/// match the schema and nothing else holds a reference — this cuts the
/// allocation churn of re-creating every column on every Next() call.
/// Columns that were sliced (shared sources) or are still referenced
/// downstream are replaced instead of cleared.
inline void InitBatch(const Schema& schema, Batch* out) {
  if (static_cast<int>(out->columns.size()) == schema.num_fields()) {
    bool reusable = true;
    for (int i = 0; i < schema.num_fields(); ++i) {
      const ColumnPtr& c = out->columns[i];
      if (c == nullptr || c.use_count() != 1 || c->shared() ||
          c->type() != schema.field(i).type) {
        reusable = false;
        break;
      }
    }
    if (reusable) {
      for (const auto& c : out->columns) c->Clear();
      out->num_rows = 0;
      return;
    }
  }
  out->Clear();
  out->columns.reserve(schema.num_fields());
  for (const auto& f : schema.fields()) out->columns.push_back(MakeColumn(f.type));
}

/// Default value used to pad the build side of left-outer joins
/// (the engine is NULL-free; see DESIGN.md).
Datum PadValue(TypeId type);

}  // namespace recycledb
