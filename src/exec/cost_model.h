// Calibrated, deterministic per-operator cost model.
//
// The recycler's benefit ranking (Eq. 2: benefit = bcost * h / size)
// originally refreshed bcost from wall-clock operator timings, which
// made admission, eviction and spill decisions depend on scheduler
// noise: two identical workloads could rank the same results
// differently. The model replaces the refresh with
//
//   cost(op) = rows * row_width * c[op]        (sorts: * log2(rows))
//
// where c[op] is a per-operator nanoseconds-per-byte constant scaled by
// one machine factor, measured once per process by a short memory-sweep
// micro-probe (CostModel::Global()). For a given plan shape and observed
// cardinalities the model is a pure function, so every engine instance
// in the process ranks identically while costs stay in real
// milliseconds and comparable to the wall-clock estimates used for
// in-flight speculation.
#pragma once

#include <cstdint>
#include <map>

#include "exec/executor.h"
#include "plan/plan.h"

namespace recycledb {

class CostModel {
 public:
  /// The process-wide calibrated model. The first call runs the
  /// micro-probe (~1 ms); Recycler's constructor triggers it so query
  /// timings never include calibration.
  static const CostModel& Global();

  /// Modeled exclusive cost of one operator emitting `rows` rows of
  /// `row_width` bytes.
  double OperatorMs(OpType op, int64_t rows, double row_width) const;

  /// Modeled inclusive (subtree) cost of `node`, using the observed
  /// per-node cardinalities in `runtime`. Nodes without a runtime entry
  /// contribute their children only (their own cardinality is unknown;
  /// under-counting keeps bcost conservative).
  double SubtreeMs(const PlanNode& node,
                   const std::map<const PlanNode*, NodeRuntime>& runtime) const;

  /// Probe-measured scaling applied to the per-operator constants
  /// (1.0 = the reference machine; exposed for diagnostics/tests).
  double machine_factor() const { return machine_factor_; }

  /// Uncalibrated model with `machine_factor` fixed (tests).
  explicit CostModel(double machine_factor);

 private:
  static constexpr int kNumOps =
      static_cast<int>(OpType::kCachedScan) + 1;

  double machine_factor_ = 1.0;
  double ns_per_byte_[kNumOps];
};

/// Estimated in-flight row width of a plan node's output (bytes/row,
/// from its output schema; strings count at a nominal average width).
double ModelRowWidth(const Schema& schema);

}  // namespace recycledb
