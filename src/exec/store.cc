#include "exec/store.h"

#include "common/macros.h"

namespace recycledb {

namespace {
int64_t BatchBytes(const Batch& b) {
  int64_t total = 0;
  for (const auto& c : b.columns) total += c->ByteSize();
  return total;
}
}  // namespace

StoreOp::StoreOp(OperatorPtr child, StoreRequest request)
    : Operator(child->output_schema()),
      child_(std::move(child)),
      request_(std::move(request)) {
  RDB_CHECK(request_.on_complete != nullptr);
}

void StoreOp::Open() {
  child_->Open();
  if (request_.mode == StoreMode::kMaterialize) {
    state_ = State::kAccepted;
    materializing_ = true;
    result_ = MakeTable(output_schema_);
  } else {
    RDB_CHECK(request_.keep_going != nullptr);
    state_ = State::kUndecided;
    result_ = MakeTable(output_schema_);
  }
}

bool StoreOp::PullChild(Batch* out) {
  Stopwatch sw;
  bool more = child_->NextTimed(out);
  child_ms_ += sw.ElapsedMs();
  return more;
}

SpeculationEstimate StoreOp::CurrentEstimate() const {
  SpeculationEstimate est;
  est.progress = child_->Progress();
  est.buffered_bytes = buffered_bytes_;
  est.buffered_rows = result_->num_rows();
  double p = est.progress;
  if (p < 1e-3) p = 1e-3;  // avoid wild extrapolation at the very start
  est.est_cost_ms = child_ms_ / p;
  est.est_size_bytes = static_cast<double>(buffered_bytes_) / p;
  return est;
}

void StoreOp::Close() {
  if (!finished_) {
    // The parent stopped pulling (e.g. a satisfied Limit). The input may
    // nevertheless be exhausted — a pipeline that delivered everything in
    // its final batch never got the chance to report end-of-input. Probe
    // once: if the input is done, the collected result is complete and
    // can still be offered to the cache (the SkyServer LIMIT queries
    // depend on this to materialize the cone-search result).
    Batch extra;
    if (!PullChild(&extra)) {
      if (state_ == State::kUndecided) {
        SpeculationEstimate est = CurrentEstimate();
        est.progress = 1.0;
        est.est_cost_ms = child_ms_;
        est.est_size_bytes = static_cast<double>(buffered_bytes_);
        state_ = request_.keep_going(request_.token, est) ? State::kAccepted
                                                          : State::kRejected;
        materializing_ = state_ == State::kAccepted;
        if (!materializing_) result_ = nullptr;
      }
      FinishIfNeeded();
    } else {
      // Genuinely truncated: the partial result must not be cached.
      finished_ = true;
      materializing_ = false;
      result_.reset();
      request_.on_complete(request_.token, nullptr, child_ms_);
    }
  }
  child_->Close();
}

void StoreOp::FinishIfNeeded() {
  if (finished_) return;
  finished_ = true;
  if (materializing_) {
    request_.on_complete(request_.token, result_, child_ms_);
  } else {
    request_.on_complete(request_.token, nullptr, child_ms_);
  }
  result_.reset();
}

bool StoreOp::Next(Batch* out) {
  // Speculative phase: withhold input while undecided.
  while (state_ == State::kUndecided) {
    Batch in;
    if (!PullChild(&in)) {
      // Input exhausted while buffering: we now know exact cost and size.
      SpeculationEstimate est = CurrentEstimate();
      est.progress = 1.0;
      est.est_cost_ms = child_ms_;
      est.est_size_bytes = static_cast<double>(buffered_bytes_);
      state_ = request_.keep_going(request_.token, est) ? State::kAccepted
                                                        : State::kRejected;
      materializing_ = state_ == State::kAccepted;
      if (!materializing_) result_ = nullptr;
      FinishIfNeeded();
      break;
    }
    buffered_bytes_ += BatchBytes(in);
    result_->AppendBatch(in);
    buffered_.push_back(std::move(in));
    if (buffered_bytes_ > request_.buffer_cap_bytes) {
      state_ = State::kRejected;  // too large to be worth caching
      result_ = nullptr;
    } else {
      SpeculationEstimate est = CurrentEstimate();
      if (!request_.keep_going(request_.token, est)) {
        state_ = State::kRejected;
        result_ = nullptr;
      } else if (est.progress >= 1.0 - 1e-9) {
        state_ = State::kAccepted;
        materializing_ = true;
      }
      // Otherwise stay undecided and keep buffering.
    }
  }

  // Drain the withheld buffer first.
  if (!buffered_.empty()) {
    *out = std::move(buffered_.front());
    buffered_.pop_front();
    return true;
  }

  // Streaming phase.
  Batch in;
  if (!PullChild(&in)) {
    FinishIfNeeded();
    return false;
  }
  if (materializing_ && !finished_) result_->AppendBatch(in);
  *out = std::move(in);
  return true;
}

}  // namespace recycledb
