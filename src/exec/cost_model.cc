#include "exec/cost_model.h"

#include <chrono>
#include <cmath>
#include <vector>

namespace recycledb {

namespace {

/// Reference machine memory-sweep speed: 0.1 ns/byte (~10 GB/s). The
/// probe's measured speed relative to this scales every constant.
constexpr double kReferenceNsPerByte = 0.1;

/// Per-operator ns/byte at machine factor 1, ordered by OpType. Rough
/// relative weights of the vector-at-a-time implementations: view-emitting
/// scans are nearly free per byte, hash operators dominate.
constexpr double kBaseNsPerByte[] = {
    0.5,  // kScan (O(1) view emission + batch plumbing)
    2.0,  // kFunctionScan (distance math per row)
    1.5,  // kSelect (predicate eval + gather)
    1.5,  // kProject (expression eval)
    4.0,  // kAggregate (hash probe + state update)
    5.0,  // kHashJoin (build + probe)
    2.0,  // kOrderBy (comparison sort; * log2 n)
    1.5,  // kTopN (heap; * log2 n)
    0.2,  // kLimit (pass-through with cutoff)
    0.3,  // kUnionAll (pass-through)
    0.5,  // kCachedScan (view emission over a cached table)
};
static_assert(sizeof(kBaseNsPerByte) / sizeof(double) ==
                  static_cast<int>(OpType::kCachedScan) + 1,
              "one constant per OpType");

/// Times one pass over a 4 MB buffer (ns/byte), best of three. Coarse on
/// purpose: the factor only has to capture machine speed class, and it
/// is clamped so a descheduled probe cannot skew costs by orders of
/// magnitude.
double ProbeNsPerByte() {
  constexpr size_t kWords = 1u << 19;  // 4 MB of int64
  std::vector<int64_t> buf(kWords);
  for (size_t i = 0; i < kWords; ++i) buf[i] = static_cast<int64_t>(i);
  volatile int64_t sink = 0;
  double best_ns = 0;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    int64_t sum = 0;
    for (size_t i = 0; i < kWords; ++i) sum += buf[i];
    auto t1 = std::chrono::steady_clock::now();
    sink = sink + sum;
    double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  return best_ns / static_cast<double>(kWords * sizeof(int64_t));
}

}  // namespace

CostModel::CostModel(double machine_factor)
    : machine_factor_(machine_factor) {
  for (int i = 0; i < kNumOps; ++i) {
    ns_per_byte_[i] = kBaseNsPerByte[i] * machine_factor_;
  }
}

const CostModel& CostModel::Global() {
  // Magic-static init gives once-per-process calibration: every engine
  // instance shares the same constants, which is what makes benefit
  // rankings reproducible across instances and runs.
  static const CostModel model(
      std::min(20.0, std::max(0.25, ProbeNsPerByte() / kReferenceNsPerByte)));
  return model;
}

double CostModel::OperatorMs(OpType op, int64_t rows, double row_width) const {
  if (rows <= 0) return 0;
  const double bytes = static_cast<double>(rows) * std::max(1.0, row_width);
  double ns = ns_per_byte_[static_cast<int>(op)] * bytes;
  if (op == OpType::kOrderBy || op == OpType::kTopN) {
    ns *= std::max(1.0, std::log2(static_cast<double>(rows)));
  }
  return ns * 1e-6;
}

double CostModel::SubtreeMs(
    const PlanNode& node,
    const std::map<const PlanNode*, NodeRuntime>& runtime) const {
  double total = 0;
  auto it = runtime.find(&node);
  if (it != runtime.end()) {
    total += OperatorMs(node.type(), it->second.rows_out,
                        ModelRowWidth(node.output_schema()));
  }
  for (const auto& child : node.children()) {
    total += SubtreeMs(*child, runtime);
  }
  return total;
}

double ModelRowWidth(const Schema& schema) {
  double width = 0;
  for (const Field& f : schema.fields()) {
    switch (f.type) {
      case TypeId::kBool:
        width += 1;
        break;
      case TypeId::kInt32:
      case TypeId::kDate:
        width += 4;
        break;
      case TypeId::kInt64:
      case TypeId::kDouble:
        width += 8;
        break;
      case TypeId::kString:
        width += 24;  // nominal average (header + short payload)
        break;
    }
  }
  return width;
}

}  // namespace recycledb
