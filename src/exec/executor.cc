#include "exec/executor.h"

#include "common/macros.h"
#include "common/stopwatch.h"
#include "exec/operators.h"
#include "expr/range.h"

namespace recycledb {

namespace {

/// True when a zone of `column_type` can be compared against both bounds
/// of `range` (numeric vs numeric, string vs string). Guards DatumCompare
/// from mixed-kind comparisons on ill-typed predicates, which fail later
/// in expression evaluation with a proper error.
bool HintComparable(TypeId column_type, const ColumnInterval& range) {
  auto ok = [column_type](const RangeBound& b) {
    if (b.unbounded) return true;
    TypeId vt = DatumType(b.value);
    if (column_type == TypeId::kString) return vt == TypeId::kString;
    return IsNumeric(column_type) && IsNumeric(vt);
  };
  return ok(range.lo) && ok(range.hi);
}

/// Derives zone-map prune hints for a Select directly over a (cached)
/// scan: one hint per range-conjunct column that exists in the scan's
/// output. Returns an empty vector when nothing is prunable.
std::vector<ScanOp::PruneHint> DerivePruneHints(const PlanNode& select) {
  std::vector<ScanOp::PruneHint> hints;
  const Schema& child_schema = select.child()->output_schema();
  for (const RangeSpec& spec : ExtractRangeSpecs(select.predicate(), nullptr)) {
    int pos = child_schema.IndexOf(spec.column);
    if (pos < 0) continue;
    if (!HintComparable(child_schema.field(pos).type, spec.range)) continue;
    hints.push_back({pos, spec.range});
  }
  return hints;
}

}  // namespace

OperatorPtr Executor::BuildOperator(
    const PlanPtr& plan,
    const std::map<const PlanNode*, StoreRequest>* store_requests,
    std::map<const PlanNode*, Operator*>* node_ops, const TablePins* pins) {
  RDB_CHECK_MSG(plan->bound(), "plan must be bound before execution");
  OperatorPtr op;
  switch (plan->type()) {
    case OpType::kScan: {
      TablePtr table;
      if (pins != nullptr) {
        auto it = pins->find(plan->table_name());
        if (it != pins->end()) table = it->second;
      }
      if (table == nullptr) table = catalog_->GetTable(plan->table_name());
      RDB_CHECK(table != nullptr);
      std::vector<int> idx;
      for (const auto& c : plan->scan_columns()) {
        idx.push_back(table->schema().IndexOfChecked(c));
      }
      auto scan = std::make_unique<ScanOp>(plan->output_schema(), table,
                                           std::move(idx));
      if (plan->has_scan_range()) {
        scan->SetRowWindow(plan->scan_begin(), plan->scan_end());
      }
      op = std::move(scan);
      break;
    }
    case OpType::kCachedScan: {
      const TablePtr& table = plan->cached_result();
      std::vector<int> idx;
      for (int i = 0; i < table->schema().num_fields(); ++i) idx.push_back(i);
      op = std::make_unique<ScanOp>(plan->output_schema(), table,
                                    std::move(idx));
      break;
    }
    case OpType::kFunctionScan: {
      const TableFunction* fn =
          TableFunctionRegistry::Global().Get(plan->function_name());
      RDB_CHECK(fn != nullptr);
      op = std::make_unique<FunctionScanOp>(plan->output_schema(), fn,
                                            plan->function_args(), catalog_);
      break;
    }
    case OpType::kSelect: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      // Push range conjuncts down as zone-map prune hints when the child
      // is a plain scan. Scans are never cacheable (CacheableType), so
      // `child` is the raw ScanOp, never a StoreOp wrapper.
      const OpType child_type = plan->child()->type();
      if (zone_map_pruning_ &&
          (child_type == OpType::kScan || child_type == OpType::kCachedScan) &&
          (store_requests == nullptr ||
           store_requests->find(plan->child().get()) ==
               store_requests->end())) {
        auto hints = DerivePruneHints(*plan);
        if (!hints.empty()) {
          static_cast<ScanOp*>(child.get())->SetPruneHints(std::move(hints));
        }
      }
      op = std::make_unique<FilterOp>(plan->output_schema(), std::move(child),
                                      plan->predicate());
      break;
    }
    case OpType::kProject: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      op = std::make_unique<ProjectOp>(plan->output_schema(), std::move(child),
                                       plan->projections());
      break;
    }
    case OpType::kAggregate: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      op = std::make_unique<HashAggOp>(plan->output_schema(), std::move(child),
                                       plan->group_by(), plan->aggregates());
      break;
    }
    case OpType::kHashJoin: {
      auto left = BuildOperator(plan->child(0), store_requests, node_ops, pins);
      auto right = BuildOperator(plan->child(1), store_requests, node_ops, pins);
      op = std::make_unique<HashJoinOp>(plan->output_schema(), std::move(left),
                                        std::move(right), plan->join_kind(),
                                        plan->left_keys(), plan->right_keys());
      break;
    }
    case OpType::kOrderBy: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      op = std::make_unique<SortOp>(plan->output_schema(), std::move(child),
                                    plan->sort_keys());
      break;
    }
    case OpType::kTopN: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      op = std::make_unique<TopNOp>(plan->output_schema(), std::move(child),
                                    plan->sort_keys(), plan->limit());
      break;
    }
    case OpType::kLimit: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops, pins);
      op = std::make_unique<LimitOp>(plan->output_schema(), std::move(child),
                                     plan->limit());
      break;
    }
    case OpType::kUnionAll: {
      std::vector<OperatorPtr> children;
      for (const auto& c : plan->children()) {
        children.push_back(BuildOperator(c, store_requests, node_ops, pins));
      }
      op = std::make_unique<UnionAllOp>(plan->output_schema(),
                                        std::move(children));
      break;
    }
  }
  if (node_ops != nullptr) (*node_ops)[plan.get()] = op.get();

  if (store_requests != nullptr) {
    auto it = store_requests->find(plan.get());
    if (it != store_requests->end()) {
      op = std::make_unique<StoreOp>(std::move(op), it->second);
    }
  }
  return op;
}

ExecResult Executor::Run(
    const PlanPtr& plan,
    const std::map<const PlanNode*, StoreRequest>* store_requests,
    const TablePins* pins) {
  std::map<const PlanNode*, Operator*> node_ops;
  OperatorPtr root = BuildOperator(plan, store_requests, &node_ops, pins);

  ExecResult result;
  Stopwatch sw;
  root->Open();
  result.table = MakeTable(root->output_schema());
  Batch batch;
  while (root->NextTimed(&batch)) {
    result.table->AppendBatch(batch);
  }
  root->Close();
  result.total_ms = sw.ElapsedMs();

  for (const auto& [node, op] : node_ops) {
    NodeRuntime rt;
    rt.stats = op->stats();
    rt.inclusive_ms = op->stats().inclusive_ms;
    rt.rows_out = op->stats().rows_out;
    result.blocks_scanned += op->stats().blocks_scanned;
    result.blocks_pruned += op->stats().blocks_pruned;
    result.node_runtime[node] = rt;
  }
  return result;
}

}  // namespace recycledb
