#include "exec/executor.h"

#include "common/macros.h"
#include "common/stopwatch.h"
#include "exec/operators.h"

namespace recycledb {

OperatorPtr Executor::BuildOperator(
    const PlanPtr& plan,
    const std::map<const PlanNode*, StoreRequest>* store_requests,
    std::map<const PlanNode*, Operator*>* node_ops) {
  RDB_CHECK_MSG(plan->bound(), "plan must be bound before execution");
  OperatorPtr op;
  switch (plan->type()) {
    case OpType::kScan: {
      TablePtr table = catalog_->GetTable(plan->table_name());
      RDB_CHECK(table != nullptr);
      std::vector<int> idx;
      for (const auto& c : plan->scan_columns()) {
        idx.push_back(table->schema().IndexOfChecked(c));
      }
      op = std::make_unique<ScanOp>(plan->output_schema(), table,
                                    std::move(idx));
      break;
    }
    case OpType::kCachedScan: {
      const TablePtr& table = plan->cached_result();
      std::vector<int> idx;
      for (int i = 0; i < table->schema().num_fields(); ++i) idx.push_back(i);
      op = std::make_unique<ScanOp>(plan->output_schema(), table,
                                    std::move(idx));
      break;
    }
    case OpType::kFunctionScan: {
      const TableFunction* fn =
          TableFunctionRegistry::Global().Get(plan->function_name());
      RDB_CHECK(fn != nullptr);
      op = std::make_unique<FunctionScanOp>(plan->output_schema(), fn,
                                            plan->function_args(), catalog_);
      break;
    }
    case OpType::kSelect: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<FilterOp>(plan->output_schema(), std::move(child),
                                      plan->predicate());
      break;
    }
    case OpType::kProject: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<ProjectOp>(plan->output_schema(), std::move(child),
                                       plan->projections());
      break;
    }
    case OpType::kAggregate: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<HashAggOp>(plan->output_schema(), std::move(child),
                                       plan->group_by(), plan->aggregates());
      break;
    }
    case OpType::kHashJoin: {
      auto left = BuildOperator(plan->child(0), store_requests, node_ops);
      auto right = BuildOperator(plan->child(1), store_requests, node_ops);
      op = std::make_unique<HashJoinOp>(plan->output_schema(), std::move(left),
                                        std::move(right), plan->join_kind(),
                                        plan->left_keys(), plan->right_keys());
      break;
    }
    case OpType::kOrderBy: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<SortOp>(plan->output_schema(), std::move(child),
                                    plan->sort_keys());
      break;
    }
    case OpType::kTopN: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<TopNOp>(plan->output_schema(), std::move(child),
                                    plan->sort_keys(), plan->limit());
      break;
    }
    case OpType::kLimit: {
      auto child = BuildOperator(plan->child(), store_requests, node_ops);
      op = std::make_unique<LimitOp>(plan->output_schema(), std::move(child),
                                     plan->limit());
      break;
    }
    case OpType::kUnionAll: {
      std::vector<OperatorPtr> children;
      for (const auto& c : plan->children()) {
        children.push_back(BuildOperator(c, store_requests, node_ops));
      }
      op = std::make_unique<UnionAllOp>(plan->output_schema(),
                                        std::move(children));
      break;
    }
  }
  if (node_ops != nullptr) (*node_ops)[plan.get()] = op.get();

  if (store_requests != nullptr) {
    auto it = store_requests->find(plan.get());
    if (it != store_requests->end()) {
      op = std::make_unique<StoreOp>(std::move(op), it->second);
    }
  }
  return op;
}

ExecResult Executor::Run(
    const PlanPtr& plan,
    const std::map<const PlanNode*, StoreRequest>* store_requests) {
  std::map<const PlanNode*, Operator*> node_ops;
  OperatorPtr root = BuildOperator(plan, store_requests, &node_ops);

  ExecResult result;
  Stopwatch sw;
  root->Open();
  result.table = MakeTable(root->output_schema());
  Batch batch;
  while (root->NextTimed(&batch)) {
    result.table->AppendBatch(batch);
  }
  root->Close();
  result.total_ms = sw.ElapsedMs();

  for (const auto& [node, op] : node_ops) {
    NodeRuntime rt;
    rt.stats = op->stats();
    rt.inclusive_ms = op->stats().inclusive_ms;
    rt.rows_out = op->stats().rows_out;
    result.node_runtime[node] = rt;
  }
  return result;
}

}  // namespace recycledb
