#include "exec/operators.h"

#include <algorithm>

#include "common/hash.h"
#include "common/macros.h"

namespace recycledb {

Datum PadValue(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return false;
    case TypeId::kInt32:
    case TypeId::kDate:
      return static_cast<int32_t>(0);
    case TypeId::kInt64:
      return static_cast<int64_t>(0);
    case TypeId::kDouble:
      return 0.0;
    case TypeId::kString:
      return std::string();
  }
  RDB_UNREACHABLE("bad type");
}

namespace {

// Emits O(1) views of rows [pos, pos+count) of the indexed table columns;
// the views keep the columns alive even if the table is dropped (or
// evicted from the recycler cache) mid-scan.
void EmitTableViews(const Table& table, const std::vector<int>& indices,
                    int64_t pos, int64_t count, Batch* out) {
  out->Clear();
  out->columns.reserve(indices.size());
  for (int idx : indices) {
    out->columns.push_back(ColumnVector::Slice(table.column(idx), pos, count));
  }
  out->num_rows = count;
}

}  // namespace

// ---------------------------------------------------------------------------
// ScanOp
// ---------------------------------------------------------------------------

ScanOp::ScanOp(Schema output_schema, TablePtr table,
               std::vector<int> column_indices)
    : Operator(std::move(output_schema)),
      table_(std::move(table)),
      column_indices_(std::move(column_indices)) {
  RDB_CHECK(table_ != nullptr);
}

void ScanOp::SetPruneHints(std::vector<PruneHint> hints) {
  hints_ = std::move(hints);
}

void ScanOp::SetRowWindow(int64_t begin, int64_t end) {
  RDB_CHECK_MSG(begin >= 0 && (end < 0 || end >= begin),
                "invalid scan row window");
  begin_ = begin;
  end_ = end;
}

void ScanOp::Open() {
  limit_ = end_ < 0 ? table_->num_rows() : std::min(end_, table_->num_rows());
  pos_ = std::min(begin_, limit_);
}

bool ScanOp::BlockPruned(int64_t block) const {
  // A block is skippable when any hinted column's zone excludes the
  // hint's interval (conjunctive predicate: one dead conjunct kills the
  // whole block).
  for (const PruneHint& h : hints_) {
    const ZoneMap& zm = table_->zone_map(column_indices_[h.output_column]);
    if (!zm.MayOverlap(block, h.range)) return true;
  }
  return false;
}

bool ScanOp::Next(Batch* out) {
  // pos_ stays on the table's global kZoneMapBlockRows (== kDefaultBatchRows)
  // grid: a row window whose begin is mid-block emits one short batch up to
  // the next block boundary, after which every emission is exactly one
  // zone-map block, so block pruning keeps its 1:1 block/batch mapping.
  while (pos_ < limit_) {
    int64_t block = pos_ / kZoneMapBlockRows;
    int64_t block_end = (block + 1) * kZoneMapBlockRows;
    int64_t count = std::min(block_end, limit_) - pos_;
    if (!hints_.empty() && BlockPruned(block)) {
      ++stats_.blocks_pruned;
      pos_ += count;
      continue;
    }
    ++stats_.blocks_scanned;
    EmitTableViews(*table_, column_indices_, pos_, count, out);
    pos_ += count;
    return true;
  }
  return false;
}

double ScanOp::Progress() const {
  const int64_t span = limit_ - std::min(begin_, limit_);
  if (span == 0) return 1.0;
  return static_cast<double>(pos_ - std::min(begin_, limit_)) /
         static_cast<double>(span);
}

// ---------------------------------------------------------------------------
// FunctionScanOp
// ---------------------------------------------------------------------------

FunctionScanOp::FunctionScanOp(Schema output_schema, const TableFunction* fn,
                               std::vector<Datum> args, const Catalog* catalog)
    : Operator(std::move(output_schema)),
      fn_(fn),
      args_(std::move(args)),
      catalog_(catalog) {
  RDB_CHECK(fn_ != nullptr && catalog_ != nullptr);
}

void FunctionScanOp::Open() {
  result_ = fn_->eval_fn(*catalog_, args_);
  RDB_CHECK(result_ != nullptr);
  column_indices_.clear();
  for (int i = 0; i < result_->num_columns(); ++i) column_indices_.push_back(i);
  pos_ = 0;
}

bool FunctionScanOp::Next(Batch* out) {
  if (pos_ >= result_->num_rows()) return false;
  int64_t count = std::min(kDefaultBatchRows, result_->num_rows() - pos_);
  EmitTableViews(*result_, column_indices_, pos_, count, out);
  pos_ += count;
  return true;
}

double FunctionScanOp::Progress() const {
  if (result_ == nullptr || result_->num_rows() == 0) return 1.0;
  return static_cast<double>(pos_) / static_cast<double>(result_->num_rows());
}

// ---------------------------------------------------------------------------
// FilterOp
// ---------------------------------------------------------------------------

FilterOp::FilterOp(Schema output_schema, OperatorPtr child, ExprPtr predicate)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

bool FilterOp::Next(Batch* out) {
  Batch in;
  while (child_->NextTimed(&in)) {
    std::vector<int32_t> sel =
        predicate_->EvalSelection(in, child_->output_schema());
    if (sel.empty()) continue;
    if (static_cast<int64_t>(sel.size()) == in.num_rows) {
      // Every row passed: forward the input batch untouched (zero copy).
      *out = std::move(in);
      return true;
    }
    InitBatch(output_schema_, out);
    for (size_t c = 0; c < in.columns.size(); ++c) {
      out->columns[c]->AppendSelected(*in.columns[c], sel);
    }
    out->num_rows = static_cast<int64_t>(sel.size());
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ProjectOp
// ---------------------------------------------------------------------------

ProjectOp::ProjectOp(Schema output_schema, OperatorPtr child,
                     std::vector<ProjItem> items)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      items_(std::move(items)) {}

bool ProjectOp::Next(Batch* out) {
  Batch in;
  if (!child_->NextTimed(&in)) return false;
  out->Clear();
  out->columns.reserve(items_.size());
  for (const auto& item : items_) {
    // Bare kColumnRef items forward the input column untouched (Eval
    // returns the batch's ColumnPtr, view or owned, without copying).
    out->columns.push_back(item.expr->Eval(in, child_->output_schema()));
  }
  out->num_rows = in.num_rows;
  return true;
}

// ---------------------------------------------------------------------------
// LimitOp
// ---------------------------------------------------------------------------

LimitOp::LimitOp(Schema output_schema, OperatorPtr child, int64_t n)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      remaining_(n),
      n_(n) {}

bool LimitOp::Next(Batch* out) {
  if (remaining_ <= 0) return false;
  Batch in;
  if (!child_->NextTimed(&in)) return false;
  int64_t take = std::min(remaining_, in.num_rows);
  if (take == in.num_rows) {
    *out = std::move(in);
  } else {
    // Truncate by slicing the input columns (zero copy).
    out->Clear();
    out->columns.reserve(in.columns.size());
    for (const auto& c : in.columns) {
      out->columns.push_back(ColumnVector::Slice(c, 0, take));
    }
    out->num_rows = take;
  }
  remaining_ -= take;
  return true;
}

double LimitOp::Progress() const {
  if (n_ <= 0) return 1.0;
  return static_cast<double>(n_ - remaining_) / static_cast<double>(n_);
}

// ---------------------------------------------------------------------------
// UnionAllOp
// ---------------------------------------------------------------------------

UnionAllOp::UnionAllOp(Schema output_schema, std::vector<OperatorPtr> children)
    : Operator(std::move(output_schema)), children_(std::move(children)) {}

void UnionAllOp::Open() {
  for (auto& c : children_) c->Open();
  current_ = 0;
}

bool UnionAllOp::Next(Batch* out) {
  while (current_ < children_.size()) {
    if (children_[current_]->NextTimed(out)) return true;
    ++current_;
  }
  return false;
}

void UnionAllOp::Close() {
  for (auto& c : children_) c->Close();
}

double UnionAllOp::Progress() const {
  if (children_.empty()) return 1.0;
  double sum = 0;
  for (size_t i = 0; i < children_.size(); ++i) {
    sum += i < current_ ? 1.0 : children_[i]->Progress();
  }
  return sum / static_cast<double>(children_.size());
}

// ---------------------------------------------------------------------------
// Sort helpers
// ---------------------------------------------------------------------------

namespace {

// Compares rows a and b of `table` on `keys` (column indexes + direction).
struct RowComparator {
  const Table* table;
  const std::vector<int>* key_idx;
  const std::vector<SortKey>* keys;

  bool operator()(int64_t a, int64_t b) const {
    for (size_t k = 0; k < key_idx->size(); ++k) {
      const ColumnVector& col = *table->column((*key_idx)[k]);
      int c = DatumCompare(col.GetDatum(a), col.GetDatum(b));
      if (c != 0) return (*keys)[k].ascending ? c < 0 : c > 0;
    }
    return a < b;  // stable tie-break
  }
};

std::vector<int> ResolveKeys(const Schema& schema,
                             const std::vector<SortKey>& keys) {
  std::vector<int> idx;
  idx.reserve(keys.size());
  for (const auto& k : keys) idx.push_back(schema.IndexOfChecked(k.column));
  return idx;
}

// Emits rows `order[pos..pos+batch)` of `table` into `out`.
bool EmitOrdered(const Schema& schema, const Table& table,
                 const std::vector<int64_t>& order, int64_t* pos, Batch* out) {
  int64_t total = static_cast<int64_t>(order.size());
  if (*pos >= total) return false;
  int64_t count = std::min(kDefaultBatchRows, total - *pos);
  InitBatch(schema, out);
  std::vector<int32_t> sel(count);
  for (int64_t i = 0; i < count; ++i) {
    sel[i] = static_cast<int32_t>(order[*pos + i]);
  }
  for (int c = 0; c < table.num_columns(); ++c) {
    out->columns[c]->AppendSelected(*table.column(c), sel);
  }
  out->num_rows = count;
  *pos += count;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// SortOp
// ---------------------------------------------------------------------------

SortOp::SortOp(Schema output_schema, OperatorPtr child,
               std::vector<SortKey> keys)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      keys_(std::move(keys)) {}

void SortOp::Open() {
  child_->Open();
  consumed_ = false;
  pos_ = 0;
}

void SortOp::Consume() {
  buffer_ = MakeTable(output_schema_);
  Batch in;
  while (child_->NextTimed(&in)) buffer_->AppendBatch(in);
  order_.resize(buffer_->num_rows());
  for (int64_t i = 0; i < buffer_->num_rows(); ++i) order_[i] = i;
  std::vector<int> key_idx = ResolveKeys(output_schema_, keys_);
  RowComparator cmp{buffer_.get(), &key_idx, &keys_};
  std::sort(order_.begin(), order_.end(), cmp);
  consumed_ = true;
}

bool SortOp::Next(Batch* out) {
  if (!consumed_) Consume();
  return EmitOrdered(output_schema_, *buffer_, order_, &pos_, out);
}

double SortOp::Progress() const {
  if (!consumed_) return 0.0;
  if (order_.empty()) return 1.0;
  return static_cast<double>(pos_) / static_cast<double>(order_.size());
}

// ---------------------------------------------------------------------------
// TopNOp
// ---------------------------------------------------------------------------

TopNOp::TopNOp(Schema output_schema, OperatorPtr child,
               std::vector<SortKey> keys, int64_t n)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      keys_(std::move(keys)),
      n_(n) {
  RDB_CHECK(n_ > 0);
}

void TopNOp::Open() {
  child_->Open();
  consumed_ = false;
  pos_ = 0;
}

void TopNOp::Consume() {
  candidates_ = MakeTable(output_schema_);
  std::vector<int> key_idx = ResolveKeys(output_schema_, keys_);

  // Max-heap of row ids into candidates_: the root is the *worst* of the
  // currently-best N rows, so an incoming better row replaces it.
  std::vector<int64_t> heap;
  heap.reserve(n_ + 1);
  RowComparator less{candidates_.get(), &key_idx, &keys_};
  auto heap_cmp = [&](int64_t a, int64_t b) { return less(a, b); };

  Batch in;
  while (child_->NextTimed(&in)) {
    for (int64_t r = 0; r < in.num_rows; ++r) {
      // Append the row, then keep it only if it improves the heap.
      std::vector<Datum> row;
      row.reserve(in.columns.size());
      for (const auto& c : in.columns) row.push_back(c->GetDatum(r));
      candidates_->AppendRow(row);
      int64_t rid = candidates_->num_rows() - 1;
      if (static_cast<int64_t>(heap.size()) < n_) {
        heap.push_back(rid);
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      } else if (less(rid, heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), heap_cmp);
        heap.back() = rid;
        std::push_heap(heap.begin(), heap.end(), heap_cmp);
      }
      // Compact the candidate pool when it has grown well past the heap.
      if (candidates_->num_rows() > 4 * n_ + 1024) {
        TablePtr live = MakeTable(output_schema_);
        std::vector<int64_t> remap(heap.size());
        for (size_t h = 0; h < heap.size(); ++h) {
          std::vector<Datum> lr;
          lr.reserve(candidates_->num_columns());
          for (int c = 0; c < candidates_->num_columns(); ++c) {
            lr.push_back(candidates_->Get(heap[h], c));
          }
          live->AppendRow(lr);
          remap[h] = static_cast<int64_t>(h);
        }
        candidates_ = live;
        heap = remap;
        less.table = candidates_.get();  // must precede make_heap
        std::make_heap(heap.begin(), heap.end(), heap_cmp);
      }
    }
  }

  order_ = heap;
  RowComparator final_cmp{candidates_.get(), &key_idx, &keys_};
  std::sort(order_.begin(), order_.end(), final_cmp);
  consumed_ = true;
}

bool TopNOp::Next(Batch* out) {
  if (!consumed_) Consume();
  return EmitOrdered(output_schema_, *candidates_, order_, &pos_, out);
}

double TopNOp::Progress() const {
  if (!consumed_) return 0.0;
  if (order_.empty()) return 1.0;
  return static_cast<double>(pos_) / static_cast<double>(order_.size());
}

// ---------------------------------------------------------------------------
// HashAggOp
// ---------------------------------------------------------------------------

HashAggOp::HashAggOp(Schema output_schema, OperatorPtr child,
                     std::vector<std::string> group_by,
                     std::vector<AggItem> aggs)
    : Operator(std::move(output_schema)),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  const Schema& in = child_->output_schema();
  for (const auto& g : group_by_) group_idx_.push_back(in.IndexOfChecked(g));
  for (const auto& a : aggs_) agg_arg_types_.push_back(a.arg->DeduceType(in));
}

void HashAggOp::Open() {
  child_->Open();
  consumed_ = false;
  pos_ = 0;
  num_groups_ = 0;
  group_map_.clear();
  states_.assign(aggs_.size(), {});
}

int64_t HashAggOp::FindOrCreateGroup(const Batch& /*batch*/,
                                     const std::vector<ColumnPtr>& key_cols,
                                     int64_t row, uint64_t hash) {
  auto range = group_map_.equal_range(hash);
  for (auto it = range.first; it != range.second; ++it) {
    int64_t g = it->second;
    bool equal = true;
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (!group_keys_->column(static_cast<int>(k))
               ->RowEquals(g, *key_cols[k], row)) {
        equal = false;
        break;
      }
    }
    if (equal) return g;
  }
  // New group: append the key row.
  std::vector<Datum> key_row;
  key_row.reserve(key_cols.size());
  for (const auto& kc : key_cols) key_row.push_back(kc->GetDatum(row));
  group_keys_->AppendRow(key_row);
  int64_t g = num_groups_++;
  group_map_.emplace(hash, g);
  for (auto& s : states_) s.emplace_back();
  return g;
}

void HashAggOp::Consume() {
  // Key table schema: the group-by prefix of the output schema.
  std::vector<Field> key_fields;
  for (size_t k = 0; k < group_by_.size(); ++k) {
    key_fields.push_back(output_schema_.field(static_cast<int>(k)));
  }
  group_keys_ = MakeTable(Schema(std::move(key_fields)));

  const Schema& in = child_->output_schema();
  const bool global = group_by_.empty();
  if (global) {
    // Single implicit group.
    num_groups_ = 1;
    for (auto& s : states_) s.emplace_back();
  }

  Batch batch;
  while (child_->NextTimed(&batch)) {
    // Evaluate group keys and aggregate arguments once per batch.
    std::vector<ColumnPtr> key_cols;
    key_cols.reserve(group_idx_.size());
    for (int gi : group_idx_) key_cols.push_back(batch.columns[gi]);
    std::vector<ColumnPtr> arg_cols;
    arg_cols.reserve(aggs_.size());
    for (const auto& a : aggs_) arg_cols.push_back(a.arg->Eval(batch, in));

    for (int64_t r = 0; r < batch.num_rows; ++r) {
      int64_t g = 0;
      if (!global) {
        uint64_t h = 0x9e3779b97f4a7c15ULL;
        for (const auto& kc : key_cols) h = kc->HashRow(r, h);
        g = FindOrCreateGroup(batch, key_cols, r, h);
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        AggState& st = states_[a][g];
        const ColumnVector& arg = *arg_cols[a];
        switch (aggs_[a].fn) {
          case AggFunc::kSum:
          case AggFunc::kAvg:
            if (agg_arg_types_[a] == TypeId::kDouble) {
              st.dsum += arg.Raw<double>()[r];
            } else {
              int64_t v = agg_arg_types_[a] == TypeId::kInt64
                              ? arg.Raw<int64_t>()[r]
                              : arg.Raw<int32_t>()[r];
              st.isum += v;
              st.dsum += static_cast<double>(v);
            }
            ++st.count;
            break;
          case AggFunc::kCount:
            ++st.count;
            break;
          case AggFunc::kMin:
          case AggFunc::kMax: {
            Datum v = arg.GetDatum(r);
            if (st.count == 0) {
              st.min_v = v;
              st.max_v = v;
            } else {
              if (DatumCompare(v, st.min_v) < 0) st.min_v = v;
              if (DatumCompare(v, st.max_v) > 0) st.max_v = v;
            }
            ++st.count;
            break;
          }
        }
      }
    }
  }
  consumed_ = true;
}

bool HashAggOp::Next(Batch* out) {
  if (!consumed_) Consume();
  if (pos_ >= num_groups_) return false;
  int64_t count = std::min(kDefaultBatchRows, num_groups_ - pos_);
  InitBatch(output_schema_, out);
  const int ng = static_cast<int>(group_by_.size());
  // Group key columns.
  for (int k = 0; k < ng; ++k) {
    out->columns[k]->AppendRange(*group_keys_->column(k), pos_, count);
  }
  // Aggregate columns.
  for (size_t a = 0; a < aggs_.size(); ++a) {
    ColumnVector& col = *out->columns[ng + static_cast<int>(a)];
    for (int64_t g = pos_; g < pos_ + count; ++g) {
      const AggState& st = states_[a][g];
      switch (aggs_[a].fn) {
        case AggFunc::kSum:
          if (col.type() == TypeId::kDouble) {
            col.Append(st.dsum);
          } else {
            col.Append(st.isum);
          }
          break;
        case AggFunc::kCount:
          col.Append(st.count);
          break;
        case AggFunc::kAvg:
          col.Append(st.count == 0 ? 0.0 : st.dsum / st.count);
          break;
        case AggFunc::kMin:
          col.Append(st.count == 0 ? PadValue(col.type()) : st.min_v);
          break;
        case AggFunc::kMax:
          col.Append(st.count == 0 ? PadValue(col.type()) : st.max_v);
          break;
      }
    }
  }
  out->num_rows = count;
  pos_ += count;
  return true;
}

double HashAggOp::Progress() const {
  if (!consumed_) return 0.0;
  if (num_groups_ == 0) return 1.0;
  return static_cast<double>(pos_) / static_cast<double>(num_groups_);
}

// ---------------------------------------------------------------------------
// HashJoinOp
// ---------------------------------------------------------------------------

HashJoinOp::HashJoinOp(Schema output_schema, OperatorPtr left,
                       OperatorPtr right, JoinKind kind,
                       std::vector<std::string> left_keys,
                       std::vector<std::string> right_keys)
    : Operator(std::move(output_schema)),
      left_(std::move(left)),
      right_(std::move(right)),
      kind_(kind) {
  for (const auto& k : left_keys) {
    left_key_idx_.push_back(left_->output_schema().IndexOfChecked(k));
  }
  for (const auto& k : right_keys) {
    right_key_idx_.push_back(right_->output_schema().IndexOfChecked(k));
  }
}

void HashJoinOp::Open() {
  left_->Open();
  right_->Open();
  built_ = false;
}

void HashJoinOp::Build() {
  build_table_ = MakeTable(right_->output_schema());
  Batch in;
  while (right_->NextTimed(&in)) build_table_->AppendBatch(in);
  for (int64_t r = 0; r < build_table_->num_rows(); ++r) {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (int ki : right_key_idx_) {
      h = build_table_->column(ki)->HashRow(r, h);
    }
    build_map_.emplace(h, r);
  }
  built_ = true;
}

bool HashJoinOp::Next(Batch* out) {
  if (!built_) Build();
  Batch in;
  const int ncols_left = left_->output_schema().num_fields();
  const bool emit_right = kind_ == JoinKind::kInner ||
                          kind_ == JoinKind::kLeftOuter ||
                          kind_ == JoinKind::kSingle;
  while (left_->NextTimed(&in)) {
    // Gather (probe_row, build_row) pairs; build_row = -1 pads.
    std::vector<int32_t> probe_sel;
    std::vector<int64_t> build_sel;
    for (int64_t r = 0; r < in.num_rows; ++r) {
      uint64_t h = 0x9e3779b97f4a7c15ULL;
      for (int ki : left_key_idx_) h = in.columns[ki]->HashRow(r, h);
      int match_count = 0;
      auto range = build_map_.equal_range(h);
      for (auto it = range.first; it != range.second; ++it) {
        int64_t br = it->second;
        bool equal = true;
        for (size_t k = 0; k < left_key_idx_.size(); ++k) {
          if (!in.columns[left_key_idx_[k]]->RowEquals(
                  r, *build_table_->column(right_key_idx_[k]), br)) {
            equal = false;
            break;
          }
        }
        if (!equal) continue;
        ++match_count;
        if (kind_ == JoinKind::kSemi) break;  // existence is enough
        if (kind_ == JoinKind::kAnti) continue;
        probe_sel.push_back(static_cast<int32_t>(r));
        build_sel.push_back(br);
        RDB_CHECK_MSG(kind_ != JoinKind::kSingle || match_count <= 1,
                      "kSingle join found multiple matches");
      }
      switch (kind_) {
        case JoinKind::kSemi:
          if (match_count > 0) probe_sel.push_back(static_cast<int32_t>(r));
          break;
        case JoinKind::kAnti:
          if (match_count == 0) probe_sel.push_back(static_cast<int32_t>(r));
          break;
        case JoinKind::kLeftOuter:
          if (match_count == 0) {
            probe_sel.push_back(static_cast<int32_t>(r));
            build_sel.push_back(-1);
          }
          break;
        default:
          break;
      }
    }
    if (probe_sel.empty()) continue;

    InitBatch(output_schema_, out);
    for (int c = 0; c < ncols_left; ++c) {
      out->columns[c]->AppendSelected(*in.columns[c], probe_sel);
    }
    if (emit_right) {
      const Schema& rs = right_->output_schema();
      for (int c = 0; c < rs.num_fields(); ++c) {
        ColumnVector& dst = *out->columns[ncols_left + c];
        const ColumnVector& src = *build_table_->column(c);
        for (int64_t br : build_sel) {
          if (br < 0) {
            dst.Append(PadValue(rs.field(c).type));
          } else {
            dst.AppendRange(src, br, 1);
          }
        }
      }
    }
    out->num_rows = static_cast<int64_t>(probe_sel.size());
    return true;
  }
  return false;
}

void HashJoinOp::Close() {
  left_->Close();
  right_->Close();
}

}  // namespace recycledb
