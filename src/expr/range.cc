#include "expr/range.h"

#include <map>
#include <variant>

namespace recycledb {

namespace {

/// Classifies `conjunct` as a range comparison between one column and one
/// literal. Normalizes `lit op col` to the column-first form.
bool AsRangeConjunct(const ExprPtr& conjunct, std::string* column,
                     bool* is_lower, RangeBound* bound) {
  if (conjunct->kind() != ExprKind::kCompare) return false;
  CompareOp op = conjunct->compare_op();
  if (op == CompareOp::kEq || op == CompareOp::kNe) return false;
  const ExprPtr& l = conjunct->children()[0];
  const ExprPtr& r = conjunct->children()[1];
  const Expr* col = nullptr;
  const Expr* lit = nullptr;
  bool flipped = false;
  if (l->kind() == ExprKind::kColumnRef && r->kind() == ExprKind::kLiteral) {
    col = l.get();
    lit = r.get();
  } else if (l->kind() == ExprKind::kLiteral &&
             r->kind() == ExprKind::kColumnRef) {
    col = r.get();
    lit = l.get();
    flipped = true;  // `lit op col` reads as `col op' lit` with op mirrored
  } else {
    return false;
  }
  if (std::holds_alternative<std::monostate>(lit->literal()) ||
      std::holds_alternative<bool>(lit->literal())) {
    return false;  // no ordering worth stitching on
  }
  if (flipped) {
    switch (op) {
      case CompareOp::kLt: op = CompareOp::kGt; break;
      case CompareOp::kLe: op = CompareOp::kGe; break;
      case CompareOp::kGt: op = CompareOp::kLt; break;
      case CompareOp::kGe: op = CompareOp::kLe; break;
      default: return false;
    }
  }
  *column = col->column_name();
  bound->unbounded = false;
  bound->value = lit->literal();
  bound->inclusive = op == CompareOp::kLe || op == CompareOp::kGe;
  *is_lower = op == CompareOp::kGt || op == CompareOp::kGe;
  return true;
}

}  // namespace

std::vector<RangeSpec> ExtractRangeSpecs(const ExprPtr& pred,
                                         const NameMap* mapping) {
  std::vector<RangeSpec> out;
  if (pred == nullptr) return out;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(pred);

  // Pass 1: fold each column's range conjuncts into one interval and
  // remember which conjunct positions contributed to which column.
  struct PerColumn {
    ColumnInterval range;
    std::vector<size_t> positions;
  };
  std::map<std::string, PerColumn> ranged;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    std::string column;
    bool is_lower = false;
    RangeBound bound;
    if (!AsRangeConjunct(conjuncts[i], &column, &is_lower, &bound)) continue;
    PerColumn& pc = ranged[column];
    if (is_lower) {
      pc.range.lo = TighterLo(pc.range.lo, bound);
    } else {
      pc.range.hi = TighterHi(pc.range.hi, bound);
    }
    pc.positions.push_back(i);
  }

  // Pass 2: one spec per ranged column; everything else is "others".
  for (auto& [column, pc] : ranged) {
    if (IntervalEmpty(pc.range)) continue;  // contradictory predicate
    RangeSpec spec;
    spec.column = column;
    if (mapping != nullptr) {
      auto it = mapping->find(column);
      spec.mapped_column = it == mapping->end() ? column : it->second;
    } else {
      spec.mapped_column = column;
    }
    spec.range = pc.range;
    std::set<size_t> mine(pc.positions.begin(), pc.positions.end());
    for (size_t i = 0; i < conjuncts.size(); ++i) {
      if (mine.count(i) > 0) continue;
      spec.others.push_back(conjuncts[i]);
      spec.other_fps.insert(conjuncts[i]->Fingerprint(mapping));
    }
    out.push_back(std::move(spec));
  }
  return out;
}

}  // namespace recycledb
