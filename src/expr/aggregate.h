// Aggregate function specifications and decomposition rules.
#pragma once

#include <string>
#include <vector>

#include "expr/expression.h"

namespace recycledb {

/// Supported aggregate functions.
enum class AggFunc : uint8_t {
  kSum,
  kCount,      // count(arg); arg may be a constant 1 for COUNT(*)
  kMin,
  kMax,
  kAvg,
};

const char* AggFuncName(AggFunc fn);

/// One aggregate in a GROUP BY: fn(arg) AS out_name.
struct AggItem {
  AggFunc fn;
  ExprPtr arg;          // input expression (never null; use Literal(1) for *)
  std::string out_name;

  /// Canonical rendering under a name mapping (for plan fingerprints).
  std::string Fingerprint(const NameMap* mapping) const;
};

/// Result value type of an aggregate over an input of type `input`.
/// sum(int)->int64, sum(double)->double, count->int64, avg->double,
/// min/max preserve the input type.
TypeId AggResultType(AggFunc fn, TypeId input);

/// Decomposition for re-aggregation (the paper's "standard aggregate
/// calculation decomposition rules" used by cube caching):
/// a query aggregate α is computed from partial aggregates α' as α''(α'):
///   sum   -> sum of partial sums
///   count -> sum of partial counts
///   min   -> min of partial mins
///   max   -> max of partial maxs
///   avg   -> sum(partial sums) / sum(partial counts)
///
/// `partials` receives the α' items to compute in the inner aggregation,
/// and the returned expression (over the partials' out_names) computes the
/// final value; `refn` receives the re-aggregation functions to apply to
/// each partial in the outer aggregation before the final expression.
struct AggDecomposition {
  /// Partial aggregates to compute in the inner (extended) aggregation.
  std::vector<AggItem> partials;
  /// Re-aggregation of each partial in the outer aggregation
  /// (positionally matches `partials`).
  std::vector<AggFunc> reaggs;
  /// Expression over the re-aggregated partials producing the final value;
  /// references partials by out_name. Null means "the single re-aggregated
  /// partial is the final value".
  ExprPtr final_expr;
};

/// Decomposes `item` for two-level aggregation. `partial_prefix` is used
/// to build unique partial output names.
AggDecomposition DecomposeAggregate(const AggItem& item,
                                    const std::string& partial_prefix);

}  // namespace recycledb
