#include "expr/aggregate.h"

#include "common/macros.h"

namespace recycledb {

const char* AggFuncName(AggFunc fn) {
  switch (fn) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggItem::Fingerprint(const NameMap* mapping) const {
  // out_name is a *new* name assigned by the node; it is not part of the
  // parameter fingerprint (the graph canonicalizes assigned names).
  return std::string(AggFuncName(fn)) + "(" + arg->Fingerprint(mapping) + ")";
}

TypeId AggResultType(AggFunc fn, TypeId input) {
  switch (fn) {
    case AggFunc::kSum:
      return input == TypeId::kDouble ? TypeId::kDouble : TypeId::kInt64;
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kAvg:
      return TypeId::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return input;
  }
  RDB_UNREACHABLE("bad agg func");
}

AggDecomposition DecomposeAggregate(const AggItem& item,
                                    const std::string& partial_prefix) {
  AggDecomposition out;
  switch (item.fn) {
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax: {
      AggItem partial = item;
      partial.out_name = partial_prefix + "_p0";
      out.partials = {partial};
      out.reaggs = {item.fn == AggFunc::kSum ? AggFunc::kSum : item.fn};
      out.final_expr = nullptr;
      return out;
    }
    case AggFunc::kCount: {
      AggItem partial = item;
      partial.out_name = partial_prefix + "_p0";
      out.partials = {partial};
      out.reaggs = {AggFunc::kSum};  // count of union = sum of counts
      out.final_expr = nullptr;
      return out;
    }
    case AggFunc::kAvg: {
      AggItem psum{AggFunc::kSum, item.arg, partial_prefix + "_psum"};
      AggItem pcnt{AggFunc::kCount, item.arg, partial_prefix + "_pcnt"};
      out.partials = {psum, pcnt};
      out.reaggs = {AggFunc::kSum, AggFunc::kSum};
      // Multiply by 1.0 so the division is floating-point even when the
      // partial sum is integral.
      out.final_expr = Expr::Arith(
          ArithOp::kDiv,
          Expr::Arith(ArithOp::kMul, Expr::Column(psum.out_name),
                      Expr::Literal(1.0)),
          Expr::Column(pcnt.out_name));
      return out;
    }
  }
  RDB_UNREACHABLE("bad agg func");
}

}  // namespace recycledb
