#include "expr/expression.h"

#include <unordered_set>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"

namespace recycledb {

ExprPtr Expr::Column(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kColumnRef;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Literal(Datum value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLiteral;
  e->literal_ = std::move(value);
  return e;
}

ExprPtr Expr::Param(std::string name) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kParam;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCompare;
  e->compare_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::And(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kAnd;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Or(ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kOr;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Not(ExprPtr c) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLogical;
  e->logical_op_ = LogicalOp::kNot;
  e->children_ = {std::move(c)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr l, ExprPtr r) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kArith;
  e->arith_op_ = op;
  e->children_ = {std::move(l), std::move(r)};
  return e;
}

ExprPtr Expr::Func(std::string name, std::vector<ExprPtr> args) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kFunc;
  e->name_ = std::move(name);
  e->children_ = std::move(args);
  return e;
}

ExprPtr Expr::Case(ExprPtr cond, ExprPtr then_e, ExprPtr else_e) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kCase;
  e->children_ = {std::move(cond), std::move(then_e), std::move(else_e)};
  return e;
}

ExprPtr Expr::In(ExprPtr v, std::vector<Datum> values) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kInList;
  e->in_values_ = std::move(values);
  e->children_ = {std::move(v)};
  return e;
}

ExprPtr Expr::Like(LikeKind kind, ExprPtr v, std::string pattern) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kLike;
  e->like_kind_ = kind;
  e->name_ = std::move(pattern);
  e->children_ = {std::move(v)};
  return e;
}

TypeId Expr::DeduceType(const Schema& input) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      int idx = input.IndexOf(name_);
      RDB_CHECK_MSG(idx >= 0, ("unbound column: " + name_).c_str());
      return input.field(idx).type;
    }
    case ExprKind::kLiteral:
      return DatumType(literal_);
    case ExprKind::kParam:
      RDB_UNREACHABLE(("unbound parameter: $" + name_).c_str());
    case ExprKind::kCompare:
    case ExprKind::kLogical:
    case ExprKind::kInList:
    case ExprKind::kLike:
      return TypeId::kBool;
    case ExprKind::kArith: {
      TypeId l = children_[0]->DeduceType(input);
      TypeId r = children_[1]->DeduceType(input);
      RDB_CHECK_MSG(IsNumeric(l) && IsNumeric(r), "arith on non-numeric");
      if (l == TypeId::kDouble || r == TypeId::kDouble) return TypeId::kDouble;
      if (l == TypeId::kInt64 || r == TypeId::kInt64) return TypeId::kInt64;
      return TypeId::kInt32;
    }
    case ExprKind::kFunc: {
      if (name_ == "year" || name_ == "month") return TypeId::kInt32;
      if (name_ == "bin") return TypeId::kInt64;
      RDB_UNREACHABLE(("unknown function: " + name_).c_str());
    }
    case ExprKind::kCase: {
      TypeId t = children_[1]->DeduceType(input);
      TypeId e = children_[2]->DeduceType(input);
      if (t == e) return t;
      RDB_CHECK_MSG(IsNumeric(t) && IsNumeric(e), "CASE branch type mismatch");
      if (t == TypeId::kDouble || e == TypeId::kDouble) return TypeId::kDouble;
      return TypeId::kInt64;
    }
  }
  RDB_UNREACHABLE("bad expr kind");
}

void Expr::CollectColumns(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    out->insert(name_);
    return;
  }
  for (const auto& c : children_) c->CollectColumns(out);
}

void Expr::CollectParams(std::set<std::string>* out) const {
  if (kind_ == ExprKind::kParam) {
    out->insert(name_);
    return;
  }
  for (const auto& c : children_) c->CollectParams(out);
}

bool Expr::HasParams() const {
  if (kind_ == ExprKind::kParam) return true;
  for (const auto& c : children_) {
    if (c->HasParams()) return true;
  }
  return false;
}

ExprPtr Expr::SubstituteParams(const ParamMap& params,
                               std::vector<std::string>* missing) const {
  if (kind_ == ExprKind::kParam) {
    auto it = params.find(name_);
    if (it == params.end()) {
      if (missing != nullptr) missing->push_back(name_);
      return shared_from_this();
    }
    return Literal(it->second);
  }
  if (!HasParams()) return shared_from_this();
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  for (auto& c : e->children_) c = c->SubstituteParams(params, missing);
  return e;
}

std::string Expr::Fingerprint(const NameMap* mapping,
                              bool anonymize_columns) const {
  switch (kind_) {
    case ExprKind::kColumnRef: {
      if (anonymize_columns) return "c:?";
      if (mapping != nullptr) {
        auto it = mapping->find(name_);
        if (it != mapping->end()) return "c:" + it->second;
      }
      return "c:" + name_;
    }
    case ExprKind::kLiteral:
      return "l:" + DatumToString(literal_);
    case ExprKind::kParam:
      return "$" + name_;
    case ExprKind::kCompare: {
      static const char* names[] = {"=", "!=", "<", "<=", ">", ">="};
      return StrFormat("(%s %s %s)",
                       names[static_cast<int>(compare_op_)],
                       children_[0]->Fingerprint(mapping, anonymize_columns).c_str(),
                       children_[1]->Fingerprint(mapping, anonymize_columns).c_str());
    }
    case ExprKind::kLogical: {
      static const char* names[] = {"and", "or", "not"};
      std::string out = "(";
      out += names[static_cast<int>(logical_op_)];
      for (const auto& c : children_) {
        out += " ";
        out += c->Fingerprint(mapping, anonymize_columns);
      }
      out += ")";
      return out;
    }
    case ExprKind::kArith: {
      static const char* names[] = {"+", "-", "*", "/"};
      return StrFormat("(%s %s %s)",
                       names[static_cast<int>(arith_op_)],
                       children_[0]->Fingerprint(mapping, anonymize_columns).c_str(),
                       children_[1]->Fingerprint(mapping, anonymize_columns).c_str());
    }
    case ExprKind::kFunc: {
      std::string out = "(" + name_;
      for (const auto& c : children_) {
        out += " ";
        out += c->Fingerprint(mapping, anonymize_columns);
      }
      out += ")";
      return out;
    }
    case ExprKind::kCase:
      return StrFormat("(case %s %s %s)",
                       children_[0]->Fingerprint(mapping, anonymize_columns).c_str(),
                       children_[1]->Fingerprint(mapping, anonymize_columns).c_str(),
                       children_[2]->Fingerprint(mapping, anonymize_columns).c_str());
    case ExprKind::kInList: {
      std::string out = "(in " + children_[0]->Fingerprint(mapping, anonymize_columns);
      for (const auto& v : in_values_) {
        out += " ";
        out += DatumToString(v);
      }
      out += ")";
      return out;
    }
    case ExprKind::kLike: {
      static const char* names[] = {"contains", "prefix", "suffix",
                                    "notcontains"};
      return StrFormat("(%s %s '%s')",
                       names[static_cast<int>(like_kind_)],
                       children_[0]->Fingerprint(mapping, anonymize_columns).c_str(),
                       name_.c_str());
    }
  }
  RDB_UNREACHABLE("bad expr kind");
}

ExprPtr Expr::Rename(const NameMap& mapping) const {
  auto e = std::shared_ptr<Expr>(new Expr(*this));
  if (kind_ == ExprKind::kColumnRef) {
    auto it = mapping.find(name_);
    if (it != mapping.end()) e->name_ = it->second;
    return e;
  }
  for (auto& c : e->children_) c = c->Rename(mapping);
  return e;
}

std::string Expr::DisplayString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return name_;
    case ExprKind::kLiteral:
      return DatumToString(literal_);
    case ExprKind::kParam:
      return "$" + name_;
    case ExprKind::kCompare: {
      static const char* names[] = {"=", "!=", "<", "<=", ">", ">="};
      return StrFormat("(%s %s %s)", children_[0]->DisplayString().c_str(),
                       names[static_cast<int>(compare_op_)],
                       children_[1]->DisplayString().c_str());
    }
    case ExprKind::kLogical: {
      if (logical_op_ == LogicalOp::kNot) {
        return "(NOT " + children_[0]->DisplayString() + ")";
      }
      const char* op = logical_op_ == LogicalOp::kAnd ? " AND " : " OR ";
      return "(" + children_[0]->DisplayString() + op +
             children_[1]->DisplayString() + ")";
    }
    case ExprKind::kArith: {
      static const char* names[] = {"+", "-", "*", "/"};
      return StrFormat("(%s %s %s)", children_[0]->DisplayString().c_str(),
                       names[static_cast<int>(arith_op_)],
                       children_[1]->DisplayString().c_str());
    }
    case ExprKind::kFunc: {
      std::string out = name_ + "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += ", ";
        out += children_[i]->DisplayString();
      }
      return out + ")";
    }
    case ExprKind::kCase:
      return "CASE WHEN " + children_[0]->DisplayString() + " THEN " +
             children_[1]->DisplayString() + " ELSE " +
             children_[2]->DisplayString() + " END";
    case ExprKind::kInList: {
      std::string out = children_[0]->DisplayString() + " IN (";
      for (size_t i = 0; i < in_values_.size(); ++i) {
        if (i > 0) out += ", ";
        out += DatumToString(in_values_[i]);
      }
      return out + ")";
    }
    case ExprKind::kLike: {
      switch (like_kind_) {
        case LikeKind::kContains:
          return children_[0]->DisplayString() + " LIKE '%" + name_ + "%'";
        case LikeKind::kPrefix:
          return children_[0]->DisplayString() + " LIKE '" + name_ + "%'";
        case LikeKind::kSuffix:
          return children_[0]->DisplayString() + " LIKE '%" + name_ + "'";
        case LikeKind::kNotContains:
          return children_[0]->DisplayString() + " NOT LIKE '%" + name_ +
                 "%'";
      }
      RDB_UNREACHABLE("bad like kind");
    }
  }
  RDB_UNREACHABLE("bad expr kind");
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

namespace {

// Reads row r of `col` as double (numeric types only). The span accessors
// resolve views, so the interpreter is oblivious to view vs. owned storage.
inline double AsDouble(const ColumnVector& col, int64_t r) {
  switch (col.type()) {
    case TypeId::kBool:
      return col.Raw<uint8_t>()[r];
    case TypeId::kInt32:
    case TypeId::kDate:
      return col.Raw<int32_t>()[r];
    case TypeId::kInt64:
      return static_cast<double>(col.Raw<int64_t>()[r]);
    case TypeId::kDouble:
      return col.Raw<double>()[r];
    default:
      RDB_UNREACHABLE("AsDouble on string");
  }
}

inline int64_t AsInt64(const ColumnVector& col, int64_t r) {
  switch (col.type()) {
    case TypeId::kBool:
      return col.Raw<uint8_t>()[r];
    case TypeId::kInt32:
    case TypeId::kDate:
      return col.Raw<int32_t>()[r];
    case TypeId::kInt64:
      return col.Raw<int64_t>()[r];
    case TypeId::kDouble:
      return static_cast<int64_t>(col.Raw<double>()[r]);
    default:
      RDB_UNREACHABLE("AsInt64 on string");
  }
}

}  // namespace

ColumnPtr Expr::Eval(const Batch& batch, const Schema& input) const {
  const int64_t n = batch.num_rows;
  switch (kind_) {
    case ExprKind::kColumnRef: {
      int idx = input.IndexOf(name_);
      RDB_CHECK_MSG(idx >= 0, ("unbound column: " + name_).c_str());
      return batch.columns[idx];
    }
    case ExprKind::kLiteral: {
      auto out = MakeColumn(DatumType(literal_));
      out->Reserve(n);
      for (int64_t i = 0; i < n; ++i) out->Append(literal_);
      return out;
    }
    case ExprKind::kParam:
      RDB_UNREACHABLE(("unbound parameter: $" + name_).c_str());
    case ExprKind::kCompare: {
      ColumnPtr l = children_[0]->Eval(batch, input);
      ColumnPtr r = children_[1]->Eval(batch, input);
      auto out = MakeColumn(TypeId::kBool);
      auto& o = out->Data<uint8_t>();
      o.resize(n);
      const int op = static_cast<int>(compare_op_);
      if (l->type() == TypeId::kString || r->type() == TypeId::kString) {
        RDB_CHECK(l->type() == TypeId::kString &&
                  r->type() == TypeId::kString);
        const std::string* ls = l->Raw<std::string>();
        const std::string* rs = r->Raw<std::string>();
        for (int64_t i = 0; i < n; ++i) {
          int c = ls[i].compare(rs[i]);
          bool v = false;
          switch (compare_op_) {
            case CompareOp::kEq: v = c == 0; break;
            case CompareOp::kNe: v = c != 0; break;
            case CompareOp::kLt: v = c < 0; break;
            case CompareOp::kLe: v = c <= 0; break;
            case CompareOp::kGt: v = c > 0; break;
            case CompareOp::kGe: v = c >= 0; break;
          }
          o[i] = v;
        }
        return out;
      }
      // Numeric comparison through double (exact for our int domains).
      for (int64_t i = 0; i < n; ++i) {
        double a = AsDouble(*l, i), b = AsDouble(*r, i);
        bool v = false;
        switch (op) {
          case 0: v = a == b; break;
          case 1: v = a != b; break;
          case 2: v = a < b; break;
          case 3: v = a <= b; break;
          case 4: v = a > b; break;
          case 5: v = a >= b; break;
        }
        o[i] = v;
      }
      return out;
    }
    case ExprKind::kLogical: {
      auto out = MakeColumn(TypeId::kBool);
      auto& o = out->Data<uint8_t>();
      o.resize(n);
      if (logical_op_ == LogicalOp::kNot) {
        ColumnPtr c = children_[0]->Eval(batch, input);
        const uint8_t* cv = c->Raw<uint8_t>();
        for (int64_t i = 0; i < n; ++i) o[i] = !cv[i];
        return out;
      }
      ColumnPtr l = children_[0]->Eval(batch, input);
      ColumnPtr r = children_[1]->Eval(batch, input);
      const uint8_t* lv = l->Raw<uint8_t>();
      const uint8_t* rv = r->Raw<uint8_t>();
      if (logical_op_ == LogicalOp::kAnd) {
        for (int64_t i = 0; i < n; ++i) o[i] = lv[i] & rv[i];
      } else {
        for (int64_t i = 0; i < n; ++i) o[i] = lv[i] | rv[i];
      }
      return out;
    }
    case ExprKind::kArith: {
      ColumnPtr l = children_[0]->Eval(batch, input);
      ColumnPtr r = children_[1]->Eval(batch, input);
      TypeId out_type = DeduceType(input);
      auto out = MakeColumn(out_type);
      if (out_type == TypeId::kDouble) {
        auto& o = out->Data<double>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          double a = AsDouble(*l, i), b = AsDouble(*r, i);
          switch (arith_op_) {
            case ArithOp::kAdd: o[i] = a + b; break;
            case ArithOp::kSub: o[i] = a - b; break;
            case ArithOp::kMul: o[i] = a * b; break;
            case ArithOp::kDiv: o[i] = b == 0 ? 0 : a / b; break;
          }
        }
      } else if (out_type == TypeId::kInt64) {
        auto& o = out->Data<int64_t>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          int64_t a = AsInt64(*l, i), b = AsInt64(*r, i);
          switch (arith_op_) {
            case ArithOp::kAdd: o[i] = a + b; break;
            case ArithOp::kSub: o[i] = a - b; break;
            case ArithOp::kMul: o[i] = a * b; break;
            case ArithOp::kDiv: o[i] = b == 0 ? 0 : a / b; break;
          }
        }
      } else {
        auto& o = out->Data<int32_t>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          int32_t a = static_cast<int32_t>(AsInt64(*l, i));
          int32_t b = static_cast<int32_t>(AsInt64(*r, i));
          switch (arith_op_) {
            case ArithOp::kAdd: o[i] = a + b; break;
            case ArithOp::kSub: o[i] = a - b; break;
            case ArithOp::kMul: o[i] = a * b; break;
            case ArithOp::kDiv: o[i] = b == 0 ? 0 : a / b; break;
          }
        }
      }
      return out;
    }
    case ExprKind::kFunc: {
      if (name_ == "year" || name_ == "month") {
        ColumnPtr arg = children_[0]->Eval(batch, input);
        RDB_CHECK(arg->type() == TypeId::kDate ||
                  arg->type() == TypeId::kInt32);
        auto out = MakeColumn(TypeId::kInt32);
        auto& o = out->Data<int32_t>();
        o.resize(n);
        const int32_t* a = arg->Raw<int32_t>();
        if (name_ == "year") {
          for (int64_t i = 0; i < n; ++i) o[i] = DateYear(a[i]);
        } else {
          for (int64_t i = 0; i < n; ++i) o[i] = DateMonth(a[i]);
        }
        return out;
      }
      if (name_ == "bin") {
        // bin(value, width): floor(value / width); width is a literal.
        ColumnPtr arg = children_[0]->Eval(batch, input);
        RDB_CHECK(children_[1]->kind() == ExprKind::kLiteral);
        int64_t width = DatumAsInt64(children_[1]->literal());
        RDB_CHECK(width > 0);
        auto out = MakeColumn(TypeId::kInt64);
        auto& o = out->Data<int64_t>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          int64_t v = AsInt64(*arg, i);
          int64_t q = v / width;
          if (v < 0 && v % width != 0) --q;  // floor division
          o[i] = q;
        }
        return out;
      }
      RDB_UNREACHABLE(("unknown function: " + name_).c_str());
    }
    case ExprKind::kCase: {
      ColumnPtr cond = children_[0]->Eval(batch, input);
      ColumnPtr t = children_[1]->Eval(batch, input);
      ColumnPtr e = children_[2]->Eval(batch, input);
      TypeId out_type = DeduceType(input);
      auto out = MakeColumn(out_type);
      const uint8_t* cv = cond->Raw<uint8_t>();
      if (out_type == TypeId::kString) {
        auto& o = out->Data<std::string>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          o[i] = cv[i] ? t->Raw<std::string>()[i] : e->Raw<std::string>()[i];
        }
      } else if (out_type == TypeId::kDouble) {
        auto& o = out->Data<double>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          o[i] = cv[i] ? AsDouble(*t, i) : AsDouble(*e, i);
        }
      } else {
        auto& o = out->Data<int64_t>();
        o.resize(n);
        for (int64_t i = 0; i < n; ++i) {
          o[i] = cv[i] ? AsInt64(*t, i) : AsInt64(*e, i);
        }
      }
      return out;
    }
    case ExprKind::kInList: {
      ColumnPtr v = children_[0]->Eval(batch, input);
      auto out = MakeColumn(TypeId::kBool);
      auto& o = out->Data<uint8_t>();
      o.resize(n);
      if (v->type() == TypeId::kString) {
        std::unordered_set<std::string> set;
        for (const auto& d : in_values_) set.insert(std::get<std::string>(d));
        const std::string* sv = v->Raw<std::string>();
        for (int64_t i = 0; i < n; ++i) o[i] = set.count(sv[i]) > 0;
      } else {
        std::unordered_set<int64_t> set;
        for (const auto& d : in_values_) set.insert(DatumAsInt64(d));
        for (int64_t i = 0; i < n; ++i) o[i] = set.count(AsInt64(*v, i)) > 0;
      }
      return out;
    }
    case ExprKind::kLike: {
      ColumnPtr v = children_[0]->Eval(batch, input);
      RDB_CHECK(v->type() == TypeId::kString);
      auto out = MakeColumn(TypeId::kBool);
      auto& o = out->Data<uint8_t>();
      o.resize(n);
      const std::string* sv = v->Raw<std::string>();
      for (int64_t i = 0; i < n; ++i) {
        bool m = false;
        switch (like_kind_) {
          case LikeKind::kContains: m = Contains(sv[i], name_); break;
          case LikeKind::kPrefix: m = StartsWith(sv[i], name_); break;
          case LikeKind::kSuffix: m = EndsWith(sv[i], name_); break;
          case LikeKind::kNotContains: m = !Contains(sv[i], name_); break;
        }
        o[i] = m;
      }
      return out;
    }
  }
  RDB_UNREACHABLE("bad expr kind");
}

std::vector<int32_t> Expr::EvalSelection(const Batch& batch,
                                         const Schema& input) const {
  ColumnPtr mask = Eval(batch, input);
  RDB_CHECK_MSG(mask->type() == TypeId::kBool, "predicate must be boolean");
  const uint8_t* m = mask->Raw<uint8_t>();
  const int64_t n = mask->size();
  std::vector<int32_t> sel;
  sel.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    if (m[i]) sel.push_back(static_cast<int32_t>(i));
  }
  return sel;
}

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred) {
  std::vector<ExprPtr> out;
  if (pred == nullptr) return out;
  if (pred->kind() == ExprKind::kLogical &&
      pred->logical_op() == LogicalOp::kAnd) {
    for (const auto& c : pred->children()) {
      auto sub = SplitConjuncts(c);
      out.insert(out.end(), sub.begin(), sub.end());
    }
    return out;
  }
  out.push_back(pred);
  return out;
}

ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr acc = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    acc = Expr::And(acc, conjuncts[i]);
  }
  return acc;
}

}  // namespace recycledb
