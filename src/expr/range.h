// Range decomposition of selection predicates.
//
// Splits a predicate into per-column interval specs (`10 < x AND x < 50`
// plus arbitrary non-range conjuncts). Consumers: the recycler's
// interval index and stitching rewriter (partial reuse), the executor's
// zone-map scan pruning, and Plan::Explain's prunable-range annotation.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "common/interval.h"
#include "expr/expression.h"

namespace recycledb {

/// A selection predicate decomposed around one ranged column: the
/// column's interval plus every remaining conjunct ("others", matched by
/// fingerprint between cached slice and query).
struct RangeSpec {
  /// Ranged column name in the predicate's own name space.
  std::string column;
  /// `column` translated through the extraction mapping (equal to
  /// `column` when no mapping was given). Graph-space index key.
  std::string mapped_column;
  /// The conjunction of all range conjuncts on `column`.
  ColumnInterval range;
  /// Non-range conjuncts, original expressions (predicate name space).
  std::vector<ExprPtr> others;
  /// Fingerprints of `others` under the extraction mapping.
  std::set<std::string> other_fps;
};

/// Decomposes a selection predicate into one RangeSpec per column that
/// carries at least one range conjunct (`col < lit`, `lit <= col`, ...).
/// Every conjunct not contributing to a spec's column lands in that
/// spec's `others` — including range conjuncts on *different* columns,
/// which then must match by fingerprint like any other conjunct. Specs
/// whose interval is empty (contradictory predicate) are dropped.
/// `mapping` (optional) translates column names for `mapped_column` and
/// `other_fps` (query space -> graph space).
std::vector<RangeSpec> ExtractRangeSpecs(const ExprPtr& pred,
                                         const NameMap* mapping);

}  // namespace recycledb
