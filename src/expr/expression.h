// Scalar expression IR with a vectorized interpreter.
//
// Expressions are the parameters of Select/Project plan nodes; the recycler
// matches them structurally via Fingerprint() under a query<->graph column
// name mapping (see plan/fingerprint and recycler/matching).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"
#include "storage/table.h"

namespace recycledb {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Mapping from one column-name space to another (query tree names to
/// recycler-graph names and back).
using NameMap = std::map<std::string, std::string>;

/// Bound values for named parameter placeholders ($name -> Datum).
using ParamMap = std::map<std::string, Datum>;

/// Expression node kinds.
enum class ExprKind : uint8_t {
  kColumnRef,  // reference to an input column by name
  kLiteral,    // constant Datum
  kParam,      // named placeholder ($name) awaiting a bound value
  kCompare,    // = != < <= > >=
  kLogical,    // AND OR NOT
  kArith,      // + - * /
  kFunc,       // named scalar function (year, month, bin, ...)
  kCase,       // CASE WHEN c THEN a ELSE b END
  kInList,     // e IN (v1, v2, ...)
  kLike,       // string match: contains / prefix / suffix
};

enum class CompareOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class LogicalOp : uint8_t { kAnd, kOr, kNot };
enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// String-match flavors for kLike (LIKE '%x%', 'x%', '%x').
enum class LikeKind : uint8_t { kContains, kPrefix, kSuffix, kNotContains };

/// An immutable scalar expression tree.
///
/// Build with the static factory functions; evaluate against a Batch with
/// Eval() after checking/deducing types with DeduceType().
class Expr : public std::enable_shared_from_this<Expr> {
 public:
  // ---- factories -----------------------------------------------------
  static ExprPtr Column(std::string name);
  static ExprPtr Literal(Datum value);
  /// Named placeholder for a prepared-statement parameter. The expression
  /// cannot be bound or evaluated until SubstituteParams replaces it with
  /// a literal.
  static ExprPtr Param(std::string name);
  static ExprPtr Compare(CompareOp op, ExprPtr l, ExprPtr r);
  static ExprPtr And(ExprPtr l, ExprPtr r);
  static ExprPtr Or(ExprPtr l, ExprPtr r);
  static ExprPtr Not(ExprPtr e);
  static ExprPtr Arith(ArithOp op, ExprPtr l, ExprPtr r);
  static ExprPtr Func(std::string name, std::vector<ExprPtr> args);
  static ExprPtr Case(ExprPtr cond, ExprPtr then_e, ExprPtr else_e);
  static ExprPtr In(ExprPtr e, std::vector<Datum> values);
  static ExprPtr Like(LikeKind kind, ExprPtr e, std::string pattern);

  // Convenience comparison builders against literals.
  static ExprPtr Eq(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kEq, l, r); }
  static ExprPtr Ne(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kNe, l, r); }
  static ExprPtr Lt(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kLt, l, r); }
  static ExprPtr Le(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kLe, l, r); }
  static ExprPtr Gt(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kGt, l, r); }
  static ExprPtr Ge(ExprPtr l, ExprPtr r) { return Compare(CompareOp::kGe, l, r); }

  // ---- accessors ------------------------------------------------------
  ExprKind kind() const { return kind_; }
  const std::string& column_name() const { return name_; }
  const std::string& param_name() const { return name_; }
  const Datum& literal() const { return literal_; }
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const std::string& func_name() const { return name_; }
  LikeKind like_kind() const { return like_kind_; }
  const std::string& like_pattern() const { return name_; }
  const std::vector<Datum>& in_values() const { return in_values_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  // ---- analysis -------------------------------------------------------
  /// Deduces the result type against `input`; RDB_CHECK-fails on unbound
  /// columns or type errors. Pure (no caching), cheap.
  TypeId DeduceType(const Schema& input) const;

  /// Adds every referenced column name to `out`.
  void CollectColumns(std::set<std::string>* out) const;

  /// Adds every parameter placeholder name to `out`.
  void CollectParams(std::set<std::string>* out) const;

  /// True if the tree contains at least one kParam node.
  bool HasParams() const;

  /// Returns a copy with each kParam replaced by the literal bound under
  /// its name in `params`. Parameters missing from `params` are kept and
  /// their names appended to `missing` (when non-null). Subtrees without
  /// parameters are shared, not cloned.
  ExprPtr SubstituteParams(const ParamMap& params,
                           std::vector<std::string>* missing) const;

  /// Canonical structural rendering. Column names are passed through
  /// `mapping` when present (identity otherwise). Two expressions are
  /// considered parameter-equal by the recycler iff fingerprints match.
  /// With `anonymize_columns` every column ref renders as "c:?" — used for
  /// name-space-independent hash keys.
  std::string Fingerprint(const NameMap* mapping,
                          bool anonymize_columns = false) const;

  /// Returns a copy with column refs renamed through `mapping` (names
  /// missing from the mapping are kept).
  ExprPtr Rename(const NameMap& mapping) const;

  /// Human-readable infix rendering (columns bare, parameters as $name);
  /// used by Plan::Explain and API error messages. Fingerprint() stays
  /// the canonical matching form.
  std::string DisplayString() const;

  // ---- evaluation -----------------------------------------------------
  /// Vectorized evaluation over a batch laid out per `input`.
  /// Returns a column of DeduceType(input) with batch.num_rows rows.
  ColumnPtr Eval(const Batch& batch, const Schema& input) const;

  /// Evaluates a predicate and returns the selected row indexes.
  /// Expression must deduce to kBool.
  std::vector<int32_t> EvalSelection(const Batch& batch,
                                     const Schema& input) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kLiteral;
  std::string name_;          // column name / func name / like pattern
  Datum literal_;             // kLiteral payload
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ArithOp arith_op_ = ArithOp::kAdd;
  LikeKind like_kind_ = LikeKind::kContains;
  std::vector<Datum> in_values_;
  std::vector<ExprPtr> children_;
};

/// Splits a predicate into its top-level AND conjuncts.
/// Used by the tuple-subsumption rule (cached conjunct-subset detection).
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& pred);

/// Rebuilds a conjunction from conjuncts (nullptr if empty).
ExprPtr AndAll(const std::vector<ExprPtr>& conjuncts);

}  // namespace recycledb
