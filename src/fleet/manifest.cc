#include "fleet/manifest.h"

#include <chrono>
#include <cstdio>

#include "common/hash.h"
#include "common/string_util.h"
#include "storage/wire_format.h"

namespace recycledb {
namespace fleet {

namespace {

constexpr char kMagic[4] = {'R', 'D', 'B', 'M'};

/// Plausibility bound on the vector counts, checked before any
/// allocation: the manifest is a small control file, so a count beyond
/// this is corruption, not scale.
constexpr uint32_t kMaxRecords = 1u << 20;

}  // namespace

ManifestOwner* Manifest::FindOwner(const std::string& id) {
  for (ManifestOwner& o : owners) {
    if (o.id == id) return &o;
  }
  return nullptr;
}

const ManifestEntry* Manifest::Find(const std::string& canon_key) const {
  for (const ManifestEntry& e : entries) {
    if (e.canon_key == canon_key) return &e;
  }
  return nullptr;
}

bool Manifest::OwnerLive(const std::string& owner, int64_t now_ms) const {
  if (owner.empty()) return false;
  for (const ManifestOwner& o : owners) {
    if (o.id == owner) return o.lease_expiry_ms > now_ms;
  }
  return false;
}

void Manifest::AddPurge(const std::string& table, bool unversioned_only) {
  purges.push_back(ManifestPurge{table, seq, unversioned_only});
  if (purges.size() > kManifestMaxPurges) {
    purges.erase(purges.begin(),
                 purges.begin() + (purges.size() - kManifestMaxPurges));
  }
}

std::string ManifestPath(const std::string& dir) {
  return dir + "/manifest.rdbm";
}

std::string ManifestLockPath(const std::string& dir) {
  return dir + "/manifest.lock";
}

int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string SerializeManifest(const Manifest& m) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  wire::PutU32(&out, kManifestFormatVersion);
  wire::PutU64(&out, static_cast<uint64_t>(m.seq));
  wire::PutU32(&out, static_cast<uint32_t>(m.owners.size()));
  for (const ManifestOwner& o : m.owners) {
    wire::PutString(&out, o.id);
    wire::PutU64(&out, static_cast<uint64_t>(o.lease_expiry_ms));
  }
  wire::PutU32(&out, static_cast<uint32_t>(m.entries.size()));
  for (const ManifestEntry& e : m.entries) {
    wire::PutString(&out, e.canon_key);
    wire::PutString(&out, e.file);
    wire::PutString(&out, e.owner);
    wire::PutU64(&out, static_cast<uint64_t>(e.admit_seq));
  }
  wire::PutU32(&out, static_cast<uint32_t>(m.purges.size()));
  for (const ManifestPurge& p : m.purges) {
    wire::PutString(&out, p.table);
    wire::PutU64(&out, static_cast<uint64_t>(p.seq));
    out.push_back(p.unversioned_only ? 1 : 0);
  }
  wire::PutU64(&out, HashString(out));
  return out;
}

Status ParseManifest(const std::string& buf, Manifest* out) {
  *out = Manifest{};
  auto corrupt = [](const char* what) {
    return Status::InvalidArgument(
        StrFormat("corrupt fleet manifest: %s", what));
  };
  if (buf.size() < sizeof(kMagic) + 4 + 8 + 8) return corrupt("truncated");
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic");
  }
  // Checksum first: everything after this is trusted field-by-field.
  uint64_t want = 0;
  {
    wire::Cursor tail{
        reinterpret_cast<const unsigned char*>(buf.data() + buf.size() - 8), 8};
    tail.GetU64(&want);
  }
  if (HashString(std::string_view(buf.data(), buf.size() - 8)) != want) {
    return corrupt("checksum mismatch");
  }
  wire::Cursor c{reinterpret_cast<const unsigned char*>(buf.data()),
                 buf.size() - 8};
  c.pos = sizeof(kMagic);
  uint32_t version = 0;
  if (!c.GetU32(&version)) return corrupt("truncated");
  if (version != kManifestFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("fleet manifest version %u unsupported (reader supports "
                  "%u); falling back to directory re-scan",
                  version, kManifestFormatVersion));
  }
  uint64_t seq = 0;
  if (!c.GetU64(&seq)) return corrupt("truncated");
  out->seq = static_cast<int64_t>(seq);
  uint32_t n = 0;
  if (!c.GetU32(&n) || n > kMaxRecords) return corrupt("owner count");
  out->owners.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ManifestOwner o;
    uint64_t expiry = 0;
    if (!c.GetString(&o.id) || !c.GetU64(&expiry)) return corrupt("owner");
    o.lease_expiry_ms = static_cast<int64_t>(expiry);
    out->owners.push_back(std::move(o));
  }
  if (!c.GetU32(&n) || n > kMaxRecords) return corrupt("entry count");
  out->entries.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ManifestEntry e;
    uint64_t admit_seq = 0;
    if (!c.GetString(&e.canon_key) || !c.GetString(&e.file) ||
        !c.GetString(&e.owner) || !c.GetU64(&admit_seq)) {
      return corrupt("entry");
    }
    e.admit_seq = static_cast<int64_t>(admit_seq);
    out->entries.push_back(std::move(e));
  }
  if (!c.GetU32(&n) || n > kMaxRecords) return corrupt("purge count");
  out->purges.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ManifestPurge p;
    uint64_t seq64 = 0;
    uint8_t flag = 0;
    if (!c.GetString(&p.table) || !c.GetU64(&seq64) || !c.GetU8(&flag)) {
      return corrupt("purge");
    }
    p.seq = static_cast<int64_t>(seq64);
    p.unversioned_only = flag != 0;
    out->purges.push_back(std::move(p));
  }
  if (c.remaining() != 0) return corrupt("trailing bytes");
  return Status::OK();
}

Status ReadManifestFile(const std::string& path, Manifest* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no fleet manifest at " + path);
  }
  std::string buf;
  char chunk[1 << 14];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) buf.append(chunk, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("cannot read fleet manifest: " + path);
  }
  return ParseManifest(buf, out);
}

Status WriteManifestFile(const std::string& path, const Manifest& m) {
  const std::string tmp = path + ".tmp";
  const std::string buf = SerializeManifest(m);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot create fleet manifest tmp: " + tmp);
  }
  const bool wrote = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot write fleet manifest: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename fleet manifest into place: " + path);
  }
  return Status::OK();
}

}  // namespace fleet
}  // namespace recycledb
