// Warm-standby failover for the fleet tier.
//
// A standby is just a second Database opened over the primary's shared
// spill directory; what makes it *warm* is tailing — periodically
// refreshing against the fleet manifest so the primary's checkpointed
// and evicted results are already tracked as adoptable entries before
// the first statement arrives. StandbyTailer wraps that loop: a
// background thread calling Database::RefreshFleet at a fixed cadence.
//
//   DatabaseOptions opts;
//   opts.recycler.spill_dir = shared_dir;      // same dir as the primary
//   opts.recycler.shared_spill_dir = true;
//   opts.recycler.fleet_instance = "standby";
//   auto standby = Database::OpenOrDie(opts);
//   fleet::StandbyTailer tailer(standby.get(), {});
//   ...                                        // primary serves traffic
//   tailer.Promote();                          // primary died: take over
//   // standby now serves; first statements hit adopted entries instead
//   // of re-executing.
//
// Failover is not a mode switch inside the engine: a tailing standby is
// already a fully functional Database (it can serve reads the whole
// time). Promote() simply stops the background cadence after one final
// refresh — from then on the instance behaves exactly like any fleet
// member, claiming the dead primary's entries via stale-lease takeover
// on its regular refreshes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace recycledb {

class Database;

namespace fleet {

struct StandbyOptions {
  /// Cadence of the background RefreshFleet loop. Bounds adoption
  /// staleness: a primary spill becomes servable here at most one
  /// interval (plus the primary's own manifest sync) after it lands.
  int64_t refresh_interval_ms = 200;
};

class StandbyTailer {
 public:
  /// Starts tailing immediately (one synchronous refresh, then the
  /// background cadence). `db` must outlive this object.
  StandbyTailer(Database* db, StandbyOptions options);
  ~StandbyTailer();

  StandbyTailer(const StandbyTailer&) = delete;
  StandbyTailer& operator=(const StandbyTailer&) = delete;

  /// One synchronous refresh round, on the caller's thread (tests and
  /// deterministic benches; the background loop keeps running).
  Status RefreshNow();

  /// Stops the background loop (idempotent). The Database stays usable.
  void Stop();

  /// Failover: stop tailing, then run one final synchronous refresh so
  /// the takeover sees the very last manifest state. After this the
  /// instance serves as the active member.
  Status Promote();

  /// Refresh rounds completed (monotone; diagnostics/tests).
  int64_t refreshes() const;

 private:
  void Loop();

  Database* db_;
  StandbyOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  int64_t refreshes_ = 0;
  std::thread thread_;
};

}  // namespace fleet
}  // namespace recycledb
