// Cross-process write arbitration for the fleet manifest: an exclusive
// flock(2) on `<spill_dir>/manifest.lock`, held only around manifest
// read-modify-write cycles (fleet/manifest.h). Readers never take it —
// the manifest's tmp+rename discipline keeps lock-free reads sound.
//
// flock is advisory and per-open-file-description, which is exactly
// what is needed here: every writer in the fleet goes through this
// class, the lock dies with the process (a crashed writer can never
// wedge the directory), and threads within one process are already
// serialized by the cold tier's own mutex. The critical sections are a
// few kilobytes of file I/O, so blocking acquisition is fine.
#pragma once

#include <string>

#include "common/status.h"

namespace recycledb {
namespace fleet {

class DirLock {
 public:
  DirLock() = default;
  ~DirLock() { Release(); }

  // Movable (Status-returning factory), not copyable.
  DirLock(DirLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  DirLock& operator=(DirLock&& other) noexcept;
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

  /// Opens (creating if needed) `lock_path` and blocks until the
  /// exclusive flock is held. Returns a recoverable Status when the
  /// file cannot be opened (e.g. a read-only mount).
  static Status Acquire(const std::string& lock_path, DirLock* out);

  bool held() const { return fd_ >= 0; }
  void Release();

 private:
  int fd_ = -1;
};

}  // namespace fleet
}  // namespace recycledb
