// The fleet ownership manifest: the small on-disk record that lets
// several engine processes share one cold-tier directory.
//
// One file, `<spill_dir>/manifest.rdbm`, holds (a) the owner table —
// every instance that writes the directory, with a wall-clock lease
// expiry it renews on each manifest write; (b) the entry table — one
// record per spill file, keyed by the canonical subtree key, naming the
// file and the owning instance; and (c) a bounded log of purge records
// (table invalidations) that peers apply at their next refresh, so a
// ReplaceTable in one process retires the table's spilled results in
// every process at refresh granularity.
//
// Writers follow the spill-file discipline exactly: serialize into
// "<path>.tmp", fsync-free rename into place, trailing FNV-1a checksum
// over everything before it. Readers therefore never need a lock — a
// rename is atomic, and a torn or stale read fails the checksum and is
// retried at the next refresh. Writers DO coordinate: read-modify-write
// cycles run under an exclusive flock on `<spill_dir>/manifest.lock`
// (fleet/lock_file.h), so two instances never interleave updates.
//
// Parse failures are always recoverable Statuses, never aborts: a
// corrupt, truncated or version-skewed manifest makes an opener fall
// back to a directory re-scan (every readable spill file is adoptable;
// ownership is rebuilt as the instances touch the manifest again).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace recycledb {
namespace fleet {

inline constexpr uint32_t kManifestFormatVersion = 1;

/// Purge records kept in the manifest (older ones age out). An instance
/// that refreshes less often than the fleet produces purges can miss
/// one; the staleness contract (DESIGN.md "Fleet tier") therefore pairs
/// the bounded log with the same-base-data requirement spill files
/// already carry.
inline constexpr size_t kManifestMaxPurges = 256;

/// A writer instance and the wall-clock (unix ms) its liveness lease
/// runs to. An expired lease marks the owner as presumed-dead: its
/// entries become claimable by any live instance (stale-lease
/// takeover). A graceful shutdown drops the owner record entirely,
/// which reads the same as an expired lease.
struct ManifestOwner {
  std::string id;
  int64_t lease_expiry_ms = 0;
};

/// One spill file: who wrote it, under which canonical key, and the
/// manifest sequence number current when it was admitted (purge records
/// carry the sequence at purge time, so `admit_seq > purge.seq` proves
/// an entry postdates the invalidation that would retire it).
struct ManifestEntry {
  std::string canon_key;
  /// File name relative to the spill directory (never a full path: the
  /// directory may be mounted at different paths in different
  /// processes).
  std::string file;
  /// Owning instance id; empty = unowned (claimable by anyone).
  std::string owner;
  int64_t admit_seq = 0;
};

/// A table invalidation to be applied fleet-wide. `unversioned_only`
/// distinguishes an append (only unstamped v1/v2 images are
/// indistinguishable from stale) from a replace (everything over the
/// table must go).
struct ManifestPurge {
  std::string table;
  int64_t seq = 0;
  bool unversioned_only = false;
};

struct Manifest {
  /// Monotone write counter; bumped by every writer under the flock.
  int64_t seq = 0;
  std::vector<ManifestOwner> owners;
  std::vector<ManifestEntry> entries;
  std::vector<ManifestPurge> purges;

  ManifestOwner* FindOwner(const std::string& id);
  const ManifestEntry* Find(const std::string& canon_key) const;

  /// True when `owner` names an instance whose lease runs past `now_ms`.
  /// Unknown owners and the empty owner are not live (claimable).
  bool OwnerLive(const std::string& owner, int64_t now_ms) const;

  /// Appends a purge record at the current seq, aging out the oldest
  /// beyond kManifestMaxPurges.
  void AddPurge(const std::string& table, bool unversioned_only);
};

/// `<dir>/manifest.rdbm` / `<dir>/manifest.lock`.
std::string ManifestPath(const std::string& dir);
std::string ManifestLockPath(const std::string& dir);

/// Wall clock in unix milliseconds (leases must be comparable across
/// processes, so this is system_clock, not steady_clock).
int64_t UnixMillisNow();

std::string SerializeManifest(const Manifest& m);

/// Fail-soft: truncation, bad magic, checksum mismatch and newer
/// versions all return recoverable InvalidArgument.
Status ParseManifest(const std::string& buf, Manifest* out);

/// NotFound when the file does not exist (a fresh directory);
/// InvalidArgument per ParseManifest otherwise.
Status ReadManifestFile(const std::string& path, Manifest* out);

/// tmp + rename, like spill files: readers see the old or the new
/// manifest, never a torn one. Callers serialize writers via DirLock.
Status WriteManifestFile(const std::string& path, const Manifest& m);

}  // namespace fleet
}  // namespace recycledb
