#include "fleet/standby.h"

#include <chrono>

#include "api/database.h"

namespace recycledb {
namespace fleet {

StandbyTailer::StandbyTailer(Database* db, StandbyOptions options)
    : db_(db), options_(options) {
  // First refresh runs synchronously so the standby is warm the moment
  // construction returns (tests and failover drills rely on this).
  RefreshNow().ok();
  thread_ = std::thread([this] { Loop(); });
}

StandbyTailer::~StandbyTailer() { Stop(); }

void StandbyTailer::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.refresh_interval_ms),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    Status st = db_->RefreshFleet();
    lock.lock();
    if (st.ok()) ++refreshes_;
  }
}

Status StandbyTailer::RefreshNow() {
  Status st = db_->RefreshFleet();
  if (st.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++refreshes_;
  }
  return st;
}

void StandbyTailer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      if (!thread_.joinable()) return;
    }
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

Status StandbyTailer::Promote() {
  Stop();
  // The final refresh performs the stale-lease takeover if the primary's
  // lease already lapsed; otherwise the regular refreshes that follow
  // (now driven by this instance's own manifest syncs) will.
  return RefreshNow();
}

int64_t StandbyTailer::refreshes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return refreshes_;
}

}  // namespace fleet
}  // namespace recycledb
