#include "fleet/lock_file.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace recycledb {
namespace fleet {

DirLock& DirLock::operator=(DirLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

Status DirLock::Acquire(const std::string& lock_path, DirLock* out) {
  int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot open fleet lock file " + lock_path + ": " +
                            std::strerror(errno));
  }
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("cannot flock fleet lock file " + lock_path +
                            ": " + std::strerror(err));
  }
  out->Release();
  out->fd_ = fd;
  return Status::OK();
}

void DirLock::Release() {
  if (fd_ >= 0) {
    // close() drops the flock with the last reference to the open file
    // description; no explicit LOCK_UN needed.
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace fleet
}  // namespace recycledb
