// PreparedStatement: a reusable query template with named parameters.
//
// The paper's workloads are templates — SkyServer and TPC-H queries that
// differ only in constants (§V) — and that is exactly the shape the
// recycler exploits. A PreparedStatement captures the template once
// (canonical fingerprint, pre-validated and pre-bound parameter-free
// subtrees), and each Bind/Execute round only re-creates the
// parameterized spine of the plan. Executions carry the template's hash
// so the recycler attributes reuse to the template (TemplateStats).
//
// Not thread-safe: a statement belongs to its Session and must not be
// executed concurrently with itself. Submit() hands the bound plan to the
// database's async pool; the statement itself can be rebound immediately.
#pragma once

#include <future>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/query.h"
#include "api/result.h"
#include "common/status.h"

namespace recycledb {

class Session;

/// A compiled, reusable query template with named `$name` parameters
/// (see the file comment for the template/recycler relationship and the
/// threading contract).
class PreparedStatement {
 public:
  // ---- template inspection --------------------------------------------
  /// Names of the parameters the template declares.
  const std::set<std::string>& parameters() const { return params_; }
  /// Canonical binding-independent rendering of the template.
  const std::string& template_fingerprint() const { return fingerprint_; }
  /// Hash of template_fingerprint(); the recycler's TemplateStats key.
  uint64_t template_hash() const { return hash_; }

  /// Canonical template tree plus the current bindings; when the
  /// canonicalizer rewrote the template at Prepare, also the
  /// pre-canonicalization tree with its own fingerprint hash, so the
  /// normalization is inspectable. Used in error messages.
  std::string Explain() const;

  // ---- binding ---------------------------------------------------------
  /// Binds `value` under `$name`. Fluent. Binding a name the template
  /// does not declare is reported as an error by the next Execute.
  PreparedStatement& Bind(const std::string& name, Datum value);
  /// Binds every entry of `params`. Fluent.
  PreparedStatement& BindAll(const ParamMap& params);
  /// Drops every current binding (and any deferred binding error).
  void ClearBindings();
  /// The currently bound parameter values.
  const ParamMap& bindings() const { return bound_; }

  /// Substitutes the current bindings and validates, without executing.
  /// On success `*out` receives the bound plan (template-hash tagged).
  Status ToPlan(PlanPtr* out);

  // ---- execution -------------------------------------------------------
  /// Synchronous execution with the current bindings.
  Result Execute();
  /// BindAll + Execute in one call (bindings persist afterwards).
  Result Execute(const ParamMap& params);
  /// Asynchronous execution routed through the database's admission gate;
  /// the returned future is fulfilled by a database worker thread.
  std::future<Result> Submit();

  /// Recycler-side aggregate over every execution of this template.
  TemplateStats stats() const;

 private:
  friend class Session;
  PreparedStatement(Session* session, PlanPtr template_plan,
                    PlanPtr pre_canonical = nullptr,
                    std::string source_sql = std::string());

  Session* session_;
  PlanPtr template_;
  /// The SQL text this statement was prepared from (empty for builder
  /// templates); recorded with each execution's bindings by an attached
  /// TraceRecorder so the round is replayable.
  std::string source_sql_;
  /// The template as handed to Prepare, kept for Explain only; nullptr
  /// when canonicalization left it unchanged (or is disabled).
  PlanPtr pre_canonical_;
  std::set<std::string> params_;
  std::string fingerprint_;
  uint64_t hash_ = 0;
  ParamMap bound_;
  /// Deferred error from a bad Bind call (unknown parameter name).
  Status pending_error_;
};

}  // namespace recycledb
