// Fluent query builder: the public face of the plan IR.
//
//   Query q = db.Scan("sales", {"city", "year", "sales"})
//                .Filter(Expr::Ge(Expr::Column("year"), Expr::Param("y")))
//                .Aggregate({"city"}, {{AggFunc::kSum, Expr::Column("sales"),
//                                       "total"}})
//                .OrderBy({{"total", false}});
//
// A Query is an immutable wrapper over a PlanPtr; every builder call
// returns a new Query whose plan shares the receiver's plan as a child,
// so template prefixes are shared, not copied. Queries may contain
// Expr::Param placeholders; parameterized queries must go through
// Session::Prepare, parameter-free ones can be executed directly.
//
// A Query is not tied to a Database until executed; execute it against
// one Database only (plans bind their schemas on first execution).
#pragma once

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "plan/plan.h"

namespace recycledb {

/// Immutable fluent builder over the logical plan IR (see the file
/// comment for usage and sharing semantics).
class Query {
 public:
  /// An empty query; usable only as a target for assignment.
  Query() = default;

  // ---- roots (also exposed as Database::Scan / Session::Scan) ---------
  /// Base-table scan with column pruning.
  static Query Scan(std::string table, std::vector<std::string> columns) {
    return Query(PlanNode::Scan(std::move(table), std::move(columns)));
  }
  /// Table-function scan; args may mix literals and Expr::Param.
  static Query FunctionScan(std::string function, std::vector<ExprPtr> args) {
    return Query(
        PlanNode::FunctionScanTemplate(std::move(function), std::move(args)));
  }
  /// Wraps an existing plan (workload generators, tests).
  static Query FromPlan(PlanPtr plan) { return Query(std::move(plan)); }

  // ---- operators -------------------------------------------------------
  /// Selection: keeps the rows satisfying `predicate`.
  Query Filter(ExprPtr predicate) const {
    return Query(PlanNode::Select(plan_, std::move(predicate)));
  }
  /// Projection: computes `items` as the new output columns.
  Query Project(std::vector<ProjItem> items) const {
    return Query(PlanNode::Project(plan_, std::move(items)));
  }
  /// Hash group-by + aggregates (global aggregation if `group_by` is
  /// empty).
  Query Aggregate(std::vector<std::string> group_by,
                  std::vector<AggItem> aggregates) const {
    return Query(
        PlanNode::Aggregate(plan_, std::move(group_by), std::move(aggregates)));
  }
  /// Hash equi-join with `right` as the build side.
  Query Join(const Query& right, JoinKind kind,
             std::vector<std::string> left_keys,
             std::vector<std::string> right_keys) const {
    return Query(PlanNode::HashJoin(plan_, right.plan_, kind,
                                    std::move(left_keys),
                                    std::move(right_keys)));
  }
  /// Full sort by `keys`.
  Query OrderBy(std::vector<SortKey> keys) const {
    return Query(PlanNode::OrderBy(plan_, std::move(keys)));
  }
  /// Heap-based top-`n` by `keys`; output is sorted.
  Query TopN(std::vector<SortKey> keys, int64_t n) const {
    return Query(PlanNode::TopN(plan_, std::move(keys), n));
  }
  /// First `n` rows.
  Query Limit(int64_t n) const { return Query(PlanNode::Limit(plan_, n)); }
  /// Bag union with a union-compatible `other`.
  Query Union(const Query& other) const {
    return Query(PlanNode::UnionAll({plan_, other.plan_}));
  }

  // ---- inspection ------------------------------------------------------
  /// The underlying logical plan (nullptr for an empty query).
  const PlanPtr& plan() const { return plan_; }
  /// True if the query contains Expr::Param placeholders (must then go
  /// through Session::Prepare).
  bool HasParams() const { return plan_ != nullptr && plan_->HasParams(); }
  /// Names of every parameter placeholder in the query.
  std::set<std::string> Params() const {
    std::set<std::string> out;
    if (plan_ != nullptr) plan_->CollectParams(&out);
    return out;
  }
  /// Indented operator tree with parameters ($name placeholders).
  std::string Explain() const {
    return plan_ == nullptr ? "(empty query)\n" : plan_->Explain();
  }
  /// Canonical template fingerprint (binding-independent).
  std::string TemplateFingerprint() const {
    return plan_ == nullptr ? "" : plan_->TemplateFingerprint();
  }

 private:
  explicit Query(PlanPtr plan) : plan_(std::move(plan)) {}

  PlanPtr plan_;
};

}  // namespace recycledb
