// Result: the public API's query-result handle.
//
// A Result owns (shares) the materialized result table, the per-query
// recycler trace, and — on failure — a Status. Result tables reused from
// the recycler cache are shared immutable objects, so a Result stays
// valid after the cache evicts or invalidates the entry it came from
// (see DESIGN.md "Public API & session model": lifetime rules).
#pragma once

#include <string>
#include <utility>

#include "common/status.h"
#include "exec/executor.h"
#include "recycler/recycler.h"

namespace recycledb {

/// Outcome of one query execution through the facade.
class Result {
 public:
  /// An empty (ok, zero-row) result; usable as an assignment target.
  Result() = default;

  /// A failed result carrying `status`.
  static Result Error(Status status) {
    Result r;
    r.status_ = std::move(status);
    return r;
  }

  /// A successful result wrapping an execution outcome and its trace.
  static Result Of(ExecResult exec, QueryTrace trace) {
    Result r;
    r.table_ = std::move(exec.table);
    r.total_ms_ = exec.total_ms;
    r.trace_ = std::move(trace);
    return r;
  }

  /// True unless the query failed validation or execution.
  bool ok() const { return status_.ok(); }
  /// The failure description (ok status on success).
  const Status& status() const { return status_; }

  /// The materialized result (nullptr on error). Shared ownership: stays
  /// valid independent of recycler-cache eviction.
  const TablePtr& table() const { return table_; }
  /// Row count of the result (0 on error).
  int64_t num_rows() const { return table_ == nullptr ? 0 : table_->num_rows(); }
  /// Output schema (an empty schema on error).
  const Schema& schema() const {
    static const Schema kEmpty;
    return table_ == nullptr ? kEmpty : table_->schema();
  }
  /// End-to-end execution time in milliseconds.
  double total_ms() const { return total_ms_; }

  // --- reuse accounting (drives the acceptance check: rebinding a
  // --- prepared statement shows cache reuse in its Result stats) --------
  /// The full per-query recycler trace record.
  const QueryTrace& trace() const { return trace_; }
  /// True if at least one cached result was consumed.
  bool recycled() const { return trace_.num_reuses > 0; }
  /// Number of cached results consumed (exact + subsumed + stitched).
  int reuses() const { return trace_.num_reuses; }
  /// Reuses derived via single-superset subsumption.
  int subsumption_reuses() const { return trace_.num_subsumption_reuses; }
  /// Reuses answered by stitching overlapping cached range slices
  /// (partial-match subsumption); counted inside reuses() as well.
  int partial_reuses() const { return trace_.num_partial_reuses; }
  /// Reuses served by lazily re-admitting a spilled result from the
  /// on-disk cold tier; counted inside reuses() as well.
  int cold_hits() const { return trace_.num_cold_hits; }
  /// Cold-tier orphans adopted while preparing this query (restart
  /// images or fleet peers' spills discovered by canonical key). An
  /// adoption is not itself a reuse; it makes one servable.
  int adoptions() const { return trace_.num_adoptions; }
  /// Reuses served by delta maintenance: an append-stale cached result
  /// stitched with a bounded scan of the appended row window; counted
  /// inside reuses() as well.
  int delta_reuses() const { return trace_.num_delta_reuses; }
  /// Delta reuses that merged cached aggregate state with a delta-window
  /// aggregate (no base-row rescan); counted inside delta_reuses().
  int agg_merges() const { return trace_.num_agg_merges; }
  /// Results this query added to the recycler cache.
  int materialized() const { return trace_.num_materialized; }
  /// Executions of this query's template before this one (0 for ad-hoc).
  int64_t template_prior_runs() const { return trace_.template_prior_runs; }

  /// Pretty-prints up to `max_rows` rows (the status string on error).
  std::string ToString(int64_t max_rows = 20) const {
    if (!ok() || table_ == nullptr) return status_.ToString();
    return table_->ToString(max_rows);
  }

  // --- batch iteration (zero-copy column views) -------------------------
  /// A view batch of up to kDefaultBatchRows rows. Iteration shares the
  /// result columns; batches remain valid while the Result (or any other
  /// owner of the table) is alive.
  class BatchIterator {
   public:
    /// Iterator over `table` starting at row `pos`.
    BatchIterator(const Table* table, int64_t pos) : table_(table), pos_(pos) {}

    /// The current view batch (columns shared with the result table).
    Batch operator*() const {
      Batch batch;
      int64_t count =
          std::min(kDefaultBatchRows, table_->num_rows() - pos_);
      for (int c = 0; c < table_->num_columns(); ++c) {
        batch.columns.push_back(
            ColumnVector::Slice(table_->column(c), pos_, count));
      }
      batch.num_rows = count;
      return batch;
    }
    /// Advances to the next batch window.
    BatchIterator& operator++() {
      pos_ += kDefaultBatchRows;
      return *this;
    }
    /// True while this iterator has not reached `other` (the end).
    bool operator!=(const BatchIterator& other) const {
      return pos_ < other.pos_;
    }

   private:
    const Table* table_;
    int64_t pos_;
  };

  /// Range over the result's batches: `for (Batch b : result.Batches())`.
  class BatchRange {
   public:
    /// Range over the batches of `table` (may be nullptr: empty range).
    explicit BatchRange(const Table* table) : table_(table) {}
    /// Iterator at the first batch.
    BatchIterator begin() const { return BatchIterator(table_, 0); }
    /// Iterator past the last batch.
    BatchIterator end() const {
      return BatchIterator(table_, table_ == nullptr ? 0 : table_->num_rows());
    }

   private:
    const Table* table_;
  };

  BatchRange Batches() const { return BatchRange(table_.get()); }

 private:
  Status status_;
  TablePtr table_;
  double total_ms_ = 0;
  QueryTrace trace_;
};

}  // namespace recycledb
