#include "api/session.h"

#include <functional>

#include "api/database.h"
#include "api/validate.h"
#include "common/hash.h"
#include "common/string_util.h"
#include "plan/canonicalize.h"
#include "sql/lower.h"
#include "trace/recorder.h"

namespace recycledb {

Session::Session(Database* db, SessionOptions options)
    : db_(db), options_(std::move(options)) {}

Session::~Session() {
  // Workers hold a raw pointer to this session; wait out every async
  // submission before the stats/mutex are destroyed.
  std::unique_lock<std::mutex> lock(mu_);
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

Result Session::Sql(std::string_view sql) {
  PlanPtr plan;
  Status st = sql::SqlToPlan(sql, db_->catalog(), &plan);
  if (!st.ok()) {
    Result r = Result::Error(std::move(st));
    Record(r);
    return r;
  }
  if (plan->HasParams()) {
    Result r = Result::Error(Status::InvalidArgument(
        "statement has :parameter placeholders; compile it with "
        "Prepare(sql) and Bind() values:\n" +
        plan->Explain()));
    Record(r);
    return r;
  }
  NoteStatementOrigin(std::string(sql), ParamMap{});
  return RunPlan(plan);
}

Result Session::Execute(const Query& query) {
  if (query.plan() == nullptr) {
    Result r = Result::Error(Status::InvalidArgument("empty query"));
    Record(r);
    return r;
  }
  if (query.HasParams()) {
    Result r = Result::Error(Status::InvalidArgument(
        "query has unbound parameters; prepare it and Bind() values:\n" +
        query.Explain()));
    Record(r);
    return r;
  }
  return RunPlan(query.plan());
}

Result Session::Execute(PlanPtr plan) { return RunPlan(plan); }

std::future<Result> Session::Submit(const Query& query) {
  if (query.plan() == nullptr || query.HasParams()) {
    // Route through Execute for its error handling.
    Query q = query;
    return SubmitInternal([this, q] { return Execute(q); });
  }
  // Deep-clone: concurrent submissions of one Query must not race on
  // Bind's schema writes in the shared plan nodes.
  PlanPtr plan = query.plan()->CloneDeep();
  return SubmitInternal([this, plan = std::move(plan)] {
    return RunPlan(plan);
  });
}

std::future<Result> Session::Submit(PlanPtr plan) {
  return SubmitInternal(
      [this, plan = std::move(plan)] { return RunPlan(plan); });
}

std::future<Result> Session::SubmitInternal(std::function<Result()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_;
  }
  bool accepted = false;
  std::future<Result> future = db_->SubmitTask(
      [this, fn = std::move(fn)] {
        Result r = fn();
        {
          // Notify under the lock: ~Session may destroy the condvar the
          // moment inflight_ reaches 0 and the mutex is released.
          std::lock_guard<std::mutex> lock(mu_);
          --inflight_;
          inflight_cv_.notify_all();
        }
        return r;
      },
      &accepted);
  if (!accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  return future;
}

std::unique_ptr<PreparedStatement> Session::Prepare(const Query& query,
                                                    Status* status) {
  if (query.plan() == nullptr) {
    if (status != nullptr) *status = Status::InvalidArgument("empty query");
    return nullptr;
  }
  // The statement owns a private copy of the template: Prepare must not
  // mutate the caller's (possibly thread-shared) Query plan when it
  // pre-binds subtrees below.
  return PrepareTemplate(query.plan()->CloneDeep(), status);
}

std::unique_ptr<PreparedStatement> Session::Prepare(std::string_view sql,
                                                    Status* status) {
  PlanPtr tmpl;
  Status st = sql::SqlToPlan(sql, db_->catalog(), &tmpl);
  if (!st.ok()) {
    if (status != nullptr) *status = std::move(st);
    return nullptr;
  }
  return PrepareTemplate(std::move(tmpl), status, std::string(sql));
}

std::unique_ptr<PreparedStatement> Session::PrepareTemplate(
    PlanPtr tmpl, Status* status, std::string source_sql) {
  auto fail = [status](Status st) -> std::unique_ptr<PreparedStatement> {
    if (status != nullptr) *status = std::move(st);
    return nullptr;
  };
  // Canonicalize the template itself (parameters stay in place), so every
  // syntactic variant of a template — SQL or builder — fingerprints to the
  // same TemplateStats entry, and substituted instances start closer to
  // their canonical form. The original is kept for Explain's
  // pre-canonicalization view.
  PlanPtr pre_canonical;
  if (db_->options().canonicalize_plans) {
    PlanPtr canon = CanonicalizePlan(tmpl);
    if (canon != tmpl) {
      pre_canonical = std::move(tmpl);
      tmpl = std::move(canon);
    }
  }
  // Pre-validate and pre-bind every parameter-free subtree now, so each
  // Bind/Execute round only validates and clones the parameterized spine
  // (and structural template errors surface at Prepare, not first use).
  std::function<Status(const PlanPtr&)> prebind =
      [&](const PlanPtr& node) -> Status {
    if (!node->HasParams()) {
      RDB_RETURN_NOT_OK(ValidatePlan(node, db_->catalog(), nullptr));
      node->Bind(db_->catalog());
      return Status::OK();
    }
    for (const auto& c : node->children()) RDB_RETURN_NOT_OK(prebind(c));
    return Status::OK();
  };
  Status st = prebind(tmpl);
  if (!st.ok()) return fail(std::move(st));
  if (status != nullptr) *status = Status::OK();
  return std::unique_ptr<PreparedStatement>(
      new PreparedStatement(this, std::move(tmpl), std::move(pre_canonical),
                            std::move(source_sql)));
}

std::string Session::Explain(const Query& query) const {
  if (query.plan() == nullptr) return "(empty query)\n";
  const PlanPtr& plan = query.plan();
  std::string out =
      StrFormat("plan %016llx\n",
                (unsigned long long)HashString(plan->TreeFingerprint())) +
      plan->Explain();
  if (db_->options().canonicalize_plans) {
    PlanPtr canon = CanonicalizePlan(plan);
    out += StrFormat("canonical %016llx\n",
                     (unsigned long long)HashString(canon->TreeFingerprint()));
    out += canon != plan ? canon->Explain()
                         : std::string("  (already canonical)\n");
  }
  return out;
}

Result Session::RunPlan(const PlanPtr& plan) {
  Status st = ValidatePlan(plan, db_->catalog(), nullptr);
  if (!st.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      origin_pending_ = false;
    }
    Result r = Result::Error(std::move(st));
    Record(r);
    return r;
  }
  return RunValidatedPlan(plan);
}

Result Session::RunValidatedPlan(const PlanPtr& plan) {
  // Canonicalize on every execution path (recycler and bypass alike):
  // syntactic variants of one query must hash to the same fingerprints
  // before the recycler graph sees them. Unchanged subtrees are shared,
  // so this costs a spine rebuild at most.
  PlanPtr exec_plan = plan;
  if (db_->options().canonicalize_plans) {
    exec_plan = CanonicalizePlan(plan);
    if (exec_plan != plan &&
        exec_plan->template_hash() != plan->template_hash()) {
      // A dropped root (identity Project, TRUE Select) surfaces a shared
      // child as the new root; re-tag a private copy so the template
      // attribution survives without mutating the shared node.
      exec_plan = exec_plan->WithChildren(
          std::vector<PlanPtr>(exec_plan->children()));
      exec_plan->set_template_hash(plan->template_hash());
    }
  }
  // Consume the staged SQL origin (if any) before executing: whatever
  // happens below, the origin belongs to this statement only.
  trace::TraceRecorder* recorder = nullptr;
  bool has_origin = false;
  std::string origin_sql;
  ParamMap origin_params;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorder = recorder_;
    has_origin = origin_pending_;
    origin_pending_ = false;
    if (has_origin) {
      origin_sql = std::move(origin_sql_);
      origin_params = std::move(origin_params_);
    }
  }
  Result result;
  if (options_.bypass_recycler) {
    exec_plan->Bind(db_->catalog());
    QueryTrace trace;
    trace.template_hash = exec_plan->template_hash();
    trace.plan_fingerprint = HashString(exec_plan->TreeFingerprint());
    ExecResult exec = db_->raw_executor().Run(exec_plan);
    trace.blocks_scanned = exec.blocks_scanned;
    trace.blocks_pruned = exec.blocks_pruned;
    result = Result::Of(std::move(exec), std::move(trace));
  } else {
    QueryTrace trace;
    ExecResult exec = db_->recycler().Execute(exec_plan, &trace);
    result = Result::Of(std::move(exec), std::move(trace));
  }
  Record(result);
  if (recorder != nullptr && has_origin) {
    recorder->OnStatement(origin_sql, origin_params, result);
  }
  return result;
}

void Session::set_recorder(trace::TraceRecorder* recorder) {
  std::lock_guard<std::mutex> lock(mu_);
  recorder_ = recorder;
}

void Session::NoteStatementOrigin(std::string sql, const ParamMap& params) {
  std::lock_guard<std::mutex> lock(mu_);
  if (recorder_ == nullptr) return;
  origin_pending_ = true;
  origin_sql_ = std::move(sql);
  origin_params_ = params;
}

void Session::Record(const Result& result) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries;
  if (!result.ok()) {
    ++stats_.errors;
    return;
  }
  stats_.reuses += result.reuses();
  stats_.subsumption_reuses += result.subsumption_reuses();
  stats_.partial_reuses += result.partial_reuses();
  stats_.cold_hits += result.cold_hits();
  stats_.adoptions += result.adoptions();
  stats_.delta_reuses += result.delta_reuses();
  stats_.agg_merges += result.agg_merges();
  stats_.materializations += result.materialized();
  stats_.stalls += result.trace().num_stalls;
  stats_.blocks_scanned += result.trace().blocks_scanned;
  stats_.blocks_pruned += result.trace().blocks_pruned;
  stats_.total_ms += result.total_ms();
  if (options_.collect_traces && options_.max_traces > 0) {
    if (traces_.size() < options_.max_traces) {
      traces_.push_back(result.trace());
    } else {
      traces_[trace_head_] = result.trace();
      trace_head_ = (trace_head_ + 1) % options_.max_traces;
    }
  }
}

SessionStats Session::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<QueryTrace> Session::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryTrace> out;
  out.reserve(traces_.size());
  for (size_t i = 0; i < traces_.size(); ++i) {
    out.push_back(traces_[(trace_head_ + i) % traces_.size()]);
  }
  return out;
}

}  // namespace recycledb
