// Database: the embeddable engine facade.
//
// Owns the Catalog, the Recycler (the paper's contribution), a worker
// pool and an admission gate for asynchronous submissions. Thread-safe:
// concurrent sessions share one Database. See DESIGN.md "Public API &
// session model".
//
//   DatabaseOptions options;
//   options.recycler.mode = RecyclerMode::kSpeculation;
//   std::unique_ptr<Database> db;
//   Status st = Database::Open(options, &db);
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "api/query.h"
#include "api/result.h"
#include "api/session.h"
#include "common/admission.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "recycler/recycler.h"

namespace recycledb {

/// Engine-wide configuration.
struct DatabaseOptions {
  /// Recycler tunables (validated by Database::Open).
  RecyclerConfig recycler;
  /// Bound on simultaneously executing queries admitted through async
  /// Submit() calls (the paper's execution bound).
  int max_concurrent = 12;
  /// Worker threads serving async submissions.
  int async_threads = 2;
};

/// Validates recycler tunables, returning InvalidArgument for nonsense
/// (negative speculation_h, non-positive stall timeout, sub-4KB positive
/// cache budgets, aging alpha outside (0, 1], ...). cache_bytes == 0
/// (cache disabled) and cache_bytes < 0 (unlimited) are both valid.
Status ValidateRecyclerConfig(const RecyclerConfig& config);

class Database {
 public:
  /// Validates `options` and constructs the engine. On failure `*out` is
  /// untouched and the status says which option is invalid.
  static Status Open(DatabaseOptions options, std::unique_ptr<Database>* out);

  /// Convenience for tools and benches: aborts on invalid options.
  static std::unique_ptr<Database> OpenOrDie(DatabaseOptions options = {});

  ~Database();

  // ---- schema ----------------------------------------------------------
  Status CreateTable(const std::string& name, TablePtr table);
  /// Replaces a table and invalidates every cached result depending on it
  /// (the paper's update-commit semantics).
  Status ReplaceTable(const std::string& name, TablePtr table);
  /// The catalog, for workload generators that populate tables directly
  /// (tpch::Generate, skyserver::Setup).
  Catalog& catalog() { return catalog_; }

  // ---- sessions & queries ---------------------------------------------
  /// Opens a client session. Sessions must not outlive the Database.
  std::unique_ptr<Session> Connect(SessionOptions options = {});

  Query Scan(std::string table, std::vector<std::string> columns) {
    return Query::Scan(std::move(table), std::move(columns));
  }
  Query FunctionScan(std::string function, std::vector<ExprPtr> args) {
    return Query::FunctionScan(std::move(function), std::move(args));
  }

  /// One-shot execution on the built-in default session.
  Result Execute(const Query& query) { return default_session_->Execute(query); }
  Result Execute(PlanPtr plan) {
    return default_session_->Execute(std::move(plan));
  }
  /// Default-session prepared statement (single-client embedders).
  std::unique_ptr<PreparedStatement> Prepare(const Query& query,
                                             Status* status = nullptr) {
    return default_session_->Prepare(query, status);
  }

  // ---- cache control ---------------------------------------------------
  void InvalidateTable(const std::string& table);
  void FlushCache();
  int64_t TruncateGraph(int64_t idle_epochs);

  // ---- observability ---------------------------------------------------
  GraphStats graph_stats() { return recycler_.graph().Stats(); }
  const RecyclerCounters& counters() const { return recycler_.counters(); }
  const RecyclerConfig& config() const { return recycler_.config(); }
  const DatabaseOptions& options() const { return options_; }
  TemplateStats StatsForTemplate(uint64_t template_hash) const {
    return recycler_.TemplateStatsFor(template_hash);
  }

  /// White-box escape hatch for ablation benches and internal tests; the
  /// facade is the supported surface.
  Recycler& recycler() { return recycler_; }

 private:
  friend class Session;

  explicit Database(DatabaseOptions options);

  /// Runs `fn` on a worker thread under the admission gate. `*accepted`
  /// (optional) reports whether the pool took the task; on rejection
  /// (shutdown) the future is fulfilled with an error and `fn` is never
  /// invoked.
  std::future<Result> SubmitTask(std::function<Result()> fn,
                                 bool* accepted = nullptr);

  /// Executor for sessions that bypass the recycler.
  Executor& raw_executor() { return raw_executor_; }

  DatabaseOptions options_;
  Catalog catalog_;
  Recycler recycler_;
  Executor raw_executor_;
  AdmissionGate gate_;
  std::unique_ptr<Session> default_session_;
  /// Declared last: destroyed first, draining in-flight submissions while
  /// the engine state above is still alive.
  ThreadPool pool_;
};

}  // namespace recycledb
