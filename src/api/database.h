// Database: the embeddable engine facade.
//
// Owns the Catalog, the Recycler (the paper's contribution), a worker
// pool and an admission gate for asynchronous submissions. Thread-safe:
// concurrent sessions share one Database. See DESIGN.md "Public API &
// session model".
//
//   DatabaseOptions options;
//   options.recycler.mode = RecyclerMode::kSpeculation;
//   std::unique_ptr<Database> db;
//   Status st = Database::Open(options, &db);
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "api/result.h"
#include "api/session.h"
#include "common/admission.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "recycler/recycler.h"

namespace recycledb {

/// Engine-wide configuration.
struct DatabaseOptions {
  /// Recycler tunables (validated by Database::Open).
  RecyclerConfig recycler;
  /// Bound on simultaneously executing queries admitted through async
  /// Submit() calls (the paper's execution bound).
  int max_concurrent = 12;
  /// Worker threads serving async submissions.
  int async_threads = 2;
  /// Run every session-executed plan (and every prepared-statement
  /// template) through the canonicalizing rewrite pass, so syntactically
  /// different but semantically equal queries share fingerprints — and
  /// therefore recycler cache entries. Off: plans execute exactly as
  /// built (ablation / A-B comparisons).
  bool canonicalize_plans = true;
};

/// Validates recycler tunables, returning InvalidArgument for nonsense
/// (negative speculation_h, non-positive stall timeout, sub-4KB positive
/// cache budgets, aging alpha outside (0, 1], negative spill_min_benefit,
/// non-positive cold_tier_capacity_bytes with a spill_dir set, ...).
/// cache_bytes == 0 (cache disabled) and cache_bytes < 0 (unlimited) are
/// both valid. Whether spill_dir itself is usable is an I/O question and
/// is probed by Database::Open, not here.
Status ValidateRecyclerConfig(const RecyclerConfig& config);

/// The embeddable engine facade: owns the catalog, the recycler, the
/// async worker pool and the admission gate. Thread-safe; one Database
/// is shared by all of its Sessions.
class Database {
 public:
  /// Validates `options` and constructs the engine. On failure `*out` is
  /// untouched and the status says which option is invalid (including an
  /// unwritable `recycler.spill_dir`, which is probed here). With a
  /// spill_dir set, Open scans the directory and adopts spill files left
  /// by a previous process, so the recycler warms up from disk instead
  /// of starting cold.
  static Status Open(DatabaseOptions options, std::unique_ptr<Database>* out);

  /// Convenience for tools and benches: aborts on invalid options.
  static std::unique_ptr<Database> OpenOrDie(DatabaseOptions options = {});

  /// Drains the async pool, then tears down the engine. Sessions must
  /// already be gone.
  ~Database();

  // ---- schema ----------------------------------------------------------
  /// Registers `table` under `name`; AlreadyExists if the name is taken.
  Status CreateTable(const std::string& name, TablePtr table);
  /// Replaces a table and invalidates every cached result depending on it
  /// (the paper's update-commit semantics).
  Status ReplaceTable(const std::string& name, TablePtr table);
  /// Appends `delta`'s rows to table `name` (copy-on-append: readers and
  /// in-flight queries keep their immutable as-of snapshot). Cached
  /// results over the table are NOT discarded wholesale: entries delta
  /// maintenance can refresh — single-table select/project chains and
  /// decomposable aggregates, stamped with the row mark they were
  /// computed at — are kept and served as cached-prefix + delta-window
  /// rewrites on their next hit; everything else is invalidated. Schema
  /// of `delta` must match the registered table.
  Status AppendTable(const std::string& name, const Table& delta);
  /// The catalog, for workload generators that populate tables directly
  /// (tpch::Generate, skyserver::Setup).
  Catalog& catalog() { return catalog_; }

  // ---- sessions & queries ---------------------------------------------
  /// Opens a client session. Sessions must not outlive the Database.
  std::unique_ptr<Session> Connect(SessionOptions options = {});

  /// Query-builder root: base-table scan (see Query::Scan).
  Query Scan(std::string table, std::vector<std::string> columns) {
    return Query::Scan(std::move(table), std::move(columns));
  }
  /// Query-builder root: table-function scan (see Query::FunctionScan).
  Query FunctionScan(std::string function, std::vector<ExprPtr> args) {
    return Query::FunctionScan(std::move(function), std::move(args));
  }

  /// One-call SQL text execution on the built-in default session (see
  /// Session::Sql for error semantics).
  Result Sql(std::string_view sql) { return default_session_->Sql(sql); }

  /// One-shot execution on the built-in default session.
  Result Execute(const Query& query) { return default_session_->Execute(query); }
  /// One-shot raw-plan execution on the default session (generators).
  Result Execute(PlanPtr plan) {
    return default_session_->Execute(std::move(plan));
  }
  /// Default-session prepared statement (single-client embedders).
  std::unique_ptr<PreparedStatement> Prepare(const Query& query,
                                             Status* status = nullptr) {
    return default_session_->Prepare(query, status);
  }
  /// Default-session prepared statement from SQL text with `:name`
  /// placeholders (see Session::Prepare(std::string_view, Status*)).
  std::unique_ptr<PreparedStatement> Prepare(std::string_view sql,
                                             Status* status = nullptr) {
    return default_session_->Prepare(sql, status);
  }

  // ---- cache control ---------------------------------------------------
  /// Evicts every cached result depending on `table` (update commit).
  void InvalidateTable(const std::string& table);
  /// Evicts everything from the recycler cache (simulated refresh).
  void FlushCache();
  /// Removes recycler-graph subtrees idle for `idle_epochs` invocations;
  /// returns the number of nodes removed (see Recycler::TruncateGraph).
  int64_t TruncateGraph(int64_t idle_epochs);

  // ---- fleet tier ------------------------------------------------------
  /// One fleet refresh round over a shared spill directory: discovers
  /// peers' new spills as adoptable entries, applies fleet-wide purge
  /// records, performs stale-lease takeover and renews this instance's
  /// lease (see Recycler::RefreshFleet). `new_peer_entries` (optional)
  /// receives the number of newly discovered peer entries. No-op OK on a
  /// private tier. A standby keeps itself warm by calling this
  /// periodically — fleet::StandbyTailer wraps exactly that loop.
  Status RefreshFleet(int64_t* new_peer_entries = nullptr);

  // ---- observability ---------------------------------------------------
  /// Snapshot of recycler-graph size and cache footprint.
  GraphStats graph_stats() { return recycler_.graph().Stats(); }
  /// Global recycler counters (atomic; read at any time).
  const RecyclerCounters& counters() const { return recycler_.counters(); }
  /// The validated recycler configuration in effect.
  const RecyclerConfig& config() const { return recycler_.config(); }
  /// The options this Database was opened with.
  const DatabaseOptions& options() const { return options_; }
  /// Per-template reuse aggregate for `template_hash` (zeroes if unseen).
  TemplateStats StatsForTemplate(uint64_t template_hash) const {
    return recycler_.TemplateStatsFor(template_hash);
  }

  /// White-box escape hatch for ablation benches and internal tests; the
  /// facade is the supported surface.
  Recycler& recycler() { return recycler_; }

 private:
  friend class Session;

  explicit Database(DatabaseOptions options);

  /// Runs `fn` on a worker thread under the admission gate. `*accepted`
  /// (optional) reports whether the pool took the task; on rejection
  /// (shutdown) the future is fulfilled with an error and `fn` is never
  /// invoked.
  std::future<Result> SubmitTask(std::function<Result()> fn,
                                 bool* accepted = nullptr);

  /// Executor for sessions that bypass the recycler.
  Executor& raw_executor() { return raw_executor_; }

  DatabaseOptions options_;
  Catalog catalog_;
  Recycler recycler_;
  Executor raw_executor_;
  AdmissionGate gate_;
  std::unique_ptr<Session> default_session_;
  /// Declared last: destroyed first, draining in-flight submissions while
  /// the engine state above is still alive.
  ThreadPool pool_;
};

}  // namespace recycledb
