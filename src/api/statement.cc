#include "api/statement.h"

#include "api/database.h"
#include "api/session.h"
#include "api/validate.h"
#include "common/hash.h"
#include "common/string_util.h"

namespace recycledb {

PreparedStatement::PreparedStatement(Session* session, PlanPtr template_plan,
                                     PlanPtr pre_canonical,
                                     std::string source_sql)
    : session_(session),
      template_(std::move(template_plan)),
      source_sql_(std::move(source_sql)),
      pre_canonical_(std::move(pre_canonical)) {
  template_->CollectParams(&params_);
  fingerprint_ = template_->TemplateFingerprint();
  hash_ = HashString(fingerprint_);
  if (hash_ == 0) hash_ = 1;  // 0 is reserved for ad-hoc queries
  // Tag the template root: SubstituteParams clones propagate the hash, so
  // every bound plan carries its template identity to the recycler.
  template_->set_template_hash(hash_);
}

std::string PreparedStatement::Explain() const {
  std::string out =
      StrFormat("PreparedStatement %016llx\n", (unsigned long long)hash_);
  out += template_->Explain();
  if (pre_canonical_ != nullptr) {
    out += StrFormat(
        "pre-canonicalization %016llx\n",
        (unsigned long long)HashString(pre_canonical_->TemplateFingerprint()));
    out += pre_canonical_->Explain();
  }
  if (!params_.empty()) {
    out += "bindings:";
    for (const auto& p : params_) {
      auto it = bound_.find(p);
      out += it == bound_.end()
                 ? StrFormat(" $%s=<unbound>", p.c_str())
                 : StrFormat(" $%s=%s", p.c_str(),
                             DatumToString(it->second).c_str());
    }
    out += "\n";
  }
  return out;
}

PreparedStatement& PreparedStatement::Bind(const std::string& name,
                                           Datum value) {
  if (params_.count(name) == 0 && pending_error_.ok()) {
    pending_error_ = Status::InvalidArgument(
        "unknown parameter: $" + name + "\n" + Explain());
  }
  bound_[name] = std::move(value);
  return *this;
}

PreparedStatement& PreparedStatement::BindAll(const ParamMap& params) {
  for (const auto& [name, value] : params) Bind(name, value);
  return *this;
}

void PreparedStatement::ClearBindings() {
  bound_.clear();
  pending_error_ = Status::OK();
}

Status PreparedStatement::ToPlan(PlanPtr* out) {
  if (!pending_error_.ok()) return pending_error_;
  std::vector<std::string> missing;
  PlanPtr plan = template_->SubstituteParams(bound_, &missing);
  if (!missing.empty()) {
    std::set<std::string> unique(missing.begin(), missing.end());
    std::string names;
    for (const auto& m : unique) {
      if (!names.empty()) names += ", ";
      names += "$" + m;
    }
    return Status::InvalidArgument("unbound parameters: " + names + "\n" +
                                   Explain());
  }
  RDB_RETURN_NOT_OK(
      ValidatePlan(plan, session_->database()->catalog(), nullptr));
  *out = std::move(plan);
  return Status::OK();
}

Result PreparedStatement::Execute() {
  PlanPtr plan;
  Status st = ToPlan(&plan);
  if (!st.ok()) {
    Result r = Result::Error(std::move(st));
    session_->Record(r);
    return r;
  }
  // ToPlan already validated; skip the second tree walk.
  session_->NoteStatementOrigin(source_sql_, bound_);
  return session_->RunValidatedPlan(plan);
}

Result PreparedStatement::Execute(const ParamMap& params) {
  BindAll(params);
  return Execute();
}

std::future<Result> PreparedStatement::Submit() {
  PlanPtr plan;
  Status st = ToPlan(&plan);
  if (!st.ok()) {
    Result error = Result::Error(std::move(st));
    session_->Record(error);  // async failures count in session stats too
    std::promise<Result> prom;
    prom.set_value(std::move(error));
    return prom.get_future();
  }
  return session_->SubmitInternal(
      [session = session_, plan = std::move(plan)] {
        return session->RunValidatedPlan(plan);
      });
}

TemplateStats PreparedStatement::stats() const {
  return session_->database()->StatsForTemplate(hash_);
}

}  // namespace recycledb
