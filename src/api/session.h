// Session: a per-client handle onto a shared Database.
//
// Each session keeps its own statistics and trace ring and may override
// per-client execution settings (trace collection, recycler bypass)
// without affecting other sessions. Sessions are cheap; create one per
// client/thread. A Session is not thread-safe — concurrent clients each
// use their own — and must not outlive its Database.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "api/query.h"
#include "api/result.h"
#include "api/statement.h"
#include "common/status.h"

namespace recycledb {

class Database;

namespace trace {
class TraceRecorder;
}  // namespace trace

/// Per-session configuration overrides (the Database supplies defaults
/// for everything it does not override).
struct SessionOptions {
  /// Label used in traces/diagnostics.
  std::string name = "session";
  /// Keep a ring of per-query traces (session-local observability).
  bool collect_traces = true;
  /// Trace ring capacity.
  size_t max_traces = 1024;
  /// Override: execute this session's queries WITHOUT the recycler
  /// (plain pipelined execution). For per-client A/B comparisons against
  /// the same data.
  bool bypass_recycler = false;
};

/// Session-local aggregate statistics.
struct SessionStats {
  /// Queries executed through this session (including failures).
  int64_t queries = 0;
  /// Queries rejected by validation or failed in execution.
  int64_t errors = 0;
  /// Cached results consumed (exact + subsumed + stitched).
  int64_t reuses = 0;
  /// Reuses derived via single-superset subsumption.
  int64_t subsumption_reuses = 0;
  /// Reuses answered by partial-range stitching.
  int64_t partial_reuses = 0;
  /// Reuses served by loading a spilled result from the cold tier
  /// (counted inside reuses as well).
  int64_t cold_hits = 0;
  /// Cold-tier orphans adopted during this session's query preparation
  /// (restart images or fleet peers' spills; not themselves reuses).
  int64_t adoptions = 0;
  /// Reuses served by delta maintenance over append-stale entries
  /// (counted inside reuses as well).
  int64_t delta_reuses = 0;
  /// Delta reuses merging cached aggregate state with the delta window
  /// (counted inside delta_reuses as well).
  int64_t agg_merges = 0;
  /// Results this session's queries added to the cache.
  int64_t materializations = 0;
  /// Waits on another stream's in-flight materialization.
  int64_t stalls = 0;
  /// Scan blocks read vs. skipped by zone-map pruning across this
  /// session's queries (pruned + scanned = blocks touched without
  /// pruning).
  int64_t blocks_scanned = 0;
  int64_t blocks_pruned = 0;
  /// Total execution time across this session's queries.
  double total_ms = 0;
};

/// A per-client handle onto a shared Database (see the file comment for
/// the threading and lifetime contract).
class Session {
 public:
  /// Blocks until every async Submit issued through this session has
  /// completed (workers hold a raw pointer to the session's stats).
  ~Session();

  // ---- query building --------------------------------------------------
  /// Query-builder root: base-table scan (see Query::Scan).
  Query Scan(std::string table, std::vector<std::string> columns) const {
    return Query::Scan(std::move(table), std::move(columns));
  }
  /// Query-builder root: table-function scan (see Query::FunctionScan).
  Query FunctionScan(std::string function, std::vector<ExprPtr> args) const {
    return Query::FunctionScan(std::move(function), std::move(args));
  }

  // ---- execution -------------------------------------------------------
  /// One-call SQL text execution: lexes, parses, lowers onto the plan IR,
  /// canonicalizes (per DatabaseOptions::canonicalize_plans) and executes.
  /// Every failure — syntax, unknown name, type error — comes back as a
  /// Result carrying a Status with line/column and a caret snippet; the
  /// engine never aborts on bad SQL. Statements with `:name` placeholders
  /// are rejected here: compile those with Prepare(sql).
  Result Sql(std::string_view sql);

  /// Validates and executes a parameter-free query.
  Result Execute(const Query& query);
  /// Executes a raw plan (workload generators).
  Result Execute(PlanPtr plan);
  /// Async execution routed through the database admission gate. Deep-
  /// clones the plan so the same Query object can be submitted
  /// concurrently.
  std::future<Result> Submit(const Query& query);
  /// Async raw-plan variant; transfers ownership of `plan` (do not
  /// submit one unbound plan object twice).
  std::future<Result> Submit(PlanPtr plan);

  /// Compiles a (possibly parameterized) query into a prepared statement
  /// owned by the caller. Returns nullptr on invalid templates, with the
  /// reason in `*status` (when non-null). The statement must not outlive
  /// this session.
  std::unique_ptr<PreparedStatement> Prepare(const Query& query,
                                             Status* status = nullptr);

  /// Compiles SQL text with `:name` placeholders into a prepared
  /// statement (each `:p` becomes a template parameter bound later with
  /// Bind("p", ...)). The template is canonicalized before its
  /// fingerprint is taken, so syntactic variants of one query — and the
  /// equivalent builder form — share one TemplateStats entry. Returns
  /// nullptr on lex/parse/lowering errors with the caret-snippet reason
  /// in `*status` (when non-null).
  std::unique_ptr<PreparedStatement> Prepare(std::string_view sql,
                                             Status* status = nullptr);

  /// Pre- vs post-canonicalization view of a query: the plan as built
  /// with its fingerprint hash, and (when canonicalization is enabled)
  /// the canonical form the engine actually fingerprints and executes.
  std::string Explain(const Query& query) const;

  // ---- observability ---------------------------------------------------
  /// Attaches a trace recorder (nullptr detaches). Every successful
  /// synchronous SQL-originated statement — Sql() calls and prepared-
  /// statement Execute() rounds — is recorded with its text, bindings,
  /// reuse decision and result digest. Builder-built queries and async
  /// Submit() executions are not recorded (they have no replayable SQL
  /// origin). The recorder must outlive its attachment.
  void set_recorder(trace::TraceRecorder* recorder);

  /// Snapshot of this session's aggregate statistics.
  SessionStats stats() const;
  /// Most recent traces, oldest first (empty if collect_traces is off).
  std::vector<QueryTrace> traces() const;
  /// The options this session was opened with.
  const SessionOptions& options() const { return options_; }
  /// The owning Database.
  Database* database() const { return db_; }

 private:
  friend class Database;
  friend class PreparedStatement;

  Session(Database* db, SessionOptions options);

  /// Shared Prepare tail: canonicalize + prebind an owned template.
  /// `source_sql` is the template's SQL text (empty for builder
  /// templates), kept so recorded executions are replayable.
  std::unique_ptr<PreparedStatement> PrepareTemplate(
      PlanPtr tmpl, Status* status, std::string source_sql = std::string());
  /// Validates, binds and runs a plan, recording session stats/traces.
  Result RunPlan(const PlanPtr& plan);
  /// Same, for plans a PreparedStatement already validated.
  Result RunValidatedPlan(const PlanPtr& plan);
  /// Wraps `fn` with in-flight accounting and hands it to the database
  /// pool (used by Submit and PreparedStatement::Submit).
  std::future<Result> SubmitInternal(std::function<Result()> fn);
  void Record(const Result& result);
  /// Stages the SQL origin (statement text + bindings) of the execution
  /// about to run, for the attached recorder. Consumed (and cleared) by
  /// the next RunValidatedPlan; cleared by RunPlan on validation failure.
  void NoteStatementOrigin(std::string sql, const ParamMap& params);

  Database* db_;
  SessionOptions options_;
  /// Guards stats_/traces_/inflight_: Submit() fulfills results on
  /// database worker threads while the client thread reads stats.
  mutable std::mutex mu_;
  std::condition_variable inflight_cv_;
  int inflight_ = 0;
  SessionStats stats_;
  /// Fixed-capacity trace ring: traces_[trace_head_] is the oldest entry
  /// once the ring has wrapped.
  std::vector<QueryTrace> traces_;
  size_t trace_head_ = 0;
  /// Attached workload recorder (nullptr = off) and the staged SQL
  /// origin of the execution in flight; all guarded by mu_.
  trace::TraceRecorder* recorder_ = nullptr;
  bool origin_pending_ = false;
  std::string origin_sql_;
  ParamMap origin_params_;
};

}  // namespace recycledb
