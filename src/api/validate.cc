#include "api/validate.h"

#include <vector>

#include "common/string_util.h"
#include "plan/table_function.h"

namespace recycledb {

namespace {

Status ExprError(const Expr& expr, const std::string& what) {
  return Status::InvalidArgument(what + " in expression " +
                                 expr.Fingerprint(nullptr));
}

}  // namespace

Status CheckExprType(const Expr& expr, const Schema& input, TypeId* out) {
  auto ok = [out](TypeId t) {
    if (out != nullptr) *out = t;
    return Status::OK();
  };
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      int idx = input.IndexOf(expr.column_name());
      if (idx < 0) {
        return Status::InvalidArgument("unknown column: " +
                                       expr.column_name());
      }
      return ok(input.field(idx).type);
    }
    case ExprKind::kLiteral: {
      if (std::holds_alternative<std::monostate>(expr.literal())) {
        return ExprError(expr, "null literal (engine is NULL-free)");
      }
      return ok(DatumType(expr.literal()));
    }
    case ExprKind::kParam:
      return Status::InvalidArgument("unbound parameter: $" +
                                     expr.param_name());
    case ExprKind::kCompare: {
      TypeId l, r;
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &l));
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[1], input, &r));
      if ((l == TypeId::kString) != (r == TypeId::kString)) {
        return ExprError(expr,
                         StrFormat("type mismatch: cannot compare %s to %s",
                                   TypeName(l), TypeName(r)));
      }
      return ok(TypeId::kBool);
    }
    case ExprKind::kLogical: {
      for (const auto& c : expr.children()) {
        TypeId t;
        RDB_RETURN_NOT_OK(CheckExprType(*c, input, &t));
        if (t != TypeId::kBool) {
          return ExprError(expr, "logical operand is not boolean");
        }
      }
      return ok(TypeId::kBool);
    }
    case ExprKind::kArith: {
      TypeId l, r;
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &l));
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[1], input, &r));
      if (!IsNumeric(l) || !IsNumeric(r)) {
        return ExprError(expr, "arithmetic on non-numeric operand");
      }
      if (l == TypeId::kDouble || r == TypeId::kDouble) {
        return ok(TypeId::kDouble);
      }
      if (l == TypeId::kInt64 || r == TypeId::kInt64) return ok(TypeId::kInt64);
      return ok(TypeId::kInt32);
    }
    case ExprKind::kFunc: {
      const std::string& fn = expr.func_name();
      if (fn == "year" || fn == "month") {
        if (expr.children().size() != 1) {
          return ExprError(expr, fn + " takes one argument");
        }
        TypeId t;
        RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &t));
        if (t != TypeId::kDate && t != TypeId::kInt32) {
          return ExprError(expr, fn + " argument must be a date");
        }
        return ok(TypeId::kInt32);
      }
      if (fn == "bin") {
        if (expr.children().size() != 2) {
          return ExprError(expr, "bin takes (value, width)");
        }
        TypeId t;
        RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &t));
        if (!IsNumeric(t)) {
          return ExprError(expr, "bin value must be numeric");
        }
        const Expr& width = *expr.children()[1];
        if (width.kind() != ExprKind::kLiteral) {
          return ExprError(expr, "bin width must be a literal");
        }
        if (!IsNumeric(DatumType(width.literal())) ||
            DatumAsInt64(width.literal()) <= 0) {
          return ExprError(expr, "bin width must be a positive number");
        }
        return ok(TypeId::kInt64);
      }
      return ExprError(expr, "unknown function: " + fn);
    }
    case ExprKind::kCase: {
      TypeId c, t, e;
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &c));
      if (c != TypeId::kBool) {
        return ExprError(expr, "CASE condition is not boolean");
      }
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[1], input, &t));
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[2], input, &e));
      if (t == e) return ok(t);
      if (!IsNumeric(t) || !IsNumeric(e)) {
        return ExprError(expr, "CASE branch type mismatch");
      }
      if (t == TypeId::kDouble || e == TypeId::kDouble) {
        return ok(TypeId::kDouble);
      }
      return ok(TypeId::kInt64);
    }
    case ExprKind::kInList: {
      TypeId t;
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &t));
      for (const auto& v : expr.in_values()) {
        bool v_string = DatumType(v) == TypeId::kString;
        if (std::holds_alternative<std::monostate>(v) ||
            v_string != (t == TypeId::kString)) {
          return ExprError(expr, "IN list value type mismatch");
        }
      }
      return ok(TypeId::kBool);
    }
    case ExprKind::kLike: {
      TypeId t;
      RDB_RETURN_NOT_OK(CheckExprType(*expr.children()[0], input, &t));
      if (t != TypeId::kString) {
        return ExprError(expr, "LIKE operand must be a string");
      }
      return ok(TypeId::kBool);
    }
  }
  return Status::Internal("bad expression kind");
}

namespace {

Status NodeError(const PlanNode& node, const std::string& what) {
  return Status::InvalidArgument(what + "\nin plan:\n" + node.Explain());
}

Status NodeError(const PlanNode& node, const Status& cause) {
  return NodeError(node, cause.message());
}

Status ValidateNode(const PlanNode& node, const Catalog& catalog,
                    Schema* out) {
  // A bound subtree already passed these checks (the facade validates
  // before binding; internal generators construct valid plans). This is
  // what makes re-executing a prepared statement cheap: only the freshly
  // substituted parameterized spine is walked.
  if (node.bound()) {
    *out = node.output_schema();
    return Status::OK();
  }
  std::vector<Schema> child_schemas;
  child_schemas.reserve(node.children().size());
  for (const auto& c : node.children()) {
    Schema s;
    RDB_RETURN_NOT_OK(ValidateNode(*c, catalog, &s));
    child_schemas.push_back(std::move(s));
  }

  switch (node.type()) {
    case OpType::kScan: {
      TablePtr t = catalog.GetTable(node.table_name());
      if (t == nullptr) {
        return NodeError(node, "unknown table: " + node.table_name());
      }
      if (node.scan_columns().empty()) {
        return NodeError(node, "scan selects no columns");
      }
      std::vector<Field> fields;
      for (const auto& col : node.scan_columns()) {
        int idx = t->schema().IndexOf(col);
        if (idx < 0) {
          return NodeError(node, "unknown column: " + node.table_name() +
                                     "." + col);
        }
        fields.push_back(t->schema().field(idx));
      }
      *out = Schema(std::move(fields));
      return Status::OK();
    }
    case OpType::kFunctionScan: {
      if (!node.function_arg_exprs().empty()) {
        std::set<std::string> params;
        node.CollectParams(&params);
        std::string names;
        for (const auto& p : params) {
          if (!names.empty()) names += ", ";
          names += "$" + p;
        }
        return NodeError(node, "unbound function-scan parameters: " + names);
      }
      const TableFunction* fn =
          TableFunctionRegistry::Global().Get(node.function_name());
      if (fn == nullptr) {
        return NodeError(node,
                         "unknown table function: " + node.function_name());
      }
      for (const auto& a : node.function_args()) {
        if (std::holds_alternative<std::monostate>(a)) {
          return NodeError(node, "null argument to " + node.function_name());
        }
      }
      if (!fn->arg_types.empty()) {
        if (node.function_args().size() != fn->arg_types.size()) {
          return NodeError(
              node, StrFormat("%s takes %zu arguments, got %zu",
                              node.function_name().c_str(),
                              fn->arg_types.size(),
                              node.function_args().size()));
        }
        for (size_t i = 0; i < fn->arg_types.size(); ++i) {
          TypeId expected = fn->arg_types[i];
          TypeId actual = DatumType(node.function_args()[i]);
          bool ok = expected == actual ||
                    (IsNumeric(expected) && IsNumeric(actual));
          if (!ok) {
            return NodeError(
                node, StrFormat("%s argument %zu: expected %s, got %s",
                                node.function_name().c_str(), i + 1,
                                TypeName(expected), TypeName(actual)));
          }
        }
      }
      *out = fn->schema_fn(node.function_args());
      return Status::OK();
    }
    case OpType::kSelect: {
      TypeId t;
      Status st = CheckExprType(*node.predicate(), child_schemas[0], &t);
      if (!st.ok()) return NodeError(node, st);
      if (t != TypeId::kBool) {
        return NodeError(node, "filter predicate is not boolean");
      }
      *out = child_schemas[0];
      return Status::OK();
    }
    case OpType::kProject: {
      if (node.projections().empty()) {
        return NodeError(node, "projection computes no columns");
      }
      std::vector<Field> fields;
      for (const auto& item : node.projections()) {
        TypeId t;
        Status st = CheckExprType(*item.expr, child_schemas[0], &t);
        if (!st.ok()) return NodeError(node, st);
        fields.push_back({item.out_name, t});
      }
      *out = Schema(std::move(fields));
      return Status::OK();
    }
    case OpType::kAggregate: {
      const Schema& in = child_schemas[0];
      std::vector<Field> fields;
      for (const auto& g : node.group_by()) {
        int idx = in.IndexOf(g);
        if (idx < 0) return NodeError(node, "unknown group-by column: " + g);
        fields.push_back(in.field(idx));
      }
      for (const auto& a : node.aggregates()) {
        TypeId t;
        Status st = CheckExprType(*a.arg, in, &t);
        if (!st.ok()) return NodeError(node, st);
        if ((a.fn == AggFunc::kSum || a.fn == AggFunc::kAvg) &&
            !IsNumeric(t)) {
          return NodeError(node, StrFormat("%s over non-numeric argument",
                                           AggFuncName(a.fn)));
        }
        fields.push_back({a.out_name, AggResultType(a.fn, t)});
      }
      *out = Schema(std::move(fields));
      return Status::OK();
    }
    case OpType::kHashJoin: {
      const Schema& l = child_schemas[0];
      const Schema& r = child_schemas[1];
      if (node.left_keys().empty() ||
          node.left_keys().size() != node.right_keys().size()) {
        return NodeError(node, "join key lists must be non-empty and equal "
                               "length");
      }
      for (size_t i = 0; i < node.left_keys().size(); ++i) {
        int li = l.IndexOf(node.left_keys()[i]);
        if (li < 0) {
          return NodeError(node,
                           "unknown left join key: " + node.left_keys()[i]);
        }
        int ri = r.IndexOf(node.right_keys()[i]);
        if (ri < 0) {
          return NodeError(node,
                           "unknown right join key: " + node.right_keys()[i]);
        }
        // The join's row comparator requires identical key types.
        if (l.field(li).type != r.field(ri).type) {
          return NodeError(
              node, StrFormat("join key type mismatch: %s is %s but %s is %s",
                              node.left_keys()[i].c_str(),
                              TypeName(l.field(li).type),
                              node.right_keys()[i].c_str(),
                              TypeName(r.field(ri).type)));
        }
      }
      std::vector<Field> fields = l.fields();
      if (node.join_kind() == JoinKind::kInner ||
          node.join_kind() == JoinKind::kLeftOuter ||
          node.join_kind() == JoinKind::kSingle) {
        for (const auto& f : r.fields()) {
          if (l.Has(f.name)) {
            return NodeError(node, "duplicate join output column: " + f.name);
          }
          fields.push_back(f);
        }
      }
      *out = Schema(std::move(fields));
      return Status::OK();
    }
    case OpType::kOrderBy:
    case OpType::kTopN: {
      for (const auto& k : node.sort_keys()) {
        if (child_schemas[0].IndexOf(k.column) < 0) {
          return NodeError(node, "unknown sort column: " + k.column);
        }
      }
      if (node.type() == OpType::kTopN && node.limit() <= 0) {
        return NodeError(node, "top-N limit must be positive");
      }
      *out = child_schemas[0];
      return Status::OK();
    }
    case OpType::kLimit:
      if (node.limit() < 0) {
        return NodeError(node, "limit must be non-negative");
      }
      *out = child_schemas[0];
      return Status::OK();
    case OpType::kUnionAll: {
      if (child_schemas.empty()) {
        return NodeError(node, "union has no children");
      }
      const Schema& first = child_schemas[0];
      for (const auto& s : child_schemas) {
        if (s.num_fields() != first.num_fields()) {
          return NodeError(node, "union children arity mismatch");
        }
        for (int i = 0; i < s.num_fields(); ++i) {
          if (s.field(i).type != first.field(i).type) {
            return NodeError(node, "union children type mismatch");
          }
        }
      }
      *out = first;
      return Status::OK();
    }
    case OpType::kCachedScan: {
      if (node.cached_result() == nullptr) {
        return NodeError(node, "cached scan without a result");
      }
      const Schema& cached = node.cached_result()->schema();
      if (static_cast<int>(node.scan_columns().size()) !=
          cached.num_fields()) {
        return NodeError(node, "cached scan column-rename arity mismatch");
      }
      std::vector<Field> fields;
      for (int i = 0; i < cached.num_fields(); ++i) {
        fields.push_back({node.scan_columns()[i], cached.field(i).type});
      }
      *out = Schema(std::move(fields));
      return Status::OK();
    }
  }
  return Status::Internal("bad plan operator");
}

}  // namespace

Status ValidatePlan(const PlanPtr& plan, const Catalog& catalog,
                    Schema* out_schema) {
  if (plan == nullptr) return Status::InvalidArgument("plan is null");
  Schema schema;
  RDB_RETURN_NOT_OK(ValidateNode(*plan, catalog, &schema));
  if (out_schema != nullptr) *out_schema = std::move(schema);
  return Status::OK();
}

}  // namespace recycledb
