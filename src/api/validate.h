// Non-aborting plan/expression validation for the public API.
//
// The internal binder (PlanNode::Bind, Expr::DeduceType) treats invalid
// plans as programmer errors and RDB_CHECK-aborts, which is the right
// contract for our own generators but not for an embeddable API surface
// where queries and parameter bindings come from the host application.
// These mirrors perform the same checks bottom-up, without mutating the
// plan, and return Status so Session/PreparedStatement can reject bad
// input (unknown columns, unbound parameters, type mismatches) with an
// Explain() rendering of the offending operator instead of aborting.
#pragma once

#include "common/status.h"
#include "plan/plan.h"

namespace recycledb {

/// Type-checks `expr` against `input` without aborting. On success `*out`
/// (optional) receives the deduced result type. Unbound parameters,
/// unknown columns/functions and operand type mismatches yield
/// InvalidArgument.
Status CheckExprType(const Expr& expr, const Schema& input, TypeId* out);

/// Validates `plan` bottom-up against `catalog`: resolves output schemas,
/// checks column references, predicate/projection/aggregate types, join
/// keys and union compatibility — every condition Bind() would abort on,
/// plus unresolved parameter placeholders. Does not mutate the plan. On
/// success `*out_schema` (optional) receives the plan's output schema; on
/// failure the message includes the offending operator subtree.
Status ValidatePlan(const PlanPtr& plan, const Catalog& catalog,
                    Schema* out_schema);

}  // namespace recycledb
