#include "api/database.h"

#include <algorithm>

#include "common/string_util.h"

namespace recycledb {

Status ValidateRecyclerConfig(const RecyclerConfig& config) {
  if (config.speculation_h < 0) {
    return Status::InvalidArgument(
        StrFormat("speculation_h must be >= 0 (got %g)", config.speculation_h));
  }
  if (config.stall_timeout_ms <= 0) {
    return Status::InvalidArgument(
        StrFormat("stall_timeout_ms must be positive (got %lld)",
                  (long long)config.stall_timeout_ms));
  }
  // cache_bytes: < 0 means unlimited and 0 disables caching; a positive
  // budget smaller than one vector of rows cannot hold any result and is
  // almost certainly a bytes-vs-megabytes mistake.
  if (config.cache_bytes > 0 && config.cache_bytes < 4096) {
    return Status::InvalidArgument(
        StrFormat("cache_bytes of %lld cannot hold any result; use 0 to "
                  "disable caching or < 0 for unlimited",
                  (long long)config.cache_bytes));
  }
  if (!(config.aging_alpha > 0.0) || config.aging_alpha > 1.0) {
    return Status::InvalidArgument(
        StrFormat("aging_alpha must be in (0, 1] (got %g)",
                  config.aging_alpha));
  }
  if (config.speculation_buffer_cap <= 0) {
    return Status::InvalidArgument(
        StrFormat("speculation_buffer_cap must be positive (got %lld)",
                  (long long)config.speculation_buffer_cap));
  }
  if (config.partial_min_cover < 0.0 || config.partial_min_cover > 1.0) {
    return Status::InvalidArgument(
        StrFormat("partial_min_cover must be in [0, 1] (got %g)",
                  config.partial_min_cover));
  }
  if (config.proactive_topn_limit <= 0) {
    return Status::InvalidArgument(
        StrFormat("proactive_topn_limit must be positive (got %lld)",
                  (long long)config.proactive_topn_limit));
  }
  if (config.cube_distinct_threshold < 0) {
    return Status::InvalidArgument(
        StrFormat("cube_distinct_threshold must be >= 0 (got %lld)",
                  (long long)config.cube_distinct_threshold));
  }
  // Cold-tier options. The threshold is checked unconditionally (a
  // negative benefit is impossible, so a negative threshold is always a
  // mistake); the capacity only matters once a spill_dir enables the
  // tier.
  if (!(config.spill_min_benefit >= 0.0)) {
    return Status::InvalidArgument(
        StrFormat("spill_min_benefit must be >= 0 (got %g)",
                  config.spill_min_benefit));
  }
  if (!config.spill_dir.empty() && config.cold_tier_capacity_bytes <= 0) {
    return Status::InvalidArgument(
        StrFormat("cold_tier_capacity_bytes must be positive when "
                  "spill_dir is set (got %lld); leave spill_dir empty to "
                  "disable the cold tier",
                  (long long)config.cold_tier_capacity_bytes));
  }
  // Fleet tier: both flags are properties of the spill directory and are
  // meaningless without one.
  if (config.spill_dir.empty()) {
    if (config.shared_spill_dir) {
      return Status::InvalidArgument(
          "shared_spill_dir requires spill_dir to be set");
    }
    if (config.spill_read_only) {
      return Status::InvalidArgument(
          "spill_read_only requires spill_dir to be set");
    }
  }
  if (config.spill_read_only && !config.shared_spill_dir) {
    return Status::InvalidArgument(
        "spill_read_only requires shared_spill_dir (a private tier that "
        "can never write is useless)");
  }
  if (config.shared_spill_dir) {
    if (config.fleet_lease_ms <= 0) {
      return Status::InvalidArgument(
          StrFormat("fleet_lease_ms must be positive (got %lld)",
                    (long long)config.fleet_lease_ms));
    }
    for (char c : config.fleet_instance) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-';
      if (!ok) {
        return Status::InvalidArgument(
            StrFormat("fleet_instance %s is not filename-safe (allowed: "
                      "[A-Za-z0-9_-])",
                      config.fleet_instance.c_str()));
      }
    }
  }
  return Status::OK();
}

Status Database::Open(DatabaseOptions options, std::unique_ptr<Database>* out) {
  RDB_RETURN_NOT_OK(ValidateRecyclerConfig(options.recycler));
  if (options.max_concurrent <= 0) {
    return Status::InvalidArgument(
        StrFormat("max_concurrent must be positive (got %d)",
                  options.max_concurrent));
  }
  if (options.async_threads <= 0) {
    return Status::InvalidArgument(
        StrFormat("async_threads must be positive (got %d)",
                  options.async_threads));
  }
  if (!options.recycler.spill_dir.empty()) {
    // Probe the directory now so an unusable spill_dir surfaces here as
    // an actionable Status instead of silently degrading later. The
    // probe matches the mode: an adopt-only standby on a read-only
    // mount must open cleanly (no create, no write), while a writable
    // tier over a genuinely unwritable directory is still an error.
    if (options.recycler.spill_read_only) {
      RDB_RETURN_NOT_OK(
          ColdTier::ValidateSpillDirReadable(options.recycler.spill_dir));
    } else {
      RDB_RETURN_NOT_OK(
          ColdTier::ValidateSpillDir(options.recycler.spill_dir));
    }
  }
  out->reset(new Database(std::move(options)));
  return Status::OK();
}

std::unique_ptr<Database> Database::OpenOrDie(DatabaseOptions options) {
  std::unique_ptr<Database> db;
  Status st = Open(std::move(options), &db);
  RDB_CHECK_MSG(st.ok(), st.ToString().c_str());
  return db;
}

Database::Database(DatabaseOptions options)
    : options_(std::move(options)),
      recycler_(&catalog_, options_.recycler),
      raw_executor_(&catalog_),
      gate_(options_.max_concurrent),
      pool_(options_.async_threads) {
  raw_executor_.set_zone_map_pruning(options_.recycler.enable_zone_map_pruning);
  SessionOptions session_options;
  session_options.name = "default";
  default_session_.reset(new Session(this, std::move(session_options)));
}

Database::~Database() {
  // pool_ is declared last and therefore destroyed first; its destructor
  // drains in-flight submissions while catalog/recycler/sessions are
  // still alive.
}

Status Database::CreateTable(const std::string& name, TablePtr table) {
  return catalog_.RegisterTable(name, std::move(table));
}

Status Database::ReplaceTable(const std::string& name, TablePtr table) {
  RDB_RETURN_NOT_OK(catalog_.ReplaceTable(name, std::move(table)));
  recycler_.InvalidateTable(name);
  return Status::OK();
}

Status Database::AppendTable(const std::string& name, const Table& delta) {
  RDB_RETURN_NOT_OK(catalog_.AppendRows(name, delta));
  recycler_.OnTableAppended(name);
  return Status::OK();
}

std::unique_ptr<Session> Database::Connect(SessionOptions options) {
  return std::unique_ptr<Session>(new Session(this, std::move(options)));
}

void Database::InvalidateTable(const std::string& table) {
  recycler_.InvalidateTable(table);
}

void Database::FlushCache() { recycler_.FlushCache(); }

int64_t Database::TruncateGraph(int64_t idle_epochs) {
  return recycler_.TruncateGraph(idle_epochs);
}

Status Database::RefreshFleet(int64_t* new_peer_entries) {
  return recycler_.RefreshFleet(new_peer_entries);
}

std::future<Result> Database::SubmitTask(std::function<Result()> fn,
                                         bool* accepted) {
  auto promise = std::make_shared<std::promise<Result>>();
  std::future<Result> future = promise->get_future();
  bool ok = pool_.Submit([this, promise, fn = std::move(fn)] {
    AdmissionSlot slot(&gate_);
    promise->set_value(fn());
  });
  if (!ok) {
    promise->set_value(
        Result::Error(Status::Internal("database is shutting down")));
  }
  if (accepted != nullptr) *accepted = ok;
  return future;
}

}  // namespace recycledb
