// Unit tests for src/expr: evaluation, type deduction, fingerprints,
// renaming, conjunct splitting, aggregate decomposition.
#include <gtest/gtest.h>

#include "expr/aggregate.h"
#include "expr/expression.h"

namespace recycledb {
namespace {

Schema TestSchema() {
  return Schema({{"a", TypeId::kInt32},
                 {"b", TypeId::kDouble},
                 {"s", TypeId::kString},
                 {"d", TypeId::kDate}});
}

Batch TestBatch() {
  Batch batch;
  batch.columns = {MakeColumn(TypeId::kInt32), MakeColumn(TypeId::kDouble),
                   MakeColumn(TypeId::kString), MakeColumn(TypeId::kDate)};
  auto add = [&](int32_t a, double b, const char* s, int32_t d) {
    batch.columns[0]->Append(Datum(a));
    batch.columns[1]->Append(Datum(b));
    batch.columns[2]->Append(Datum(std::string(s)));
    batch.columns[3]->Append(Datum(d));
    ++batch.num_rows;
  };
  add(1, 1.5, "apple pie", MakeDate(1995, 3, 15));
  add(2, 2.5, "banana", MakeDate(1996, 7, 1));
  add(3, 3.5, "apple tart", MakeDate(1997, 1, 20));
  return batch;
}

TEST(ExprEvalTest, ColumnRef) {
  Batch b = TestBatch();
  ColumnPtr c = Expr::Column("a")->Eval(b, TestSchema());
  EXPECT_EQ(c->Raw<int32_t>()[2], 3);
}

TEST(ExprEvalTest, Arithmetic) {
  Batch b = TestBatch();
  // a * 2 + b  -> double
  ExprPtr e = Expr::Arith(
      ArithOp::kAdd,
      Expr::Arith(ArithOp::kMul, Expr::Column("a"), Expr::Literal(int64_t{2})),
      Expr::Column("b"));
  EXPECT_EQ(e->DeduceType(TestSchema()), TypeId::kDouble);
  ColumnPtr c = e->Eval(b, TestSchema());
  EXPECT_DOUBLE_EQ(c->Raw<double>()[1], 6.5);
}

TEST(ExprEvalTest, IntegerDivisionAndZeroGuard) {
  Batch b = TestBatch();
  ExprPtr e = Expr::Arith(ArithOp::kDiv, Expr::Literal(int64_t{10}),
                          Expr::Literal(int64_t{0}));
  ColumnPtr c = e->Eval(b, TestSchema());
  EXPECT_EQ(c->Raw<int64_t>()[0], 0);  // div-by-zero yields 0, not UB
}

TEST(ExprEvalTest, ComparisonsNumericAndString) {
  Batch b = TestBatch();
  auto sel1 = Expr::Gt(Expr::Column("a"), Expr::Literal(int64_t{1}))
                  ->EvalSelection(b, TestSchema());
  EXPECT_EQ(sel1, (std::vector<int32_t>{1, 2}));
  auto sel2 = Expr::Eq(Expr::Column("s"), Expr::Literal(std::string("banana")))
                  ->EvalSelection(b, TestSchema());
  EXPECT_EQ(sel2, (std::vector<int32_t>{1}));
}

TEST(ExprEvalTest, LogicalOps) {
  Batch b = TestBatch();
  ExprPtr both = Expr::And(Expr::Ge(Expr::Column("a"), Expr::Literal(int64_t{2})),
                           Expr::Lt(Expr::Column("b"), Expr::Literal(3.0)));
  EXPECT_EQ(both->EvalSelection(b, TestSchema()), (std::vector<int32_t>{1}));
  ExprPtr either = Expr::Or(Expr::Eq(Expr::Column("a"), Expr::Literal(int64_t{1})),
                            Expr::Eq(Expr::Column("a"), Expr::Literal(int64_t{3})));
  EXPECT_EQ(either->EvalSelection(b, TestSchema()),
            (std::vector<int32_t>{0, 2}));
  ExprPtr neither = Expr::Not(either);
  EXPECT_EQ(neither->EvalSelection(b, TestSchema()), (std::vector<int32_t>{1}));
}

TEST(ExprEvalTest, DateYearMonthFunctions) {
  Batch b = TestBatch();
  ColumnPtr y = Expr::Func("year", {Expr::Column("d")})->Eval(b, TestSchema());
  EXPECT_EQ(y->Raw<int32_t>()[0], 1995);
  EXPECT_EQ(y->Raw<int32_t>()[2], 1997);
  ColumnPtr m = Expr::Func("month", {Expr::Column("d")})->Eval(b, TestSchema());
  EXPECT_EQ(m->Raw<int32_t>()[1], 7);
}

TEST(ExprEvalTest, BinFunctionFloorDivision) {
  Batch b = TestBatch();
  ExprPtr e = Expr::Func("bin", {Expr::Column("a"), Expr::Literal(int64_t{2})});
  ColumnPtr c = e->Eval(b, TestSchema());
  EXPECT_EQ(c->Raw<int64_t>()[0], 0);  // 1/2
  EXPECT_EQ(c->Raw<int64_t>()[1], 1);  // 2/2
  EXPECT_EQ(c->Raw<int64_t>()[2], 1);  // 3/2
}

TEST(ExprEvalTest, CaseWhen) {
  Batch b = TestBatch();
  ExprPtr e = Expr::Case(Expr::Gt(Expr::Column("a"), Expr::Literal(int64_t{1})),
                         Expr::Column("b"), Expr::Literal(0.0));
  ColumnPtr c = e->Eval(b, TestSchema());
  EXPECT_DOUBLE_EQ(c->Raw<double>()[0], 0.0);
  EXPECT_DOUBLE_EQ(c->Raw<double>()[2], 3.5);
}

TEST(ExprEvalTest, InList) {
  Batch b = TestBatch();
  ExprPtr e = Expr::In(Expr::Column("s"),
                       {std::string("banana"), std::string("cherry")});
  EXPECT_EQ(e->EvalSelection(b, TestSchema()), (std::vector<int32_t>{1}));
}

TEST(ExprEvalTest, LikeVariants) {
  Batch b = TestBatch();
  EXPECT_EQ(Expr::Like(LikeKind::kContains, Expr::Column("s"), "apple")
                ->EvalSelection(b, TestSchema()),
            (std::vector<int32_t>{0, 2}));
  EXPECT_EQ(Expr::Like(LikeKind::kPrefix, Expr::Column("s"), "ban")
                ->EvalSelection(b, TestSchema()),
            (std::vector<int32_t>{1}));
  EXPECT_EQ(Expr::Like(LikeKind::kSuffix, Expr::Column("s"), "pie")
                ->EvalSelection(b, TestSchema()),
            (std::vector<int32_t>{0}));
  EXPECT_EQ(Expr::Like(LikeKind::kNotContains, Expr::Column("s"), "apple")
                ->EvalSelection(b, TestSchema()),
            (std::vector<int32_t>{1}));
}

TEST(ExprFingerprintTest, StructuralIdentity) {
  ExprPtr a = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{5}));
  ExprPtr b = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{5}));
  ExprPtr c = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{6}));
  EXPECT_EQ(a->Fingerprint(nullptr), b->Fingerprint(nullptr));
  EXPECT_NE(a->Fingerprint(nullptr), c->Fingerprint(nullptr));
}

TEST(ExprFingerprintTest, MappingSubstitutesColumns) {
  ExprPtr e = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{5}));
  NameMap m{{"x", "x#12"}};
  EXPECT_EQ(e->Fingerprint(&m), "(> c:x#12 l:5)");
  EXPECT_EQ(e->Fingerprint(nullptr), "(> c:x l:5)");
}

TEST(ExprFingerprintTest, AnonymizedShapeEqualAcrossNames) {
  ExprPtr a = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{5}));
  ExprPtr b = Expr::Gt(Expr::Column("y"), Expr::Literal(int64_t{5}));
  EXPECT_EQ(a->Fingerprint(nullptr, true), b->Fingerprint(nullptr, true));
  // But different literals still differ (hash-key selectivity).
  ExprPtr c = Expr::Gt(Expr::Column("y"), Expr::Literal(int64_t{6}));
  EXPECT_NE(a->Fingerprint(nullptr, true), c->Fingerprint(nullptr, true));
}

TEST(ExprRenameTest, RenamesAllReferences) {
  ExprPtr e = Expr::And(Expr::Gt(Expr::Column("x"), Expr::Column("y")),
                        Expr::Eq(Expr::Column("x"), Expr::Literal(int64_t{1})));
  ExprPtr r = e->Rename({{"x", "u"}});
  std::set<std::string> cols;
  r->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::set<std::string>{"u", "y"}));
}

TEST(ExprConjunctsTest, SplitAndRebuild) {
  ExprPtr a = Expr::Gt(Expr::Column("x"), Expr::Literal(int64_t{1}));
  ExprPtr b = Expr::Lt(Expr::Column("y"), Expr::Literal(int64_t{2}));
  ExprPtr c = Expr::Eq(Expr::Column("z"), Expr::Literal(int64_t{3}));
  ExprPtr all = Expr::And(Expr::And(a, b), c);
  auto parts = SplitConjuncts(all);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0]->Fingerprint(nullptr), a->Fingerprint(nullptr));
  ExprPtr rebuilt = AndAll(parts);
  EXPECT_EQ(rebuilt->Fingerprint(nullptr), all->Fingerprint(nullptr));
  // OR is not split.
  EXPECT_EQ(SplitConjuncts(Expr::Or(a, b)).size(), 1u);
  EXPECT_EQ(AndAll({}), nullptr);
}

TEST(AggregateTest, ResultTypes) {
  EXPECT_EQ(AggResultType(AggFunc::kSum, TypeId::kInt32), TypeId::kInt64);
  EXPECT_EQ(AggResultType(AggFunc::kSum, TypeId::kDouble), TypeId::kDouble);
  EXPECT_EQ(AggResultType(AggFunc::kCount, TypeId::kString), TypeId::kInt64);
  EXPECT_EQ(AggResultType(AggFunc::kAvg, TypeId::kInt32), TypeId::kDouble);
  EXPECT_EQ(AggResultType(AggFunc::kMin, TypeId::kDate), TypeId::kDate);
}

TEST(AggregateTest, DecomposeSumCountMinMax) {
  AggItem sum{AggFunc::kSum, Expr::Column("v"), "s"};
  AggDecomposition d = DecomposeAggregate(sum, "p");
  ASSERT_EQ(d.partials.size(), 1u);
  EXPECT_EQ(d.reaggs[0], AggFunc::kSum);
  EXPECT_EQ(d.final_expr, nullptr);

  AggItem cnt{AggFunc::kCount, Expr::Literal(int64_t{1}), "c"};
  d = DecomposeAggregate(cnt, "p");
  EXPECT_EQ(d.reaggs[0], AggFunc::kSum);  // count of union = sum of counts

  AggItem mn{AggFunc::kMin, Expr::Column("v"), "m"};
  d = DecomposeAggregate(mn, "p");
  EXPECT_EQ(d.reaggs[0], AggFunc::kMin);
}

TEST(AggregateTest, DecomposeAvgNeedsSumAndCount) {
  AggItem avg{AggFunc::kAvg, Expr::Column("v"), "a"};
  AggDecomposition d = DecomposeAggregate(avg, "p");
  ASSERT_EQ(d.partials.size(), 2u);
  EXPECT_EQ(d.partials[0].fn, AggFunc::kSum);
  EXPECT_EQ(d.partials[1].fn, AggFunc::kCount);
  ASSERT_NE(d.final_expr, nullptr);
}

}  // namespace
}  // namespace recycledb
