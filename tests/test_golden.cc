// Golden snapshot suite: records four representative workloads on a
// deterministic engine configuration and diffs the per-statement
// {reuse mode, row count, result digest, post-rewrite plan shape}
// against checked-in snapshots under tests/golden/.
//
// A golden failure means the recycler's observable behaviour changed —
// a chooser tweak, a canonicalization change, a plan-printer edit. When
// the change is intentional, regenerate with scripts/update_goldens.sh
// (RECYCLEDB_UPDATE_GOLDENS=1) and review the snapshot diff in the PR;
// when it is not, the unified diff below points at the first statement
// that diverged. See docs/testing.md.
//
// The corpora:
//   skyserver_sweep    overlapping RA-window range selects (misses,
//                      partial stitches, exact-repeat tail); also the
//                      source of tests/golden/skyserver_sweep.trace,
//                      the replay fixture bench_trace_replay gates on.
//   tpch_subset        Q1/Q6-shaped aggregates plus shipdate range
//                      selects over lineitem (exact + subsumption).
//   rollup_append      the delta-maintenance shape: grouped rollups and
//                      threshold windows across two appends (delta
//                      refreshes, aggregate merges).
//   sql_normalization  syntactic variants of one template (reordered
//                      conjuncts, folded constants, BETWEEN, NOT) that
//                      the canonicalizing rewrite must land on one
//                      cache entry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/database.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "skyserver/skyserver.h"
#include "tpch/dbgen.h"
#include "trace/recorder.h"
#include "trace/trace_format.h"
#include "workload/rollup.h"

namespace recycledb {
namespace {

using trace::Trace;
using trace::TraceEvent;
using trace::TraceHeader;
using trace::TraceRecorder;

/// Engine configuration every golden records under: speculation policy,
/// unlimited cache (no eviction nondeterminism), calibrated cost model
/// (no wall clock in decisions), plan capture for the shape snapshot.
DatabaseOptions GoldenOptions() {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = -1;
  options.recycler.use_cost_model = true;
  options.recycler.capture_plan_explain = true;
  return options;
}

std::string GoldenDir() {
  return std::string(RDB_SOURCE_DIR) + "/tests/golden";
}

/// Set RECYCLEDB_UPDATE_GOLDENS=1 (scripts/update_goldens.sh) to rewrite
/// the snapshots in the source tree instead of diffing against them.
bool UpdateMode() {
  const char* env = std::getenv("RECYCLEDB_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

// ---------------------------------------------------------------------------
// Snapshot rendering and diffing
// ---------------------------------------------------------------------------

/// Renders a recorded trace as the golden text: one block per statement
/// with the reuse decision, cardinality, result digest and the indented
/// post-rewrite plan. Appends render as their own marker lines so the
/// snapshot pins where the data changed.
std::string RenderGolden(const Trace& t) {
  std::ostringstream out;
  out << "# recycledb golden snapshot v1\n";
  out << "# workload: " << t.header.workload << " seed: " << t.header.seed
      << " mode: " << t.header.mode << "\n";
  int64_t index = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEvent::Kind::kAppend) {
      out << "--- append " << e.append.table << " +" << e.append.rows
          << " rows at " << e.append.start_row << "\n";
      continue;
    }
    const trace::StatementEvent& s = e.statement;
    out << "[" << index++ << "] mode=" << ReuseModeName(s.reuse_mode)
        << " rows=" << s.rows
        << StrFormat(" digest=%016llx",
                     static_cast<unsigned long long>(s.digest))
        << "\n";
    out << "  sql: " << s.sql << "\n";
    std::istringstream plan(s.plan_explain);
    for (std::string line; std::getline(plan, line);) {
      out << "  | " << line << "\n";
    }
  }
  return out.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

/// Minimal unified diff (full-context LCS; goldens are small). Empty
/// result means the sides are identical.
std::string UnifiedDiff(const std::string& expected,
                        const std::string& actual) {
  if (expected == actual) return "";
  std::vector<std::string> a = SplitLines(expected);
  std::vector<std::string> b = SplitLines(actual);
  const size_t n = a.size(), m = b.size();
  // lcs[i][j]: LCS length of a[i..] vs b[j..].
  std::vector<std::vector<int>> lcs(n + 1, std::vector<int>(m + 1, 0));
  for (size_t i = n; i-- > 0;) {
    for (size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::ostringstream out;
  out << "--- golden (checked in)\n+++ actual (this build)\n";
  size_t i = 0, j = 0;
  while (i < n || j < m) {
    if (i < n && j < m && a[i] == b[j]) {
      out << " " << a[i] << "\n";
      ++i, ++j;
    } else if (j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j])) {
      out << "+" << b[j] << "\n";
      ++j;
    } else {
      out << "-" << a[i] << "\n";
      ++i;
    }
  }
  return out.str();
}

/// Reads a whole file; empty optional-style: ok=false when unreadable.
bool ReadFileText(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Diffs `t` against tests/golden/<name>.golden, or rewrites the
/// snapshot when RECYCLEDB_UPDATE_GOLDENS is set.
void CheckGolden(const std::string& name, const Trace& t) {
  const std::string rendered = RenderGolden(t);
  const std::string path = GoldenDir() + "/" + name + ".golden";
  if (UpdateMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    out.close();
    ASSERT_TRUE(out.good()) << "short write to " << path;
    return;
  }
  std::string golden;
  ASSERT_TRUE(ReadFileText(path, &golden))
      << path << " missing — run scripts/update_goldens.sh to generate it";
  const std::string diff = UnifiedDiff(golden, rendered);
  EXPECT_TRUE(diff.empty())
      << name << " diverged from its checked-in snapshot.\n"
      << "If the behaviour change is intentional, regenerate with\n"
      << "scripts/update_goldens.sh and commit the new snapshot.\n\n"
      << diff;
}

// ---------------------------------------------------------------------------
// Corpus builders (each records on a fresh engine and returns the trace)
// ---------------------------------------------------------------------------

/// SkyServer region sweep: 12 drifting RA windows then a 6-query
/// exact-repeat tail. Neighbouring windows overlap, so the steady state
/// is partial stitching; the tail pins exact reuse.
Trace RecordSweep(const DatabaseOptions& options) {
  auto db = Database::OpenOrDie(options);
  const int64_t objects = 8000;
  skyserver::Setup(objects, &db->catalog());

  TraceHeader header;
  header.seed = 20130415;
  header.workload = "skyserver_sweep";
  header.mode = RecyclerModeName(options.recycler.mode);
  header.tags["objects"] = std::to_string(objects);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  Rng rng(header.seed);
  std::vector<std::string> sweep = skyserver::GenerateRegionSweepSql(12, &rng);
  for (const std::string& sql : sweep) {
    Result r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  for (int i = 0; i < 6; ++i) {
    Result r = session->Sql(sweep[i]);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  return recorder.Snapshot();
}

/// TPC-H subset over lineitem: Q1/Q6-shaped aggregates with DATE
/// literals plus shipdate range selects; repeats hit exactly and the
/// narrower range select derives by subsumption from the wider one.
Trace RecordTpchSubset(const DatabaseOptions& options) {
  auto db = Database::OpenOrDie(options);
  tpch::Generate(0.01, &db->catalog());

  TraceHeader header;
  header.seed = 19920401;  // the dbgen default seed the data came from
  header.workload = "tpch_subset";
  header.mode = RecyclerModeName(options.recycler.mode);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  const std::string q1 =
      "SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,"
      " SUM(l_extendedprice) AS sum_base, COUNT(l_quantity) AS n"
      " FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'"
      " GROUP BY l_returnflag, l_linestatus"
      " ORDER BY l_returnflag ASC, l_linestatus ASC";
  auto q6 = [](const char* lo, const char* hi) {
    return StrFormat(
        "SELECT SUM(l_extendedprice) AS revenue,"
        " COUNT(l_extendedprice) AS n FROM lineitem"
        " WHERE l_shipdate >= DATE '%s' AND l_shipdate < DATE '%s'"
        " AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24.0",
        lo, hi);
  };
  const std::vector<std::string> statements = {
      q1,
      q6("1994-01-01", "1995-01-01"),
      q6("1995-01-01", "1996-01-01"),
      // Wide shipdate slice; a refinement sharing its conjuncts plus a
      // residual derives from it by subsumption; a strictly contained
      // shipdate window is served by the stitch path instead.
      "SELECT * FROM lineitem WHERE l_shipdate >= DATE '1995-01-01'"
      " AND l_shipdate < DATE '1997-01-01'",
      "SELECT * FROM lineitem WHERE l_shipdate >= DATE '1995-01-01'"
      " AND l_shipdate < DATE '1997-01-01' AND l_quantity < 10.0",
      "SELECT * FROM lineitem WHERE l_shipdate >= DATE '1995-06-01'"
      " AND l_shipdate < DATE '1996-01-01'",
      q1,                          // exact repeat
      q6("1994-01-01", "1995-01-01"),  // exact repeat
  };
  for (const std::string& sql : statements) {
    Result r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  return recorder.Snapshot();
}

/// Rollup-append: three rounds of the fixed rollup statement set with an
/// append between rounds — the delta-maintenance shape (materialize,
/// exact, delta refresh, aggregate merge).
Trace RecordRollup(const DatabaseOptions& options) {
  auto db = Database::OpenOrDie(options);
  rollup::RollupOptions ropt;
  ropt.initial_rows = 4096;
  EXPECT_TRUE(rollup::Setup(db.get(), ropt).ok());

  TraceHeader header;
  header.seed = ropt.seed;
  header.workload = "rollup_append";
  header.mode = RecyclerModeName(options.recycler.mode);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  const std::vector<std::string> statements = rollup::RollupSql(ropt);
  for (int round = 0; round < 3; ++round) {
    for (const std::string& sql : statements) {
      Result r = session->Sql(sql);
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    if (round == 2) break;
    const int64_t rows = db->catalog().GetTable("events")->num_rows();
    EXPECT_TRUE(
        db->AppendTable("events", *rollup::MakeBatch(512, rows, ropt)).ok());
    recorder.RecordAppend("events", 512, rows);
  }
  return recorder.Snapshot();
}

/// SQL normalization: syntactic variants of a seed query (reordered
/// conjuncts, folded constant arithmetic, NOT forms, BETWEEN, SELECT *)
/// that the canonicalizing rewrite pass must collapse onto the seed's
/// cache entry — every variant after the first snapshots as exact.
Trace RecordNormalization(const DatabaseOptions& options) {
  auto db = Database::OpenOrDie(options);
  {
    Schema schema({{"city", TypeId::kString},
                   {"year", TypeId::kInt32},
                   {"sales", TypeId::kDouble}});
    static const char* kCities[] = {"Edinburgh", "Amsterdam", "Brisbane"};
    TablePtr t = MakeTable(schema);
    Rng rng(7);
    for (int64_t i = 0; i < 20000; ++i) {
      t->AppendRow({std::string(kCities[rng.Uniform(0, 2)]),
                    static_cast<int32_t>(rng.Uniform(2005, 2012)),
                    static_cast<double>(rng.Uniform(0, 5000))});
    }
    EXPECT_TRUE(db->CreateTable("sales", std::move(t)).ok());
  }

  TraceHeader header;
  header.seed = 7;
  header.workload = "sql_normalization";
  header.mode = RecyclerModeName(options.recycler.mode);
  TraceRecorder recorder(header);
  auto session = db->Connect();
  session->set_recorder(&recorder);

  const std::vector<std::string> statements = {
      // Seed spelling, then noisy variants of the same query.
      "SELECT city, year, sales FROM sales"
      " WHERE year >= 2008 AND sales < 2500.0",
      "SELECT * FROM sales WHERE year >= 2008 AND sales < 2500.0",
      "SELECT city, year, sales FROM sales"
      " WHERE sales < 2499.0+1.0 AND year >= 2000+8",
      "SELECT city, year, sales FROM sales"
      " WHERE NOT year < 2002+6 AND sales < 2500.0*1.0",
      // Second template: ordered aggregate, folded-constant variants.
      "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 2010"
      " GROUP BY city ORDER BY total DESC",
      "SELECT city, SUM(sales) AS total FROM sales WHERE 2000+10 <= year"
      " GROUP BY city ORDER BY total DESC",
      "SELECT city, SUM(sales) AS total FROM sales WHERE year >= 4020/2"
      " GROUP BY city ORDER BY total DESC",
      // Third template: BETWEEN vs explicit bounds under ORDER + LIMIT.
      "SELECT city, sales FROM sales"
      " WHERE sales >= 1500.0 AND sales <= 3500.0"
      " ORDER BY sales ASC, city ASC LIMIT 100",
      "SELECT city, sales FROM sales"
      " WHERE sales BETWEEN 1000.0+500.0 AND 3500.0"
      " ORDER BY sales ASC, city ASC LIMIT 100",
      "SELECT city, sales FROM sales"
      " WHERE NOT sales < 1000.0+500.0 AND sales <= 3500.0"
      " ORDER BY sales ASC, city ASC LIMIT 100",
  };
  for (const std::string& sql : statements) {
    Result r = session->Sql(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
  }
  return recorder.Snapshot();
}

int CountMode(const Trace& t, ReuseMode mode) {
  int n = 0;
  for (const TraceEvent& e : t.events) {
    if (e.kind == TraceEvent::Kind::kStatement &&
        e.statement.reuse_mode == mode) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// The four corpora vs their snapshots
// ---------------------------------------------------------------------------

TEST(GoldenTest, SkyserverSweep) {
  Trace t = RecordSweep(GoldenOptions());
  // The corpus must exercise the modes the snapshot exists to pin.
  EXPECT_GT(CountMode(t, ReuseMode::kPartialStitch), 0);
  EXPECT_GT(CountMode(t, ReuseMode::kExact), 0);
  if (UpdateMode()) {
    // Also refresh the replay fixture bench_trace_replay gates on.
    Status st = trace::WriteTraceFile(GoldenDir() + "/skyserver_sweep.trace",
                                      t);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  CheckGolden("skyserver_sweep", t);
}

TEST(GoldenTest, TpchSubset) {
  Trace t = RecordTpchSubset(GoldenOptions());
  EXPECT_GT(CountMode(t, ReuseMode::kExact), 0);
  EXPECT_GT(CountMode(t, ReuseMode::kSubsumption), 0);
  CheckGolden("tpch_subset", t);
}

TEST(GoldenTest, RollupAppend) {
  Trace t = RecordRollup(GoldenOptions());
  EXPECT_GT(CountMode(t, ReuseMode::kDelta) +
                CountMode(t, ReuseMode::kAggMerge),
            0);
  CheckGolden("rollup_append", t);
}

TEST(GoldenTest, SqlNormalization) {
  Trace t = RecordNormalization(GoldenOptions());
  EXPECT_GT(CountMode(t, ReuseMode::kExact), 0);
  CheckGolden("sql_normalization", t);
}

// ---------------------------------------------------------------------------
// The harness must catch a chooser mutation with a readable diff
// ---------------------------------------------------------------------------

TEST(GoldenTest, ChooserMutationProducesReadableDiff) {
  std::string golden;
  if (!ReadFileText(GoldenDir() + "/skyserver_sweep.golden", &golden)) {
    GTEST_SKIP() << "skyserver_sweep.golden not generated yet";
  }
  // Deliberately mutate the chooser: disable partial stitching. The
  // sweep's steady-state stitches must come back as misses, and the
  // snapshot diff must say so in reuse-mode terms.
  DatabaseOptions mutated = GoldenOptions();
  mutated.recycler.enable_partial_reuse = false;
  Trace t = RecordSweep(mutated);
  EXPECT_EQ(CountMode(t, ReuseMode::kPartialStitch), 0);

  const std::string diff = UnifiedDiff(golden, RenderGolden(t));
  ASSERT_FALSE(diff.empty())
      << "disabling partial reuse must change the snapshot";
  // The removed side of the diff names the lost stitch decisions
  // readably: "-[i] mode=partial-stitch ...".
  EXPECT_NE(diff.find("mode=partial-stitch"), std::string::npos) << diff;
  EXPECT_NE(diff.find("-["), std::string::npos) << diff;
}

}  // namespace
}  // namespace recycledb
