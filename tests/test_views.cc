// Aliasing-safety tests for zero-copy view columns: slicing, slice-of-
// slice, mutation-after-share rejection, and cached-result lifetime under
// concurrent eviction (see DESIGN.md, "Zero-copy views and result
// lifetime").
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "exec/executor.h"
#include "exec/operator.h"
#include "exec/operators.h"
#include "recycler/recycler.h"
#include "storage/column.h"
#include "test_util.h"

namespace recycledb {
namespace {

ColumnPtr Int64Column(std::vector<int64_t> values) {
  ColumnPtr col = MakeColumn(TypeId::kInt64);
  auto& data = col->Data<int64_t>();
  data = std::move(values);
  return col;
}

TEST(ViewTest, SliceIsZeroCopyWindow) {
  ColumnPtr src = Int64Column({10, 11, 12, 13, 14, 15});
  ColumnPtr view = ColumnVector::Slice(src, 2, 3);
  ASSERT_TRUE(view->is_view());
  ASSERT_TRUE(src->shared());
  EXPECT_EQ(view->size(), 3);
  EXPECT_EQ(view->type(), TypeId::kInt64);
  EXPECT_EQ(view->Raw<int64_t>()[0], 12);
  EXPECT_EQ(view->Raw<int64_t>()[2], 14);
  // The span aliases the source storage: no bytes were copied.
  EXPECT_EQ(view->Raw<int64_t>(), src->Raw<int64_t>() + 2);
  EXPECT_EQ(std::get<int64_t>(view->GetDatum(1)), 13);
}

TEST(ViewTest, SliceOfSliceFlattensToRoot) {
  ColumnPtr src = Int64Column({0, 1, 2, 3, 4, 5, 6, 7, 8, 9});
  ColumnPtr outer = ColumnVector::Slice(src, 2, 6);  // 2..7
  ColumnPtr inner = ColumnVector::Slice(outer, 1, 3);  // 3..5
  ASSERT_EQ(inner->size(), 3);
  EXPECT_EQ(inner->Raw<int64_t>()[0], 3);
  EXPECT_EQ(inner->Raw<int64_t>()[2], 5);
  // Flattened: the inner view aliases the root storage directly, so
  // dropping the intermediate view cannot dangle it.
  outer.reset();
  EXPECT_EQ(inner->Raw<int64_t>(), src->Raw<int64_t>() + 3);
}

TEST(ViewTest, SliceBoundsChecked) {
  ColumnPtr src = Int64Column({1, 2, 3});
  EXPECT_DEATH(ColumnVector::Slice(src, 1, 3), "slice out of range");
  EXPECT_DEATH(ColumnVector::Slice(src, -1, 1), "slice out of range");
}

TEST(ViewTest, ReadPathsResolveViews) {
  ColumnPtr src = Int64Column({7, 8, 9, 8});
  ColumnPtr view = ColumnVector::Slice(src, 1, 3);  // 8, 9, 8
  // HashRow / RowEquals on views index view-relative rows.
  EXPECT_EQ(view->HashRow(0, 17), src->HashRow(1, 17));
  EXPECT_TRUE(view->RowEquals(0, *view, 2));
  EXPECT_FALSE(view->RowEquals(0, *src, 0));
  // Append* read through views.
  ColumnPtr owned = MakeColumn(TypeId::kInt64);
  owned->AppendRange(*view, 1, 2);
  owned->AppendSelected(*view, {0});
  ASSERT_EQ(owned->size(), 3);
  EXPECT_EQ(owned->Raw<int64_t>()[0], 9);
  EXPECT_EQ(owned->Raw<int64_t>()[1], 8);
  EXPECT_EQ(owned->Raw<int64_t>()[2], 8);
}

TEST(ViewTest, MutatingViewOrSharedSourceAborts) {
  ColumnPtr src = Int64Column({1, 2, 3, 4});
  ColumnPtr view = ColumnVector::Slice(src, 0, 2);
  EXPECT_DEATH(view->Append(Datum(int64_t{5})), "mutating a view column");
  EXPECT_DEATH(view->Data<int64_t>(), "mutating a view column");
  EXPECT_DEATH(view->Reserve(16), "mutating a view column");
  EXPECT_DEATH(view->AppendRange(*src, 0, 1), "mutating a view column");
  // The source is frozen by the slice.
  EXPECT_DEATH(src->Append(Datum(int64_t{5})), "mutating a shared column");
  EXPECT_DEATH(src->Data<int64_t>(), "mutating a shared column");
  EXPECT_DEATH(src->Clear(), "clearing a shared column");
}

TEST(ViewTest, ClearDetachesViewForReuse) {
  ColumnPtr src = Int64Column({1, 2, 3, 4});
  ColumnPtr view = ColumnVector::Slice(src, 1, 2);
  view->Clear();  // detaches; the column is an empty owning column again
  EXPECT_FALSE(view->is_view());
  EXPECT_EQ(view->size(), 0);
  view->Append(Datum(int64_t{42}));
  EXPECT_EQ(view->Raw<int64_t>()[0], 42);
  // The source is unaffected (still frozen, still intact).
  EXPECT_EQ(src->Raw<int64_t>()[1], 2);
}

TEST(ViewTest, ViewKeepsSourceAliveAfterTableDropped) {
  ColumnPtr view;
  {
    TablePtr t = MakeTable(Schema({{"x", TypeId::kInt64}}));
    for (int64_t i = 0; i < 100; ++i) t->AppendRow({i});
    view = ColumnVector::Slice(t->column(0), 90, 10);
  }
  // The table is gone; the view's shared ownership keeps the column alive.
  ASSERT_EQ(view->size(), 10);
  EXPECT_EQ(view->Raw<int64_t>()[0], 90);
  EXPECT_EQ(view->Raw<int64_t>()[9], 99);
}

TEST(ViewTest, ScanEmitsViewsAndFilterForwardsFullBatches) {
  TablePtr t = MakeTable(Schema({{"x", TypeId::kInt64}}));
  for (int64_t i = 0; i < 2000; ++i) t->AppendRow({i});
  Schema schema = t->schema();
  auto scan = std::make_unique<ScanOp>(schema, t, std::vector<int>{0});
  // Predicate true for every row: FilterOp must forward the scan's view
  // batches untouched.
  FilterOp filter(schema, std::move(scan),
                  Expr::Ge(Expr::Column("x"), Expr::Literal(int64_t{0})));
  filter.Open();
  Batch b;
  int64_t rows = 0;
  while (filter.Next(&b)) {
    ASSERT_FALSE(b.columns.empty());
    EXPECT_TRUE(b.columns[0]->is_view());
    EXPECT_EQ(b.columns[0]->Raw<int64_t>()[0], rows);
    rows += b.num_rows;
  }
  filter.Close();
  EXPECT_EQ(rows, 2000);
  EXPECT_TRUE(t->column(0)->shared());
}

TEST(ViewTest, InitBatchReusesUniquelyOwnedColumns) {
  Schema schema({{"a", TypeId::kInt64}, {"b", TypeId::kString}});
  Batch b;
  InitBatch(schema, &b);
  b.columns[0]->Append(Datum(int64_t{1}));
  const ColumnVector* a0 = b.columns[0].get();
  const ColumnVector* b0 = b.columns[1].get();
  InitBatch(schema, &b);
  // Same columns, cleared in place: no reallocation churn.
  EXPECT_EQ(b.columns[0].get(), a0);
  EXPECT_EQ(b.columns[1].get(), b0);
  EXPECT_EQ(b.columns[0]->size(), 0);
  // A column still referenced elsewhere must be replaced, not cleared.
  ColumnPtr held = b.columns[0];
  InitBatch(schema, &b);
  EXPECT_NE(b.columns[0].get(), a0);
  // A shared (sliced) column must be replaced too.
  b.columns[1]->Append(Datum(std::string("s")));
  ColumnPtr view = ColumnVector::Slice(b.columns[1], 0, 1);
  view.reset();  // even with no live view, the source stays frozen
  const ColumnVector* b1 = b.columns[1].get();
  InitBatch(schema, &b);
  EXPECT_NE(b.columns[1].get(), b1);
}

// ---------------------------------------------------------------------------
// Cached-result lifetime under eviction
// ---------------------------------------------------------------------------

class ViewRecyclerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TablePtr t = MakeTable(Schema(
        {{"g", TypeId::kInt32}, {"v", TypeId::kDouble}}));
    for (int64_t i = 0; i < 20000; ++i) {
      t->AppendRow({static_cast<int32_t>(i % 5000),
                    static_cast<double>(i % 97)});
    }
    ASSERT_TRUE(catalog_.RegisterTable("t", t).ok());
  }

  static PlanPtr Query() {
    return PlanNode::Aggregate(PlanNode::Scan("t", {"g", "v"}), {"g"},
                               {{AggFunc::kSum, Expr::Column("v"), "sv"}});
  }

  Catalog catalog_;
};

TEST_F(ViewRecyclerTest, EvictionDuringScanKeepsResultAlive) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);

  ExecResult baseline = rec.Execute(Query());  // records cost
  rec.Execute(Query());                        // materializes
  ASSERT_GE(rec.counters().materializations.load(), 1);

  // Prepare a reusing query: the plan scans the cached table directly.
  auto prepared = rec.Prepare(Query());
  ASSERT_EQ(prepared->trace().num_reuses, 1);

  Executor exec(&catalog_);
  std::map<const PlanNode*, Operator*> node_ops;
  OperatorPtr root =
      exec.BuildOperator(prepared->plan(), &prepared->stores(), &node_ops);
  root->Open();
  TablePtr scanned = MakeTable(root->output_schema());
  Batch batch;
  ASSERT_TRUE(root->NextTimed(&batch));  // scan in flight (5000 rows total)
  scanned->AppendBatch(batch);

  // Evict the cached result mid-scan: shared ownership must keep the
  // result alive until this scan drains.
  rec.FlushCache();
  ASSERT_EQ(rec.cache().num_entries(), 0);

  while (root->NextTimed(&batch)) scanned->AppendBatch(batch);
  root->Close();
  EXPECT_EQ(testing::RowMultiset(*scanned),
            testing::RowMultiset(*baseline.table));
}

TEST_F(ViewRecyclerTest, ConcurrentReuseAndEviction) {
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kHistory;
  Recycler rec(&catalog_, cfg);
  ExecResult baseline = rec.Execute(Query());
  auto expected = testing::RowMultiset(*baseline.table);

  std::atomic<bool> failed{false};
  std::vector<std::thread> streams;
  for (int s = 0; s < 2; ++s) {
    streams.emplace_back([&] {
      for (int i = 0; i < 25 && !failed.load(); ++i) {
        ExecResult r = rec.Execute(Query());
        if (testing::RowMultiset(*r.table) != expected) failed.store(true);
      }
    });
  }
  std::thread evictor([&] {
    for (int i = 0; i < 50; ++i) {
      rec.FlushCache();
      std::this_thread::yield();
    }
  });
  for (auto& t : streams) t.join();
  evictor.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GT(rec.counters().reuses.load(), 0);
}

}  // namespace
}  // namespace recycledb
