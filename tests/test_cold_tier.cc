// Tests for the persistent second-tier result cache (cold tier):
// spill-file round trips and corruption handling, eviction-to-disk with
// lazy re-admission through the exact / subsumption / partial-stitch
// reuse paths, second-chance replacement at the byte cap, restart
// recovery (orphan adoption), invalidation purging spilled entries,
// graceful degradation under a tiny disk quota, canonical-key stability
// under graph-id shifts, and a concurrent spill-vs-lookup stress run.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <shared_mutex>
#include <thread>

#include "recycledb/recycledb.h"
#include "recycler/cold_tier.h"
#include "recycler/recycler.h"
#include "storage/spill_file.h"
#include "test_util.h"

namespace recycledb {
namespace {

namespace fs = std::filesystem;
using recycledb::testing::RowMultiset;

/// mkdtemp wrapper honoring $TMPDIR (CI points it at the runner's
/// scratch space); removed recursively on destruction.
class TempSpillDir {
 public:
  TempSpillDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base && *base ? base : "/tmp");
    tmpl += "/rdb-cold-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* d = mkdtemp(buf.data());
    RDB_CHECK(d != nullptr);
    path_ = d;
  }
  ~TempSpillDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Deterministic test table: `rows` rows of (a: 0..9, v: spread over
/// [0, 10000)).
TablePtr MakeTestTable(int rows) {
  Schema s({{"a", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < rows; ++i) {
    t->AppendRow({static_cast<int32_t>(i % 10),
                  static_cast<double>((i * 7919) % 10000)});
  }
  return t;
}

PlanPtr RangeQuery(double lo, double hi) {
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "v"}),
      Expr::And(Expr::Ge(Expr::Column("v"), Expr::Literal(lo)),
                Expr::Lt(Expr::Column("v"), Expr::Literal(hi))));
}

/// Single-conjunct broad selection (the subsumption seed: a refinement's
/// conjuncts are a superset of exactly this one).
PlanPtr BroadQuery(double lo) {
  return PlanNode::Select(PlanNode::Scan("f", {"a", "v"}),
                          Expr::Gt(Expr::Column("v"), Expr::Literal(lo)));
}

PlanPtr RefineQuery(double lo, int32_t a) {
  return PlanNode::Select(
      PlanNode::Scan("f", {"a", "v"}),
      Expr::And(Expr::Gt(Expr::Column("v"), Expr::Literal(lo)),
                Expr::Eq(Expr::Column("a"), Expr::Literal(a))));
}

std::unique_ptr<Database> OpenDb(const std::string& spill_dir,
                                 int64_t hot_bytes, int rows,
                                 int64_t cold_capacity = 256ll << 20,
                                 CachePolicy policy = CachePolicy::kLru) {
  DatabaseOptions options;
  options.recycler.mode = RecyclerMode::kSpeculation;
  options.recycler.cache_bytes = hot_bytes;
  options.recycler.cache_policy = policy;
  options.recycler.spill_dir = spill_dir;
  options.recycler.cold_tier_capacity_bytes = cold_capacity;
  std::unique_ptr<Database> db = Database::OpenOrDie(options);
  RDB_CHECK(db->CreateTable("f", MakeTestTable(rows)).ok());
  return db;
}

std::multiset<std::string> Expected(Database* db, PlanPtr plan) {
  SessionOptions so;
  so.bypass_recycler = true;
  auto session = db->Connect(so);
  Result r = session->Execute(std::move(plan));
  RDB_CHECK(r.ok());
  return RowMultiset(*r.table());
}

// ---------------------------------------------------------------------------
// Spill file format
// ---------------------------------------------------------------------------

TEST(SpillFile, RoundTripAllTypesBitEqual) {
  TempSpillDir dir;
  Schema s({{"b", TypeId::kBool},
            {"i", TypeId::kInt32},
            {"l", TypeId::kInt64},
            {"d", TypeId::kDouble},
            {"s", TypeId::kString},
            {"dt", TypeId::kDate}});
  TablePtr t = MakeTable(s);
  for (int i = 0; i < 1500; ++i) {
    t->AppendRow({i % 3 == 0, static_cast<int32_t>(i - 700),
                  static_cast<int64_t>(i) * 1234567, i * 0.37 - 200.0,
                  std::string(i % 17, 'x') + std::to_string(i),
                  MakeDate(2013, 4, 1 + i % 28)});
  }
  SpillFileMeta meta;
  meta.canon_key = "4{select:x}(0{scan:f})";
  meta.column_names = t->schema().Names();
  for (const Field& f : s.fields()) meta.column_types.push_back(f.type);
  meta.num_rows = t->num_rows();
  meta.bcost_ms = 12.5;
  meta.h = 3.25;
  meta.benefit = 0.125;
  meta.base_tables = {"f", "g"};

  const std::string path = dir.path() + "/roundtrip.spill";
  ASSERT_TRUE(WriteSpillFile(path, *t, meta).ok());

  SpillFileMeta header;
  ASSERT_TRUE(ReadSpillMeta(path, &header).ok());
  EXPECT_EQ(header.canon_key, meta.canon_key);
  EXPECT_EQ(header.column_names, meta.column_names);
  EXPECT_EQ(header.column_types, meta.column_types);
  EXPECT_EQ(header.num_rows, meta.num_rows);
  EXPECT_DOUBLE_EQ(header.bcost_ms, meta.bcost_ms);
  EXPECT_DOUBLE_EQ(header.h, meta.h);
  EXPECT_EQ(header.base_tables, meta.base_tables);

  SpillFileMeta meta2;
  TablePtr back;
  ASSERT_TRUE(ReadSpillTable(path, &meta2, &back).ok());
  ASSERT_EQ(back->num_rows(), t->num_rows());
  ASSERT_EQ(back->schema(), t->schema());
  // Bit equality, row for row and in order.
  for (int64_t r = 0; r < t->num_rows(); ++r) {
    for (int c = 0; c < t->num_columns(); ++c) {
      EXPECT_TRUE(DatumEquals(t->Get(r, c), back->Get(r, c)))
          << "row " << r << " col " << c;
    }
  }
}

TEST(SpillFile, EmptyResultRoundTrips) {
  TempSpillDir dir;
  Schema s({{"a", TypeId::kInt32}, {"s", TypeId::kString}});
  TablePtr t = MakeTable(s);  // zero rows: a valid, cacheable result
  SpillFileMeta meta;
  meta.canon_key = "empty";
  meta.column_names = t->schema().Names();
  meta.column_types = {TypeId::kInt32, TypeId::kString};
  meta.num_rows = 0;
  const std::string path = dir.path() + "/empty.spill";
  ASSERT_TRUE(WriteSpillFile(path, *t, meta).ok());
  SpillFileMeta m2;
  TablePtr back;
  ASSERT_TRUE(ReadSpillTable(path, &m2, &back).ok());
  EXPECT_EQ(back->num_rows(), 0);
  EXPECT_EQ(back->schema(), t->schema());
}

TEST(SpillFile, TruncatedFileRejectedRecoverably) {
  TempSpillDir dir;
  TablePtr t = MakeTestTable(500);
  SpillFileMeta meta;
  meta.canon_key = "k";
  meta.column_names = t->schema().Names();
  meta.column_types = {TypeId::kInt32, TypeId::kDouble};
  meta.num_rows = t->num_rows();
  const std::string path = dir.path() + "/trunc.spill";
  ASSERT_TRUE(WriteSpillFile(path, *t, meta).ok());

  fs::resize_file(path, fs::file_size(path) / 2);
  SpillFileMeta m2;
  TablePtr back;
  Status st = ReadSpillTable(path, &m2, &back);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(back, nullptr);
}

TEST(SpillFile, CorruptPayloadFailsChecksum) {
  TempSpillDir dir;
  TablePtr t = MakeTestTable(500);
  SpillFileMeta meta;
  meta.canon_key = "k";
  meta.column_names = t->schema().Names();
  meta.column_types = {TypeId::kInt32, TypeId::kDouble};
  meta.num_rows = t->num_rows();
  const std::string path = dir.path() + "/corrupt.spill";
  ASSERT_TRUE(WriteSpillFile(path, *t, meta).ok());

  // Flip one payload byte (before the trailing checksum).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -64, SEEK_END);
  int c = std::fgetc(f);
  std::fseek(f, -64, SEEK_END);
  std::fputc(c ^ 0x5a, f);
  std::fclose(f);

  SpillFileMeta m2;
  TablePtr back;
  Status st = ReadSpillTable(path, &m2, &back);
  EXPECT_FALSE(st.ok());
}

TEST(SpillFile, ImplausibleRowCountRejectedBeforeAllocation) {
  TempSpillDir dir;
  TablePtr t = MakeTestTable(100);
  SpillFileMeta meta;
  meta.canon_key = "k";
  meta.column_names = t->schema().Names();
  meta.column_types = {TypeId::kInt32, TypeId::kDouble};
  meta.num_rows = t->num_rows();
  const std::string path = dir.path() + "/rows.spill";
  // v1 on purpose: the row-count plausibility bound is the v1 reader's
  // only pre-allocation defense. The v2 reader verifies the checksum
  // before decoding anything, so a patched header fails there instead
  // (covered in test_speed_pack.cc).
  SpillWriteOptions v1;
  v1.version = kSpillFormatVersionV1;
  ASSERT_TRUE(WriteSpillFile(path, *t, meta, v1).ok());

  // Patch the header's num_rows (offset: 16-byte prefix + "k" string
  // (5) + ncols (4) + two "a"/"v" column records (6 each)) to a value
  // that would allocate petabytes if trusted. The reader must fail with
  // a recoverable Status before any allocation — the checksum pass
  // would be too late.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 16 + 5 + 4 + 6 + 6, SEEK_SET);
  const uint64_t huge = 1ull << 60;
  std::fwrite(&huge, sizeof(huge), 1, f);
  std::fclose(f);

  SpillFileMeta m2;
  TablePtr back;
  Status st = ReadSpillTable(path, &m2, &back);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("row count"), std::string::npos);
}

TEST(SpillFile, GarbageFileRejected) {
  TempSpillDir dir;
  const std::string path = dir.path() + "/garbage.spill";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a spill file", f);
  std::fclose(f);
  SpillFileMeta meta;
  EXPECT_FALSE(ReadSpillMeta(path, &meta).ok());
}

// ---------------------------------------------------------------------------
// Eviction -> spill -> lazy re-admission
// ---------------------------------------------------------------------------

TEST(ColdTier, EvictionSpillsAndExactMatchReadmits) {
  TempSpillDir dir;
  // Hot cache fits one ~70KB range result; the second evicts the first.
  auto db = OpenDb(dir.path(), 128 << 10, 20000);
  auto expected_a = Expected(db.get(), RangeQuery(0, 3000));

  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  ASSERT_TRUE(db->Execute(RangeQuery(3000, 6000)).ok());
  db->recycler().cold_tier().Drain();  // eviction spills asynchronously
  EXPECT_GE(db->counters().cold_spills.load(), 1);
  EXPECT_GE(db->graph_stats().num_cold, 1);

  Result again = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again.reuses(), 1);
  EXPECT_GE(again.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*again.table()), expected_a);
  // The cold hit promoted the entry back into the hot tier.
  EXPECT_GE(db->counters().cold_readmissions.load(), 1);
}

TEST(ColdTier, SubsumptionReadmitsFromCold) {
  TempSpillDir dir;
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  auto expected = Expected(db.get(), RefineQuery(5000, 3));

  ASSERT_TRUE(db->Execute(BroadQuery(5000)).ok());
  db->FlushCache();  // demotes the broad slice to the cold tier
  EXPECT_GE(db->graph_stats().num_cold, 1);

  Result r = db->Execute(RefineQuery(5000, 3));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.subsumption_reuses(), 1);
  EXPECT_GE(r.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*r.table()), expected);
}

TEST(ColdTier, PartialStitchReadmitsFromCold) {
  TempSpillDir dir;
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  auto expected = Expected(db.get(), RangeQuery(1000, 5000));

  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  ASSERT_TRUE(db->Execute(RangeQuery(3000, 6000)).ok());
  int64_t registered = db->recycler().interval_index_entries();
  db->FlushCache();
  // Cold slices keep their interval-index registrations.
  EXPECT_EQ(db->recycler().interval_index_entries(), registered);

  Result r = db->Execute(RangeQuery(1000, 5000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.partial_reuses(), 1);
  EXPECT_GE(r.cold_hits(), 2);  // both slices loaded from disk
  EXPECT_EQ(RowMultiset(*r.table()), expected);
}

TEST(ColdTier, RejectedPromotionStillServesSnapshot) {
  TempSpillDir dir;
  // Benefit policy + tiny hot cache: after eviction the cold entry may
  // not win re-admission, but the loaded snapshot must still serve.
  auto db = OpenDb(dir.path(), 128 << 10, 20000, 256ll << 20,
                   CachePolicy::kBenefit);
  auto expected = Expected(db.get(), RangeQuery(0, 3000));
  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  db->FlushCache();
  Result again = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(again.ok());
  EXPECT_GE(again.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*again.table()), expected);
}

// ---------------------------------------------------------------------------
// Replacement and degradation
// ---------------------------------------------------------------------------

TEST(ColdTier, SecondChanceEvictionRespectsByteCap) {
  TempSpillDir dir;
  // Each ~1500-wide slice is ~18KB on disk; cap the tier at ~40KB so
  // only about two fit.
  const int64_t cap = 40 << 10;
  auto db = OpenDb(dir.path(), 256 << 20, 20000, cap);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(db->Execute(RangeQuery(i * 1500.0, (i + 1) * 1500.0)).ok());
  }
  db->FlushCache();  // spills all six; the sweep must hold the cap
  ColdTierStats stats = db->recycler().cold_tier().Stats();
  EXPECT_LE(stats.used_bytes, cap);
  EXPECT_GT(stats.entries, 0);
  EXPECT_LT(stats.entries, 6);
  EXPECT_GE(db->counters().cold_evictions.load(), 1);
  // Swept-away entries are gone; surviving or recomputed, results stay
  // correct.
  Result r = db->Execute(RangeQuery(0, 1500));
  ASSERT_TRUE(r.ok());
}

TEST(ColdTier, TinyQuotaDegradesToMemoryOnly) {
  TempSpillDir dir;
  // Valid but useless quota: every result is larger, so every spill is
  // rejected and the engine behaves exactly like a memory-only build.
  auto db = OpenDb(dir.path(), 256 << 20, 20000, /*cold_capacity=*/4096);
  auto expected = Expected(db.get(), RangeQuery(0, 3000));
  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  db->FlushCache();
  EXPECT_EQ(db->recycler().cold_tier().Stats().entries, 0);
  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cold_hits(), 0);
  EXPECT_EQ(RowMultiset(*r.table()), expected);
  EXPECT_EQ(db->counters().cold_spills.load(), 0);
}

TEST(ColdTier, CorruptSpillFileIsRecoverable) {
  TempSpillDir dir;
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  auto expected = Expected(db.get(), RangeQuery(0, 3000));
  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  db->FlushCache();

  // Corrupt every spill file in place.
  int corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().extension() != ".spill") continue;
    std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -32, SEEK_END);
    int c = std::fgetc(f);
    std::fseek(f, -32, SEEK_END);
    std::fputc(c ^ 0xff, f);
    std::fclose(f);
    ++corrupted;
  }
  ASSERT_GE(corrupted, 1);

  // The query recomputes (no abort), the dead entry is dropped, and the
  // error is counted.
  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cold_hits(), 0);
  EXPECT_EQ(RowMultiset(*r.table()), expected);
  EXPECT_GE(db->counters().cold_load_errors.load(), 1);
}

// ---------------------------------------------------------------------------
// Invalidation (the stale-data bugfix)
// ---------------------------------------------------------------------------

TEST(ColdTier, InvalidateTablePurgesSpilledEntries) {
  TempSpillDir dir;
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  db->FlushCache();
  ASSERT_GT(db->recycler().cold_tier().Stats().entries, 0);

  db->InvalidateTable("f");
  EXPECT_EQ(db->recycler().cold_tier().Stats().entries, 0);
  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cold_hits(), 0);
}

TEST(ColdTier, ReplaceTableNeverServesStaleColdResults) {
  TempSpillDir dir;
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  db->FlushCache();

  // Replace with a table whose every v is out of the cached range: a
  // stale cold result would wrongly return rows.
  Schema s({{"a", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr fresh = MakeTable(s);
  for (int i = 0; i < 100; ++i) {
    fresh->AppendRow({static_cast<int32_t>(i % 10), 9000.0 + i % 100});
  }
  ASSERT_TRUE(db->ReplaceTable("f", fresh).ok());

  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cold_hits(), 0);
  EXPECT_EQ(r.num_rows(), 0);
}

// ---------------------------------------------------------------------------
// Restart recovery
// ---------------------------------------------------------------------------

TEST(ColdTier, RestartWarmsUpFromSpillDir) {
  TempSpillDir dir;
  std::multiset<std::string> expected_a, expected_b;
  {
    auto db = OpenDb(dir.path(), 256 << 20, 20000);
    expected_a = Expected(db.get(), RangeQuery(0, 3000));
    expected_b = Expected(db.get(), RangeQuery(4000, 7000));
    ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
    ASSERT_TRUE(db->Execute(RangeQuery(4000, 7000)).ok());
    // Destruction checkpoints the hot cache into the spill directory.
  }
  ASSERT_FALSE(fs::is_empty(dir.path()));

  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  EXPECT_GE(db->recycler().cold_tier().Stats().orphans, 2);
  Result ra = db->Execute(RangeQuery(0, 3000));
  Result rb = db->Execute(RangeQuery(4000, 7000));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_GE(ra.cold_hits(), 1);
  EXPECT_GE(rb.cold_hits(), 1);
  EXPECT_EQ(RowMultiset(*ra.table()), expected_a);
  EXPECT_EQ(RowMultiset(*rb.table()), expected_b);
  EXPECT_GE(db->counters().cold_adoptions.load(), 2);
}

TEST(ColdTier, RestartAdoptedSlicesServeStitching) {
  TempSpillDir dir;
  std::multiset<std::string> expected;
  {
    auto db = OpenDb(dir.path(), 256 << 20, 20000);
    expected = Expected(db.get(), RangeQuery(1000, 5000));
    ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
    ASSERT_TRUE(db->Execute(RangeQuery(3000, 6000)).ok());
  }
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  // Prime the graph with the slice shapes so adoption re-registers them
  // in the interval index (each served from disk), then stitch.
  Result s1 = db->Execute(RangeQuery(0, 3000));
  Result s2 = db->Execute(RangeQuery(3000, 6000));
  EXPECT_GE(s1.cold_hits(), 1);
  EXPECT_GE(s2.cold_hits(), 1);
  Result r = db->Execute(RangeQuery(1000, 5000));
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.reuses(), 1);
  EXPECT_EQ(RowMultiset(*r.table()), expected);
}

TEST(ColdTier, RestartReplaceTablePurgesOrphans) {
  TempSpillDir dir;
  {
    auto db = OpenDb(dir.path(), 256 << 20, 20000);
    ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  }
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  ASSERT_GT(db->recycler().cold_tier().Stats().orphans, 0);

  Schema s({{"a", TypeId::kInt32}, {"v", TypeId::kDouble}});
  TablePtr fresh = MakeTable(s);
  for (int i = 0; i < 100; ++i) {
    fresh->AppendRow({static_cast<int32_t>(i % 10), 9500.0});
  }
  ASSERT_TRUE(db->ReplaceTable("f", fresh).ok());
  EXPECT_EQ(db->recycler().cold_tier().Stats().entries, 0);

  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.cold_hits(), 0);
  EXPECT_EQ(r.num_rows(), 0);  // stale rows would be nonzero
}

TEST(ColdTier, RestartCorruptFileRecomputes) {
  TempSpillDir dir;
  std::multiset<std::string> expected;
  {
    auto db = OpenDb(dir.path(), 256 << 20, 20000);
    expected = Expected(db.get(), RangeQuery(0, 3000));
    ASSERT_TRUE(db->Execute(RangeQuery(0, 3000)).ok());
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().extension() != ".spill") continue;
    std::FILE* f = std::fopen(entry.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -16, SEEK_END);
    std::fputc(0x77, f);
    std::fclose(f);
  }
  auto db = OpenDb(dir.path(), 256 << 20, 20000);
  Result r = db->Execute(RangeQuery(0, 3000));
  ASSERT_TRUE(r.ok());  // recoverable: recomputed, no abort
  EXPECT_EQ(RowMultiset(*r.table()), expected);
}

// ---------------------------------------------------------------------------
// Canonical key stability
// ---------------------------------------------------------------------------

TEST(ColdTier, CanonicalKeyStableAcrossInsertionOrder) {
  Catalog catalog;
  RDB_CHECK(catalog.RegisterTable("f", MakeTestTable(2000)).ok());
  RecyclerConfig cfg;
  cfg.mode = RecyclerMode::kSpeculation;

  // The TopN sorts on the aggregate's renamed output ("sv#<node id>" in
  // graph space), so its fingerprint embeds a node id — which differs
  // between the two graphs below unless canonicalization rewrites it.
  auto plan = [] {
    return PlanNode::TopN(
        PlanNode::Aggregate(PlanNode::Scan("f", {"a", "v"}), {"a"},
                            {{AggFunc::kSum, Expr::Column("v"), "sv"}}),
        {{"sv", false}}, 5);
  };

  Recycler rec1(&catalog, cfg);
  rec1.Execute(plan());

  Recycler rec2(&catalog, cfg);
  rec2.Execute(RangeQuery(0, 5000));  // shifts node ids
  rec2.Execute(plan());

  auto topn_key = [](Recycler& rec) {
    std::shared_lock<std::shared_mutex> lock(rec.graph().mutex());
    for (const auto& n : rec.graph().nodes()) {
      if (n->type == OpType::kTopN) return rec.CanonicalSubtreeKey(n.get());
    }
    return std::string();
  };
  std::string k1 = topn_key(rec1);
  std::string k2 = topn_key(rec2);
  ASSERT_FALSE(k1.empty());
  EXPECT_EQ(k1, k2);
  // The raw fingerprints really did differ (the test would be vacuous
  // otherwise): the canonical key must contain a rewritten suffix.
  EXPECT_NE(k1.find("#@"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency (TSan target)
// ---------------------------------------------------------------------------

TEST(ColdTierConcurrency, SpillVsLookupStress) {
  TempSpillDir dir;
  // Hot cache fits roughly one window result: constant eviction churn
  // spills while other streams take cold hits and promote entries back.
  auto db = OpenDb(dir.path(), 32 << 10, 5000, 64ll << 20);

  constexpr int kWindows = 6;
  std::vector<std::multiset<std::string>> expected;
  for (int k = 0; k < kWindows; ++k) {
    expected.push_back(
        Expected(db.get(), RangeQuery(k * 1500.0, k * 1500.0 + 3000.0)));
  }

  constexpr int kThreads = 4;
  constexpr int kIters = 24;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session = db->Connect();
      for (int i = 0; i < kIters; ++i) {
        if (t == 0 && i % 8 == 7) db->FlushCache();
        if (t == 1 && i % 12 == 11) db->InvalidateTable("f");
        int k = (t * 7 + i) % kWindows;
        Result r =
            session->Execute(RangeQuery(k * 1500.0, k * 1500.0 + 3000.0));
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(RowMultiset(*r.table()), expected[k]) << "window " << k;
      }
    });
  }
  for (auto& th : threads) th.join();

  // The run must actually have exercised the tier.
  EXPECT_GE(db->counters().cold_spills.load(), 1);
}

}  // namespace
}  // namespace recycledb
